(** A Redis-like in-memory key-value store over the simulated network.

    This is the "highly-available distributed database" of TENSOR §3.1.1:
    BGP messages, inferred ACK numbers, TCP repair state and routing-table
    checkpoints are all replicated here synchronously before the
    corresponding TCP ACKs are released or messages sent.

    The server keeps everything in RAM (the paper configures Redis without
    disk persistence, §4.1) and models request latency with explicit cost
    components — a per-request network round trip, a per-chunk pipelining
    cost, and a per-record CPU cost — calibrated so that batched GET/SET
    totals reproduce the curves of Figure 5(b): a single ~4 KB-record read
    costs under 0.5 ms, a single write about 1 ms (≈2.5× the read), 10 000
    reads about 200 ms and 10 000 writes about 500 ms.

    Requests from one client are answered in order (the transport is a
    FIFO link), which provides the per-connection message ordering that
    §3.1.2 requires; ordering across connections is deliberately not
    promised, matching the paper. An optional synchronous replica models
    the store's own fault tolerance. *)

(** {1 Server} *)

type cost_model = {
  chunk : int;  (** Records per pipelining chunk. *)
  read_chunk_cost : Sim.Time.span;
  read_record_cost : Sim.Time.span;  (** Fixed part, per record. *)
  read_byte_ns : float;  (** Plus this much per value byte. *)
  write_chunk_cost : Sim.Time.span;
  write_record_cost : Sim.Time.span;
  write_byte_ns : float;
}

val default_cost_model : cost_model
(** The Figure 5(b) calibration described above. *)

val free_cost_model : cost_model
(** Zero processing cost — for unit tests that exercise semantics only. *)

module Server : sig
  type t

  val create : ?cost:cost_model -> Netsim.Node.t -> t
  (** [create node] serves the ["kv"] RPC service on [node]. *)

  val attach_replica : t -> t -> unit
  (** [attach_replica primary replica] makes [replica] a synchronous
      replica of [primary]: the primary acknowledges a write or delete
      only after the replica has applied it. The replica must have been
      created on a different node (it does not itself serve clients in
      this role, though nothing prevents reads against it). *)

  val node : t -> Netsim.Node.t
  val addr : t -> Netsim.Addr.t

  val records : t -> int
  val stored_bytes : t -> int
  (** Total size of keys plus values — the quantity §3.1.2's
      storage-trimming argument bounds per connection. *)

  val peek : t -> string -> string option
  (** Direct local read, no latency model (tests and invariant checks). *)

  val keys_with_prefix : t -> string -> string list
  (** Direct local prefix scan, no latency model. *)
end

(** {1 Client} *)

module Client : sig
  type t

  val create : Netsim.Node.t -> server:Netsim.Addr.t -> t

  val set :
    t -> ?timeout:Sim.Time.span -> (string * string) list ->
    ((unit, [ `Timeout ]) result -> unit) -> unit
  (** Batched write; the callback fires when every record is durable on
      the server (and its replica, if any). *)

  val get :
    t -> ?timeout:Sim.Time.span -> string list ->
    (((string * string option) list, [ `Timeout ]) result -> unit) -> unit
  (** Batched read; preserves request order in the reply. *)

  val del :
    t -> ?timeout:Sim.Time.span -> string list ->
    ((int, [ `Timeout ]) result -> unit) -> unit
  (** Deletes keys; yields how many existed. *)

  val scan :
    t -> ?timeout:Sim.Time.span -> prefix:string ->
    (((string * string) list, [ `Timeout ]) result -> unit) -> unit
  (** All (key, value) pairs whose key starts with [prefix], sorted by
      key — how a backup container downloads a connection's state. *)

  val server_addr : t -> Netsim.Addr.t
end
