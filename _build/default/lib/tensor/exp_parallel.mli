(** The multi-AS parallelism argument of §4.2.

    "It will take at least 5 seconds for any open-source implementation
    to finish the learning from 50 ASes, where each AS sends 10K updates
    (thus the sum is 500K updates). But thanks to the containerized
    approach which naturally enables parallelism, each BGP process in
    TENSOR only needs to connect to one to several ASes, and hence bears
    sub-second's overhead."

    The experiment runs both arrangements: a monolithic speaker holding
    all the sessions in one process (one main thread), and one speaker
    per AS (TENSOR's per-container split, each with live replication),
    everything announcing simultaneously. *)

type result = {
  ases : int;
  updates_per_as : int;
  monolithic_s : float;  (** Last update applied, single process. *)
  containerized_s : float;  (** Max over containers. *)
}

val run : ?ases:int -> ?updates_per_as:int -> unit -> result
val print : result -> unit
