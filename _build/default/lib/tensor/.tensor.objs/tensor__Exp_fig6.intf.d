lib/tensor/exp_fig6.mli:
