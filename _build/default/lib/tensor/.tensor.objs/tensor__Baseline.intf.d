lib/tensor/baseline.mli: Bgp Orch Sim
