lib/tensor/keys.ml: Bgp Buffer Char Format List Netsim Option Printf String
