lib/tensor/exp_fig6.ml: Addr App Baseline Bgp Deploy Engine Hashtbl Keys List Netsim Network Node Orch Printf Replicator Report Rng Sim Store Tcp Time Workload
