lib/tensor/exp_fig7.mli: Workload
