lib/tensor/exp_table2.ml: List Printf Report
