lib/tensor/exp_fig5a.mli: Sim
