lib/tensor/exp_fig5b.ml: Engine List Netsim Network Printf Report Sim Store String Time
