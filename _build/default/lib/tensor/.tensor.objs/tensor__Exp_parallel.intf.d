lib/tensor/exp_parallel.mli:
