lib/tensor/replicator.ml: Addr Bgp Engine Keys List Metrics Netfilter Netsim Packet Queue Sim Store String Tcp Time
