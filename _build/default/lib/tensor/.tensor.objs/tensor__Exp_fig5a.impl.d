lib/tensor/exp_fig5a.ml: Engine Float List Netfilter Netsim Network Packet Printf Report Sim String Tcp Time
