lib/tensor/exp_table1.ml: Addr App Baseline Bgp Deploy Engine Float Format List Netsim Orch Printf Report Sim Time Trace Workload
