lib/tensor/exp_parallel.ml: Addr Baseline Bgp Engine Float Keys List Netfilter Netsim Network Node Printf Replicator Report Sim Store Tcp Time Workload
