lib/tensor/exp_ablations.ml: Addr App Bgp Deploy Engine Hashtbl Keys Link List Metrics Netfilter Netsim Network Option Packet Printf Replicator Report Rng Sim Store String Tcp Time Trace Workload
