lib/tensor/exp_table2.mli:
