lib/tensor/exp_fig7.ml: Array List Printf Report Rng Sim Time Workload
