lib/tensor/exp_scale.ml: Addr App Bgp Deploy Engine List Netsim Orch Printf Report Sim Time Unix Workload
