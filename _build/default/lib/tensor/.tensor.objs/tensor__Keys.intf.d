lib/tensor/keys.mli: Bgp Netsim
