lib/tensor/report.ml: Char Filename Float Format List Printf String Unix
