lib/tensor/replicator.mli: Bgp Keys Netfilter Netsim Sim Store
