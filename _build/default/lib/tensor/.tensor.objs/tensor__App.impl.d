lib/tensor/app.ml: Addr Baseline Bfd Bgp Engine Int Keys List Netfilter Netsim Node Option Orch Packet Replicator Rpc Sim Store String Tcp Time
