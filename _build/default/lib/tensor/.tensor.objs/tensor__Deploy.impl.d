lib/tensor/deploy.ml: Addr App Array Baseline Bfd Bgp Engine Hashtbl List Netsim Network Node Orch Printf Sim Store String Tcp Time Trace
