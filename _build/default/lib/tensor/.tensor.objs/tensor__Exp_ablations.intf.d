lib/tensor/exp_ablations.mli:
