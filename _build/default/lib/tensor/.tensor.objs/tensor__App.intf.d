lib/tensor/app.mli: Bfd Bgp Netsim Orch Replicator Sim
