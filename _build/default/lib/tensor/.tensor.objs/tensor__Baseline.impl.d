lib/tensor/baseline.ml: Bgp Orch Sim Time
