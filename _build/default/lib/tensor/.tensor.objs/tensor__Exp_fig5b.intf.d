lib/tensor/exp_fig5b.mli:
