lib/tensor/exp_scale.mli:
