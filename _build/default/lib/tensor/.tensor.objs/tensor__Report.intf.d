lib/tensor/report.mli: Format
