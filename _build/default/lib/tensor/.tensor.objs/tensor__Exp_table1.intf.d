lib/tensor/exp_table1.mli: Orch
