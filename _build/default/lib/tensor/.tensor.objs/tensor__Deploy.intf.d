lib/tensor/deploy.mli: App Bgp Netsim Orch Sim Store
