(** Figure 5(b): total time of batched database read and write operations
    as a function of the record count (90 B keys, 4 KB values — the
    largest BGP message). *)

type row = {
  records : int;
  read_ms : float;
  write_ms : float;
}

val run : ?counts:int list -> unit -> row list
val print : row list -> unit
