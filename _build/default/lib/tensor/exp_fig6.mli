(** Figure 6: integral performance of TENSOR against FRRouting, GoBGP and
    BIRD.

    (a) time to receive and learn N routing updates from one peer;
    (b) time to generate and send N updates to one peer;
    (c) time to send 100 updates each to P peering ASes (update packing);
    (d) memory and CPU versus container count on one host.

    The baselines run as plain speakers with their {!Baseline} profiles;
    TENSOR runs with live replication against a real store (receive:
    synchronous message replication with held ACKs; send: delayed
    sending), so its overhead is measured, not assumed. *)

type impl_point = { impl : string; seconds : float }
type sweep_row = { x : int; values : impl_point list }

val run_receive : ?counts:int list -> unit -> sweep_row list
(** Panel (a): x = number of updates. *)

val run_send : ?counts:int list -> unit -> sweep_row list
(** Panel (b): x = number of updates. *)

val run_multi_peer : ?peer_counts:int list -> ?updates_per_peer:int -> unit -> sweep_row list
(** Panel (c): x = number of peers. *)

type scale_row = { containers : int; memory_gb : float; cpu_pct : float }

val run_scale : ?container_counts:int list -> unit -> scale_row list
(** Panel (d). *)

val print_receive : sweep_row list -> unit
val print_send : sweep_row list -> unit
val print_multi_peer : sweep_row list -> unit
val print_scale : scale_row list -> unit
