(** Uniform text output for the experiment harness. *)

val section : string -> unit
(** Prints a banner heading (and names the CSV file for subsequent
    tables when a CSV directory is set). *)

val set_csv_dir : string option -> unit
(** When set, every {!table} is additionally written as a CSV file named
    after the current section, for plotting. The directory is created if
    missing. *)

val subsection : string -> unit
val kv : string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [kv label fmt …] prints an aligned "label: value" line. *)

val table : header:string list -> string list list -> unit
(** Column-aligned table with a separator under the header. *)

val note : ('a, Format.formatter, unit, unit) format4 -> 'a
(** An indented free-form remark (e.g. paper reference values). *)

val fseconds : float -> string
(** Seconds with adaptive precision ("2.26 s", "105 ms"). *)

val fbps : float -> string
(** Bits per second with unit ("37.2 Gbps", "64 Mbps"). *)
