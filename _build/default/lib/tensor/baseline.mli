(** Behaviour profiles of the compared BGP implementations (§4.2) and the
    baseline (non-NSR) recovery model (§4.3).

    The paper compares TENSOR against FRRouting, GoBGP and BIRD. All four
    run the {e same} protocol engine here ({!Bgp.Speaker}); the profiles
    differ only in the characteristics the paper attributes to them:

    - per-update processing cost (Figure 6(a): FRR fastest; GoBGP and
      BIRD similar; TENSOR slowest because of replication bookkeeping and
      tcp_queue read-backs);
    - whether update packing is implemented (GoBGP lacks it — the 5×
      factor of Figure 6(c));
    - per-peer cloning cost of packed messages (BIRD degrades beyond
      ~600 peers, where TENSOR overtakes it).

    Costs are calibrated so the regenerated Figure 6 curves have the
    paper's ordering and crossovers; absolute values are model constants,
    not claims about the real daemons.

    The {!recovery} model captures the baselines' manual failure handling
    for Table 1: failure detection via hold/BFD timers, an operator
    rebooting processes or machines, then TCP reconnection and a full
    table re-sync. *)

val frr : Bgp.Speaker.profile
val gobgp : Bgp.Speaker.profile
val bird : Bgp.Speaker.profile

val tensor : Bgp.Speaker.profile
(** The speaker-level profile of TENSOR's BGP process. Replication costs
    are {e not} in the profile — they come from the real store
    interactions of {!Replicator}. *)

val all : (string * Bgp.Speaker.profile) list
(** The three open-source baselines, by display name. *)

(** {1 Baseline manual-recovery model (Table 1)} *)

type recovery = {
  detect : Sim.Time.span;
      (** Failure noticed (hold timer, monitoring page, BFD). *)
  human_initiate : Sim.Time.span;
      (** Operator reaction before the reboot/repair starts. *)
  repair : Sim.Time.span;  (** Reboot of process or machine, or link fix. *)
  reconnect : Sim.Time.span;  (** TCP reconnection + BGP re-establishment. *)
  resync : Sim.Time.span;  (** Route re-learning at average workload. *)
}

val recovery_for : Orch.Controller.failure_kind -> recovery
(** The paper's reported baseline behaviour per failure class
    (Table 1's bracketed numbers): application ≈ 30 s end to end, host
    machine ≈ 240 s, host network ≈ 25 s (wait for recovery, no reboot).
    Container failures have no baseline equivalent. *)

val total : recovery -> Sim.Time.span
