(** Table 1: failure recovery comparison.

    For each failure class (application, container, host machine, host
    network) a fresh full deployment is built, routes are exchanged, the
    failure is injected, and the recovery timeline is read from the
    controller's and deployment's traces:

    - detection: injection → failure localized;
    - initiation: localization → migration started;
    - migration: start → backup resumed (boot + state download + resume);
    - TCP recovery: resume → the resumed connection fully re-synchronized.

    TENSOR's times are internal (the peer observes {e zero} link
    downtime, which the experiment asserts by monitoring the peer's
    session and routing table). The baselines' numbers come from the
    {!Baseline.recovery_for} manual-recovery model, where the total {e
    is} link downtime. *)

type timeline = {
  kind : Orch.Controller.failure_kind;
  frequency_pct : int;  (** The paper's observed frequency mix. *)
  detect_s : float;
  initiate_s : float;
  migrate_s : float;
  tcp_s : float;
  total_s : float;
  peer_session_drops : int;  (** Must be 0: zero link downtime. *)
  peer_routes_lost : int;  (** Must be 0. *)
  baseline_total_s : float;  (** Link downtime without NSR. *)
}

val run : ?kinds:Orch.Controller.failure_kind list -> unit -> timeline list
val print : timeline list -> unit
