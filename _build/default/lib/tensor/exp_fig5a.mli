(** Figure 5(a): TCP maximum throughput as a function of the
    acknowledgment delay, for several packet sizes.

    An iperf-like bulk sender streams to a receiver whose pure ACKs are
    held in an NFQUEUE for a fixed delay (TENSOR's mechanism with a
    constant in place of the store confirmation). Endpoints are
    pps-limited (per-segment CPU cost) and the receive window is 400 KB,
    so the throughput is [min(pps × size, W / (RTT + delay))]: flat until
    the size-dependent threshold, then collapsing — the paper's reported
    thresholds are 20/10/5/2/2 ms for 100/200/500/1000/2000-byte
    packets. *)

type point = { delay_ms : float; throughput_bps : float }
type series = { packet_size : int; points : point list }

val run :
  ?packet_sizes:int list ->
  ?delays_ms:float list ->
  ?measure_span:Sim.Time.span ->
  unit ->
  series list

val threshold_ms : series -> float
(** The largest measured delay whose throughput is still within 5 % of
    the zero-delay throughput. *)

val print : series list -> unit
