(** Figure 7: operational quantification.

    (a) CDF of the average per-link throughput between the cloud and its
    peering ASes (mean > 37 Gbps, median 64 Mbps, > 30 % of links above
    1 Gbps); (b) TENSOR adoption and monthly impacted traffic over
    2020-01 … 2022-12. *)

type cdf_summary = {
  links : int;
  mean_bps : float;
  median_bps : float;
  frac_above_1g : float;
  cdf : (float * float) list;  (** (throughput_bps, cumulative prob). *)
}

val run_cdf : ?links:int -> ?seed:int -> unit -> cdf_summary
val print_cdf : cdf_summary -> unit

val run_timeline : ?seed:int -> unit -> Workload.Deployment.month list
val print_timeline : Workload.Deployment.month list -> unit
