open Sim

type cdf_summary = {
  links : int;
  mean_bps : float;
  median_bps : float;
  frac_above_1g : float;
  cdf : (float * float) list;
}

let run_cdf ?(links = 6000) ?(seed = 42) () =
  let rng = Rng.create seed in
  let pop = Workload.Traffic.sample_population rng Workload.Traffic.default links in
  let sorted = Array.copy pop in
  Array.sort compare sorted;
  let cdf =
    List.map
      (fun p ->
        let idx =
          min (links - 1) (int_of_float (p *. float_of_int (links - 1)))
        in
        (sorted.(idx), p))
      [ 0.1; 0.25; 0.5; 0.7; 0.8; 0.9; 0.95; 0.99 ]
  in
  {
    links;
    mean_bps = Workload.Traffic.mean_bps pop;
    median_bps = Workload.Traffic.median_bps pop;
    frac_above_1g = Workload.Traffic.fraction_above pop 1e9;
    cdf;
  }

let print_cdf s =
  Report.section "Figure 7(a): CDF of per-link average throughput";
  Report.kv "links sampled" "%d" s.links;
  Report.kv "mean" "%s (paper: > 37 Gbps)" (Report.fbps s.mean_bps);
  Report.kv "median" "%s (paper: > 64 Mbps)" (Report.fbps s.median_bps);
  Report.kv "links above 1 Gbps" "%.1f%% (paper: > 30%%)"
    (100.0 *. s.frac_above_1g);
  Report.subsection "CDF points";
  Report.table
    ~header:[ "percentile"; "throughput" ]
    (List.map
       (fun (v, p) ->
         [ Printf.sprintf "p%.0f" (100.0 *. p); Report.fbps v ])
       s.cdf);
  Report.kv "one-minute outage on an average link" "%.0f GB impacted"
    (Workload.Traffic.bytes_impacted ~avg_bps:s.mean_bps
       ~downtime:(Time.minutes 1)
    /. 1e9);
  Report.note "paper: a one-minute one-link downtime impacts ~277 GB."

let run_timeline ?(seed = 42) () =
  Workload.Deployment.series ~rng:(Rng.create seed) Workload.Deployment.default

let print_timeline months =
  Report.section
    "Figure 7(b): TENSOR adoption and monthly impacted traffic (2020-2022)";
  Report.table
    ~header:[ "month"; "ASes on TENSOR"; "update freq"; "impacted (TB)" ]
    (List.filter_map
       (fun (m : Workload.Deployment.month) ->
         (* Quarterly rows keep the table readable. *)
         if m.Workload.Deployment.month mod 3 = 1 then
           Some
             [
               Workload.Deployment.label m;
               Printf.sprintf "%d / %d" m.Workload.Deployment.ases_on_tensor
                 m.Workload.Deployment.total_ases;
               Printf.sprintf "%.1fx" m.Workload.Deployment.update_frequency;
               Printf.sprintf "%.1f" m.Workload.Deployment.impacted_tb;
             ]
         else None)
       months);
  Report.note
    "paper: ~34 TB/month impacted pre-deployment (before 2020-06); pilot of 100";
  Report.note
    "ASes mid-2020; full coverage (all enterprise BGP) by end of 2021; zero link";
  Report.note
    "downtime on TENSOR-covered links for two years while update frequency tripled."
