open Sim
open Netsim

type result = {
  ases : int;
  updates_per_as : int;
  monolithic_s : float;
  containerized_s : float;
}

let run_until_cond eng ~deadline cond =
  let rec loop () =
    if cond () then true
    else if Engine.now eng >= deadline then false
    else begin
      Engine.run_until eng
        (min deadline (Time.add (Engine.now eng) (Time.ms 100)));
      loop ()
    end
  in
  loop ()

let make_peer net fabric i =
  let node = Network.add_node net (Printf.sprintf "as%d" i) in
  let _, _, addr = Network.connect net ~delay:(Time.us 200) fabric node in
  Node.add_route node (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces node) 0).Node.remote;
  let stack = Tcp.create_stack node in
  let spk =
    Bgp.Speaker.create ~profile:Baseline.frr ~stack ~local_asn:(65000 + i)
      ~router_id:addr ()
  in
  (spk, addr)

let announce spk ~vrf ~base ~next_hop n =
  let attrs =
    Bgp.Attrs.make
      ~as_path:[ Bgp.Attrs.Seq [ 64000 + (base mod 999) ] ]
      ~next_hop ()
  in
  Bgp.Speaker.originate spk ~vrf ~attrs
    (Workload.Prefixes.distinct_from ~base n)

(* One process, [ases] sessions: every update contends for one main
   thread. *)
let monolithic ~ases ~updates_per_as =
  let eng = Engine.create () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let dut = Network.add_node net "dut" in
  let _, _, dut_addr = Network.connect net ~delay:(Time.us 50) fabric dut in
  Node.add_route dut (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces dut) 0).Node.remote;
  let s_dut = Tcp.create_stack dut in
  let spk_dut =
    Bgp.Speaker.create ~profile:Baseline.frr ~stack:s_dut ~local_asn:64900
      ~router_id:dut_addr ()
  in
  let peers =
    List.init ases (fun i ->
        let spk, addr = make_peer net fabric i in
        ignore
          (Bgp.Speaker.add_peer spk
             {
               (Bgp.Speaker.default_peer_config ~vrf:"v0"
                  ~remote_addr:dut_addr ())
               with
               Bgp.Speaker.remote_asn = Some 64900;
               passive = true;
             });
        Bgp.Speaker.start spk;
        ignore
          (Bgp.Speaker.add_peer spk_dut
             {
               (Bgp.Speaker.default_peer_config
                  ~vrf:(Printf.sprintf "v%d" i) ~remote_addr:addr ())
               with
               Bgp.Speaker.remote_asn = Some (65000 + i);
             });
        (spk, addr))
  in
  Bgp.Speaker.start spk_dut;
  let deadline = Time.add (Engine.now eng) (Time.minutes 2) in
  let all_up () =
    List.for_all
      (fun p -> Bgp.Speaker.peer_state p = Bgp.Session.Established)
      (Bgp.Speaker.peers spk_dut)
  in
  if not (run_until_cond eng ~deadline all_up) then nan
  else begin
    Engine.run_for eng (Time.sec 1);
    let t0 = Engine.now eng in
    List.iteri
      (fun i (spk, addr) ->
        announce spk ~vrf:"v0" ~base:(i * 100_000) ~next_hop:addr
          updates_per_as)
      peers;
    let target = ases * updates_per_as in
    let deadline = Time.add t0 (Time.minutes 10) in
    if
      run_until_cond eng ~deadline (fun () ->
          Bgp.Speaker.updates_learned spk_dut >= target)
    then Time.to_sec_f (Time.diff (Bgp.Speaker.last_rx_applied spk_dut) t0)
    else nan
  end

(* One speaker per AS — TENSOR's split — each with live replication into
   a shared store, all learning concurrently. *)
let containerized ~ases ~updates_per_as =
  let eng = Engine.create () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let store_node = Network.add_node net "store" in
  let _, _, _ = Network.connect net ~delay:(Time.us 100) fabric store_node in
  Node.add_route store_node (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces store_node) 0).Node.remote;
  let server = Store.Server.create store_node in
  let store_addr = Store.Server.addr server in
  let duts =
    List.init ases (fun i ->
        let node = Network.add_node net (Printf.sprintf "cont%d" i) in
        let _, _, addr =
          Network.connect net ~delay:(Time.us 50) fabric node
        in
        Node.add_route node (Addr.prefix_of_string "0.0.0.0/0")
          (List.nth (Node.ifaces node) 0).Node.remote;
        let stack = Tcp.create_stack node in
        let chain = Netfilter.create () in
        Tcp.set_output_chain stack (Some chain);
        let client = Store.Client.create node ~server:store_addr in
        let service = Printf.sprintf "par%d" i in
        let repl =
          Replicator.create ~engine:eng ~client
            ~conn_id:(Keys.conn_id ~service ~vrf:"v0")
            ~service ()
        in
        let hooks =
          {
            Bgp.Speaker.no_hooks with
            Bgp.Speaker.on_rx_replicate =
              (fun _ msg ~size:_ ~inferred_ack ->
                Replicator.on_rx_message repl msg ~inferred_ack);
            on_tx_replicate =
              (fun _ _ raw k -> Replicator.on_tx_message repl ~raw ~release:k);
            on_rib_change =
              (fun ~vrf ch -> Replicator.on_rib_change repl ~vrf ch);
            on_rx_applied = (fun _ _ -> Replicator.on_rx_applied repl);
          }
        in
        let spk =
          Bgp.Speaker.create ~profile:Baseline.tensor ~hooks ~stack
            ~local_asn:64900 ~router_id:addr ()
        in
        (spk, addr, repl, chain))
  in
  let peers =
    List.mapi
      (fun i (spk_dut, dut_addr, repl, chain) ->
        let spk, addr = make_peer net fabric i in
        ignore
          (Bgp.Speaker.add_peer spk
             {
               (Bgp.Speaker.default_peer_config ~vrf:"v0"
                  ~remote_addr:dut_addr ())
               with
               Bgp.Speaker.remote_asn = Some 64900;
               passive = true;
             });
        Bgp.Speaker.start spk;
        let p =
          Bgp.Speaker.add_peer spk_dut
            { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr ())
              with Bgp.Speaker.remote_asn = Some (65000 + i) }
        in
        Replicator.attach_output_chain repl chain ~local:dut_addr ~remote:addr;
        Bgp.Speaker.on_peer_up p (fun () ->
            match Bgp.Speaker.peer_session p with
            | Some s -> (
                match Bgp.Session.conn s with
                | Some c -> Replicator.session_established repl ~irs:(Tcp.irs c)
                | None -> ())
            | None -> ());
        Bgp.Speaker.start spk_dut;
        (spk, addr))
      duts
  in
  let deadline = Time.add (Engine.now eng) (Time.minutes 2) in
  let all_up () =
    List.for_all
      (fun (spk_dut, _, _, _) ->
        List.for_all
          (fun p -> Bgp.Speaker.peer_state p = Bgp.Session.Established)
          (Bgp.Speaker.peers spk_dut))
      duts
  in
  if not (run_until_cond eng ~deadline all_up) then nan
  else begin
    Engine.run_for eng (Time.sec 1);
    let t0 = Engine.now eng in
    List.iteri
      (fun i (spk, addr) ->
        announce spk ~vrf:"v0" ~base:(i * 100_000) ~next_hop:addr
          updates_per_as)
      peers;
    let deadline = Time.add t0 (Time.minutes 10) in
    let all_learned () =
      List.for_all
        (fun (spk_dut, _, _, _) ->
          Bgp.Speaker.updates_learned spk_dut >= updates_per_as)
        duts
    in
    if run_until_cond eng ~deadline all_learned then
      List.fold_left
        (fun acc (spk_dut, _, _, _) ->
          Float.max acc
            (Time.to_sec_f (Time.diff (Bgp.Speaker.last_rx_applied spk_dut) t0)))
        0.0 duts
    else nan
  end

let run ?(ases = 50) ?(updates_per_as = 10_000) () =
  {
    ases;
    updates_per_as;
    monolithic_s = monolithic ~ases ~updates_per_as;
    containerized_s = containerized ~ases ~updates_per_as;
  }

let print r =
  Report.section
    "Multi-AS learning (§4.2): monolithic process vs per-container split";
  Report.kv "workload" "%d ASes x %d updates = %d total" r.ases
    r.updates_per_as (r.ases * r.updates_per_as);
  Report.kv "monolithic (one process, one main thread)" "%s"
    (Report.fseconds r.monolithic_s);
  Report.kv "containerized (one TENSOR process per AS)" "%s"
    (Report.fseconds r.containerized_s);
  Report.kv "parallelism speedup" "%.1fx"
    (r.monolithic_s /. r.containerized_s);
  Report.note
    "paper: >= 5 s for any open-source implementation at 50 ASes x 10K, versus";
  Report.note
    "sub-second per TENSOR container (parallel, one-to-few ASes per process)."
