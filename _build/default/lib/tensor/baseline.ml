open Sim

let frr =
  {
    Bgp.Speaker.profile_name = "FRRouting";
    rx_per_update = Time.us 4;
    rx_per_msg = Time.us 30;
    tx_per_update = Time.us 3;
    tx_per_msg = Time.us 20;
    tx_clone_per_msg = Time.us 20;
    tx_coalesce = Time.ms 35;
    update_packing = true;
  }

let gobgp =
  {
    Bgp.Speaker.profile_name = "GoBGP";
    rx_per_update = Time.of_us_f 5.5;
    rx_per_msg = Time.us 35;
    (* No update packing: every peer pays full generation cost. *)
    tx_per_update = Time.us 6;
    tx_per_msg = Time.us 30;
    tx_clone_per_msg = Time.us 25;
    tx_coalesce = Time.ms 45;
    update_packing = false;
  }

let bird =
  {
    Bgp.Speaker.profile_name = "BIRD";
    rx_per_update = Time.us 6;
    rx_per_msg = Time.us 28;
    tx_per_update = Time.of_us_f 3.2;
    tx_per_msg = Time.us 18;
    (* BIRD's per-peer export machinery scales worse with peer count:
       the Figure 6(c) crossover against TENSOR near 600 peers. *)
    tx_clone_per_msg = Time.us 33;
    tx_coalesce = Time.ms 28;
    update_packing = true;
  }

let tensor =
  {
    Bgp.Speaker.profile_name = "TENSOR";
    (* Same engine as FRR plus replication bookkeeping on the receive
       path (the tcp_queue's matching work); the store write/read
       latencies are real and come from the Replicator. *)
    rx_per_update = Time.of_us_f 6.5;
    rx_per_msg = Time.us 40;
    tx_per_update = Time.us 3;
    tx_per_msg = Time.us 20;
    tx_clone_per_msg = Time.us 28;
    tx_coalesce = Time.ms 40;
    update_packing = true;
  }

let all = [ ("FRRouting", frr); ("GoBGP", gobgp); ("BIRD", bird) ]

type recovery = {
  detect : Time.span;
  human_initiate : Time.span;
  repair : Time.span;
  reconnect : Time.span;
  resync : Time.span;
}

let recovery_for (kind : Orch.Controller.failure_kind) =
  match kind with
  | Orch.Controller.App_failure ->
      (* Hold-timer/monitoring detection ~1 s, operator restarts the BGP
         process ~20 s, reconnect ~1 s, re-learn ~5 s  →  ~30 s total. *)
      {
        detect = Time.sec 1;
        human_initiate = Time.sec 3;
        repair = Time.sec 20;
        reconnect = Time.sec 1;
        resync = Time.sec 5;
      }
  | Orch.Controller.Container_failure ->
      (* Not applicable to the baselines (no virtualization); modelled as
         an application restart for completeness. *)
      {
        detect = Time.sec 1;
        human_initiate = Time.sec 3;
        repair = Time.sec 20;
        reconnect = Time.sec 1;
        resync = Time.sec 5;
      }
  | Orch.Controller.Host_failure ->
      (* Machine reboot with console access: ~15 s to notice, ~200 s to
         power-cycle and reload configurations, then reconnect+resync. *)
      {
        detect = Time.sec 15;
        human_initiate = Time.sec 5;
        repair = Time.sec 205;
        reconnect = Time.sec 5;
        resync = Time.sec 10;
      }
  | Orch.Controller.Host_network_failure ->
      (* No reboot: wait out the outage, then reconnect. *)
      {
        detect = Time.sec 5;
        human_initiate = 0;
        repair = Time.sec 5;
        reconnect = Time.sec 5;
        resync = Time.sec 10;
      }

let total r = r.detect + r.human_initiate + r.repair + r.reconnect + r.resync
