type solution = {
  name : string;
  recovery : string;
  dev_time_months : (int * int) option;
  dev_labor_man_months : int option;
  loc : string;
  deployment_cost_usd : int;
  maintenance_mh_per_month : int;
}

let rows =
  [
    {
      name = "FRRouting/GoBGP/BIRD";
      recovery = "(offline) tens of seconds to minutes";
      dev_time_months = None;
      dev_labor_man_months = None;
      loc = "70K-418K";
      deployment_cost_usd = 3_000;
      maintenance_mh_per_month = 72;
    };
    {
      name = "NSR-enabled router";
      recovery = "(online) seconds";
      dev_time_months = Some (48, 60);
      dev_labor_man_months = Some 500;
      loc = "+50K";
      deployment_cost_usd = 15_000;
      maintenance_mh_per_month = 110;
    };
    {
      name = "TENSOR";
      recovery = "(online) seconds";
      dev_time_months = Some (4, 12);
      dev_labor_man_months = Some 25;
      loc = "+8K";
      deployment_cost_usd = 3_000;
      maintenance_mh_per_month = 10;
    };
  ]

let print () =
  Report.section "Table 2: summary of BGP solutions (operational cost model)";
  Report.table
    ~header:
      [ "solution"; "failure recovery"; "dev time"; "dev labor"; "LoC";
        "deploy $"; "maint mh/mo" ]
    (List.map
       (fun s ->
         [
           s.name;
           s.recovery;
           (match s.dev_time_months with
           | Some (lo, hi) -> Printf.sprintf "%d-%d months" lo hi
           | None -> "-");
           (match s.dev_labor_man_months with
           | Some m -> Printf.sprintf "~%d man-months" m
           | None -> "-");
           s.loc;
           Printf.sprintf "~%d" s.deployment_cost_usd;
           Printf.sprintf "~%d" s.maintenance_mh_per_month;
         ])
       rows);
  let find n = List.find (fun s -> s.name = n) rows in
  let nsr = find "NSR-enabled router" and tensor = find "TENSOR" in
  let ratio a b = float_of_int a /. float_of_int b in
  Report.subsection "derived ratios (TENSOR vs NSR-enabled routers)";
  (match (nsr.dev_labor_man_months, tensor.dev_labor_man_months) with
  | Some a, Some b ->
      Report.kv "development labor" "%.0fx cheaper (paper: ~20x)" (ratio a b)
  | _ -> ());
  Report.kv "deployment cost" "%.0fx cheaper (paper: ~5x)"
    (ratio nsr.deployment_cost_usd tensor.deployment_cost_usd);
  Report.kv "maintenance" "%.0fx cheaper (paper: ~10x)"
    (ratio nsr.maintenance_mh_per_month tensor.maintenance_mh_per_month);
  (match (nsr.dev_time_months, tensor.dev_time_months) with
  | Some (_, hi_a), Some (_, hi_b) ->
      Report.kv "development duration" "%.0fx shorter (paper: ~4x)"
        (ratio hi_a hi_b)
  | _ -> ())
