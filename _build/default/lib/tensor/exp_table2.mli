(** Table 2: summary of BGP solutions — failure recovery class,
    development costs, code size, deployment and maintenance costs.

    This is the paper's operational cost model, reproduced as structured
    data with the derived ratios (development ÷20, deployment ÷5,
    maintenance ÷10 versus NSR-enabled routers) computed rather than
    asserted. *)

type solution = {
  name : string;
  recovery : string;
  dev_time_months : (int * int) option;  (** (min, max); None = n/a. *)
  dev_labor_man_months : int option;
  loc : string;
  deployment_cost_usd : int;
  maintenance_mh_per_month : int;
}

val rows : solution list
val print : unit -> unit
