(** Ablations of TENSOR's design decisions (DESIGN.md §4).

    1. {b Cold vs preheated backups} (§3.3.2): migration time for a
       container failure with the backup created at migration time versus
       kept warm. Preheat skips the ~1 s boot, at the cost of standby
       resources.

    2. {b Synchronous vs asynchronous replication} (§3.1.1, §5): with the
       tcp_queue hold disabled, ACKs race ahead of the store and the
       NSR safety invariant (no acknowledged-but-unreplicated message)
       breaks — counted by a wire monitor. With it, zero violations at a
       bounded latency overhead.

    3. {b Local vs remote store} (§5 "Remote replication for disaster
       recovery"): synchronous replication to a distant site pushes the
       ACK delay past the Figure 5(a) threshold and slows BGP learning;
       asynchronous remote replication restores speed but reopens the
       consistency window. *)

type preheat_result = {
  cold_total_s : float;  (** Injection → TCP re-synced, cold backup. *)
  preheat_total_s : float;
}

val run_preheat : unit -> preheat_result
val print_preheat : preheat_result -> unit

type sync_result = {
  mode : string;
  store_rtt_ms : float;
  learn_s : float;  (** Time to learn 100 000 updates. *)
  mean_ack_hold_ms : float;
      (** Mean tcp_queue hold per released segment — the effective ACK
          delay, to compare with Figure 5(a)'s thresholds. *)
  violations : int;  (** ACK-before-replication events observed. *)
  nsr_held : bool;
      (** A container failure injected mid-flood stays invisible to the
          peer (zero session drops). With asynchronous replication the
          resumed stream has a gap the peer cannot fill — it already
          discarded the acknowledged data — so the session dies. *)
}

val run_replication_modes : unit -> sync_result list
(** [local sync; remote sync; remote async]. *)

val print_replication_modes : sync_result list -> unit

type hook_result = { hook : string; cost_ns : int; throughput_bps : float }

val run_hook_overhead : unit -> hook_result list
(** §5 "Alternative designs": the packet-interception technology's
    per-segment overhead against small-packet TCP throughput — no
    interception, eBPF (~150 ns) and Netfilter (~500 ns). The paper cites
    eBPF outperforming Netfilter (Miano et al.) and leaves adopting it as
    future work; this quantifies what the switch would buy. *)

val print_hook_overhead : hook_result list -> unit
