(** Deployment-scale check (§4.4 "Operational experience").

    The paper's production fleet runs 400 servers with 31 000 BGP
    connections at zero link downtime. This experiment stands up a
    scaled-down echo — dozens of hosts, one containerized service per
    peering AS — drives routes everywhere, then kills an entire host
    (migrating its whole batch of services at once) and verifies the
    fleet-wide invariant: not one of the peering ASes observes anything.

    It doubles as a scalability check on the simulator itself: the
    returned statistics include the event count and wall time. *)

type result = {
  hosts : int;
  services : int;
  established_s : float;  (** Wall of simulated time to bring all up. *)
  routes_total : int;
  host_failure_migrated : int;  (** Services moved by the host failure. *)
  peer_drops : int;  (** Must be 0. *)
  sim_events : int;
  wall_s : float;
}

val run : ?hosts:int -> ?services:int -> ?routes_per_service:int -> unit -> result
val print : result -> unit
