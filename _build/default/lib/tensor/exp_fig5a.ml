open Sim
open Netsim

type point = { delay_ms : float; throughput_bps : float }
type series = { packet_size : int; points : point list }

(* Endpoint packet rate: a fixed per-segment cost plus a per-byte cost
   (real stacks are limited in both pps and bps). With a 400 KB window the
   no-impact threshold is W / (rate(size) × size); this calibration puts
   the thresholds at ~21/11/5/3/2.1 ms for 100/200/500/1000/2000 B packets —
   the paper's 20/10/5/2/2. *)
let proc_cost = Time.of_us_f 2.5
let proc_cost_per_kb = Time.of_us_f 2.9
let rcv_wnd = 400_000

let one_run ~packet_size ~delay ~measure_span =
  let eng = Engine.create () in
  let net = Network.create eng in
  let sender = Network.add_node net "sender" in
  let receiver = Network.add_node net "receiver" in
  let _, _, dst = Network.connect net ~delay:(Time.us 50) sender receiver in
  let s_tx = Tcp.create_stack ~proc_cost ~proc_cost_per_kb sender in
  let s_rx = Tcp.create_stack ~proc_cost ~proc_cost_per_kb receiver in
  (* Hold the receiver's pure ACKs for the configured delay. *)
  if delay > 0 then begin
    let chain = Netfilter.create () in
    ignore
      (Netfilter.add_rule chain (fun pkt ->
           match pkt.Packet.payload with
           | Tcp.Segment.Tcp seg when Tcp.Segment.is_pure_ack seg ->
               Netfilter.Queue 0
           | _ -> Netfilter.Accept));
    Netfilter.set_consumer (Netfilter.queue chain 0) (fun _ ~reinject ->
        ignore
          (Engine.schedule_after eng delay (fun () ->
               reinject Netfilter.Accept)));
    Tcp.set_output_chain s_rx (Some chain)
  end;
  let received = ref 0 in
  Tcp.listen s_rx ~port:5001 (fun c ->
      Tcp.on_data c (fun d -> received := !received + String.length d));
  let conn =
    Tcp.connect s_tx ~mss:packet_size ~rcv_wnd ~dst ~dst_port:5001 ()
  in
  (* iperf: keep a few windows of data buffered ahead of the ACK point. *)
  let chunk = String.make (64 * 1024) 'i' in
  let written = ref 0 in
  let refill () =
    if Tcp.state conn = Tcp.Established then begin
      let acked = Tcp.snd_una conn - Tcp.iss conn in
      while !written - acked < 3 * rcv_wnd do
        Tcp.write conn chunk;
        written := !written + String.length chunk
      done
    end
  in
  Tcp.on_established conn (fun () -> refill ());
  let refill_timer = Engine.every eng (Time.ms 5) refill in
  (* Warm up, then measure. *)
  let warmup = Time.ms 300 in
  Engine.run_until eng warmup;
  let start_bytes = !received in
  Engine.run_until eng (Time.add warmup measure_span);
  Engine.stop_timer refill_timer;
  let bytes = !received - start_bytes in
  float_of_int (bytes * 8) /. Time.to_sec_f measure_span

let run ?(packet_sizes = [ 100; 200; 500; 1000; 2000 ])
    ?(delays_ms = [ 0.; 1.; 2.; 5.; 10.; 20.; 50. ])
    ?(measure_span = Time.ms 400) () =
  List.map
    (fun packet_size ->
      let points =
        List.map
          (fun delay_ms ->
            let throughput_bps =
              one_run ~packet_size ~delay:(Time.of_ms_f delay_ms) ~measure_span
            in
            { delay_ms; throughput_bps })
          delays_ms
      in
      { packet_size; points })
    packet_sizes

let threshold_ms series =
  match series.points with
  | [] -> nan
  | base :: _ ->
      List.fold_left
        (fun acc p ->
          if p.throughput_bps >= 0.85 *. base.throughput_bps then
            Float.max acc p.delay_ms
          else acc)
        0.0 series.points

let print (results : series list) =
  Report.section "Figure 5(a): TCP max throughput vs acknowledgment delay";
  let delays =
    match results with
    | s :: _ -> List.map (fun p -> p.delay_ms) s.points
    | [] -> []
  in
  Report.table
    ~header:
      ("pkt size"
      :: List.map (fun d -> Printf.sprintf "%gms" d) delays)
    (List.map
       (fun s ->
         Printf.sprintf "%dB" s.packet_size
         :: List.map (fun p -> Report.fbps p.throughput_bps) s.points)
       results);
  Report.subsection "no-impact delay threshold per packet size";
  let paper_threshold = function
    | 100 -> "20 ms"
    | 200 -> "10 ms"
    | 500 -> "5 ms"
    | 1000 | 2000 -> "2 ms"
    | _ -> "-"
  in
  Report.table
    ~header:[ "pkt size"; "measured threshold"; "paper" ]
    (List.map
       (fun s ->
         [
           Printf.sprintf "%dB" s.packet_size;
           Printf.sprintf "%g ms" (threshold_ms s);
           paper_threshold s.packet_size;
         ])
       results);
  Report.note
    "shape check: throughput flat below the threshold, then decays as W/(RTT+delay);";
  Report.note
    "thresholds shrink with packet size because the baseline (pps-limited) rate grows."
