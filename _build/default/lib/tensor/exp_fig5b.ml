open Sim
open Netsim

type row = { records : int; read_ms : float; write_ms : float }

let record_value = String.make 4096 'v'
let record_key i = Printf.sprintf "%-86s%06d" "vrf|quad4tuple|peerclient" i

let run ?(counts = [ 1; 10; 70; 100; 500; 1_000; 5_000; 10_000 ]) () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let app = Network.add_node net "bgp" in
  let db = Network.add_node net "redis" in
  let _, _, db_addr = Network.connect net ~delay:(Time.us 100) app db in
  ignore (Store.Server.create db);
  let client = Store.Client.create app ~server:db_addr in
  let timed f =
    let t0 = Engine.now eng in
    let t1 = ref t0 in
    f (fun () -> t1 := Engine.now eng);
    Engine.run eng;
    Time.to_ms_f (Time.diff !t1 t0)
  in
  List.map
    (fun records ->
      let pairs = List.init records (fun i -> (record_key i, record_value)) in
      let keys = List.map fst pairs in
      let write_ms =
        timed (fun k ->
            Store.Client.set client ~timeout:(Time.minutes 10) pairs (fun _ ->
                k ()))
      in
      let read_ms =
        timed (fun k ->
            Store.Client.get client ~timeout:(Time.minutes 10) keys (fun _ ->
                k ()))
      in
      { records; read_ms; write_ms })
    counts

let print rows =
  Report.section "Figure 5(b): store read/write total time vs record count";
  Report.table
    ~header:[ "records"; "read total"; "write total"; "write/read" ]
    (List.map
       (fun r ->
         [
           string_of_int r.records;
           Printf.sprintf "%.2f ms" r.read_ms;
           Printf.sprintf "%.2f ms" r.write_ms;
           Printf.sprintf "%.2fx" (r.write_ms /. r.read_ms);
         ])
       rows);
  Report.note "paper: 1 read < 0.5 ms; 1 write ~1 ms (~2.5x read);";
  Report.note "       10 writes < 2 ms; 10K reads ~200 ms; 10K writes ~500 ms."
