type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     bounds far below 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 0.0 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
