type entry = { at : Time.t; category : string; message : string }

type t = { mutable enabled : bool; mutable rev_entries : entry list }

let create ?(enabled = true) () = { enabled; rev_entries = [] }
let enable t flag = t.enabled <- flag

let emit t engine category message =
  if t.enabled then
    t.rev_entries <-
      { at = Engine.now engine; category; message } :: t.rev_entries

let emitf t engine category fmt =
  Format.kasprintf (fun message -> emit t engine category message) fmt

let entries t = List.rev t.rev_entries

let find t ~category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let first t ~category =
  match find t ~category with [] -> None | e :: _ -> Some e

let last t ~category =
  match List.rev (find t ~category) with [] -> None | e :: _ -> Some e

let clear t = t.rev_entries <- []

let dump t fmt =
  List.iter
    (fun e ->
      Format.fprintf fmt "[%a] %s: %s@." Time.pp e.at e.category e.message)
    (entries t)
