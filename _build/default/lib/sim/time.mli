(** Simulated time.

    All simulation clocks count integer nanoseconds from the start of the
    run. A 63-bit OCaml [int] holds about 292 simulated years, far beyond
    any experiment in this repository. [t] is an absolute instant; [span]
    is a duration. Both are plain ints so they can be compared and stored
    without allocation. *)

type t = int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. Negative spans are not meaningful and are
    rejected by the engine when scheduling. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val minutes : int -> span
(** [minutes n] is a span of [n] minutes. *)

val hours : int -> span
(** [hours n] is a span of [n] hours. *)

val of_sec_f : float -> span
(** [of_sec_f s] converts fractional seconds to a span, rounding to the
    nearest nanosecond. *)

val of_ms_f : float -> span
(** [of_ms_f m] converts fractional milliseconds to a span. *)

val of_us_f : float -> span
(** [of_us_f u] converts fractional microseconds to a span. *)

val to_sec_f : span -> float
(** [to_sec_f s] is the span in fractional seconds. *)

val to_ms_f : span -> float
(** [to_ms_f s] is the span in fractional milliseconds. *)

val to_us_f : span -> float
(** [to_us_f s] is the span in fractional microseconds. *)

val add : t -> span -> t
(** [add t s] is the instant [s] after [t]. *)

val diff : t -> t -> span
(** [diff later earlier] is the (possibly negative) span between two
    instants. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints an instant with an adaptive unit, e.g. ["1.250s"],
    ["350.0ms"], ["75us"]. *)

val pp_span : Format.formatter -> span -> unit
(** Same rendering as {!pp}, for durations. *)

val to_string : t -> string
(** [to_string t] is {!pp} rendered to a string. *)
