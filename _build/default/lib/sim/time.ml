type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let minutes n = n * 60_000_000_000
let hours n = n * 3_600_000_000_000

let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let of_ms_f m = int_of_float (Float.round (m *. 1e6))
let of_us_f u = int_of_float (Float.round (u *. 1e3))

let to_sec_f s = float_of_int s /. 1e9
let to_ms_f s = float_of_int s /. 1e6
let to_us_f s = float_of_int s /. 1e3

let add t s = t + s
let diff later earlier = later - earlier

let pp fmt t =
  let a = abs t in
  if a >= 1_000_000_000 then Format.fprintf fmt "%.3fs" (to_sec_f t)
  else if a >= 1_000_000 then Format.fprintf fmt "%.3fms" (to_ms_f t)
  else if a >= 1_000 then Format.fprintf fmt "%.1fus" (to_us_f t)
  else Format.fprintf fmt "%dns" t

let pp_span = pp
let to_string t = Format.asprintf "%a" pp t
