(** Lightweight event tracing.

    A trace collects timestamped, categorized strings during a run.
    Experiments use it to extract the instants of interest (failure
    detected, migration started, first packet after recovery, …) without
    coupling subsystems to the experiment code: subsystems emit events and
    experiments query them afterwards. Tracing can be disabled globally for
    long benchmark runs. *)

type t

type entry = { at : Time.t; category : string; message : string }

val create : ?enabled:bool -> unit -> t
(** [create ()] is an empty, enabled trace. *)

val enable : t -> bool -> unit
(** Toggles recording (emission becomes a no-op when disabled). *)

val emit : t -> Engine.t -> string -> string -> unit
(** [emit t engine category message] appends an entry at the current
    simulated time. *)

val emitf :
  t -> Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!emit}. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val find : t -> category:string -> entry list
(** Entries of one category, oldest first. *)

val first : t -> category:string -> entry option
(** Oldest entry of a category. *)

val last : t -> category:string -> entry option
(** Newest entry of a category. *)

val clear : t -> unit

val dump : t -> Format.formatter -> unit
(** Prints every entry as ["[time] category: message"] lines. *)
