lib/sim/engine.ml: Array Printf Rng Time
