lib/sim/metrics.ml: Array Engine Float Hashtbl List Stdlib Time
