lib/sim/rng.mli:
