(** Deterministic pseudo-random numbers for the simulator.

    Every engine owns one generator seeded explicitly, so a run is fully
    reproducible from its seed. The generator is SplitMix64, which has good
    statistical quality for simulation purposes and a trivially portable
    implementation. Generators can be split so independent subsystems draw
    from independent streams without perturbing each other. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives a new independent generator, advancing [t] once. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution
    (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] is [exp (gaussian ~mu ~sigma)]: the
    parameters are those of the underlying normal, so the median is
    [exp mu]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] is a uniformly random element. Raises
    [Invalid_argument] on an empty array. *)
