open Sim
open Netsim

type Rpc.body +=
  | Agent_check of Addr.t
  | Agent_check_result of bool

type t = {
  aname : string;
  anode : Node.t;
  aaddr : Addr.t;
  relays : (string, Bfd.Relay.t) Hashtbl.t;
}

let name t = t.aname
let node t = t.anode
let addr t = t.aaddr

let relay_key id vrf = id ^ "|" ^ vrf

let create net ~fabric aname =
  let anode = Network.add_node net aname in
  let _, fabric_side, agent_side = Network.connect net ~delay:(Time.us 20) fabric anode in
  Node.add_route anode (Addr.prefix_of_string "0.0.0.0/0") fabric_side;
  let t =
    { aname; anode; aaddr = agent_side; relays = Hashtbl.create 32 }
  in
  let ep = Rpc.endpoint anode in
  Rpc.serve_ping ep ~service:"health";
  Rpc.serve_ping ep ~service:"ipsla";
  Rpc.serve ep ~service:"agent_ctl" (fun ~src:_ body ~reply ->
      match body with
      | Agent_check target ->
          Rpc.ping ep ~timeout:(Time.ms 150) ~dst:target ~service:"ipsla"
            (fun ok -> reply (Agent_check_result ok))
      | _ -> reply (Agent_check_result false));
  t

let start_relay t ~id ~src ~dst ~vrf ~my_disc ~your_disc =
  let key = relay_key id vrf in
  (match Hashtbl.find_opt t.relays key with
  | Some old -> Bfd.Relay.stop old
  | None -> ());
  let relay =
    Bfd.Relay.start t.anode ~src ~dst ~vrf ~my_disc ~your_disc ()
  in
  Hashtbl.replace t.relays key relay

let stop_relay t ~id ~vrf =
  let key = relay_key id vrf in
  match Hashtbl.find_opt t.relays key with
  | Some relay ->
      Bfd.Relay.stop relay;
      Hashtbl.remove t.relays key
  | None -> ()

let relay_count t = Hashtbl.length t.relays
let fail t = Node.set_up t.anode false
let recover t = Node.set_up t.anode true
