(** Containers — TENSOR's minimum operation unit (§3.2).

    A container is a lightweight virtualized environment holding one BGP
    process and one BFD process. In the simulator each container owns a
    {!Netsim.Node.t} joined to its host by a vEth-pair link; the host
    forwards between the fabric and the vEth, so the containerization is
    transparent to everything outside the host (§3.2.3).

    The container models boot time (the paper's ~1 s container start,
    versus ~20 min monolithic configuration loading, §3.2.1), service
    addresses (the VRF addresses that migrate with the BGP process), a
    resource footprint (memory/CPU — Figure 6(d)), and failure states for
    the injection experiments of Table 1. Containers are created through
    {!Host.create_container}. *)

type state = Created | Booting | Running | Failed | Stopped

val pp_state : Format.formatter -> state -> unit

type t

val id : t -> string
val node : t -> Netsim.Node.t
(** The container's network namespace. *)

val host_name : t -> string
val state : t -> state

val veth_addr : t -> Netsim.Addr.t
(** Container-side address of the vEth pair. *)

val boot : t -> unit
(** Created/Stopped/Failed → Booting → (after the boot span) Running.
    Registers the gRPC ["health"] responder and fires the on_running
    callbacks. Idempotent while Booting/Running. *)

val on_running : t -> (t -> unit) -> unit
(** Application bootstrap hooks, run (in registration order) each time
    the container reaches Running. *)

val boot_span : t -> Sim.Time.span

val assign_service_addr : t -> Netsim.Addr.t -> unit
(** Adds a service (VRF) address to the container and installs the host
    route towards the vEth. The fabric-side route is the deployment's
    responsibility. *)

val service_addrs : t -> Netsim.Addr.t list

val fail : t -> unit
(** Container failure (E2): the node goes silent, state becomes Failed. *)

val stop : t -> unit
(** Administrative stop: node silent, state Stopped. *)

val kill_network : t -> unit
(** Virtual-network failure (E4): processes keep running (timers fire)
    but the node can no longer send or receive. Also the fencing
    primitive used against split-brain. *)

val set_resources : t -> mem_mb:float -> cpu_pct:float -> unit
(** Declared footprint, accounted by the host while Running. *)

val mem_mb : t -> float
val cpu_pct : t -> float

(** Used by {!Host}; not part of the public workflow. *)
val internal_make :
  id:string ->
  host_name:string ->
  node:Netsim.Node.t ->
  veth_addr:Netsim.Addr.t ->
  host_route:(Netsim.Addr.t -> unit) ->
  boot_span:Sim.Time.span ->
  t
