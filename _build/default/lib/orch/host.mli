(** Host machines running TENSOR containers.

    A host owns a forwarding node on the fabric, creates containers
    (vEth pair + host-side route, the §3.2.3 underlay design), runs a
    Docker-daemon-like process monitor, accounts container resources
    (Figure 6(d)), and implements the split-brain defences:

    - a {e controller lease}: if no controller heartbeat arrives for the
      lease timeout, the host fences its own containers (kills their
      networking). The lease is shorter than the controller's host-failure
      confirmation timer, so by the time the controller migrates, a
      partitioned-but-alive primary can no longer speak — this closes the
      window the paper's "no re-use before manual reset" rule addresses;
    - explicit {!fence} / {!reset} for the controller's quarantine flow.

    Failure injection covers Table 1's host-machine (E3) and host-network
    (E5) scenarios. *)

(** RPC vocabulary of the host's ["host_ctl"] service (controller side
    constructs requests; host replies). *)
type Netsim.Rpc.body +=
  | Host_check_container of string  (** → {!Host_container_state}. *)
  | Host_container_state of string
  | Host_kill_container of string  (** → {!Host_ack}. *)
  | Host_fence  (** → {!Host_ack}. *)
  | Host_ack

type t

val create :
  Netsim.Network.t ->
  fabric:Netsim.Node.t ->
  ?boot_span:Sim.Time.span ->
  ?lease_timeout:Sim.Time.span ->
  string ->
  t
(** [create net ~fabric name] creates the host, joins it to the fabric
    node, and starts the lease watchdog ([lease_timeout] default 3 s;
    container [boot_span] default 1 s). *)

val name : t -> string
val node : t -> Netsim.Node.t
val addr : t -> Netsim.Addr.t
(** The host's fabric-facing address. *)

val uplink : t -> Netsim.Link.t

val create_container :
  t -> ?boot_span:Sim.Time.span -> string -> Container.t
(** Creates (but does not boot) a container with its vEth pair. The
    container id must be unique on the host. *)

val containers : t -> Container.t list
val find_container : t -> string -> Container.t option

val memory_used_mb : t -> float
val cpu_used_pct : t -> float
(** Sums over Running containers (Figure 6(d)). *)

(** {1 Failures} *)

val fail : t -> unit
(** Host-machine failure (E3): the host and every container go silent. *)

val recover : t -> unit
(** Power restored: the host node comes back; containers stay dead and
    the host stays fenced until {!reset} (the paper's manual-reset
    rule). *)

val network_fail : t -> unit
(** Host-network failure (E5): the fabric uplink goes down; containers
    keep running locally. *)

val network_recover : t -> unit

val is_up : t -> bool
val is_fenced : t -> bool

val fence : t -> unit
(** Kill all container networking now (controller-ordered or
    lease-expiry). *)

val reset : t -> unit
(** Manual reset: clears the fence and re-arms the lease. Containers must
    be re-created/re-booted by the deployment layer. *)

val heartbeat_received : t -> unit
(** Called by the ["health"] responder; feeds the lease watchdog. Wired
    automatically — exposed for tests. *)

val last_heartbeat : t -> Sim.Time.t
