lib/orch/agent.ml: Addr Bfd Hashtbl Netsim Network Node Rpc Sim Time
