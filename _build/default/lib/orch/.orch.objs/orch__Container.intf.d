lib/orch/container.mli: Format Netsim Sim
