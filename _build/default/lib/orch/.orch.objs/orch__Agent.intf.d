lib/orch/agent.mli: Netsim
