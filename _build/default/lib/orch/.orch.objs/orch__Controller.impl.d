lib/orch/controller.ml: Addr Agent Container Engine Format Hashtbl Host List Netsim Network Node Rpc Sim String Time Trace
