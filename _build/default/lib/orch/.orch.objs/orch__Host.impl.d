lib/orch/host.ml: Addr Container Engine Format Link List Netsim Network Node Printf Rpc Sim String Time
