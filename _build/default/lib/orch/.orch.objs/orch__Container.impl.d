lib/orch/container.ml: Addr Engine Format List Netsim Node Rpc Sim Time
