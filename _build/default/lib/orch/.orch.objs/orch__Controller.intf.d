lib/orch/controller.mli: Agent Container Format Host Netsim Sim
