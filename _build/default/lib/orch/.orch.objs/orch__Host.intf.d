lib/orch/host.mli: Container Netsim Sim
