(** The agent server (§3.3.2).

    A plain (non-containerized) server that (i) runs duplicate BFD
    transmitters — {!Bfd.Relay} — for every container in the cluster, so
    a primary's silence during reboot or migration is never observed by
    the remote AS, and (ii) answers the controller's IP SLA check
    requests, providing the independent measurement point that host-level
    failure localization requires.

    The agent is weakly coupled: its own failure does not disturb normal
    operation (relays are redundant transmissions while the primary is
    healthy), matching the paper's availability argument. *)

type Netsim.Rpc.body +=
  | Agent_check of Netsim.Addr.t
  | Agent_check_result of bool

type t

val create : Netsim.Network.t -> fabric:Netsim.Node.t -> string -> t
(** Joins the fabric and serves ["health"], ["ipsla"] and ["agent_ctl"]
    (the {!Agent_check} probe service). *)

val name : t -> string
val node : t -> Netsim.Node.t
val addr : t -> Netsim.Addr.t

val start_relay :
  t ->
  id:string ->
  src:Netsim.Addr.t ->
  dst:Netsim.Addr.t ->
  vrf:string ->
  my_disc:int ->
  your_disc:int ->
  unit
(** Starts (or replaces) the duplicate BFD transmitter for a container
    session, keyed by [id ^ vrf]. *)

val stop_relay : t -> id:string -> vrf:string -> unit
val relay_count : t -> int

val fail : t -> unit
(** The agent machine goes down (relays stop transmitting). *)

val recover : t -> unit
(** Relays resume (their timers kept ticking; transmission checks node
    liveness). *)
