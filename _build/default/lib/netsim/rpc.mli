(** Request/response messaging over the simulated network.

    Used for every control-plane channel in the reproduction: the
    Redis-like store protocol, the controller's gRPC-style health checks,
    and IP SLA probes. Bodies are an extensible variant so each service
    defines its own request and response constructors without [netsim]
    depending on them.

    Calls carry a timeout; the absence of a reply within it produces
    [Error `Timeout], which is exactly the failure signal the TENSOR
    controller's liveness probes consume. There is no retransmission: the
    control channels in the modelled deployment are engineered loss-free,
    and a lost or unanswerable request is precisely a detected failure. *)

type body = ..

type body += Ping | Pong
(** Built-in bodies for liveness probes (gRPC heartbeat, IP SLA). *)

type endpoint

type error = [ `Timeout ]

val endpoint : Node.t -> endpoint
(** The node's RPC endpoint, created on first use (idempotent per node). *)

val node : endpoint -> Node.t

val serve :
  endpoint ->
  service:string ->
  (src:Addr.t -> body -> reply:(?size:int -> body -> unit) -> unit) ->
  unit
(** [serve ep ~service handler] registers the handler for requests naming
    [service]. The handler may call [reply] immediately or from a later
    event (e.g. after a modelled processing delay); [size] is the response
    wire size (default 128 B). Re-registering replaces the handler. *)

val unserve : endpoint -> service:string -> unit

val call :
  endpoint ->
  ?timeout:Sim.Time.span ->
  ?size:int ->
  dst:Addr.t ->
  service:string ->
  body ->
  ((body, error) result -> unit) ->
  unit
(** [call ep ~dst ~service body k] sends a request ([size] wire bytes,
    default 128) and invokes [k] exactly once: with the response, or with
    [Error `Timeout] after [timeout] (default 1 s). Responses arriving
    after the timeout are discarded. *)

val ping :
  endpoint ->
  ?timeout:Sim.Time.span ->
  dst:Addr.t ->
  service:string ->
  (bool -> unit) ->
  unit
(** Convenience probe: sends {!Ping}, yields [true] on any reply. The
    destination must serve [service] (conventionally ["health"] for gRPC
    heartbeats and ["ipsla"] for IP SLA probes). *)

val serve_ping : endpoint -> service:string -> unit
(** Installs a trivial responder answering {!Ping} with {!Pong}. *)
