lib/netsim/network.mli: Addr Link Node Sim
