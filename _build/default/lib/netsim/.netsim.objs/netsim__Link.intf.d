lib/netsim/link.mli: Packet Sim
