lib/netsim/network.ml: Addr Engine Hashtbl Link List Node Printf Sim
