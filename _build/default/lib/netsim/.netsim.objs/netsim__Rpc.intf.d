lib/netsim/rpc.mli: Addr Node Sim
