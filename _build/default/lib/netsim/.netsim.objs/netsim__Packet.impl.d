lib/netsim/packet.ml: Addr Format
