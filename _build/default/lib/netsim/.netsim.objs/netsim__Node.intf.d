lib/netsim/node.mli: Addr Link Packet Sim
