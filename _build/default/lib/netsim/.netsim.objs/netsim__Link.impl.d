lib/netsim/link.ml: Engine List Packet Printf Rng Sim Time
