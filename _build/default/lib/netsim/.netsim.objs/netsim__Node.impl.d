lib/netsim/node.ml: Addr Engine Int Link List Packet Sim
