lib/netsim/rpc.ml: Addr Engine Hashtbl Node Packet Sim Time
