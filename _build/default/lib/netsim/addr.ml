type t = int

let mask32 = 0xFFFFFFFF
let of_int v = v land mask32
let to_int t = t

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
         int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a < 256 && b >= 0 && b < 256 && c >= 0 && c < 256
             && d >= 0 && d < 256 ->
          of_octets a b c d
      | _ -> invalid_arg (Printf.sprintf "Addr.of_string: %S" s))
  | _ -> invalid_arg (Printf.sprintf "Addr.of_string: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF)
    (t land 0xFF)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let succ t = (t + 1) land mask32
let offset t n = (t + n) land mask32

type prefix = { base : t; len : int }

let netmask len = if len = 0 then 0 else mask32 land (mask32 lsl (32 - len))

let prefix addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Addr.prefix: bad length %d" len);
  { base = addr land netmask len; len }

let prefix_of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg (Printf.sprintf "Addr.prefix_of_string: %S" s)
  | Some i -> (
      let addr = of_string (String.sub s 0 i) in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some len -> prefix addr len
      | None -> invalid_arg (Printf.sprintf "Addr.prefix_of_string: %S" s))

let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.base) p.len
let pp_prefix fmt p = Format.pp_print_string fmt (prefix_to_string p)

let compare_prefix p q =
  match Int.compare p.base q.base with 0 -> Int.compare p.len q.len | c -> c

let equal_prefix p q = p.base = q.base && p.len = q.len
let contains p a = a land netmask p.len = p.base

let subsumes p q = q.len >= p.len && contains p q.base

let prefix_size p = if p.len = 0 then 1 lsl 32 else 1 lsl (32 - p.len)

let host_in p n =
  if n < 0 || n >= prefix_size p then
    invalid_arg
      (Printf.sprintf "Addr.host_in: %d outside %s" n (prefix_to_string p));
  offset p.base n
