(** Simulated hosts and routers.

    A node owns interfaces (attachments to links), local addresses, a
    static route table, and a stack of protocol handlers. Packets whose
    destination is a local address are offered to the handlers in
    registration order until one consumes them; other packets are
    forwarded when forwarding is enabled (router behaviour) or dropped
    (host behaviour).

    Nodes can be taken down to model machine failures: a down node drops
    all traffic and its timers' effects are the owning subsystems'
    responsibility (they check {!is_up}). *)

type t

type iface = {
  link : Link.t;
  side : Link.side;
  local : Addr.t;
  remote : Addr.t;
}

val create : Sim.Engine.t -> ?forwarding:bool -> string -> t
(** [create engine name] is an up node with no interfaces. [forwarding]
    defaults to [false]. *)

val name : t -> string
val engine : t -> Sim.Engine.t

val attach :
  t -> Link.t -> Link.side -> local:Addr.t -> remote:Addr.t -> unit
(** Plugs the node into one side of a link, adding [local] to the node's
    addresses and installing the node's receive path as the link-side
    callback. *)

val add_address : t -> Addr.t -> unit
(** Adds a non-interface (loopback-style) local address. *)

val remove_address : t -> Addr.t -> unit
(** Removes a local address (e.g. a service address migrating away). *)

val addresses : t -> Addr.t list
val ifaces : t -> iface list

val has_address : t -> Addr.t -> bool

val add_route : t -> Addr.prefix -> Addr.t -> unit
(** [add_route t prefix gateway] installs a static route. The gateway must
    be (or become) the remote of some interface for the route to work. *)

val add_handler : t -> (Packet.t -> bool) -> unit
(** Registers a protocol handler. Handlers run in registration order; the
    first to return [true] consumes the packet. *)

val send : t -> Packet.t -> unit
(** Emits a packet: local destinations are delivered in a fresh event
    (never reentrantly); otherwise the egress interface is chosen by
    direct-neighbour match, then longest-prefix match over static routes.
    Packets with no route are counted and dropped. *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** A down node drops everything it would send or receive. *)

val unrouted_packets : t -> int
(** Packets dropped for lack of a route. *)

val unclaimed_packets : t -> int
(** Locally addressed packets no handler consumed. *)
