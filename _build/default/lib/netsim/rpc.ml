open Sim

type body = ..
type body += Ping | Pong

type error = [ `Timeout ]

type Packet.payload +=
  | Request of { call_id : int; service : string; body : body }
  | Response of { call_id : int; body : body }

type pending = {
  k : (body, error) result -> unit;
  timeout_handle : Engine.handle;
}

type endpoint = {
  ep_node : Node.t;
  services : (string, src:Addr.t -> body -> reply:(?size:int -> body -> unit) -> unit) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
}

(* One endpoint per node, keyed physically: nodes are unique mutable
   records so physical identity is the right notion. *)
let registry : (string, endpoint) Hashtbl.t = Hashtbl.create 64
let next_call_id = ref 0

let source_addr node =
  match Node.addresses node with
  | a :: _ -> a
  | [] -> invalid_arg "Rpc: node has no address"

let node ep = ep.ep_node

let handle_packet ep (pkt : Packet.t) =
  match pkt.payload with
  | Request { call_id; service; body } -> (
      (match Hashtbl.find_opt ep.services service with
      | None -> () (* unknown service: silently dropped, caller times out *)
      | Some handler ->
          let replied = ref false in
          let reply ?(size = 128) rbody =
            if not !replied then begin
              replied := true;
              let resp =
                Packet.make ~src:pkt.dst ~dst:pkt.src ~size
                  (Response { call_id; body = rbody })
              in
              Node.send ep.ep_node resp
            end
          in
          handler ~src:pkt.src body ~reply);
      true)
  | Response { call_id; body } -> (
      (match Hashtbl.find_opt ep.pending call_id with
      | None -> () (* late response after timeout: discarded *)
      | Some p ->
          Hashtbl.remove ep.pending call_id;
          Engine.cancel p.timeout_handle;
          p.k (Ok body));
      true)
  | _ -> false

let endpoint node =
  let key = Node.name node in
  match Hashtbl.find_opt registry key with
  | Some ep when ep.ep_node == node -> ep
  | Some _ | None ->
      let ep =
        { ep_node = node; services = Hashtbl.create 8; pending = Hashtbl.create 16 }
      in
      Node.add_handler node (handle_packet ep);
      Hashtbl.replace registry key ep;
      ep

let serve ep ~service handler = Hashtbl.replace ep.services service handler
let unserve ep ~service = Hashtbl.remove ep.services service

let call ep ?(timeout = Time.sec 1) ?(size = 128) ~dst ~service body k =
  incr next_call_id;
  let call_id = !next_call_id in
  let eng = Node.engine ep.ep_node in
  let timeout_handle =
    Engine.schedule_after eng timeout (fun () ->
        if Hashtbl.mem ep.pending call_id then begin
          Hashtbl.remove ep.pending call_id;
          k (Error `Timeout)
        end)
  in
  Hashtbl.replace ep.pending call_id { k; timeout_handle };
  let pkt =
    Packet.make ~src:(source_addr ep.ep_node) ~dst ~size
      (Request { call_id; service; body })
  in
  Node.send ep.ep_node pkt

let ping ep ?timeout ~dst ~service k =
  call ep ?timeout ~dst ~service Ping (function
    | Ok _ -> k true
    | Error `Timeout -> k false)

let serve_ping ep ~service =
  serve ep ~service (fun ~src:_ body ~reply ->
      match body with Ping -> reply Pong | _ -> reply Pong)
