(** IPv4-style addresses and prefixes.

    Addresses are 32-bit values stored in an OCaml [int]. The simulator
    uses them for hosts, containers, peering routers, and as BGP NLRI.
    Prefixes are (address, length) pairs in canonical form: host bits are
    always zero, enforced by the constructors. *)

type t = private int
(** An address. The [private] representation keeps construction in this
    module so the 32-bit invariant cannot be broken. *)

val of_int : int -> t
(** [of_int v] masks [v] to 32 bits. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d]. Each octet is masked to 8 bits. *)

val of_string : string -> t
(** Parses dotted-quad notation. Raises [Invalid_argument] on malformed
    input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val succ : t -> t
(** Next address, wrapping at 2^32. *)

val offset : t -> int -> t
(** [offset a n] is the address [n] above [a] (mod 2^32). *)

(** {1 Prefixes} *)

type prefix = private { base : t; len : int }
(** A CIDR prefix with host bits cleared. *)

val prefix : t -> int -> prefix
(** [prefix addr len] canonicalizes [addr] to [len] bits. Raises
    [Invalid_argument] unless [0 <= len <= 32]. *)

val prefix_of_string : string -> prefix
(** Parses ["a.b.c.d/len"]. *)

val prefix_to_string : prefix -> string
val pp_prefix : Format.formatter -> prefix -> unit
val compare_prefix : prefix -> prefix -> int
val equal_prefix : prefix -> prefix -> bool

val contains : prefix -> t -> bool
(** [contains p a] is [true] when [a] falls inside [p]. *)

val subsumes : prefix -> prefix -> bool
(** [subsumes p q] is [true] when every address of [q] is in [p]. *)

val host_in : prefix -> int -> t
(** [host_in p n] is the [n]-th address inside [p]. Raises
    [Invalid_argument] when [n] exceeds the prefix size. *)

val prefix_size : prefix -> int
(** Number of addresses covered (2^(32-len)), saturating at [max_int]. *)
