(** Point-to-point links.

    A link joins two endpoints, [A] and [B]. Each direction has its own
    serialization queue: a packet occupies the transmitter for
    [size / bandwidth] and then propagates for the link delay. Packets are
    lost when the link is down (including those in flight at failure
    time), or with the configured random loss probability.

    Receivers are plain callbacks, installed by {!Node.attach}; the link
    layer knows nothing about nodes, which keeps the dependency graph
    acyclic. *)

type t

type side = A | B

val other : side -> side

val create :
  Sim.Engine.t ->
  ?delay:Sim.Time.span ->
  ?bandwidth_bps:int ->
  ?loss:float ->
  ?name:string ->
  unit ->
  t
(** [create engine ()] is an up link with defaults: 50 µs delay, 100 Gbps,
    zero loss. [bandwidth_bps = 0] means infinite bandwidth. *)

val name : t -> string
val engine : t -> Sim.Engine.t

val set_receiver : t -> side -> (Packet.t -> unit) -> unit
(** Installs the delivery callback for packets arriving at [side]. *)

val transmit : t -> from:side -> Packet.t -> unit
(** Queues a packet for the far end. Silently dropped when the link is
    down or the loss draw fails. *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** Setting a link down drops queued and in-flight packets. *)

val fail_for : t -> Sim.Time.span -> unit
(** [fail_for t span] models a transient failure (e.g. network jitter):
    the link goes down now and comes back after [span]. *)

val set_delay : t -> Sim.Time.span -> unit
val delay : t -> Sim.Time.span
val set_loss : t -> float -> unit

val tap : t -> (side -> Packet.t -> unit) -> unit
(** [tap t f] invokes [f arriving_side packet] on every successful
    delivery, after the receiver callback. Experiments use taps to detect
    traffic gaps. *)

(** {1 Statistics} *)

val tx_packets : t -> int
(** Packets accepted for transmission (both directions). *)

val delivered_packets : t -> int
val dropped_packets : t -> int
val delivered_bytes : t -> int

val last_delivery : t -> Sim.Time.t option
(** Instant of the most recent successful delivery in either direction. *)
