(** Simulated packets.

    A packet carries a source and destination address, a wire size in
    bytes (used for serialization delay), a TTL (loop guard for the static
    forwarder), and a protocol payload. The payload type is extensible so
    that each protocol library (TCP, BFD, RPC, probes) declares its own
    constructor without [netsim] depending on any of them. *)

type payload = ..
(** Extended by protocol libraries, e.g. [Tcp.Segment_payload]. *)

type payload += Raw of string
(** An opaque payload for tests and simple tools. *)

type t = {
  id : int;  (** Globally unique, for tracing. *)
  src : Addr.t;
  dst : Addr.t;
  size : int;  (** Total wire bytes, headers included. *)
  ttl : int;
  payload : payload;
}

val make : ?ttl:int -> src:Addr.t -> dst:Addr.t -> size:int -> payload -> t
(** [make ~src ~dst ~size payload] is a fresh packet with a new id and a
    default TTL of 64. [size] must be positive. *)

val decrement_ttl : t -> t option
(** [decrement_ttl p] is the packet with TTL reduced, or [None] when the
    TTL is exhausted. *)

val pp : Format.formatter -> t -> unit
(** Prints id, endpoints and size (payloads print as their constructor
    arity only). *)
