(** Connection four-tuples. *)

type t = {
  local_addr : Netsim.Addr.t;
  local_port : int;
  remote_addr : Netsim.Addr.t;
  remote_port : int;
}

val v : Netsim.Addr.t -> int -> Netsim.Addr.t -> int -> t
(** [v local_addr local_port remote_addr remote_port]. *)

val flip : t -> t
(** The peer's view of the same connection. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
