type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  window : int;
  payload : string;
  flags : flags;
}

type Netsim.Packet.payload += Tcp of t

let plain = { syn = false; ack = false; fin = false; rst = false }
let flag_syn = { plain with syn = true }
let flag_ack = { plain with ack = true }
let flag_synack = { plain with syn = true; ack = true }
let flag_fin_ack = { plain with fin = true; ack = true }
let flag_rst = { plain with rst = true }

let seg_len t =
  String.length t.payload
  + (if t.flags.syn then 1 else 0)
  + if t.flags.fin then 1 else 0

let header_bytes = 40
let wire_size t = header_bytes + String.length t.payload

let is_pure_ack t =
  t.flags.ack && (not t.flags.syn) && (not t.flags.fin) && (not t.flags.rst)
  && String.length t.payload = 0

let pp fmt t =
  let f = t.flags in
  Format.fprintf fmt "%d->%d%s%s%s%s seq=%d ack=%d win=%d len=%d" t.src_port
    t.dst_port
    (if f.syn then " SYN" else "")
    (if f.ack then " ACK" else "")
    (if f.fin then " FIN" else "")
    (if f.rst then " RST" else "")
    t.seq t.ack t.window (String.length t.payload)
