(** Sequence-numbered byte stream storage for the TCP send path.

    Holds the bytes from the lowest unacknowledged sequence number to the
    end of what the application has written. Appends are chunked exactly
    as the application wrote them; reads are clipped random access by
    sequence number with a fast path for the sequential transmit cursor.
    When a read covers exactly one whole chunk the original string is
    returned without copying, so MSS-aligned bulk senders do not copy
    payload bytes at all. *)

type t

val create : int -> t
(** [create seq] is an empty buffer whose next appended byte has sequence
    number [seq]. *)

val append : t -> string -> unit
(** Appends application bytes (empty strings are ignored). *)

val start_seq : t -> int
(** Sequence number of the first retained byte. *)

val end_seq : t -> int
(** One past the last byte written. *)

val length : t -> int
(** Retained bytes ([end_seq - start_seq]). *)

val is_empty : t -> bool

val drop_until : t -> int -> unit
(** [drop_until t seq] discards bytes below [seq] (acknowledged data).
    Dropping below [start_seq] is a no-op; dropping beyond [end_seq]
    empties the buffer. *)

val read : t -> seq:int -> len:int -> string
(** [read t ~seq ~len] is up to [len] bytes starting at [seq], clipped to
    the retained range. Raises [Invalid_argument] if [seq] is below
    [start_seq]. *)

val chunks_from : t -> seq:int -> (int * string) list
(** All retained data at or above [seq] as [(seq, bytes)] pairs — used by
    the TCP_REPAIR export. *)
