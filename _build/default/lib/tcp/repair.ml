type t = {
  quad : Quad.t;
  mss : int;
  rcv_wnd : int;
  iss : int;
  irs : int;
  snd_una : int;
  snd_nxt : int;
  rcv_nxt : int;
  peer_wnd : int;
  unacked : (int * string) list;
}

let consistent t =
  let rec tiles pos = function
    | [] -> pos = t.snd_nxt
    | (seq, data) :: rest ->
        seq = pos && tiles (pos + String.length data) rest
  in
  t.iss <= t.snd_una && t.snd_una <= t.snd_nxt && t.irs < t.rcv_nxt
  && t.mss > 0 && t.rcv_wnd > 0
  && tiles t.snd_una t.unacked

let pp fmt t =
  Format.fprintf fmt
    "repair{%a mss=%d una=%d nxt=%d rcv_nxt=%d unacked=%dB}" Quad.pp t.quad
    t.mss t.snd_una t.snd_nxt t.rcv_nxt
    (List.fold_left (fun acc (_, d) -> acc + String.length d) 0 t.unacked)
