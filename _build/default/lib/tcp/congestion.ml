type t = {
  mss : int;
  mutable cwnd : int;
  mutable ssthresh_v : int;
  mutable dup_acks : int;
  mutable recover : int; (* snd_nxt at loss detection: recovery ends there *)
  mutable recovering : bool;
}

type ack_reaction = Ack_advanced | Fast_retransmit | Ignore

let create ~mss =
  {
    mss;
    cwnd = 10 * mss;
    ssthresh_v = max_int / 2;
    dup_acks = 0;
    recover = 0;
    recovering = false;
  }

let window t = t.cwnd
let ssthresh t = t.ssthresh_v
let in_recovery t = t.recovering

let grow_on_new_ack t acked =
  if t.cwnd < t.ssthresh_v then
    (* Slow start: one MSS per acked MSS, i.e. grow by the acked bytes. *)
    t.cwnd <- t.cwnd + min acked t.mss
  else
    (* Congestion avoidance: ~one MSS per RTT, approximated per-ACK. *)
    t.cwnd <- t.cwnd + max 1 (t.mss * t.mss / t.cwnd)

let on_ack t ~snd_una ~snd_nxt ~ack =
  if ack > snd_una then begin
    let acked = ack - snd_una in
    t.dup_acks <- 0;
    if t.recovering then begin
      if ack >= t.recover then begin
        (* Full ACK: leave recovery, deflate to ssthresh. *)
        t.recovering <- false;
        t.cwnd <- t.ssthresh_v
      end
      (* Partial ACK (NewReno-lite): stay in recovery, keep the window. *)
    end
    else grow_on_new_ack t acked;
    Ack_advanced
  end
  else if ack = snd_una && snd_nxt > snd_una then begin
    (* Duplicate ACK while data is outstanding. *)
    t.dup_acks <- t.dup_acks + 1;
    if t.recovering then begin
      (* Window inflation: each further dup ACK signals a departure. *)
      t.cwnd <- t.cwnd + t.mss;
      Ignore
    end
    else if t.dup_acks = 3 then begin
      let flight = snd_nxt - snd_una in
      t.ssthresh_v <- max (flight / 2) (2 * t.mss);
      t.cwnd <- t.ssthresh_v + (3 * t.mss);
      t.recover <- snd_nxt;
      t.recovering <- true;
      Fast_retransmit
    end
    else Ignore
  end
  else Ignore

let on_rto t =
  t.ssthresh_v <- max (t.cwnd / 2) (2 * t.mss);
  t.cwnd <- t.mss;
  t.dup_acks <- 0;
  t.recovering <- false

let pp fmt t =
  Format.fprintf fmt "cwnd=%d ssthresh=%d dup=%d%s" t.cwnd t.ssthresh_v
    t.dup_acks
    (if t.recovering then " (recovery)" else "")
