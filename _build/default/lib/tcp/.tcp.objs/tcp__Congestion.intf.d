lib/tcp/congestion.mli: Format
