lib/tcp/congestion.ml: Format
