lib/tcp/stream_buf.mli:
