lib/tcp/repair.mli: Format Quad
