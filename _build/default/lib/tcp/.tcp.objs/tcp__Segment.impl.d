lib/tcp/segment.ml: Format Netsim String
