lib/tcp/tcp.mli: Congestion Format Netfilter Netsim Quad Repair Segment Sim Stream_buf
