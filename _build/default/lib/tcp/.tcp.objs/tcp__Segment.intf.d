lib/tcp/segment.mli: Format Netsim
