lib/tcp/stream_buf.ml: Array Buffer Printf String
