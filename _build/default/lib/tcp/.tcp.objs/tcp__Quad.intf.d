lib/tcp/quad.mli: Format Netsim
