lib/tcp/quad.ml: Format Hashtbl Netsim Stdlib
