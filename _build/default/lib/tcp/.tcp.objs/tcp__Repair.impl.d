lib/tcp/repair.ml: Format List Quad String
