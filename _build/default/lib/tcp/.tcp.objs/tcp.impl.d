lib/tcp/tcp.ml: Congestion Engine Float Format Hashtbl Int List Netfilter Netsim Node Packet Printf Quad Repair Rng Segment Sim Stream_buf String Time
