(** A userspace TCP for the simulator.

    One {!stack} per node demultiplexes segments to connections by
    four-tuple and serializes all segment handling through a modelled
    per-stack CPU cost, which gives endpoints a packets-per-second limit
    (the quantity that, together with the receive window, produces the
    throughput thresholds of the paper's Figure 5(a)).

    The stack optionally routes every locally generated segment through a
    {!Netfilter} OUTPUT chain, which is where TENSOR's kernel-free packet
    replication intercepts and delays ACKs.

    Connections implement: three-way handshake, cumulative ACKs, flow
    control against the advertised window, Reno congestion control with
    fast retransmit/recovery, RTO with exponential backoff and Karn's
    rule, out-of-order reassembly, duplicate-data tolerance (re-ACK),
    FIN/RST teardown, and TCP_REPAIR-style export/import for transparent
    migration. *)

module Segment = Segment
module Congestion = Congestion
module Stream_buf = Stream_buf
module Quad = Quad
module Repair = Repair

type stack
type conn

type state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closed

type close_reason =
  | Closed_normally  (** FIN exchange completed. *)
  | Reset  (** RST received or {!abort} called. *)
  | Timed_out  (** Retransmission retries exhausted. *)

val pp_state : Format.formatter -> state -> unit
val pp_close_reason : Format.formatter -> close_reason -> unit

(** {1 Stacks} *)

val create_stack :
  ?proc_cost:Sim.Time.span ->
  ?proc_cost_per_kb:Sim.Time.span ->
  ?hook_cost:Sim.Time.span ->
  ?min_rto:Sim.Time.span ->
  ?max_rto:Sim.Time.span ->
  ?max_retries:int ->
  Netsim.Node.t ->
  stack
(** [create_stack node] attaches a TCP stack to [node]. [proc_cost] is
    the CPU time consumed per segment sent or received (default 2 µs,
    i.e. 500k segments/s); [proc_cost_per_kb] adds a payload-size
    component (default 0 — endpoints are packet-rate-limited, with a
    byte-rate term available for experiments such as Figure 5(a));
    [min_rto] defaults to 200 ms, [max_rto] to 60 s, [max_retries]
    to 8. *)

val stack_node : stack -> Netsim.Node.t
val stack_engine : stack -> Sim.Engine.t

val set_output_chain : stack -> Netfilter.t option -> unit
(** Installs (or removes) the OUTPUT hook chain for egress segments. *)

val freeze_stack : stack -> unit
(** Models the owning process dying abruptly: the stack stops sending
    (including retransmissions) and stops processing arrivals. No FIN or
    RST is emitted — a crashed process's kernel-side teardown is
    intercepted by the NFQUEUE rule in TENSOR's design, so from here on
    the connection is simply silent. Connections remain importable from a
    prior repair snapshot elsewhere. *)

val is_frozen : stack -> bool

val output_chain : stack -> Netfilter.t option

val listen : stack -> port:int -> (conn -> unit) -> unit
(** [listen stack ~port accept] invokes [accept] for each connection that
    completes the handshake on [port]. *)

val unlisten : stack -> port:int -> unit

val connect :
  stack ->
  ?src:Netsim.Addr.t ->
  ?src_port:int ->
  ?mss:int ->
  ?rcv_wnd:int ->
  dst:Netsim.Addr.t ->
  dst_port:int ->
  unit ->
  conn
(** Starts an active open (SYN sent on the next event). [src] selects the
    local address (default: the node's first address — nodes holding
    several service addresses must bind explicitly); [mss] defaults to
    1460, [rcv_wnd] to 400 000 bytes. Register {!on_established} and
    {!on_close} to learn the outcome. *)

val connections : stack -> conn list

(** {1 Connection I/O} *)

val write : conn -> string -> unit
(** Appends bytes to the send stream; transmission is window-paced.
    Writing to a closed connection raises [Invalid_argument]. *)

val close : conn -> unit
(** Graceful close: FIN after all written data. *)

val abort : conn -> unit
(** Sends RST and tears down immediately. *)

val on_established : conn -> (unit -> unit) -> unit
val on_data : conn -> (string -> unit) -> unit
(** In-order stream chunks, invoked as they are delivered. *)

val on_close : conn -> (close_reason -> unit) -> unit

val on_remote_close : conn -> (unit -> unit) -> unit
(** Invoked when the peer's FIN is accepted (half-close): the connection
    enters [Close_wait] and the application should finish and {!close}. *)

(** {1 Inspection} *)

val state : conn -> state
val quad : conn -> Quad.t
val mss : conn -> int
val iss : conn -> int
val irs : conn -> int
(** Initial sequence numbers — what TENSOR reads via TCP_REPAIR at session
    start to seed ACK inference. *)

val snd_una : conn -> int
val snd_nxt : conn -> int
val rcv_nxt : conn -> int
val delivered_bytes : conn -> int
(** Cumulative stream bytes handed to the application. The inferred
    current ACK number is [irs + 1 + delivered_bytes]. *)

val bytes_acked : conn -> int
val retransmits : conn -> int
val segments_in : conn -> int
val segments_out : conn -> int
val srtt : conn -> float option
(** Smoothed RTT in seconds, once sampled. *)

(** {1 Migration} *)

val export_repair : conn -> Repair.t
(** Snapshot of the live connection, sufficient to resurrect it
    elsewhere. *)

val import_repair : stack -> Repair.t -> conn
(** Recreates an established connection from a snapshot. The unacked data
    is queued for retransmission (the peer discards what it already has
    and ACKs, which resynchronizes both ends). Raises [Invalid_argument]
    if the snapshot fails {!Repair.consistent} or the quad is already in
    use on this stack. *)
