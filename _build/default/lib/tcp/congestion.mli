(** TCP Reno congestion control.

    Slow start, congestion avoidance, fast retransmit on three duplicate
    ACKs, fast recovery with window inflation, and multiplicative decrease
    on retransmission timeout. This is the classic algorithm whose
    window-vs-delay behaviour produces the throughput ceilings of the
    paper's Figure 5(a) (see the TCP throughput models it cites,
    Padhye et al. and NewReno analyses). *)

type t

type ack_reaction =
  | Ack_advanced  (** New data acknowledged. *)
  | Fast_retransmit  (** Third duplicate ACK: resend [snd_una] now. *)
  | Ignore  (** Duplicate ACK below the retransmit threshold, or noise. *)

val create : mss:int -> t
(** Initial window is 10 MSS (modern initcwnd), initial ssthresh is
    effectively unbounded. *)

val window : t -> int
(** Current congestion window in bytes. *)

val ssthresh : t -> int

val in_recovery : t -> bool

val on_ack : t -> snd_una:int -> snd_nxt:int -> ack:int -> ack_reaction
(** Feed every incoming ACK. [snd_una]/[snd_nxt] are the values {e before}
    the ACK is applied. Updates the window and duplicate-ACK state, and
    tells the connection whether to fast-retransmit. *)

val on_rto : t -> unit
(** Retransmission timeout: collapse to one MSS, halve ssthresh. *)

val pp : Format.formatter -> t -> unit
