(** TCP segments.

    Sequence and acknowledgment numbers are monotonically increasing
    OCaml ints rather than mod-2^32 values: simulation volumes never
    approach wrap-around, and monotone numbers make the ACK-inference
    arithmetic of TENSOR (§3.1.2, "Matching ACK numbers") directly
    testable. The initial numbers are still randomized per connection, as
    TENSOR's TCP_REPAIR bootstrap relies on reading them at connect
    time. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** Sequence number of the first payload byte. *)
  ack : int;  (** Cumulative acknowledgment; meaningful when [flags.ack]. *)
  window : int;  (** Advertised receive window, bytes. *)
  payload : string;
  flags : flags;
}

type Netsim.Packet.payload += Tcp of t

val plain : flags
(** No flags set. *)

val flag_syn : flags
val flag_ack : flags
val flag_synack : flags
val flag_fin_ack : flags
val flag_rst : flags

val seg_len : t -> int
(** Sequence space the segment occupies: payload length plus one for SYN
    and one for FIN. *)

val header_bytes : int
(** Modelled TCP/IP header overhead (40 B). *)

val wire_size : t -> int
(** [header_bytes] plus the payload length. *)

val is_pure_ack : t -> bool
(** ACK set, no payload, no SYN/FIN/RST — the packets TENSOR's tcp_queue
    intercepts. *)

val pp : Format.formatter -> t -> unit
