type t = {
  mutable chunks : (int * string) array; (* (start_seq, bytes), sorted *)
  mutable head : int; (* index of first live chunk *)
  mutable count : int; (* live chunks: indices head .. head+count-1 *)
  mutable start : int; (* first retained byte (may sit inside head chunk) *)
  mutable stop : int; (* one past last written byte *)
  mutable cursor : int; (* index hint for sequential reads *)
}

let create seq =
  {
    chunks = Array.make 32 (0, "");
    head = 0;
    count = 0;
    start = seq;
    stop = seq;
    cursor = 0;
  }

let start_seq t = t.start
let end_seq t = t.stop
let length t = t.stop - t.start
let is_empty t = t.count = 0

let compact t =
  if t.head > 0 then begin
    Array.blit t.chunks t.head t.chunks 0 t.count;
    t.cursor <- max 0 (t.cursor - t.head);
    t.head <- 0
  end

let append t s =
  if String.length s > 0 then begin
    if t.head + t.count = Array.length t.chunks then begin
      compact t;
      if t.count = Array.length t.chunks then begin
        let arr = Array.make (2 * Array.length t.chunks) (0, "") in
        Array.blit t.chunks 0 arr 0 t.count;
        t.chunks <- arr
      end
    end;
    t.chunks.(t.head + t.count) <- (t.stop, s);
    t.count <- t.count + 1;
    t.stop <- t.stop + String.length s
  end

let drop_until t seq =
  if seq > t.start then begin
    let seq = min seq t.stop in
    t.start <- seq;
    while
      t.count > 0
      &&
      let cseq, cs = t.chunks.(t.head) in
      cseq + String.length cs <= seq
    do
      t.chunks.(t.head) <- (0, "");
      t.head <- t.head + 1;
      t.count <- t.count - 1
    done;
    if t.count = 0 then begin
      t.head <- 0;
      t.cursor <- 0
    end
    else if t.head > Array.length t.chunks / 2 then compact t
  end

(* Index of the chunk containing [seq], assuming start <= seq < stop. *)
let locate t seq =
  let in_chunk i =
    let cseq, cs = t.chunks.(i) in
    seq >= cseq && seq < cseq + String.length cs
  in
  let hint = max t.head (min t.cursor (t.head + t.count - 1)) in
  if t.count > 0 && in_chunk hint then hint
  else begin
    (* Binary search over live chunks. *)
    let lo = ref t.head and hi = ref (t.head + t.count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let cseq, _ = t.chunks.(mid) in
      if cseq <= seq then lo := mid else hi := mid - 1
    done;
    !lo
  end

let read t ~seq ~len =
  if seq < t.start then
    invalid_arg
      (Printf.sprintf "Stream_buf.read: seq %d below start %d" seq t.start);
  if len <= 0 || seq >= t.stop then ""
  else begin
    let len = min len (t.stop - seq) in
    let i = locate t seq in
    t.cursor <- i;
    let cseq, cs = t.chunks.(i) in
    if cseq = seq && String.length cs = len then cs (* zero-copy fast path *)
    else if seq - cseq + len <= String.length cs then
      String.sub cs (seq - cseq) len
    else begin
      (* Gather across chunks. *)
      let buf = Buffer.create len in
      let j = ref i and pos = ref seq in
      while Buffer.length buf < len do
        let cseq, cs = t.chunks.(!j) in
        let off = !pos - cseq in
        let take = min (String.length cs - off) (len - Buffer.length buf) in
        Buffer.add_substring buf cs off take;
        pos := !pos + take;
        incr j
      done;
      Buffer.contents buf
    end
  end

let chunks_from t ~seq =
  if t.count = 0 || seq >= t.stop then []
  else begin
    let seq = max seq t.start in
    let i = locate t seq in
    let out = ref [] in
    for j = t.head + t.count - 1 downto i do
      let cseq, cs = t.chunks.(j) in
      if cseq >= seq then out := (cseq, cs) :: !out
      else
        let off = seq - cseq in
        out := (seq, String.sub cs off (String.length cs - off)) :: !out
    done;
    !out
  end
