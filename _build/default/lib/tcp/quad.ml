type t = {
  local_addr : Netsim.Addr.t;
  local_port : int;
  remote_addr : Netsim.Addr.t;
  remote_port : int;
}

let v local_addr local_port remote_addr remote_port =
  { local_addr; local_port; remote_addr; remote_port }

let flip t =
  {
    local_addr = t.remote_addr;
    local_port = t.remote_port;
    remote_addr = t.local_addr;
    remote_port = t.local_port;
  }

let compare a b = Stdlib.compare a b
let equal a b = a = b
let hash = Hashtbl.hash

let pp fmt t =
  Format.fprintf fmt "%a:%d<->%a:%d" Netsim.Addr.pp t.local_addr t.local_port
    Netsim.Addr.pp t.remote_addr t.remote_port

let to_string t = Format.asprintf "%a" pp t
