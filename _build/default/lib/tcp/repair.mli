(** TCP_REPAIR-style connection state transfer.

    Linux's [TCP_REPAIR] socket option lets a privileged process read and
    write the kernel state of an established connection — sequence
    numbers, negotiated options, queued data — which is how TENSOR reads
    the initial SEQ/ACK at session start (§3.1.2) and how a backup router
    resurrects the primary's connection after migration.

    A {!t} is a plain value: it can be stored in the replicated store,
    reconstructed from replicated BGP messages (the application-driven
    path TENSOR actually uses), or taken verbatim from a live connection
    ({!Tcp.export_repair}). Importing never contacts the peer: the first
    packets after import are ordinary TCP (retransmissions, ACKs), which
    is what makes the takeover transparent. *)

type t = {
  quad : Quad.t;
  mss : int;
  rcv_wnd : int;
  iss : int;  (** Our initial sequence number. *)
  irs : int;  (** Peer's initial sequence number. *)
  snd_una : int;  (** Lowest unacknowledged byte. *)
  snd_nxt : int;  (** Next byte to send. *)
  rcv_nxt : int;  (** Next expected byte — the ACK we advertise. *)
  peer_wnd : int;  (** Last advertised peer window. *)
  unacked : (int * string) list;
      (** Sequence-tagged send data from [snd_una] to [snd_nxt]; replayed
          to the peer when the importing side retransmits. *)
}

val consistent : t -> bool
(** Structural sanity: [iss <= snd_una <= snd_nxt], [irs < rcv_nxt], and
    [unacked] exactly tiles [\[snd_una, snd_nxt)]. Import refuses
    inconsistent states. *)

val pp : Format.formatter -> t -> unit
