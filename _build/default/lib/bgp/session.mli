(** A single BGP session: FSM, timers and message framing over TCP.

    The session owns the transport connection, the RFC 4271 state machine
    (Idle/Connect collapsed into [Connecting], then OpenSent, OpenConfirm,
    Established), the hold and keepalive timers, and the stream framer.
    It knows nothing about RIBs: every semantic event is reported through
    one callback, and the owning {!Speaker} decides what to do.

    Two construction paths exist beyond the ordinary active/passive open:
    {!resume} rebuilds an Established session from a TCP_REPAIR snapshot
    plus the negotiated parameters — the operation at the heart of
    TENSOR's NSR migration, §3.3.3 — without any wire handshake.

    The [pre_send] hook runs between the decision to send a message and
    the write to TCP; TENSOR installs its replicate-before-send logic
    (§3.1.2 "Outgoing BGP messages") there, covering the keepalive thread
    as well as the main thread. *)

type state = Idle | Connecting | Open_sent | Open_confirm | Established | Down

val pp_state : Format.formatter -> state -> unit

type down_reason =
  | Transport_failed of Tcp.close_reason
  | Notification_received of Msg.notification
  | Notification_sent of Msg.notification
  | Hold_timer_expired
  | Stopped  (** Administrative stop. *)

val pp_down_reason : Format.formatter -> down_reason -> unit

type event =
  | Session_established of Msg.open_msg  (** The peer's OPEN. *)
  | Message_received of Msg.t * int
      (** A message and its wire size, after any replication hook. Fired
          for UPDATE and ROUTE-REFRESH only; OPEN/KEEPALIVE/NOTIFICATION
          are handled internally. *)
  | Session_went_down of down_reason

type config = {
  local_asn : int;
  router_id : Netsim.Addr.t;
  local_addr : Netsim.Addr.t option;
      (** Source address for the active open (a container's VRF address);
          [None] uses the node default. *)
  peer_addr : Netsim.Addr.t;
  peer_asn : int option;  (** Enforced when present. *)
  hold_time : int;  (** Proposed, seconds. *)
  port : int;
  passive : bool;
  graceful_restart : int option;  (** Advertised restart time. *)
  as4 : bool;
}

val default_config :
  local_asn:int ->
  router_id:Netsim.Addr.t ->
  peer_addr:Netsim.Addr.t ->
  unit ->
  config
(** hold 90 s, port 179, active, GR advertised at 120 s, AS4 on. *)

type t

val start_active : Tcp.stack -> config -> cb:(t -> event -> unit) -> t
(** Opens the TCP connection and drives the handshake. *)

val accept_passive :
  Tcp.stack -> config -> conn:Tcp.conn -> cb:(t -> event -> unit) -> t
(** Adopts an accepted TCP connection (the speaker's listener matched it
    to this peer's config). *)

type negotiated = {
  peer_open : Msg.open_msg;
  hold_time : int;  (** min of both proposals. *)
  peer_supports_gr : bool;
  peer_gr_restart_time : int;
  as4_in_use : bool;
}

val resume :
  Tcp.stack ->
  config ->
  repair:Tcp.Repair.t ->
  negotiated:negotiated ->
  framer_seed:string ->
  cb:(t -> event -> unit) ->
  t
(** Recreates an Established session around an imported TCP connection.
    No messages are exchanged; timers restart afresh. [framer_seed]
    (usually empty) is a replicated partial-frame tail (when the predecessor acknowledged a
    message fragment, the stream is not message-aligned; the fragment
    must be restored into the framer so parsing continues correctly). *)

val set_on_message : t -> (Msg.t -> size:int -> unit) -> unit
(** Observer invoked for {e every} inbound message — all five types,
    keepalives included — after parsing and before FSM handling. This is
    TENSOR's receive-replication tap: at the instant it fires,
    {!parsed_bytes} already covers the message, so the inferred ACK is
    current. *)

val set_pre_send : t -> (Msg.t -> string -> (unit -> unit) -> unit) -> unit
(** Replication middleware for every outgoing message. The continuation
    must be invoked exactly once (possibly later) to release the message
    to TCP. Default: immediate. *)

val send : t -> Msg.t -> unit
(** Sends a message (through the pre_send hook). Raises
    [Invalid_argument] unless Established. *)

val stop : t -> unit
(** Sends a Cease NOTIFICATION and closes. *)

val state : t -> state
val config : t -> config
val negotiated : t -> negotiated option
val conn : t -> Tcp.conn option

val unparsed_tail : t -> string
(** The partial frame currently buffered in the framer (empty when the
    stream is message-aligned). *)

val parsed_bytes : t -> int
(** Application-stream bytes consumed by complete parsed messages. The
    TENSOR-inferred ACK for the last parsed message is
    [Tcp.irs conn + 1 + parsed_bytes]. *)

val messages_in : t -> int
val messages_out : t -> int
val updates_in : t -> int
val updates_out : t -> int
val keepalives_in : t -> int

val last_write : t -> Sim.Time.t
(** Instant the most recent UPDATE was actually written to TCP (after the
    replication hook released it); keepalives do not count. *)
