(** BGP messages and the RFC 4271 wire codec.

    All five message types of RFC 4271 §4 plus ROUTE-REFRESH (RFC 2918)
    are implemented, with a binary encoder/decoder and a stream framer
    that reassembles messages from TCP's byte stream. Four-octet AS
    numbers follow RFC 6793 (AS_TRANS in the OPEN header, capability 65,
    and 4-byte AS_PATH encoding when negotiated).

    The maximum message size is 4096 bytes (RFC 4271 §4.1) — the bound
    the paper uses for its 4 KB replication records. *)

type capability =
  | Cap_route_refresh
  | Cap_four_octet_asn of int  (** The speaker's real ASN. *)
  | Cap_graceful_restart of { restart_time : int; preserved_fwd : bool }
      (** RFC 4724: restart time in seconds; whether forwarding state is
          preserved across the restart. *)
  | Cap_unknown of int * string

type open_msg = {
  version : int;
  asn : int;  (** Real ASN (possibly > 65535; wire uses AS_TRANS). *)
  hold_time : int;  (** Seconds; 0 disables keepalives. *)
  router_id : Netsim.Addr.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Netsim.Addr.prefix list;
  attrs : Attrs.t option;  (** [None] on pure withdrawals and End-of-RIB. *)
  nlri : Netsim.Addr.prefix list;
}

type notification = { code : int; subcode : int; data : string }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive
  | Route_refresh of { afi : int; safi : int }

val end_of_rib : t
(** The RFC 4724 End-of-RIB marker: an UPDATE with no content. *)

val is_end_of_rib : t -> bool

val update_count : t -> int
(** Routing updates carried: NLRI count plus withdrawn count (what the
    paper's Figure 6 x-axes count). 0 for non-UPDATE messages. *)

val max_size : int
(** 4096. *)

(** {1 Codec} *)

type error =
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Too_long of int
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val encode : ?as4:bool -> t -> string
(** Full wire frame, header included. [as4] (default [true]) selects
    4-byte AS_PATH encoding. Raises [Invalid_argument] if the message
    exceeds {!max_size}. *)

val decode : ?as4:bool -> string -> (t, error) result
(** Decodes exactly one complete frame. *)

val error_notification : error -> t
(** The NOTIFICATION a speaker sends for a decode error (RFC 4271 §6). *)

(** {1 Stream framing} *)

module Framer : sig
  type msg = t

  type t

  val create : ?as4:bool -> unit -> t

  val push : t -> string -> (msg * int, error) result list
  (** Feeds stream bytes; returns the complete messages they finish (each
      with its wire-frame size) in order. After an error the framer is
      poisoned and returns only that error — a real speaker tears the
      session down. *)

  val buffered : t -> int
  (** Bytes held waiting for the rest of a frame. *)

  val buffered_bytes : t -> string
  (** The held partial-frame bytes themselves (TENSOR replicates them
      when a stalled sender cannot complete the frame, see
      {!Tensor.Replicator}). *)
end

val pp : Format.formatter -> t -> unit
