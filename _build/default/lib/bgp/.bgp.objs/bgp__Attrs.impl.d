lib/bgp/attrs.ml: Format Hashtbl List Netsim Stdlib
