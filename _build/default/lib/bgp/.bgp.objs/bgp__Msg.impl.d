lib/bgp/msg.ml: Attrs Buffer Char Format List Netsim Printf String
