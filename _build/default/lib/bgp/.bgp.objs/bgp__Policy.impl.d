lib/bgp/policy.ml: Attrs List Netsim
