lib/bgp/rib.ml: Attrs Hashtbl Int List Netsim String
