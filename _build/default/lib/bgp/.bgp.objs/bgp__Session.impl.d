lib/bgp/session.ml: Engine Format List Msg Netsim Sim String Tcp Time
