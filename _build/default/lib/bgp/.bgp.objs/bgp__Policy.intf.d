lib/bgp/policy.mli: Attrs Netsim
