lib/bgp/attrs.mli: Format Netsim
