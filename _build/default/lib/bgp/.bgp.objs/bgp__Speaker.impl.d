lib/bgp/speaker.ml: Attrs Engine Hashtbl List Msg Netsim Policy Rib Session Sim String Tcp Time
