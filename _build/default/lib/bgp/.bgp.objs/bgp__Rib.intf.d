lib/bgp/rib.mli: Attrs Netsim
