lib/bgp/msg.mli: Attrs Format Netsim
