lib/bgp/session.mli: Format Msg Netsim Sim Tcp
