lib/bgp/speaker.mli: Attrs Msg Netsim Policy Rib Session Sim Tcp
