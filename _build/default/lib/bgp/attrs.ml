type origin = Igp | Egp | Incomplete

type segment = Seq of int list | Set of int list

type community = int * int

type t = {
  origin : origin;
  as_path : segment list;
  next_hop : Netsim.Addr.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  communities : community list;
}

let make ?(origin = Igp) ?(as_path = []) ?med ?local_pref
    ?(atomic_aggregate = false) ?(communities = []) ~next_hop () =
  { origin; as_path; next_hop; med; local_pref; atomic_aggregate; communities }

let as_path_length t =
  List.fold_left
    (fun acc -> function Seq asns -> acc + List.length asns | Set _ -> acc + 1)
    0 t.as_path

let path_contains t asn =
  List.exists
    (function Seq asns | Set asns -> List.mem asn asns)
    t.as_path

let prepend t asn =
  let as_path =
    match t.as_path with
    | Seq asns :: rest -> Seq (asn :: asns) :: rest
    | path -> Seq [ asn ] :: path
  in
  { t with as_path }

let with_next_hop t next_hop = { t with next_hop }
let with_local_pref t local_pref = { t with local_pref }
let with_med t med = { t with med }

let add_community t c =
  if List.mem c t.communities then t
  else { t with communities = t.communities @ [ c ] }

let has_community t c = List.mem c t.communities
let no_export = (0xFFFF, 0xFF01)
let no_advertise = (0xFFFF, 0xFF02)

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let equal a b = a = b
let compare a b = Stdlib.compare a b
let hash t = Hashtbl.hash t

let pp_segment fmt = function
  | Seq asns ->
      Format.fprintf fmt "%a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " ")
           Format.pp_print_int)
        asns
  | Set asns ->
      Format.fprintf fmt "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ",")
           Format.pp_print_int)
        asns

let pp fmt t =
  Format.fprintf fmt "path=[%a] nh=%a origin=%s"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f " ")
       pp_segment)
    t.as_path Netsim.Addr.pp t.next_hop
    (match t.origin with Igp -> "igp" | Egp -> "egp" | Incomplete -> "?");
  (match t.local_pref with
  | Some lp -> Format.fprintf fmt " lp=%d" lp
  | None -> ());
  (match t.med with Some m -> Format.fprintf fmt " med=%d" m | None -> ());
  if t.communities <> [] then
    Format.fprintf fmt " comm=[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         (fun f (a, v) -> Format.fprintf f "%d:%d" a v))
      t.communities
