(** BGP path attributes (RFC 4271 §5).

    The attribute set carried by UPDATE messages and stored in the RIBs.
    Structural equality of attribute sets is what update packing groups
    by, so [equal]/[compare]/[hash] are part of the contract. *)

type origin = Igp | Egp | Incomplete

type segment =
  | Seq of int list  (** AS_SEQUENCE: ordered ASNs. *)
  | Set of int list  (** AS_SET: unordered aggregate. *)

type community = int * int
(** [(asn, value)], each 16 bits on the wire. *)

type t = {
  origin : origin;
  as_path : segment list;
  next_hop : Netsim.Addr.t;
  med : int option;  (** MULTI_EXIT_DISC. *)
  local_pref : int option;  (** LOCAL_PREF; present on iBGP sessions. *)
  atomic_aggregate : bool;
  communities : community list;
}

val make :
  ?origin:origin ->
  ?as_path:segment list ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?communities:community list ->
  next_hop:Netsim.Addr.t ->
  unit ->
  t
(** Defaults: IGP origin, empty AS path, no MED/LOCAL_PREF/communities. *)

val as_path_length : t -> int
(** Hop count for the decision process: an AS_SET counts as one hop
    (RFC 4271 §9.1.2.2). *)

val path_contains : t -> int -> bool
(** [path_contains t asn] — loop detection on receipt. *)

val prepend : t -> int -> t
(** [prepend t asn] adds [asn] at the front of the AS path (extending the
    leading AS_SEQUENCE, as a speaker does on eBGP export). *)

val with_next_hop : t -> Netsim.Addr.t -> t
val with_local_pref : t -> int option -> t
val with_med : t -> int option -> t
val add_community : t -> community -> t
val has_community : t -> community -> bool

val no_export : community
(** RFC 1997 NO_EXPORT (65535:65281): do not advertise beyond the local
    AS (never to eBGP peers). *)

val no_advertise : community
(** RFC 1997 NO_ADVERTISE (65535:65282): do not advertise to any peer. *)

val origin_rank : origin -> int
(** IGP (0) < EGP (1) < INCOMPLETE (2); lower wins. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
