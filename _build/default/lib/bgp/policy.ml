type cond =
  | Match_prefix_exact of Netsim.Addr.prefix
  | Match_prefix_within of Netsim.Addr.prefix
  | Match_as_in_path of int
  | Match_community of Attrs.community
  | Match_next_hop of Netsim.Addr.t

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Attrs.community
  | Strip_communities
  | Prepend_as of int * int

type rule = {
  conds : cond list;
  decision : [ `Accept of action list | `Reject ];
}

type t = { rules : rule list; default : [ `Accept | `Reject ] }

let empty = { rules = []; default = `Accept }
let make ?(default = `Accept) rules = { rules; default }
let accept_rule ?(conds = []) actions = { conds; decision = `Accept actions }
let reject_rule conds = { conds; decision = `Reject }
let rule_count t = List.length t.rules

let cond_holds prefix (attrs : Attrs.t) = function
  | Match_prefix_exact p -> Netsim.Addr.equal_prefix p prefix
  | Match_prefix_within p -> Netsim.Addr.subsumes p prefix
  | Match_as_in_path asn -> Attrs.path_contains attrs asn
  | Match_community c -> Attrs.has_community attrs c
  | Match_next_hop nh -> Netsim.Addr.equal attrs.Attrs.next_hop nh

let apply_action attrs = function
  | Set_local_pref lp -> Attrs.with_local_pref attrs (Some lp)
  | Set_med med -> Attrs.with_med attrs med
  | Add_community c -> Attrs.add_community attrs c
  | Strip_communities -> { attrs with Attrs.communities = [] }
  | Prepend_as (asn, times) ->
      let rec go attrs n = if n = 0 then attrs else go (Attrs.prepend attrs asn) (n - 1) in
      go attrs (max 0 times)

let apply t prefix attrs =
  let rec eval = function
    | [] -> ( match t.default with `Accept -> Some attrs | `Reject -> None)
    | rule :: rest ->
        if List.for_all (cond_holds prefix attrs) rule.conds then
          match rule.decision with
          | `Reject -> None
          | `Accept actions -> Some (List.fold_left apply_action attrs actions)
        else eval rest
  in
  eval t.rules
