(** Route policies (import/export filtering and rewriting).

    A policy is an ordered list of rules evaluated first-match. Each rule
    has match conditions (all must hold) and either rejects the route or
    applies attribute rewrites and accepts it. The default when no rule
    matches is configurable per policy (accept for the empty policy).

    This covers what the paper's deployment needs from routing policy:
    per-client prefix filtering, LOCAL_PREF/MED steering, community
    tagging, and AS-path prepending. *)

type cond =
  | Match_prefix_exact of Netsim.Addr.prefix
  | Match_prefix_within of Netsim.Addr.prefix
      (** True when the route's prefix is covered by the given one. *)
  | Match_as_in_path of int
  | Match_community of Attrs.community
  | Match_next_hop of Netsim.Addr.t

type action =
  | Set_local_pref of int
  | Set_med of int option
  | Add_community of Attrs.community
  | Strip_communities
  | Prepend_as of int * int  (** [(asn, times)]. *)

type rule = {
  conds : cond list;  (** Conjunction; [[]] matches everything. *)
  decision : [ `Accept of action list | `Reject ];
}

type t

val empty : t
(** Accepts everything unchanged. *)

val make : ?default:[ `Accept | `Reject ] -> rule list -> t
(** [default] applies when no rule matches (default [`Accept]). *)

val accept_rule : ?conds:cond list -> action list -> rule
val reject_rule : cond list -> rule

val apply : t -> Netsim.Addr.prefix -> Attrs.t -> Attrs.t option
(** [apply t prefix attrs] is [None] when rejected, or the rewritten
    attributes. *)

val rule_count : t -> int
