let prefix_of_index i =
  (* Walk 100.x.y.0/24 then 101.x.y.0/24, ... deterministically. *)
  let block = i / 65536 in
  let rest = i mod 65536 in
  let b2 = rest / 256 and b3 = rest mod 256 in
  Netsim.Addr.prefix (Netsim.Addr.of_octets (100 + block) b2 b3 0) 24

let distinct n = List.init n prefix_of_index
let distinct_from ~base n = List.init n (fun i -> prefix_of_index (base + i))

let attr_groups rng ~groups ~next_hop n =
  let groups = max 1 groups in
  let attr_of_group g =
    (* ASNs from a reserved-feeling range no experiment uses locally, so
       receiver-side loop detection never discards a group. *)
    Bgp.Attrs.make
      ~as_path:[ Bgp.Attrs.Seq [ 50000 + (g mod 1000); 51000 + (g mod 7) ] ]
      ~med:(g * 10) ~next_hop ()
  in
  let attrs = Array.init groups attr_of_group in
  List.init n (fun i ->
      let g =
        if groups = 1 then 0
        else if i < groups then i (* ensure every group appears *)
        else Sim.Rng.int rng groups
      in
      (prefix_of_index i, attrs.(g)))
