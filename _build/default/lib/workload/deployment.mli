(** The two-year adoption and downtime model (Figure 7(b)).

    Reproduces the operational timeline of §4.4 as a monthly series from
    January 2020 to December 2022: TENSOR covers 0 ASes until June 2020,
    holds an initial 100-AS pilot for several months, then ramps to all
    enterprise ASes by the end of 2021 and stays full through 2022 while
    the update frequency triples.

    Monthly impacted traffic combines failure downtime and
    update-window downtime over the uncovered fraction of links, using
    the paper's constants: ~34 TB/month impacted before deployment, an
    average of 37 Gbps (277 GB per downtime-minute), and zero downtime on
    TENSOR-covered links. *)

type month = {
  year : int;
  month : int;  (** 1–12. *)
  ases_on_tensor : int;
  total_ases : int;
  update_frequency : float;  (** Relative to the 2020 baseline (1.0–3.0). *)
  impacted_tb : float;  (** Traffic impacted by downtime that month. *)
}

type params = {
  total_ases : int;  (** 6000. *)
  baseline_impacted_tb : float;  (** ~34 TB/month before TENSOR. *)
  pilot_ases : int;  (** 100. *)
}

val default : params

val series : ?rng:Sim.Rng.t -> params -> month list
(** The 36-month series. [rng] adds ±10 % monthly noise to the impacted
    volume (omitted: deterministic). *)

val label : month -> string
(** ["2020-06"]-style label. *)
