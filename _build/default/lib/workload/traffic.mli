(** Per-link traffic model (Figure 7(a)).

    Tencent Cloud's links to peering ASes carry wildly heterogeneous
    traffic: the paper reports an {e average} per-link throughput above
    37 Gbps against a {e median} of only 64 Mbps, with over 30 % of links
    above 1 Gbps. A single lognormal cannot satisfy all three statistics
    simultaneously, so the model is a two-component lognormal mixture —
    a heavy "enterprise backbone" component and a light long-tail
    component — calibrated so the sampled population reproduces the
    reported mean, median and P(> 1 Gbps) (all stated as lower bounds in
    the paper). *)

type params = {
  heavy_weight : float;  (** Fraction of heavy links (0.42). *)
  heavy_median_bps : float;  (** 4 Gbps. *)
  heavy_sigma : float;  (** 2.6. *)
  light_median_bps : float;  (** 14 Mbps. *)
  light_sigma : float;  (** 1.8. *)
}

val default : params

val sample_link_bps : Sim.Rng.t -> params -> float
(** One link's average throughput in bits per second. *)

val sample_population : Sim.Rng.t -> params -> int -> float array
(** [sample_population rng p n] draws [n] links. *)

val mean_bps : float array -> float
val median_bps : float array -> float
val fraction_above : float array -> float -> float

val bytes_impacted : avg_bps:float -> downtime:Sim.Time.span -> float
(** Traffic volume (bytes) affected by a link outage of the given
    duration — the paper's "a one-minute one-link downtime will impact
    277 GB of live traffic" arithmetic. *)
