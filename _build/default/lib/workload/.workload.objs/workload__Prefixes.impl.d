lib/workload/prefixes.ml: Array Bgp List Netsim Sim
