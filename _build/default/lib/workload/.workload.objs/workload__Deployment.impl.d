lib/workload/deployment.ml: List Printf Sim
