lib/workload/traffic.ml: Array Rng Sim Time
