lib/workload/deployment.mli: Sim
