lib/workload/traffic.mli: Sim
