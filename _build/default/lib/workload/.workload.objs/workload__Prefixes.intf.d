lib/workload/prefixes.mli: Bgp Netsim Sim
