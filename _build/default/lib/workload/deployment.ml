type month = {
  year : int;
  month : int;
  ases_on_tensor : int;
  total_ases : int;
  update_frequency : float;
  impacted_tb : float;
}

type params = {
  total_ases : int;
  baseline_impacted_tb : float;
  pilot_ases : int;
}

let default =
  { total_ases = 6000; baseline_impacted_tb = 34.0; pilot_ases = 100 }

(* Adoption: 0 until 2020-05; pilot (100 ASes) 2020-06 .. 2020-10; then an
   accelerating ramp completing 2021-12; full coverage through 2022. *)
let adoption p ~year ~month =
  let idx = ((year - 2020) * 12) + month in (* 2020-01 -> 13? no: month index *)
  let i = idx - 1 in
  (* i: months since 2020-01, 0-based. *)
  if i < 5 then 0
  else if i <= 9 then p.pilot_ases
  else if i >= 23 then p.total_ases
  else begin
    (* Accelerating ramp over months 10..23 (2020-11 .. 2021-12). *)
    let t = float_of_int (i - 9) /. 14.0 in
    let frac = t *. t in
    p.pilot_ases
    + int_of_float (frac *. float_of_int (p.total_ases - p.pilot_ases))
  end

let update_frequency ~year ~month =
  let i = ((year - 2020) * 12) + month - 1 in
  if i < 12 then 1.0
  else if i < 24 then 1.0 +. (float_of_int (i - 12) /. 12.0)
  else min 3.0 (2.0 +. (float_of_int (i - 24) /. 12.0))

let series ?rng p =
  List.concat_map
    (fun year ->
      List.map
        (fun month ->
          let ases_on_tensor = adoption p ~year ~month in
          let coverage = float_of_int ases_on_tensor /. float_of_int p.total_ases in
          let update_frequency = update_frequency ~year ~month in
          (* Uncovered links suffer both failure downtime and update
             windows; update windows scale with update frequency. TENSOR
             links contribute zero (the two-year zero-downtime result). *)
          let failure_part = 0.6 and update_part = 0.4 in
          let impacted =
            p.baseline_impacted_tb
            *. (1.0 -. coverage)
            *. (failure_part +. (update_part *. update_frequency))
          in
          let impacted_tb =
            match rng with
            | Some rng -> impacted *. (0.9 +. Sim.Rng.float rng 0.2)
            | None -> impacted
          in
          { year; month; ases_on_tensor; total_ases = p.total_ases;
            update_frequency; impacted_tb })
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
    [ 2020; 2021; 2022 ]

let label m = Printf.sprintf "%04d-%02d" m.year m.month
