(** Routing-update workload generation for the Figure 6 experiments. *)

val distinct : int -> Netsim.Addr.prefix list
(** [distinct n] is [n] distinct /24-ish prefixes, deterministic, in a
    stable order (suitable for 1 … 500 000 routes). *)

val distinct_from : base:int -> int -> Netsim.Addr.prefix list
(** Offset variant so different peers announce disjoint prefix sets. *)

val attr_groups :
  Sim.Rng.t -> groups:int -> next_hop:Netsim.Addr.t -> int ->
  (Netsim.Addr.prefix * Bgp.Attrs.t) list
(** [attr_groups rng ~groups ~next_hop n] is [n] prefixes spread over
    [groups] distinct attribute sets (different AS paths/MEDs), the
    workload that exercises update packing realistically. *)
