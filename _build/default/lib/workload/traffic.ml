open Sim

type params = {
  heavy_weight : float;
  heavy_median_bps : float;
  heavy_sigma : float;
  light_median_bps : float;
  light_sigma : float;
}

let default =
  {
    heavy_weight = 0.42;
    heavy_median_bps = 4.0e9;
    heavy_sigma = 2.6;
    light_median_bps = 14.0e6;
    light_sigma = 1.8;
  }

let sample_link_bps rng p =
  if Rng.bernoulli rng p.heavy_weight then
    Rng.lognormal rng ~mu:(log p.heavy_median_bps) ~sigma:p.heavy_sigma
  else Rng.lognormal rng ~mu:(log p.light_median_bps) ~sigma:p.light_sigma

let sample_population rng p n = Array.init n (fun _ -> sample_link_bps rng p)

let mean_bps arr =
  if Array.length arr = 0 then nan
  else Array.fold_left ( +. ) 0.0 arr /. float_of_int (Array.length arr)

let median_bps arr =
  if Array.length arr = 0 then nan
  else begin
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    sorted.(Array.length sorted / 2)
  end

let fraction_above arr threshold =
  if Array.length arr = 0 then nan
  else
    float_of_int
      (Array.fold_left (fun acc v -> if v > threshold then acc + 1 else acc) 0 arr)
    /. float_of_int (Array.length arr)

let bytes_impacted ~avg_bps ~downtime = avg_bps /. 8.0 *. Time.to_sec_f downtime
