(* tensor-cli: drive the TENSOR reproduction from the command line.

     tensor-cli experiment fig6a table1 ...   # regenerate paper artifacts
     tensor-cli failover --kind host          # one failure scenario, verbose
     tensor-cli cdf --links 6000              # Figure 7(a) population
     tensor-cli list                          # experiment ids *)

open Cmdliner

let experiment_ids =
  [ "fig5a"; "fig5b"; "fig6a"; "fig6b"; "fig6c"; "fig6d"; "table1"; "multias";
    "scale"; "ablations"; "fig7a"; "fig7b"; "table2" ]

let run_experiment ~quick id =
  match id with
  | "fig5a" ->
      Tensor.Exp_fig5a.print
        (if quick then
           Tensor.Exp_fig5a.run ~packet_sizes:[ 100; 500; 2000 ]
             ~delays_ms:[ 0.; 2.; 5.; 20.; 50. ]
             ~measure_span:(Sim.Time.ms 200) ()
         else Tensor.Exp_fig5a.run ())
  | "fig5b" -> Tensor.Exp_fig5b.print (Tensor.Exp_fig5b.run ())
  | "fig6a" ->
      Tensor.Exp_fig6.print_receive
        (Tensor.Exp_fig6.run_receive
           ~counts:(if quick then [ 100; 10_000 ] else [ 100; 1_000; 10_000; 100_000; 500_000 ])
           ())
  | "fig6b" ->
      Tensor.Exp_fig6.print_send
        (Tensor.Exp_fig6.run_send
           ~counts:(if quick then [ 100; 10_000 ] else [ 100; 1_000; 10_000; 100_000; 500_000 ])
           ())
  | "fig6c" ->
      Tensor.Exp_fig6.print_multi_peer
        (Tensor.Exp_fig6.run_multi_peer
           ~peer_counts:(if quick then [ 50; 700 ] else [ 50; 100; 200; 300; 400; 500; 600; 700 ])
           ())
  | "fig6d" -> Tensor.Exp_fig6.print_scale (Tensor.Exp_fig6.run_scale ())
  | "table1" -> Tensor.Exp_table1.print (Tensor.Exp_table1.run ())
  | "multias" ->
      Tensor.Exp_parallel.print
        (Tensor.Exp_parallel.run ~ases:(if quick then 10 else 50) ())
  | "scale" ->
      Tensor.Exp_scale.print
        (if quick then Tensor.Exp_scale.run ~hosts:5 ~services:20 ()
         else Tensor.Exp_scale.run ())
  | "ablations" ->
      Tensor.Exp_ablations.print_preheat (Tensor.Exp_ablations.run_preheat ());
      Tensor.Exp_ablations.print_replication_modes
        (Tensor.Exp_ablations.run_replication_modes ());
      Tensor.Exp_ablations.print_hook_overhead
        (Tensor.Exp_ablations.run_hook_overhead ())
  | "fig7a" -> Tensor.Exp_fig7.print_cdf (Tensor.Exp_fig7.run_cdf ())
  | "fig7b" ->
      Tensor.Exp_fig7.print_timeline (Tensor.Exp_fig7.run_timeline ())
  | "table2" -> Tensor.Exp_table2.print ()
  | other -> Printf.eprintf "unknown experiment %S\n" other

(* --- experiment command ------------------------------------------------- *)

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced parameter ranges.")

let ids_arg =
  Arg.(
    value
    & pos_all string experiment_ids
    & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let experiment_cmd =
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const (fun quick ids -> List.iter (run_experiment ~quick) ids)
      $ quick_flag $ ids_arg)

(* --- failover command --------------------------------------------------- *)

let failure_kind_conv =
  let parse = function
    | "app" | "application" -> Ok Orch.Controller.App_failure
    | "container" -> Ok Orch.Controller.Container_failure
    | "host" | "host-machine" -> Ok Orch.Controller.Host_failure
    | "host-network" | "network" -> Ok Orch.Controller.Host_network_failure
    | s -> Error (`Msg (Printf.sprintf "unknown failure kind %S" s))
  in
  Arg.conv (parse, Orch.Controller.pp_failure_kind)

let failover_cmd =
  let kind =
    Arg.(
      value
      & opt failure_kind_conv Orch.Controller.Container_failure
      & info [ "kind"; "k" ] ~docv:"KIND"
          ~doc:"app | container | host | host-network")
  in
  let run kind =
    let rows = Tensor.Exp_table1.run ~kinds:[ kind ] () in
    Tensor.Exp_table1.print rows;
    List.iter
      (fun (r : Tensor.Exp_table1.timeline) ->
        if r.peer_session_drops > 0 || r.peer_routes_lost > 0 then begin
          Printf.eprintf "NSR FAILED: peer observed the outage\n";
          exit 1
        end)
      rows;
    print_endline "\nNSR verified: the remote AS observed zero downtime."
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"Run one failure scenario and verify NSR.")
    Term.(const run $ kind)

(* --- cdf command ----------------------------------------------------------- *)

let cdf_cmd =
  let links =
    Arg.(value & opt int 6000 & info [ "links" ] ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "cdf" ~doc:"Sample the Figure 7(a) traffic population.")
    Term.(
      const (fun links seed ->
          Tensor.Exp_fig7.print_cdf (Tensor.Exp_fig7.run_cdf ~links ~seed ()))
      $ links $ seed)

(* --- list command ------------------------------------------------------------ *)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List experiment ids.")
    Term.(const (fun () -> List.iter print_endline experiment_ids) $ const ())

let () =
  let doc = "TENSOR (SIGCOMM '23) reproduction toolkit" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "tensor-cli" ~version:"1.0.0" ~doc)
          [ experiment_cmd; failover_cmd; cdf_cmd; list_cmd ]))
