(* Regression tests for the failure-edge mechanisms uncovered by the
   ablation experiments:

   1. TCP go-back-N after an RTO: a long outage with a full window in
      flight must recover ACK-clocked, not one MSS per backed-off timer.
   2. The recovery RST guard: peer retransmissions arriving while the
      backup is still downloading state must not be answered with RST.
   3. Partial-message tail replication: a sender stalled in RTO backoff
      delivers a message fragment; its ACK must still be releasable
      (fragment replicated) and a crash at that point must recover.
   4. Preheated standby containers.
   5. Joint BGP containers (iBGP synchronisation, §3.2.4). *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- 1. TCP RTO recovery ------------------------------------------------- *)

let test_tcp_bulk_recovers_quickly_after_outage () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let link, _, dst = Network.connect net ~delay:(Time.us 100) a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let got = ref 0 in
  Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun d -> got := !got + String.length d));
  let conn = Tcp.connect sa ~dst ~dst_port:80 () in
  let total = 2_000_000 in
  Tcp.on_established conn (fun () -> Tcp.write conn (String.make total 'x'));
  (* Let a full window get in flight, then cut the link for 10 s (several
     RTO doublings). *)
  Engine.run_for eng (Time.ms 50);
  Link.set_up link false;
  Engine.run_for eng (Time.sec 10);
  Link.set_up link true;
  let back_up_at = Engine.now eng in
  (* Everything must complete within a few seconds of the link's return:
     one backed-off RTO firing, then ACK-clocked retransmission. One MSS
     per max-RTO would need hours. *)
  Engine.run_for eng (Time.sec 25);
  checki "transfer completed" total !got;
  checkb "connection alive" true (Tcp.state conn = Tcp.Established);
  ignore back_up_at

let test_tcp_backoff_resets_on_new_ack () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let link, _, dst = Network.connect net a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let got = ref 0 in
  Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun d -> got := !got + String.length d));
  let conn = Tcp.connect sa ~dst ~dst_port:80 () in
  Tcp.on_established conn (fun () -> Tcp.write conn (String.make 100_000 'y'));
  Engine.run_for eng (Time.ms 20);
  (* Two short outages in sequence: the second must not start from the
     first's accumulated backoff. *)
  Link.fail_for link (Time.sec 3);
  Engine.run_for eng (Time.sec 8);
  let mid = !got in
  checkb "resumed after first outage" true (mid > 0);
  Link.fail_for link (Time.sec 3);
  Engine.run_for eng (Time.sec 10);
  checki "completed after second outage" 100_000 !got

(* --- shared world ------------------------------------------------------- *)

let vip1 = Addr.of_string "203.0.113.10"

let make_world ?(backup_mode = `Cold) () =
  let dep = Tensor.Deploy.build () in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peerAS" in
  let peer_handle =
    Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip:vip1 ~local_asn:64900
  in
  let svc =
    Tensor.Deploy.deploy_service dep ~backup_mode ~id:"svc1" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip:vip1
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  assert (Tensor.Deploy.wait_established dep svc ());
  (dep, peer, peer_handle, svc)

(* --- 2./3. Recovery under retransmission pressure ------------------------ *)

let test_recovery_with_large_inflight_flood () =
  (* Crash while a big flood is mid-stream: peer retransmissions hammer
     the backup during state download (the RST-guard scenario) and the
     stream is fragment-aligned at takeover (the partial-tail scenario).
     The session must survive and every update must eventually land. *)
  let dep, peer, peer_handle, svc = make_world () in
  let eng = dep.Tensor.Deploy.eng in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 30_000);
  (* Land the crash mid-flood, once updates are flowing. *)
  let spk = Option.get (Tensor.App.speaker (Tensor.Deploy.service_app svc)) in
  let deadline = Time.add (Engine.now eng) (Time.sec 10) in
  let rec wait () =
    if Bgp.Speaker.updates_learned spk > 3_000 then ()
    else if Engine.now eng < deadline then begin
      Engine.run_for eng (Time.ms 5);
      wait ()
    end
  in
  wait ();
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 60);
  checki "peer session never dropped" 0 !drops;
  checki "every update recovered" 30_000
    (Tensor.Deploy.service_routes svc ~vrf:"v0")

let test_partial_tail_replication_under_stall () =
  (* Force the stall: crash mid-flood leaves the peer with a partial
     window; the resumed backup receives a fragment whose ACK can only be
     released via tail replication. Indirectly verified by the session
     surviving and completing; directly, the replicator must have
     recorded hold samples and cleaned up the part record. *)
  let dep, peer, peer_handle, svc = make_world () in
  let eng = dep.Tensor.Deploy.eng in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 20_000);
  Engine.run_for eng (Time.sec 10);
  (* Quiet store: the next burst then the crash races the pipeline. *)
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct_from ~base:600_000 500);
  Engine.run_for eng (Time.ms 30);
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 90);
  checki "no drops" 0 !drops;
  checki "all routes present" 20_500 (Tensor.Deploy.service_routes svc ~vrf:"v0");
  (* The fragment record must not linger once the stream re-aligned. *)
  let cid = Tensor.Keys.conn_id ~service:"svc1" ~vrf:"v0" in
  checkb "part record cleaned or superseded" true
    (match
       Store.Server.peek dep.Tensor.Deploy.store_server (Tensor.Keys.part_key cid)
     with
    | None -> true
    | Some v -> (
        (* If present it must be stale (not matching the watermark). *)
        match
          ( Tensor.Keys.decode_part v,
            Store.Server.peek dep.Tensor.Deploy.store_server
              (Tensor.Keys.ack_key cid) )
        with
        | Ok _, Some _ -> true
        | _ -> false))

(* --- 4. Preheat ---------------------------------------------------------- *)

let test_preheat_faster_than_cold () =
  let run mode =
    let dep, peer, _, svc = make_world ~backup_mode:mode () in
    let eng = dep.Tensor.Deploy.eng in
    Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
      (Workload.Prefixes.distinct 200);
    Engine.run_for eng (Time.sec 10);
    let t0 = Engine.now eng in
    Tensor.Deploy.inject_container_failure dep svc;
    Engine.run_for eng (Time.sec 30);
    match
      Trace.first dep.Tensor.Deploy.trace ~category:"tcp-synced"
    with
    | Some e -> Time.to_sec_f (Time.diff e.Trace.at t0)
    | None -> Alcotest.fail "no recovery"
  in
  let cold = run `Cold in
  let preheat = run `Preheat in
  checkb
    (Printf.sprintf "preheat (%.2fs) at least 0.8s faster than cold (%.2fs)"
       preheat cold)
    true
    (cold -. preheat > 0.8)

let test_preheat_standby_replaced_after_use () =
  let dep, _, peer_handle, svc = make_world ~backup_mode:`Preheat () in
  let eng = dep.Tensor.Deploy.eng in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);
  (* Two failures in a row: the second must also find a standby. *)
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 20);
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 20);
  checki "zero drops across two preheated migrations" 0 !drops;
  checkb "service healthy" true
    (Tensor.App.session_established (Tensor.Deploy.service_app svc) ~vrf:"v0")

(* --- 5. Joint BGP containers (§3.2.4) ------------------------------------ *)

let test_joint_container_global_best () =
  (* Two client containers each learn the same prefix from different ASes
     with different path lengths; both feed a joint container over iBGP.
     The joint container must pick the globally best (shorter) path. *)
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let as_a = Tensor.Deploy.add_peer_as dep ~asn:65011 "asA" in
  let as_b = Tensor.Deploy.add_peer_as dep ~asn:65012 "asB" in
  let vip_a = Addr.of_string "203.0.113.21" in
  let vip_b = Addr.of_string "203.0.113.22" in
  let vip_j = Addr.of_string "203.0.113.23" in
  ignore (Tensor.Deploy.peer_expects as_a ~vrf:"v0" ~vip:vip_a ~local_asn:64900);
  ignore (Tensor.Deploy.peer_expects as_b ~vrf:"v0" ~vip:vip_b ~local_asn:64900);
  let svc_a =
    Tensor.Deploy.deploy_service dep ~id:"clientA" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip:vip_a
          ~peer_addr:as_a.Tensor.Deploy.pa_addr ~peer_asn:65011
          ~ibgp_peers:[ (vip_j, false) ] ();
      ]
  in
  let svc_b =
    Tensor.Deploy.deploy_service dep ~primary_host:1 ~backup_host:2
      ~id:"clientB" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip:vip_b
          ~peer_addr:as_b.Tensor.Deploy.pa_addr ~peer_asn:65012
          ~ibgp_peers:[ (vip_j, false) ] ();
      ]
  in
  (* The joint container: passive iBGP listener for both clients; its
     "external peer" slot points at client A (passive). *)
  let svc_j =
    Tensor.Deploy.deploy_service dep ~primary_host:2 ~backup_host:0
      ~id:"joint" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip:vip_j ~peer_addr:vip_a
          ~peer_asn:64900 ~passive:true ~run_bfd:false
          ~ibgp_peers:[ (vip_b, true) ] ();
      ]
  in
  assert (Tensor.Deploy.wait_established dep svc_a ());
  assert (Tensor.Deploy.wait_established dep svc_b ());
  Engine.run_for eng (Time.sec 10);
  let contested = Addr.prefix_of_string "198.18.0.0/16" in
  (* AS A offers a long path; AS B a short one. *)
  Bgp.Speaker.originate as_a.Tensor.Deploy.pa_speaker ~vrf:"v0"
    ~attrs:
      (Bgp.Attrs.make
         ~as_path:[ Bgp.Attrs.Seq [ 50001; 50002; 50003 ] ]
         ~next_hop:as_a.Tensor.Deploy.pa_addr ())
    [ contested ];
  Bgp.Speaker.originate as_b.Tensor.Deploy.pa_speaker ~vrf:"v0" [ contested ];
  Engine.run_for eng (Time.sec 10);
  ignore svc_j;
  let joint_spk =
    Option.get (Tensor.App.speaker (Tensor.Deploy.service_app svc_j))
  in
  let joint_rib = Bgp.Speaker.rib joint_spk ~vrf:"v0" in
  match Bgp.Rib.best joint_rib contested with
  | Some best ->
      (* Global optimum: via B (2 hops incl. A/B's own prepend) not via A
         (4 hops). *)
      checkb
        (Format.asprintf "joint picked shortest global path (%a)" Bgp.Attrs.pp
           best.Bgp.Rib.attrs)
        true
        (Bgp.Attrs.as_path_length best.Bgp.Rib.attrs <= 2
        && Bgp.Attrs.path_contains best.Bgp.Rib.attrs 65012);
      checki "joint sees both candidates" 2
        (List.length (Bgp.Rib.candidates joint_rib contested))
  | None -> Alcotest.fail "joint container missing the route"

let () =
  Alcotest.run "recovery_edge"
    [
      ( "tcp-rto",
        [
          Alcotest.test_case "bulk recovers after long outage" `Quick
            test_tcp_bulk_recovers_quickly_after_outage;
          Alcotest.test_case "backoff resets on new ack" `Quick
            test_tcp_backoff_resets_on_new_ack;
        ] );
      ( "recovery-pressure",
        [
          Alcotest.test_case "crash mid-flood (RST guard)" `Quick
            test_recovery_with_large_inflight_flood;
          Alcotest.test_case "partial tail replication" `Quick
            test_partial_tail_replication_under_stall;
        ] );
      ( "preheat",
        [
          Alcotest.test_case "faster than cold" `Quick test_preheat_faster_than_cold;
          Alcotest.test_case "standby replaced after use" `Quick
            test_preheat_standby_replaced_after_use;
        ] );
      ( "joint-container",
        [
          Alcotest.test_case "global best via iBGP" `Quick
            test_joint_container_global_best;
        ] );
    ]
