(* Tests for the Netfilter-style hook layer: rule ordering, verdicts,
   NFQUEUE semantics (including the reader-less drop that hides a crashed
   process's FIN/RST), and reinjection discipline. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let pkt ?(src = "1.1.1.1") ?(dst = "2.2.2.2") ?(size = 64) () =
  Packet.make ~src:(Addr.of_string src) ~dst:(Addr.of_string dst) ~size
    (Packet.Raw "x")

let test_empty_chain_accepts () =
  let chain = Netfilter.create () in
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  checki "emitted" 1 !emitted;
  checki "accepted counter" 1 (Netfilter.accepted chain)

let test_drop_rule () =
  let chain = Netfilter.create () in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Drop));
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  checki "nothing emitted" 0 !emitted;
  checki "dropped counter" 1 (Netfilter.dropped chain)

let test_priority_order () =
  let chain = Netfilter.create () in
  let hits = ref [] in
  ignore
    (Netfilter.add_rule chain ~priority:10 (fun _ ->
         hits := "low" :: !hits;
         Netfilter.Accept));
  ignore
    (Netfilter.add_rule chain ~priority:(-5) (fun _ ->
         hits := "high" :: !hits;
         Netfilter.Accept));
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> ());
  Alcotest.(check (list string)) "high priority first" [ "low"; "high" ] !hits

let test_first_verdict_stops_traversal () =
  let chain = Netfilter.create () in
  let later = ref 0 in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Drop));
  ignore
    (Netfilter.add_rule chain (fun _ ->
         incr later;
         Netfilter.Accept));
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> ());
  checki "later rule not consulted" 0 !later

let test_remove_rule () =
  let chain = Netfilter.create () in
  let rule = Netfilter.add_rule chain (fun _ -> Netfilter.Drop) in
  Netfilter.remove_rule chain rule;
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  checki "accepts after removal" 1 !emitted

let test_queue_without_consumer_drops () =
  (* Real NFQUEUE semantics: reader-less queues drop. This is what hides
     a crashed BGP process's kernel FIN/RST from the remote peer. *)
  let chain = Netfilter.create () in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Queue 0));
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  checki "dropped" 0 !emitted;
  checki "drop counter" 1 (Netfilter.dropped chain)

let test_queue_consumer_holds_and_releases () =
  let eng = Engine.create () in
  let chain = Netfilter.create () in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Queue 3));
  let q = Netfilter.queue chain 3 in
  Netfilter.set_consumer q (fun _ ~reinject ->
      ignore
        (Engine.schedule_after eng (Time.ms 10) (fun () ->
             reinject Netfilter.Accept)));
  let emitted_at = ref None in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ ->
      emitted_at := Some (Engine.now eng));
  checki "held (backlog)" 1 (Netfilter.backlog q);
  Engine.run eng;
  checkb "released after 10ms" true (!emitted_at = Some (Time.ms 10));
  checki "backlog drained" 0 (Netfilter.backlog q)

let test_queue_consumer_drop_verdict () =
  let chain = Netfilter.create () in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Queue 0));
  Netfilter.set_consumer (Netfilter.queue chain 0) (fun _ ~reinject ->
      reinject Netfilter.Drop);
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  checki "consumer dropped it" 0 !emitted;
  checki "dropped counter" 1 (Netfilter.dropped chain)

let test_reinject_exactly_once () =
  let chain = Netfilter.create () in
  ignore (Netfilter.add_rule chain (fun _ -> Netfilter.Queue 0));
  let saved = ref None in
  Netfilter.set_consumer (Netfilter.queue chain 0) (fun _ ~reinject ->
      saved := Some reinject);
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ()) ~emit:(fun _ -> incr emitted);
  (match !saved with
  | Some reinject ->
      reinject Netfilter.Accept;
      reinject Netfilter.Accept;
      reinject Netfilter.Drop
  | None -> Alcotest.fail "no reinject");
  checki "double reinject ignored" 1 !emitted

let test_selective_rule () =
  let chain = Netfilter.create () in
  let target = Addr.of_string "9.9.9.9" in
  ignore
    (Netfilter.add_rule chain (fun p ->
         if Addr.equal p.Packet.dst target then Netfilter.Drop
         else Netfilter.Accept));
  let emitted = ref 0 in
  Netfilter.traverse chain (pkt ~dst:"9.9.9.9" ()) ~emit:(fun _ -> incr emitted);
  Netfilter.traverse chain (pkt ~dst:"8.8.8.8" ()) ~emit:(fun _ -> incr emitted);
  checki "only non-matching emitted" 1 !emitted

let test_independent_queues () =
  let chain = Netfilter.create () in
  let target = Addr.of_string "9.9.9.9" in
  ignore
    (Netfilter.add_rule chain (fun p ->
         if Addr.equal p.Packet.dst target then Netfilter.Queue 1
         else Netfilter.Queue 2));
  let got1 = ref 0 and got2 = ref 0 in
  Netfilter.set_consumer (Netfilter.queue chain 1) (fun _ ~reinject ->
      incr got1;
      reinject Netfilter.Accept);
  Netfilter.set_consumer (Netfilter.queue chain 2) (fun _ ~reinject ->
      incr got2;
      reinject Netfilter.Accept);
  Netfilter.traverse chain (pkt ~dst:"9.9.9.9" ()) ~emit:(fun _ -> ());
  Netfilter.traverse chain (pkt ~dst:"8.8.8.8" ()) ~emit:(fun _ -> ());
  Netfilter.traverse chain (pkt ~dst:"8.8.8.8" ()) ~emit:(fun _ -> ());
  checki "queue 1" 1 !got1;
  checki "queue 2" 2 !got2

let prop_verdict_conservation =
  QCheck.Test.make ~name:"every packet is accepted or dropped, never both"
    ~count:100
    QCheck.(list (int_bound 2))
    (fun verdicts ->
      let chain = Netfilter.create () in
      ignore
        (Netfilter.add_rule chain (fun p ->
             match p.Packet.size mod 3 with
             | 0 -> Netfilter.Accept
             | 1 -> Netfilter.Drop
             | _ -> Netfilter.Queue 0));
      Netfilter.set_consumer (Netfilter.queue chain 0) (fun _ ~reinject ->
          reinject Netfilter.Accept);
      let emitted = ref 0 in
      List.iteri
        (fun i v ->
          ignore v;
          Netfilter.traverse chain (pkt ~size:(i + 1) ()) ~emit:(fun _ ->
              incr emitted))
        verdicts;
      Netfilter.accepted chain + Netfilter.dropped chain
      = List.length verdicts
      && !emitted = Netfilter.accepted chain)

let () =
  Alcotest.run "netfilter"
    [
      ( "rules",
        [
          Alcotest.test_case "empty chain accepts" `Quick test_empty_chain_accepts;
          Alcotest.test_case "drop rule" `Quick test_drop_rule;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "first verdict wins" `Quick
            test_first_verdict_stops_traversal;
          Alcotest.test_case "remove rule" `Quick test_remove_rule;
          Alcotest.test_case "selective rule" `Quick test_selective_rule;
        ] );
      ( "nfqueue",
        [
          Alcotest.test_case "reader-less queue drops" `Quick
            test_queue_without_consumer_drops;
          Alcotest.test_case "hold and release" `Quick
            test_queue_consumer_holds_and_releases;
          Alcotest.test_case "consumer drop verdict" `Quick
            test_queue_consumer_drop_verdict;
          Alcotest.test_case "reinject exactly once" `Quick
            test_reinject_exactly_once;
          Alcotest.test_case "independent queues" `Quick test_independent_queues;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_verdict_conservation ] );
    ]
