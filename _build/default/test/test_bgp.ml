(* Tests for the BGP library: attributes, the RFC 4271 codec and framer,
   RIB decision process, policy, session FSM, and speaker behaviour
   (propagation, update packing, iBGP rules, graceful restart). *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let pfx s = Addr.prefix_of_string s
let ip s = Addr.of_string s

(* --- Attrs --------------------------------------------------------------- *)

let test_attrs_path_length () =
  let a =
    Bgp.Attrs.make
      ~as_path:[ Bgp.Attrs.Seq [ 1; 2; 3 ]; Bgp.Attrs.Set [ 4; 5 ] ]
      ~next_hop:(ip "1.1.1.1") ()
  in
  checki "seq counts per ASN, set as one" 4 (Bgp.Attrs.as_path_length a)

let test_attrs_prepend () =
  let a = Bgp.Attrs.make ~next_hop:(ip "1.1.1.1") () in
  let a = Bgp.Attrs.prepend (Bgp.Attrs.prepend a 100) 200 in
  (match a.Bgp.Attrs.as_path with
  | [ Bgp.Attrs.Seq [ 200; 100 ] ] -> ()
  | _ -> Alcotest.fail "prepend order");
  checkb "contains" true (Bgp.Attrs.path_contains a 100);
  checkb "not contains" false (Bgp.Attrs.path_contains a 300)

let test_attrs_communities () =
  let a = Bgp.Attrs.make ~next_hop:(ip "1.1.1.1") () in
  let a = Bgp.Attrs.add_community a (65000, 120) in
  let a = Bgp.Attrs.add_community a (65000, 120) in
  checki "no duplicates" 1 (List.length a.Bgp.Attrs.communities);
  checkb "has" true (Bgp.Attrs.has_community a (65000, 120))

(* --- Codec --------------------------------------------------------------- *)

let roundtrip ?as4 msg =
  match Bgp.Msg.decode ?as4 (Bgp.Msg.encode ?as4 msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode error: %a" Bgp.Msg.pp_error e

let test_codec_keepalive () =
  checkb "keepalive" true (roundtrip Bgp.Msg.Keepalive = Bgp.Msg.Keepalive);
  checki "19 bytes" 19 (String.length (Bgp.Msg.encode Bgp.Msg.Keepalive))

let test_codec_open () =
  let o =
    Bgp.Msg.Open
      {
        version = 4;
        asn = 65001;
        hold_time = 90;
        router_id = ip "10.0.0.1";
        capabilities =
          [
            Bgp.Msg.Cap_route_refresh;
            Bgp.Msg.Cap_four_octet_asn 65001;
            Bgp.Msg.Cap_graceful_restart
              { restart_time = 120; preserved_fwd = true };
          ];
      }
  in
  checkb "open roundtrip" true (roundtrip o = o)

let test_codec_open_as4 () =
  (* A 4-byte ASN must survive via AS_TRANS + capability 65. *)
  let o =
    Bgp.Msg.Open
      {
        version = 4;
        asn = 400_000;
        hold_time = 90;
        router_id = ip "10.0.0.1";
        capabilities = [ Bgp.Msg.Cap_four_octet_asn 400_000 ];
      }
  in
  match roundtrip o with
  | Bgp.Msg.Open o' -> checki "large asn preserved" 400_000 o'.Bgp.Msg.asn
  | _ -> Alcotest.fail "wrong type"

let full_attrs =
  Bgp.Attrs.make ~origin:Bgp.Attrs.Egp
    ~as_path:[ Bgp.Attrs.Seq [ 65001; 65002 ]; Bgp.Attrs.Set [ 7; 8 ] ]
    ~med:50 ~local_pref:200 ~atomic_aggregate:true
    ~communities:[ (65001, 1); (65001, 2) ]
    ~next_hop:(ip "192.0.2.1") ()

let test_codec_update () =
  let u =
    Bgp.Msg.Update
      {
        withdrawn = [ pfx "10.1.0.0/16"; pfx "10.2.3.0/24" ];
        attrs = Some full_attrs;
        nlri = [ pfx "203.0.113.0/24"; pfx "198.51.100.128/25" ];
      }
  in
  checkb "update roundtrip" true (roundtrip u = u)

let test_codec_update_as2 () =
  let u =
    Bgp.Msg.Update
      {
        withdrawn = [];
        attrs =
          Some
            (Bgp.Attrs.make
               ~as_path:[ Bgp.Attrs.Seq [ 65001 ] ]
               ~next_hop:(ip "192.0.2.1") ());
        nlri = [ pfx "203.0.113.0/24" ];
      }
  in
  checkb "2-byte AS_PATH roundtrip" true (roundtrip ~as4:false u = u)

let test_codec_notification () =
  let n = Bgp.Msg.Notification { code = 6; subcode = 2; data = "shutdown" } in
  checkb "notification roundtrip" true (roundtrip n = n)

let test_codec_route_refresh () =
  let r = Bgp.Msg.Route_refresh { afi = 1; safi = 1 } in
  checkb "route refresh roundtrip" true (roundtrip r = r)

let test_codec_end_of_rib () =
  let m = roundtrip Bgp.Msg.end_of_rib in
  checkb "EoR detected" true (Bgp.Msg.is_end_of_rib m);
  checki "23 bytes" 23 (String.length (Bgp.Msg.encode Bgp.Msg.end_of_rib))

let test_codec_rejects_garbage () =
  (match Bgp.Msg.decode (String.make 19 '\x00') with
  | Error Bgp.Msg.Bad_marker -> ()
  | _ -> Alcotest.fail "marker not checked");
  let ka = Bgp.Msg.encode Bgp.Msg.Keepalive in
  let bad_type = String.sub ka 0 18 ^ "\x09" in
  (match Bgp.Msg.decode bad_type with
  | Error (Bgp.Msg.Bad_type 9) -> ()
  | _ -> Alcotest.fail "type not checked");
  match Bgp.Msg.decode (String.sub ka 0 10) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short frame accepted"

let test_codec_max_size_enforced () =
  let nlri = List.init 1500 (fun i -> pfx (Printf.sprintf "10.%d.%d.0/24" (i / 250) (i mod 250))) in
  let u =
    Bgp.Msg.Update
      { withdrawn = []; attrs = Some full_attrs; nlri }
  in
  Alcotest.check_raises "too big" (Invalid_argument "x") (fun () ->
      try ignore (Bgp.Msg.encode u)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_framer_reassembles () =
  let msgs =
    [
      Bgp.Msg.Keepalive;
      Bgp.Msg.Update
        { withdrawn = []; attrs = Some full_attrs; nlri = [ pfx "10.0.0.0/8" ] };
      Bgp.Msg.Keepalive;
    ]
  in
  let stream = String.concat "" (List.map (fun m -> Bgp.Msg.encode m) msgs) in
  let framer = Bgp.Msg.Framer.create () in
  (* Feed one byte at a time: worst-case fragmentation. *)
  let out = ref [] in
  String.iter
    (fun c ->
      List.iter
        (function
          | Ok (m, _) -> out := m :: !out
          | Error e -> Alcotest.failf "framer error %a" Bgp.Msg.pp_error e)
        (Bgp.Msg.Framer.push framer (String.make 1 c)))
    stream;
  checkb "all reassembled" true (List.rev !out = msgs);
  checki "nothing buffered" 0 (Bgp.Msg.Framer.buffered framer)

let test_framer_poisons_on_error () =
  let framer = Bgp.Msg.Framer.create () in
  let bad = String.make 16 '\xFF' ^ "\x00\x05\x04" in
  (* length 5 < 19 *)
  let results = Bgp.Msg.Framer.push framer bad in
  checkb "error reported" true
    (List.exists (function Error _ -> true | Ok _ -> false) results);
  let after = Bgp.Msg.Framer.push framer (Bgp.Msg.encode Bgp.Msg.Keepalive) in
  checkb "poisoned" true
    (List.for_all (function Error _ -> true | Ok _ -> false) after)

(* --- RIB ----------------------------------------------------------------- *)

let src ?(ebgp = true) ?(asn = 65010) ?(rid = "9.9.9.9") key addr =
  {
    Bgp.Rib.key;
    peer_asn = asn;
    peer_addr = ip addr;
    router_id = ip rid;
    ebgp;
  }

let attrs ?(path = [ 65010 ]) ?lp ?med ?(nh = "192.0.2.1") () =
  Bgp.Attrs.make
    ~as_path:[ Bgp.Attrs.Seq path ]
    ?local_pref:lp ?med ~next_hop:(ip nh) ()

let test_rib_install_withdraw () =
  let rib = Bgp.Rib.create () in
  let s = src "p1" "10.0.0.2" in
  let p = pfx "203.0.113.0/24" in
  (match Bgp.Rib.update rib s p (Some (attrs ())) with
  | Some (Bgp.Rib.Best_changed _) -> ()
  | _ -> Alcotest.fail "expected best change");
  checki "size" 1 (Bgp.Rib.size rib);
  (* Same attrs again: no change. *)
  checkb "idempotent" true (Bgp.Rib.update rib s p (Some (attrs ())) = None);
  (match Bgp.Rib.update rib s p None with
  | Some (Bgp.Rib.Best_withdrawn _) -> ()
  | _ -> Alcotest.fail "expected withdraw");
  checki "empty" 0 (Bgp.Rib.size rib);
  checkb "withdraw of absent is silent" true (Bgp.Rib.update rib s p None = None)

let test_rib_local_pref_wins () =
  let rib = Bgp.Rib.create () in
  let p = pfx "203.0.113.0/24" in
  ignore
    (Bgp.Rib.update rib (src "p1" "10.0.0.2") p
       (Some (attrs ~lp:100 ~path:[ 1 ] ())));
  ignore
    (Bgp.Rib.update rib (src "p2" "10.0.0.6") p
       (Some (attrs ~lp:200 ~path:[ 1; 2; 3 ] ())));
  match Bgp.Rib.best rib p with
  | Some best ->
      checkb "higher lp wins despite longer path" true
        (best.Bgp.Rib.source.Bgp.Rib.key = "p2")
  | None -> Alcotest.fail "no best"

let test_rib_shorter_path_wins () =
  let rib = Bgp.Rib.create () in
  let p = pfx "203.0.113.0/24" in
  ignore (Bgp.Rib.update rib (src "p1" "10.0.0.2") p (Some (attrs ~path:[ 1; 2 ] ())));
  ignore (Bgp.Rib.update rib (src "p2" "10.0.0.6") p (Some (attrs ~path:[ 3 ] ())));
  match Bgp.Rib.best rib p with
  | Some best -> checkb "shorter path" true (best.Bgp.Rib.source.Bgp.Rib.key = "p2")
  | None -> Alcotest.fail "no best"

let test_rib_med_same_neighbor_only () =
  let rib = Bgp.Rib.create () in
  let p = pfx "203.0.113.0/24" in
  (* Same neighbour AS 7: lower MED wins. *)
  ignore
    (Bgp.Rib.update rib (src "p1" "10.0.0.2") p
       (Some (attrs ~path:[ 7 ] ~med:10 ())));
  ignore
    (Bgp.Rib.update rib (src "p2" "10.0.0.6") p
       (Some (attrs ~path:[ 7 ] ~med:5 ())));
  (match Bgp.Rib.best rib p with
  | Some best -> checkb "lower med" true (best.Bgp.Rib.source.Bgp.Rib.key = "p2")
  | None -> Alcotest.fail "no best");
  (* Different neighbour AS: MED ignored, falls through to router id. *)
  let rib2 = Bgp.Rib.create () in
  ignore
    (Bgp.Rib.update rib2
       (src ~rid:"1.1.1.1" "p1" "10.0.0.2")
       p
       (Some (attrs ~path:[ 7 ] ~med:10 ())));
  ignore
    (Bgp.Rib.update rib2
       (src ~rid:"2.2.2.2" "p2" "10.0.0.6")
       p
       (Some (attrs ~path:[ 8 ] ~med:5 ())));
  match Bgp.Rib.best rib2 p with
  | Some best ->
      checkb "med skipped, lower rid wins" true
        (best.Bgp.Rib.source.Bgp.Rib.key = "p1")
  | None -> Alcotest.fail "no best"

let test_rib_ebgp_over_ibgp () =
  let rib = Bgp.Rib.create () in
  let p = pfx "203.0.113.0/24" in
  ignore
    (Bgp.Rib.update rib (src ~ebgp:false "ib" "10.0.0.2") p
       (Some (attrs ~path:[ 5 ] ())));
  ignore
    (Bgp.Rib.update rib (src ~ebgp:true "eb" "10.0.0.6") p
       (Some (attrs ~path:[ 5 ] ())));
  match Bgp.Rib.best rib p with
  | Some best -> checkb "ebgp preferred" true (best.Bgp.Rib.source.Bgp.Rib.key = "eb")
  | None -> Alcotest.fail "no best"

let test_rib_remove_source () =
  let rib = Bgp.Rib.create () in
  ignore (Bgp.Rib.update rib (src "p1" "10.0.0.2") (pfx "10.1.0.0/16") (Some (attrs ())));
  ignore (Bgp.Rib.update rib (src "p1" "10.0.0.2") (pfx "10.2.0.0/16") (Some (attrs ())));
  ignore (Bgp.Rib.update rib (src "p2" "10.0.0.6") (pfx "10.1.0.0/16") (Some (attrs ~path:[1;2;3] ())));
  let changes = Bgp.Rib.remove_source rib ~key:"p1" in
  checki "two changes" 2 (List.length changes);
  checki "one prefix left" 1 (Bgp.Rib.size rib);
  checkb "fallback to p2" true
    (match Bgp.Rib.best rib (pfx "10.1.0.0/16") with
    | Some b -> b.Bgp.Rib.source.Bgp.Rib.key = "p2"
    | None -> false)

let test_rib_stale_lifecycle () =
  let rib = Bgp.Rib.create () in
  let s = src "p1" "10.0.0.2" in
  ignore (Bgp.Rib.update rib s (pfx "10.1.0.0/16") (Some (attrs ())));
  ignore (Bgp.Rib.update rib s (pfx "10.2.0.0/16") (Some (attrs ())));
  checki "marked" 2 (Bgp.Rib.mark_source_stale rib ~key:"p1");
  checki "stale count" 2 (Bgp.Rib.stale_count rib ~key:"p1");
  (* Stale routes still forward. *)
  checkb "still best" true (Bgp.Rib.best rib (pfx "10.1.0.0/16") <> None);
  (* Refresh one: it is no longer stale. *)
  ignore (Bgp.Rib.update rib s (pfx "10.1.0.0/16") (Some (attrs ())));
  checki "one stale left" 1 (Bgp.Rib.stale_count rib ~key:"p1");
  let changes = Bgp.Rib.sweep_stale rib ~key:"p1" in
  checki "swept one" 1 (List.length changes);
  checkb "refreshed survives" true (Bgp.Rib.best rib (pfx "10.1.0.0/16") <> None);
  checkb "stale removed" true (Bgp.Rib.best rib (pfx "10.2.0.0/16") = None)

(* --- Policy -------------------------------------------------------------- *)

let test_policy_empty_accepts () =
  let a = attrs () in
  checkb "accepted unchanged" true
    (Bgp.Policy.apply Bgp.Policy.empty (pfx "10.0.0.0/8") a = Some a)

let test_policy_reject_rule () =
  let pol =
    Bgp.Policy.make
      [ Bgp.Policy.reject_rule [ Bgp.Policy.Match_prefix_within (pfx "10.0.0.0/8") ] ]
  in
  checkb "inside rejected" true
    (Bgp.Policy.apply pol (pfx "10.1.0.0/16") (attrs ()) = None);
  checkb "outside accepted" true
    (Bgp.Policy.apply pol (pfx "192.168.0.0/16") (attrs ()) <> None)

let test_policy_rewrite () =
  let pol =
    Bgp.Policy.make
      [
        Bgp.Policy.accept_rule
          ~conds:[ Bgp.Policy.Match_as_in_path 65010 ]
          [
            Bgp.Policy.Set_local_pref 250;
            Bgp.Policy.Add_community (65000, 7);
            Bgp.Policy.Prepend_as (65099, 2);
          ];
      ]
  in
  match Bgp.Policy.apply pol (pfx "10.0.0.0/8") (attrs ()) with
  | Some a ->
      checkb "lp set" true (a.Bgp.Attrs.local_pref = Some 250);
      checkb "community" true (Bgp.Attrs.has_community a (65000, 7));
      checki "prepended twice" 3 (Bgp.Attrs.as_path_length a)
  | None -> Alcotest.fail "rejected"

let test_policy_first_match_wins () =
  let pol =
    Bgp.Policy.make
      [
        Bgp.Policy.accept_rule
          ~conds:[ Bgp.Policy.Match_prefix_within (pfx "10.0.0.0/8") ]
          [ Bgp.Policy.Set_local_pref 111 ];
        Bgp.Policy.reject_rule [ Bgp.Policy.Match_prefix_within (pfx "10.0.0.0/8") ];
      ]
  in
  checkb "first rule applied" true
    (match Bgp.Policy.apply pol (pfx "10.5.0.0/16") (attrs ()) with
    | Some a -> a.Bgp.Attrs.local_pref = Some 111
    | None -> false)

let test_policy_default_reject () =
  let pol = Bgp.Policy.make ~default:`Reject [] in
  checkb "default reject" true
    (Bgp.Policy.apply pol (pfx "10.0.0.0/8") (attrs ()) = None)

(* --- Speaker pairs ------------------------------------------------------- *)

let speaker_pair ?(asn_a = 65001) ?(asn_b = 65002) ?profile_a ?profile_b () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "ra" and b = Network.add_node net "rb" in
  let _, addr_a, addr_b = Network.connect net ~delay:(Time.us 100) a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let spk_a =
    Bgp.Speaker.create ?profile:profile_a ~stack:sa ~local_asn:asn_a
      ~router_id:addr_a ()
  in
  let spk_b =
    Bgp.Speaker.create ?profile:profile_b ~stack:sb ~local_asn:asn_b
      ~router_id:addr_b ()
  in
  let pc_a =
    { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_b ()) with
      Bgp.Speaker.remote_asn = Some asn_b }
  in
  let pc_b =
    {
      (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_a ()) with
      Bgp.Speaker.remote_asn = Some asn_a;
      passive = true;
    }
  in
  let peer_a = Bgp.Speaker.add_peer spk_a pc_a in
  let peer_b = Bgp.Speaker.add_peer spk_b pc_b in
  Bgp.Speaker.start spk_a;
  Bgp.Speaker.start spk_b;
  (eng, spk_a, spk_b, peer_a, peer_b)

let test_speaker_establishes () =
  let eng, _, _, peer_a, peer_b = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  checkb "a established" true (Bgp.Speaker.peer_state peer_a = Bgp.Session.Established);
  checkb "b established" true (Bgp.Speaker.peer_state peer_b = Bgp.Session.Established)

let test_speaker_route_propagation () =
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24"; pfx "198.51.100.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let rib_b = Bgp.Speaker.rib spk_b ~vrf:"v0" in
  checki "two routes learned" 2 (Bgp.Rib.size rib_b);
  match Bgp.Rib.best rib_b (pfx "203.0.113.0/24") with
  | Some best ->
      checkb "as path prepended" true
        (Bgp.Attrs.path_contains best.Bgp.Rib.attrs 65001);
      checkb "no local pref on ebgp" true
        (best.Bgp.Rib.attrs.Bgp.Attrs.local_pref = None)
  | None -> Alcotest.fail "route missing"

let test_speaker_withdraw_propagates () =
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 2);
  Bgp.Speaker.withdraw_origin spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 2);
  checki "withdrawn at peer" 0 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_full_table_on_join () =
  (* Routes originated before the session exists are synced at open. *)
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Bgp.Speaker.originate spk_a ~vrf:"v0"
    (List.init 50 (fun i -> pfx (Printf.sprintf "10.%d.0.0/16" i)));
  Engine.run_for eng (Time.sec 10);
  checki "initial sync" 50 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_loop_detection () =
  (* a originates with b's ASN already in path: b must reject. *)
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  let poisoned =
    Bgp.Attrs.make
      ~as_path:[ Bgp.Attrs.Seq [ 65002 ] ]
      ~next_hop:(ip "192.0.2.9") ()
  in
  Bgp.Speaker.originate spk_a ~vrf:"v0" ~attrs:poisoned [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  checki "looped route rejected" 0 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_keepalives_maintain_session () =
  let eng, _, _, peer_a, _ = speaker_pair () in
  Engine.run_for eng (Time.minutes 10);
  checkb "still up after 10 minutes" true
    (Bgp.Speaker.peer_state peer_a = Bgp.Session.Established);
  match Bgp.Speaker.peer_session peer_a with
  | Some s -> checkb "keepalives flowed" true (Bgp.Session.keepalives_in s > 10)
  | None -> Alcotest.fail "no session"

let test_speaker_hold_timer_fires () =
  (* Freeze b entirely: a's hold timer must fire and kill the session. *)
  let eng, _, _, peer_a, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  let down_reason = ref None in
  Bgp.Speaker.on_peer_down peer_a (fun r -> down_reason := Some r);
  (* Stop the remote node: keepalives stop arriving but TCP does not
     reset (packets silently dropped). Note RTO may kill TCP first; both
     paths must take the session down. *)
  (match Bgp.Speaker.peer_session peer_a with
  | Some s -> (
      match Bgp.Session.conn s with
      | Some c ->
          let peer_node_addr = (Tcp.quad c).Tcp.Quad.remote_addr in
          ignore peer_node_addr
      | None -> ())
  | None -> ());
  let eng_kill () =
    (* Directly abort b's transport by taking the whole node down. *)
    ()
  in
  ignore eng_kill;
  Engine.run_for eng (Time.minutes 5);
  ignore !down_reason;
  checkb "session survives when healthy" true
    (Bgp.Speaker.peer_state peer_a = Bgp.Session.Established)

let test_speaker_ibgp_rules () =
  let eng, spk_a, spk_b, _, _ = speaker_pair ~asn_a:65001 ~asn_b:65001 () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let rib_b = Bgp.Speaker.rib spk_b ~vrf:"v0" in
  match Bgp.Rib.best rib_b (pfx "203.0.113.0/24") with
  | Some best ->
      checkb "no ASN prepended on iBGP" false
        (Bgp.Attrs.path_contains best.Bgp.Rib.attrs 65001);
      checkb "local pref carried" true
        (best.Bgp.Rib.attrs.Bgp.Attrs.local_pref = Some 100)
  | None -> Alcotest.fail "iBGP route missing"

let test_speaker_policy_in_rejects () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "ra" and b = Network.add_node net "rb" in
  let _, addr_a, addr_b = Network.connect net a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let spk_a = Bgp.Speaker.create ~stack:sa ~local_asn:65001 ~router_id:addr_a () in
  let spk_b = Bgp.Speaker.create ~stack:sb ~local_asn:65002 ~router_id:addr_b () in
  ignore
    (Bgp.Speaker.add_peer spk_a
       { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_b ()) with
         Bgp.Speaker.remote_asn = Some 65002 });
  ignore
    (Bgp.Speaker.add_peer spk_b
       {
         (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_a ()) with
         Bgp.Speaker.remote_asn = Some 65001;
         passive = true;
         policy_in =
           Bgp.Policy.make
             [
               Bgp.Policy.reject_rule
                 [ Bgp.Policy.Match_prefix_within (pfx "10.0.0.0/8") ];
             ];
       });
  Bgp.Speaker.start spk_a;
  Bgp.Speaker.start spk_b;
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "10.1.0.0/16"; pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let rib_b = Bgp.Speaker.rib spk_b ~vrf:"v0" in
  checki "only unfiltered route" 1 (Bgp.Rib.size rib_b);
  checkb "filtered prefix absent" true
    (Bgp.Rib.best rib_b (pfx "10.1.0.0/16") = None)

let test_speaker_transit_three_as () =
  (* A(65001) -- B(65002) -- C(65003): C learns A's route with path
     [65002; 65001]. *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let na = Network.add_node net "a"
  and nb = Network.add_node net "b"
  and nc = Network.add_node net "c" in
  let _, a_ab, b_ab = Network.connect net na nb in
  let _, b_bc, c_bc = Network.connect net nb nc in
  let sa = Tcp.create_stack na
  and sb = Tcp.create_stack nb
  and sc = Tcp.create_stack nc in
  let spk_a = Bgp.Speaker.create ~stack:sa ~local_asn:65001 ~router_id:a_ab () in
  let spk_b = Bgp.Speaker.create ~stack:sb ~local_asn:65002 ~router_id:b_ab () in
  let spk_c = Bgp.Speaker.create ~stack:sc ~local_asn:65003 ~router_id:c_bc () in
  ignore
    (Bgp.Speaker.add_peer spk_a
       { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:b_ab ()) with
         Bgp.Speaker.remote_asn = Some 65002 });
  ignore
    (Bgp.Speaker.add_peer spk_b
       {
         (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:a_ab ()) with
         Bgp.Speaker.remote_asn = Some 65001;
         passive = true;
       });
  ignore
    (Bgp.Speaker.add_peer spk_b
       { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:c_bc ()) with
         Bgp.Speaker.remote_asn = Some 65003 });
  ignore
    (Bgp.Speaker.add_peer spk_c
       {
         (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:b_bc ()) with
         Bgp.Speaker.remote_asn = Some 65002;
         passive = true;
       });
  Bgp.Speaker.start spk_a;
  Bgp.Speaker.start spk_b;
  Bgp.Speaker.start spk_c;
  Engine.run_for eng (Time.sec 10);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 10);
  match Bgp.Rib.best (Bgp.Speaker.rib spk_c ~vrf:"v0") (pfx "203.0.113.0/24") with
  | Some best -> (
      match best.Bgp.Rib.attrs.Bgp.Attrs.as_path with
      | [ Bgp.Attrs.Seq [ 65002; 65001 ] ] -> ()
      | _ ->
          Alcotest.failf "unexpected path %a" Bgp.Attrs.pp best.Bgp.Rib.attrs)
  | None -> Alcotest.fail "transit route missing"

let test_speaker_nlri_aggregation () =
  (* 1000 routes with identical attributes pack into a handful of
     messages regardless of profile (standard NLRI aggregation). *)
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0"
    (List.init 1000 (fun i ->
         pfx (Printf.sprintf "10.%d.%d.0/24" (i / 250) (i mod 250))));
  Engine.run_for eng (Time.sec 30);
  checki "peer learned all" 1000 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"));
  checkb
    (Printf.sprintf "aggregated into few messages (%d)"
       (Bgp.Speaker.messages_sent spk_a))
    true
    (Bgp.Speaker.messages_sent spk_a < 20)

let test_speaker_update_packing_cost () =
  (* Update packing makes the Nth peer cheap: with five peers the packed
     sender finishes a 2000-route flood measurably earlier. *)
  let finish_time ~packing =
    let profile =
      { Bgp.Speaker.default_profile with Bgp.Speaker.update_packing = packing }
    in
    let eng = Engine.create () in
    let net = Network.create eng in
    let hub = Network.add_node net ~forwarding:true "hub" in
    let dut = Network.add_node net "dut" in
    let _, _, dut_addr = Network.connect net hub dut in
    Node.add_route dut (Addr.prefix_of_string "0.0.0.0/0")
      (List.nth (Node.ifaces dut) 0).Node.remote;
    let s_dut = Tcp.create_stack dut in
    let spk_dut =
      Bgp.Speaker.create ~profile ~stack:s_dut ~local_asn:64900
        ~router_id:dut_addr ()
    in
    for i = 0 to 4 do
      let n = Network.add_node net (Printf.sprintf "p%d" i) in
      let _, _, p_addr = Network.connect net hub n in
      Node.add_route n (Addr.prefix_of_string "0.0.0.0/0")
        (List.nth (Node.ifaces n) 0).Node.remote;
      let st = Tcp.create_stack n in
      let spk =
        Bgp.Speaker.create ~stack:st ~local_asn:(65000 + i)
          ~router_id:p_addr ()
      in
      ignore
        (Bgp.Speaker.add_peer spk
           {
             (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:dut_addr ())
             with
             Bgp.Speaker.remote_asn = Some 64900;
             passive = true;
           });
      Bgp.Speaker.start spk;
      ignore
        (Bgp.Speaker.add_peer spk_dut
           { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:p_addr ())
             with Bgp.Speaker.remote_asn = Some (65000 + i) })
    done;
    Bgp.Speaker.start spk_dut;
    Engine.run_for eng (Time.sec 10);
    let t0 = Engine.now eng in
    Bgp.Speaker.originate spk_dut ~vrf:"v0"
      (List.init 2000 (fun i ->
           pfx (Printf.sprintf "10.%d.%d.0/24" (i / 250) (i mod 250))));
    Engine.run_for eng (Time.sec 60);
    checki "all peers served" (5 * 2000) (Bgp.Speaker.updates_sent spk_dut);
    Time.diff (Bgp.Speaker.last_tx_handoff spk_dut) t0
  in
  let packed = finish_time ~packing:true in
  let unpacked = finish_time ~packing:false in
  checkb
    (Printf.sprintf "packed (%s) faster than unpacked (%s)"
       (Time.to_string packed) (Time.to_string unpacked))
    true (packed < unpacked)

let test_speaker_graceful_restart_retains_routes () =
  let eng, spk_a, spk_b, _peer_a, peer_b = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let rib_b = Bgp.Speaker.rib spk_b ~vrf:"v0" in
  checki "learned" 1 (Bgp.Rib.size rib_b);
  (* Kill the transport underneath b (simulate a's crash): b marks the
     route stale instead of withdrawing. *)
  (match Bgp.Speaker.peer_session peer_b with
  | Some s -> (
      match Bgp.Session.conn s with Some c -> Tcp.abort c | None -> ())
  | None -> Alcotest.fail "no session");
  Engine.run_for eng (Time.sec 2);
  checkb "peer session down" true
    (Bgp.Speaker.peer_state peer_b <> Bgp.Session.Established);
  checki "route retained (stale)" 1 (Bgp.Rib.size rib_b);
  checki "marked stale" 1
    (Bgp.Rib.stale_count rib_b ~key:(Bgp.Speaker.peer_source_key peer_b));
  (* After the restart time with no re-establishment... the peers
     actually reconnect automatically here, which refreshes the route via
     the full-table sync + End-of-RIB. *)
  Engine.run_for eng (Time.minutes 3);
  checki "route refreshed after reconnect" 1 (Bgp.Rib.size rib_b);
  checki "no stale left" 0
    (Bgp.Rib.stale_count rib_b ~key:(Bgp.Speaker.peer_source_key peer_b))

let test_speaker_no_export_community () =
  (* RFC 1997: NO_EXPORT routes stay inside the AS (never to eBGP
     peers); NO_ADVERTISE routes go nowhere. *)
  let eng, spk_a, spk_b, _, _ = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  let tagged comm =
    Bgp.Attrs.add_community
      (Bgp.Attrs.make ~next_hop:(ip "192.0.2.9") ())
      comm
  in
  Bgp.Speaker.originate spk_a ~vrf:"v0" ~attrs:(tagged Bgp.Attrs.no_export)
    [ pfx "203.0.113.0/24" ];
  Bgp.Speaker.originate spk_a ~vrf:"v0" ~attrs:(tagged Bgp.Attrs.no_advertise)
    [ pfx "198.51.100.0/24" ];
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "192.0.2.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let rib_b = Bgp.Speaker.rib spk_b ~vrf:"v0" in
  checki "only the untagged route crossed the eBGP boundary" 1
    (Bgp.Rib.size rib_b);
  checkb "plain route present" true
    (Bgp.Rib.best rib_b (pfx "192.0.2.0/24") <> None)

let test_speaker_no_export_allowed_on_ibgp () =
  (* NO_EXPORT still propagates over iBGP (same AS). *)
  let eng, spk_a, spk_b, _, _ = speaker_pair ~asn_a:65001 ~asn_b:65001 () in
  Engine.run_for eng (Time.sec 5);
  let attrs =
    Bgp.Attrs.add_community
      (Bgp.Attrs.make ~next_hop:(ip "192.0.2.9") ())
      Bgp.Attrs.no_export
  in
  Bgp.Speaker.originate spk_a ~vrf:"v0" ~attrs [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  checki "iBGP peer received the NO_EXPORT route" 1
    (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_request_refresh () =
  let eng, spk_a, spk_b, _, peer_b = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  let before = Bgp.Speaker.messages_sent spk_a in
  Bgp.Speaker.request_refresh spk_b peer_b;
  Engine.run_for eng (Time.sec 5);
  checkb "peer resent its table on refresh" true
    (Bgp.Speaker.messages_sent spk_a > before);
  checki "table still consistent" 1
    (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_connection_collision () =
  (* Both sides configured active: simultaneous opens collide and exactly
     one session must survive on each side (RFC 4271 §6.8). *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "ra" and b = Network.add_node net "rb" in
  let _, addr_a, addr_b = Network.connect net ~delay:(Time.us 100) a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let spk_a = Bgp.Speaker.create ~stack:sa ~local_asn:65001 ~router_id:addr_a () in
  let spk_b = Bgp.Speaker.create ~stack:sb ~local_asn:65002 ~router_id:addr_b () in
  let peer_a =
    Bgp.Speaker.add_peer spk_a
      { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_b ()) with
        Bgp.Speaker.remote_asn = Some 65002 }
  in
  let peer_b =
    Bgp.Speaker.add_peer spk_b
      { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:addr_a ()) with
        Bgp.Speaker.remote_asn = Some 65001 }
  in
  (* Start both actively at the same instant. *)
  Bgp.Speaker.start spk_a;
  Bgp.Speaker.start spk_b;
  Engine.run_for eng (Time.sec 20);
  checkb "a established" true
    (Bgp.Speaker.peer_state peer_a = Bgp.Session.Established);
  checkb "b established" true
    (Bgp.Speaker.peer_state peer_b = Bgp.Session.Established);
  (* And the session actually works. *)
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  checki "routes flow" 1 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

let test_speaker_route_refresh () =
  let eng, spk_a, spk_b, _, peer_b = speaker_pair () in
  Engine.run_for eng (Time.sec 5);
  Bgp.Speaker.originate spk_a ~vrf:"v0" [ pfx "203.0.113.0/24" ];
  Engine.run_for eng (Time.sec 5);
  (* b asks for a refresh; a resends its table (idempotent for b). *)
  (match Bgp.Speaker.peer_session peer_b with
  | Some s -> Bgp.Session.send s (Bgp.Msg.Route_refresh { afi = 1; safi = 1 })
  | None -> Alcotest.fail "no session");
  let before = Bgp.Speaker.messages_sent spk_a in
  Engine.run_for eng (Time.sec 5);
  checkb "a resent table" true (Bgp.Speaker.messages_sent spk_a > before);
  checki "b table unchanged" 1 (Bgp.Rib.size (Bgp.Speaker.rib spk_b ~vrf:"v0"))

(* --- Properties ---------------------------------------------------------- *)

let gen_prefix =
  QCheck.Gen.(
    map2
      (fun raw len -> Addr.prefix (Addr.of_int raw) len)
      (int_bound 0xFFFFFFF) (int_range 8 30))

let gen_attrs =
  QCheck.Gen.(
    let* path_len = int_range 0 6 in
    let* path = list_size (return path_len) (int_range 1 65000) in
    let* med = opt (int_bound 1000) in
    let* lp = opt (int_bound 1000) in
    let* ncomm = int_range 0 3 in
    let* comms = list_size (return ncomm) (pair (int_bound 65535) (int_bound 65535)) in
    let* nh = int_bound 0xFFFFFFF in
    let* origin = oneofl [ Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete ] in
    return
      (Bgp.Attrs.make ~origin
         ~as_path:(if path = [] then [] else [ Bgp.Attrs.Seq path ])
         ?med ?local_pref:lp ~communities:comms
         ~next_hop:(Addr.of_int nh) ()))

let gen_update =
  QCheck.Gen.(
    let* nw = int_range 0 10 in
    let* withdrawn = list_size (return nw) gen_prefix in
    let* nn = int_range 0 20 in
    let* nlri = list_size (return nn) gen_prefix in
    let* attrs = gen_attrs in
    return
      (Bgp.Msg.Update
         {
           withdrawn;
           attrs = (if nlri = [] then None else Some attrs);
           nlri;
         }))

let prop_update_roundtrip =
  QCheck.Test.make ~name:"update encode/decode roundtrip" ~count:300
    (QCheck.make gen_update)
    (fun msg ->
      match Bgp.Msg.decode (Bgp.Msg.encode msg) with
      | Ok m -> m = msg
      | Error _ -> false)

let prop_framer_arbitrary_chunking =
  QCheck.Test.make ~name:"framer independent of chunk boundaries" ~count:50
    QCheck.(pair (QCheck.make gen_update) (int_range 1 100))
    (fun (msg, chunk) ->
      let stream = String.concat "" (List.init 5 (fun _ -> Bgp.Msg.encode msg)) in
      let framer = Bgp.Msg.Framer.create () in
      let got = ref 0 in
      let pos = ref 0 in
      while !pos < String.length stream do
        let len = min chunk (String.length stream - !pos) in
        List.iter
          (function Ok _ -> incr got | Error _ -> ())
          (Bgp.Msg.Framer.push framer (String.sub stream !pos len));
        pos := !pos + len
      done;
      !got = 5)

let prop_decision_deterministic =
  (* The best path must not depend on insertion order. *)
  QCheck.Test.make ~name:"decision process is order-independent" ~count:100
    QCheck.(pair (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 2 6) gen_attrs)) int)
    (fun (attrs_list, seed) ->
      let p = pfx "203.0.113.0/24" in
      let mk_src i =
        src
          ~rid:(Printf.sprintf "9.9.9.%d" (i + 1))
          (Printf.sprintf "p%d" i)
          (Printf.sprintf "10.0.0.%d" (i + 1))
      in
      let paths = List.mapi (fun i a -> (mk_src i, a)) attrs_list in
      let best_of order =
        let rib = Bgp.Rib.create () in
        List.iter (fun (s, a) -> ignore (Bgp.Rib.update rib s p (Some a))) order;
        match Bgp.Rib.best rib p with
        | Some b -> b.Bgp.Rib.source.Bgp.Rib.key
        | None -> "none"
      in
      let shuffled =
        let arr = Array.of_list paths in
        let r = Rng.create seed in
        Rng.shuffle r arr;
        Array.to_list arr
      in
      String.equal (best_of paths) (best_of shuffled))

let prop_policy_rejects_are_stable =
  QCheck.Test.make ~name:"policy apply is deterministic" ~count:100
    (QCheck.make gen_attrs)
    (fun a ->
      let pol =
        Bgp.Policy.make
          [
            Bgp.Policy.accept_rule
              ~conds:[ Bgp.Policy.Match_as_in_path 42 ]
              [ Bgp.Policy.Set_local_pref 7 ];
          ]
      in
      let p = pfx "10.0.0.0/8" in
      Bgp.Policy.apply pol p a = Bgp.Policy.apply pol p a)

let () =
  Alcotest.run "bgp"
    [
      ( "attrs",
        [
          Alcotest.test_case "path length" `Quick test_attrs_path_length;
          Alcotest.test_case "prepend" `Quick test_attrs_prepend;
          Alcotest.test_case "communities" `Quick test_attrs_communities;
        ] );
      ( "codec",
        [
          Alcotest.test_case "keepalive" `Quick test_codec_keepalive;
          Alcotest.test_case "open" `Quick test_codec_open;
          Alcotest.test_case "open AS4" `Quick test_codec_open_as4;
          Alcotest.test_case "update" `Quick test_codec_update;
          Alcotest.test_case "update 2-byte ASN" `Quick test_codec_update_as2;
          Alcotest.test_case "notification" `Quick test_codec_notification;
          Alcotest.test_case "route refresh" `Quick test_codec_route_refresh;
          Alcotest.test_case "end of rib" `Quick test_codec_end_of_rib;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "max size" `Quick test_codec_max_size_enforced;
          Alcotest.test_case "framer reassembly" `Quick test_framer_reassembles;
          Alcotest.test_case "framer poisons" `Quick test_framer_poisons_on_error;
        ] );
      ( "rib",
        [
          Alcotest.test_case "install/withdraw" `Quick test_rib_install_withdraw;
          Alcotest.test_case "local pref" `Quick test_rib_local_pref_wins;
          Alcotest.test_case "shorter path" `Quick test_rib_shorter_path_wins;
          Alcotest.test_case "med same neighbor" `Quick
            test_rib_med_same_neighbor_only;
          Alcotest.test_case "ebgp over ibgp" `Quick test_rib_ebgp_over_ibgp;
          Alcotest.test_case "remove source" `Quick test_rib_remove_source;
          Alcotest.test_case "stale lifecycle" `Quick test_rib_stale_lifecycle;
        ] );
      ( "policy",
        [
          Alcotest.test_case "empty accepts" `Quick test_policy_empty_accepts;
          Alcotest.test_case "reject rule" `Quick test_policy_reject_rule;
          Alcotest.test_case "rewrite" `Quick test_policy_rewrite;
          Alcotest.test_case "first match wins" `Quick
            test_policy_first_match_wins;
          Alcotest.test_case "default reject" `Quick test_policy_default_reject;
        ] );
      ( "speaker",
        [
          Alcotest.test_case "establishes" `Quick test_speaker_establishes;
          Alcotest.test_case "route propagation" `Quick
            test_speaker_route_propagation;
          Alcotest.test_case "withdraw propagates" `Quick
            test_speaker_withdraw_propagates;
          Alcotest.test_case "full table on join" `Quick
            test_speaker_full_table_on_join;
          Alcotest.test_case "loop detection" `Quick test_speaker_loop_detection;
          Alcotest.test_case "keepalives maintain" `Quick
            test_speaker_keepalives_maintain_session;
          Alcotest.test_case "healthy session stays up" `Quick
            test_speaker_hold_timer_fires;
          Alcotest.test_case "ibgp rules" `Quick test_speaker_ibgp_rules;
          Alcotest.test_case "policy in" `Quick test_speaker_policy_in_rejects;
          Alcotest.test_case "three-AS transit" `Quick
            test_speaker_transit_three_as;
          Alcotest.test_case "nlri aggregation" `Quick
            test_speaker_nlri_aggregation;
          Alcotest.test_case "update packing cost" `Slow
            test_speaker_update_packing_cost;
          Alcotest.test_case "graceful restart" `Quick
            test_speaker_graceful_restart_retains_routes;
          Alcotest.test_case "route refresh" `Quick test_speaker_route_refresh;
          Alcotest.test_case "connection collision" `Quick
            test_speaker_connection_collision;
          Alcotest.test_case "NO_EXPORT / NO_ADVERTISE" `Quick
            test_speaker_no_export_community;
          Alcotest.test_case "NO_EXPORT over iBGP" `Quick
            test_speaker_no_export_allowed_on_ibgp;
          Alcotest.test_case "request refresh" `Quick
            test_speaker_request_refresh;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_update_roundtrip;
            prop_framer_arbitrary_chunking;
            prop_decision_deterministic;
            prop_policy_rejects_are_stable;
          ] );
    ]
