(* Smoke tests guarding the experiment drivers: each paper artifact's
   headline *shape* claim is asserted at reduced scale, so a regression
   that would silently corrupt the bench output fails the test suite
   instead. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let finite = List.for_all (fun v -> Float.is_finite v)

(* --- Figure 5(a) ---------------------------------------------------------- *)

let test_fig5a_shape () =
  let results =
    Tensor.Exp_fig5a.run ~packet_sizes:[ 100; 1000 ]
      ~delays_ms:[ 0.; 2.; 20.; 50. ]
      ~measure_span:(Sim.Time.ms 200) ()
  in
  checki "two series" 2 (List.length results);
  List.iter
    (fun (s : Tensor.Exp_fig5a.series) ->
      let tps = List.map (fun p -> p.Tensor.Exp_fig5a.throughput_bps) s.points in
      checkb "finite throughputs" true (finite tps);
      (* Monotone non-increasing in delay (5% tolerance for warmup). *)
      let rec mono = function
        | a :: (b :: _ as rest) -> b <= a *. 1.05 && mono rest
        | _ -> true
      in
      checkb "monotone in delay" true (mono tps))
    results;
  (* Larger packets yield higher zero-delay throughput... *)
  let base (s : Tensor.Exp_fig5a.series) =
    (List.hd s.points).Tensor.Exp_fig5a.throughput_bps
  in
  let s100 = List.nth results 0 and s1000 = List.nth results 1 in
  checkb "baseline grows with packet size" true (base s1000 > base s100);
  (* ...but a lower no-impact threshold. *)
  checkb "threshold shrinks with packet size" true
    (Tensor.Exp_fig5a.threshold_ms s1000 < Tensor.Exp_fig5a.threshold_ms s100)

(* --- Figure 5(b) ------------------------------------------------------------ *)

let test_fig5b_shape () =
  let rows = Tensor.Exp_fig5b.run ~counts:[ 1; 100; 10_000 ] () in
  List.iter
    (fun (r : Tensor.Exp_fig5b.row) ->
      checkb "write slower than read" true (r.write_ms > r.read_ms))
    rows;
  let r1 = List.nth rows 0 and r10k = List.nth rows 2 in
  checkb "single read < 0.5 ms" true (r1.Tensor.Exp_fig5b.read_ms < 0.5);
  checkb "single write ~1 ms" true
    (r1.Tensor.Exp_fig5b.write_ms > 0.5 && r1.Tensor.Exp_fig5b.write_ms < 1.5);
  checkb "10K writes ~500 ms" true
    (r10k.Tensor.Exp_fig5b.write_ms > 350. && r10k.Tensor.Exp_fig5b.write_ms < 650.)

(* --- Figure 6 ---------------------------------------------------------------- *)

let value_of (row : Tensor.Exp_fig6.sweep_row) impl =
  match List.find_opt (fun v -> v.Tensor.Exp_fig6.impl = impl) row.values with
  | Some v -> v.Tensor.Exp_fig6.seconds
  | None -> nan

let test_fig6a_ordering () =
  let rows = Tensor.Exp_fig6.run_receive ~counts:[ 20_000 ] () in
  let row = List.hd rows in
  let frr = value_of row "FRRouting"
  and gobgp = value_of row "GoBGP"
  and bird = value_of row "BIRD"
  and tensor = value_of row "TENSOR" in
  checkb "all finite" true (finite [ frr; gobgp; bird; tensor ]);
  checkb "FRR fastest" true (frr < gobgp && frr < bird && frr < tensor);
  checkb "TENSOR slowest" true (tensor > gobgp && tensor > bird);
  checkb "TENSOR overhead bounded (<2x FRR at 20K)" true (tensor < 2. *. frr)

let test_fig6b_tensor_close_to_frr () =
  let rows = Tensor.Exp_fig6.run_send ~counts:[ 20_000 ] () in
  let row = List.hd rows in
  let frr = value_of row "FRRouting" and tensor = value_of row "TENSOR" in
  checkb "TENSOR within 25% of FRR on the send path" true
    (tensor < 1.25 *. frr)

let test_fig6c_packing_factor () =
  let rows =
    Tensor.Exp_fig6.run_multi_peer ~peer_counts:[ 300 ] ~updates_per_peer:100 ()
  in
  let row = List.hd rows in
  let frr = value_of row "FRRouting" and gobgp = value_of row "GoBGP" in
  checkb
    (Printf.sprintf "GoBGP (%.3f) >= 3x FRR (%.3f) without packing" gobgp frr)
    true
    (gobgp > 3. *. frr)

let test_fig6d_linear () =
  let rows = Tensor.Exp_fig6.run_scale ~container_counts:[ 20; 40 ] () in
  let r20 = List.nth rows 0 and r40 = List.nth rows 1 in
  let ratio = r40.Tensor.Exp_fig6.memory_gb /. r20.Tensor.Exp_fig6.memory_gb in
  checkb "memory scales linearly" true (ratio > 1.9 && ratio < 2.1);
  let cratio = r40.Tensor.Exp_fig6.cpu_pct /. r20.Tensor.Exp_fig6.cpu_pct in
  checkb "cpu scales linearly" true (cratio > 1.9 && cratio < 2.1)

(* --- Table 1 ------------------------------------------------------------------ *)

let test_table1_app_failure_row () =
  let rows =
    Tensor.Exp_table1.run ~kinds:[ Orch.Controller.App_failure ] ()
  in
  let r = List.hd rows in
  checki "zero session drops" 0 r.Tensor.Exp_table1.peer_session_drops;
  checki "zero routes lost" 0 r.Tensor.Exp_table1.peer_routes_lost;
  checkb "detect ~10ms" true (r.Tensor.Exp_table1.detect_s < 0.1);
  checkb "total in the paper's ballpark (2.26)" true
    (r.Tensor.Exp_table1.total_s > 1.5 && r.Tensor.Exp_table1.total_s < 3.5);
  checkb "faster than the baseline" true
    (r.Tensor.Exp_table1.total_s < r.Tensor.Exp_table1.baseline_total_s)

(* --- Multi-AS parallelism ------------------------------------------------------- *)

let test_multias_speedup () =
  let r = Tensor.Exp_parallel.run ~ases:5 ~updates_per_as:5_000 () in
  checkb "finite" true
    (finite [ r.Tensor.Exp_parallel.monolithic_s; r.Tensor.Exp_parallel.containerized_s ]);
  checkb "containerized faster" true
    (r.Tensor.Exp_parallel.containerized_s < r.Tensor.Exp_parallel.monolithic_s)

(* --- Figure 7(a) ------------------------------------------------------------------ *)

let test_fig7a_statistics () =
  let s = Tensor.Exp_fig7.run_cdf ~links:6000 () in
  checkb "mean > 37 Gbps" true (s.Tensor.Exp_fig7.mean_bps > 37e9);
  checkb "median > 64 Mbps" true (s.Tensor.Exp_fig7.median_bps > 64e6);
  checkb "over 30% above 1 Gbps" true (s.Tensor.Exp_fig7.frac_above_1g > 0.30);
  (* CDF values are sorted in probability and value. *)
  let rec sorted = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        v1 <= v2 && p1 <= p2 && sorted rest
    | _ -> true
  in
  checkb "CDF monotone" true (sorted s.Tensor.Exp_fig7.cdf)

(* --- Table 2 ---------------------------------------------------------------------- *)

let test_table2_ratios () =
  let find n =
    List.find (fun (s : Tensor.Exp_table2.solution) -> s.name = n)
      Tensor.Exp_table2.rows
  in
  let nsr = find "NSR-enabled router" and tensor = find "TENSOR" in
  checkb "20x dev labor" true
    (match (nsr.dev_labor_man_months, tensor.dev_labor_man_months) with
    | Some a, Some b -> a / b = 20
    | _ -> false);
  checki "5x deployment" 5 (nsr.deployment_cost_usd / tensor.deployment_cost_usd);
  checki "11x maintenance" 11
    (nsr.maintenance_mh_per_month / tensor.maintenance_mh_per_month)

let () =
  Alcotest.run "experiments"
    [
      ( "fig5",
        [
          Alcotest.test_case "5a shape" `Slow test_fig5a_shape;
          Alcotest.test_case "5b shape" `Quick test_fig5b_shape;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "6a ordering" `Slow test_fig6a_ordering;
          Alcotest.test_case "6b tensor ~ frr" `Slow
            test_fig6b_tensor_close_to_frr;
          Alcotest.test_case "6c packing factor" `Slow test_fig6c_packing_factor;
          Alcotest.test_case "6d linear" `Quick test_fig6d_linear;
        ] );
      ( "table1",
        [ Alcotest.test_case "app failure row" `Quick test_table1_app_failure_row ] );
      ( "multias",
        [ Alcotest.test_case "parallel speedup" `Slow test_multias_speedup ] );
      ( "fig7",
        [ Alcotest.test_case "7a statistics" `Quick test_fig7a_statistics ] );
      ( "table2", [ Alcotest.test_case "ratios" `Quick test_table2_ratios ] );
    ]
