(* Model-based property tests: the optimized data structures (chunked
   Stream_buf, hashtable RIB with cached best paths) are checked against
   naive reference implementations over random operation sequences. *)

open Netsim

(* --- Stream_buf vs a plain string ---------------------------------------- *)

type sb_op =
  | Append of string
  | Drop_until of int (* relative offset into the stream *)
  | Read of int * int (* relative seq, len *)

let gen_sb_ops =
  QCheck.Gen.(
    list_size (int_range 1 60)
      (frequency
         [
           (4, map (fun s -> Append s) (string_size (int_range 1 200)));
           (2, map (fun n -> Drop_until n) (int_bound 2000));
           (4, map2 (fun a b -> Read (a, b)) (int_bound 2000) (int_range 1 300));
         ]))

let prop_stream_buf_matches_reference =
  QCheck.Test.make ~name:"Stream_buf behaves like a string" ~count:300
    (QCheck.make gen_sb_ops)
    (fun ops ->
      let base = 1000 in
      let sb = Tcp.Stream_buf.create base in
      (* Reference: the whole stream as one string plus a start marker. *)
      let stream = Buffer.create 256 in
      let start = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Append s ->
              Tcp.Stream_buf.append sb s;
              Buffer.add_string stream s;
              true
          | Drop_until rel ->
              let total = Buffer.length stream in
              let target = min rel total in
              if target > !start then start := target;
              Tcp.Stream_buf.drop_until sb (base + target);
              Tcp.Stream_buf.start_seq sb = base + !start
              && Tcp.Stream_buf.end_seq sb = base + total
          | Read (rel, len) ->
              let total = Buffer.length stream in
              let seq = !start + rel in
              if seq > total then true (* out of written range: skip *)
              else begin
                let expect_len = min len (total - seq) in
                let expected = Buffer.sub stream seq expect_len in
                String.equal expected
                  (Tcp.Stream_buf.read sb ~seq:(base + seq) ~len)
              end)
        ops)

let prop_stream_buf_chunks_tile =
  QCheck.Test.make ~name:"chunks_from tiles the retained range" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 20) (string_size (int_range 1 100)))
           (int_bound 500)))
    (fun (appends, drop) ->
      let sb = Tcp.Stream_buf.create 0 in
      List.iter (Tcp.Stream_buf.append sb) appends;
      Tcp.Stream_buf.drop_until sb drop;
      let start = Tcp.Stream_buf.start_seq sb in
      let chunks = Tcp.Stream_buf.chunks_from sb ~seq:start in
      let rec tiles pos = function
        | [] -> pos = Tcp.Stream_buf.end_seq sb
        | (seq, data) :: rest ->
            seq = pos && tiles (pos + String.length data) rest
      in
      Tcp.Stream_buf.is_empty sb || tiles start chunks)

(* --- RIB vs a reference assoc-map ----------------------------------------- *)

let mk_source i =
  {
    Bgp.Rib.key = Printf.sprintf "peer%d" i;
    peer_asn = 65000 + i;
    peer_addr = Addr.of_octets 10 0 0 (1 + i);
    router_id = Addr.of_octets 9 9 9 (1 + i);
    ebgp = i mod 2 = 0;
  }

let mk_prefix i = Addr.prefix (Addr.of_octets 100 0 (i land 0xFF) 0) 24

let mk_attrs seed =
  Bgp.Attrs.make
    ~as_path:[ Bgp.Attrs.Seq (List.init (1 + (seed mod 4)) (fun k -> 50_000 + seed + k)) ]
    ?local_pref:(if seed mod 3 = 0 then Some (100 + (seed mod 50)) else None)
    ~next_hop:(Addr.of_octets 10 0 0 (1 + (seed mod 5)))
    ()

type rib_op = Install of int * int * int | Withdraw of int * int | Remove_peer of int

let gen_rib_ops =
  QCheck.Gen.(
    list_size (int_range 1 80)
      (frequency
         [
           ( 6,
             map3
               (fun p x a -> Install (p, x, a))
               (int_bound 4) (int_bound 9) (int_bound 1000) );
           (3, map2 (fun p x -> Withdraw (p, x)) (int_bound 4) (int_bound 9));
           (1, map (fun p -> Remove_peer p) (int_bound 4));
         ]))

(* Reference: ((peer, prefix) -> attrs) association list. *)
let reference_apply model = function
  | Install (p, x, a) ->
      ((p, x), mk_attrs a) :: List.remove_assoc (p, x) model
  | Withdraw (p, x) -> List.remove_assoc (p, x) model
  | Remove_peer p -> List.filter (fun ((p', _), _) -> p' <> p) model

let prop_rib_matches_reference =
  QCheck.Test.make ~name:"RIB size/candidates match a reference map" ~count:300
    (QCheck.make gen_rib_ops)
    (fun ops ->
      let rib = Bgp.Rib.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          (match op with
          | Install (p, x, a) ->
              ignore
                (Bgp.Rib.update rib (mk_source p) (mk_prefix x)
                   (Some (mk_attrs a)))
          | Withdraw (p, x) ->
              ignore (Bgp.Rib.update rib (mk_source p) (mk_prefix x) None)
          | Remove_peer p ->
              ignore (Bgp.Rib.remove_source rib ~key:(mk_source p).Bgp.Rib.key));
          model := reference_apply !model op)
        ops;
      (* Same live prefixes... *)
      let model_prefixes =
        List.sort_uniq compare (List.map (fun ((_, x), _) -> x) !model)
      in
      Bgp.Rib.size rib = List.length model_prefixes
      && Bgp.Rib.path_count rib = List.length !model
      (* ...and per prefix, the same candidate set with the best at the
         head being genuinely maximal under [Rib.better]. *)
      && List.for_all
           (fun x ->
             let cands = Bgp.Rib.candidates rib (mk_prefix x) in
             let model_paths =
               List.filter (fun ((_, x'), _) -> x' = x) !model
             in
             List.length cands = List.length model_paths
             &&
             match (Bgp.Rib.best rib (mk_prefix x), cands) with
             | Some best, first :: rest ->
                 String.equal best.Bgp.Rib.source.Bgp.Rib.key
                   first.Bgp.Rib.source.Bgp.Rib.key
                 && List.for_all
                      (fun other -> not (Bgp.Rib.better other best))
                      rest
             | None, [] -> true
             | _ -> false)
           model_prefixes)

let prop_rib_best_is_maximal =
  QCheck.Test.make ~name:"best path is maximal under the decision order"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 2 8) (int_bound 1000)))
    (fun seeds ->
      let rib = Bgp.Rib.create () in
      let p = mk_prefix 0 in
      List.iteri
        (fun i a -> ignore (Bgp.Rib.update rib (mk_source i) p (Some (mk_attrs a))))
        seeds;
      match Bgp.Rib.best rib p with
      | Some best ->
          List.for_all
            (fun cand -> not (Bgp.Rib.better cand best))
            (Bgp.Rib.candidates rib p)
      | None -> false)

(* --- Framer vs whole-frame decoding ----------------------------------------- *)

let prop_framer_equals_batch_decode =
  QCheck.Test.make ~name:"framer over a chopped stream = direct decode"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_range 1 8) (int_bound 1000)) (int_range 1 64)))
    (fun (seeds, chop) ->
      let msgs =
        List.map
          (fun seed ->
            if seed mod 3 = 0 then Bgp.Msg.Keepalive
            else
              Bgp.Msg.Update
                {
                  withdrawn = [];
                  attrs = Some (mk_attrs seed);
                  nlri = [ mk_prefix seed ];
                })
          seeds
      in
      let stream = String.concat "" (List.map (fun m -> Bgp.Msg.encode m) msgs) in
      let framer = Bgp.Msg.Framer.create () in
      let got = ref [] in
      let pos = ref 0 in
      while !pos < String.length stream do
        let len = min chop (String.length stream - !pos) in
        List.iter
          (function
            | Ok (m, _) -> got := m :: !got
            | Error _ -> ())
          (Bgp.Msg.Framer.push framer (String.sub stream !pos len));
        pos := !pos + len
      done;
      List.rev !got = msgs)

let () =
  Alcotest.run "models"
    [
      ( "stream_buf",
        List.map QCheck_alcotest.to_alcotest
          [ prop_stream_buf_matches_reference; prop_stream_buf_chunks_tile ] );
      ( "rib",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rib_matches_reference; prop_rib_best_is_maximal ] );
      ( "framer",
        List.map QCheck_alcotest.to_alcotest [ prop_framer_equals_batch_decode ]
      );
    ]
