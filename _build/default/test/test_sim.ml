(* Tests for the discrete-event engine, RNG, time and metrics. *)

open Sim

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg

(* --- Time -------------------------------------------------------------- *)

let test_time_units () =
  checki "us" 1_000 (Time.us 1);
  checki "ms" 1_000_000 (Time.ms 1);
  checki "sec" 1_000_000_000 (Time.sec 1);
  checki "minutes" 60_000_000_000 (Time.minutes 1);
  checki "hours" 3_600_000_000_000 (Time.hours 1)

let test_time_conversions () =
  checki "of_sec_f" (Time.sec 2) (Time.of_sec_f 2.0);
  checki "of_ms_f rounds" 1_500_000 (Time.of_ms_f 1.5);
  checkf "to_sec_f" 1.5 (Time.to_sec_f (Time.of_sec_f 1.5));
  checkf "to_ms_f" 0.5 (Time.to_ms_f (Time.us 500))

let test_time_arith () =
  checki "add" (Time.ms 3) (Time.add (Time.ms 1) (Time.ms 2));
  checki "diff" (Time.ms 1) (Time.diff (Time.ms 3) (Time.ms 2));
  checki "diff negative" (-1_000_000) (Time.diff (Time.ms 2) (Time.ms 3))

let test_time_pp () =
  check Alcotest.string "s unit" "1.500s" (Time.to_string (Time.of_ms_f 1500.));
  check Alcotest.string "ms unit" "250.000ms" (Time.to_string (Time.ms 250));
  check Alcotest.string "ns unit" "999ns" (Time.to_string 999)

(* --- Engine ------------------------------------------------------------ *)

let test_engine_ordering () =
  let eng = Engine.create () in
  let order = ref [] in
  let tag x () = order := x :: !order in
  ignore (Engine.schedule_after eng (Time.ms 3) (tag "c"));
  ignore (Engine.schedule_after eng (Time.ms 1) (tag "a"));
  ignore (Engine.schedule_after eng (Time.ms 2) (tag "b"));
  Engine.run eng;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_engine_fifo_same_instant () =
  let eng = Engine.create () in
  let order = ref [] in
  for i = 1 to 100 do
    ignore
      (Engine.schedule_after eng (Time.ms 5) (fun () -> order := i :: !order))
  done;
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "fifo" (List.init 100 (fun i -> i + 1))
    (List.rev !order)

let test_engine_clock_advances () =
  let eng = Engine.create () in
  let seen = ref Time.zero in
  ignore
    (Engine.schedule_after eng (Time.ms 7) (fun () -> seen := Engine.now eng));
  Engine.run eng;
  checki "clock at event" (Time.ms 7) !seen;
  checki "clock after run" (Time.ms 7) (Engine.now eng)

let test_engine_nested_scheduling () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule_after eng (Time.ms 1) (fun () ->
         ignore
           (Engine.schedule_after eng (Time.ms 1) (fun () ->
                ignore
                  (Engine.schedule_after eng (Time.ms 1) (fun () -> incr hits))))));
  Engine.run eng;
  checki "nested fired" 1 !hits;
  checki "final clock" (Time.ms 3) (Engine.now eng)

let test_engine_cancel () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let h = Engine.schedule_after eng (Time.ms 1) (fun () -> incr hits) in
  checkb "pending before" true (Engine.is_pending h);
  Engine.cancel h;
  checkb "pending after" false (Engine.is_pending h);
  Engine.cancel h (* double cancel is a no-op *);
  Engine.run eng;
  checki "cancelled did not fire" 0 !hits;
  checki "live count" 0 (Engine.pending_events eng)

let test_engine_run_until () =
  let eng = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule_after eng (Time.ms 1) (fun () -> incr hits));
  ignore (Engine.schedule_after eng (Time.ms 10) (fun () -> incr hits));
  Engine.run_until eng (Time.ms 5);
  checki "only first fired" 1 !hits;
  checki "clock forced to limit" (Time.ms 5) (Engine.now eng);
  checki "one still queued" 1 (Engine.pending_events eng);
  Engine.run eng;
  checki "second fired" 2 !hits

let test_engine_past_rejected () =
  let eng = Engine.create () in
  ignore
    (Engine.schedule_after eng (Time.ms 5) (fun () ->
         Alcotest.check_raises "past" (Invalid_argument "x") (fun () ->
             try ignore (Engine.schedule_at eng (Time.ms 1) (fun () -> ()))
             with Invalid_argument _ -> raise (Invalid_argument "x"))));
  Engine.run eng

let test_engine_negative_span () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule_after: negative span") (fun () ->
      ignore (Engine.schedule_after eng (-1) (fun () -> ())))

let test_engine_periodic () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let timer = Engine.every eng (Time.ms 10) (fun () -> incr hits) in
  Engine.run_until eng (Time.ms 55);
  checki "five firings" 5 !hits;
  Engine.stop_timer timer;
  Engine.run_until eng (Time.ms 200);
  checki "stopped" 5 !hits

let test_engine_periodic_stop_inside () =
  let eng = Engine.create () in
  let hits = ref 0 in
  let timer_ref = ref None in
  let timer =
    Engine.every eng (Time.ms 10) (fun () ->
        incr hits;
        if !hits = 3 then Engine.stop_timer (Option.get !timer_ref))
  in
  timer_ref := Some timer;
  Engine.run_until eng (Time.sec 1);
  checki "self-stop" 3 !hits

let test_engine_processed_count () =
  let eng = Engine.create () in
  for _ = 1 to 10 do
    ignore (Engine.schedule_after eng (Time.ms 1) (fun () -> ()))
  done;
  Engine.run eng;
  checki "processed" 10 (Engine.processed_events eng)

(* --- Rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    checkb "inclusive range" true (v >= 5 && v <= 9)
  done

let test_rng_float_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    checkb "float range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independence () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  checkb "split differs" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r 3.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 3" true (mean > 2.8 && mean < 3.2)

let test_rng_lognormal_median () =
  let r = Rng.create 13 in
  let n = 20_001 in
  let vals = Array.init n (fun _ -> Rng.lognormal r ~mu:2.0 ~sigma:1.0) in
  Array.sort compare vals;
  let median = vals.(n / 2) in
  (* exp 2 ~ 7.389 *)
  checkb "median near e^2" true (median > 6.5 && median < 8.3)

let test_rng_shuffle_permutation () =
  let r = Rng.create 15 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 50 (fun i -> i))
    sorted

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_counter () =
  let c = Metrics.counter "c" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "count" 5 (Metrics.count c);
  Metrics.reset c;
  checki "reset" 0 (Metrics.count c)

let test_metrics_mean_stddev () =
  let s = Metrics.samples "s" in
  List.iter (Metrics.record s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checkf "mean" 5.0 (Metrics.mean s);
  checkf "stddev" 2.0 (Metrics.stddev s);
  checki "n" 8 (Metrics.n s)

let test_metrics_quantiles () =
  let s = Metrics.samples "s" in
  for i = 1 to 101 do
    Metrics.record s (float_of_int i)
  done;
  checkf "median" 51.0 (Metrics.median s);
  checkf "q0" 1.0 (Metrics.quantile s 0.0);
  checkf "q1" 101.0 (Metrics.quantile s 1.0);
  checkf "p90" 91.0 (Metrics.quantile s 0.9)

let test_metrics_quantile_interpolates () =
  let s = Metrics.samples "s" in
  Metrics.record s 0.0;
  Metrics.record s 10.0;
  checkf "interpolated" 2.5 (Metrics.quantile s 0.25)

let test_metrics_empty () =
  let s = Metrics.samples "s" in
  checkb "mean nan" true (Float.is_nan (Metrics.mean s));
  checkb "quantile nan" true (Float.is_nan (Metrics.quantile s 0.5));
  check (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "cdf empty" [] (Metrics.cdf s 10)

let test_metrics_cdf () =
  let s = Metrics.samples "s" in
  for i = 1 to 100 do
    Metrics.record s (float_of_int i)
  done;
  let cdf = Metrics.cdf s 4 in
  checki "points" 4 (List.length cdf);
  let _, last_p = List.nth cdf 3 in
  checkf "last prob" 1.0 last_p

let test_metrics_span_recorder () =
  let eng = Engine.create () in
  let r = Metrics.span_recorder "lat" in
  Metrics.span_start r eng 1;
  ignore
    (Engine.schedule_after eng (Time.ms 250) (fun () ->
         Metrics.span_stop r eng 1));
  Engine.run eng;
  let s = Metrics.span_samples r in
  checki "one span" 1 (Metrics.n s);
  checkf "duration" 0.25 (Metrics.mean s)

let test_metrics_span_unknown_stop () =
  let eng = Engine.create () in
  let r = Metrics.span_recorder "lat" in
  Metrics.span_stop r eng 99;
  checki "no samples" 0 (Metrics.n (Metrics.span_samples r))

(* --- Trace ------------------------------------------------------------- *)

let test_trace_basic () =
  let eng = Engine.create () in
  let tr = Trace.create () in
  ignore
    (Engine.schedule_after eng (Time.ms 1) (fun () ->
         Trace.emit tr eng "bgp" "session up"));
  ignore
    (Engine.schedule_after eng (Time.ms 2) (fun () ->
         Trace.emitf tr eng "bgp" "routes %d" 42));
  Engine.run eng;
  checki "two entries" 2 (List.length (Trace.entries tr));
  (match Trace.first tr ~category:"bgp" with
  | Some e ->
      checki "first at 1ms" (Time.ms 1) e.Trace.at;
      check Alcotest.string "message" "session up" e.Trace.message
  | None -> Alcotest.fail "missing first");
  match Trace.last tr ~category:"bgp" with
  | Some e -> check Alcotest.string "formatted" "routes 42" e.Trace.message
  | None -> Alcotest.fail "missing last"

let test_trace_disabled () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:false () in
  Trace.emit tr eng "x" "y";
  checki "nothing recorded" 0 (List.length (Trace.entries tr));
  Trace.enable tr true;
  Trace.emit tr eng "x" "y";
  checki "recorded after enable" 1 (List.length (Trace.entries tr))

(* --- Property tests ---------------------------------------------------- *)

let prop_heap_ordering =
  QCheck.Test.make ~name:"engine fires in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 1_000_000))
    (fun delays ->
      let eng = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule_after eng d (fun () ->
                 fired := Engine.now eng :: !fired)))
        delays;
      Engine.run eng;
      let times = List.rev !fired in
      List.length times = List.length delays
      && List.for_all2 ( = ) (List.sort compare times) times)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.0))
    (fun vals ->
      let s = Metrics.samples "q" in
      List.iter (Metrics.record s) vals;
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Metrics.quantile s a <= Metrics.quantile s b +. 1e-9 && ok rest
        | _ -> true
      in
      ok qs)

let prop_cancel_safety =
  QCheck.Test.make ~name:"random cancellations never fire and never leak"
    ~count:100
    QCheck.(list (pair (int_bound 100_000) bool))
    (fun specs ->
      let eng = Engine.create () in
      let fired = ref 0 in
      let expected = ref 0 in
      let handles =
        List.map
          (fun (d, cancel) ->
            if not cancel then incr expected;
            (Engine.schedule_after eng d (fun () -> incr fired), cancel))
          specs
      in
      List.iter (fun (h, cancel) -> if cancel then Engine.cancel h) handles;
      Engine.run eng;
      !fired = !expected && Engine.pending_events eng = 0)

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng ints hit every bucket" ~count:20
    QCheck.(int_range 2 20)
    (fun buckets ->
      let r = Rng.create 77 in
      let hits = Array.make buckets 0 in
      for _ = 1 to buckets * 200 do
        let v = Rng.int r buckets in
        hits.(v) <- hits.(v) + 1
      done;
      Array.for_all (fun h -> h > 0) hits)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo at same instant" `Quick
            test_engine_fifo_same_instant;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "negative span rejected" `Quick
            test_engine_negative_span;
          Alcotest.test_case "periodic timer" `Quick test_engine_periodic;
          Alcotest.test_case "periodic stop inside callback" `Quick
            test_engine_periodic_stop_inside;
          Alcotest.test_case "processed count" `Quick
            test_engine_processed_count;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
          Alcotest.test_case "exponential mean" `Quick
            test_rng_exponential_mean;
          Alcotest.test_case "lognormal median" `Quick
            test_rng_lognormal_median;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "mean and stddev" `Quick test_metrics_mean_stddev;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
          Alcotest.test_case "quantile interpolates" `Quick
            test_metrics_quantile_interpolates;
          Alcotest.test_case "empty samples" `Quick test_metrics_empty;
          Alcotest.test_case "cdf" `Quick test_metrics_cdf;
          Alcotest.test_case "span recorder" `Quick test_metrics_span_recorder;
          Alcotest.test_case "span unknown stop" `Quick
            test_metrics_span_unknown_stop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_ordering;
            prop_cancel_safety;
            prop_quantile_monotone;
            prop_rng_int_uniformish;
          ]
      );
    ]
