(* Direct tests of the BGP session FSM (below the speaker): handshake
   negotiation, validation failures, hold-timer behaviour, AS4 fallback,
   the replication hooks, and resume. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type rig = {
  eng : Engine.t;
  stack_a : Tcp.stack;
  stack_b : Tcp.stack;
  addr_a : Addr.t;
  addr_b : Addr.t;
}

let make_rig () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let _, addr_a, addr_b = Network.connect net ~delay:(Time.us 200) a b in
  {
    eng;
    stack_a = Tcp.create_stack a;
    stack_b = Tcp.create_stack b;
    addr_a;
    addr_b;
  }

(* A passive responder session on stack_b accepting from [addr]. *)
let passive_responder ?(local_asn = 65002) ?(hold_time = 90)
    ?(graceful_restart = Some 120) r ~events () =
  Tcp.listen r.stack_b ~port:179 (fun conn ->
      let cfg =
        {
          (Bgp.Session.default_config ~local_asn ~router_id:r.addr_b
             ~peer_addr:r.addr_a ())
          with
          Bgp.Session.hold_time;
          graceful_restart;
        }
      in
      ignore
        (Bgp.Session.accept_passive r.stack_b cfg ~conn ~cb:(fun _ ev ->
             events := ev :: !events)))

let test_handshake_negotiates () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.hold_time = 30 (* lower than B's 90: min wins *);
    }
  in
  let events_a = ref [] in
  let sa =
    Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ ev ->
        events_a := ev :: !events_a)
  in
  Engine.run_for r.eng (Time.sec 3);
  checkb "established" true (Bgp.Session.state sa = Bgp.Session.Established);
  (match Bgp.Session.negotiated sa with
  | Some n ->
      checki "hold = min(30,90)" 30 n.Bgp.Session.hold_time;
      checkb "peer GR seen" true n.Bgp.Session.peer_supports_gr;
      checki "peer GR time" 120 n.Bgp.Session.peer_gr_restart_time;
      checkb "as4 negotiated" true n.Bgp.Session.as4_in_use;
      checki "peer asn" 65002 n.Bgp.Session.peer_open.Bgp.Msg.asn
  | None -> Alcotest.fail "no negotiation");
  checkb "established event on both sides" true
    (List.exists
       (function Bgp.Session.Session_established _ -> true | _ -> false)
       !events_a
    && List.exists
         (function Bgp.Session.Session_established _ -> true | _ -> false)
         !events_b)

let test_wrong_asn_rejected () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.peer_asn = Some 64999 (* expecting the wrong AS *);
    }
  in
  let down = ref None in
  let sa =
    Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ ev ->
        match ev with
        | Bgp.Session.Session_went_down reason -> down := Some reason
        | _ -> ())
  in
  Engine.run_for r.eng (Time.sec 3);
  checkb "session down" true (Bgp.Session.state sa = Bgp.Session.Down);
  match !down with
  | Some (Bgp.Session.Notification_sent n) ->
      checki "OPEN error" 2 n.Bgp.Msg.code;
      checki "bad peer AS subcode" 2 n.Bgp.Msg.subcode
  | _ -> Alcotest.fail "expected a sent notification"

let test_as4_disabled_falls_back () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.as4 = false;
    }
  in
  let sa = Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ _ -> ()) in
  Engine.run_for r.eng (Time.sec 3);
  match Bgp.Session.negotiated sa with
  | Some n -> checkb "as4 off when we disable it" false n.Bgp.Session.as4_in_use
  | None -> Alcotest.fail "not negotiated"

let test_hold_timer_kills_quiet_session () =
  (* Freeze B's stack after establishment: A stops hearing keepalives and
     must notify+drop when its (negotiated 9 s) hold timer fires. *)
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~hold_time:9 ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.hold_time = 9;
    }
  in
  let down = ref None in
  let sa =
    Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ ev ->
        match ev with
        | Bgp.Session.Session_went_down reason ->
            down := Some (reason, Engine.now r.eng)
        | _ -> ())
  in
  Engine.run_for r.eng (Time.sec 2);
  checkb "established first" true (Bgp.Session.state sa = Bgp.Session.Established);
  Tcp.freeze_stack r.stack_b;
  let frozen_at = Engine.now r.eng in
  Engine.run_for r.eng (Time.sec 30);
  match !down with
  | Some (Bgp.Session.Notification_sent n, at) ->
      checki "hold expired code" 4 n.Bgp.Msg.code;
      let waited = Time.to_sec_f (Time.diff at frozen_at) in
      checkb
        (Printf.sprintf "fired within the hold window (%.1fs)" waited)
        true
        (waited >= 3.0 && waited <= 10.0)
  | _ -> Alcotest.fail "hold timer did not fire"

let test_keepalives_flow_without_updates () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~hold_time:9 ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.hold_time = 9;
    }
  in
  let sa = Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ _ -> ()) in
  Engine.run_for r.eng (Time.minutes 2);
  checkb "still up after 2 minutes of silence" true
    (Bgp.Session.state sa = Bgp.Session.Established);
  checkb "many keepalives" true (Bgp.Session.keepalives_in sa > 20)

let test_pre_send_hook_covers_keepalives () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~hold_time:9 ~events:events_b ();
  let cfg_a =
    {
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      with
      Bgp.Session.hold_time = 9;
    }
  in
  let sa = Bgp.Session.start_active r.stack_a cfg_a ~cb:(fun _ _ -> ()) in
  let hooked = ref 0 in
  Bgp.Session.set_pre_send sa (fun msg _raw k ->
      (match msg with Bgp.Msg.Keepalive -> incr hooked | _ -> ());
      k ());
  Engine.run_for r.eng (Time.sec 30);
  checkb "keepalives pass through the replication hook" true (!hooked >= 5)

let test_on_message_sees_all_types () =
  let r = make_rig () in
  let events_b = ref [] in
  passive_responder r ~events:events_b ();
  let sa =
    Bgp.Session.start_active r.stack_a
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      ~cb:(fun _ _ -> ())
  in
  let seen = ref [] in
  Bgp.Session.set_on_message sa (fun msg ~size ->
      checkb "size positive" true (size >= 19);
      seen :=
        (match msg with
        | Bgp.Msg.Open _ -> "open"
        | Bgp.Msg.Keepalive -> "keepalive"
        | Bgp.Msg.Update _ -> "update"
        | Bgp.Msg.Notification _ -> "notification"
        | Bgp.Msg.Route_refresh _ -> "rr")
        :: !seen);
  Engine.run_for r.eng (Time.sec 3);
  checkb "saw OPEN" true (List.mem "open" !seen);
  checkb "saw KEEPALIVE" true (List.mem "keepalive" !seen)

let test_parsed_bytes_tracks_stream () =
  let r = make_rig () in
  let sb = ref None in
  Tcp.listen r.stack_b ~port:179 (fun conn ->
      let cfg =
        Bgp.Session.default_config ~local_asn:65002 ~router_id:r.addr_b
          ~peer_addr:r.addr_a ()
      in
      sb :=
        Some (Bgp.Session.accept_passive r.stack_b cfg ~conn ~cb:(fun _ _ -> ())));
  let sa =
    Bgp.Session.start_active r.stack_a
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      ~cb:(fun _ _ -> ())
  in
  Engine.run_for r.eng (Time.sec 3);
  let b = Option.get !sb in
  (* parsed_bytes at B = everything A wrote = A's conn delivered bytes. *)
  (match Bgp.Session.conn b with
  | Some c ->
      checki "parsed = delivered (message aligned)"
        (Tcp.delivered_bytes c)
        (Bgp.Session.parsed_bytes b)
  | None -> Alcotest.fail "no conn");
  ignore sa

let test_stop_sends_cease () =
  let r = make_rig () in
  let down_b = ref None in
  Tcp.listen r.stack_b ~port:179 (fun conn ->
      let cfg =
        Bgp.Session.default_config ~local_asn:65002 ~router_id:r.addr_b
          ~peer_addr:r.addr_a ()
      in
      ignore
        (Bgp.Session.accept_passive r.stack_b cfg ~conn ~cb:(fun _ ev ->
             match ev with
             | Bgp.Session.Session_went_down reason -> down_b := Some reason
             | _ -> ())));
  let sa =
    Bgp.Session.start_active r.stack_a
      (Bgp.Session.default_config ~local_asn:65001 ~router_id:r.addr_a
         ~peer_addr:r.addr_b ())
      ~cb:(fun _ _ -> ())
  in
  Engine.run_for r.eng (Time.sec 2);
  Bgp.Session.stop sa;
  Engine.run_for r.eng (Time.sec 2);
  match !down_b with
  | Some (Bgp.Session.Notification_received n) ->
      checki "cease" 6 n.Bgp.Msg.code
  | _ -> Alcotest.fail "peer did not receive Cease"

let () =
  Alcotest.run "session"
    [
      ( "handshake",
        [
          Alcotest.test_case "negotiates" `Quick test_handshake_negotiates;
          Alcotest.test_case "wrong ASN rejected" `Quick test_wrong_asn_rejected;
          Alcotest.test_case "as4 fallback" `Quick test_as4_disabled_falls_back;
        ] );
      ( "timers",
        [
          Alcotest.test_case "hold timer kills quiet session" `Quick
            test_hold_timer_kills_quiet_session;
          Alcotest.test_case "keepalives maintain" `Quick
            test_keepalives_flow_without_updates;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "pre_send covers keepalives" `Quick
            test_pre_send_hook_covers_keepalives;
          Alcotest.test_case "on_message sees all types" `Quick
            test_on_message_sees_all_types;
          Alcotest.test_case "parsed_bytes tracks stream" `Quick
            test_parsed_bytes_tracks_stream;
        ] );
      ( "teardown",
        [ Alcotest.test_case "stop sends Cease" `Quick test_stop_sends_cease ] );
    ]
