(* Whole-system stress: several TENSOR services under a randomized
   failure schedule (application crashes, container deaths, host network
   partitions, planned migrations) over tens of simulated minutes. The
   invariant is the paper's headline: no peering AS ever observes a
   session drop, a stale route, or a lost update. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type svc_rig = {
  svc : Tensor.Deploy.service;
  peer : Tensor.Deploy.peer_as;
  handle : Bgp.Speaker.peer;
  mutable announced : int;
  base : int;
}

let build_world ~services ~seed =
  let dep = Tensor.Deploy.build ~seed ~hosts:4 () in
  let rigs =
    List.init services (fun i ->
        let asn = 65100 + i in
        let peer =
          Tensor.Deploy.add_peer_as dep ~asn (Printf.sprintf "as%d" asn)
        in
        let vip = Addr.of_octets 203 0 113 (100 + i) in
        let handle =
          Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900
        in
        let svc =
          Tensor.Deploy.deploy_service dep
            ~primary_host:(i mod 3)
            ~backup_host:((i + 1) mod 3)
            ~backup_mode:(if i mod 2 = 0 then `Preheat else `Cold)
            ~id:(Printf.sprintf "s%d" i) ~local_asn:64900
            [
              Tensor.App.vrf_spec ~vrf:"v0" ~vip
                ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:asn ();
            ]
        in
        { svc; peer; handle; announced = 0; base = i * 200_000 })
  in
  List.iter
    (fun r -> assert (Tensor.Deploy.wait_established dep r.svc ()))
    rigs;
  (dep, rigs)

let announce_more dep r n =
  Bgp.Speaker.originate r.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct_from ~base:(r.base + r.announced) n);
  r.announced <- r.announced + n;
  ignore dep

let run_stress ~seed () =
  let services = 6 in
  let dep, rigs = build_world ~services ~seed in
  let eng = dep.Tensor.Deploy.eng in
  let drops = ref 0 in
  List.iter
    (fun r -> Bgp.Speaker.on_peer_down r.handle (fun _ -> incr drops))
    rigs;
  (* Initial tables. *)
  List.iter (fun r -> announce_more dep r 500) rigs;
  Engine.run_for eng (Time.sec 15);
  (* Random failure schedule: one event per minute for 12 minutes, with
     fresh announcements interleaved so there is always state in motion. *)
  let rng = Rng.create (seed * 7919) in
  for _round = 1 to 12 do
    let r = List.nth rigs (Rng.int rng services) in
    announce_more dep r (50 + Rng.int rng 400);
    Engine.run_for eng (Time.ms (100 + Rng.int rng 500));
    (match Rng.int rng 4 with
    | 0 -> Tensor.Deploy.inject_app_failure dep r.svc
    | 1 -> Tensor.Deploy.inject_container_failure dep r.svc
    | 2 ->
        (* Transient jitter: must NOT trigger anything at all. *)
        let hname =
          Orch.Container.host_name (Tensor.Deploy.service_container r.svc)
        in
        Array.iter
          (fun h ->
            if Orch.Host.name h = hname then begin
              Orch.Host.network_fail h;
              ignore
                (Engine.schedule_after eng (Time.ms 1200) (fun () ->
                     Orch.Host.network_recover h))
            end)
          dep.Tensor.Deploy.hosts
    | _ -> Tensor.Deploy.planned_migration dep r.svc);
    Engine.run_for eng (Time.sec 60)
  done;
  Engine.run_for eng (Time.minutes 2);
  (* Invariants. *)
  checki "zero session drops across every peer and episode" 0 !drops;
  List.iter
    (fun r ->
      checki
        (Printf.sprintf "service %s holds every announced route"
           (Orch.Container.id (Tensor.Deploy.service_container r.svc)))
        r.announced
        (Tensor.Deploy.service_routes r.svc ~vrf:"v0");
      checkb "session healthy" true
        (Tensor.App.session_established (Tensor.Deploy.service_app r.svc)
           ~vrf:"v0");
      checki "peer has no stale paths" 0
        (Bgp.Rib.stale_count
           (Bgp.Speaker.rib r.peer.Tensor.Deploy.pa_speaker ~vrf:"v0")
           ~key:(Bgp.Speaker.peer_source_key r.handle)))
    rigs

let () =
  Alcotest.run "stress"
    [
      ( "random-failure-schedule",
        [
          Alcotest.test_case "seed 1" `Slow (run_stress ~seed:1);
          Alcotest.test_case "seed 2" `Slow (run_stress ~seed:2);
          Alcotest.test_case "seed 3" `Slow (run_stress ~seed:3);
        ] );
    ]
