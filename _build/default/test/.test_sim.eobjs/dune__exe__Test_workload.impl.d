test/test_workload.ml: Alcotest Bgp Hashtbl List Netsim Printf QCheck QCheck_alcotest Rng Sim Time Workload
