test/test_netsim.ml: Addr Alcotest Engine Link List Netsim Network Node Packet QCheck QCheck_alcotest Rpc Sim Time
