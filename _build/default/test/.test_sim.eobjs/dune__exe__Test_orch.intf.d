test/test_orch.mli:
