test/test_tensor.ml: Addr Alcotest Bgp Engine Link List Netsim Network Orch Packet Printf QCheck QCheck_alcotest Sim Store String Tcp Tensor Time Trace Workload
