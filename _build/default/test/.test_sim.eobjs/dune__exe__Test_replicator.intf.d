test/test_replicator.mli:
