test/test_recovery_edge.ml: Addr Alcotest Bgp Engine Format Link List Netsim Network Option Printf Sim Store String Tcp Tensor Time Trace Workload
