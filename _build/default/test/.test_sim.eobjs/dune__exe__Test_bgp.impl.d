test/test_bgp.ml: Addr Alcotest Array Bgp Engine List Netsim Network Node Printf QCheck QCheck_alcotest Rng Sim String Tcp Time
