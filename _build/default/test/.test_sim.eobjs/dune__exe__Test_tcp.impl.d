test/test_tcp.ml: Addr Alcotest Buffer Char Engine Gen Link List Netfilter Netsim Network Node Option Packet QCheck QCheck_alcotest Sim String Tcp Time
