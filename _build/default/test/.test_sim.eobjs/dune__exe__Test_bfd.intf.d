test/test_bfd.mli:
