test/test_netfilter.mli:
