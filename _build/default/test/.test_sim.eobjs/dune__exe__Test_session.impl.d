test/test_session.ml: Addr Alcotest Bgp Engine List Netsim Network Option Printf Sim Tcp Time
