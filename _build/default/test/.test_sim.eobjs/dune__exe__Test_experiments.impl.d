test/test_experiments.ml: Alcotest Float List Orch Printf Sim Tensor
