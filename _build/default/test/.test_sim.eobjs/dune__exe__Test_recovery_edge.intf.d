test/test_recovery_edge.mli:
