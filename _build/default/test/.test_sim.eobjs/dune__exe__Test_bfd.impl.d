test/test_bfd.ml: Addr Alcotest Bfd Engine Link List Netsim Network Node Printf QCheck QCheck_alcotest Sim Time
