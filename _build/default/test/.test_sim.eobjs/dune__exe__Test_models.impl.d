test/test_models.ml: Addr Alcotest Bgp Buffer List Netsim Printf QCheck QCheck_alcotest String Tcp
