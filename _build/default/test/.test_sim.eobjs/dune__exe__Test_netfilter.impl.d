test/test_netfilter.ml: Addr Alcotest Engine List Netfilter Netsim Packet QCheck QCheck_alcotest Sim Time
