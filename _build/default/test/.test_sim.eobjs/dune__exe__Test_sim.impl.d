test/test_sim.ml: Alcotest Array Engine Float Gen List Metrics Option QCheck QCheck_alcotest Rng Sim Time Trace
