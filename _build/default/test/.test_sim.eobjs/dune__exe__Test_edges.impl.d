test/test_edges.ml: Addr Alcotest Bgp Engine Link List Netsim Network Node Orch Printf Sim Store String Tcp Tensor Time Workload
