test/test_stress.ml: Addr Alcotest Array Bgp Engine List Netsim Orch Printf Rng Sim Tensor Time Workload
