test/test_store.ml: Addr Alcotest Engine Gen List Netsim Network Node Printf QCheck QCheck_alcotest Sim Store String Time
