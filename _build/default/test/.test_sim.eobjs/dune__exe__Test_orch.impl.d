test/test_orch.ml: Addr Agent Alcotest Container Controller Engine Host List Netsim Network Node Orch Printf Rpc Sim Time
