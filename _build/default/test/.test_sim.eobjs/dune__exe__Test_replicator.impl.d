test/test_replicator.ml: Addr Alcotest Bgp Engine Netfilter Netsim Network Packet Sim Store String Tcp Tensor Time
