(* Tests for the workload generators: the Figure 7(a) traffic mixture,
   prefix generation, and the Figure 7(b) deployment model. *)

open Sim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Traffic (Fig 7a) ---------------------------------------------------- *)

let population () =
  Workload.Traffic.sample_population (Rng.create 42) Workload.Traffic.default
    10_000

let test_traffic_mean () =
  let pop = population () in
  let mean = Workload.Traffic.mean_bps pop in
  checkb
    (Printf.sprintf "mean %.1f Gbps > 37 Gbps" (mean /. 1e9))
    true (mean > 37e9)

let test_traffic_median () =
  let pop = population () in
  let median = Workload.Traffic.median_bps pop in
  checkb
    (Printf.sprintf "median %.1f Mbps in [64, 200] Mbps" (median /. 1e6))
    true
    (median > 64e6 && median < 200e6)

let test_traffic_heavy_fraction () =
  let pop = population () in
  let frac = Workload.Traffic.fraction_above pop 1e9 in
  checkb
    (Printf.sprintf "%.1f%% above 1 Gbps (paper > 30%%)" (100. *. frac))
    true
    (frac > 0.28 && frac < 0.40)

let test_traffic_deterministic_by_seed () =
  let a = Workload.Traffic.sample_population (Rng.create 7) Workload.Traffic.default 100 in
  let b = Workload.Traffic.sample_population (Rng.create 7) Workload.Traffic.default 100 in
  checkb "same seed, same population" true (a = b)

let test_bytes_impacted () =
  (* 37 Gbps for one minute = 277.5 GB — the paper's headline number. *)
  let gb =
    Workload.Traffic.bytes_impacted ~avg_bps:37e9 ~downtime:(Time.minutes 1)
    /. 1e9
  in
  checkb (Printf.sprintf "%.0f GB ~ 277 GB" gb) true (gb > 276. && gb < 279.)

(* --- Prefixes ------------------------------------------------------------- *)

let test_prefixes_distinct () =
  let n = 50_000 in
  let pfxs = Workload.Prefixes.distinct n in
  checki "count" n (List.length pfxs);
  let tbl = Hashtbl.create n in
  List.iter
    (fun p -> Hashtbl.replace tbl (Netsim.Addr.prefix_to_string p) ())
    pfxs;
  checki "all distinct" n (Hashtbl.length tbl)

let test_prefixes_disjoint_bases () =
  let a = Workload.Prefixes.distinct 1000 in
  let b = Workload.Prefixes.distinct_from ~base:1000 1000 in
  let tbl = Hashtbl.create 2048 in
  List.iter (fun p -> Hashtbl.replace tbl (Netsim.Addr.prefix_to_string p) ()) a;
  checkb "disjoint" true
    (List.for_all
       (fun p -> not (Hashtbl.mem tbl (Netsim.Addr.prefix_to_string p)))
       b)

let test_attr_groups_cover_all_groups () =
  let rng = Rng.create 1 in
  let routes =
    Workload.Prefixes.attr_groups rng ~groups:10
      ~next_hop:(Netsim.Addr.of_string "1.1.1.1")
      1000
  in
  checki "count" 1000 (List.length routes);
  let tbl = Hashtbl.create 16 in
  List.iter (fun (_, a) -> Hashtbl.replace tbl (Bgp.Attrs.hash a) ()) routes;
  checki "every group used" 10 (Hashtbl.length tbl)

let test_attr_groups_avoid_experiment_asns () =
  (* Loop detection must never discard a group: generated paths avoid the
     64900/65xxx ranges the experiments use locally. *)
  let rng = Rng.create 1 in
  let routes =
    Workload.Prefixes.attr_groups rng ~groups:1000
      ~next_hop:(Netsim.Addr.of_string "1.1.1.1")
      1000
  in
  checkb "no local-range ASN in any path" true
    (List.for_all
       (fun (_, a) ->
         not
           (List.exists
              (fun asn -> Bgp.Attrs.path_contains a asn)
              [ 64900; 65000; 65010; 65011; 65012 ]))
       routes)

(* --- Deployment (Fig 7b) --------------------------------------------------- *)

let test_deployment_span () =
  let months = Workload.Deployment.series Workload.Deployment.default in
  checki "36 months" 36 (List.length months);
  Alcotest.(check string)
    "starts 2020-01" "2020-01"
    (Workload.Deployment.label (List.hd months));
  Alcotest.(check string)
    "ends 2022-12" "2022-12"
    (Workload.Deployment.label (List.nth months 35))

let test_deployment_adoption_curve () =
  let months = Workload.Deployment.series Workload.Deployment.default in
  let get y m =
    List.find
      (fun (x : Workload.Deployment.month) ->
        x.Workload.Deployment.year = y && x.Workload.Deployment.month = m)
      months
  in
  checki "zero before the pilot" 0 (get 2020 5).Workload.Deployment.ases_on_tensor;
  checki "pilot of 100" 100 (get 2020 8).Workload.Deployment.ases_on_tensor;
  checki "full by end of 2021" 6000 (get 2021 12).Workload.Deployment.ases_on_tensor;
  checki "full through 2022" 6000 (get 2022 6).Workload.Deployment.ases_on_tensor

let test_deployment_impact_declines_to_zero () =
  let months = Workload.Deployment.series Workload.Deployment.default in
  let impacted y m =
    (List.find
       (fun (x : Workload.Deployment.month) ->
         x.Workload.Deployment.year = y && x.Workload.Deployment.month = m)
       months)
      .Workload.Deployment.impacted_tb
  in
  checkb "~34 TB pre-deployment" true
    (impacted 2020 3 > 30.0 && impacted 2020 3 < 38.0);
  checkb "declining during the ramp" true (impacted 2021 9 < impacted 2020 3);
  checkb "zero at full coverage" true (impacted 2022 6 < 0.01)

let test_deployment_update_frequency_triples () =
  let months = Workload.Deployment.series Workload.Deployment.default in
  let last = List.nth months 35 in
  checkb "frequency ~3x by the end" true
    (last.Workload.Deployment.update_frequency >= 2.8)

(* --- Properties -------------------------------------------------------------- *)

let prop_sample_positive =
  QCheck.Test.make ~name:"traffic samples are positive" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      Workload.Traffic.sample_link_bps rng Workload.Traffic.default > 0.0)

let prop_prefix_index_injective =
  QCheck.Test.make ~name:"prefix generator is injective" ~count:200
    QCheck.(pair (int_bound 3_000_000) (int_bound 3_000_000))
    (fun (i, j) ->
      i = j
      || not
           (Netsim.Addr.equal_prefix
              (List.hd (Workload.Prefixes.distinct_from ~base:i 1))
              (List.hd (Workload.Prefixes.distinct_from ~base:j 1))))

let () =
  Alcotest.run "workload"
    [
      ( "traffic",
        [
          Alcotest.test_case "mean above 37 Gbps" `Quick test_traffic_mean;
          Alcotest.test_case "median near 64 Mbps" `Quick test_traffic_median;
          Alcotest.test_case "heavy fraction" `Quick test_traffic_heavy_fraction;
          Alcotest.test_case "deterministic by seed" `Quick
            test_traffic_deterministic_by_seed;
          Alcotest.test_case "277 GB per downtime-minute" `Quick
            test_bytes_impacted;
        ] );
      ( "prefixes",
        [
          Alcotest.test_case "distinct" `Quick test_prefixes_distinct;
          Alcotest.test_case "disjoint bases" `Quick test_prefixes_disjoint_bases;
          Alcotest.test_case "groups covered" `Quick
            test_attr_groups_cover_all_groups;
          Alcotest.test_case "avoids experiment ASNs" `Quick
            test_attr_groups_avoid_experiment_asns;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "36-month span" `Quick test_deployment_span;
          Alcotest.test_case "adoption curve" `Quick
            test_deployment_adoption_curve;
          Alcotest.test_case "impact declines to zero" `Quick
            test_deployment_impact_declines_to_zero;
          Alcotest.test_case "update frequency triples" `Quick
            test_deployment_update_frequency_triples;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sample_positive; prop_prefix_index_injective ] );
    ]
