(* Tests for BFD: bring-up, detection timing (100 ms x 3), VRF mapping,
   and the agent relay that masks failures from the remote peer. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let pair () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let link, addr_a, addr_b = Network.connect net ~delay:(Time.us 200) a b in
  (eng, net, a, b, link, addr_a, addr_b)

let test_bringup () =
  let eng, _, a, b, _, addr_a, addr_b = pair () in
  let sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  let sb = Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a () in
  Engine.run_for eng (Time.sec 1);
  checkb "a up" true (Bfd.session_state sa = Bfd.Up);
  checkb "b up" true (Bfd.session_state sb = Bfd.Up);
  checkb "discriminators learned" true
    (Bfd.your_disc sa = Bfd.my_disc sb && Bfd.your_disc sb = Bfd.my_disc sa)

let test_detection_timing () =
  (* 100 ms x 3: failure detected within ~300-400 ms. *)
  let eng, _, a, b, link, addr_a, addr_b = pair () in
  let sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  ignore (Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a ());
  Engine.run_for eng (Time.sec 1);
  let down_at = ref None in
  Bfd.on_state_change sa (fun ~old:_ st ->
      if st = Bfd.Down && !down_at = None then down_at := Some (Engine.now eng));
  let fail_at = Engine.now eng in
  Link.set_up link false;
  Engine.run_for eng (Time.sec 2);
  match !down_at with
  | Some t ->
      let detect = Time.diff t fail_at in
      checkb
        (Printf.sprintf "detected in %.0f ms" (Time.to_ms_f detect))
        true
        (detect >= Time.ms 200 && detect <= Time.ms 500)
  | None -> Alcotest.fail "failure not detected"

let test_recovers_after_flap () =
  let eng, _, a, b, link, addr_a, addr_b = pair () in
  let sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  let sb = Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a () in
  Engine.run_for eng (Time.sec 1);
  Link.fail_for link (Time.sec 1);
  Engine.run_for eng (Time.ms 600);
  checkb "down during outage" true (Bfd.session_state sa = Bfd.Down);
  Engine.run_for eng (Time.sec 3);
  checkb "a re-up" true (Bfd.session_state sa = Bfd.Up);
  checkb "b re-up" true (Bfd.session_state sb = Bfd.Up)

let test_vrf_isolation () =
  (* Two VRFs between the same nodes are independent sessions. *)
  let eng, _, a, b, _, addr_a, addr_b = pair () in
  let a1 = Bfd.create_session (Bfd.endpoint a) ~vrf:"v1" ~remote:addr_b () in
  let a2 = Bfd.create_session (Bfd.endpoint a) ~vrf:"v2" ~remote:addr_b () in
  ignore (Bfd.create_session (Bfd.endpoint b) ~vrf:"v1" ~remote:addr_a ());
  let b2 = Bfd.create_session (Bfd.endpoint b) ~vrf:"v2" ~remote:addr_a () in
  Engine.run_for eng (Time.sec 1);
  checkb "both up" true
    (Bfd.session_state a1 = Bfd.Up && Bfd.session_state a2 = Bfd.Up);
  (* Tear down only v2 at b: a's v2 goes down, v1 stays up. *)
  Bfd.stop_session b2;
  Engine.run_for eng (Time.sec 1);
  checkb "v2 down" true (Bfd.session_state a2 = Bfd.Down);
  checkb "v1 unaffected" true (Bfd.session_state a1 = Bfd.Up)

let test_admin_stop_no_callbacks_after () =
  let eng, _, a, b, _, addr_a, addr_b = pair () in
  let sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  ignore (Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a ());
  Engine.run_for eng (Time.sec 1);
  Bfd.stop_session sa;
  checkb "admin down" true (Bfd.session_state sa = Bfd.Admin_down);
  let sent_before = Bfd.packets_out sa in
  Engine.run_for eng (Time.sec 2);
  checki "no more transmissions" sent_before (Bfd.packets_out sa)

let test_relay_masks_failure () =
  (* Topology: peer -- router -- {container-host, agent}. When the
     container host dies, the agent's relay keeps the peer's BFD Up. *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let peer = Network.add_node net "peer" in
  let router = Network.add_node net ~forwarding:true "router" in
  let host = Network.add_node net "host" in
  let agent = Network.add_node net "agent" in
  let _, peer_addr, r_from_peer = Network.connect net peer router in
  let _, _, host_addr = Network.connect net router host in
  let _, _, _agent_addr = Network.connect net router agent in
  let vip = Addr.of_string "203.0.113.50" in
  Node.add_address host vip;
  Node.add_route peer (Addr.prefix vip 32) r_from_peer;
  Node.add_route router (Addr.prefix vip 32) host_addr;
  Node.add_route host (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces host) 0).Node.remote;
  Node.add_route agent (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces agent) 0).Node.remote;
  Node.add_route peer (Addr.prefix peer_addr 0) r_from_peer;
  (* Sessions: peer <-> container(VIP on host). *)
  let s_peer =
    Bfd.create_session (Bfd.endpoint peer) ~local:peer_addr ~vrf:"v0"
      ~remote:vip ()
  in
  let s_cont =
    Bfd.create_session (Bfd.endpoint host) ~local:vip ~vrf:"v0"
      ~remote:peer_addr ()
  in
  Engine.run_for eng (Time.sec 1);
  checkb "peer up" true (Bfd.session_state s_peer = Bfd.Up);
  (* Agent starts relaying with the container's discriminators, then the
     host dies. *)
  let relay =
    Bfd.Relay.start agent ~src:vip ~dst:peer_addr ~vrf:"v0"
      ~my_disc:(Bfd.my_disc s_cont) ~your_disc:(Bfd.your_disc s_cont) ()
  in
  Node.set_up host false;
  Engine.run_for eng (Time.sec 5);
  checkb "peer still up thanks to relay" true
    (Bfd.session_state s_peer = Bfd.Up);
  checkb "relay transmitted" true (Bfd.Relay.packets_sent relay > 30);
  (* Without the relay the peer would detect within 300 ms. *)
  Bfd.Relay.stop relay;
  Engine.run_for eng (Time.sec 2);
  checkb "peer down once relay stops" true (Bfd.session_state s_peer = Bfd.Down)

let test_peer_detects_without_relay () =
  (* Control experiment for the relay test: no agent, host death is
     detected promptly. *)
  let eng, _, a, b, _, addr_a, addr_b = pair () in
  let sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  ignore (Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a ());
  Engine.run_for eng (Time.sec 1);
  let down_at = ref None in
  Bfd.on_state_change sa (fun ~old:_ st ->
      if st = Bfd.Down && !down_at = None then down_at := Some (Engine.now eng));
  let t0 = Engine.now eng in
  Node.set_up b false;
  Engine.run_for eng (Time.sec 2);
  match !down_at with
  | Some t ->
      checkb "sub-500ms detection" true (Time.diff t t0 <= Time.ms 500)
  | None -> Alcotest.fail "not detected"

let prop_detection_scales_with_interval =
  QCheck.Test.make ~name:"detection time ~ detect_mult * interval" ~count:10
    QCheck.(pair (int_range 20 200) (int_range 2 5))
    (fun (interval_ms, mult) ->
      let eng, _, a, b, link, addr_a, addr_b = pair () in
      let sa =
        Bfd.create_session (Bfd.endpoint a) ~tx_interval:(Time.ms interval_ms)
          ~detect_mult:mult ~vrf:"v0" ~remote:addr_b ()
      in
      ignore
        (Bfd.create_session (Bfd.endpoint b) ~tx_interval:(Time.ms interval_ms)
           ~detect_mult:mult ~vrf:"v0" ~remote:addr_a ());
      Engine.run_for eng (Time.sec 3);
      if Bfd.session_state sa <> Bfd.Up then false
      else begin
        let down_at = ref None in
        Bfd.on_state_change sa (fun ~old:_ st ->
            if st = Bfd.Down && !down_at = None then
              down_at := Some (Engine.now eng));
        let t0 = Engine.now eng in
        Link.set_up link false;
        Engine.run_for eng (Time.sec 10);
        match !down_at with
        | Some t ->
            let d = Time.diff t t0 in
            (* The detection window is mult*interval since the LAST
               received packet, which (with 10% tx jitter) can precede the
               failure by up to ~1.1 intervals: accept (mult-2)..(mult+2)
               intervals after the failure instant. *)
            d >= max 0 ((mult - 2) * Time.ms interval_ms)
            && d <= (mult + 2) * Time.ms interval_ms
        | None -> false
      end)

let () =
  Alcotest.run "bfd"
    [
      ( "sessions",
        [
          Alcotest.test_case "bring-up" `Quick test_bringup;
          Alcotest.test_case "detection timing" `Quick test_detection_timing;
          Alcotest.test_case "recovers after flap" `Quick
            test_recovers_after_flap;
          Alcotest.test_case "vrf isolation" `Quick test_vrf_isolation;
          Alcotest.test_case "admin stop" `Quick
            test_admin_stop_no_callbacks_after;
        ] );
      ( "relay",
        [
          Alcotest.test_case "masks failure" `Quick test_relay_masks_failure;
          Alcotest.test_case "control: detection without relay" `Quick
            test_peer_detects_without_relay;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_detection_scales_with_interval ] );
    ]
