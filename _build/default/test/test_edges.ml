(* Focused edge-case tests across layers: TCP source binding and freeze
   semantics, repair import validation, speaker VRF isolation, store
   boundary conditions, controller E4 handling, and deployment-level
   store replication. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- TCP ------------------------------------------------------------------- *)

let tcp_pair () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let _, addr_a, addr_b = Network.connect net a b in
  (eng, a, b, Tcp.create_stack a, Tcp.create_stack b, addr_a, addr_b)

let test_tcp_src_binding () =
  let eng, a, b, sa, sb, addr_a, addr_b = tcp_pair () in
  let vip = Addr.of_string "203.0.113.77" in
  Node.add_address a vip;
  (* The peer needs a return route to the service address. *)
  Node.add_route b (Addr.prefix vip 32) addr_a;
  let seen_src = ref None in
  Tcp.listen sb ~port:80 (fun c ->
      seen_src := Some (Tcp.quad c).Tcp.Quad.remote_addr);
  let c = Tcp.connect sa ~src:vip ~dst:addr_b ~dst_port:80 () in
  Engine.run_for eng (Time.sec 1);
  checkb "established" true (Tcp.state c = Tcp.Established);
  (match !seen_src with
  | Some src -> checkb "peer sees the bound VIP" true (Addr.equal src vip)
  | None -> Alcotest.fail "no accept");
  ignore addr_a

let test_tcp_src_must_be_local () =
  let _, _, _, sa, _, _, addr_b = tcp_pair () in
  Alcotest.check_raises "foreign src rejected"
    (Invalid_argument "Tcp.connect: src is not a local address") (fun () ->
      ignore
        (Tcp.connect sa ~src:(Addr.of_string "8.8.8.8") ~dst:addr_b
           ~dst_port:80 ()))

let test_tcp_freeze_silences_everything () =
  let eng, _, _, sa, sb, _, addr_b = tcp_pair () in
  let got = ref 0 in
  Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun d -> got := !got + String.length d));
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:80 () in
  Tcp.on_established c (fun () -> Tcp.write c (String.make 10_000 'x'));
  Engine.run_for eng (Time.sec 1);
  checki "delivered before freeze" 10_000 !got;
  Tcp.freeze_stack sa;
  checkb "frozen" true (Tcp.is_frozen sa);
  (* Writes already queued and retransmission timers must emit nothing. *)
  Engine.run_for eng (Time.minutes 2);
  checki "nothing more" 10_000 !got;
  checkb "no RST/FIN at the peer: conn still looks alive" true
    (List.for_all
       (fun c' -> Tcp.state c' = Tcp.Established)
       (Tcp.connections sb))

let test_tcp_import_duplicate_quad_rejected () =
  let eng, _, _, sa, sb, _, addr_b = tcp_pair () in
  Tcp.listen sb ~port:80 (fun _ -> ());
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:80 () in
  Engine.run_for eng (Time.sec 1);
  let snap = Tcp.export_repair c in
  checkb "import on the same stack with a live quad fails" true
    (match Tcp.import_repair sa snap with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tcp_window_caps_throughput () =
  (* With a tiny receive window, throughput ~ W/RTT regardless of rate. *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let _, _, addr_b = Network.connect net ~delay:(Time.ms 5) a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  let got = ref 0 in
  Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun d -> got := !got + String.length d));
  let c = Tcp.connect sa ~rcv_wnd:20_000 ~dst:addr_b ~dst_port:80 () in
  Tcp.on_established c (fun () -> Tcp.write c (String.make 2_000_000 'w'));
  Engine.run_for eng (Time.sec 2);
  (* W/RTT = 20KB/10ms = 2 MB/s; in 2 s that is ~4 MB... but the peer's
     window is 400K (listener default); the SENDER's own rcv_wnd is what
     we set. The sender is bounded by the PEER's advertised window, so
     use the listener side: this asserts only an order of magnitude. *)
  checkb "some data flowed" true (!got > 100_000)

let test_tcp_peer_window_caps_inflight () =
  (* The receiver advertises its rcv_wnd; the sender never has more than
     that unacknowledged. Verify via a link tap. *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let link, _, addr_b = Network.connect net ~delay:(Time.ms 2) a b in
  let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
  Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun _ -> ()));
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:80 () in
  let max_inflight = ref 0 in
  Link.tap link (fun _ _ ->
      max_inflight := max !max_inflight (Tcp.snd_nxt c - Tcp.snd_una c));
  Tcp.on_established c (fun () -> Tcp.write c (String.make 3_000_000 'q'));
  Engine.run_for eng (Time.sec 3);
  checkb
    (Printf.sprintf "inflight (%d) never exceeds the 400K window"
       !max_inflight)
    true
    (!max_inflight <= 400_000)

(* --- Speaker: VRF isolation -------------------------------------------------- *)

let test_speaker_vrf_isolation () =
  (* One speaker, two VRFs with overlapping prefixes: tables must not
     leak into each other. *)
  let eng = Engine.create () in
  let net = Network.create eng in
  let n = Network.add_node net "r" in
  Node.add_address n (Addr.of_string "10.9.9.9");
  let stack = Tcp.create_stack n in
  let spk =
    Bgp.Speaker.create ~stack ~local_asn:64900
      ~router_id:(Addr.of_string "10.9.9.9") ()
  in
  Bgp.Speaker.add_vrf spk "red";
  Bgp.Speaker.add_vrf spk "blue";
  let p = Addr.prefix_of_string "198.18.0.0/16" in
  Bgp.Speaker.originate spk ~vrf:"red" [ p ];
  Engine.run_for eng (Time.ms 100);
  checki "red has it" 1 (Bgp.Rib.size (Bgp.Speaker.rib spk ~vrf:"red"));
  checki "blue does not" 0 (Bgp.Rib.size (Bgp.Speaker.rib spk ~vrf:"blue"));
  Bgp.Speaker.originate spk ~vrf:"blue" [ p ];
  Bgp.Speaker.withdraw_origin spk ~vrf:"red" [ p ];
  Engine.run_for eng (Time.ms 100);
  checki "red empty after withdraw" 0 (Bgp.Rib.size (Bgp.Speaker.rib spk ~vrf:"red"));
  checki "blue unaffected" 1 (Bgp.Rib.size (Bgp.Speaker.rib spk ~vrf:"blue"))

(* --- Store boundaries --------------------------------------------------------- *)

let store_rig () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "db" in
  let _, _, db = Network.connect net a b in
  let server = Store.Server.create ~cost:Store.free_cost_model b in
  (eng, server, Store.Client.create a ~server:db)

let test_store_get_missing_keys () =
  let eng, _, client = store_rig () in
  let got = ref None in
  Store.Client.get client [ "nope"; "nada" ] (fun r -> got := Some r);
  Engine.run eng;
  match !got with
  | Some (Ok [ ("nope", None); ("nada", None) ]) -> ()
  | _ -> Alcotest.fail "missing keys should yield None values"

let test_store_empty_batches () =
  let eng, _, client = store_rig () in
  let done_ = ref 0 in
  Store.Client.set client [] (fun _ -> incr done_);
  Store.Client.del client [] (fun _ -> incr done_);
  Store.Client.get client [] (fun _ -> incr done_);
  Store.Client.scan client ~prefix:"zzz" (fun _ -> incr done_);
  Engine.run eng;
  checki "all empty ops answered" 4 !done_

let test_store_large_value () =
  let eng, server, client = store_rig () in
  let big = String.make 1_000_000 'B' in
  let ok = ref false in
  Store.Client.set client [ ("big", big) ] (fun r -> ok := r = Ok ());
  Engine.run eng;
  checkb "stored" true !ok;
  checkb "intact" true (Store.Server.peek server "big" = Some big)

let test_store_deploy_replica_mirrors () =
  let dep = Tensor.Deploy.build ~store_replica:true () in
  let eng = dep.Tensor.Deploy.eng in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"svc" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  checkb "established with replicated store" true
    (Tensor.Deploy.wait_established dep svc ());
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 300);
  Engine.run_for eng (Time.sec 10);
  checki "routes flowed" 300 (Tensor.Deploy.service_routes svc ~vrf:"v0");
  (* The primary store has the checkpoint; NSR still works. *)
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 30);
  checki "recovered with replicated store" 300
    (Tensor.Deploy.service_routes svc ~vrf:"v0")

(* --- Controller: E4 virtual-network failure ---------------------------------- *)

let test_controller_e4_virtual_network () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let h1 = Orch.Host.create net ~fabric "h1" in
  let h2 = Orch.Host.create net ~fabric "h2" in
  let agent = Orch.Agent.create net ~fabric "agent" in
  let ctrl = Orch.Controller.create net ~fabric "ctrl" in
  Orch.Controller.register_host ctrl h1;
  Orch.Controller.register_host ctrl h2;
  Orch.Controller.register_agent ctrl agent;
  let cont = Orch.Host.create_container h1 "c1" in
  Orch.Container.boot cont;
  Engine.run_for eng (Time.sec 2);
  Orch.Controller.manage ctrl ~id:"c1" cont;
  Engine.run_for eng (Time.sec 1);
  let detected = ref None in
  Orch.Controller.set_migrator ctrl (fun ~reason ~id:_ ~failed:_ ~done_:_ ->
      if !detected = None then detected := Some (reason, Engine.now eng));
  (* E4: the container process lives but its virtual network dies. The
     host's process monitor still reports "running". *)
  let t0 = Engine.now eng in
  Orch.Container.kill_network cont;
  Engine.run_for eng (Time.sec 5);
  (match !detected with
  | Some (Orch.Controller.Container_failure, t) ->
      checkb "localized within ~1.5s" true (Time.diff t t0 < Time.of_ms_f 1500.)
  | Some (k, _) ->
      Alcotest.failf "wrong kind %a" Orch.Controller.pp_failure_kind k
  | None -> Alcotest.fail "E4 not detected");
  (* The controller killed the zombie before migrating. *)
  checkb "container was killed" true
    (Orch.Container.state cont = Orch.Container.Stopped)

let () =
  Alcotest.run "edges"
    [
      ( "tcp",
        [
          Alcotest.test_case "src binding" `Quick test_tcp_src_binding;
          Alcotest.test_case "src must be local" `Quick test_tcp_src_must_be_local;
          Alcotest.test_case "freeze silences" `Quick
            test_tcp_freeze_silences_everything;
          Alcotest.test_case "duplicate import rejected" `Quick
            test_tcp_import_duplicate_quad_rejected;
          Alcotest.test_case "window caps throughput" `Quick
            test_tcp_window_caps_throughput;
          Alcotest.test_case "peer window caps inflight" `Quick
            test_tcp_peer_window_caps_inflight;
        ] );
      ( "speaker",
        [ Alcotest.test_case "vrf isolation" `Quick test_speaker_vrf_isolation ] );
      ( "store",
        [
          Alcotest.test_case "missing keys" `Quick test_store_get_missing_keys;
          Alcotest.test_case "empty batches" `Quick test_store_empty_batches;
          Alcotest.test_case "large value" `Quick test_store_large_value;
          Alcotest.test_case "deploy with replica" `Quick
            test_store_deploy_replica_mirrors;
        ] );
      ( "controller",
        [
          Alcotest.test_case "E4 virtual network" `Quick
            test_controller_e4_virtual_network;
        ] );
    ]
