(* Tests for the userspace TCP stack: handshake, transfer, loss recovery,
   teardown, the netfilter OUTPUT hook, and TCP_REPAIR migration. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Two hosts joined by one link. *)
let pair ?delay ?bandwidth_bps ?loss ?proc_cost () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "client" and b = Network.add_node net "server" in
  let link, addr_a, addr_b = Network.connect net ?delay ?bandwidth_bps ?loss a b in
  let sa = Tcp.create_stack ?proc_cost a and sb = Tcp.create_stack ?proc_cost b in
  (eng, link, sa, sb, addr_a, addr_b)

(* A sink server accumulating everything it receives on [port]. *)
let sink stack ~port =
  let buf = Buffer.create 1024 in
  let conn = ref None in
  Tcp.listen stack ~port (fun c ->
      conn := Some c;
      Tcp.on_data c (fun s -> Buffer.add_string buf s));
  (buf, conn)

let test_handshake () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let accepted = ref false and established = ref false in
  Tcp.listen sb ~port:179 (fun _ -> accepted := true);
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> established := true);
  Engine.run_for eng (Time.sec 1);
  checkb "client established" true !established;
  checkb "server accepted" true !accepted;
  checkb "client state" true (Tcp.state c = Tcp.Established)

let test_initial_seq_numbers_visible () =
  (* TENSOR reads ISS/IRS via TCP_REPAIR at session start; both ends must
     agree on them. *)
  let eng, _, sa, sb, _, addr_b = pair () in
  let server_conn = ref None in
  Tcp.listen sb ~port:179 (fun c -> server_conn := Some c);
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Engine.run_for eng (Time.sec 1);
  match !server_conn with
  | None -> Alcotest.fail "no server conn"
  | Some s ->
      checki "client iss = server irs" (Tcp.iss c) (Tcp.irs s);
      checki "server iss = client irs" (Tcp.iss s) (Tcp.irs c)

let test_small_transfer () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let buf, _ = sink sb ~port:179 in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c "hello, bgp");
  Engine.run_for eng (Time.sec 1);
  checks "payload delivered" "hello, bgp" (Buffer.contents buf)

let test_write_before_established_is_buffered () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let buf, _ = sink sb ~port:179 in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.write c "early";
  Engine.run_for eng (Time.sec 1);
  checks "flushed after handshake" "early" (Buffer.contents buf)

let bulk_payload n =
  String.init n (fun i -> Char.chr (((i * 131) + (i / 251)) land 0xFF))

let test_bulk_transfer_integrity () =
  let eng, _, sa, sb, _, addr_b = pair ~delay:(Time.us 100) () in
  let buf, _ = sink sb ~port:179 in
  let payload = bulk_payload 300_000 in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () ->
      (* Write in odd-sized chunks to exercise segmentation. *)
      let pos = ref 0 in
      while !pos < String.length payload do
        let len = min 3_333 (String.length payload - !pos) in
        Tcp.write c (String.sub payload !pos len);
        pos := !pos + len
      done);
  Engine.run_for eng (Time.sec 10);
  checki "all bytes" (String.length payload) (Buffer.length buf);
  checkb "content identical" true (String.equal payload (Buffer.contents buf))

let test_bulk_transfer_with_loss () =
  let eng, _, sa, sb, _, addr_b =
    pair ~delay:(Time.us 200) ~loss:0.02 ()
  in
  let buf, _ = sink sb ~port:179 in
  let payload = bulk_payload 120_000 in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c payload);
  Engine.run_for eng (Time.sec 60);
  checkb "content identical despite loss" true
    (String.equal payload (Buffer.contents buf));
  checkb "losses actually recovered" true (Tcp.retransmits c > 0)

let test_bidirectional_transfer () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let to_server = Buffer.create 64 and to_client = Buffer.create 64 in
  Tcp.listen sb ~port:179 (fun s ->
      Tcp.on_data s (fun d -> Buffer.add_string to_server d);
      Tcp.write s "pong-stream");
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_data c (fun d -> Buffer.add_string to_client d);
  Tcp.on_established c (fun () -> Tcp.write c "ping-stream");
  Engine.run_for eng (Time.sec 2);
  checks "client->server" "ping-stream" (Buffer.contents to_server);
  checks "server->client" "pong-stream" (Buffer.contents to_client)

let test_graceful_close () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let server_reason = ref None and client_reason = ref None in
  Tcp.listen sb ~port:179 (fun s ->
      Tcp.on_close s (fun r -> server_reason := Some r);
      (* Close back when the peer half-closes. *)
      Tcp.on_remote_close s (fun () -> Tcp.close s));
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_close c (fun r -> client_reason := Some r);
  Tcp.on_established c (fun () ->
      Tcp.write c "bye";
      Tcp.close c);
  Engine.run_for eng (Time.sec 5);
  checkb "client closed normally" true (!client_reason = Some Tcp.Closed_normally);
  checkb "server closed normally" true (!server_reason = Some Tcp.Closed_normally)

let test_abort_resets_peer () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let server_reason = ref None in
  Tcp.listen sb ~port:179 (fun s -> Tcp.on_close s (fun r -> server_reason := Some r));
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.abort c);
  Engine.run_for eng (Time.sec 1);
  checkb "peer saw reset" true (!server_reason = Some Tcp.Reset);
  checkb "local closed" true (Tcp.state c = Tcp.Closed)

let test_connect_refused () =
  let eng, _, sa, _, _, addr_b = pair () in
  let reason = ref None in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:4444 () in
  Tcp.on_close c (fun r -> reason := Some r);
  Engine.run_for eng (Time.sec 2);
  checkb "refused" true (!reason = Some Tcp.Reset)

let test_connect_timeout () =
  let eng, link, sa, _, _, addr_b = pair () in
  Link.set_up link false;
  let reason = ref None in
  let c =
    Tcp.connect sa ~dst:addr_b ~dst_port:179 ()
  in
  Tcp.on_close c (fun r -> reason := Some r);
  Engine.run_for eng (Time.minutes 10);
  checkb "timed out" true (!reason = Some Tcp.Timed_out)

let test_established_timeout_on_blackhole () =
  let eng, link, sa, sb, _, addr_b = pair () in
  let buf, _ = sink sb ~port:179 in
  ignore buf;
  let reason = ref None in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_close c (fun r -> reason := Some r);
  Tcp.on_established c (fun () ->
      Link.set_up link false;
      Tcp.write c "into the void");
  Engine.run_for eng (Time.minutes 30);
  checkb "established timeout" true (!reason = Some Tcp.Timed_out)

let test_handshake_survives_synack_loss () =
  (* Drop the first SYN-ACK via a hostile tap-less approach: high loss
     briefly, then clean. Retransmission must still establish. *)
  let eng, link, sa, sb, _, addr_b = pair () in
  let established = ref false in
  Tcp.listen sb ~port:179 (fun _ -> ());
  Link.set_loss link 1.0;
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> established := true);
  ignore (Engine.schedule_after eng (Time.ms 150) (fun () -> Link.set_loss link 0.0));
  Engine.run_for eng (Time.sec 10);
  checkb "established after retransmit" true !established

let test_srtt_measured () =
  let eng, _, sa, sb, _, addr_b = pair ~delay:(Time.ms 5) () in
  let buf, _ = sink sb ~port:179 in
  ignore buf;
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c (String.make 5000 'x'));
  Engine.run_for eng (Time.sec 2);
  match Tcp.srtt c with
  | Some rtt -> checkb "srtt near 2*5ms" true (rtt > 0.009 && rtt < 0.013)
  | None -> Alcotest.fail "no rtt sample"

(* --- Netfilter OUTPUT hook -------------------------------------------- *)

let test_output_hook_sees_segments () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let chain = Netfilter.create () in
  let seen = ref 0 in
  ignore
    (Netfilter.add_rule chain (fun pkt ->
         (match pkt.Packet.payload with
         | Tcp.Segment.Tcp _ -> incr seen
         | _ -> ());
         Netfilter.Accept));
  Tcp.set_output_chain sa (Some chain);
  let buf, _ = sink sb ~port:179 in
  ignore buf;
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c "data");
  Engine.run_for eng (Time.sec 1);
  checkb "hook saw client's SYN+ACK+data" true (!seen >= 3)

let test_ack_delay_slows_transfer () =
  (* Hold the server's pure ACKs for 30 ms: the sender becomes
     window-limited and a 400 KB-window transfer of 2 MB takes at least
     (2MB/400KB - 1) * 30ms extra. *)
  let run ~hold =
    let eng, _, sa, sb, _, addr_b = pair ~delay:(Time.us 50) () in
    let chain = Netfilter.create () in
    (if hold then begin
       ignore
         (Netfilter.add_rule chain (fun pkt ->
              match pkt.Packet.payload with
              | Tcp.Segment.Tcp seg when Tcp.Segment.is_pure_ack seg ->
                  Netfilter.Queue 0
              | _ -> Netfilter.Accept));
       let q = Netfilter.queue chain 0 in
       Netfilter.set_consumer q (fun _ ~reinject ->
           ignore
             (Engine.schedule_after eng (Time.ms 30) (fun () ->
                  reinject Netfilter.Accept)))
     end);
    Tcp.set_output_chain sb (Some chain);
    let buf, _ = sink sb ~port:179 in
    let payload = String.make 2_000_000 'z' in
    let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
    Tcp.on_established c (fun () -> Tcp.write c payload);
    let done_at = ref None in
    let rec poll () =
      if Buffer.length buf >= String.length payload then
        done_at := Some (Engine.now eng)
      else ignore (Engine.schedule_after eng (Time.ms 10) poll)
    in
    poll ();
    Engine.run_for eng (Time.sec 120);
    match !done_at with
    | Some t -> t
    | None -> Alcotest.fail "transfer did not finish"
  in
  let fast = run ~hold:false and slow = run ~hold:true in
  checkb "delayed ACKs slow the transfer" true (slow > fast);
  checkb "meaningfully slower" true (slow - fast > Time.ms 60)

let test_queued_acks_do_not_deadlock () =
  (* ACK hold + retransmissions must still converge. *)
  let eng, _, sa, sb, _, addr_b = pair ~loss:0.01 () in
  let chain = Netfilter.create () in
  ignore
    (Netfilter.add_rule chain (fun pkt ->
         match pkt.Packet.payload with
         | Tcp.Segment.Tcp seg when Tcp.Segment.is_pure_ack seg ->
             Netfilter.Queue 0
         | _ -> Netfilter.Accept));
  let q = Netfilter.queue chain 0 in
  Netfilter.set_consumer q (fun _ ~reinject ->
      ignore
        (Engine.schedule_after eng (Time.ms 2) (fun () ->
             reinject Netfilter.Accept)));
  Tcp.set_output_chain sb (Some chain);
  let buf, _ = sink sb ~port:179 in
  let payload = bulk_payload 100_000 in
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c payload);
  Engine.run_for eng (Time.minutes 2);
  checkb "delivered" true (String.equal payload (Buffer.contents buf))

(* --- Repair / migration ------------------------------------------------ *)

(* Topology: peer -- router -- host1/host2. The service address lives on
   host1 and migrates to host2. *)
let migration_topology () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let peer = Network.add_node net "peer" in
  let router = Network.add_node net ~forwarding:true "router" in
  let host1 = Network.add_node net "host1" in
  let host2 = Network.add_node net "host2" in
  let _, peer_addr, r_from_peer = Network.connect net peer router in
  let _, r_to_h1, h1_addr = Network.connect net router host1 in
  let _, r_to_h2, h2_addr = Network.connect net router host2 in
  ignore r_to_h1;
  ignore r_to_h2;
  let vip = Addr.of_string "203.0.113.10" in
  Node.add_address host1 vip;
  Node.add_route peer (Addr.prefix vip 32) r_from_peer;
  Node.add_route router (Addr.prefix vip 32) h1_addr;
  Node.add_route host1 (Addr.prefix_of_string "0.0.0.0/0") (List.nth (Node.ifaces host1) 0).Node.remote;
  Node.add_route host2 (Addr.prefix_of_string "0.0.0.0/0") (List.nth (Node.ifaces host2) 0).Node.remote;
  let reroute_to_host2 () =
    Node.add_address host2 vip;
    Node.add_route router (Addr.prefix vip 32) h2_addr
  in
  (eng, net, peer, host1, host2, peer_addr, vip, reroute_to_host2)

let test_repair_export_consistent () =
  let eng, _, sa, sb, _, addr_b = pair () in
  let buf, sconn = sink sb ~port:179 in
  ignore buf;
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c "state to snapshot");
  Engine.run_for eng (Time.sec 1);
  let r = Tcp.export_repair c in
  checkb "consistent" true (Tcp.Repair.consistent r);
  checki "no unacked after ack" 0 (List.length r.Tcp.Repair.unacked);
  match !sconn with
  | Some s ->
      let rs = Tcp.export_repair s in
      checkb "server consistent" true (Tcp.Repair.consistent rs);
      checki "mirrored seqs" r.Tcp.Repair.snd_nxt rs.Tcp.Repair.rcv_nxt
  | None -> Alcotest.fail "no server conn"

let test_migration_transparent_to_peer () =
  let eng, _, peer, host1, host2, _, vip, reroute = migration_topology () in
  let s_peer = Tcp.create_stack peer in
  let s1 = Tcp.create_stack host1 in
  let s2 = Tcp.create_stack host2 in
  (* The service on host1 echoes nothing; peer streams to it. *)
  let received = Buffer.create 1024 in
  let service_conn = ref None in
  Tcp.listen s1 ~port:179 (fun c ->
      service_conn := Some c;
      Tcp.on_data c (fun d -> Buffer.add_string received d));
  let peer_closed = ref false in
  let c = Tcp.connect s_peer ~dst:vip ~dst_port:179 () in
  Tcp.on_close c (fun _ -> peer_closed := true);
  Tcp.on_established c (fun () -> Tcp.write c (bulk_payload 20_000));
  Engine.run_for eng (Time.sec 2);
  (* Snapshot, crash host1, restore on host2. *)
  let snap = Tcp.export_repair (Option.get !service_conn) in
  Node.set_up host1 false;
  reroute ();
  let c2 = Tcp.import_repair s2 snap in
  Tcp.on_data c2 (fun d -> Buffer.add_string received d);
  (* Peer keeps sending after the migration. *)
  Tcp.write c (bulk_payload 20_000);
  Engine.run_for eng (Time.sec 30);
  checkb "peer never saw a failure" true (not !peer_closed);
  checkb "peer conn still established" true (Tcp.state c = Tcp.Established);
  checki "all bytes arrived across migration" 40_000 (Buffer.length received)

let test_migration_with_unacked_data () =
  (* The snapshot carries unacked send data; after import the backup
     retransmits it and the peer's stream is not disturbed. *)
  let eng, _, peer, host1, host2, _, vip, reroute = migration_topology () in
  let s_peer = Tcp.create_stack peer in
  let s1 = Tcp.create_stack host1 in
  let s2 = Tcp.create_stack host2 in
  let service_conn = ref None in
  Tcp.listen s1 ~port:179 (fun c -> service_conn := Some c);
  let peer_got = Buffer.create 1024 in
  let c = Tcp.connect s_peer ~dst:vip ~dst_port:179 () in
  Tcp.on_data c (fun d -> Buffer.add_string peer_got d);
  Engine.run_for eng (Time.sec 1);
  let server = Option.get !service_conn in
  (* Isolate host1 *before* it writes, so everything it sends is lost and
     stays unacked in the snapshot. *)
  Node.set_up host1 false;
  let payload = bulk_payload 5_000 in
  Tcp.write server payload;
  Engine.run_for eng (Time.ms 500);
  let snap = Tcp.export_repair server in
  checkb "snapshot has unacked data" true (List.length snap.Tcp.Repair.unacked > 0);
  reroute ();
  ignore (Tcp.import_repair s2 snap);
  Engine.run_for eng (Time.sec 30);
  checkb "peer received the retransmitted stream" true
    (String.equal payload (Buffer.contents peer_got))

let test_import_rejects_inconsistent () =
  let eng, _, _, _, _, _, _, _ = migration_topology () in
  ignore eng;
  let bogus =
    {
      Tcp.Repair.quad =
        Tcp.Quad.v (Addr.of_string "1.1.1.1") 1 (Addr.of_string "2.2.2.2") 2;
      mss = 1460;
      rcv_wnd = 400_000;
      iss = 100;
      irs = 50;
      snd_una = 90 (* below iss: inconsistent *);
      snd_nxt = 120;
      rcv_nxt = 60;
      peer_wnd = 65535;
      unacked = [];
    }
  in
  checkb "flagged inconsistent" false (Tcp.Repair.consistent bogus)

let test_delivered_bytes_tracks_ack_inference () =
  (* TENSOR's inferred ACK is irs + 1 + delivered_bytes; it must equal the
     peer-visible rcv_nxt. *)
  let eng, _, sa, sb, _, addr_b = pair () in
  let sconn = ref None in
  Tcp.listen sb ~port:179 (fun c -> sconn := Some c);
  let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
  Tcp.on_established c (fun () -> Tcp.write c (bulk_payload 12_345));
  Engine.run_for eng (Time.sec 2);
  let s = Option.get !sconn in
  checki "inferred ack = rcv_nxt"
    (Tcp.irs s + 1 + Tcp.delivered_bytes s)
    (Tcp.rcv_nxt s)

(* --- Stream_buf -------------------------------------------------------- *)

let test_stream_buf_basic () =
  let sb = Tcp.Stream_buf.create 100 in
  Tcp.Stream_buf.append sb "hello";
  Tcp.Stream_buf.append sb "world";
  checki "start" 100 (Tcp.Stream_buf.start_seq sb);
  checki "end" 110 (Tcp.Stream_buf.end_seq sb);
  checks "read across chunks" "lowor" (Tcp.Stream_buf.read sb ~seq:103 ~len:5);
  checks "zero-copy whole chunk" "hello" (Tcp.Stream_buf.read sb ~seq:100 ~len:5);
  checks "clipped read" "rld" (Tcp.Stream_buf.read sb ~seq:107 ~len:50)

let test_stream_buf_drop () =
  let sb = Tcp.Stream_buf.create 0 in
  Tcp.Stream_buf.append sb "aaaa";
  Tcp.Stream_buf.append sb "bbbb";
  Tcp.Stream_buf.drop_until sb 6;
  checki "start advanced" 6 (Tcp.Stream_buf.start_seq sb);
  checks "tail readable" "bb" (Tcp.Stream_buf.read sb ~seq:6 ~len:10);
  Tcp.Stream_buf.drop_until sb 100;
  checkb "emptied" true (Tcp.Stream_buf.is_empty sb);
  checki "start clipped to end" 8 (Tcp.Stream_buf.start_seq sb)

let test_stream_buf_chunks_from () =
  let sb = Tcp.Stream_buf.create 0 in
  Tcp.Stream_buf.append sb "aaa";
  Tcp.Stream_buf.append sb "bbb";
  let chunks = Tcp.Stream_buf.chunks_from sb ~seq:1 in
  Alcotest.(check (list (pair int string)))
    "partial head chunk"
    [ (1, "aa"); (3, "bbb") ]
    chunks

let test_stream_buf_read_below_start () =
  let sb = Tcp.Stream_buf.create 10 in
  Tcp.Stream_buf.append sb "xyz";
  Tcp.Stream_buf.drop_until sb 12;
  Alcotest.check_raises "below start" (Invalid_argument "x") (fun () ->
      try ignore (Tcp.Stream_buf.read sb ~seq:11 ~len:1)
      with Invalid_argument _ -> raise (Invalid_argument "x"))

(* --- Congestion -------------------------------------------------------- *)

let test_congestion_slow_start () =
  let cc = Tcp.Congestion.create ~mss:1000 in
  checki "initcwnd 10 mss" 10_000 (Tcp.Congestion.window cc);
  (* Each full-MSS ACK grows the window by one MSS in slow start. *)
  let una = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Tcp.Congestion.on_ack cc ~snd_una:!una ~snd_nxt:(!una + 10_000)
         ~ack:(!una + 1000));
    una := !una + 1000
  done;
  checki "grew by 5 mss" 15_000 (Tcp.Congestion.window cc)

let test_congestion_fast_retransmit_on_third_dup () =
  let cc = Tcp.Congestion.create ~mss:1000 in
  let r1 = Tcp.Congestion.on_ack cc ~snd_una:5000 ~snd_nxt:20000 ~ack:5000 in
  let r2 = Tcp.Congestion.on_ack cc ~snd_una:5000 ~snd_nxt:20000 ~ack:5000 in
  let r3 = Tcp.Congestion.on_ack cc ~snd_una:5000 ~snd_nxt:20000 ~ack:5000 in
  checkb "first two ignored" true
    (r1 = Tcp.Congestion.Ignore && r2 = Tcp.Congestion.Ignore);
  checkb "third triggers" true (r3 = Tcp.Congestion.Fast_retransmit);
  checkb "in recovery" true (Tcp.Congestion.in_recovery cc);
  (* Full ACK ends recovery and deflates to ssthresh. *)
  ignore (Tcp.Congestion.on_ack cc ~snd_una:5000 ~snd_nxt:20000 ~ack:20000);
  checkb "recovery done" false (Tcp.Congestion.in_recovery cc);
  checki "deflated" (Tcp.Congestion.ssthresh cc) (Tcp.Congestion.window cc)

let test_congestion_rto_collapse () =
  let cc = Tcp.Congestion.create ~mss:1000 in
  Tcp.Congestion.on_rto cc;
  checki "one mss" 1000 (Tcp.Congestion.window cc);
  checki "ssthresh halved from initial" 5000 (Tcp.Congestion.ssthresh cc)

(* --- Properties -------------------------------------------------------- *)

let prop_stream_integrity =
  QCheck.Test.make ~name:"tcp delivers exactly the written stream"
    ~count:25
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20)
           (string_of_size Gen.(int_range 1 4000)))
        (int_range 0 3))
    (fun (writes, loss_pct) ->
      let eng, _, sa, sb, _, addr_b =
        pair ~loss:(float_of_int loss_pct /. 100.) ()
      in
      let buf, _ = sink sb ~port:179 in
      let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
      Tcp.on_established c (fun () -> List.iter (Tcp.write c) writes);
      Engine.run_for eng (Time.minutes 5);
      String.equal (String.concat "" writes) (Buffer.contents buf))

let prop_congestion_window_bounds =
  QCheck.Test.make ~name:"cwnd stays >= 1 MSS through arbitrary ack traces"
    ~count:200
    QCheck.(list (int_bound 3))
    (fun events ->
      let mss = 1460 in
      let cc = Tcp.Congestion.create ~mss in
      let una = ref 0 and nxt = ref 20_000 in
      List.for_all
        (fun e ->
          (match e with
          | 0 ->
              (* new ack for one mss *)
              ignore
                (Tcp.Congestion.on_ack cc ~snd_una:!una ~snd_nxt:!nxt
                   ~ack:(!una + mss));
              una := !una + mss;
              nxt := max !nxt (!una + 10_000)
          | 1 ->
              (* duplicate ack *)
              ignore
                (Tcp.Congestion.on_ack cc ~snd_una:!una ~snd_nxt:!nxt ~ack:!una)
          | 2 -> Tcp.Congestion.on_rto cc
          | _ ->
              (* full ack of everything outstanding *)
              ignore
                (Tcp.Congestion.on_ack cc ~snd_una:!una ~snd_nxt:!nxt ~ack:!nxt);
              una := !nxt;
              nxt := !una + 10_000);
          Tcp.Congestion.window cc >= mss
          && Tcp.Congestion.ssthresh cc >= 2 * mss)
        events)

let prop_repair_roundtrip_consistent =
  QCheck.Test.make ~name:"export_repair is always consistent" ~count:20
    QCheck.(int_range 0 50_000)
    (fun nbytes ->
      let eng, _, sa, sb, _, addr_b = pair () in
      let sconn = ref None in
      Tcp.listen sb ~port:179 (fun c -> sconn := Some c);
      let c = Tcp.connect sa ~dst:addr_b ~dst_port:179 () in
      Tcp.on_established c (fun () ->
          if nbytes > 0 then Tcp.write c (String.make nbytes 'p'));
      Engine.run_for eng (Time.ms 50);
      (* Mid-flight snapshot. *)
      let ok1 = Tcp.Repair.consistent (Tcp.export_repair c) in
      Engine.run_for eng (Time.sec 5);
      let ok2 = Tcp.Repair.consistent (Tcp.export_repair c) in
      ok1 && ok2)

let () =
  Alcotest.run "tcp"
    [
      ( "handshake",
        [
          Alcotest.test_case "establishes" `Quick test_handshake;
          Alcotest.test_case "initial seqs visible" `Quick
            test_initial_seq_numbers_visible;
          Alcotest.test_case "survives SYN-ACK loss" `Quick
            test_handshake_survives_synack_loss;
          Alcotest.test_case "refused port" `Quick test_connect_refused;
          Alcotest.test_case "connect timeout" `Quick test_connect_timeout;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "small" `Quick test_small_transfer;
          Alcotest.test_case "write before established" `Quick
            test_write_before_established_is_buffered;
          Alcotest.test_case "bulk integrity" `Quick test_bulk_transfer_integrity;
          Alcotest.test_case "bulk with loss" `Quick test_bulk_transfer_with_loss;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_transfer;
          Alcotest.test_case "srtt measured" `Quick test_srtt_measured;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "graceful close" `Quick test_graceful_close;
          Alcotest.test_case "abort resets peer" `Quick test_abort_resets_peer;
          Alcotest.test_case "blackhole times out" `Quick
            test_established_timeout_on_blackhole;
        ] );
      ( "netfilter",
        [
          Alcotest.test_case "hook sees segments" `Quick
            test_output_hook_sees_segments;
          Alcotest.test_case "ack delay slows transfer" `Slow
            test_ack_delay_slows_transfer;
          Alcotest.test_case "queued acks no deadlock" `Quick
            test_queued_acks_do_not_deadlock;
        ] );
      ( "repair",
        [
          Alcotest.test_case "export consistent" `Quick
            test_repair_export_consistent;
          Alcotest.test_case "migration transparent" `Quick
            test_migration_transparent_to_peer;
          Alcotest.test_case "migration with unacked data" `Quick
            test_migration_with_unacked_data;
          Alcotest.test_case "rejects inconsistent" `Quick
            test_import_rejects_inconsistent;
          Alcotest.test_case "ack inference invariant" `Quick
            test_delivered_bytes_tracks_ack_inference;
        ] );
      ( "stream_buf",
        [
          Alcotest.test_case "basic" `Quick test_stream_buf_basic;
          Alcotest.test_case "drop" `Quick test_stream_buf_drop;
          Alcotest.test_case "chunks_from" `Quick test_stream_buf_chunks_from;
          Alcotest.test_case "read below start" `Quick
            test_stream_buf_read_below_start;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "slow start" `Quick test_congestion_slow_start;
          Alcotest.test_case "fast retransmit" `Quick
            test_congestion_fast_retransmit_on_third_dup;
          Alcotest.test_case "rto collapse" `Quick test_congestion_rto_collapse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stream_integrity;
            prop_congestion_window_bounds;
            prop_repair_roundtrip_consistent;
          ] );
    ]
