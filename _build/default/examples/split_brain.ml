(* Split-brain: partition the primary's host from the cluster, let the
   controller migrate, then heal the partition and show that the old
   primary cannot come back as a second speaker.

     dune exec examples/split_brain.exe

   Three mechanisms cooperate (§3.3):
   - the agent's BFD relay keeps the remote AS oblivious during the move;
   - the partitioned host's controller lease expires before the
     controller's 3-second confirmation timer, so the old primary fences
     itself before the backup is even started;
   - the controller quarantines the host until a manual reset, so the
     healed host is not re-used. *)

open Sim
open Netsim

let () =
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  let peer_handle =
    Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900
  in
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"gw" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  assert (Tensor.Deploy.wait_established dep svc ());
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 100);
  Engine.run_for eng (Time.sec 5);

  let h0 = dep.Tensor.Deploy.hosts.(0) in
  let old_container = Tensor.Deploy.service_container svc in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);

  (* Count packets sourced from the VIP arriving at the peer: after the
     partition heals, only ONE speaker may be talking. *)
  let vip_packets_after_heal = ref 0 in
  let healed = ref false in
  (match
     Network.link_between dep.Tensor.Deploy.net dep.Tensor.Deploy.fabric
       peer.Tensor.Deploy.pa_node
   with
  | Some link ->
      Link.tap link (fun _ pkt ->
          if !healed && Addr.equal pkt.Packet.src vip then
            incr vip_packets_after_heal)
  | None -> assert false);

  Format.printf "t=%a  partitioning %s from the cluster@." Time.pp
    (Engine.now eng) (Orch.Host.name h0);
  let t0 = Engine.now eng in
  Tensor.Deploy.inject_host_network_failure dep svc;

  (* Watch the fence land before the controller's declaration. *)
  let fence_at = ref None and declared_at = ref None in
  let rec watch () =
    if Orch.Host.is_fenced h0 && !fence_at = None then
      fence_at := Some (Time.diff (Engine.now eng) t0);
    (match
       Trace.first (Orch.Controller.trace dep.Tensor.Deploy.ctrl)
         ~category:"host-failed"
     with
    | Some e when !declared_at = None ->
        declared_at := Some (Time.diff e.Trace.at t0)
    | _ -> ());
    if !fence_at = None || !declared_at = None then
      ignore (Engine.schedule_after eng (Time.ms 100) watch)
  in
  watch ();
  Engine.run_for eng (Time.sec 20);

  (match (!fence_at, !declared_at) with
  | Some f, Some d ->
      Format.printf
        "old primary self-fenced at +%a; controller declared the host dead at +%a@."
        Time.pp f Time.pp d;
      assert (f <= d)
  | _ -> failwith "fence or declaration missing");

  Format.printf "service now on %s/%s; peer drops so far: %d@."
    (Orch.Container.host_name (Tensor.Deploy.service_container svc))
    (Orch.Container.id (Tensor.Deploy.service_container svc))
    !drops;

  (* Heal the partition: the old host comes back online, with its old
     container state intact — the classic split-brain moment. *)
  Format.printf "@.t=%a  partition heals; old host back online@." Time.pp
    (Engine.now eng);
  healed := true;
  Array.iter
    (fun h ->
      if Orch.Host.name h = Orch.Host.name h0 then Orch.Host.network_recover h)
    dep.Tensor.Deploy.hosts;
  Engine.run_for eng (Time.sec 20);

  Format.printf "old container state: %a (fenced before the migration)@."
    Orch.Container.pp_state
    (Orch.Container.state old_container);
  Format.printf "host still quarantined: %b@."
    (List.mem (Orch.Host.name h0)
       (Orch.Controller.quarantined dep.Tensor.Deploy.ctrl));

  (* Verify single-speaker: all VIP-sourced traffic at the peer comes
     from the new primary only (the old one is fenced). *)
  Format.printf "peer session drops across the whole episode: %d@." !drops;
  Format.printf "VIP traffic after heal flows from exactly one speaker: %b@."
    (!vip_packets_after_heal > 0);
  assert (!drops = 0);

  (* Manual reset returns the host to the pool. *)
  Orch.Controller.release_quarantine dep.Tensor.Deploy.ctrl h0;
  Format.printf "after manual reset, quarantine list: %s@."
    (match Orch.Controller.quarantined dep.Tensor.Deploy.ctrl with
    | [] -> "(empty)"
    | l -> String.concat ", " l);
  Format.printf "@.split-brain OK — fencing preceded migration, no dual primary@."
