(* Quickstart: bring up a TENSOR deployment with one peering AS, exchange
   routes in both directions, and inspect the result.

     dune exec examples/quickstart.exe

   This is the smallest end-to-end use of the public API: a cluster
   (fabric + hosts + agent + controller + store), one external AS running
   an FRRouting-profile speaker, and one TENSOR service (a containerized
   BGP+BFD pair with live replication). *)

open Sim
open Netsim

let () =
  (* 1. Build the cluster of Figure 3. *)
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in

  (* 2. A remote peering AS (AS 65010) on the forwarding fabric. *)
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer-as65010" in

  (* 3. A TENSOR service: one container, one VRF, service address
     203.0.113.10, speaking BGP as AS 64900 to the peer. *)
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"gateway-1" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in

  (* 4. Wait for the session (container boot + TCP + OPEN exchange). *)
  if not (Tensor.Deploy.wait_established dep svc ()) then
    failwith "session did not establish";
  Format.printf "session established at t=%a@." Time.pp (Engine.now eng);

  (* 5. Routes in both directions. *)
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 1_000);
  (match Tensor.App.speaker (Tensor.Deploy.service_app svc) with
  | Some spk ->
      Bgp.Speaker.originate spk ~vrf:"v0"
        [ Addr.prefix_of_string "198.18.0.0/16" ]
  | None -> assert false);
  Engine.run_for eng (Time.sec 10);

  (* 6. Inspect. *)
  Format.printf "TENSOR VRF v0 now holds %d prefixes (1000 learned + 1 own)@."
    (Tensor.Deploy.service_routes svc ~vrf:"v0");
  let peer_rib = Bgp.Speaker.rib peer.Tensor.Deploy.pa_speaker ~vrf:"v0" in
  Format.printf "peer VRF holds %d prefixes (1000 own + 1 from TENSOR)@."
    (Bgp.Rib.size peer_rib);
  (match
     Bgp.Rib.best peer_rib (Addr.prefix_of_string "198.18.0.0/16")
   with
  | Some best ->
      Format.printf "peer's best path for 198.18.0.0/16: %a@." Bgp.Attrs.pp
        best.Bgp.Rib.attrs
  | None -> Format.printf "route missing!@.");

  (* 7. The replication machinery at work: session metadata, the ACK
     watermark and the routing-table checkpoint all live in the store. *)
  let store = dep.Tensor.Deploy.store_server in
  Format.printf "store holds %d records (%d KB) for this connection@."
    (Store.Server.records store)
    (Store.Server.stored_bytes store / 1024);
  let rib_keys =
    Store.Server.keys_with_prefix store
      (Tensor.Keys.rib_prefix ~service:"gateway-1")
  in
  Format.printf "routing-table checkpoint: %d prefixes@."
    (List.length rib_keys);
  Format.printf "@.quickstart OK@."
