(* Failover: kill the primary container under live traffic and watch the
   NSR migration keep the remote AS connected.

     dune exec examples/failover.exe

   The peer AS's session and routing table are monitored throughout; the
   example prints the recovery timeline (detection, initiation,
   migration, TCP resynchronization) and proves zero link downtime the
   same way Table 1 does. *)

open Sim
open Netsim

let () =
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  let peer_handle =
    Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900
  in
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"gw" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  assert (Tensor.Deploy.wait_established dep svc ());
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 500);
  Engine.run_for eng (Time.sec 10);

  let peer_rib = Bgp.Speaker.rib peer.Tensor.Deploy.pa_speaker ~vrf:"v0" in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun r ->
      incr drops;
      Format.printf "!! peer session dropped: %a@." Bgp.Session.pp_down_reason r);

  Format.printf "before failure: primary=%s/%s, peer session %a@."
    (Orch.Container.host_name (Tensor.Deploy.service_container svc))
    (Orch.Container.id (Tensor.Deploy.service_container svc))
    Bgp.Session.pp_state
    (Bgp.Speaker.peer_state peer_handle);

  (* Updates keep flowing while we kill the container. *)
  let t0 = Engine.now eng in
  Format.printf "@.t=0.000s  injecting container failure...@.";
  Tensor.Deploy.inject_container_failure dep svc;
  ignore
    (Engine.schedule_after eng (Time.ms 800) (fun () ->
         Format.printf
           "t=0.800s  peer announces 200 more routes mid-outage@.";
         Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
           (Workload.Prefixes.distinct_from ~base:700_000 200)));
  Engine.run_for eng (Time.sec 30);

  (* Timeline from the traces. *)
  let rel trace cat =
    match Trace.first trace ~category:cat with
    | Some e -> Time.to_sec_f (Time.diff e.Trace.at t0)
    | None -> nan
  in
  let ctl = Orch.Controller.trace dep.Tensor.Deploy.ctrl in
  Format.printf "@.recovery timeline (seconds after injection):@.";
  Format.printf "  %-28s %.3f@." "failure localized" (rel ctl "detect");
  Format.printf "  %-28s %.3f@." "migration initiated" (rel ctl "initiate");
  Format.printf "  %-28s %.3f@." "backup resumed" (rel ctl "migrate");
  Format.printf "  %-28s %.3f@." "TCP fully re-synced"
    (rel dep.Tensor.Deploy.trace "tcp-synced");

  Format.printf "@.after recovery: primary=%s/%s@."
    (Orch.Container.host_name (Tensor.Deploy.service_container svc))
    (Orch.Container.id (Tensor.Deploy.service_container svc));
  Format.printf "peer session drops: %d (zero = non-stop routing)@." !drops;
  Format.printf "peer routes: %d (500 pre-failure + 200 mid-outage)@."
    (Bgp.Rib.size peer_rib);
  Format.printf "TENSOR routes after migration: %d@."
    (Tensor.Deploy.service_routes svc ~vrf:"v0");
  assert (!drops = 0);
  assert (Tensor.Deploy.service_routes svc ~vrf:"v0" = 700);
  Format.printf "@.failover OK — zero link downtime@."
