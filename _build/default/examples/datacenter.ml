(* Datacenter: a gateway cluster at (small) scale — many containerized
   BGP services across several hosts, each peering with its own AS, with
   parallel boot, per-container fault isolation, and a host failure that
   migrates a whole batch of services.

     dune exec examples/datacenter.exe

   Demonstrates the operational arguments of §3.2: parallel container
   boot (vs a monolithic ~20-minute configuration load), the reduced
   failure domain (one AS's trouble stays in its container), and the
   resource footprint of Figure 6(d). *)

open Sim
open Netsim

let n_services = 12
let routes_per_as = 2_000

let () =
  let dep = Tensor.Deploy.build ~hosts:4 () in
  let eng = dep.Tensor.Deploy.eng in

  (* One peering AS and one TENSOR service per enterprise client. *)
  let boot_t0 = Engine.now eng in
  let services =
    List.init n_services (fun i ->
        let asn = 65100 + i in
        let peer =
          Tensor.Deploy.add_peer_as dep ~asn (Printf.sprintf "as%d" asn)
        in
        let vip = Addr.of_octets 203 0 113 (10 + i) in
        ignore
          (Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
        let svc =
          Tensor.Deploy.deploy_service dep
            ~primary_host:(i mod 3)
            ~backup_host:((i + 1) mod 3)
            ~id:(Printf.sprintf "gw%d" i) ~local_asn:64900
            [
              Tensor.App.vrf_spec ~vrf:"v0" ~vip
                ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:asn ();
            ]
        in
        (peer, svc))
  in
  (* All services boot and establish in parallel. *)
  List.iter
    (fun (_, svc) -> assert (Tensor.Deploy.wait_established dep svc ()))
    services;
  Format.printf
    "%d containerized BGP services established in %a of simulated time@."
    n_services Time.pp
    (Time.diff (Engine.now eng) boot_t0);
  Format.printf
    "(the paper: parallel container boot turns a ~20-minute monolithic@.";
  Format.printf " configuration load into ~20 seconds)@.";

  (* Every AS announces its routes. *)
  List.iteri
    (fun i (peer, _) ->
      Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
        (Workload.Prefixes.distinct_from ~base:(i * 100_000) routes_per_as))
    services;
  Engine.run_for eng (Time.sec 20);
  let total_routes =
    List.fold_left
      (fun acc (_, svc) -> acc + Tensor.Deploy.service_routes svc ~vrf:"v0")
      0 services
  in
  Format.printf "@.cluster learned %d routes across %d isolated VRFs@."
    total_routes n_services;

  (* Resource footprint per host (Figure 6(d) accounting). *)
  Array.iter
    (fun h ->
      Format.printf "  %s: %d containers, %.1f GB, %.2f%% CPU@."
        (Orch.Host.name h)
        (List.length
           (List.filter
              (fun c -> Orch.Container.state c = Orch.Container.Running)
              (Orch.Host.containers h)))
        (Orch.Host.memory_used_mb h /. 1024.)
        (Orch.Host.cpu_used_pct h))
    dep.Tensor.Deploy.hosts;

  (* Fault isolation: crash one service's BGP process; its neighbours on
     the same host are untouched. *)
  let _, victim = List.nth services 0 in
  let _, neighbour = List.nth services 3 in
  Format.printf "@.crashing gw0's BGP process (application failure)...@.";
  Tensor.Deploy.inject_app_failure dep victim;
  Engine.run_for eng (Time.sec 15);
  Format.printf "gw0 recovered on %s with %d routes; gw3 untouched (%d routes)@."
    (Orch.Container.host_name (Tensor.Deploy.service_container victim))
    (Tensor.Deploy.service_routes victim ~vrf:"v0")
    (Tensor.Deploy.service_routes neighbour ~vrf:"v0");

  (* A whole host dies: every service on it migrates; no peer notices. *)
  let drops = ref 0 in
  List.iter
    (fun (peer, _) ->
      List.iter
        (fun p -> Bgp.Speaker.on_peer_down p (fun _ -> incr drops))
        (Bgp.Speaker.peers peer.Tensor.Deploy.pa_speaker))
    services;
  let _, on_h1 =
    List.find
      (fun (_, svc) ->
        Orch.Container.host_name (Tensor.Deploy.service_container svc)
        = "host1")
      services
  in
  Format.printf "@.failing host1 (machine failure)...@.";
  Tensor.Deploy.inject_host_failure dep on_h1;
  Engine.run_for eng (Time.sec 30);
  let migrated =
    List.filter
      (fun (_, svc) ->
        Orch.Container.host_name (Tensor.Deploy.service_container svc)
        <> "host1")
      services
  in
  Format.printf "services now off host1: %d/%d; peer session drops: %d@."
    (List.length migrated) n_services !drops;
  assert (!drops = 0);
  Format.printf "@.datacenter OK — batch migration with zero downtime@."
