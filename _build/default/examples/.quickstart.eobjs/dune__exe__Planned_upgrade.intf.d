examples/planned_upgrade.mli:
