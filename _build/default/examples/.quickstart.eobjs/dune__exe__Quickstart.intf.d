examples/quickstart.mli:
