examples/planned_upgrade.ml: Addr Bgp Engine Format Netsim Orch Sim Tensor Time Trace Workload
