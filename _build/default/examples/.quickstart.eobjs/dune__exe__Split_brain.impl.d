examples/split_brain.ml: Addr Array Bgp Engine Format Link List Netsim Network Orch Packet Sim String Tensor Time Trace Workload
