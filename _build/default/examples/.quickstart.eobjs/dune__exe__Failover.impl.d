examples/failover.ml: Addr Bgp Engine Format Netsim Orch Sim Tensor Time Trace Workload
