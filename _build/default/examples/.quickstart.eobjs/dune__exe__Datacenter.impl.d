examples/datacenter.ml: Addr Array Bgp Engine Format List Netsim Orch Printf Sim Tensor Time Workload
