examples/failover.mli:
