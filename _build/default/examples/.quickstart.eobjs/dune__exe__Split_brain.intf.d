examples/split_brain.mli:
