examples/datacenter.mli:
