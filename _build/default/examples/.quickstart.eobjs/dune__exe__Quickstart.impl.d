examples/quickstart.ml: Addr Bgp Engine Format List Netsim Sim Store Tensor Time Workload
