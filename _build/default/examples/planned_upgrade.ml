(* Planned upgrade: migrate a perfectly healthy gateway with zero
   downtime — the operational capability of §4.4 ("TENSOR allows
   transparent system updates at any time"), which neither graceful
   restart (frozen policies) nor plain restarts (downtime) provide.

     dune exec examples/planned_upgrade.exe *)

open Sim
open Netsim

let () =
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  let peer_handle =
    Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900
  in
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"gw" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  assert (Tensor.Deploy.wait_established dep svc ());
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 1_000);
  Engine.run_for eng (Time.sec 10);

  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);
  Format.printf "running on %s/%s; starting the software upgrade...@."
    (Orch.Container.host_name (Tensor.Deploy.service_container svc))
    (Orch.Container.id (Tensor.Deploy.service_container svc));

  (* Updates keep arriving WHILE we upgrade: with graceful restart these
     would be frozen-out; here they are simply delivered to the new
     instance (TCP holds them while the primary is quiesced). *)
  let t0 = Engine.now eng in
  Tensor.Deploy.planned_migration dep svc;
  ignore
    (Engine.schedule_after eng (Time.ms 200) (fun () ->
         Format.printf "  (peer announces 250 routes mid-upgrade)@.";
         Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
           (Workload.Prefixes.distinct_from ~base:600_000 250)));
  Engine.run_for eng (Time.sec 30);

  Format.printf "upgrade finished in %a: now on %s/%s@." Time.pp
    (match
       Trace.first dep.Tensor.Deploy.trace ~category:"tcp-synced"
     with
    | Some e -> Time.diff e.Trace.at t0
    | None -> 0)
    (Orch.Container.host_name (Tensor.Deploy.service_container svc))
    (Orch.Container.id (Tensor.Deploy.service_container svc));
  Format.printf "peer session drops: %d@." !drops;
  Format.printf "routes (1000 before + 250 during): %d@."
    (Tensor.Deploy.service_routes svc ~vrf:"v0");
  assert (!drops = 0);
  assert (Tensor.Deploy.service_routes svc ~vrf:"v0" = 1250);
  Format.printf "@.planned upgrade OK — no window negotiated, no policy freeze,@.";
  Format.printf "no downtime: routing updates flowed throughout.@."
