(* tensor-cli: drive the TENSOR reproduction from the command line.

     tensor-cli experiment fig6a table1 ...   # regenerate paper artifacts
     tensor-cli failover --kind host          # one failure scenario, verbose
     tensor-cli trace failover --kind host    # causal span tree + JSONL export
     tensor-cli causal failover --json        # recovery critical path
     tensor-cli check failover --trace-dir t  # + Perfetto trace & time series
     tensor-cli metrics                       # registered metrics after a failover
     tensor-cli cdf --links 6000              # Figure 7(a) population
     tensor-cli profile fig5a --out DIR       # engine cost attribution
     tensor-cli list                          # experiment ids *)

open Cmdliner

let experiment_ids =
  [ "fig5a"; "fig5b"; "fig6a"; "fig6b"; "fig6c"; "fig6d"; "table1"; "multias";
    "scale"; "ablations"; "fig7a"; "fig7b"; "table2" ]

let run_experiment ~quick id =
  match id with
  | "fig5a" ->
      Tensor.Exp_fig5a.print
        (if quick then
           Tensor.Exp_fig5a.run ~packet_sizes:[ 100; 500; 2000 ]
             ~delays_ms:[ 0.; 2.; 5.; 20.; 50. ]
             ~measure_span:(Sim.Time.ms 200) ()
         else Tensor.Exp_fig5a.run ())
  | "fig5b" -> Tensor.Exp_fig5b.print (Tensor.Exp_fig5b.run ())
  | "fig6a" ->
      Tensor.Exp_fig6.print_receive
        (Tensor.Exp_fig6.run_receive
           ~counts:(if quick then [ 100; 10_000 ] else [ 100; 1_000; 10_000; 100_000; 500_000 ])
           ())
  | "fig6b" ->
      Tensor.Exp_fig6.print_send
        (Tensor.Exp_fig6.run_send
           ~counts:(if quick then [ 100; 10_000 ] else [ 100; 1_000; 10_000; 100_000; 500_000 ])
           ())
  | "fig6c" ->
      Tensor.Exp_fig6.print_multi_peer
        (Tensor.Exp_fig6.run_multi_peer
           ~peer_counts:(if quick then [ 50; 700 ] else [ 50; 100; 200; 300; 400; 500; 600; 700 ])
           ())
  | "fig6d" -> Tensor.Exp_fig6.print_scale (Tensor.Exp_fig6.run_scale ())
  | "table1" -> Tensor.Exp_table1.print (Tensor.Exp_table1.run ())
  | "multias" ->
      Tensor.Exp_parallel.print
        (Tensor.Exp_parallel.run ~ases:(if quick then 10 else 50) ())
  | "scale" ->
      Tensor.Exp_scale.print
        (if quick then Tensor.Exp_scale.run ~hosts:5 ~services:20 ()
         else Tensor.Exp_scale.run ())
  | "ablations" ->
      Tensor.Exp_ablations.print_preheat (Tensor.Exp_ablations.run_preheat ());
      Tensor.Exp_ablations.print_replication_modes
        (Tensor.Exp_ablations.run_replication_modes ());
      Tensor.Exp_ablations.print_hook_overhead
        (Tensor.Exp_ablations.run_hook_overhead ())
  | "fig7a" -> Tensor.Exp_fig7.print_cdf (Tensor.Exp_fig7.run_cdf ())
  | "fig7b" ->
      Tensor.Exp_fig7.print_timeline (Tensor.Exp_fig7.run_timeline ())
  | "table2" -> Tensor.Exp_table2.print ()
  | other -> Printf.eprintf "unknown experiment %S\n" other

(* --- experiment command ------------------------------------------------- *)

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced parameter ranges.")

let ids_arg =
  Arg.(
    value
    & pos_all string experiment_ids
    & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let experiment_cmd =
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(
      const (fun quick ids -> List.iter (run_experiment ~quick) ids)
      $ quick_flag $ ids_arg)

(* --- failover command --------------------------------------------------- *)

let failure_kind_conv =
  let parse = function
    | "app" | "application" -> Ok Orch.Controller.App_failure
    | "container" -> Ok Orch.Controller.Container_failure
    | "host" | "host-machine" -> Ok Orch.Controller.Host_failure
    | "host-network" | "network" -> Ok Orch.Controller.Host_network_failure
    | s -> Error (`Msg (Printf.sprintf "unknown failure kind %S" s))
  in
  Arg.conv (parse, Orch.Controller.pp_failure_kind)

let failover_cmd =
  let kind =
    Arg.(
      value
      & opt failure_kind_conv Orch.Controller.Container_failure
      & info [ "kind"; "k" ] ~docv:"KIND"
          ~doc:"app | container | host | host-network")
  in
  let run kind =
    let rows = Tensor.Exp_table1.run ~kinds:[ kind ] () in
    Tensor.Exp_table1.print rows;
    List.iter
      (fun (r : Tensor.Exp_table1.timeline) ->
        if r.peer_session_drops > 0 || r.peer_routes_lost > 0 then begin
          Printf.eprintf "NSR FAILED: peer observed the outage\n";
          exit 1
        end)
      rows;
    print_endline "\nNSR verified: the remote AS observed zero downtime."
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"Run one failure scenario and verify NSR.")
    Term.(const run $ kind)

(* --- cdf command ----------------------------------------------------------- *)

let cdf_cmd =
  let links =
    Arg.(value & opt int 6000 & info [ "links" ] ~doc:"Population size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v
    (Cmd.info "cdf" ~doc:"Sample the Figure 7(a) traffic population.")
    Term.(
      const (fun links seed ->
          Tensor.Exp_fig7.print_cdf (Tensor.Exp_fig7.run_cdf ~links ~seed ()))
      $ links $ seed)

(* --- trace command ------------------------------------------------------------ *)

let kind_opt =
  Arg.(
    value
    & opt failure_kind_conv Orch.Controller.Container_failure
    & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"app | container | host | host-network")

let out_dir_opt =
  Arg.(
    value
    & opt string "telemetry-out"
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Directory for the JSONL/CSV telemetry export.")

(* A minimal §4.4 planned upgrade: one service, one peer AS, migrate
   while healthy. *)
let run_planned () =
  let open Sim in
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Netsim.Addr.of_string "203.0.113.10" in
  ignore (Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"gw" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  if not (Tensor.Deploy.wait_established dep svc ()) then begin
    Printf.eprintf "planned scenario: session never established\n";
    exit 1
  end;
  Bgp.Speaker.originate peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 1_000);
  Engine.run_for eng (Time.sec 10);
  Tensor.Deploy.planned_migration dep svc;
  Engine.run_for eng (Time.sec 30)

let run_traced_scenario scenario kind =
  Telemetry.Control.reset ();
  Telemetry.Control.set_enabled true;
  (match scenario with
  | "failover" -> ignore (Tensor.Exp_table1.run ~kinds:[ kind ] ())
  | "planned" -> run_planned ()
  | other ->
      Printf.eprintf "unknown scenario %S (expected: failover | planned)\n"
        other;
      exit 2);
  Telemetry.Control.set_enabled false

(* Extract the scenario's recovery critical path from the recorded DAG,
   if the scenario closed a root span and the recorder saw its events. *)
let critical_of_scenario scenario =
  match Tensor.Check.root_span scenario with
  | None -> None
  | Some name -> (
      match Causal.Critical.of_span ~name () with
      | Ok c -> Some c
      | Error _ -> None)

let trace_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 string "failover"
      & info [] ~docv:"SCENARIO" ~doc:"failover | planned")
  in
  let perfetto =
    Arg.(
      value & flag
      & info [ "perfetto" ]
          ~doc:
            "Also record the causal event DAG and write \
             $(i,DIR)/trace.perfetto.json for ui.perfetto.dev \
             (simulated-time, one process per engine, one thread per \
             subsystem, recovery critical path overlaid).")
  in
  let run scenario kind out perfetto =
    if perfetto then begin
      Causal.Recorder.reset ();
      Causal.Recorder.attach ()
    end;
    run_traced_scenario scenario kind;
    if perfetto then Causal.Recorder.detach ();
    Format.printf "Causal spans (simulated time):@.@.%a@." Telemetry.Span.pp_tree
      ();
    Format.printf "Events: %d buffered@."
      (List.length (Telemetry.Bus.events ()));
    Telemetry.Control.export_dir out;
    Format.printf "Telemetry written to %s/ (spans.jsonl, events.jsonl, metrics.csv, metrics.json)@."
      out;
    if perfetto then begin
      let critical = critical_of_scenario scenario in
      let path = Filename.concat out "trace.perfetto.json" in
      Causal.Perfetto.write ?critical path;
      Format.printf "Perfetto trace written to %s (%d events%s)@." path
        (Causal.Recorder.node_count ())
        (if Option.is_some critical then ", critical path overlaid" else "")
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one scenario with telemetry on; print the causal span tree and \
          export spans/events as JSONL (plus a Perfetto trace with \
          $(b,--perfetto)).")
    Term.(const run $ scenario $ kind_opt $ out_dir_opt $ perfetto)

(* --- metrics command ---------------------------------------------------------- *)

let metrics_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON.")
  in
  let no_run =
    Arg.(
      value & flag
      & info [ "no-run" ]
          ~doc:"List registered metrics without running a scenario.")
  in
  let run json no_run kind =
    if not no_run then run_traced_scenario "failover" kind;
    if json then print_endline (Telemetry.Registry.to_json ())
    else begin
      Format.printf "%-34s %-10s %12s %16s@." "name" "kind" "count" "sum/value";
      List.iter
        (fun m ->
          match m with
          | Telemetry.Registry.Counter (n, c) ->
              Format.printf "%-34s %-10s %12d %16s@." n "counter"
                (Telemetry.Registry.value c) ""
          | Telemetry.Registry.Gauge (n, g) ->
              Format.printf "%-34s %-10s %12s %16g@." n "gauge" ""
                (Telemetry.Registry.gauge_value g)
          | Telemetry.Registry.Histogram (n, h) ->
              Format.printf "%-34s %-10s %12d %16g@." n "histogram"
                (Telemetry.Registry.hist_count h)
                (Telemetry.Registry.hist_sum h))
        (Telemetry.Registry.all ());
      Format.printf "@.%d metrics registered.@."
        (List.length (Telemetry.Registry.all ()))
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Exercise one failover and print every registered metric (counters, \
          gauges, histograms).")
    Term.(const run $ json $ no_run $ kind_opt)

(* --- check / health commands -------------------------------------------------- *)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the health report as JSON.")

let check_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 string "failover"
      & info [] ~docv:"SCENARIO" ~doc:"failover | planned | split-brain")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Record the causal event DAG and a simulated-time metric \
             series during the checked run; write \
             $(i,DIR)/trace.perfetto.json and $(i,DIR)/timeseries.jsonl.")
  in
  let run scenario kind json trace_dir =
    let sampler =
      match trace_dir with
      | None -> None
      | Some _ ->
          Causal.Recorder.reset ();
          Causal.Recorder.attach ();
          (* Subscribers survive Control.reset, so attaching before the
             run observes the whole scenario. *)
          Some (Causal.Series.attach ())
    in
    let result = Tensor.Check.run ~kind scenario in
    if Option.is_some trace_dir then Causal.Recorder.detach ();
    Option.iter Causal.Series.detach sampler;
    match result with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    | Ok report ->
        (match (trace_dir, sampler) with
        | Some dir, Some s ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let perfetto = Filename.concat dir "trace.perfetto.json" in
            Causal.Perfetto.write
              ?critical:report.Monitor.Health.critical_path perfetto;
            Causal.Series.write s (Filename.concat dir "timeseries.jsonl");
            Format.printf
              "Trace artifacts written to %s/ (trace.perfetto.json: %d \
               events; timeseries.jsonl: %d samples)@."
              dir
              (Causal.Recorder.node_count ())
              (Causal.Series.sample_count s)
        | _ -> ());
        if json then print_endline (Monitor.Health.to_json report)
        else print_string (Monitor.Health.to_text report);
        if not (Monitor.Health.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run one scenario with the runtime verifier attached: every NSR \
          invariant (no peer-visible reset, stream continuity, held-ACK \
          safety, BFD bound, RIB convergence, split-brain exclusion, flap \
          absence, queue drain) is checked live against the telemetry bus. \
          Non-zero exit on any violation or SLO miss.")
    Term.(const run $ scenario $ kind_opt $ json_flag $ trace_dir)

let health_cmd =
  let run json =
    let reports =
      List.filter_map
        (fun s -> match Tensor.Check.run s with Ok r -> Some r | Error _ -> None)
        Tensor.Check.scenarios
    in
    if json then
      print_endline
        ("[" ^ String.concat "," (List.map Monitor.Health.to_json reports) ^ "]")
    else
      List.iter (fun r -> print_string (Monitor.Health.to_text r)) reports;
    if not (List.for_all Monitor.Health.ok reports) then exit 1
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run every checked scenario and report aggregate invariant/SLO \
          health. Non-zero exit if any scenario is unhealthy.")
    Term.(const run $ json_flag)

(* --- causal command ----------------------------------------------------------- *)

let causal_cmd =
  let scenario =
    Arg.(
      value
      & pos 0 string "failover"
      & info [] ~docv:"SCENARIO" ~doc:"failover | planned | split-brain")
  in
  let from_label =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"LABEL"
          ~doc:
            "Truncate the causal walk at the first ancestor whose label \
             matches (exact or dotted prefix, e.g. $(b,bfd) matches \
             $(b,bfd.detect)).")
  in
  let to_label =
    Arg.(
      value
      & opt (some string) None
      & info [ "to" ] ~docv:"LABEL"
          ~doc:
            "Re-anchor the path endpoint at the last in-window event \
             whose label matches, instead of the event that closed the \
             span.")
  in
  let run scenario kind from_label to_label json =
    (match Tensor.Check.root_span scenario with
    | Some _ -> ()
    | None ->
        Printf.eprintf
          "scenario %S records no recovery root span (try: failover | \
           planned | split-brain)\n"
          scenario;
        exit 2);
    Causal.Recorder.reset ();
    Causal.Recorder.attach ();
    let result = Tensor.Check.run ~kind scenario in
    Causal.Recorder.detach ();
    match result with
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    | Ok report ->
        let name = Option.get (Tensor.Check.root_span scenario) in
        (match Causal.Critical.of_span ?from_label ?to_label ~name () with
        | Error msg ->
            Printf.eprintf "critical path: %s\n" msg;
            exit 2
        | Ok cp ->
            if json then print_endline (Causal.Critical.to_json cp)
            else begin
              Format.printf
                "Recovery critical path of %S (%d traced events, %d on \
                 path):@.@."
                scenario
                (Causal.Recorder.node_count ())
                cp.Causal.Critical.events;
              print_string (Causal.Critical.to_text cp)
            end);
        if not (Monitor.Health.ok report) then begin
          Printf.eprintf "note: the checked run itself was UNHEALTHY\n";
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "causal"
       ~doc:
         "Run one checked scenario with the causal event recorder attached \
          and print the critical path of its recovery span: the handler \
          chain that bounded recovery, decomposed into per-label segments \
          whose durations sum exactly to the span duration. $(b,--from) / \
          $(b,--to) restrict the walk to a label window.")
    Term.(const run $ scenario $ kind_opt $ from_label $ to_label $ json_flag)

(* --- fuzz command ------------------------------------------------------------- *)

let fuzz_replay path =
  let replays =
    if Sys.is_directory path then Chaos.Corpus.replay_dir path
    else [ Chaos.Corpus.replay_file path ]
  in
  if replays = [] then print_endline (path ^ ": empty corpus, nothing to replay");
  let failed = ref 0 in
  List.iter
    (fun (r : Chaos.Corpus.replay) ->
      if Chaos.Corpus.replay_ok r then begin
        match r.outcome with
        | Some o ->
            Printf.printf "PASS %s (events=%d digest=%s)\n" r.name
              o.Chaos.Runner.events o.Chaos.Runner.digest
        | None -> ()
      end
      else begin
        incr failed;
        Printf.printf "FAIL %s\n" r.name;
        (match r.parse_error with
        | Some e -> Printf.printf "  parse error: %s\n" e
        | None -> ());
        (match r.outcome with
        | Some o ->
            if not r.deterministic then
              Printf.printf
                "  non-deterministic replay: digests differ across two runs\n";
            if not (Chaos.Runner.ok o) then print_string (Chaos.Runner.summary o)
        | None -> ())
      end)
    replays;
  Printf.printf "%d corpus entries replayed, %d failed\n" (List.length replays)
    !failed;
  if !failed > 0 then exit 1

let fuzz_descriptor line =
  match Chaos.Descriptor.of_string line with
  | Error e ->
      Printf.eprintf "bad descriptor: %s\n" e;
      exit 2
  | Ok d ->
      let o = Chaos.Runner.run d in
      print_string (Chaos.Runner.summary o);
      if not (Chaos.Runner.ok o) then exit 1

let fuzz_campaign ~runs ~seed ~shrink ~corpus ~jobs ~verbose =
  (* Progress arrives in run order whatever [jobs] is (Par.Pool delivers
     the contiguous completed prefix), so everything on stdout — verbose
     per-run lines with their digests included — is byte-identical from
     --jobs 1 to --jobs N. Pool accounting goes to stderr only. *)
  let progress i (o : Chaos.Runner.outcome) =
    if verbose then
      Printf.printf "run %d seed=%d %s events=%d digest=%s\n%!" i
        o.desc.Chaos.Descriptor.seed
        (if Chaos.Runner.ok o then "ok" else "FAIL")
        o.events o.digest
    else if (i + 1) mod 50 = 0 then Printf.printf "... %d runs\n%!" (i + 1)
  in
  let c =
    Chaos.Fuzz.run ~progress ~shrink
      ?corpus_dir:(if shrink then Some corpus else None)
      ~jobs ~runs ~seed ()
  in
  List.iter
    (fun (f : Chaos.Fuzz.failure) ->
      Printf.printf "\nFAILURE at run %d:\n%s" f.index
        (Chaos.Runner.summary f.outcome);
      (match f.shrunk with
      | Some r ->
          Printf.printf "shrunk (%d runs, %d faults removed):\n%s" r.runs_used
            r.removed_faults
            (Chaos.Runner.summary r.outcome)
      | None -> ());
      match f.saved with
      | Some path -> Printf.printf "repro written to %s\n" path
      | None -> ())
    c.Chaos.Fuzz.failures;
  Printf.printf "\n%d fuzz runs (campaign seed %d): %d failures, %d events checked\n"
    c.Chaos.Fuzz.runs seed
    (List.length c.Chaos.Fuzz.failures)
    c.Chaos.Fuzz.events_total;
  (if jobs > 1 then begin
     let st = c.Chaos.Fuzz.pool in
     Printf.eprintf "pool: %d domains, %.2fs elapsed, %.2fx speedup\n" st.jobs
       st.elapsed_s (Par.Pool.speedup st);
     List.iter
       (fun (d : Par.Pool.domain_stat) ->
         Printf.eprintf
           "  domain %d: %d runs, %.2fs busy, %d sim events (%.0f ev/s)\n"
           d.domain_index d.tasks d.busy_s d.sim_events
           (if d.busy_s > 0.0 then float_of_int d.sim_events /. d.busy_s
            else 0.0))
       st.domains
   end);
  if not (Chaos.Fuzz.campaign_ok c) then exit 1

let fuzz_cmd =
  let runs =
    Arg.(value & opt int 100 & info [ "runs"; "n" ] ~doc:"Number of fuzz runs.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed"; "s" ] ~doc:"Campaign seed.")
  in
  let corpus =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Directory shrunk repros are written to (with $(b,--shrink)).")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize each failure and write the repro to the corpus dir.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "Replay a corpus entry (or every entry of a directory) twice, \
             verifying zero violations and digest-identical telemetry, \
             instead of fuzzing.")
  in
  let descriptor =
    Arg.(
      value
      & opt (some string) None
      & info [ "descriptor" ] ~docv:"LINE"
          ~doc:"Run one literal descriptor line and print its outcome.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-run progress.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Run the campaign on $(docv) OCaml domains. Output (summary, \
             per-run digests, shrunk repros) is byte-identical to \
             $(b,--jobs 1); only wall time changes. Pool accounting is \
             printed to stderr.")
  in
  let run runs seed corpus shrink replay descriptor jobs verbose =
    match (replay, descriptor) with
    | Some path, _ -> fuzz_replay path
    | None, Some line -> fuzz_descriptor line
    | None, None -> fuzz_campaign ~runs ~seed ~shrink ~corpus ~jobs ~verbose
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Seeded chaos fuzzing: randomized topologies and fault schedules \
          (kills, planned switchovers, link flaps, loss bursts, BFD timer \
          perturbation, peer RST/Cease) executed under every NSR invariant \
          checker plus end-state RIB digests. Failures shrink to a one-line \
          replayable descriptor. Non-zero exit on any violation.")
    Term.(
      const run $ runs $ seed $ corpus $ shrink $ replay $ descriptor $ jobs
      $ verbose)

(* --- profile command ---------------------------------------------------------- *)

let profile_cmd =
  let experiment =
    Arg.(
      value
      & pos 0 string "fig5a"
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see $(b,list)).")
  in
  let out =
    Arg.(
      value
      & opt string "profile-out"
      & info [ "out"; "o" ] ~docv:"DIR"
          ~doc:"Directory for folded-stack and speedscope output.")
  in
  let top =
    Arg.(
      value & opt int 15
      & info [ "top"; "k" ] ~docv:"K" ~doc:"Rows in the handler cost table.")
  in
  let run experiment out top quick =
    if not (List.mem experiment experiment_ids) then begin
      Printf.eprintf "unknown experiment %S; known: %s\n" experiment
        (String.concat " " experiment_ids);
      exit 2
    end;
    Telemetry.Control.reset ();
    Telemetry.Control.set_enabled true;
    Prof.Profiler.attach ();
    run_experiment ~quick experiment;
    Prof.Profiler.detach ();
    Telemetry.Control.set_enabled false;
    let total_ev = Prof.Profiler.total_events () in
    if total_ev = 0 then
      Printf.printf
        "\n(%s dispatched no engine events — nothing to profile; the folded \
         output below is span-only)\n"
        experiment
    else begin
      let total_wall = Prof.Profiler.total_wall_s () in
      let total_alloc = Prof.Profiler.total_alloc_bytes () in
      Printf.printf
        "\nEngine cost, top %d of %d labels by wall time (%d events, %.3fs \
         wall, %.1f MB allocated, %d minor / %d major GCs):\n\n"
        top
        (List.length (Prof.Profiler.stats ()))
        total_ev total_wall (total_alloc /. 1e6)
        (Prof.Profiler.total_minor_gcs ())
        (Prof.Profiler.total_major_gcs ());
      Printf.printf "%-18s %10s %10s %6s %12s %12s %12s\n" "label" "events"
        "wall ms" "%" "bytes/event" "dwell avg" "dwell max";
      List.iter
        (fun (st : Prof.Profiler.stat) ->
          Printf.printf "%-18s %10d %10.3f %5.1f%% %12.0f %11.3fs %11.3fs\n"
            st.label st.events (st.wall_s *. 1e3)
            (if total_wall > 1e-9 then 100.0 *. st.wall_s /. total_wall
             else 0.0)
            (st.alloc_bytes /. float_of_int (max 1 st.events))
            (st.dwell_s /. float_of_int (max 1 st.events))
            st.dwell_max_s)
        (Prof.Profiler.top ~by:Prof.Profiler.By_wall top)
    end;
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    Prof.Export.write_folded
      (Filename.concat out "engine.folded")
      (Prof.Export.folded_wall ());
    Prof.Export.write_folded
      (Filename.concat out "engine_allocs.folded")
      (Prof.Export.folded_alloc ());
    Prof.Export.write_folded
      (Filename.concat out "spans.folded")
      (Prof.Export.folded_spans ());
    Prof.Export.write_speedscope
      ~name:("tensor " ^ experiment)
      (Filename.concat out "profile.speedscope.json");
    Printf.printf
      "\nProfiles written to %s/: engine.folded, engine_allocs.folded, \
       spans.folded (flamegraph.pl input), profile.speedscope.json \
       (speedscope.app)\n"
      out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment with the engine profiler attached: per-label \
          wall time, allocation, GC and queue-dwell attribution, exported \
          as folded stacks (flamegraph.pl) and speedscope JSON. The \
          profiler observes dispatch only — simulated results and replay \
          digests are identical with it on or off.")
    Term.(const run $ experiment $ out $ top $ quick_flag)

(* --- fleet command ----------------------------------------------------------- *)

let fleet_spec ~hosts ~regions ~instances ~seed ~campaign ~window ~ctrl_delay =
  match Chaos.Descriptor.faults_of_string campaign with
  | Error e ->
      Printf.eprintf "bad campaign: %s\n" e;
      exit 2
  | Ok faults -> (
      match Fleet.Campaign.check_faults faults with
      | Error e ->
          Printf.eprintf "bad campaign: %s\n" e;
          exit 2
      | Ok () ->
          {
            Fleet.Campaign.default_spec with
            Fleet.Campaign.hosts;
            regions;
            instances;
            seed;
            faults;
            window_ms =
              (if window > 0 then window
               else Fleet.Campaign.default_spec.Fleet.Campaign.window_ms);
            ctrl_delay_us = ctrl_delay;
          })

let write_slo_report path (o : Fleet.Campaign.outcome) =
  let oc = open_out path in
  output_string oc (Fleet.Slo.to_json o.Fleet.Campaign.slo);
  output_char oc '\n';
  close_out oc;
  Printf.printf "SLO report written to %s\n" path

let fleet_dump_events path =
  (* Valid for --jobs 1 only: the bus is domain-local, and with one job
     the campaign ran on this domain, so its buffers are still here. *)
  let buf = Buffer.create 262_144 in
  Telemetry.Bus.to_jsonl buf;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "telemetry written to %s\n" path

let fleet_replicated spec ~jobs ~json ~slo_out ~events_out =
  (* [--jobs N] runs N replicas of the same campaign across N domains
     and demands byte-identical replay digests — the determinism the
     nightly job asserts. Each replica is self-contained (domain-local
     telemetry), so a digest split is a real nondeterminism bug. *)
  let runs = max 1 jobs in
  let results, _ =
    Par.Pool.run ~jobs runs (fun _ -> Fleet.Campaign.run spec)
  in
  let o = results.(0) in
  let split =
    Array.exists
      (fun (r : Fleet.Campaign.outcome) ->
        not (String.equal r.Fleet.Campaign.digest o.Fleet.Campaign.digest))
      results
  in
  if json then print_endline (Fleet.Slo.to_json o.Fleet.Campaign.slo)
  else print_string (Fleet.Campaign.summary o);
  if runs > 1 then
    if split then
      Array.iteri
        (fun i (r : Fleet.Campaign.outcome) ->
          Printf.printf "DIGEST MISMATCH: replica %d digest=%s\n" i
            r.Fleet.Campaign.digest)
        results
    else
      Printf.printf "%d replicas on %d domains: digests identical\n" runs jobs;
  Option.iter (fun path -> write_slo_report path o) slo_out;
  Option.iter
    (fun path ->
      if jobs <= 1 then fleet_dump_events path
      else Printf.eprintf "--events-out requires --jobs 1; skipped\n")
    events_out;
  if split || not (Fleet.Campaign.ok o) then exit 1

let fleet_sweep spec ~jobs ~json =
  (* Controller-centralization sweep: the same campaign under per-host,
     regional and global controller placement (uplink delay), reporting
     convergence and the failover-time distribution. *)
  let variants =
    [| ("per-host", 50); ("regional", 500); ("global", 5_000) |]
  in
  let results, _ =
    Par.Pool.run ~jobs (Array.length variants) (fun i ->
        Fleet.Campaign.run
          { spec with Fleet.Campaign.ctrl_delay_us = snd variants.(i) })
  in
  if json then begin
    print_string "[";
    Array.iteri
      (fun i (o : Fleet.Campaign.outcome) ->
        if i > 0 then print_string ",";
        Printf.printf
          "{\"controller\":%S,\"ctrl_delay_us\":%d,\"convergence_s\":%.3f,\
           \"digest\":%S,\"pass\":%b,\"slo\":%s}"
          (fst variants.(i))
          (snd variants.(i))
          o.Fleet.Campaign.convergence_s o.Fleet.Campaign.digest
          (Fleet.Campaign.ok o)
          (Fleet.Slo.to_json o.Fleet.Campaign.slo))
      results;
    print_endline "]"
  end
  else
    Array.iteri
      (fun i (o : Fleet.Campaign.outcome) ->
        let fo = o.Fleet.Campaign.slo.Fleet.Slo.failover_s in
        Printf.printf
          "%-9s ctrl=%5dus convergence=%6.2fs failover p95=%.3fs max=%.3fs \
           %s digest=%s\n"
          (fst variants.(i))
          (snd variants.(i))
          o.Fleet.Campaign.convergence_s
          (Fleet.Slo.percentile fo 0.95)
          (Fleet.Slo.percentile fo 1.0)
          (if Fleet.Campaign.ok o then "PASS" else "FAIL")
          o.Fleet.Campaign.digest)
      results;
  if Array.exists (fun o -> not (Fleet.Campaign.ok o)) results then exit 1

let fleet_cmd =
  let hosts =
    Arg.(value & opt int 8 & info [ "hosts" ] ~doc:"Host machines in the fleet.")
  in
  let regions =
    Arg.(value & opt int 2 & info [ "regions" ] ~doc:"Regions (each with its own store).")
  in
  let instances =
    Arg.(
      value & opt int 20
      & info [ "instances"; "n" ]
          ~doc:"TENSOR instances (rounded up to replica pairs).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed"; "s" ] ~doc:"Engine seed.")
  in
  let campaign =
    Arg.(
      value
      & opt string Fleet.Campaign.default_campaign
      & info [ "campaign" ] ~docv:"TOKENS"
          ~doc:
            "Comma-separated fault tokens (chaos grammar): \
             $(b,host_kill\\@T), $(b,region_store_outage\\@T+D), \
             $(b,rolling_upgrade\\@T:K), $(b,kill.*\\@T), $(b,planned\\@T). \
             $(b,-) is the empty schedule.")
  in
  let window =
    Arg.(
      value & opt int 0
      & info [ "window" ] ~docv:"MS"
          ~doc:"Minimum fault window (auto-sized to fit the schedule).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Without $(b,--sweep): run $(docv) replicas of the campaign on \
             $(docv) domains and assert byte-identical digests. With \
             $(b,--sweep): parallelize the sweep variants.")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Controller-centralization sweep: per-host / regional / global \
             controller placement, reporting convergence and failover \
             distribution per variant.")
  in
  let ctrl_delay =
    Arg.(
      value & opt int 500
      & info [ "ctrl-delay" ] ~docv:"US"
          ~doc:"Controller uplink one-way delay in microseconds.")
  in
  let slo_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"PATH" ~doc:"Write the SLO report JSON here.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the SLO report as JSON.")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events-out" ] ~docv:"PATH"
          ~doc:"Write the run's telemetry JSONL here (requires --jobs 1).")
  in
  let run hosts regions instances seed campaign window jobs sweep ctrl_delay
      slo_out json events_out =
    let spec =
      fleet_spec ~hosts ~regions ~instances ~seed ~campaign ~window ~ctrl_delay
    in
    if sweep then fleet_sweep spec ~jobs ~json
    else fleet_replicated spec ~jobs ~json ~slo_out ~events_out
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale fault campaigns: hundreds of TENSOR instances across \
          regions under correlated host kills, regional store outages and \
          bounded-concurrency rolling upgrades, verified by all ten runtime \
          checkers (including $(b,fleet_slo)) with a fleet-wide SLO report. \
          Replays are byte-identical across $(b,--jobs) settings.")
    Term.(
      const run $ hosts $ regions $ instances $ seed $ campaign $ window
      $ jobs $ sweep $ ctrl_delay $ slo_out $ json $ events_out)

(* --- list command ------------------------------------------------------------ *)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List experiment ids.")
    Term.(const (fun () -> List.iter print_endline experiment_ids) $ const ())

let () =
  let doc = "TENSOR (SIGCOMM '23) reproduction toolkit" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "tensor-cli" ~version:"1.0.0" ~doc)
          [ experiment_cmd; failover_cmd; trace_cmd; metrics_cmd; cdf_cmd;
            check_cmd; health_cmd; causal_cmd; fuzz_cmd; fleet_cmd;
            profile_cmd; list_cmd ]))
