(* tensor-lint: the repo's determinism & protocol-safety linter.

     tensor-lint                         # lint lib/ bin/ bench/ examples/
     tensor-lint --json lib/bgp          # machine-readable report
     tensor-lint --baseline FILE PATHS   # fail only on NEW findings
     tensor-lint --update-baseline FILE  # rewrite the baseline from HEAD
     tensor-lint --list-passes           # pass catalogue

   Exit status: 0 clean, 1 new findings, 2 usage or I/O error. *)

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "tensor-lint [--json] [--baseline FILE] [--update-baseline FILE] \
   [--list-passes] [PATHS...]"

let () =
  let json = ref false in
  let baseline = ref None in
  let update_baseline = ref None in
  let list_passes = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " Emit a JSON report on stdout");
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE Fail only on findings absent from FILE" );
      ( "--update-baseline",
        Arg.String (fun f -> update_baseline := Some f),
        "FILE Write the current findings to FILE and exit 0" );
      ("--list-passes", Arg.Set list_passes, " Print the pass catalogue");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  if !list_passes then begin
    List.iter
      (fun (p : Lint.Pass.t) ->
        Printf.printf "%-4s %-7s %s\n" p.name
          (Lint.Finding.severity_to_string p.severity)
          p.doc)
      Lint.Driver.passes;
    Printf.printf "%-4s %-7s %s\n" Lint.Suppress.meta_pass "error"
      "meta: malformed, reasonless, unknown-pass or unused suppressions";
    Printf.printf "%-4s %-7s %s\n" "parse" "error"
      "meta: files must parse (not suppressible)";
    exit 0
  end;
  let paths = if !paths = [] then default_paths else List.rev !paths in
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
      Printf.eprintf "tensor-lint: no such path: %s\n"
        (String.concat ", " missing);
      exit 2);
  let report = Lint.Driver.run ~paths in
  let new_findings =
    match !baseline with
    | None -> report.findings
    | Some file -> (
        match Lint.Baseline.load file with
        | Ok entries -> Lint.Baseline.diff entries report.findings
        | Error e ->
            Printf.eprintf "tensor-lint: bad baseline: %s\n" e;
            exit 2)
  in
  (match !update_baseline with
  | Some file ->
      let oc = open_out_bin file in
      output_string oc (Lint.Driver.to_json report ~new_findings);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "tensor-lint: wrote %d finding(s) to %s\n"
        (List.length report.findings)
        file;
      exit 0
  | None -> ());
  print_endline
    (if !json then Lint.Driver.to_json report ~new_findings
     else Lint.Driver.to_text report ~new_findings);
  exit (if new_findings = [] then 0 else 1)
