(* tensor-lint: the repo's determinism & protocol-safety linter.

     tensor-lint                         # lint lib/ bin/ bench/ examples/
     tensor-lint --jobs 4                # fan the per-file scan over domains
     tensor-lint --json lib/bgp          # machine-readable report
     tensor-lint --baseline FILE PATHS   # fail only on NEW findings
     tensor-lint --update-baseline FILE  # rewrite the baseline from HEAD
     tensor-lint --github                # ::error/::warning annotations too
     tensor-lint --list-passes           # pass catalogue
     tensor-lint --explain h1            # rationale, example, suppression

   Exit status: 0 clean, 1 new findings, 2 usage or I/O error. *)

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]

let usage =
  "tensor-lint [--jobs N] [--json] [--github] [--baseline FILE] \
   [--update-baseline FILE] [--list-passes] [--explain PASS] [PATHS...]"

let () =
  let json = ref false in
  let github = ref false in
  let jobs = ref 1 in
  let baseline = ref None in
  let update_baseline = ref None in
  let list_passes = ref false in
  let explain = ref None in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " Emit a JSON report on stdout");
      ( "--github",
        Arg.Set github,
        " Also emit GitHub ::error/::warning annotations for new findings" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N Scan files on N domains (deterministic merge; default 1)" );
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE Fail only on findings absent from FILE" );
      ( "--update-baseline",
        Arg.String (fun f -> update_baseline := Some f),
        "FILE Write the current findings to FILE and exit 0" );
      ("--list-passes", Arg.Set list_passes, " Print the pass catalogue");
      ( "--explain",
        Arg.String (fun p -> explain := Some p),
        "PASS Print the pass's rationale, a minimal example and the \
         suppression grammar" );
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  (match !explain with
  | Some name -> (
      match Lint.Driver.explain name with
      | Some text ->
          print_endline text;
          exit 0
      | None ->
          Printf.eprintf "tensor-lint: unknown pass %S; try --list-passes\n"
            name;
          exit 2)
  | None -> ());
  if !list_passes then begin
    List.iter
      (fun (p : Lint.Pass.t) ->
        Printf.printf "%-4s %-7s %s%s\n" p.name
          (Lint.Finding.severity_to_string p.severity)
          p.doc
          (if p.graph_check <> None then " [call-graph]" else ""))
      Lint.Driver.passes;
    Printf.printf "%-4s %-7s %s\n" Lint.Suppress.meta_pass "error"
      "meta: malformed, reasonless, unknown-pass or unused suppressions";
    Printf.printf "%-4s %-7s %s\n" "parse" "error"
      "meta: files must parse (not suppressible)";
    exit 0
  end;
  let paths = if !paths = [] then default_paths else List.rev !paths in
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
      Printf.eprintf "tensor-lint: no such path: %s\n"
        (String.concat ", " missing);
      exit 2);
  let report = Lint.Driver.run ~jobs:!jobs ~paths () in
  let new_findings =
    match !baseline with
    | None -> report.findings
    | Some file -> (
        match Lint.Baseline.load file with
        | Ok entries -> Lint.Baseline.diff entries report.findings
        | Error e ->
            Printf.eprintf "tensor-lint: bad baseline: %s\n" e;
            exit 2)
  in
  (match !update_baseline with
  | Some file ->
      let oc = open_out_bin file in
      output_string oc (Lint.Driver.to_json report ~new_findings);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "tensor-lint: wrote %d finding(s) to %s\n"
        (List.length report.findings)
        file;
      exit 0
  | None -> ());
  print_endline
    (if !json then Lint.Driver.to_json report ~new_findings
     else Lint.Driver.to_text report ~new_findings);
  if !github && new_findings <> [] then
    print_endline (Lint.Driver.to_github ~new_findings);
  exit (if new_findings = [] then 0 else 1)
