(* Fleet-scale fault campaigns: correlated kills, regional store
   outages and rolling upgrades stay green under all ten checkers; the
   seeded wave-bound fault trips fleet_slo exactly (mutation testing);
   and campaign replay digests are byte-identical across domains. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let faults_of s =
  match Chaos.Descriptor.faults_of_string s with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "faults_of_string %S: %s" s e

let spec ?(instances = 8) ?(regions = 2) ?(hosts = 6) campaign =
  {
    Fleet.Campaign.default_spec with
    Fleet.Campaign.instances;
    regions;
    hosts;
    faults = faults_of campaign;
    window_ms = 30_000;
    settle_ms = 8_000;
  }

let assert_green (o : Fleet.Campaign.outcome) =
  List.iter
    (fun (e : string) -> Alcotest.failf "campaign error: %s" e)
    o.Fleet.Campaign.errors;
  List.iter
    (fun (v : Monitor.Checker.violation) ->
      Alcotest.failf "campaign violation: %s: %s" v.Monitor.Checker.checker
        v.Monitor.Checker.detail)
    o.Fleet.Campaign.violations

(* --- Correlated faults ------------------------------------------------------- *)

let test_host_kill_green () =
  let o = Fleet.Campaign.run (spec "host_kill@5000") in
  assert_green o;
  checki "ten checkers armed" 10 (List.length o.Fleet.Campaign.checkers);
  (* The busiest host carries two co-located instances: both must fail
     over, and no region may lose all replicas of a service. *)
  checki "correlated failovers" 2
    (List.length o.Fleet.Campaign.slo.Fleet.Slo.failover_s)

let test_region_store_outage_sheds_and_rearms () =
  let o = Fleet.Campaign.run (spec "region_store_outage@5000+8000") in
  assert_green o;
  let rows = o.Fleet.Campaign.slo.Fleet.Slo.region_rows in
  checki "two regions" 2 (List.length rows);
  let hit =
    List.filter (fun r -> r.Fleet.Slo.rr_degraded_total > 0) rows
  in
  (* Exactly one region sheds — and every instance in it, together. *)
  checki "one region degraded" 1 (List.length hit);
  let r = List.hd hit in
  checki "whole region shed together" r.Fleet.Slo.rr_instances
    r.Fleet.Slo.rr_degraded_peak;
  checki "all re-armed after heal" 0 r.Fleet.Slo.rr_degraded_now

let test_rolling_upgrade_bounded () =
  let o = Fleet.Campaign.run (spec "rolling_upgrade@3000:2") in
  assert_green o;
  let s = o.Fleet.Campaign.slo in
  checki "every instance upgraded" 8 s.Fleet.Slo.upgrades_done;
  checki "started = done" s.Fleet.Slo.upgrades_started
    s.Fleet.Slo.upgrades_done;
  checkb "wave bound respected" true (s.Fleet.Slo.upgrade_inflight_peak <= 2)

let test_combined_campaign_green () =
  let o =
    Fleet.Campaign.run
      (spec ~instances:12 ~hosts:8 Fleet.Campaign.default_campaign)
  in
  assert_green o;
  checkb "events flowed" true (o.Fleet.Campaign.events > 0)

(* --- Mutation: the wave-bound checker is not vacuously green ----------------- *)

let test_exceed_wave_bound_trips_fleet_slo () =
  let o =
    Monitor.Faults.with_fault Monitor.Faults.exceed_wave_bound (fun () ->
        Fleet.Campaign.run (spec "rolling_upgrade@3000:2"))
  in
  match o.Fleet.Campaign.violations with
  | [] -> Alcotest.fail "seeded wave-bound overrun went undetected"
  | vs ->
      List.iter
        (fun (v : Monitor.Checker.violation) ->
          checks "only fleet_slo trips" "fleet_slo" v.Monitor.Checker.checker)
        vs

(* --- Replay determinism ------------------------------------------------------ *)

let test_digest_stable_across_runs () =
  let s = spec Fleet.Campaign.default_campaign in
  let o1 = Fleet.Campaign.run s in
  let o2 = Fleet.Campaign.run s in
  assert_green o1;
  checks "same spec, same digest" o1.Fleet.Campaign.digest
    o2.Fleet.Campaign.digest

let test_digest_identical_across_jobs () =
  let s = spec Fleet.Campaign.default_campaign in
  let inline = (Fleet.Campaign.run s).Fleet.Campaign.digest in
  let results, _ =
    Par.Pool.run ~jobs:2 2 (fun _ ->
        (Fleet.Campaign.run s).Fleet.Campaign.digest)
  in
  Array.iter (checks "domain digest matches inline" inline) results

(* --- Spec hygiene ------------------------------------------------------------ *)

let test_rejects_non_fleet_tokens () =
  match Fleet.Campaign.check_faults (faults_of "flap.0@1000+200") with
  | Ok () -> Alcotest.fail "flap has no fleet semantics and must be rejected"
  | Error _ -> ()

let test_instances_normalized_to_pairs () =
  checki "rounded up to replica pairs" 10 (Fleet.Topology.normalize_instances 9);
  checki "minimum one service" 2 (Fleet.Topology.normalize_instances 1)

let () =
  Alcotest.run "fleet"
    [
      ( "campaign",
        [
          Alcotest.test_case "host kill is correlated and green" `Quick
            test_host_kill_green;
          Alcotest.test_case "region outage sheds and re-arms together" `Quick
            test_region_store_outage_sheds_and_rearms;
          Alcotest.test_case "rolling upgrade bounded and complete" `Quick
            test_rolling_upgrade_bounded;
          Alcotest.test_case "stock combined campaign green" `Quick
            test_combined_campaign_green;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "seeded wave overrun trips fleet_slo" `Quick
            test_exceed_wave_bound_trips_fleet_slo;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "digest stable across runs" `Quick
            test_digest_stable_across_runs;
          Alcotest.test_case "digest identical across --jobs" `Quick
            test_digest_identical_across_jobs;
        ] );
      ( "spec",
        [
          Alcotest.test_case "non-fleet tokens rejected" `Quick
            test_rejects_non_fleet_tokens;
          Alcotest.test_case "instances normalize to replica pairs" `Quick
            test_instances_normalized_to_pairs;
        ] );
    ]
