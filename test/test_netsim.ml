(* Tests for addresses, links, nodes, topology and RPC. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- Addr -------------------------------------------------------------- *)

let test_addr_roundtrip () =
  let a = Addr.of_string "192.168.1.42" in
  checks "roundtrip" "192.168.1.42" (Addr.to_string a);
  checki "int value" 0xC0A8012A (Addr.to_int a)

let test_addr_of_octets () =
  checks "octets" "10.0.255.1" (Addr.to_string (Addr.of_octets 10 0 255 1))

let test_addr_malformed () =
  List.iter
    (fun s ->
      Alcotest.check_raises "rejects" (Invalid_argument "bad") (fun () ->
          try ignore (Addr.of_string s)
          with Invalid_argument _ -> raise (Invalid_argument "bad")))
    [ "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; ""; "1.2.3.-4" ]

let test_addr_succ_offset () =
  let a = Addr.of_string "10.0.0.255" in
  checks "succ crosses octet" "10.0.1.0" (Addr.to_string (Addr.succ a));
  checks "offset" "10.0.1.9" (Addr.to_string (Addr.offset a 10));
  let top = Addr.of_string "255.255.255.255" in
  checks "wraps" "0.0.0.0" (Addr.to_string (Addr.succ top))

let test_prefix_canonical () =
  let p = Addr.prefix (Addr.of_string "10.1.2.3") 24 in
  checks "canonicalized" "10.1.2.0/24" (Addr.prefix_to_string p)

let test_prefix_contains () =
  let p = Addr.prefix_of_string "10.1.2.0/24" in
  checkb "inside" true (Addr.contains p (Addr.of_string "10.1.2.200"));
  checkb "outside" false (Addr.contains p (Addr.of_string "10.1.3.1"));
  let default = Addr.prefix_of_string "0.0.0.0/0" in
  checkb "default contains all" true
    (Addr.contains default (Addr.of_string "203.0.113.7"))

let test_prefix_subsumes () =
  let p16 = Addr.prefix_of_string "10.1.0.0/16" in
  let p24 = Addr.prefix_of_string "10.1.2.0/24" in
  checkb "wider subsumes narrower" true (Addr.subsumes p16 p24);
  checkb "narrower does not subsume" false (Addr.subsumes p24 p16);
  checkb "self subsumes" true (Addr.subsumes p24 p24)

let test_prefix_host_in () =
  let p = Addr.prefix_of_string "10.1.2.0/30" in
  checks "host 1" "10.1.2.1" (Addr.to_string (Addr.host_in p 1));
  checki "size" 4 (Addr.prefix_size p);
  Alcotest.check_raises "out of range" (Invalid_argument "oob") (fun () ->
      try ignore (Addr.host_in p 4)
      with Invalid_argument _ -> raise (Invalid_argument "oob"))

let test_prefix_bad_len () =
  Alcotest.check_raises "33 rejected" (Invalid_argument "len") (fun () ->
      try ignore (Addr.prefix (Addr.of_int 0) 33)
      with Invalid_argument _ -> raise (Invalid_argument "len"))

(* --- Link and Node ----------------------------------------------------- *)

let two_nodes ?delay ?bandwidth_bps ?loss () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  let link, addr_a, addr_b = Network.connect net ?delay ?bandwidth_bps ?loss a b in
  (eng, net, a, b, link, addr_a, addr_b)

let test_link_delivery () =
  let eng, _, a, b, _, addr_a, addr_b = two_nodes ~delay:(Time.ms 1) () in
  let got = ref None in
  Node.add_handler b (fun pkt ->
      got := Some (pkt.Packet.payload, Engine.now eng);
      true);
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:100 (Packet.Raw "hi"));
  Engine.run eng;
  match !got with
  | Some (Packet.Raw "hi", at) ->
      checkb "after propagation delay" true (at >= Time.ms 1)
  | _ -> Alcotest.fail "packet not delivered"

let test_link_serialization_delay () =
  (* 1 MB at 8 Mbps = 1 s of serialization + negligible propagation. *)
  let eng, _, a, b, _, addr_a, addr_b =
    two_nodes ~delay:(Time.us 1) ~bandwidth_bps:8_000_000 ()
  in
  let at = ref Time.zero in
  Node.add_handler b (fun _ ->
      at := Engine.now eng;
      true);
  Node.send a
    (Packet.make ~src:addr_a ~dst:addr_b ~size:1_000_000 (Packet.Raw "x"));
  Engine.run eng;
  checkb "~1s serialization" true (!at >= Time.sec 1 && !at < Time.ms 1100)

let test_link_queueing () =
  (* Two packets back-to-back serialize sequentially. *)
  let eng, _, a, b, _, addr_a, addr_b =
    two_nodes ~delay:(Time.us 1) ~bandwidth_bps:8_000_000 ()
  in
  let times = ref [] in
  Node.add_handler b (fun _ ->
      times := Engine.now eng :: !times;
      true);
  for _ = 1 to 2 do
    Node.send a
      (Packet.make ~src:addr_a ~dst:addr_b ~size:100_000 (Packet.Raw "x"))
  done;
  Engine.run eng;
  match List.rev !times with
  | [ t1; t2 ] ->
      (* Each packet takes 100 ms to serialize. *)
      checkb "first ~100ms" true (t1 >= Time.ms 100 && t1 < Time.ms 110);
      checkb "second ~200ms" true (t2 >= Time.ms 200 && t2 < Time.ms 210)
  | _ -> Alcotest.fail "expected two deliveries"

let test_link_down_drops () =
  let eng, _, a, b, link, addr_a, addr_b = two_nodes () in
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  Link.set_up link false;
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "dropped" 0 !got;
  checki "drop counted" 1 (Link.dropped_packets link);
  Link.set_up link true;
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "delivered after up" 1 !got

let test_link_failure_kills_in_flight () =
  let eng, _, a, b, link, addr_a, addr_b = two_nodes ~delay:(Time.ms 10) () in
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  (* Fail the link while the packet is propagating. *)
  ignore (Engine.schedule_after eng (Time.ms 5) (fun () -> Link.set_up link false));
  Engine.run eng;
  checki "in-flight packet lost" 0 !got

let test_link_fail_for () =
  let eng, _, a, b, link, addr_a, addr_b = two_nodes ~delay:(Time.us 10) () in
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  Link.fail_for link (Time.ms 100);
  ignore
    (Engine.schedule_after eng (Time.ms 50) (fun () ->
         Node.send a
           (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "during"))));
  ignore
    (Engine.schedule_after eng (Time.ms 150) (fun () ->
         Node.send a
           (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "after"))));
  Engine.run eng;
  checki "only post-recovery delivered" 1 !got;
  checkb "link back up" true (Link.is_up link)

let test_link_loss () =
  let eng, _, a, b, link, addr_a, addr_b = two_nodes ~loss:0.5 () in
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  for _ = 1 to 1000 do
    Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"))
  done;
  Engine.run eng;
  checkb "about half lost" true (!got > 350 && !got < 650);
  checki "conservation" 1000 (!got + Link.dropped_packets link)

let test_link_tap_and_stats () =
  let eng, _, a, b, link, addr_a, addr_b = two_nodes () in
  Node.add_handler b (fun _ -> true);
  let tapped = ref 0 in
  Link.tap link (fun _ _ -> incr tapped);
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:500 (Packet.Raw "x"));
  Engine.run eng;
  checki "tap fired" 1 !tapped;
  checki "tx" 1 (Link.tx_packets link);
  checki "delivered" 1 (Link.delivered_packets link);
  checki "bytes" 500 (Link.delivered_bytes link);
  checkb "last delivery set" true (Link.last_delivery link <> None)

let test_node_down_silently_drops () =
  let eng, _, a, b, _, addr_a, addr_b = two_nodes () in
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  Node.set_up b false;
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "down node drops rx" 0 !got;
  Node.set_up b true;
  Node.set_up a false;
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "down node drops tx" 0 !got

let test_node_loopback () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" in
  Node.add_address a (Addr.of_string "127.0.0.1");
  let got = ref 0 in
  Node.add_handler a (fun _ ->
      incr got;
      true);
  Node.send a
    (Packet.make ~src:(Addr.of_string "127.0.0.1")
       ~dst:(Addr.of_string "127.0.0.1") ~size:64 (Packet.Raw "x"));
  checki "not delivered reentrantly" 0 !got;
  Engine.run eng;
  checki "delivered via event" 1 !got

let test_forwarding_three_hop () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" in
  let r = Network.add_node net ~forwarding:true "r" in
  let b = Network.add_node net "b" in
  let _, _addr_a, addr_ra = Network.connect net a r in
  let _, addr_rb, addr_b = Network.connect net r b in
  (* a reaches b's subnet via r. *)
  Node.add_route a (Addr.prefix addr_b 24) addr_ra;
  ignore addr_rb;
  let got = ref 0 in
  Node.add_handler b (fun _ ->
      incr got;
      true);
  Node.send a
    (Packet.make ~src:(List.hd (Node.addresses a)) ~dst:addr_b ~size:64
       (Packet.Raw "x"));
  Engine.run eng;
  checki "forwarded" 1 !got

let test_no_route_counted () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" in
  Node.add_address a (Addr.of_string "1.1.1.1");
  Node.send a
    (Packet.make ~src:(Addr.of_string "1.1.1.1")
       ~dst:(Addr.of_string "9.9.9.9") ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "unrouted" 1 (Node.unrouted_packets a)

let test_longest_prefix_match () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" in
  let r1 = Network.add_node net ~forwarding:true "r1" in
  let r2 = Network.add_node net ~forwarding:true "r2" in
  let _, _, gw1 = Network.connect net a r1 in
  let _, _, gw2 = Network.connect net a r2 in
  let target = Addr.of_string "20.0.5.9" in
  (* Default via r1, but the /24 of the target via r2. *)
  Node.add_route a (Addr.prefix_of_string "0.0.0.0/0") gw1;
  Node.add_route a (Addr.prefix target 24) gw2;
  (* r2 owns the target so delivery succeeds there. *)
  Node.add_address r2 target;
  let got_r2 = ref 0 in
  Node.add_handler r2 (fun _ ->
      incr got_r2;
      true);
  Node.send a
    (Packet.make ~src:(List.hd (Node.addresses a)) ~dst:target ~size:64
       (Packet.Raw "x"));
  Engine.run eng;
  checki "specific route wins" 1 !got_r2

let test_unclaimed_counted () =
  let eng, _, a, b, _, addr_a, addr_b = two_nodes () in
  ignore a;
  Node.send a (Packet.make ~src:addr_a ~dst:addr_b ~size:64 (Packet.Raw "x"));
  Engine.run eng;
  checki "unclaimed" 1 (Node.unclaimed_packets b)

let test_network_registry () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let a = Network.add_node net "a" and b = Network.add_node net "b" in
  checkb "lookup" true (Network.node net "a" == a);
  checki "two nodes" 2 (List.length (Network.nodes net));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Network.add_node: duplicate name \"a\"") (fun () ->
      ignore (Network.add_node net "a"));
  let link, _, _ = Network.connect net a b in
  (match Network.link_between net b a with
  | Some l -> checkb "link_between" true (l == link)
  | None -> Alcotest.fail "link_between missing");
  checkb "no link to self" true (Network.link_between net a a = None)

(* --- RPC --------------------------------------------------------------- *)

type Rpc.body += Echo of string

let test_rpc_roundtrip () =
  let eng, _, a, b, _, _, addr_b = two_nodes ~delay:(Time.ms 1) () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve ep_b ~service:"echo" (fun ~src:_ body ~reply ->
      match body with
      | Echo s -> reply (Echo (s ^ s))
      | _ -> reply (Echo "?"));
  let result = ref None in
  Rpc.call ep_a ~dst:addr_b ~service:"echo" (Echo "ab") (fun r ->
      result := Some r);
  Engine.run eng;
  match !result with
  | Some (Ok (Echo "abab")) -> ()
  | _ -> Alcotest.fail "echo failed"

let test_rpc_timeout_on_dead_server () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a in
  Node.set_up b false;
  let result = ref None in
  Rpc.call ep_a ~timeout:(Time.ms 500) ~dst:addr_b ~service:"echo"
    (Echo "x") (fun r -> result := Some r);
  Engine.run eng;
  (match !result with
  | Some (Error `Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout");
  checkb "timed out at 500ms" true (Engine.now eng >= Time.ms 500)

let test_rpc_timeout_unknown_service () =
  let eng, _, a, _, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a in
  let result = ref None in
  Rpc.call ep_a ~timeout:(Time.ms 100) ~dst:addr_b ~service:"nope" (Echo "x")
    (fun r -> result := Some r);
  Engine.run eng;
  match !result with
  | Some (Error `Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_rpc_delayed_reply () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve ep_b ~service:"slow" (fun ~src:_ _ ~reply ->
      ignore
        (Engine.schedule_after eng (Time.ms 200) (fun () -> reply (Echo "late"))));
  let at = ref Time.zero in
  Rpc.call ep_a ~dst:addr_b ~service:"slow" (Echo "x") (fun _ ->
      at := Engine.now eng);
  Engine.run eng;
  checkb "reply after processing delay" true (!at >= Time.ms 200)

let test_rpc_ping () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve_ping ep_b ~service:"health";
  let ok = ref None in
  Rpc.ping ep_a ~dst:addr_b ~service:"health" (fun r -> ok := Some r);
  Engine.run eng;
  Alcotest.(check (option bool)) "pong" (Some true) !ok

let test_rpc_ping_down_host () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve_ping ep_b ~service:"health";
  Node.set_up b false;
  let ok = ref None in
  Rpc.ping ep_a ~timeout:(Time.ms 300) ~dst:addr_b ~service:"health" (fun r ->
      ok := Some r);
  Engine.run eng;
  Alcotest.(check (option bool)) "no pong" (Some false) !ok

let test_rpc_concurrent_calls () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve ep_b ~service:"echo" (fun ~src:_ body ~reply -> reply body);
  let got = ref [] in
  for i = 1 to 10 do
    Rpc.call ep_a ~dst:addr_b ~service:"echo" (Echo (string_of_int i))
      (function
      | Ok (Echo s) -> got := s :: !got
      | _ -> ())
  done;
  Engine.run eng;
  checki "all answered" 10 (List.length !got)

let test_rpc_unknown_service_counted () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  let r1 = ref None and r2 = ref None in
  Rpc.call ep_a ~timeout:(Time.ms 100) ~dst:addr_b ~service:"nope" (Echo "x")
    (fun r -> r1 := Some r);
  Rpc.call ep_a ~timeout:(Time.ms 100) ~dst:addr_b ~service:"nope" (Echo "y")
    (fun r -> r2 := Some r);
  Engine.run eng;
  (match (!r1, !r2) with
  | Some (Error `Timeout), Some (Error `Timeout) -> ()
  | _ -> Alcotest.fail "expected both calls to time out");
  Alcotest.(check (list (pair string int)))
    "drops counted per service" [ ("nope", 2) ]
    (Rpc.unknown_service_counts ep_b)

let test_rpc_retry_transient_outage () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a and ep_b = Rpc.endpoint b in
  Rpc.serve ep_b ~service:"echo" (fun ~src:_ body ~reply -> reply body);
  Node.set_up b false;
  ignore (Engine.schedule_after eng (Time.ms 300) (fun () -> Node.set_up b true));
  let got = ref None in
  (* Attempt 1 at t=0 times out at 100 ms; backoff 50 ms (±20%) puts
     attempt 2 around 150 ms, timing out around 250 ms; backoff 100 ms
     (±20%) lands attempt 3 past 300 ms, when [b] is back up. *)
  Rpc.call ep_a ~timeout:(Time.ms 100) ~retry:(Rpc.retry_policy ()) ~dst:addr_b
    ~service:"echo" (Echo "back") (fun r -> got := Some r);
  Engine.run eng;
  match !got with
  | Some (Ok (Echo "back")) -> ()
  | _ -> Alcotest.fail "expected a later attempt to succeed"

let test_rpc_retry_exhausted () =
  let eng, _, a, b, _, _, addr_b = two_nodes () in
  let ep_a = Rpc.endpoint a in
  Node.set_up b false;
  let got = ref None in
  Rpc.call ep_a ~timeout:(Time.ms 100) ~retry:(Rpc.retry_policy ()) ~dst:addr_b
    ~service:"echo" (Echo "x") (fun r -> got := Some r);
  Engine.run eng;
  match !got with
  | Some (Error (`Exhausted 3)) -> ()
  | _ -> Alcotest.fail "expected `Exhausted 3 after the budget is spent"

(* --- Properties -------------------------------------------------------- *)

let prop_prefix_contains_base =
  QCheck.Test.make ~name:"prefix contains its base and hosts" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range 8 32))
    (fun (raw, len) ->
      let p = Addr.prefix (Addr.of_int raw) len in
      Addr.contains p p.Addr.base
      &&
      let size = Addr.prefix_size p in
      let k = min (size - 1) 3 in
      Addr.contains p (Addr.host_in p k))

let prop_addr_string_roundtrip =
  QCheck.Test.make ~name:"addr to_string/of_string roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun raw ->
      let a = Addr.of_int raw in
      Addr.equal a (Addr.of_string (Addr.to_string a)))

let () =
  Alcotest.run "netsim"
    [
      ( "addr",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "of_octets" `Quick test_addr_of_octets;
          Alcotest.test_case "malformed rejected" `Quick test_addr_malformed;
          Alcotest.test_case "succ and offset" `Quick test_addr_succ_offset;
          Alcotest.test_case "prefix canonical" `Quick test_prefix_canonical;
          Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
          Alcotest.test_case "prefix subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "host_in" `Quick test_prefix_host_in;
          Alcotest.test_case "bad length" `Quick test_prefix_bad_len;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery" `Quick test_link_delivery;
          Alcotest.test_case "serialization delay" `Quick
            test_link_serialization_delay;
          Alcotest.test_case "queueing" `Quick test_link_queueing;
          Alcotest.test_case "down drops" `Quick test_link_down_drops;
          Alcotest.test_case "failure kills in-flight" `Quick
            test_link_failure_kills_in_flight;
          Alcotest.test_case "fail_for recovers" `Quick test_link_fail_for;
          Alcotest.test_case "random loss" `Quick test_link_loss;
          Alcotest.test_case "tap and stats" `Quick test_link_tap_and_stats;
        ] );
      ( "node",
        [
          Alcotest.test_case "down drops" `Quick test_node_down_silently_drops;
          Alcotest.test_case "loopback" `Quick test_node_loopback;
          Alcotest.test_case "forwarding" `Quick test_forwarding_three_hop;
          Alcotest.test_case "no route counted" `Quick test_no_route_counted;
          Alcotest.test_case "longest prefix match" `Quick
            test_longest_prefix_match;
          Alcotest.test_case "unclaimed counted" `Quick test_unclaimed_counted;
        ] );
      ( "network",
        [ Alcotest.test_case "registry" `Quick test_network_registry ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "timeout on dead server" `Quick
            test_rpc_timeout_on_dead_server;
          Alcotest.test_case "timeout on unknown service" `Quick
            test_rpc_timeout_unknown_service;
          Alcotest.test_case "delayed reply" `Quick test_rpc_delayed_reply;
          Alcotest.test_case "ping" `Quick test_rpc_ping;
          Alcotest.test_case "ping down host" `Quick test_rpc_ping_down_host;
          Alcotest.test_case "concurrent calls" `Quick
            test_rpc_concurrent_calls;
          Alcotest.test_case "unknown service counted" `Quick
            test_rpc_unknown_service_counted;
          Alcotest.test_case "retry survives transient outage" `Quick
            test_rpc_retry_transient_outage;
          Alcotest.test_case "retry budget exhausted" `Quick
            test_rpc_retry_exhausted;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prefix_contains_base; prop_addr_string_roundtrip ] );
    ]
