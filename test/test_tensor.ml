(* End-to-end tests for TENSOR: key codecs, the replication machinery's
   safety invariant (no ACK escapes before its message is durable), NSR
   migration across all Table 1 failure classes with zero link downtime,
   storage trimming, and the ablations. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let pfx s = Addr.prefix_of_string s
let vip1 = Addr.of_string "203.0.113.10"

(* --- Keys ------------------------------------------------------------------ *)

let sample_meta =
  {
    Tensor.Keys.epoch = 0;
    vrf = "v0";
    local_addr = vip1;
    local_port = 49152;
    peer_addr = Addr.of_string "198.51.100.7";
    peer_port = 179;
    local_asn = 64900;
    hold_time = 90;
    as4 = true;
    iss = 123456;
    irs = 654321;
    mss = 1460;
    rcv_wnd = 400_000;
    peer_open_raw =
      Bgp.Msg.encode
        (Bgp.Msg.Open
           {
             version = 4;
             asn = 65010;
             hold_time = 90;
             router_id = Addr.of_string "9.9.9.9";
             capabilities = [ Bgp.Msg.Cap_route_refresh ];
           });
    peer_supports_gr = true;
    peer_gr_restart_time = 120;
  }

let test_keys_meta_roundtrip () =
  match Tensor.Keys.decode_meta (Tensor.Keys.encode_meta sample_meta) with
  | Ok m -> checkb "meta roundtrip" true (m = sample_meta)
  | Error e -> Alcotest.failf "meta decode: %s" e

let test_keys_in_record_roundtrip () =
  let raw = Bgp.Msg.encode Bgp.Msg.Keepalive in
  match
    Tensor.Keys.decode_in_record (Tensor.Keys.encode_in_record ~ack:999 ~raw)
  with
  | Ok (ack, raw') -> checkb "in record" true (ack = 999 && raw' = raw)
  | Error e -> Alcotest.failf "in record decode: %s" e

let test_keys_rib_roundtrip () =
  let src =
    {
      Bgp.Rib.key = "v0/1.2.3.4";
      peer_asn = 65010;
      peer_addr = Addr.of_string "1.2.3.4";
      router_id = Addr.of_string "9.9.9.9";
      ebgp = true;
    }
  in
  let attrs =
    Bgp.Attrs.make
      ~as_path:[ Bgp.Attrs.Seq [ 65010; 7018 ] ]
      ~med:5
      ~communities:[ (65010, 300) ]
      ~next_hop:(Addr.of_string "1.2.3.4") ()
  in
  let p = pfx "100.1.2.0/24" in
  match
    Tensor.Keys.decode_rib_entry (Tensor.Keys.encode_rib_entry src p attrs)
  with
  | Ok (src', p', attrs') ->
      checkb "rib roundtrip" true
        (src' = src && Addr.equal_prefix p p' && Bgp.Attrs.equal attrs attrs')
  | Error e -> Alcotest.failf "rib decode: %s" e

let test_keys_parsers () =
  let cid = Tensor.Keys.conn_id ~service:"svc1" ~vrf:"v0" in
  checkb "in key parse" true
    (Tensor.Keys.seq_of_in_key cid (Tensor.Keys.in_key cid 42) = Some 42);
  checkb "out key parse" true
    (Tensor.Keys.offset_of_out_key cid (Tensor.Keys.out_key cid 1234) = Some 1234);
  let rk = Tensor.Keys.rib_key ~service:"svc1" ~vrf:"v0" (pfx "10.0.0.0/8") in
  match Tensor.Keys.vrf_prefix_of_rib_key ~service:"svc1" rk with
  | Some (vrf, p) ->
      checkb "rib key parse" true
        (vrf = "v0" && Addr.equal_prefix p (pfx "10.0.0.0/8"))
  | None -> Alcotest.fail "rib key parse"

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex/unhex roundtrip" ~count:200 QCheck.string
    (fun s -> Tensor.Keys.unhex (Tensor.Keys.hex s) = Ok s)

let prop_meta_roundtrip =
  QCheck.Test.make ~name:"meta roundtrip with arbitrary numbers" ~count:100
    QCheck.(quad (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 65535) bool)
    (fun (iss, irs, port, gr) ->
      let m =
        { sample_meta with Tensor.Keys.iss; irs; local_port = port;
          peer_supports_gr = gr }
      in
      Tensor.Keys.decode_meta (Tensor.Keys.encode_meta m) = Ok m)

(* --- Full deployment helpers ---------------------------------------------- *)

type world = {
  dep : Tensor.Deploy.t;
  peer : Tensor.Deploy.peer_as;
  peer_handle : Bgp.Speaker.peer;
  svc : Tensor.Deploy.service;
  peer_link : Link.t;
}

let make_world ?(replicate = true) ?(ack_hold = true) ?seed () =
  let dep = Tensor.Deploy.build ?seed () in
  let peer = Tensor.Deploy.add_peer_as dep ~asn:65010 "peerAS" in
  let peer_handle =
    Tensor.Deploy.peer_expects peer ~vrf:"v0" ~vip:vip1 ~local_asn:64900
  in
  let svc =
    Tensor.Deploy.deploy_service dep ~replicate ~ack_hold ~id:"svc1"
      ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v0" ~vip:vip1
          ~peer_addr:peer.Tensor.Deploy.pa_addr ~peer_asn:65010 ();
      ]
  in
  let peer_link =
    match Network.link_between dep.Tensor.Deploy.net dep.Tensor.Deploy.fabric
            peer.Tensor.Deploy.pa_node with
    | Some l -> l
    | None -> Alcotest.fail "no peer link"
  in
  { dep; peer; peer_handle; svc; peer_link }

let eng w = w.dep.Tensor.Deploy.eng

let establish w =
  checkb "service established" true
    (Tensor.Deploy.wait_established w.dep w.svc ());
  Engine.run_for (eng w) (Time.sec 2)

(* Watch the peer's view: session drops and RIB losses both count as
   downtime. *)
let watch_peer_continuity w =
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down w.peer_handle (fun _ -> incr drops);
  drops

let peer_rib w = Bgp.Speaker.rib w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"

(* --- Establishment and propagation ------------------------------------------ *)

let test_deployment_establishes () =
  let w = make_world () in
  establish w;
  checkb "peer side established" true
    (Bgp.Speaker.peer_state w.peer_handle = Bgp.Session.Established)

let test_routes_propagate_both_ways () =
  let w = make_world () in
  establish w;
  (* Peer announces; TENSOR announces. *)
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 100);
  (match Tensor.App.speaker (Tensor.Deploy.service_app w.svc) with
  | Some spk ->
      Bgp.Speaker.originate spk ~vrf:"v0"
        (Workload.Prefixes.distinct_from ~base:500_000 50)
  | None -> Alcotest.fail "no speaker");
  Engine.run_for (eng w) (Time.sec 10);
  checki "tensor learned peer routes" 100
    (Tensor.Deploy.service_routes w.svc ~vrf:"v0" - 50);
  checki "peer learned tensor routes" 50 (Bgp.Rib.size (peer_rib w) - 100)

let test_meta_written_to_store () =
  let w = make_world () in
  establish w;
  let cid = Tensor.Keys.conn_id ~service:"svc1" ~vrf:"v0" in
  checkb "meta record exists" true
    (Store.Server.peek w.dep.Tensor.Deploy.store_server
       (Tensor.Keys.meta_key cid)
    <> None);
  checkb "bfd record exists" true
    (Store.Server.peek w.dep.Tensor.Deploy.store_server
       (Tensor.Keys.bfd_key cid)
    <> None)

(* --- The NSR safety invariant ------------------------------------------------ *)

(* No TCP segment from the service may carry an ACK beyond the replicated
   watermark in the store. This is THE correctness property of §3.1.1. *)
let watch_ack_invariant w =
  let violations = ref 0 in
  let store = w.dep.Tensor.Deploy.store_server in
  let cid = Tensor.Keys.conn_id ~service:"svc1" ~vrf:"v0" in
  Link.tap w.peer_link (fun _side pkt ->
      match pkt.Packet.payload with
      | Tcp.Segment.Tcp seg
        when Addr.equal pkt.Packet.src vip1
             && seg.Tcp.Segment.flags.Tcp.Segment.ack ->
          let durable =
            match Store.Server.peek store (Tensor.Keys.ack_key cid) with
            | Some v -> ( match int_of_string_opt v with Some a -> a | None -> 0)
            | None -> max_int (* before establishment: no constraint *)
          in
          if seg.Tcp.Segment.ack > durable then incr violations
      | _ -> ());
  violations

let test_ack_never_precedes_replication () =
  let w = make_world () in
  let violations = watch_ack_invariant w in
  establish w;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 2_000);
  Engine.run_for (eng w) (Time.sec 20);
  checki "tensor learned the flood" 2_000
    (Tensor.Deploy.service_routes w.svc ~vrf:"v0");
  checki "zero watermark violations" 0 !violations

let test_ack_invariant_under_loss () =
  (* Packet loss forces retransmissions, duplicate ACKs and fast
     retransmits: the watermark discipline must hold through all of it. *)
  let w = make_world () in
  let violations = watch_ack_invariant w in
  establish w;
  Link.set_loss w.peer_link 0.01;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 5_000);
  Engine.run_for (eng w) (Time.minutes 2);
  Link.set_loss w.peer_link 0.0;
  Engine.run_for (eng w) (Time.sec 30);
  checki "flood learned despite loss" 5_000
    (Tensor.Deploy.service_routes w.svc ~vrf:"v0");
  checki "zero violations under loss" 0 !violations

let test_ablation_no_ack_hold_violates () =
  (* With the tcp_queue hold disabled, ACKs race ahead of replication:
     the consistency window the paper's design closes. *)
  let w = make_world ~ack_hold:false () in
  let violations = watch_ack_invariant w in
  establish w;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 2_000);
  Engine.run_for (eng w) (Time.sec 20);
  checkb "violations observed without the hold" true (!violations > 0)

let test_storage_bound_after_flood () =
  let w = make_world () in
  establish w;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 5_000);
  Engine.run_for (eng w) (Time.sec 30);
  (* Steady state: in| and out| queues drained; only meta/ack/rib and a
     few stragglers remain. *)
  let store = w.dep.Tensor.Deploy.store_server in
  let cid = Tensor.Keys.conn_id ~service:"svc1" ~vrf:"v0" in
  let in_keys = Store.Server.keys_with_prefix store (Tensor.Keys.in_prefix cid) in
  let out_keys = Store.Server.keys_with_prefix store (Tensor.Keys.out_prefix cid) in
  checkb
    (Printf.sprintf "in backlog small (%d)" (List.length in_keys))
    true
    (List.length in_keys <= 2);
  let out_bytes =
    List.fold_left
      (fun acc k ->
        acc
        + match Store.Server.peek store k with
          | Some v -> String.length v
          | None -> 0)
      0 out_keys
  in
  checkb
    (Printf.sprintf "out backlog under 64KB (%d B)" out_bytes)
    true (out_bytes < 64_000);
  (* The routing-table checkpoint covers the whole flood. *)
  let rib_keys =
    Store.Server.keys_with_prefix store (Tensor.Keys.rib_prefix ~service:"svc1")
  in
  checki "rib checkpoint complete" 5_000 (List.length rib_keys)

(* --- NSR migrations ------------------------------------------------------------ *)

let run_failure_scenario ~inject ?(post_failure_span = Time.sec 30) () =
  let w = make_world () in
  establish w;
  (* Routes in both directions before the failure. *)
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 500);
  (match Tensor.App.speaker (Tensor.Deploy.service_app w.svc) with
  | Some spk ->
      Bgp.Speaker.originate spk ~vrf:"v0"
        (Workload.Prefixes.distinct_from ~base:500_000 200)
  | None -> ());
  Engine.run_for (eng w) (Time.sec 10);
  let drops = watch_peer_continuity w in
  checki "peer has all routes pre-failure" 700 (Bgp.Rib.size (peer_rib w));
  let t0 = Engine.now (eng w) in
  inject w;
  Engine.run_for (eng w) post_failure_span;
  (w, drops, t0)

let assert_zero_downtime (w, drops, _t0) =
  checki "peer session never dropped" 0 !drops;
  checkb "peer session still established" true
    (Bgp.Speaker.peer_state w.peer_handle = Bgp.Session.Established);
  checki "peer kept every route" 700 (Bgp.Rib.size (peer_rib w));
  checki "no stale routes at peer" 0
    (Bgp.Rib.stale_count (peer_rib w)
       ~key:(Bgp.Speaker.peer_source_key w.peer_handle));
  (* The replacement instance serves the session now. *)
  checkb "service re-established on backup" true
    (Tensor.App.session_established (Tensor.Deploy.service_app w.svc) ~vrf:"v0");
  checkb "migrated off the original container" true
    (Orch.Container.id (Tensor.Deploy.service_container w.svc) <> "svc1")

let migration_total_seconds w t0 =
  match Trace.first w.dep.Tensor.Deploy.trace ~category:"tcp-synced" with
  | Some e -> Time.to_sec_f (Time.diff e.Trace.at t0)
  | None -> Alcotest.fail "no tcp-synced trace"

let test_nsr_app_failure () =
  let ((w, _, t0) as r) =
    run_failure_scenario ~inject:(fun w -> Tensor.Deploy.inject_app_failure w.dep w.svc) ()
  in
  assert_zero_downtime r;
  let total = migration_total_seconds w t0 in
  checkb (Printf.sprintf "app failure total %.2fs (paper 2.26)" total) true
    (total > 1.0 && total < 5.0)

let test_nsr_container_failure () =
  let ((w, _, t0) as r) =
    run_failure_scenario
      ~inject:(fun w -> Tensor.Deploy.inject_container_failure w.dep w.svc) ()
  in
  assert_zero_downtime r;
  let total = migration_total_seconds w t0 in
  checkb (Printf.sprintf "container failure total %.2fs (paper 2.61)" total)
    true
    (total > 1.0 && total < 6.0)

let test_nsr_host_failure () =
  let ((w, _, t0) as r) =
    run_failure_scenario
      ~inject:(fun w -> Tensor.Deploy.inject_host_failure w.dep w.svc)
      ~post_failure_span:(Time.sec 40) ()
  in
  assert_zero_downtime r;
  let total = migration_total_seconds w t0 in
  checkb (Printf.sprintf "host failure total %.2fs (paper 9.05)" total) true
    (total > 6.0 && total < 13.0)

let test_nsr_host_network_failure () =
  let ((w, _, t0) as r) =
    run_failure_scenario
      ~inject:(fun w -> Tensor.Deploy.inject_host_network_failure w.dep w.svc)
      ~post_failure_span:(Time.sec 40) ()
  in
  assert_zero_downtime r;
  let total = migration_total_seconds w t0 in
  checkb (Printf.sprintf "host network total %.2fs (paper 9.17)" total) true
    (total > 6.0 && total < 13.0)

let test_updates_survive_migration () =
  (* Updates sent by the peer during the outage are not lost: TCP holds
     them (unacked) and the resumed backup receives them. *)
  let w = make_world () in
  establish w;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 100);
  Engine.run_for (eng w) (Time.sec 5);
  Tensor.Deploy.inject_container_failure w.dep w.svc;
  (* While the primary is dead, the peer announces more routes. *)
  ignore
    (Engine.schedule_after (eng w) (Time.ms 500) (fun () ->
         Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
           (Workload.Prefixes.distinct_from ~base:200_000 150)));
  Engine.run_for (eng w) (Time.sec 40);
  checki "all routes present after migration" 250
    (Tensor.Deploy.service_routes w.svc ~vrf:"v0")

let test_double_failure_second_migration () =
  (* The replacement can itself fail and be migrated again. *)
  let ((w, drops, _) as r) =
    run_failure_scenario
      ~inject:(fun w -> Tensor.Deploy.inject_container_failure w.dep w.svc) ()
  in
  assert_zero_downtime r;
  Tensor.Deploy.inject_container_failure w.dep w.svc;
  Engine.run_for (eng w) (Time.sec 30);
  checki "still zero drops after second failure" 0 !drops;
  checkb "re-established again" true
    (Tensor.App.session_established (Tensor.Deploy.service_app w.svc) ~vrf:"v0")

let test_planned_migration_zero_downtime () =
  (* §4.4: software updates without graceful restart, frozen policies or
     downtime — freeze, drain, migrate a perfectly healthy service. *)
  let w = make_world () in
  establish w;
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 400);
  Engine.run_for (eng w) (Time.sec 10);
  let drops = watch_peer_continuity w in
  let before = Orch.Container.id (Tensor.Deploy.service_container w.svc) in
  Tensor.Deploy.planned_migration w.dep w.svc;
  Engine.run_for (eng w) (Time.sec 30);
  checki "peer session never dropped" 0 !drops;
  checkb "service moved" true
    (Orch.Container.id (Tensor.Deploy.service_container w.svc) <> before);
  checkb "session live on the new instance" true
    (Tensor.App.session_established (Tensor.Deploy.service_app w.svc) ~vrf:"v0");
  checki "routes intact" 400 (Tensor.Deploy.service_routes w.svc ~vrf:"v0");
  (* Routing still works end to end: the peer announces more and the new
     instance learns it. *)
  Bgp.Speaker.originate w.peer.Tensor.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct_from ~base:800_000 50);
  Engine.run_for (eng w) (Time.sec 5);
  checki "updates flow after planned move" 450
    (Tensor.Deploy.service_routes w.svc ~vrf:"v0")

let test_two_vrf_container_migration () =
  (* One container, two VRFs, two peering ASes (the paper's Figure 3
     container layout). A container failure must migrate both sessions
     transparently. *)
  let dep = Tensor.Deploy.build () in
  let eng = dep.Tensor.Deploy.eng in
  let p1 = Tensor.Deploy.add_peer_as dep ~asn:65021 "as21" in
  let p2 = Tensor.Deploy.add_peer_as dep ~asn:65022 "as22" in
  let vip_a = Addr.of_string "203.0.113.31" in
  let vip_b = Addr.of_string "203.0.113.32" in
  let h1 = Tensor.Deploy.peer_expects p1 ~vrf:"v1" ~vip:vip_a ~local_asn:64900 in
  let h2 = Tensor.Deploy.peer_expects p2 ~vrf:"v2" ~vip:vip_b ~local_asn:64900 in
  let svc =
    Tensor.Deploy.deploy_service dep ~id:"dualvrf" ~local_asn:64900
      [
        Tensor.App.vrf_spec ~vrf:"v1" ~vip:vip_a
          ~peer_addr:p1.Tensor.Deploy.pa_addr ~peer_asn:65021 ();
        Tensor.App.vrf_spec ~vrf:"v2" ~vip:vip_b
          ~peer_addr:p2.Tensor.Deploy.pa_addr ~peer_asn:65022 ();
      ]
  in
  checkb "both sessions up" true (Tensor.Deploy.wait_established dep svc ());
  Bgp.Speaker.originate p1.Tensor.Deploy.pa_speaker ~vrf:"v1"
    (Workload.Prefixes.distinct 100);
  Bgp.Speaker.originate p2.Tensor.Deploy.pa_speaker ~vrf:"v2"
    (Workload.Prefixes.distinct_from ~base:300_000 200);
  Engine.run_for eng (Time.sec 10);
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down h1 (fun _ -> incr drops);
  Bgp.Speaker.on_peer_down h2 (fun _ -> incr drops);
  Tensor.Deploy.inject_container_failure dep svc;
  Engine.run_for eng (Time.sec 30);
  checki "neither peer dropped" 0 !drops;
  checki "vrf v1 intact and isolated" 100
    (Tensor.Deploy.service_routes svc ~vrf:"v1");
  checki "vrf v2 intact and isolated" 200
    (Tensor.Deploy.service_routes svc ~vrf:"v2");
  checkb "both resumed" true
    (Tensor.App.session_established (Tensor.Deploy.service_app svc) ~vrf:"v1"
    && Tensor.App.session_established (Tensor.Deploy.service_app svc) ~vrf:"v2")

let test_baseline_without_nsr_peer_sees_outage () =
  (* Control: replication disabled = an ordinary BGP daemon in a
     container. The same container failure kills the peer's session. *)
  let w = make_world ~replicate:false () in
  establish w;
  let drops = watch_peer_continuity w in
  Orch.Container.fail (Tensor.Deploy.service_container w.svc);
  Engine.run_for (eng w) (Time.minutes 3);
  checkb "peer saw the failure without NSR" true (!drops > 0)

let () =
  Alcotest.run "tensor"
    [
      ( "keys",
        [
          Alcotest.test_case "meta roundtrip" `Quick test_keys_meta_roundtrip;
          Alcotest.test_case "in record" `Quick test_keys_in_record_roundtrip;
          Alcotest.test_case "rib entry" `Quick test_keys_rib_roundtrip;
          Alcotest.test_case "key parsers" `Quick test_keys_parsers;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "establishes" `Quick test_deployment_establishes;
          Alcotest.test_case "routes both ways" `Quick
            test_routes_propagate_both_ways;
          Alcotest.test_case "meta written" `Quick test_meta_written_to_store;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "ACK never precedes replication" `Quick
            test_ack_never_precedes_replication;
          Alcotest.test_case "ablation: no hold -> violations" `Quick
            test_ablation_no_ack_hold_violates;
          Alcotest.test_case "invariant holds under loss" `Quick
            test_ack_invariant_under_loss;
          Alcotest.test_case "storage bound" `Quick test_storage_bound_after_flood;
        ] );
      ( "nsr",
        [
          Alcotest.test_case "app failure" `Quick test_nsr_app_failure;
          Alcotest.test_case "container failure" `Quick
            test_nsr_container_failure;
          Alcotest.test_case "host failure" `Quick test_nsr_host_failure;
          Alcotest.test_case "host network failure" `Quick
            test_nsr_host_network_failure;
          Alcotest.test_case "updates survive migration" `Quick
            test_updates_survive_migration;
          Alcotest.test_case "double failure" `Quick
            test_double_failure_second_migration;
          Alcotest.test_case "planned migration" `Quick
            test_planned_migration_zero_downtime;
          Alcotest.test_case "two-VRF container" `Quick
            test_two_vrf_container_migration;
          Alcotest.test_case "control: no NSR -> outage" `Quick
            test_baseline_without_nsr_peer_sees_outage;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_hex_roundtrip; prop_meta_roundtrip ] );
    ]
