(* lib/trace: the causal event DAG must mirror scheduling causality
   (parent = the event executing at schedule time, -1 outside dispatch),
   critical-path segments must sum exactly to the root span's duration
   (the Fig. 5a decomposition is an identity, not an estimate), the
   Perfetto export must be valid trace_event JSON, the simulated-time
   series must window on boundaries, and — like the profiler — the whole
   tracer must be observation-only: corpus replay digests byte-identical
   with the hooks attached or not. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let fresh () =
  Telemetry.Control.reset ();
  Telemetry.Control.set_enabled true;
  Causal.Recorder.reset ()

(* --- recorder: causality ---------------------------------------------------- *)

let test_recorder_causality () =
  fresh ();
  Causal.Recorder.attach ();
  checkb "hook installed" true (Causal.Recorder.enabled ());
  let eng = Sim.Engine.create () in
  let root_id = ref (-1) in
  let child_id = ref (-1) in
  let h =
    Sim.Engine.schedule_after eng ~label:"root" (Sim.Time.ms 10) (fun () ->
        root_id := Sim.Engine.current_event_id eng;
        ignore
          (Sim.Engine.schedule_after eng (Sim.Time.ms 5) (fun () ->
               child_id := Sim.Engine.current_event_id eng)))
  in
  ignore h;
  (* Scheduled outside dispatch: no causal parent. *)
  ignore (Sim.Engine.schedule_after eng ~label:"solo" (Sim.Time.ms 1) (fun () -> ()));
  Sim.Engine.run eng;
  Causal.Recorder.detach ();
  checkb "hook removed" false (Causal.Recorder.enabled ());
  checki "three dispatches recorded" 3 (Causal.Recorder.node_count ());
  checki "one engine, one track" 1 (Causal.Recorder.track_count ());
  let node id =
    match Causal.Recorder.find ~track:0 ~id with
    | Some n -> n
    | None -> Alcotest.failf "no node for event id %d" id
  in
  let root = node !root_id and child = node !child_id in
  checki "root has no causal parent" (-1) root.Causal.Recorder.parent;
  checki "child's parent is the root event" !root_id child.Causal.Recorder.parent;
  checks "child inherits the root's label" "root" child.Causal.Recorder.label;
  checki "child dwell = 5ms" (Sim.Time.ms 5)
    (Sim.Time.diff child.Causal.Recorder.exec_at child.Causal.Recorder.sched_at);
  checki "current id is -1 outside dispatch" (-1)
    (Sim.Engine.current_event_id eng)

let test_recorder_limit () =
  fresh ();
  Causal.Recorder.attach ~limit:2 ();
  let eng = Sim.Engine.create () in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule_after eng ~label:"x" (Sim.Time.ms i) (fun () -> ()))
  done;
  Sim.Engine.run eng;
  Causal.Recorder.detach ();
  checki "cap respected" 2 (Causal.Recorder.node_count ());
  checki "overflow counted" 3 (Causal.Recorder.dropped ());
  Causal.Recorder.reset ();
  checki "reset forgets nodes" 0 (Causal.Recorder.node_count ());
  checki "reset forgets drops" 0 (Causal.Recorder.dropped ())

(* --- critical path: the sum identity --------------------------------------- *)

(* A synthetic recovery: fault event starts the span, a 3-hop chain
   (fault -> bfd.detect -> tcp.replay) closes it. *)
let synthetic_recovery () =
  fresh ();
  Causal.Recorder.attach ();
  let eng = Sim.Engine.create () in
  let sp = ref Telemetry.Span.none in
  ignore
    (Sim.Engine.schedule_after eng ~label:"fault" (Sim.Time.ms 10) (fun () ->
         sp := Telemetry.Span.start eng "recover";
         ignore
           (Sim.Engine.schedule_after eng ~label:"bfd.detect" (Sim.Time.ms 40)
              (fun () ->
                ignore
                  (Sim.Engine.schedule_after eng ~label:"tcp.replay"
                     (Sim.Time.ms 50) (fun () ->
                       Telemetry.Span.finish eng !sp))))));
  (* Noise off the critical path must not appear in it. *)
  ignore
    (Sim.Engine.schedule_after eng ~label:"noise" (Sim.Time.ms 60) (fun () -> ()));
  Sim.Engine.run eng;
  Causal.Recorder.detach ()

let extract ?from_label ?to_label () =
  match Causal.Critical.of_span ?from_label ?to_label ~name:"recover" () with
  | Ok cp -> cp
  | Error e -> Alcotest.failf "critical path: %s" e

let seg_labels cp =
  List.map (fun (s : Causal.Critical.segment) -> s.label) cp.Causal.Critical.segments

let test_critical_path_sum () =
  synthetic_recovery ();
  let cp = extract () in
  checki "span duration 90ms" (Sim.Time.ms 90) cp.Causal.Critical.total;
  checki "segments sum exactly to the span duration" cp.Causal.Critical.total
    (Causal.Critical.segment_sum cp);
  checki "three events on the path" 3 cp.Causal.Critical.events;
  Alcotest.(check (list string))
    "per-label decomposition in time order"
    [ "fault"; "bfd.detect"; "tcp.replay" ]
    (seg_labels cp);
  let dur l =
    let s =
      List.find
        (fun (s : Causal.Critical.segment) -> s.label = l)
        cp.Causal.Critical.segments
    in
    s.Causal.Critical.dur
  in
  checki "bfd segment 40ms" (Sim.Time.ms 40) (dur "bfd.detect");
  checki "tcp segment 50ms" (Sim.Time.ms 50) (dur "tcp.replay")

let test_critical_path_from_to () =
  synthetic_recovery ();
  (* --to re-anchors the endpoint; the rest of the window is reported
     as an explicit untraced segment so the sum identity survives. *)
  let cp = extract ~to_label:"bfd" () in
  checki "sum identity with --to" cp.Causal.Critical.total
    (Causal.Critical.segment_sum cp);
  Alcotest.(check (list string))
    "untraced tail after the bfd endpoint"
    [ "fault"; "bfd.detect"; "(untraced)" ]
    (seg_labels cp);
  (* --from truncates the walk: time before the match folds into the
     matching segment's head. *)
  let cp = extract ~from_label:"bfd.detect" () in
  checki "sum identity with --from" cp.Causal.Critical.total
    (Causal.Critical.segment_sum cp);
  Alcotest.(check (list string))
    "chain truncated at bfd"
    [ "bfd.detect"; "tcp.replay" ]
    (seg_labels cp);
  match Causal.Critical.of_span ~name:"no-such-span" () with
  | Ok _ -> Alcotest.fail "expected an error for an unknown span"
  | Error _ -> ()

(* --- the real thing: checked failover scenario ------------------------------ *)

let test_failover_critical_path () =
  fresh ();
  Telemetry.Control.set_enabled false;
  Causal.Recorder.attach ();
  let report =
    match Tensor.Check.run "failover" with
    | Ok r -> r
    | Error e -> Alcotest.failf "check failover: %s" e
  in
  Causal.Recorder.detach ();
  checkb "scenario healthy with tracer attached" true (Monitor.Health.ok report);
  checki "fig5a-sized run with tracing on drops nothing" 0
    report.Monitor.Health.bus_dropped;
  let cp =
    match report.Monitor.Health.critical_path with
    | Some cp -> cp
    | None -> Alcotest.fail "health report has no critical_path section"
  in
  checks "rooted at the failover span" "failover" cp.Causal.Critical.span_name;
  checkb "recovery decomposed into multiple segments" true
    (List.length cp.Causal.Critical.segments >= 2);
  checki "segment sum equals the failover span duration"
    cp.Causal.Critical.total
    (Causal.Critical.segment_sum cp);
  checkb "path has real depth" true (cp.Causal.Critical.events > 2);
  (* The JSON rendering round-trips. *)
  match Monitor.Json.parse (Causal.Critical.to_json cp) with
  | Error e -> Alcotest.failf "critical-path JSON invalid: %s" e
  | Ok j ->
      checkb "total_ns present" true (Monitor.Json.member "total_ns" j <> None)

(* --- perfetto export -------------------------------------------------------- *)

let json_mem name j =
  match Monitor.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" name

let test_perfetto_export () =
  synthetic_recovery ();
  let cp = extract () in
  let out = Causal.Perfetto.export ~critical:cp () in
  match Monitor.Json.parse out with
  | Error e -> Alcotest.failf "perfetto output is not valid JSON: %s" e
  | Ok j -> (
      checkb "declares a display unit" true
        (Monitor.Json.to_str (json_mem "displayTimeUnit" j) = Some "ms");
      match Monitor.Json.to_list (json_mem "traceEvents" j) with
      | None -> Alcotest.fail "traceEvents is not a list"
      | Some evs ->
          checkb "events present" true (List.length evs > 5);
          let phases =
            List.filter_map
              (fun e ->
                Option.bind (Monitor.Json.member "ph" e) Monitor.Json.to_str)
              evs
          in
          checki "every event has a phase" (List.length evs)
            (List.length phases);
          let has p = List.mem p phases in
          checkb "instants for engine events" true (has "i");
          checkb "async begin/end for spans" true (has "b" && has "e");
          checkb "critical-path slices" true (has "X");
          checkb "track metadata" true (has "M"))

(* --- simulated-time series --------------------------------------------------- *)

let test_series_windows () =
  fresh ();
  let c = Telemetry.Registry.counter "test_trace.series_ticks" in
  let s =
    Causal.Series.attach
      ~select:(fun n -> n = "test_trace.series_ticks")
      ()
  in
  let eng = Sim.Engine.create () in
  let emit () =
    Telemetry.Registry.incr c;
    Telemetry.Bus.emit eng
      (Telemetry.Event.Generic
         { cat = Telemetry.Event.Tcp; name = "tick"; detail = "" })
  in
  Sim.Engine.run_until eng (Sim.Time.ms 500);
  emit ();
  Sim.Engine.run_until eng (Sim.Time.ms 1500);
  emit ();
  Sim.Engine.run_until eng (Sim.Time.ms 3700);
  emit ();
  (* A fresh engine restarts simulated time: new run index. *)
  let eng2 = Sim.Engine.create () in
  Sim.Engine.run_until eng2 (Sim.Time.ms 200);
  Telemetry.Bus.emit eng2
    (Telemetry.Event.Generic
       { cat = Telemetry.Event.Tcp; name = "tick"; detail = "" });
  Causal.Series.detach s;
  (* Boundaries 1s, 2s, 3s in run 0, plus the run-0 flush at 3.7s when
     time went backwards, plus the final flush at 0.2s of run 1. *)
  checki "five rows" 5 (Causal.Series.sample_count s);
  let lines =
    String.split_on_char '\n' (Causal.Series.to_jsonl s)
    |> List.filter (fun l -> l <> "")
  in
  checki "one JSONL line per row" 5 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Monitor.Json.parse l with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad series row %S: %s" l e)
      lines
  in
  let runs =
    List.filter_map
      (fun j ->
        Option.bind (Monitor.Json.member "run" j) Monitor.Json.to_float)
      parsed
  in
  Alcotest.(check (list (float 0.0)))
    "run indices" [ 0.; 0.; 0.; 0.; 1. ] runs;
  let times =
    List.filter_map
      (fun j ->
        Option.bind (Monitor.Json.member "t_ns" j) Monitor.Json.to_float)
      parsed
  in
  Alcotest.(check (list (float 0.0)))
    "boundary timestamps"
    [ 1e9; 2e9; 3e9; 3.7e9; 0.2e9 ]
    times;
  (* The selected counter is sampled; its value grows across windows. *)
  List.iter
    (fun j ->
      let m = json_mem "metrics" j in
      checkb "selected metric present" true
        (Monitor.Json.member "test_trace.series_ticks" m <> None))
    parsed

(* --- determinism: tracer on/off must not change telemetry ------------------- *)

let corpus_dir () = if Sys.file_exists "corpus" then "corpus" else "../corpus"

let test_digests_identical_with_tracer () =
  let entries = Chaos.Corpus.load_dir (corpus_dir ()) in
  checkb "committed corpus present" true (List.length entries >= 2);
  List.iteri
    (fun i (name, d) ->
      if i < 2 then
        match d with
        | Error e -> Alcotest.failf "%s: %s" name e
        | Ok desc ->
            let off = Chaos.Runner.run desc in
            Causal.Recorder.reset ();
            Causal.Recorder.attach ();
            let on_ = Chaos.Runner.run desc in
            Causal.Recorder.detach ();
            checkb (name ^ " replays green") true
              (Chaos.Runner.ok off && Chaos.Runner.ok on_);
            checks
              (name ^ ": telemetry digest identical with tracer attached")
              off.Chaos.Runner.digest on_.Chaos.Runner.digest;
            checkb (name ^ ": recorder saw the run") true
              (Causal.Recorder.node_count () > 0))
    entries

(* --- bus sizing ------------------------------------------------------------- *)

let test_per_category_capacity () =
  Telemetry.Control.reset ();
  Telemetry.Control.set_bus_capacity 8192;
  Telemetry.Control.set_bus_capacity ~category:Telemetry.Event.Tcp 4;
  checki "override applies" 4
    (Telemetry.Bus.category_capacity Telemetry.Event.Tcp);
  checki "other categories keep the global capacity" 8192
    (Telemetry.Bus.category_capacity Telemetry.Event.Bgp);
  Telemetry.Control.set_enabled true;
  let eng = Sim.Engine.create () in
  for i = 1 to 10 do
    Telemetry.Bus.emit eng
      (Telemetry.Event.Generic
         { cat = Telemetry.Event.Tcp; name = "t"; detail = string_of_int i });
    Telemetry.Bus.emit eng
      (Telemetry.Event.Generic
         { cat = Telemetry.Event.Bgp; name = "b"; detail = string_of_int i })
  done;
  checki "small ring overwrites" 6 (Telemetry.Bus.dropped Telemetry.Event.Tcp);
  checki "default-sized ring keeps everything" 0
    (Telemetry.Bus.dropped Telemetry.Event.Bgp);
  Telemetry.Control.set_enabled false;
  (* Global resize forgets the override. *)
  Telemetry.Control.set_bus_capacity 8192;
  checki "override cleared by global resize" 8192
    (Telemetry.Bus.category_capacity Telemetry.Event.Tcp);
  Telemetry.Control.reset ()

let () =
  Alcotest.run "trace"
    [
      ( "recorder",
        [
          Alcotest.test_case "causal parentage, labels, dwell" `Quick
            test_recorder_causality;
          Alcotest.test_case "node cap and drop accounting" `Quick
            test_recorder_limit;
        ] );
      ( "critical",
        [
          Alcotest.test_case "segments sum to the span duration" `Quick
            test_critical_path_sum;
          Alcotest.test_case "--from/--to windows keep the identity" `Quick
            test_critical_path_from_to;
          Alcotest.test_case "checked failover decomposes recovery" `Slow
            test_failover_critical_path;
        ] );
      ( "perfetto",
        [ Alcotest.test_case "valid trace_event JSON" `Quick test_perfetto_export ] );
      ( "series",
        [ Alcotest.test_case "window boundaries and runs" `Quick test_series_windows ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus digests identical with tracer on" `Slow
            test_digests_identical_with_tracer;
        ] );
      ( "bus",
        [
          Alcotest.test_case "per-category capacity override" `Quick
            test_per_category_capacity;
        ] );
    ]
