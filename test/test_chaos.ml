(* The chaos engine's own guarantees: descriptors are an exact one-line
   serialization of a run, generated scenarios execute green and
   deterministically (the replay property CI relies on), the shrinker
   produces a smaller descriptor that still fails, and corpus entries
   round-trip through the filesystem. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Descriptors ----------------------------------------------------------- *)

let test_generate_valid () =
  for seed = 1 to 50 do
    let d = Chaos.Descriptor.generate ~seed in
    (match Chaos.Descriptor.validate d with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid descriptor: %s" seed e);
    checki "engine seed is the descriptor seed" seed d.Chaos.Descriptor.seed
  done

let test_roundtrip_generated () =
  for seed = 1 to 200 do
    let d = Chaos.Descriptor.generate ~seed in
    let line = Chaos.Descriptor.to_string d in
    match Chaos.Descriptor.of_string line with
    | Ok d' ->
        if not (Chaos.Descriptor.equal d d') then
          Alcotest.failf "seed %d: roundtrip changed descriptor: %s" seed line
    | Error e -> Alcotest.failf "seed %d: reparse failed: %s (%s)" seed e line
  done

let test_parse_errors () =
  let bad =
    [
      "";
      "chaos2 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1 settle=1 faults=-";
      "chaos1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1 settle=1 faults=-";
      "chaos1 seed=1 peers=0 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=-";
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=zap@3";
      (* vrf index out of range for peers=1 *)
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=rst.1@3";
      (* fault beyond the window *)
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=planned@5000";
    ]
  in
  List.iter
    (fun line ->
      match Chaos.Descriptor.of_string line with
      | Ok _ -> Alcotest.failf "accepted bad descriptor: %S" line
      | Error _ -> ())
    bad

let test_sub_seed_spread () =
  (* The campaign derivation must give distinct, order-independent
     sub-seeds: a failure reported as (campaign, index) has to replay in
     isolation. *)
  let seen = Hashtbl.create 64
  and campaign = 42 in
  for i = 0 to 499 do
    let s = Chaos.Descriptor.sub_seed ~seed:campaign i in
    if Hashtbl.mem seen s then Alcotest.failf "sub_seed collision at %d" i;
    Hashtbl.add seen s ()
  done;
  checki "sub_seed is stateless"
    (Chaos.Descriptor.sub_seed ~seed:campaign 7)
    (Chaos.Descriptor.sub_seed ~seed:campaign 7)

let test_applicability_matrix () =
  let parse line = Result.get_ok (Chaos.Descriptor.of_string line) in
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=9000 settle=20000 faults="
  in
  checkb "clean schedule disables nothing" true
    (Chaos.Runner.disabled_checkers (parse (base ^ "-")) = []);
  let rst = Chaos.Runner.disabled_checkers (parse (base ^ "rst.0@100")) in
  checkb "rst disables reset checker" true
    (List.mem "no_peer_visible_reset" rst);
  checkb "rst keeps flap checker" false (List.mem "route_flap_absence" rst);
  checkb "rst disables degraded-exclusion checker" true
    (List.mem "degraded_mode_exclusion" rst);
  let cease = Chaos.Runner.disabled_checkers (parse (base ^ "cease.1@100")) in
  checkb "cease disables reset checker" true
    (List.mem "no_peer_visible_reset" cease);
  checkb "cease disables flap checker" true
    (List.mem "route_flap_absence" cease);
  checkb "cease disables degraded-exclusion checker" true
    (List.mem "degraded_mode_exclusion" cease);
  List.iter
    (fun tok ->
      checkb (tok ^ " disables nothing") true
        (Chaos.Runner.disabled_checkers (parse (base ^ tok)) = []))
    [ "store_crash@2000"; "store_crash@2000+6000"; "store_partition@2000+6000";
      "store_slow@2000+4000:300" ]

(* --- Store-fault tokens ----------------------------------------------------- *)

let test_store_fault_tokens () =
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=9000 settle=20000 faults="
  in
  let roundtrip tok expected =
    match Chaos.Descriptor.of_string (base ^ tok) with
    | Error e -> Alcotest.failf "%s rejected: %s" tok e
    | Ok d -> (
        (match Chaos.Descriptor.validate d with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s invalid: %s" tok e);
        checkb (tok ^ " serializes back") true
          (String.length (Chaos.Descriptor.to_string d) > 0
          && Chaos.Descriptor.of_string (Chaos.Descriptor.to_string d)
             = Ok d);
        match d.Chaos.Descriptor.faults with
        | [ f ] -> checkb (tok ^ " parses to expected fault") true (f = expected)
        | _ -> Alcotest.failf "%s: expected one fault" tok)
  in
  roundtrip "store_crash@2000"
    (Chaos.Descriptor.Store_crash { at_ms = 2000; dur_ms = 0 });
  roundtrip "store_crash@2000+6000"
    (Chaos.Descriptor.Store_crash { at_ms = 2000; dur_ms = 6000 });
  roundtrip "store_partition@2000+6000"
    (Chaos.Descriptor.Store_partition { at_ms = 2000; dur_ms = 6000 });
  roundtrip "store_slow@2000+4000:300"
    (Chaos.Descriptor.Store_slow
       { at_ms = 2000; dur_ms = 4000; factor_pct = 300 });
  List.iter
    (fun tok ->
      match Chaos.Descriptor.of_string (base ^ tok) with
      | Ok _ -> Alcotest.failf "accepted bad store token: %s" tok
      | Error _ -> ())
    [
      "store_partition@2000" (* a partition needs a heal time *);
      "store_partition@2000+0";
      "store_slow@2000+4000" (* slowdown needs a factor *);
      "store_slow@2000+4000:100" (* factor must exceed 1x *);
      "store_slow@2000+4000:20000" (* absurd factor rejected *);
      "store_crash@2000+-5";
    ]

let test_validate_rejects_kill_inside_outage () =
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=9000 settle=20000 faults="
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let reject tok =
    match Chaos.Descriptor.of_string (base ^ tok) with
    | Ok _ -> Alcotest.failf "accepted kill inside store outage: %s" tok
    | Error e -> checkb (tok ^ " names the outage") true (contains e "outage")
  in
  (* Inside a bounded outage, and any time after a permanent crash. *)
  reject "store_crash@2000+8000,kill.app@4000";
  reject "store_crash@2000,kill.app@7000";
  reject "store_partition@2000+6000,planned@3000";
  (* Before or after the outage window is fine. *)
  match
    Chaos.Descriptor.of_string (base ^ "store_partition@3000+2000,kill.app@800")
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "kill before the outage rejected: %s" e

(* --- Fleet tokens ------------------------------------------------------------ *)

let test_fleet_tokens_roundtrip () =
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=30000 settle=20000 faults="
  in
  let roundtrip tok expected =
    match Chaos.Descriptor.of_string (base ^ tok) with
    | Error e -> Alcotest.failf "%s rejected: %s" tok e
    | Ok d -> (
        checkb (tok ^ " serializes back") true
          (Chaos.Descriptor.of_string (Chaos.Descriptor.to_string d) = Ok d);
        match d.Chaos.Descriptor.faults with
        | [ f ] -> checkb (tok ^ " parses to expected fault") true (f = expected)
        | _ -> Alcotest.failf "%s: expected one fault" tok)
  in
  roundtrip "host_kill@5000" (Chaos.Descriptor.Host_kill { at_ms = 5000 });
  roundtrip "region_store_outage@5000+8000"
    (Chaos.Descriptor.Region_store_outage { at_ms = 5000; dur_ms = 8000 });
  roundtrip "rolling_upgrade@5000:4"
    (Chaos.Descriptor.Rolling_upgrade { at_ms = 5000; bound = 4 });
  List.iter
    (fun tok ->
      match Chaos.Descriptor.of_string (base ^ tok) with
      | Ok _ -> Alcotest.failf "accepted bad fleet token: %s" tok
      | Error _ -> ())
    [
      "region_store_outage@5000" (* an outage needs a heal time *);
      "region_store_outage@5000+0";
      "rolling_upgrade@5000" (* a wave needs its concurrency bound *);
      "rolling_upgrade@5000:0";
      "rolling_upgrade@5000:65" (* bound capped at 64 *);
    ]

let test_fleet_wave_conflicts_rejected () =
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=30000 settle=20000 faults="
  in
  let reject why tok =
    match Chaos.Descriptor.of_string (base ^ tok) with
    | Ok _ -> Alcotest.failf "accepted %s: %s" why tok
    | Error _ -> ()
  in
  (* A wave owns the fleet until its schedule-dependent completion: two
     waves in one schedule always overlap. *)
  reject "overlapping waves" "rolling_upgrade@2000:2,rolling_upgrade@20000:2";
  (* The store is the recovery substrate: no correlated kill or wave may
     start while a store outage window is open. *)
  reject "host_kill inside region outage"
    "region_store_outage@2000+8000,host_kill@4000";
  reject "wave inside region outage"
    "region_store_outage@2000+8000,rolling_upgrade@4000:2";
  reject "host_kill inside plain store outage"
    "store_partition@2000+6000,host_kill@4000";
  (* Outside the window the same combinations are fine. *)
  List.iter
    (fun tok ->
      match Chaos.Descriptor.of_string (base ^ tok) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "rejected valid schedule %s: %s" tok e)
    [
      "host_kill@1000,region_store_outage@12000+5000";
      "host_kill@1000,rolling_upgrade@9000:2";
    ]

let test_bare_fault_list_parser () =
  (match Chaos.Descriptor.faults_of_string "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty string is the empty schedule");
  (match Chaos.Descriptor.faults_of_string "-" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "\"-\" is the empty schedule");
  (match
     Chaos.Descriptor.faults_of_string "host_kill@5000,rolling_upgrade@9000:2"
   with
  | Ok [ Chaos.Descriptor.Host_kill _; Chaos.Descriptor.Rolling_upgrade _ ] ->
      ()
  | Ok _ -> Alcotest.fail "wrong faults parsed"
  | Error e -> Alcotest.failf "valid list rejected: %s" e);
  (* The bare list obeys the same structural rules as a descriptor. *)
  match
    Chaos.Descriptor.faults_of_string
      "region_store_outage@2000+8000,host_kill@4000"
  with
  | Ok _ -> Alcotest.fail "bare list skipped outage-conflict validation"
  | Error _ -> ()

let test_pre_store_descriptors_still_parse () =
  (* Descriptor lines written before the store-fault tokens existed must
     keep parsing unchanged — the committed corpus depends on it. *)
  let old_lines =
    [
      "chaos1 seed=5 peers=2 hosts=3 ppfx=8 spfx=8 churn=1 delay=500 \
       window=16000 settle=20000 \
       faults=flap.1@1000+80,kill.app@4000,loss.1@9000+400:20";
      "chaos1 seed=9 peers=1 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 \
       window=9000 settle=20000 faults=-";
      "chaos1 seed=3 peers=2 hosts=4 ppfx=6 spfx=6 churn=2 delay=800 \
       window=12000 settle=20000 faults=rst.0@2000,bfd.1@5000x300";
    ]
  in
  List.iter
    (fun line ->
      match Chaos.Descriptor.of_string line with
      | Ok d -> (
          match Chaos.Descriptor.validate d with
          | Ok () -> ()
          | Error e -> Alcotest.failf "pre-store line now invalid: %s (%s)" e line)
      | Error e -> Alcotest.failf "pre-store line rejected: %s (%s)" e line)
    old_lines

let test_store_fault_runs_green () =
  (* Seeds whose generated schedules carry store faults, including ones
     that push the replicator into degraded mode and back (found by
     scanning; the generator draws store faults for ~a third of seeds). *)
  List.iter
    (fun seed ->
      let d = Chaos.Descriptor.generate ~seed in
      checkb
        (Printf.sprintf "seed %d generates a store fault" seed)
        true
        (List.exists
           (function
             | Chaos.Descriptor.Store_crash _ | Chaos.Descriptor.Store_partition _
             | Chaos.Descriptor.Store_slow _ ->
                 true
             | _ -> false)
           d.Chaos.Descriptor.faults);
      let o = Chaos.Runner.run d in
      if not (Chaos.Runner.ok o) then
        Alcotest.failf "store-fault seed %d not green: %s" seed
          (Chaos.Runner.summary o))
    [ 28; 35; 38 ]

(* --- Replay determinism (the property CI's corpus gate relies on) ---------- *)

let prop_replay_deterministic =
  QCheck.Test.make ~name:"two runs of one descriptor give equal digests"
    ~count:8
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Chaos.Descriptor.generate ~seed:(seed + 1) in
      let o1 = Chaos.Runner.run d in
      let o2 = Chaos.Runner.run d in
      String.equal o1.Chaos.Runner.digest o2.Chaos.Runner.digest
      && o1.Chaos.Runner.events = o2.Chaos.Runner.events)

let test_generated_runs_green () =
  for seed = 1 to 10 do
    let o = Chaos.Runner.run (Chaos.Descriptor.generate ~seed) in
    if not (Chaos.Runner.ok o) then
      Alcotest.failf "seed %d not green: %s" seed (Chaos.Runner.summary o)
  done

(* --- Shrinking ------------------------------------------------------------- *)

(* A seeded product fault (promoting without fencing) makes any
   app-failure migration fail the single-primary checker, so the
   shrinker has a real, reproducible failure to minimize — and its
   minimum must keep exactly the one fault that forces the unfenced
   migration. *)
let test_shrink_minimizes () =
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      let d =
        Result.get_ok
          (Chaos.Descriptor.of_string
             "chaos1 seed=5 peers=2 hosts=3 ppfx=8 spfx=8 churn=1 delay=500 \
              window=16000 settle=20000 \
              faults=flap.1@1000+80,kill.app@4000,loss.1@9000+400:20")
      in
      match Chaos.Shrink.minimize ~max_runs:40 d with
      | None -> Alcotest.fail "descriptor did not fail under no_fence"
      | Some r ->
          checkb "minimal still fails" false (Chaos.Runner.ok r.outcome);
          let m = r.minimal in
          checkb "fault schedule shrank to the kill" true
            (match m.Chaos.Descriptor.faults with
            | [ Chaos.Descriptor.Kill _ ] -> true
            | _ -> false);
          checkb "workload reduced" true
            (m.Chaos.Descriptor.peers <= 2
            && m.Chaos.Descriptor.churn = 0
            && m.Chaos.Descriptor.peer_prefixes <= 8);
          checkb "run budget respected" true (r.runs_used <= 40))

(* --- Corpus ---------------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chaos-corpus-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let d1 = Chaos.Descriptor.generate ~seed:11 in
      let d2 = Chaos.Descriptor.generate ~seed:12 in
      let p1 = Chaos.Corpus.save ~dir ~comment:"first\nsecond line" d1 in
      let _p2 = Chaos.Corpus.save ~dir d2 in
      (match Chaos.Corpus.load_file p1 with
      | Ok d -> checkb "comment lines skipped" true (Chaos.Descriptor.equal d d1)
      | Error e -> Alcotest.failf "load_file: %s" e);
      let entries = Chaos.Corpus.load_dir dir in
      checki "both entries listed" 2 (List.length entries);
      List.iter
        (fun (name, parsed) ->
          checkb "chaos extension" true
            (Filename.check_suffix name Chaos.Corpus.entry_extension);
          match parsed with
          | Ok d ->
              checkb "entry parses to a saved descriptor" true
                (Chaos.Descriptor.equal d d1 || Chaos.Descriptor.equal d d2)
          | Error e -> Alcotest.failf "corpus entry %s: %s" name e)
        entries)

let test_corpus_missing_dir () =
  checki "missing dir is empty corpus" 0
    (List.length (Chaos.Corpus.load_dir "/nonexistent/chaos-corpus"))

(* Pinned telemetry digests for every committed corpus entry. These
   change ONLY when event emission genuinely changes; in particular the
   sorted-key table folds feeding digests/snapshots must keep them
   byte-identical. Update deliberately, never to silence a failure. *)
let pinned_digests =
  [
    ( "seed28-e4ee3cac.chaos",
      "986b817f3385ed5b35cb5a48a2ca01d9" );
    (* Re-pinned when the migration fence gained App.halt (the fenced
       process dies with its container, so its zombie timers no longer
       emit): same green outcome, fewer stray events. *)
    ( "seed352025351311880476-a489e3e4.chaos",
      "73f083f53d524798f5d67bd555933b47" );
    (* Re-pinned with App.halt for the same reason. *)
    ( "seed508528403378398481-3411f630.chaos",
      "c404bc43b972443696541eedbdc4cdfd" );
  ]

let test_corpus_digests_pinned () =
  let dir = if Sys.file_exists "corpus" then "corpus" else "../corpus" in
  let entries = Chaos.Corpus.load_dir dir in
  checki "every committed entry is pinned" (List.length pinned_digests)
    (List.length entries);
  List.iter
    (fun (name, expected) ->
      let r = Chaos.Corpus.replay_file (Filename.concat dir name) in
      checkb (name ^ " replays green") true (Chaos.Corpus.replay_ok r);
      match r.Chaos.Corpus.outcome with
      | Some o -> checks (name ^ " digest") expected o.Chaos.Runner.digest
      | None ->
          Alcotest.failf "%s: %s" name
            (Option.value r.Chaos.Corpus.parse_error ~default:"no outcome"))
    pinned_digests

let test_corpus_replay_detects_failure () =
  (* A replay must fail loudly for an entry whose bug has regressed —
     simulated here with a seeded product fault instead of a code
     regression. *)
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      with_temp_dir (fun dir ->
          let d =
            Result.get_ok
              (Chaos.Descriptor.of_string
                 "chaos1 seed=5 peers=1 hosts=3 ppfx=5 spfx=5 churn=0 \
                  delay=500 window=9000 settle=20000 faults=kill.app@2000")
          in
          let path = Chaos.Corpus.save ~dir d in
          let r = Chaos.Corpus.replay_file path in
          checkb "regressed entry fails replay" false (Chaos.Corpus.replay_ok r);
          checks "entry name" (Filename.basename path) r.Chaos.Corpus.name))

(* --- Campaigns ------------------------------------------------------------- *)

let test_campaign_green () =
  let c = Chaos.Fuzz.run ~runs:15 ~seed:42 () in
  checkb "15-run campaign green" true (Chaos.Fuzz.campaign_ok c);
  checki "all runs executed" 15 c.Chaos.Fuzz.runs;
  checkb "checkers saw events" true (c.Chaos.Fuzz.events_total > 0)

let test_campaign_captures_and_saves () =
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      with_temp_dir (fun dir ->
          (* Most generated schedules contain a migration-forcing fault,
             so a short campaign under no_fence must fail at least once;
             shrinking writes each repro to the corpus dir. *)
          let c = Chaos.Fuzz.run ~runs:5 ~seed:7 ~shrink:true ~corpus_dir:dir () in
          checkb "campaign failed" false (Chaos.Fuzz.campaign_ok c);
          match c.Chaos.Fuzz.failures with
          | [] -> Alcotest.fail "no failures recorded"
          | f :: _ -> (
              checkb "failure index in range" true
                (f.Chaos.Fuzz.index >= 0 && f.Chaos.Fuzz.index < 5);
              match (f.Chaos.Fuzz.shrunk, f.Chaos.Fuzz.saved) with
              | Some s, Some path ->
                  checkb "saved entry exists" true (Sys.file_exists path);
                  (match Chaos.Corpus.load_file path with
                  | Ok d ->
                      checkb "saved entry is the minimal descriptor" true
                        (Chaos.Descriptor.equal d s.Chaos.Shrink.minimal)
                  | Error e -> Alcotest.failf "saved entry: %s" e)
              | _ -> Alcotest.fail "failure missing shrink result or path")))

let () =
  Alcotest.run "chaos"
    [
      ( "descriptor",
        [
          Alcotest.test_case "generated are valid" `Quick test_generate_valid;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_generated;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "sub-seed spread" `Quick test_sub_seed_spread;
          Alcotest.test_case "applicability matrix" `Quick
            test_applicability_matrix;
          Alcotest.test_case "store fault tokens" `Quick
            test_store_fault_tokens;
          Alcotest.test_case "kill inside store outage rejected" `Quick
            test_validate_rejects_kill_inside_outage;
          Alcotest.test_case "fleet tokens roundtrip" `Quick
            test_fleet_tokens_roundtrip;
          Alcotest.test_case "fleet wave conflicts rejected" `Quick
            test_fleet_wave_conflicts_rejected;
          Alcotest.test_case "bare fault-list parser" `Quick
            test_bare_fault_list_parser;
          Alcotest.test_case "pre-store descriptors still parse" `Quick
            test_pre_store_descriptors_still_parse;
        ] );
      ( "runner",
        Alcotest.test_case "generated runs green" `Slow
          test_generated_runs_green
        :: Alcotest.test_case "store-fault runs green" `Slow
             test_store_fault_runs_green
        :: List.map QCheck_alcotest.to_alcotest [ prop_replay_deterministic ]
      );
      ("shrink", [ Alcotest.test_case "minimizes" `Slow test_shrink_minimizes ]);
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_corpus_missing_dir;
          Alcotest.test_case "replay detects regressions" `Quick
            test_corpus_replay_detects_failure;
          Alcotest.test_case "committed digests pinned" `Slow
            test_corpus_digests_pinned;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "green campaign" `Slow test_campaign_green;
          Alcotest.test_case "captures, shrinks, saves" `Slow
            test_campaign_captures_and_saves;
        ] );
    ]
