(* The chaos engine's own guarantees: descriptors are an exact one-line
   serialization of a run, generated scenarios execute green and
   deterministically (the replay property CI relies on), the shrinker
   produces a smaller descriptor that still fails, and corpus entries
   round-trip through the filesystem. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Descriptors ----------------------------------------------------------- *)

let test_generate_valid () =
  for seed = 1 to 50 do
    let d = Chaos.Descriptor.generate ~seed in
    (match Chaos.Descriptor.validate d with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid descriptor: %s" seed e);
    checki "engine seed is the descriptor seed" seed d.Chaos.Descriptor.seed
  done

let test_roundtrip_generated () =
  for seed = 1 to 200 do
    let d = Chaos.Descriptor.generate ~seed in
    let line = Chaos.Descriptor.to_string d in
    match Chaos.Descriptor.of_string line with
    | Ok d' ->
        if not (Chaos.Descriptor.equal d d') then
          Alcotest.failf "seed %d: roundtrip changed descriptor: %s" seed line
    | Error e -> Alcotest.failf "seed %d: reparse failed: %s (%s)" seed e line
  done

let test_parse_errors () =
  let bad =
    [
      "";
      "chaos2 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1 settle=1 faults=-";
      "chaos1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1 settle=1 faults=-";
      "chaos1 seed=1 peers=0 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=-";
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=zap@3";
      (* vrf index out of range for peers=1 *)
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=rst.1@3";
      (* fault beyond the window *)
      "chaos1 seed=1 peers=1 hosts=3 ppfx=1 spfx=1 churn=0 delay=1 window=1000 settle=1 faults=planned@5000";
    ]
  in
  List.iter
    (fun line ->
      match Chaos.Descriptor.of_string line with
      | Ok _ -> Alcotest.failf "accepted bad descriptor: %S" line
      | Error _ -> ())
    bad

let test_sub_seed_spread () =
  (* The campaign derivation must give distinct, order-independent
     sub-seeds: a failure reported as (campaign, index) has to replay in
     isolation. *)
  let seen = Hashtbl.create 64
  and campaign = 42 in
  for i = 0 to 499 do
    let s = Chaos.Descriptor.sub_seed ~seed:campaign i in
    if Hashtbl.mem seen s then Alcotest.failf "sub_seed collision at %d" i;
    Hashtbl.add seen s ()
  done;
  checki "sub_seed is stateless"
    (Chaos.Descriptor.sub_seed ~seed:campaign 7)
    (Chaos.Descriptor.sub_seed ~seed:campaign 7)

let test_applicability_matrix () =
  let parse line = Result.get_ok (Chaos.Descriptor.of_string line) in
  let base =
    "chaos1 seed=1 peers=2 hosts=3 ppfx=5 spfx=5 churn=0 delay=500 window=9000 settle=20000 faults="
  in
  checkb "clean schedule disables nothing" true
    (Chaos.Runner.disabled_checkers (parse (base ^ "-")) = []);
  let rst = Chaos.Runner.disabled_checkers (parse (base ^ "rst.0@100")) in
  checkb "rst disables reset checker" true
    (List.mem "no_peer_visible_reset" rst);
  checkb "rst keeps flap checker" false (List.mem "route_flap_absence" rst);
  let cease = Chaos.Runner.disabled_checkers (parse (base ^ "cease.1@100")) in
  checkb "cease disables reset checker" true
    (List.mem "no_peer_visible_reset" cease);
  checkb "cease disables flap checker" true
    (List.mem "route_flap_absence" cease)

(* --- Replay determinism (the property CI's corpus gate relies on) ---------- *)

let prop_replay_deterministic =
  QCheck.Test.make ~name:"two runs of one descriptor give equal digests"
    ~count:8
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Chaos.Descriptor.generate ~seed:(seed + 1) in
      let o1 = Chaos.Runner.run d in
      let o2 = Chaos.Runner.run d in
      String.equal o1.Chaos.Runner.digest o2.Chaos.Runner.digest
      && o1.Chaos.Runner.events = o2.Chaos.Runner.events)

let test_generated_runs_green () =
  for seed = 1 to 10 do
    let o = Chaos.Runner.run (Chaos.Descriptor.generate ~seed) in
    if not (Chaos.Runner.ok o) then
      Alcotest.failf "seed %d not green: %s" seed (Chaos.Runner.summary o)
  done

(* --- Shrinking ------------------------------------------------------------- *)

(* A seeded product fault (promoting without fencing) makes any
   app-failure migration fail the single-primary checker, so the
   shrinker has a real, reproducible failure to minimize — and its
   minimum must keep exactly the one fault that forces the unfenced
   migration. *)
let test_shrink_minimizes () =
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      let d =
        Result.get_ok
          (Chaos.Descriptor.of_string
             "chaos1 seed=5 peers=2 hosts=3 ppfx=8 spfx=8 churn=1 delay=500 \
              window=16000 settle=20000 \
              faults=flap.1@1000+80,kill.app@4000,loss.1@9000+400:20")
      in
      match Chaos.Shrink.minimize ~max_runs:40 d with
      | None -> Alcotest.fail "descriptor did not fail under no_fence"
      | Some r ->
          checkb "minimal still fails" false (Chaos.Runner.ok r.outcome);
          let m = r.minimal in
          checkb "fault schedule shrank to the kill" true
            (match m.Chaos.Descriptor.faults with
            | [ Chaos.Descriptor.Kill _ ] -> true
            | _ -> false);
          checkb "workload reduced" true
            (m.Chaos.Descriptor.peers <= 2
            && m.Chaos.Descriptor.churn = 0
            && m.Chaos.Descriptor.peer_prefixes <= 8);
          checkb "run budget respected" true (r.runs_used <= 40))

(* --- Corpus ---------------------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chaos-corpus-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_roundtrip () =
  with_temp_dir (fun dir ->
      let d1 = Chaos.Descriptor.generate ~seed:11 in
      let d2 = Chaos.Descriptor.generate ~seed:12 in
      let p1 = Chaos.Corpus.save ~dir ~comment:"first\nsecond line" d1 in
      let _p2 = Chaos.Corpus.save ~dir d2 in
      (match Chaos.Corpus.load_file p1 with
      | Ok d -> checkb "comment lines skipped" true (Chaos.Descriptor.equal d d1)
      | Error e -> Alcotest.failf "load_file: %s" e);
      let entries = Chaos.Corpus.load_dir dir in
      checki "both entries listed" 2 (List.length entries);
      List.iter
        (fun (name, parsed) ->
          checkb "chaos extension" true
            (Filename.check_suffix name Chaos.Corpus.entry_extension);
          match parsed with
          | Ok d ->
              checkb "entry parses to a saved descriptor" true
                (Chaos.Descriptor.equal d d1 || Chaos.Descriptor.equal d d2)
          | Error e -> Alcotest.failf "corpus entry %s: %s" name e)
        entries)

let test_corpus_missing_dir () =
  checki "missing dir is empty corpus" 0
    (List.length (Chaos.Corpus.load_dir "/nonexistent/chaos-corpus"))

(* Pinned telemetry digests for every committed corpus entry. These
   change ONLY when event emission genuinely changes; in particular the
   sorted-key table folds feeding digests/snapshots must keep them
   byte-identical. Update deliberately, never to silence a failure. *)
let pinned_digests =
  [
    ( "seed352025351311880476-a489e3e4.chaos",
      "cce19579ceb519046c58eb784dfe8082" );
    ( "seed508528403378398481-3411f630.chaos",
      "4231d6d13fdf065bcb3d58d8ef0bd6e3" );
  ]

let test_corpus_digests_pinned () =
  let dir = if Sys.file_exists "corpus" then "corpus" else "../corpus" in
  let entries = Chaos.Corpus.load_dir dir in
  checki "every committed entry is pinned" (List.length pinned_digests)
    (List.length entries);
  List.iter
    (fun (name, expected) ->
      let r = Chaos.Corpus.replay_file (Filename.concat dir name) in
      checkb (name ^ " replays green") true (Chaos.Corpus.replay_ok r);
      match r.Chaos.Corpus.outcome with
      | Some o -> checks (name ^ " digest") expected o.Chaos.Runner.digest
      | None ->
          Alcotest.failf "%s: %s" name
            (Option.value r.Chaos.Corpus.parse_error ~default:"no outcome"))
    pinned_digests

let test_corpus_replay_detects_failure () =
  (* A replay must fail loudly for an entry whose bug has regressed —
     simulated here with a seeded product fault instead of a code
     regression. *)
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      with_temp_dir (fun dir ->
          let d =
            Result.get_ok
              (Chaos.Descriptor.of_string
                 "chaos1 seed=5 peers=1 hosts=3 ppfx=5 spfx=5 churn=0 \
                  delay=500 window=9000 settle=20000 faults=kill.app@2000")
          in
          let path = Chaos.Corpus.save ~dir d in
          let r = Chaos.Corpus.replay_file path in
          checkb "regressed entry fails replay" false (Chaos.Corpus.replay_ok r);
          checks "entry name" (Filename.basename path) r.Chaos.Corpus.name))

(* --- Campaigns ------------------------------------------------------------- *)

let test_campaign_green () =
  let c = Chaos.Fuzz.run ~runs:15 ~seed:42 () in
  checkb "15-run campaign green" true (Chaos.Fuzz.campaign_ok c);
  checki "all runs executed" 15 c.Chaos.Fuzz.runs;
  checkb "checkers saw events" true (c.Chaos.Fuzz.events_total > 0)

let test_campaign_captures_and_saves () =
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      with_temp_dir (fun dir ->
          (* Most generated schedules contain a migration-forcing fault,
             so a short campaign under no_fence must fail at least once;
             shrinking writes each repro to the corpus dir. *)
          let c = Chaos.Fuzz.run ~runs:5 ~seed:7 ~shrink:true ~corpus_dir:dir () in
          checkb "campaign failed" false (Chaos.Fuzz.campaign_ok c);
          match c.Chaos.Fuzz.failures with
          | [] -> Alcotest.fail "no failures recorded"
          | f :: _ -> (
              checkb "failure index in range" true
                (f.Chaos.Fuzz.index >= 0 && f.Chaos.Fuzz.index < 5);
              match (f.Chaos.Fuzz.shrunk, f.Chaos.Fuzz.saved) with
              | Some s, Some path ->
                  checkb "saved entry exists" true (Sys.file_exists path);
                  (match Chaos.Corpus.load_file path with
                  | Ok d ->
                      checkb "saved entry is the minimal descriptor" true
                        (Chaos.Descriptor.equal d s.Chaos.Shrink.minimal)
                  | Error e -> Alcotest.failf "saved entry: %s" e)
              | _ -> Alcotest.fail "failure missing shrink result or path")))

let () =
  Alcotest.run "chaos"
    [
      ( "descriptor",
        [
          Alcotest.test_case "generated are valid" `Quick test_generate_valid;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_generated;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "sub-seed spread" `Quick test_sub_seed_spread;
          Alcotest.test_case "applicability matrix" `Quick
            test_applicability_matrix;
        ] );
      ( "runner",
        Alcotest.test_case "generated runs green" `Slow
          test_generated_runs_green
        :: List.map QCheck_alcotest.to_alcotest [ prop_replay_deterministic ]
      );
      ("shrink", [ Alcotest.test_case "minimizes" `Slow test_shrink_minimizes ]);
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_corpus_missing_dir;
          Alcotest.test_case "replay detects regressions" `Quick
            test_corpus_replay_detects_failure;
          Alcotest.test_case "committed digests pinned" `Slow
            test_corpus_digests_pinned;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "green campaign" `Slow test_campaign_green;
          Alcotest.test_case "captures, shrinks, saves" `Slow
            test_campaign_captures_and_saves;
        ] );
    ]
