(* Runtime-verification layer: clean scenarios stay green, each seeded
   fault trips exactly its checker (mutation testing, which is what
   proves the checkers are not vacuously green), health reports render
   and parse, and the bundled JSON reader round-trips our emitters. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let checker_result (r : Monitor.Health.report) name =
  match List.assoc_opt name r.Monitor.Health.checkers with
  | Some res -> res
  | None -> Alcotest.failf "checker %s missing from report" name

let assert_all_pass (r : Monitor.Health.report) =
  List.iter
    (fun (name, res) ->
      match res with
      | Monitor.Checker.Pass -> ()
      | Monitor.Checker.Violations vs ->
          Alcotest.failf "clean run: %s violated: %s" name
            (String.concat "; "
               (List.map (fun v -> v.Monitor.Checker.detail) vs)))
    r.Monitor.Health.checkers

(* The fault must trip its own checker and leave every other green. *)
let assert_trips_exactly (r : Monitor.Health.report) name =
  List.iter
    (fun (n, res) ->
      match res with
      | Monitor.Checker.Pass ->
          if String.equal n name then
            Alcotest.failf "fault did not trip %s" name
      | Monitor.Checker.Violations vs ->
          if not (String.equal n name) then
            Alcotest.failf "fault for %s also tripped %s: %s" name n
              (String.concat "; "
                 (List.map (fun v -> v.Monitor.Checker.detail) vs)))
    r.Monitor.Health.checkers

(* --- Clean scenarios ------------------------------------------------------- *)

let test_clean_failover () =
  Monitor.Faults.reset ();
  let r = Tensor.Check.failover () in
  assert_all_pass r;
  checkb "report ok" true (Monitor.Health.ok r);
  checkb "saw events" true (r.Monitor.Health.events_seen > 0);
  (* The convergence checker must not pass vacuously: the harness emits
     two snapshot pairs, and the advertised sets are non-empty. *)
  let snaps =
    List.filter_map
      (fun (e : Telemetry.Bus.entry) ->
        match e.event with
        | Telemetry.Event.Rib_snapshot { size; _ } -> Some size
        | _ -> None)
      (Telemetry.Bus.events ())
  in
  checki "four rib snapshots" 4 (List.length snaps);
  checkb "snapshots non-empty" true (List.for_all (fun s -> s > 0) snaps)

let test_clean_planned () =
  Monitor.Faults.reset ();
  let r = Tensor.Check.planned () in
  assert_all_pass r;
  checkb "report ok" true (Monitor.Health.ok r)

let test_clean_split_brain () =
  Monitor.Faults.reset ();
  let r = Tensor.Check.split_brain () in
  assert_all_pass r;
  checkb "report ok" true (Monitor.Health.ok r)

(* --- Mutation tests: one fault, one checker ------------------------------- *)

let mutation fault scenario checker () =
  Monitor.Faults.reset ();
  let r = Monitor.Faults.with_fault fault scenario in
  assert_trips_exactly r checker;
  checkb "report not ok" false (Monitor.Health.ok r)

let test_peer_reset =
  mutation Monitor.Faults.peer_reset
    (fun () -> Tensor.Check.failover ~kind:Orch.Controller.App_failure ())
    "no_peer_visible_reset"

let test_repair_gap =
  mutation Monitor.Faults.repair_gap
    (fun () -> Tensor.Check.failover ())
    "tcp_stream_continuity"

let test_early_ack_release =
  mutation Monitor.Faults.early_ack_release
    (fun () -> Tensor.Check.failover ())
    "held_ack_safety"

let test_skip_rib_restore =
  mutation Monitor.Faults.skip_rib_restore
    (fun () -> Tensor.Check.failover ())
    "rib_convergence"

let test_no_fence =
  mutation Monitor.Faults.no_fence
    (fun () -> Tensor.Check.planned ())
    "split_brain_exclusion"

let test_flap_on_migration =
  mutation Monitor.Faults.flap_on_migration
    (fun () -> Tensor.Check.planned ())
    "route_flap_absence"

let test_leak_held_acks =
  mutation Monitor.Faults.leak_held_acks
    (fun () -> Tensor.Check.failover ())
    "queue_drain"

let test_clean_degraded () =
  Monitor.Faults.reset ();
  let r = Tensor.Check.degraded () in
  assert_all_pass r;
  checkb "report ok" true (Monitor.Health.ok r);
  (* Not vacuous: the store outage really pushed the session through a
     degrade-and-rearm cycle. *)
  let saw ev =
    List.exists
      (fun (e : Telemetry.Bus.entry) -> ev e.event)
      (Telemetry.Bus.events ())
  in
  checkb "entered degraded" true
    (saw (function Telemetry.Event.Degraded_enter _ -> true | _ -> false));
  checkb "exited degraded" true
    (saw (function Telemetry.Event.Degraded_exit _ -> true | _ -> false))

let test_late_degrade =
  mutation Monitor.Faults.late_degrade
    (fun () -> Tensor.Check.degraded ())
    "degraded_mode_exclusion"

(* The BFD bound needs an actual BFD detection, which the NSR scenarios
   mask by design (the relay keeps the peer fed). Drive a raw session
   pair instead: same checker, observed directly. *)
let bfd_detect_report () =
  Telemetry.Control.reset ();
  Telemetry.Control.set_enabled true;
  let mon = Monitor.Checker.install () in
  let eng = Engine.create () in
  let net = Netsim.Network.create eng in
  let a = Netsim.Network.add_node net "a"
  and b = Netsim.Network.add_node net "b" in
  let link, addr_a, addr_b =
    Netsim.Network.connect net ~delay:(Time.us 200) a b
  in
  let _sa = Bfd.create_session (Bfd.endpoint a) ~vrf:"v0" ~remote:addr_b () in
  let _sb = Bfd.create_session (Bfd.endpoint b) ~vrf:"v0" ~remote:addr_a () in
  Engine.run_for eng (Time.sec 1);
  Netsim.Link.set_up link false;
  Engine.run_for eng (Time.sec 2);
  let r = Monitor.Health.make ~scenario:"bfd" mon in
  Telemetry.Control.set_enabled false;
  r

let test_bfd_clean () =
  Monitor.Faults.reset ();
  let r = bfd_detect_report () in
  (match checker_result r "bfd_detection_bound" with
  | Monitor.Checker.Pass -> ()
  | Monitor.Checker.Violations vs ->
      Alcotest.failf "clean detection flagged: %s"
        (String.concat "; " (List.map (fun v -> v.Monitor.Checker.detail) vs)));
  (* Not vacuous: a detection actually happened. *)
  checkb "bfd_down observed" true
    (List.exists
       (fun (e : Telemetry.Bus.entry) ->
         match e.event with Telemetry.Event.Bfd_down _ -> true | _ -> false)
       (Telemetry.Bus.events ()))

let test_bfd_slow_detect () =
  Monitor.Faults.reset ();
  let r = Monitor.Faults.with_fault Monitor.Faults.bfd_slow_detect bfd_detect_report in
  assert_trips_exactly r "bfd_detection_bound"

(* --- Health report rendering ----------------------------------------------- *)

let test_health_json_parses () =
  Monitor.Faults.reset ();
  let r = Tensor.Check.planned () in
  let j = Monitor.Json.parse_exn (Monitor.Health.to_json r) in
  let get k = Option.get (Monitor.Json.member k j) in
  checkb "ok field" true (Monitor.Json.to_bool (get "ok") = Some true);
  checks "scenario" "planned"
    (Option.get (Monitor.Json.to_str (get "scenario")));
  let checkers = Option.get (Monitor.Json.to_list (get "checkers")) in
  checki "ten checkers" 10 (List.length checkers);
  List.iter
    (fun c ->
      checkb "status is pass" true
        (Option.bind (Monitor.Json.member "status" c) Monitor.Json.to_str
        = Some "pass"))
    checkers;
  let slos = Option.get (Monitor.Json.to_list (get "slos")) in
  checkb "has slos" true (slos <> []);
  List.iter
    (fun s ->
      checkb "slo ok" true
        (Option.bind (Monitor.Json.member "ok" s) Monitor.Json.to_bool
        = Some true))
    slos

let test_health_json_violation_shape () =
  (* A violating run's JSON must carry seq/span/detail per violation. *)
  Monitor.Faults.reset ();
  let r =
    Monitor.Faults.with_fault Monitor.Faults.repair_gap (fun () ->
        Tensor.Check.failover ())
  in
  let j = Monitor.Json.parse_exn (Monitor.Health.to_json r) in
  checkb "not ok" true
    (Option.bind (Monitor.Json.member "ok" j) Monitor.Json.to_bool
    = Some false);
  let total =
    Option.bind (Monitor.Json.member "violations_total" j) Monitor.Json.to_int
  in
  checkb "violations counted" true (match total with Some n -> n > 0 | None -> false);
  let viols =
    Option.bind (Monitor.Json.member "checkers" j) Monitor.Json.to_list
    |> Option.get
    |> List.concat_map (fun c ->
           Option.bind (Monitor.Json.member "violations" c) Monitor.Json.to_list
           |> Option.value ~default:[])
  in
  checkb "violation objects populated" true
    (List.for_all
       (fun v ->
         Option.bind (Monitor.Json.member "event_seq" v) Monitor.Json.to_int
         <> None
         && Option.bind (Monitor.Json.member "detail" v) Monitor.Json.to_str
            <> None)
       viols
    && viols <> [])

(* --- The bundled JSON reader ------------------------------------------------ *)

let test_json_parser () =
  let j =
    Monitor.Json.parse_exn
      {|{"a":[1,2.5,-3e2],"s":"q\"\\\nA","t":true,"n":null,"o":{"k":7}}|}
  in
  checkb "array" true
    (Option.bind (Monitor.Json.member "a" j) Monitor.Json.to_list
     |> Option.map List.length
    = Some 3);
  checks "escapes" "q\"\\\nA"
    (Option.get (Option.bind (Monitor.Json.member "s" j) Monitor.Json.to_str));
  checkb "nested path" true
    (Option.bind (Monitor.Json.path [ "o"; "k" ] j) Monitor.Json.to_int
    = Some 7);
  checkb "null" true (Monitor.Json.member "n" j = Some Monitor.Json.Null);
  checkb "rejects garbage" true
    (match Monitor.Json.parse "{\"a\":}" with Error _ -> true | Ok _ -> false);
  checkb "rejects trailing" true
    (match Monitor.Json.parse "1 2" with Error _ -> true | Ok _ -> false)

(* A bench-snapshot shaped document survives the reader (what
   bench/compare.exe depends on). *)
let test_json_bench_snapshot_shape () =
  let j =
    Monitor.Json.parse_exn
      {|{"schema_version":1,"quick":false,"experiments":[{"id":"fig6a","wall_s":1.5,"sim_events":100,"sim_events_per_s":66.7}],"total_wall_s":1.5,"metrics":{"metrics":[]}}|}
  in
  let exps =
    Option.get
      (Option.bind (Monitor.Json.member "experiments" j) Monitor.Json.to_list)
  in
  checki "one experiment" 1 (List.length exps);
  let e = List.hd exps in
  checkb "wall readable" true
    (Option.bind (Monitor.Json.member "wall_s" e) Monitor.Json.to_float
    = Some 1.5)

let () =
  Alcotest.run "monitor"
    [
      ( "clean",
        [
          Alcotest.test_case "failover" `Quick test_clean_failover;
          Alcotest.test_case "planned" `Quick test_clean_planned;
          Alcotest.test_case "split-brain" `Quick test_clean_split_brain;
          Alcotest.test_case "bfd-detection" `Quick test_bfd_clean;
          Alcotest.test_case "degraded" `Quick test_clean_degraded;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "peer_reset" `Quick test_peer_reset;
          Alcotest.test_case "repair_gap" `Quick test_repair_gap;
          Alcotest.test_case "early_ack_release" `Quick test_early_ack_release;
          Alcotest.test_case "bfd_slow_detect" `Quick test_bfd_slow_detect;
          Alcotest.test_case "skip_rib_restore" `Quick test_skip_rib_restore;
          Alcotest.test_case "no_fence" `Quick test_no_fence;
          Alcotest.test_case "flap_on_migration" `Quick test_flap_on_migration;
          Alcotest.test_case "leak_held_acks" `Quick test_leak_held_acks;
          Alcotest.test_case "late_degrade" `Quick test_late_degrade;
        ] );
      ( "health",
        [
          Alcotest.test_case "json-parses" `Quick test_health_json_parses;
          Alcotest.test_case "violation-shape" `Quick
            test_health_json_violation_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "parser" `Quick test_json_parser;
          Alcotest.test_case "bench-snapshot" `Quick
            test_json_bench_snapshot_shape;
        ] );
    ]
