(* Tests for the Redis-like store: semantics, the Figure 5(b) latency
   calibration, replication, and failure behaviour. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let setup ?cost () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let app = Network.add_node net "app" in
  let db = Network.add_node net "db" in
  let _, _, db_addr = Network.connect net ~delay:(Time.us 100) app db in
  let server = Store.Server.create ?cost db in
  let client = Store.Client.create app ~server:db_addr in
  (eng, server, client, db)

let run_set eng client pairs =
  let done_ = ref false in
  Store.Client.set client pairs (fun r ->
      (match r with Ok () -> () | Error `Timeout -> Alcotest.fail "set timeout");
      done_ := true);
  Engine.run eng;
  checkb "set completed" true !done_

let test_set_get () =
  let eng, server, client, _ = setup ~cost:Store.free_cost_model () in
  run_set eng client [ ("k1", "v1"); ("k2", "v2") ];
  checki "records" 2 (Store.Server.records server);
  let got = ref [] in
  Store.Client.get client [ "k1"; "k3"; "k2" ] (fun r ->
      match r with Ok vs -> got := vs | Error _ -> Alcotest.fail "get failed");
  Engine.run eng;
  Alcotest.(check (list (pair string (option string))))
    "values in request order"
    [ ("k1", Some "v1"); ("k3", None); ("k2", Some "v2") ]
    !got

let test_overwrite_accounting () =
  let eng, server, client, _ = setup ~cost:Store.free_cost_model () in
  run_set eng client [ ("key", "short") ];
  let b1 = Store.Server.stored_bytes server in
  run_set eng client [ ("key", "a much longer value") ];
  checki "still one record" 1 (Store.Server.records server);
  checki "bytes reflect overwrite"
    (b1 - String.length "short" + String.length "a much longer value")
    (Store.Server.stored_bytes server)

let test_del () =
  let eng, server, client, _ = setup ~cost:Store.free_cost_model () in
  run_set eng client [ ("a", "1"); ("b", "2"); ("c", "3") ];
  let n = ref (-1) in
  Store.Client.del client [ "a"; "nope"; "c" ] (fun r ->
      match r with Ok k -> n := k | Error _ -> Alcotest.fail "del failed");
  Engine.run eng;
  checki "deleted existing only" 2 !n;
  checki "one left" 1 (Store.Server.records server);
  checkb "b remains" true (Store.Server.peek server "b" = Some "2")

let test_scan () =
  let eng, _, client, _ = setup ~cost:Store.free_cost_model () in
  run_set eng client
    [ ("conn1|m|3", "z"); ("conn1|m|1", "x"); ("conn2|m|1", "y"); ("conn1|m|2", "w") ];
  let got = ref [] in
  Store.Client.scan client ~prefix:"conn1|" (fun r ->
      match r with Ok ps -> got := ps | Error _ -> Alcotest.fail "scan failed");
  Engine.run eng;
  Alcotest.(check (list (pair string string)))
    "prefix-filtered, sorted"
    [ ("conn1|m|1", "x"); ("conn1|m|2", "w"); ("conn1|m|3", "z") ]
    !got

let test_ordering_single_client () =
  (* Two sets to the same key issued back-to-back land in order. *)
  let eng, server, client, _ = setup () in
  Store.Client.set client [ ("k", "first") ] (fun _ -> ());
  Store.Client.set client [ ("k", "second") ] (fun _ -> ());
  Engine.run eng;
  checkb "last write wins" true (Store.Server.peek server "k" = Some "second")

(* --- Latency calibration (Figure 5b) ----------------------------------- *)

let record_value = String.make 4096 'v' (* 4 KB BGP message *)
let record_key i = Printf.sprintf "%-86s%04d" "vrf|quad|peer" i (* 90 B key *)

let timed_op eng f =
  let t0 = Engine.now eng in
  let t1 = ref None in
  f (fun () -> t1 := Some (Engine.now eng));
  Engine.run eng;
  match !t1 with
  | Some t -> Time.to_ms_f (Time.diff t t0)
  | None -> Alcotest.fail "operation did not complete"

let write_n _eng client n k =
  let pairs = List.init n (fun i -> (record_key i, record_value)) in
  Store.Client.set client ~timeout:(Time.minutes 5) pairs (fun r ->
      match r with Ok () -> k () | Error _ -> Alcotest.fail "set failed")

let read_n _eng client n k =

  let keys = List.init n (fun i -> record_key i) in
  Store.Client.get client ~timeout:(Time.minutes 5) keys (fun r ->
      match r with Ok _ -> k () | Error _ -> Alcotest.fail "get failed")

let test_latency_single_ops () =
  let eng, _, client, _ = setup () in
  let w1 = timed_op eng (fun k -> write_n eng client 1 k) in
  checkb (Printf.sprintf "single write ~1ms (got %.3f)" w1) true
    (w1 > 0.5 && w1 < 1.5);
  let r1 = timed_op eng (fun k -> read_n eng client 1 k) in
  checkb (Printf.sprintf "single read <0.5ms (got %.3f)" r1) true (r1 < 0.5);
  checkb "write ~2.5x read" true (w1 /. r1 > 1.5 && w1 /. r1 < 3.5)

let test_latency_small_batches () =
  let eng, _, client, _ = setup () in
  let w10 = timed_op eng (fun k -> write_n eng client 10 k) in
  checkb (Printf.sprintf "10 writes <2ms (got %.3f)" w10) true (w10 < 2.0);
  let _ = timed_op eng (fun k -> write_n eng client 70 k) in
  let r70 = timed_op eng (fun k -> read_n eng client 70 k) in
  checkb (Printf.sprintf "70 reads ~1-2ms (got %.3f)" r70) true (r70 < 2.5)

let test_latency_large_batches () =
  let eng, _, client, _ = setup () in
  let w10k = timed_op eng (fun k -> write_n eng client 10_000 k) in
  checkb (Printf.sprintf "10K writes ~500ms (got %.1f)" w10k) true
    (w10k > 350.0 && w10k < 650.0);
  let r10k = timed_op eng (fun k -> read_n eng client 10_000 k) in
  checkb (Printf.sprintf "10K reads ~200ms (got %.1f)" r10k) true
    (r10k > 140.0 && r10k < 260.0)

let test_latency_batching_beats_singles () =
  let eng, _, client, _ = setup () in
  let batch = timed_op eng (fun k -> write_n eng client 100 k) in
  (* One hundred sequential single-record writes. *)
  let t0 = Engine.now eng in
  let finished = ref Time.zero in
  let rec go i =
    if i = 0 then finished := Engine.now eng
    else
      Store.Client.set client [ (record_key i, record_value) ] (fun _ ->
          go (i - 1))
  in
  go 100;
  Engine.run eng;
  let singles = Time.to_ms_f (Time.diff !finished t0) in
  checkb
    (Printf.sprintf "batch (%.1fms) well under singles (%.1fms)" batch singles)
    true
    (batch *. 5.0 < singles)

(* --- Replication and failures ------------------------------------------ *)

let test_replica_receives_writes () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let app = Network.add_node net "app" in
  let db1 = Network.add_node net "db1" in
  let db2 = Network.add_node net "db2" in
  let _, _, db1_addr = Network.connect net app db1 in
  let _ = Network.connect net db1 db2 in
  let primary = Store.Server.create ~cost:Store.free_cost_model db1 in
  let replica = Store.Server.create ~cost:Store.free_cost_model db2 in
  Store.Server.attach_replica primary replica;
  let client = Store.Client.create app ~server:db1_addr in
  run_set eng client [ ("k", "v") ];
  checkb "replica has the write" true (Store.Server.peek replica "k" = Some "v")

let test_replica_same_node_rejected () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let db = Network.add_node net "db" in
  Node.add_address db (Addr.of_string "1.2.3.4");
  let s1 = Store.Server.create db in
  let s2 = Store.Server.create db in
  Alcotest.check_raises "same node"
    (Invalid_argument "Store.Server.attach_replica: replica on the same node")
    (fun () -> Store.Server.attach_replica s1 s2)

let test_server_down_times_out () =
  let eng, _, client, db_node = setup () in
  Node.set_up db_node false;
  let result = ref None in
  Store.Client.set client ~timeout:(Time.ms 500) [ ("k", "v") ] (fun r ->
      result := Some r);
  Engine.run eng;
  match !result with
  | Some (Error `Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_server_recovers_after_reboot () =
  let eng, server, client, db_node = setup ~cost:Store.free_cost_model () in
  run_set eng client [ ("persist", "me") ];
  Node.set_up db_node false;
  ignore (Engine.schedule_after eng (Time.sec 1) (fun () -> Node.set_up db_node true));
  Engine.run eng;
  let got = ref None in
  Store.Client.get client [ "persist" ] (fun r ->
      match r with
      | Ok [ (_, v) ] -> got := v
      | _ -> Alcotest.fail "get failed");
  Engine.run eng;
  checkb "data survives reboot (RAM model, process kept)" true
    (!got = Some "me");
  checkb "server object intact" true (Store.Server.records server = 1)

let replicated_setup ?cost () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let app = Network.add_node net "app" in
  let db1 = Network.add_node net "db1" in
  let db2 = Network.add_node net "db2" in
  let _, app_on_db1, db1_addr = Network.connect net app db1 in
  let _, app_on_db2, db2_addr = Network.connect net app db2 in
  (* The app sources requests from one address; each store node routes
     every reply back through its own link to the app. *)
  Node.add_route db1 (Addr.prefix_of_string "0.0.0.0/0") app_on_db1;
  Node.add_route db2 (Addr.prefix_of_string "0.0.0.0/0") app_on_db2;
  let primary = Store.Server.create ?cost db1 in
  let replica = Store.Server.create ?cost db2 in
  Store.Server.attach_replica primary replica;
  (eng, primary, replica, db1_addr, db2_addr, app)

let test_replica_ack_after_apply () =
  (* The primary withholds its reply until the replica has applied the
     write, so at callback time the replica must already hold it. Runs
     under the calibrated cost model, where the replica's apply takes
     real simulated time. *)
  let eng, _, replica, db1_addr, _, app = replicated_setup () in
  let client = Store.Client.create app ~server:db1_addr in
  let seen = ref None in
  Store.Client.set client [ ("k", "v") ] (fun r ->
      (match r with Ok () -> () | Error `Timeout -> Alcotest.fail "set timeout");
      seen := Some (Store.Server.peek replica "k"));
  Engine.run eng;
  Alcotest.(check (option (option string)))
    "replica applied before the ack" (Some (Some "v")) !seen

let test_replica_crash_mid_write_detaches () =
  let eng, primary, replica, db1_addr, _, app = replicated_setup () in
  let client = Store.Client.create app ~server:db1_addr in
  (* Under the calibrated cost model the primary finishes a single write
     around 1 ms and the replica's apply completes about 1 ms after that;
     crash the replica in between, so it is found dead exactly when the
     primary is waiting on it. The write must still be acknowledged
     (replica detached), not wedge forever. *)
  ignore
    (Engine.schedule_after eng (Time.us 1_500) (fun () ->
         Store.Server.crash replica));
  let first = ref None in
  Store.Client.set client [ ("k1", "v1") ] (fun r -> first := Some r);
  Engine.run eng;
  (match !first with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write should complete despite the dead replica");
  checkb "crashed replica lost its RAM" true
    (Store.Server.peek replica "k1" = None);
  let second = ref None in
  Store.Client.set client [ ("k2", "v2") ] (fun r -> second := Some r);
  Engine.run eng;
  (match !second with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "later writes must not wedge");
  checkb "primary holds both writes" true
    (Store.Server.peek primary "k1" = Some "v1"
    && Store.Server.peek primary "k2" = Some "v2")

let test_promotion_after_primary_death () =
  let eng, primary, replica, db1_addr, db2_addr, app =
    replicated_setup ~cost:Store.free_cost_model ()
  in
  let client =
    Store.Client.create ~replica:db2_addr ~retry:(Rpc.retry_policy ()) app
      ~server:db1_addr
  in
  let ok label r =
    match r with
    | Ok _ -> ()
    | Error `Timeout -> Alcotest.fail (label ^ " timed out")
  in
  Store.Client.set client ~timeout:(Time.sec 1) [ ("k1", "v1") ] (ok "k1");
  Engine.run eng;
  Store.Server.crash primary;
  Store.Server.promote replica;
  let k2_done = ref false and k3_done = ref false in
  Store.Client.set client ~timeout:(Time.sec 1) [ ("k2", "v2") ] (fun r ->
      ok "k2" r;
      checkb "per-client FIFO across failover" false !k3_done;
      k2_done := true);
  Store.Client.set client ~timeout:(Time.sec 1) [ ("k3", "v3") ] (fun r ->
      ok "k3" r;
      k3_done := true);
  Engine.run eng;
  checkb "both post-crash writes landed" true (!k2_done && !k3_done);
  checkb "client failed over" true (Store.Client.failed_over client);
  checkb "replica has pre-crash and post-failover writes" true
    (Store.Server.peek replica "k1" = Some "v1"
    && Store.Server.peek replica "k2" = Some "v2"
    && Store.Server.peek replica "k3" = Some "v3")

(* --- Properties --------------------------------------------------------- *)

let prop_set_get_roundtrip =
  QCheck.Test.make ~name:"set/get roundtrip for arbitrary pairs" ~count:50
    QCheck.(
      list_of_size
        Gen.(int_range 1 20)
        (pair (string_of_size Gen.(int_range 1 30)) string))
    (fun pairs ->
      let eng, _, client, _ = setup ~cost:Store.free_cost_model () in
      let ok = ref false in
      Store.Client.set client pairs (fun _ ->
          let keys = List.map fst pairs in
          Store.Client.get client keys (fun r ->
              match r with
              | Ok vs ->
                  (* Last write wins per duplicate key. *)
                  let expected k =
                    List.fold_left
                      (fun acc (k', v) -> if k' = k then Some v else acc)
                      None pairs
                  in
                  ok :=
                    List.for_all (fun (k, v) -> v = expected k) vs
              | Error _ -> ()));
      Engine.run eng;
      !ok)

let prop_latency_monotone_in_batch =
  QCheck.Test.make ~name:"batched write latency is monotone in size" ~count:10
    QCheck.(pair (int_range 1 200) (int_range 1 200))
    (fun (a, b) ->
      let small = min a b and large = max a b in
      let eng, _, client, _ = setup () in
      let t_small = timed_op eng (fun k -> write_n eng client small k) in
      let t_large = timed_op eng (fun k -> write_n eng client large k) in
      t_small <= t_large +. 1e-9)

let () =
  Alcotest.run "store"
    [
      ( "semantics",
        [
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "overwrite accounting" `Quick
            test_overwrite_accounting;
          Alcotest.test_case "del" `Quick test_del;
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "single-client ordering" `Quick
            test_ordering_single_client;
        ] );
      ( "latency",
        [
          Alcotest.test_case "single ops" `Quick test_latency_single_ops;
          Alcotest.test_case "small batches" `Quick test_latency_small_batches;
          Alcotest.test_case "large batches" `Quick test_latency_large_batches;
          Alcotest.test_case "batching beats singles" `Quick
            test_latency_batching_beats_singles;
        ] );
      ( "replication",
        [
          Alcotest.test_case "replica receives writes" `Quick
            test_replica_receives_writes;
          Alcotest.test_case "same-node replica rejected" `Quick
            test_replica_same_node_rejected;
          Alcotest.test_case "down server times out" `Quick
            test_server_down_times_out;
          Alcotest.test_case "reboot keeps RAM state" `Quick
            test_server_recovers_after_reboot;
          Alcotest.test_case "ack only after replica apply" `Quick
            test_replica_ack_after_apply;
          Alcotest.test_case "replica crash mid-write detaches" `Quick
            test_replica_crash_mid_write_detaches;
          Alcotest.test_case "promotion after primary death" `Quick
            test_promotion_after_primary_death;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_set_get_roundtrip; prop_latency_monotone_in_batch ] );
    ]
