(* lib/prof: per-label engine cost attribution must be correct (counts,
   inheritance, queue dwell), strictly observation-only (telemetry
   digests byte-identical with the profiler on or off), and exportable
   in formats external tools actually parse (folded stacks, speedscope
   JSON). Plus the bus-drop accounting the health report now gates on. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let find_stat label =
  List.find_opt
    (fun (st : Prof.Profiler.stat) -> st.label = label)
    (Prof.Profiler.stats ())

let stat label =
  match find_stat label with
  | Some st -> st
  | None -> Alcotest.failf "no profiler row for label %S" label

(* --- attribution ---------------------------------------------------------- *)

let test_label_attribution_and_inheritance () =
  Prof.Profiler.attach ();
  checkb "hook installed" true (Sim.Engine.profiling ());
  let eng = Sim.Engine.create () in
  (* A labeled event whose handler schedules an unlabeled child: the
     child books under the parent's label, so labeling a subsystem's
     entry point attributes its whole cascade. *)
  ignore
    (Sim.Engine.schedule_after eng ~label:"root" (Sim.Time.ms 10) (fun () ->
         ignore (Sim.Engine.schedule_after eng (Sim.Time.ms 5) (fun () -> ()))));
  ignore
    (Sim.Engine.schedule_after eng ~label:"other" (Sim.Time.ms 1) (fun () ->
         ignore (Sys.opaque_identity (List.init 1000 Fun.id))));
  (* No label and no running event: defaults to "main". *)
  ignore (Sim.Engine.schedule_after eng (Sim.Time.ms 2) (fun () -> ()));
  Sim.Engine.run eng;
  Prof.Profiler.detach ();
  checkb "hook removed" false (Sim.Engine.profiling ());
  checki "root books parent + inherited child" 2 (stat "root").events;
  checki "other books one event" 1 (stat "other").events;
  checki "top-level default label" 1 (stat "main").events;
  checki "total events" 4 (Prof.Profiler.total_events ());
  checkb "allocation attributed to the allocating label" true
    ((stat "other").alloc_bytes > 0.0);
  (* Queue dwell is simulated time from schedule to dispatch: the root
     event waited 10 ms, its child 5 ms. *)
  Alcotest.(check (float 1e-9))
    "root dwell = 10ms + 5ms" 0.015 (stat "root").dwell_s;
  Alcotest.(check (float 1e-9))
    "root max dwell = 10ms" 0.010 (stat "root").dwell_max_s;
  (* top is ordered and capped. *)
  let top2 = Prof.Profiler.top ~by:Prof.Profiler.By_events 2 in
  checki "top bounded" 2 (List.length top2);
  checks "most events first" "root" (List.hd top2).Prof.Profiler.label;
  Prof.Profiler.reset ();
  checki "reset clears rows" 0 (List.length (Prof.Profiler.stats ()))

(* --- determinism: profiler on/off must not change telemetry ---------------- *)

let corpus_dir () = if Sys.file_exists "corpus" then "corpus" else "../corpus"

let test_digests_identical_with_profiler () =
  let entries = Chaos.Corpus.load_dir (corpus_dir ()) in
  checkb "committed corpus present" true (List.length entries >= 2);
  List.iteri
    (fun i (name, d) ->
      if i < 2 then
        match d with
        | Error e -> Alcotest.failf "%s: %s" name e
        | Ok desc ->
            let off = Chaos.Runner.run desc in
            Prof.Profiler.attach ();
            let on_ = Chaos.Runner.run desc in
            Prof.Profiler.detach ();
            checkb (name ^ " replays green") true
              (Chaos.Runner.ok off && Chaos.Runner.ok on_);
            checks
              (name ^ ": telemetry digest identical with profiler attached")
              off.Chaos.Runner.digest on_.Chaos.Runner.digest;
            checkb (name ^ ": profiler saw the run") true
              (Prof.Profiler.total_events () > 0))
    entries

(* --- export formats -------------------------------------------------------- *)

let json_mem name j =
  match Monitor.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" name

let test_export_formats () =
  Prof.Profiler.attach ();
  let eng = Sim.Engine.create () in
  ignore
    (Sim.Engine.schedule_after eng ~label:"a.x" (Sim.Time.ms 1) (fun () ->
         ignore (Sys.opaque_identity (List.init 50_000 Fun.id))));
  ignore
    (Sim.Engine.schedule_after eng ~label:"b.y" (Sim.Time.ms 2) (fun () ->
         ignore (Sys.opaque_identity (List.init 50_000 Fun.id))));
  Sim.Engine.run eng;
  Prof.Profiler.detach ();
  let folded = Prof.Export.folded_alloc () in
  checkb "rows present" true (List.length folded >= 2);
  checkb "stacks rooted at engine" true
    (List.for_all
       (fun (s, w) ->
         w > 0 && String.length s > 7 && String.sub s 0 7 = "engine;")
       folded);
  checks "folded lines are 'stack weight', sorted by stack"
    "a 1\na;b 3\n"
    (Prof.Export.folded_to_string [ ("a;b", 3); ("a", 1) ]);
  let json = Prof.Export.speedscope ~name:"t" (Prof.Export.standard_profiles ()) in
  match Monitor.Json.parse json with
  | Error e -> Alcotest.failf "speedscope output is not valid JSON: %s" e
  | Ok j ->
      checkb "declares the speedscope schema" true
        (Monitor.Json.to_str (json_mem "$schema" j)
        = Some "https://www.speedscope.app/file-format-schema.json");
      let profiles =
        match Monitor.Json.to_list (json_mem "profiles" j) with
        | Some l -> l
        | None -> Alcotest.fail "profiles is not a list"
      in
      checki "three standard views" 3 (List.length profiles);
      let frames =
        match
          Monitor.Json.to_list (json_mem "frames" (json_mem "shared" j))
        with
        | Some l -> l
        | None -> Alcotest.fail "shared.frames is not a list"
      in
      checkb "shared frame table non-empty" true (List.length frames >= 3);
      List.iter
        (fun p ->
          let samples =
            match Monitor.Json.to_list (json_mem "samples" p) with
            | Some l -> l
            | None -> Alcotest.fail "samples is not a list"
          in
          let weights =
            match Monitor.Json.to_list (json_mem "weights" p) with
            | Some l -> l
            | None -> Alcotest.fail "weights is not a list"
          in
          checki "one weight per sample" (List.length samples)
            (List.length weights))
        profiles

(* --- bus drop accounting ---------------------------------------------------- *)

let test_bus_drop_accounting () =
  Telemetry.Control.reset ();
  Telemetry.Bus.set_capacity 4;
  Telemetry.Control.set_enabled true;
  let eng = Sim.Engine.create () in
  let dropped0 =
    Telemetry.Registry.value (Telemetry.Registry.counter "telemetry.bus_dropped")
  in
  for i = 1 to 10 do
    Telemetry.Bus.emit eng
      (Telemetry.Event.Generic
         { cat = Telemetry.Event.Tcp; name = "t"; detail = string_of_int i })
  done;
  checki "6 of 10 entries overwritten" 6 (Telemetry.Bus.dropped_total ());
  checki "telemetry.bus_dropped counter tracks overwrites" 6
    (Telemetry.Registry.value
       (Telemetry.Registry.counter "telemetry.bus_dropped")
    - dropped0);
  Alcotest.(check (float 0.0))
    "ring high-water gauge saturates at capacity" 4.0
    (Telemetry.Registry.gauge_value
       (Telemetry.Registry.gauge "telemetry.ring_hwm.tcp"));
  (* Health gates on it: a report cut while drops happened is unhealthy. *)
  let mon = Monitor.Checker.install () in
  let report = Monitor.Health.make ~scenario:"drop-test" mon in
  checki "report carries the drop count" 6 report.Monitor.Health.bus_dropped;
  checkb "drops fail the health report" false (Monitor.Health.ok report);
  Telemetry.Control.set_enabled false;
  (* Restore the default capacity (clears the rings) for later suites. *)
  Telemetry.Bus.set_capacity 8192;
  Telemetry.Control.reset ();
  checki "clear resets drop accounting" 0 (Telemetry.Bus.dropped_total ())

let () =
  Alcotest.run "prof"
    [
      ( "profiler",
        [
          Alcotest.test_case "label attribution, inheritance, dwell" `Quick
            test_label_attribution_and_inheritance;
          Alcotest.test_case "export formats" `Quick test_export_formats;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus digests identical with profiler on" `Slow
            test_digests_identical_with_profiler;
        ] );
      ( "bus",
        [
          Alcotest.test_case "drop counter, hwm gauge, health gate" `Quick
            test_bus_drop_accounting;
        ] );
    ]
