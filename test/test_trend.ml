(* bench/trend_core: the best-so-far trajectory analysis behind
   bench/trend.exe — previously only exercised via CI. Covers best
   selection across a series, the noise floor (fast experiments gate on
   real doublings, not jitter), and mixed schema v1/v2 snapshots. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let parse s =
  match Monitor.Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad test snapshot: %s" e

let snap ?(schema = 2) exps =
  let body =
    String.concat ","
      (List.map
         (fun (id, wall) ->
           Printf.sprintf "{\"id\":\"%s\",\"wall_s\":%g,\"sim_events\":1}" id
             wall)
         exps)
  in
  parse
    (Printf.sprintf
       "{\"schema_version\":%d,\"quick\":true,\"experiments\":[%s]}" schema
       body)

let exps j =
  match Trend_core.experiments j with
  | Ok e -> e
  | Error m -> Alcotest.failf "experiments: %s" m

let vs_best (r : Trend_core.row) =
  match r.verdict with
  | Trend_core.Vs_best v -> v
  | _ -> Alcotest.failf "expected a vs-best verdict for %s" r.id

let row id rows =
  match List.find_opt (fun (r : Trend_core.row) -> r.id = id) rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s" id

(* --- snapshot parsing ------------------------------------------------------- *)

let test_experiments_parsing () =
  let j = snap [ ("fig5a", 4.0); ("table1", 0.08) ] in
  Alcotest.(check (list (pair string (float 1e-9))))
    "id/wall pairs in order"
    [ ("fig5a", 4.0); ("table1", 0.08) ]
    (exps j);
  match Trend_core.experiments (parse "{\"quick\":true}") with
  | Ok _ -> Alcotest.fail "missing experiments array must be an error"
  | Error _ -> ()

(* --- best-so-far selection -------------------------------------------------- *)

let test_best_so_far () =
  (* Best is the minimum across *history* (1.0), not the adjacent
     snapshot (3.0): a creeping regression is judged against the best. *)
  let series =
    List.map exps
      [
        snap [ ("fig5a", 1.0) ];
        snap [ ("fig5a", 3.0) ];
        snap [ ("fig5a", 2.0) ];
      ]
  in
  let rows = Trend_core.analyze ~threshold:1.5 series in
  let v = vs_best (row "fig5a" rows) in
  checkf "best is the series minimum" 1.0 v.best;
  checkf "ratio vs best, not vs previous" 2.0 v.ratio;
  checkb "2x of best with headroom over the floor regresses" true v.regression;
  checki "regressions lists it" 1 (List.length (Trend_core.regressions rows));
  (* The newest snapshot itself never lowers its own bar. *)
  let rows =
    Trend_core.analyze ~threshold:1.5
      (List.map exps [ snap [ ("fig5a", 2.0) ]; snap [ ("fig5a", 1.0) ] ])
  in
  let v = vs_best (row "fig5a" rows) in
  checkb "improvement is not a regression" false v.regression;
  checkf "ratio below 1" 0.5 v.ratio

let test_new_and_gone () =
  let series =
    List.map exps [ snap [ ("old", 1.0) ]; snap [ ("fresh", 1.0) ] ]
  in
  let rows = Trend_core.analyze series in
  (match (row "fresh" rows).verdict with
  | Trend_core.New w -> checkf "new carries its wall time" 1.0 w
  | _ -> Alcotest.fail "fresh should be New");
  (match (row "old" rows).verdict with
  | Trend_core.Gone -> ()
  | _ -> Alcotest.fail "old should be Gone");
  checki "neither counts as a regression" 0
    (List.length (Trend_core.regressions rows));
  Alcotest.(check (list (option (float 1e-9))))
    "points keep per-snapshot holes"
    [ Some 1.0; None ]
    (row "old" rows).Trend_core.points

(* --- noise floor ------------------------------------------------------------ *)

let test_noise_floor () =
  checkf "slow experiments: 50ms absolute floor" 0.05 (Trend_core.noise_floor 4.0);
  checkf "fast experiments: relative floor" 0.03 (Trend_core.noise_floor 0.03);
  checkf "floor never below 10ms" 0.01 (Trend_core.noise_floor 0.001);
  (* 1.9x on a 10ms experiment is 9ms of drift — under the 10ms floor,
     so not a regression even though the ratio is past the threshold. *)
  let rows =
    Trend_core.analyze ~threshold:1.5
      (List.map exps [ snap [ ("tiny", 0.010) ]; snap [ ("tiny", 0.019) ] ])
  in
  let v = vs_best (row "tiny" rows) in
  checkb "ratio past threshold" true (v.ratio > 1.5);
  checkb "but under the noise floor: no regression" false v.regression;
  (* The same ratio on a slow experiment does regress. *)
  let rows =
    Trend_core.analyze ~threshold:1.5
      (List.map exps [ snap [ ("slow", 1.0) ]; snap [ ("slow", 3.0) ] ])
  in
  checkb "3x on a 1s experiment regresses" true (vs_best (row "slow" rows)).regression

(* --- mixed v1/v2 series ----------------------------------------------------- *)

let test_mixed_schema_series () =
  (* A v1 seed followed by v2 snapshots must analyze as one series:
     both schemas expose id/wall_s. *)
  let v1 = snap ~schema:1 [ ("fig5a", 4.0); ("table1", 0.08) ] in
  let v2a = snap ~schema:2 [ ("fig5a", 3.5); ("table1", 0.08); ("fig7", 1.0) ] in
  let v2b = snap ~schema:2 [ ("fig5a", 3.6); ("table1", 0.09); ("fig7", 9.0) ] in
  let rows = Trend_core.analyze ~threshold:1.5 (List.map exps [ v1; v2a; v2b ]) in
  checki "union of ids across schemas" 3 (List.length rows);
  let v = vs_best (row "fig5a" rows) in
  checkf "v1 wall times participate in best" 3.5 v.best;
  checkb "fig5a healthy" false v.regression;
  checkb "fig7 9x vs its v2 best regresses" true (vs_best (row "fig7" rows)).regression;
  checkb "10ms drift on table1 stays under the floor" false
    (vs_best (row "table1" rows)).regression;
  (* quick-flag mixing detection used by the CLI warning. *)
  checkb "uniform flags are not mixed" false
    (Trend_core.mixed_quick [ Some true; Some true; None ]);
  checkb "disagreeing flags are mixed" true
    (Trend_core.mixed_quick [ Some true; Some false ])

let () =
  Alcotest.run "trend"
    [
      ( "core",
        [
          Alcotest.test_case "snapshot parsing" `Quick test_experiments_parsing;
          Alcotest.test_case "best-so-far selection" `Quick test_best_so_far;
          Alcotest.test_case "new and gone experiments" `Quick test_new_and_gone;
          Alcotest.test_case "noise floor" `Quick test_noise_floor;
          Alcotest.test_case "mixed v1/v2 series" `Quick test_mixed_schema_series;
        ] );
    ]
