(* The domain pool's contract (results, progress, and exceptions all in
   index order; stats account for every task) and the property the whole
   PR rests on: replaying any committed corpus entry, or running a
   campaign, gives byte-identical digests whether it executes on 1, 2,
   or 4 domains. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Pool: ordering, coverage, stats ---------------------------------------- *)

let test_results_in_index_order () =
  List.iter
    (fun jobs ->
      let results, stats = Par.Pool.run ~jobs 23 (fun i -> i * i) in
      checki (Printf.sprintf "jobs=%d: all tasks ran" jobs) 23
        (Array.length results);
      Array.iteri
        (fun i r ->
          checki (Printf.sprintf "jobs=%d: slot %d holds f %d" jobs i i)
            (i * i) r)
        results;
      checkb "stats jobs positive" true (stats.Par.Pool.jobs >= 1);
      let tasks =
        List.fold_left
          (fun acc d -> acc + d.Par.Pool.tasks)
          0 stats.Par.Pool.domains
      in
      checki (Printf.sprintf "jobs=%d: per-domain tasks sum to n" jobs) 23
        tasks)
    [ 1; 2; 4 ]

let test_progress_in_index_order () =
  (* Delay early indices so later ones complete first on other domains:
     delivery order must still be 0, 1, 2, … *)
  let n = 16 in
  let seen = ref [] in
  let results, _ =
    Par.Pool.run ~jobs:4
      ~progress:(fun i v ->
        checki "progress value matches task" (i * 10) v;
        seen := i :: !seen)
      n
      (fun i ->
        if i < 4 then begin
          (* burn some cycles: make low indices the slow ones *)
          let acc = ref 0 in
          for k = 0 to 2_000_000 do
            acc := !acc lxor k
          done;
          ignore !acc
        end;
        i * 10)
  in
  checki "all results" n (Array.length results);
  let order = List.rev !seen in
  Alcotest.(check (list int))
    "progress fired for 0, 1, 2, … in order"
    (List.init n Fun.id) order

let test_empty_and_singleton () =
  let r, stats = Par.Pool.run ~jobs:4 0 (fun _ -> assert false) in
  checki "zero tasks" 0 (Array.length r);
  checki "no more workers than tasks" 1 stats.Par.Pool.jobs;
  let r, _ = Par.Pool.run ~jobs:4 1 (fun i -> i + 1) in
  checki "single task result" 1 r.(0);
  checkb "negative count rejected" true
    (match Par.Pool.run (-1) (fun i -> i) with
    | exception Invalid_argument _ -> true
    | _ -> false)

exception Boom of int

let test_lowest_failed_index_reraised () =
  (* Several tasks fail; the pool must re-raise the one a sequential
     loop would have hit first, regardless of completion order. *)
  List.iter
    (fun jobs ->
      match
        Par.Pool.run ~jobs 12 (fun i ->
            if i = 5 || i = 9 then raise (Boom i);
            i)
      with
      | _ -> Alcotest.failf "jobs=%d: failure swallowed" jobs
      | exception Boom i ->
          checki (Printf.sprintf "jobs=%d: lowest failed index wins" jobs) 5 i)
    [ 1; 2; 4 ]

let test_progress_stops_before_failure () =
  (* Progress must never fire past the first failing index: the output
     of a failing --jobs N campaign has to match the sequential one,
     which stops printing at the failure. *)
  let fired = ref [] in
  (match
     Par.Pool.run ~jobs:4
       ~progress:(fun i _ -> fired := i :: !fired)
       10
       (fun i ->
         if i = 3 then raise (Boom i);
         i)
   with
  | _ -> Alcotest.fail "failure swallowed"
  | exception Boom _ -> ());
  List.iter
    (fun i -> checkb (Printf.sprintf "no progress for index %d" i) true (i < 3))
    !fired

let test_raising_progress_joins_domains () =
  (* A progress callback that raises must not leak worker domains; the
     pool joins them all before the exception escapes. Observable here
     as: the call raises our exception (not a Domain error) and the
     process keeps running more pool calls afterwards. *)
  (match
     Par.Pool.run ~jobs:4
       ~progress:(fun i _ -> if i = 2 then failwith "printer broke")
       8 Fun.id
   with
  | _ -> Alcotest.fail "progress exception swallowed"
  | exception Failure m -> checks "progress exception surfaces" "printer broke" m);
  let r, _ = Par.Pool.run ~jobs:4 4 Fun.id in
  checki "pool still usable after the failed call" 4 (Array.length r)

(* --- Determinism: corpus replay under 1, 2, and 4 domains ------------------- *)

let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "../corpus"

let test_corpus_replay_digest_invariant () =
  let entries = Chaos.Corpus.load_dir corpus_dir in
  checkb "committed corpus is non-empty" true (entries <> []);
  let descriptors =
    List.map
      (fun (name, parsed) ->
        match parsed with
        | Ok d -> (name, d)
        | Error e -> Alcotest.failf "corpus entry %s: %s" name e)
      entries
  in
  let replay jobs =
    let arr = Array.of_list descriptors in
    let results, _ =
      Par.Pool.run ~jobs (Array.length arr) (fun i ->
          let name, d = arr.(i) in
          let o = Chaos.Runner.run d in
          (name, o.Chaos.Runner.digest, o.Chaos.Runner.events,
           Chaos.Runner.ok o))
    in
    Array.to_list results
  in
  let seq = replay 1 in
  List.iter
    (fun (name, _, _, ok) ->
      checkb (name ^ " replays green") true ok)
    seq;
  List.iter
    (fun jobs ->
      let par = replay jobs in
      List.iter2
        (fun (n1, d1, e1, _) (n2, d2, e2, _) ->
          checks (Printf.sprintf "%s: jobs=%d same entry" n1 jobs) n1 n2;
          checks (Printf.sprintf "%s: jobs=%d digest identical" n1 jobs) d1 d2;
          checki (Printf.sprintf "%s: jobs=%d events identical" n1 jobs) e1 e2)
        seq par)
    [ 2; 4 ]

(* --- Determinism: campaign equivalence across --jobs ------------------------ *)

let campaign_digests ~jobs ~runs ~seed =
  let digests = Array.make runs "" in
  let c =
    Chaos.Fuzz.run
      ~progress:(fun i o -> digests.(i) <- o.Chaos.Runner.digest)
      ~jobs ~runs ~seed ()
  in
  (c, digests)

let test_campaign_jobs_equivalence () =
  let runs = 12 and seed = 42 in
  let c1, d1 = campaign_digests ~jobs:1 ~runs ~seed in
  checkb "sequential campaign green" true (Chaos.Fuzz.campaign_ok c1);
  List.iter
    (fun jobs ->
      let cn, dn = campaign_digests ~jobs ~runs ~seed in
      checki (Printf.sprintf "jobs=%d: runs" jobs) c1.Chaos.Fuzz.runs
        cn.Chaos.Fuzz.runs;
      checki (Printf.sprintf "jobs=%d: events_total" jobs)
        c1.Chaos.Fuzz.events_total cn.Chaos.Fuzz.events_total;
      checkb (Printf.sprintf "jobs=%d: same verdict" jobs)
        (Chaos.Fuzz.campaign_ok c1) (Chaos.Fuzz.campaign_ok cn);
      Array.iteri
        (fun i d ->
          checks (Printf.sprintf "jobs=%d: run %d digest" jobs i) d1.(i) d)
        dn)
    [ 2; 4 ]

let test_campaign_failures_identical_across_jobs () =
  (* Under a seeded product fault most schedules fail; the failure index
     set must not depend on domain count. *)
  Monitor.Faults.with_fault Monitor.Faults.no_fence (fun () ->
      let indexes c =
        List.map (fun f -> f.Chaos.Fuzz.index) c.Chaos.Fuzz.failures
      in
      let c1 = Chaos.Fuzz.run ~runs:5 ~seed:7 ~jobs:1 () in
      checkb "seeded fault produces failures" true
        (c1.Chaos.Fuzz.failures <> []);
      let c4 = Chaos.Fuzz.run ~runs:5 ~seed:7 ~jobs:4 () in
      Alcotest.(check (list int))
        "failure indexes identical across jobs" (indexes c1) (indexes c4);
      checki "events_total identical" c1.Chaos.Fuzz.events_total
        c4.Chaos.Fuzz.events_total)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "results in index order" `Quick
            test_results_in_index_order;
          Alcotest.test_case "progress in index order" `Quick
            test_progress_in_index_order;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "lowest failed index re-raised" `Quick
            test_lowest_failed_index_reraised;
          Alcotest.test_case "progress stops before failure" `Quick
            test_progress_stops_before_failure;
          Alcotest.test_case "raising progress joins domains" `Quick
            test_raising_progress_joins_domains;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus replay digest-invariant under 1/2/4 \
                              domains"
            `Slow test_corpus_replay_digest_invariant;
          Alcotest.test_case "campaign equivalent across --jobs" `Slow
            test_campaign_jobs_equivalence;
          Alcotest.test_case "failure set identical across --jobs" `Slow
            test_campaign_failures_identical_across_jobs;
        ] );
    ]
