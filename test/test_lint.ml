(* tensor-lint's own guarantees: each pass fires on the construct it
   documents, stays quiet on the allowlisted blessed sites, honours
   reasoned suppressions and rejects reasonless ones, emits JSON that
   lib/monitor's reader can parse back, and the baseline gate flags a
   seeded violation as NEW (the CI exit-1 condition). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let lint ~file src = Lint.Driver.lint_source ~file src

let passes_of findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Lint.Finding.t) -> f.pass) findings)

let check_passes what expected (findings, _suppressed) =
  Alcotest.(check (list string)) what expected (passes_of findings)

(* --- d1: unordered iteration ----------------------------------------------- *)

let test_d1_positive () =
  check_passes "Hashtbl.iter in product code" [ "d1" ]
    (lint ~file:"lib/bgp/fixture.ml"
       "let f tbl = Hashtbl.iter (fun k v -> ignore k; ignore v) tbl\n");
  check_passes "Hashtbl.fold in product code" [ "d1" ]
    (lint ~file:"lib/orch/fixture.ml"
       "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n")

let test_d1_functor_instance () =
  (* Local [Hashtbl.Make] instances are picked up by the first sweep, so
     the RIB's PrefixTbl cannot dodge the pass by renaming. *)
  check_passes "Hashtbl.Make instance traversal" [ "d1" ]
    (lint ~file:"lib/bgp/fixture.ml"
       "module M = Hashtbl.Make (String)\n\
        let g tbl = M.fold (fun _ v acc -> v :: acc) tbl []\n")

let test_d1_allowlisted () =
  let findings, suppressed =
    lint ~file:"lib/sim/det.ml"
      "let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  checki "Sim.Det is the blessed traversal point" 0 (List.length findings);
  checki "allowlist is not a suppression" 0 suppressed

let test_d1_suppressed () =
  let findings, suppressed =
    lint ~file:"lib/bgp/fixture.ml"
      "(* lint: allow d1 -- collect-then-sort: sorted on the next line *)\n\
       let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  checki "reasoned suppression silences d1" 0 (List.length findings);
  checki "one suppression honoured" 1 suppressed

let test_suppression_without_reason_rejected () =
  let findings, suppressed =
    lint ~file:"lib/bgp/fixture.ml"
      "(* lint: allow d1 *)\n\
       let f tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  checki "nothing suppressed" 0 suppressed;
  check_passes "finding survives and the directive is flagged"
    [ "d1"; Lint.Suppress.meta_pass ]
    (findings, suppressed)

let test_suppression_unknown_pass_rejected () =
  check_passes "unknown pass name is flagged" [ Lint.Suppress.meta_pass ]
    (lint ~file:"lib/bgp/fixture.ml"
       "(* lint: allow zz -- no such pass *)\nlet x = 1\n")

let test_suppression_unused_flagged () =
  check_passes "unused directive is flagged" [ Lint.Suppress.meta_pass ]
    (lint ~file:"lib/bgp/fixture.ml"
       "(* lint: allow d1 -- nothing to suppress here *)\nlet x = 1\n")

(* --- d2: ambient nondeterminism -------------------------------------------- *)

let test_d2_positive () =
  check_passes "Unix.gettimeofday" [ "d2" ]
    (lint ~file:"lib/tcp/fixture.ml" "let now () = Unix.gettimeofday ()\n");
  check_passes "Random outside the engine RNG" [ "d2" ]
    (lint ~file:"lib/bgp/fixture.ml" "let r () = Random.int 5\n");
  check_passes "Marshal" [ "d2" ]
    (lint ~file:"lib/store/fixture.ml"
       "let s v = Marshal.to_string v []\n")

let test_d2_rng_allowlisted () =
  check_passes "lib/sim/rng.ml may use Random" []
    (lint ~file:"lib/sim/rng.ml" "let r () = Random.int 5\n")

(* --- d3: float equality ---------------------------------------------------- *)

let test_d3_positive () =
  check_passes "comparison against a float literal" [ "d3" ]
    (lint ~file:"lib/sim/fixture.ml" "let is_zero x = x = 0.0\n");
  check_passes "comparison of a float expression" [ "d3" ]
    (lint ~file:"lib/sim/fixture.ml" "let f a b c = (a +. b) = c\n")

let test_d3_ints_quiet () =
  check_passes "integer equality is fine" []
    (lint ~file:"lib/sim/fixture.ml" "let eq (a : int) b = a = b\n")

(* --- d4: top-level mutable state in domain-shared libraries ----------------- *)

let test_d4_positive () =
  check_passes "top-level ref" [ "d4" ]
    (lint ~file:"lib/bgp/fixture.ml" "let counter = ref 0\n");
  check_passes "top-level Hashtbl" [ "d4" ]
    (lint ~file:"lib/telemetry/fixture.ml" "let tbl = Hashtbl.create 8\n");
  check_passes "top-level functor-instance table" [ "d4" ]
    (lint ~file:"lib/bgp/fixture.ml"
       "module M = Hashtbl.Make (String)\nlet tbl = M.create 8\n");
  check_passes "ref inside a top-level record" [ "d4" ]
    (lint ~file:"lib/sim/fixture.ml"
       "type s = { cell : int ref }\nlet st = { cell = ref 0 }\n");
  check_passes "top-level binding inside a nested module" [ "d4" ]
    (lint ~file:"lib/store/fixture.ml"
       "module Inner = struct let q = Queue.create () end\n")

let test_d4_function_local_quiet () =
  check_passes "state built per call is per-run" []
    (lint ~file:"lib/bgp/fixture.ml"
       "let f () = let tbl = Hashtbl.create 8 in Hashtbl.length tbl\n")

let test_d4_dls_key_quiet () =
  (* The sanctioned shape: the constructor sits under the DLS init
     lambda, so each domain mints its own copy. *)
  check_passes "Domain.DLS.new_key init is per-domain" []
    (lint ~file:"lib/telemetry/fixture.ml"
       "let key = Domain.DLS.new_key (fun () -> ref 0)\n\
        let get () = Domain.DLS.get key\n")

let test_d4_out_of_scope_quiet () =
  check_passes "bin/ executables are single-domain entry points" []
    (lint ~file:"bin/fixture.ml" "let verbose = ref false\n");
  check_passes "the linter itself never runs inside a campaign domain" []
    (lint ~file:"lib/lint/fixture.ml" "let cache = Hashtbl.create 8\n")

let test_d4_suppressed () =
  let findings, suppressed =
    lint ~file:"lib/monitor/fixture.ml"
      "(* lint: allow d4 -- flags minted once at init, read-only after *)\n\
       let registry : int list ref = ref []\n"
  in
  checki "reasoned suppression silences d4" 0 (List.length findings);
  checki "one suppression honoured" 1 suppressed

(* --- p1: wildcard FSM arms -------------------------------------------------- *)

let fsm_fixture arm =
  "type t = Idle | Connecting | Open_sent | Open_confirm | Established | \
   Down\n\
   let f st = match st with Established -> 1 | " ^ arm ^ " -> 0\n"

let test_p1_positive () =
  check_passes "wildcard over BGP session states" [ "p1" ]
    (lint ~file:"lib/bgp/fixture.ml" (fsm_fixture "_"));
  check_passes "binder over BGP session states" [ "p1" ]
    (lint ~file:"lib/bgp/fixture.ml" (fsm_fixture "other"))

let test_p1_explicit_quiet () =
  check_passes "explicit arms are fine" []
    (lint ~file:"lib/bgp/fixture.ml"
       (fsm_fixture "Idle | Connecting | Open_sent | Open_confirm | Down"))

let test_p1_outside_owning_dir_quiet () =
  (* Same constructor names in a non-protocol directory: not our FSM. *)
  check_passes "manifest is scoped to the owning directories" []
    (lint ~file:"lib/workload/fixture.ml" (fsm_fixture "_"))

(* --- p2: panic budget -------------------------------------------------------- *)

let test_p2_positive () =
  check_passes "failwith in a protocol hot path" [ "p2" ]
    (lint ~file:"lib/bgp/fixture.ml" "let f () = failwith \"boom\"\n");
  check_passes "assert false in a protocol hot path" [ "p2" ]
    (lint ~file:"lib/tcp/fixture.ml" "let f () = assert false\n");
  check_passes "Obj.magic in a protocol hot path" [ "p2" ]
    (lint ~file:"lib/bfd/fixture.ml" "let f x = Obj.magic x\n")

let test_p2_cold_dir_quiet () =
  check_passes "panics outside hot paths are not budgeted" []
    (lint ~file:"lib/workload/fixture.ml" "let f () = failwith \"boom\"\n")

let test_p2_suppressed () =
  let findings, suppressed =
    lint ~file:"lib/bgp/fixture.ml"
      "(* lint: allow p2 -- precondition: caller guarantees a frame *)\n\
       let f () = failwith \"boom\"\n"
  in
  checki "reasoned suppression silences p2" 0 (List.length findings);
  checki "one suppression honoured" 1 suppressed

(* --- driver over a tree, JSON round-trip, baseline gate --------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Unix.mkdir dir 0o755
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_tree f =
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tensor-lint-test-%d" (Unix.getpid ()))
  in
  rm_rf root;
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let write rel content =
        let path = Filename.concat root rel in
        mkdir_p (Filename.dirname path);
        let oc = open_out_bin path in
        output_string oc content;
        close_out oc;
        path
      in
      f root write)

let json_mem name j =
  match Monitor.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "JSON report lacks %S" name

let test_json_roundtrips_through_monitor () =
  with_temp_tree (fun root write ->
      let _ =
        write "lib/bgp/dirty.ml"
          "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n"
      in
      let _ = write "lib/bgp/clean.ml" "let x = 1\n" in
      let report = Lint.Driver.run ~paths:[ root ] () in
      let json = Lint.Driver.to_json report ~new_findings:report.findings in
      match Monitor.Json.parse json with
      | Error e -> Alcotest.failf "Monitor.Json rejected the report: %s" e
      | Ok j ->
          let summary = json_mem "summary" j in
          let geti name =
            match Monitor.Json.to_int (json_mem name summary) with
            | Some i -> i
            | None -> Alcotest.failf "summary.%s is not an int" name
          in
          checki "summary.files" 2 (geti "files");
          checki "summary.findings" 1 (geti "findings");
          checki "summary.new" 1 (geti "new");
          let findings =
            match Monitor.Json.to_list (json_mem "findings" j) with
            | Some l -> l
            | None -> Alcotest.fail "findings is not a list"
          in
          checki "one finding serialized" 1 (List.length findings);
          let f = List.hd findings in
          let gets name =
            match Monitor.Json.to_str (json_mem name f) with
            | Some s -> s
            | None -> Alcotest.failf "finding.%s is not a string" name
          in
          checks "finding.pass" "d1" (gets "pass");
          checkb "finding.file points at the fixture" true
            (Filename.basename (gets "file") = "dirty.ml"))

let test_baseline_gates_new_findings () =
  with_temp_tree (fun root write ->
      let _ =
        write "lib/bgp/old.ml" "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n"
      in
      let report = Lint.Driver.run ~paths:[ root ] () in
      checki "one pre-existing finding" 1 (List.length report.findings);
      let baseline_file = write "baseline.json" "" in
      let oc = open_out_bin baseline_file in
      output_string oc
        (Lint.Driver.to_json report ~new_findings:report.findings);
      close_out oc;
      let entries =
        match Lint.Baseline.load baseline_file with
        | Ok e -> e
        | Error e -> Alcotest.failf "baseline did not load: %s" e
      in
      (* Unchanged tree: the gate is green (exit 0). *)
      checki "baselined finding is not NEW" 0
        (List.length (Lint.Baseline.diff entries report.findings));
      (* Seed a violation: the gate must go red (exit 1 in the CI job). *)
      let _ =
        write "lib/tcp/seeded.ml" "let now () = Unix.gettimeofday ()\n"
      in
      let report' = Lint.Driver.run ~paths:[ root ] () in
      checki "two findings total" 2 (List.length report'.findings);
      let fresh = Lint.Baseline.diff entries report'.findings in
      checki "exactly the seeded violation is NEW" 1 (List.length fresh);
      checks "and it is the d2 one" "d2" (List.hd fresh).Lint.Finding.pass)

(* --- call-graph resolver ---------------------------------------------------- *)

let edges g ~file ~name =
  List.map
    (fun (f, n) -> f ^ ":" ^ n)
    (Lint.Callgraph.callees g ~file ~name)

let test_cg_cross_module_edge () =
  let g =
    Lint.Callgraph.build_sources
      [
        ("lib/foo/alpha.ml", "let helper x = x + 1\n");
        ("lib/foo/beta.ml", "let caller x = Alpha.helper x\n");
      ]
  in
  Alcotest.(check (list string))
    "module-qualified call resolves to the repo file"
    [ "lib/foo/alpha.ml:helper" ]
    (edges g ~file:"lib/foo/beta.ml" ~name:"caller")

let test_cg_locally_opened_module () =
  let g =
    Lint.Callgraph.build_sources
      [
        ("lib/foo/alpha.ml", "let helper x = x + 1\n");
        ("lib/foo/beta.ml", "open Alpha\nlet caller x = helper x\n");
      ]
  in
  Alcotest.(check (list string))
    "bare name resolves through the file's open"
    [ "lib/foo/alpha.ml:helper" ]
    (edges g ~file:"lib/foo/beta.ml" ~name:"caller")

let test_cg_shadowed_name () =
  (* A let-bound local shadows both the opened module's function and a
     same-file toplevel: neither may receive an edge. *)
  let g =
    Lint.Callgraph.build_sources
      [
        ("lib/foo/alpha.ml", "let helper x = x + 1\n");
        ( "lib/foo/beta.ml",
          "open Alpha\n\
           let caller x = let helper y = y * 2 in helper x\n" );
        ( "lib/foo/gamma.ml",
          "let helper x = x + 1\n\
           let caller x = let helper y = y * 2 in helper x\n" );
      ]
  in
  Alcotest.(check (list string))
    "local binding shadows the open" []
    (edges g ~file:"lib/foo/beta.ml" ~name:"caller");
  Alcotest.(check (list string))
    "local binding shadows the same-file toplevel" []
    (edges g ~file:"lib/foo/gamma.ml" ~name:"caller")

let test_cg_unresolved_external () =
  (* Stdlib and other non-repo modules never produce edges: the graph
     is closed over the scanned file set. *)
  let g =
    Lint.Callgraph.build_sources
      [
        ( "lib/foo/beta.ml",
          "let caller xs = List.map succ (Ext.transform xs)\n" );
      ]
  in
  Alcotest.(check (list string))
    "external calls resolve to nothing" []
    (edges g ~file:"lib/foo/beta.ml" ~name:"caller")

let test_cg_reachability_hops () =
  let g =
    Lint.Callgraph.build_sources
      [
        ( "lib/foo/chain.ml",
          "let f3 x = x\n\
           let f2 x = f3 x\n\
           let f1 x = f2 x\n\
           let root x = f1 x\n" );
      ]
  in
  let names hops =
    Lint.Callgraph.reachable g
      ~roots:[ ("lib/foo/chain.ml", "root", "test root") ]
      ?max_hops:hops ()
    |> List.map (fun (r : Lint.Callgraph.reach) -> r.r_name)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "unbounded walk reaches the whole chain"
    [ "f1"; "f2"; "f3"; "root" ] (names None);
  Alcotest.(check (list string))
    "2-hop walk stops at f2"
    [ "f1"; "f2"; "root" ] (names (Some 2))

(* --- h1: hot-path allocation budget ------------------------------------------ *)

(* Fixture files reuse real manifest paths (Hot_roots.hot_paths names
   lib/sim/engine.ml:exec etc.), so [lint_source] exercises the
   interprocedural walk with a single in-memory file. *)

let test_h1_positive_direct () =
  check_passes "Printf inside a hot root" [ "h1" ]
    (lint ~file:"lib/sim/engine.ml"
       "let exec t e = ignore (Printf.sprintf \"%d\" e); t\n")

let test_h1_positive_within_hops () =
  (* helper is 1 hop from the root: budgeted like the root itself. *)
  check_passes "allocation one hop below a hot root" [ "h1" ]
    (lint ~file:"lib/sim/engine.ml"
       "let helper x = [ x; x + 1 ]\nlet exec t e = ignore (helper e); t\n")

let test_h1_beyond_hop_budget_quiet () =
  (* f4 sits 4 hops from the root — outside max_hops = 3. *)
  check_passes "allocation beyond the hop budget" []
    (lint ~file:"lib/sim/engine.ml"
       "let f4 x = [ x ]\n\
        let f3 x = f4 x\n\
        let f2 x = f3 x\n\
        let f1 x = f2 x\n\
        let exec t e = ignore (f1 e); t\n")

let test_h1_cold_contexts_quiet () =
  (* Allocation under raise/failwith arguments or an assert is the
     error path, not the per-event path; same for Gate-guarded code. *)
  check_passes "error-path and gated allocations" []
    (lint ~file:"lib/sim/engine.ml"
       "let exec t e =\n\
       \  if e < 0 then\n\
       \    raise (Invalid_argument (String.concat \"\" [ \"bad \"; \"event\" ]));\n\
       \  assert (List.length [ e ] = 1);\n\
       \  (if Telemetry.Gate.on () then ignore (e, t));\n\
       \  t\n")

let test_h1_non_function_def_quiet () =
  (* A toplevel value referenced by a root runs once at module init;
     the per-call budget does not apply. *)
  check_passes "module-init allocation" []
    (lint ~file:"lib/sim/engine.ml"
       "let banner = Printf.sprintf \"engine %d\" 1\n\
        let exec t _ = ignore banner; t\n")

let test_h1_constructor_and_match_tuples_quiet () =
  (* Multi-argument constructors flatten their arguments into the block
     and [match (a, b) with] deforests the scrutinee: no tuple alloc. *)
  check_passes "constructor args and match scrutinees" []
    (lint ~file:"lib/sim/engine.ml"
       "type r = Pair of int * int\n\
        let exec t e = (match (e, t) with 0, 0 -> Pair (e, t) | a, b -> \
        Pair (a, b))\n")

let test_h1_out_of_scope_quiet () =
  check_passes "same code off the manifest is unbudgeted" []
    (lint ~file:"lib/workload/fixture.ml"
       "let exec t e = ignore (Printf.sprintf \"%d\" e); t\n")

let test_h1_suppressed () =
  let findings, suppressed =
    lint ~file:"lib/sim/engine.ml"
      "let exec t e =\n\
      \  (* lint: allow h1 -- one-shot banner, exec runs once in this test *)\n\
      \  ignore (Printf.sprintf \"%d\" e);\n\
      \  t\n"
  in
  checki "reasoned suppression silences h1" 0 (List.length findings);
  checki "one suppression honoured" 1 suppressed

let test_h1_message_is_line_stable () =
  (* Baseline matching is (pass, file, message): the message must not
     embed positions, or every unrelated edit above the site would
     invalidate the baseline. *)
  let findings, _ =
    lint ~file:"lib/sim/engine.ml"
      "let exec t e = ignore (Printf.sprintf \"%d\" e); t\n"
  in
  let f = List.hd findings in
  checkb "message names the function" true
    (let msg = f.Lint.Finding.message in
     let contains sub =
       let n = String.length sub and m = String.length msg in
       let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
       at 0
     in
     contains "exec" && contains "engine dispatch");
  checkb "message embeds no positions (digits)" false
    (String.exists
       (fun c -> c >= '0' && c <= '9')
       f.Lint.Finding.message)

(* --- d5: digest purity -------------------------------------------------------- *)

let test_d5_positive_direct () =
  check_passes "wall clock inside a digest root" [ "d2"; "d5" ]
    (lint ~file:"lib/bgp/rib.ml"
       "let digest t = int_of_float (Unix.gettimeofday ()) + t\n")

let test_d5_positive_transitive () =
  (* The walk is unbounded: entropy three calls deep still taints the
     digest. d2 also fires on the site itself, file-locally. *)
  check_passes "Random three calls below the digest" [ "d2"; "d5" ]
    (lint ~file:"lib/bgp/rib.ml"
       "let salt () = Random.bits ()\n\
        let mix x = salt () + x\n\
        let fold t = mix t\n\
        let digest t = fold t\n")

let test_d5_out_of_scope_quiet () =
  (* Same shape, but the file hosts no digest-feeding root: only the
     per-file d2 pass fires. *)
  check_passes "entropy outside the digest graph" [ "d2" ]
    (lint ~file:"lib/workload/fixture.ml"
       "let salt () = Random.bits ()\nlet digest t = salt () + t\n")

let test_d5_suppression_does_not_launder () =
  (* A d2 suppression on the offending line is exactly the laundering
     d5 exists to catch: the error must survive it. *)
  let findings, suppressed =
    lint ~file:"lib/bgp/rib.ml"
      "let salt () =\n\
      \  (* lint: allow d2 -- locally argued, but still digest-reachable *)\n\
      \  Random.bits ()\n\
       let digest t = salt () + t\n"
  in
  checki "the d2 suppression is honoured" 1 suppressed;
  check_passes "d5 still reports the reachable entropy" [ "d5" ]
    (findings, suppressed)

(* --- p3: interprocedural panic budget ----------------------------------------- *)

let test_p3_partial_stdlib_in_root_file () =
  (* engine.ml is not under p2's directories, so p3 owns both the
     partial stdlib call and any panic primitive here. *)
  check_passes "List.hd reachable from engine dispatch" [ "p3" ]
    (lint ~file:"lib/sim/engine.ml" "let exec t es = List.hd es + t\n")

let test_p3_panic_outside_p2_dirs () =
  check_passes "failwith in a shared helper outside p2's horizon" [ "p3" ]
    (lint ~file:"lib/sim/engine.ml"
       "let helper x = if x < 0 then failwith \"neg\" else x\n\
        let exec t e = helper e + t\n")

let test_p3_no_double_report_with_p2 () =
  (* tcp.ml is p2 territory: the failwith is p2's finding alone, but a
     partial stdlib function is still p3's. *)
  check_passes "panic primitive reported once, by p2" [ "p2" ]
    (lint ~file:"lib/tcp/tcp.ml"
       "let conn_rx c s = if s < 0 then failwith \"bad\" else c\n");
  check_passes "partial stdlib is p3's even inside p2 dirs" [ "p3" ]
    (lint ~file:"lib/tcp/tcp.ml" "let conn_rx c ss = List.hd ss + c\n")

let test_p3_out_of_scope_quiet () =
  check_passes "partial call with no hot root in the graph" []
    (lint ~file:"lib/workload/fixture.ml" "let pick ss = List.hd ss\n")

let test_p3_suppressed () =
  let findings, suppressed =
    lint ~file:"lib/sim/engine.ml"
      "let exec t es =\n\
      \  (* lint: allow p3 -- es statically non-empty: built by run() *)\n\
      \  List.hd es + t\n"
  in
  checki "reasoned suppression silences p3" 0 (List.length findings);
  checki "one suppression honoured" 1 suppressed

(* --- parallel driver ---------------------------------------------------------- *)

let test_driver_jobs_equivalent () =
  with_temp_tree (fun root write ->
      let _ =
        write "lib/bgp/dirty.ml"
          "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl\n"
      in
      let _ = write "lib/tcp/seeded.ml" "let now () = Unix.gettimeofday ()\n" in
      let _ = write "lib/bgp/clean.ml" "let x = 1\n" in
      let r1 = Lint.Driver.run ~jobs:1 ~paths:[ root ] () in
      let r4 = Lint.Driver.run ~jobs:4 ~paths:[ root ] () in
      Alcotest.(check (list string))
        "findings identical across --jobs"
        (List.map Lint.Finding.to_string r1.findings)
        (List.map Lint.Finding.to_string r4.findings);
      checki "suppression count identical" r1.suppressed r4.suppressed;
      checks "whole report renders identically"
        (Lint.Driver.to_json r1 ~new_findings:r1.findings)
        (Lint.Driver.to_json r4 ~new_findings:r4.findings))

(* --- repo gate ---------------------------------------------------------------- *)

let test_zero_finding_repo_baseline () =
  (* The committed contract since the call-graph passes landed: the
     repo carries ZERO error-severity findings (d5, p3, suppress,
     parse), and every warning is absorbed by the committed
     lint-baseline.json — so anything NEW fails CI. Under [dune
     runtest] the cwd is [_build/default/test]; under [dune exec
     test/test_lint.exe] it is the workspace root. *)
  let root = if Sys.file_exists "lib" then "." else ".." in
  let paths = List.map (Filename.concat root) [ "lib"; "bin"; "bench" ] in
  let report = Lint.Driver.run ~paths () in
  Alcotest.(check (list string))
    "no error-severity findings in the repo" []
    (List.filter_map
       (fun (f : Lint.Finding.t) ->
         match f.severity with
         | Lint.Finding.Error -> Some (Lint.Finding.to_string f)
         | Lint.Finding.Warning -> None)
       report.findings);
  let entries =
    match Lint.Baseline.load (Filename.concat root "lint-baseline.json") with
    | Ok e -> e
    | Error e -> Alcotest.failf "committed baseline did not load: %s" e
  in
  (* The committed baseline stores repo-relative paths; strip the
     test-cwd prefix so the multiset match lines up. *)
  let prefix = root ^ "/" in
  let relocated =
    List.map
      (fun (f : Lint.Finding.t) ->
        if String.starts_with ~prefix f.file then
          {
            f with
            Lint.Finding.file =
              String.sub f.file (String.length prefix)
                (String.length f.file - String.length prefix);
          }
        else f)
      report.findings
  in
  Alcotest.(check (list string))
    "every repo finding is absorbed by the committed baseline" []
    (List.map Lint.Finding.to_string (Lint.Baseline.diff entries relocated))

let test_single_blessed_d2_suppression () =
  (* The profiler wall clock (Prof.Clock) is the one place in lib/
     allowed to read host time; every other wall-clock read must go
     through it. A second d2 suppression appearing anywhere in lib/
     means someone opened a new ambient-time hole — argue it here
     first. *)
  let root = if Sys.file_exists "lib" then "." else ".." in
  let base_dir f = Filename.basename (Filename.dirname f) in
  let read f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let rec walk dir acc =
    Array.fold_left
      (fun acc name ->
        let p = Filename.concat dir name in
        if Sys.is_directory p then walk p acc
        else if Filename.check_suffix name ".ml" then p :: acc
        else acc)
      acc (Sys.readdir dir)
  in
  let sources = walk (Filename.concat root "lib") [] in
  (* The causal tracer (lib/trace) is observation-only and must stay
     inside the determinism budget: assert its sources are actually in
     the scanned set (a silent walk miss would void the check below),
     then that it added no d2 suppression. *)
  List.iter
    (fun f ->
      checkb
        (Printf.sprintf "lib/trace/%s is scanned" f)
        true
        (List.exists
           (fun p -> Filename.basename p = f && base_dir p = "trace")
           sources))
    [ "recorder.ml"; "critical.ml"; "perfetto.ml"; "series.ml" ];
  let d2_files =
    sources
    |> List.filter (fun f ->
           List.exists
             (fun (d : Lint.Suppress.directive) -> List.mem "d2" d.passes)
             (Lint.Suppress.scan (read f)))
    |> List.map (fun f -> Filename.concat (base_dir f) (Filename.basename f))
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    "Prof.Clock is the only d2-suppressed site in lib/"
    [ "prof/clock.ml" ] d2_files

let () =
  Alcotest.run "lint"
    [
      ( "d1",
        [
          Alcotest.test_case "positive" `Quick test_d1_positive;
          Alcotest.test_case "functor instance" `Quick test_d1_functor_instance;
          Alcotest.test_case "allowlisted" `Quick test_d1_allowlisted;
          Alcotest.test_case "suppressed" `Quick test_d1_suppressed;
        ] );
      ( "suppress",
        [
          Alcotest.test_case "reasonless rejected" `Quick
            test_suppression_without_reason_rejected;
          Alcotest.test_case "unknown pass rejected" `Quick
            test_suppression_unknown_pass_rejected;
          Alcotest.test_case "unused flagged" `Quick
            test_suppression_unused_flagged;
          Alcotest.test_case "single blessed d2 suppression" `Quick
            test_single_blessed_d2_suppression;
        ] );
      ( "d2",
        [
          Alcotest.test_case "positive" `Quick test_d2_positive;
          Alcotest.test_case "rng allowlisted" `Quick test_d2_rng_allowlisted;
        ] );
      ( "d3",
        [
          Alcotest.test_case "positive" `Quick test_d3_positive;
          Alcotest.test_case "ints quiet" `Quick test_d3_ints_quiet;
        ] );
      ( "d4",
        [
          Alcotest.test_case "positive" `Quick test_d4_positive;
          Alcotest.test_case "function-local quiet" `Quick
            test_d4_function_local_quiet;
          Alcotest.test_case "DLS key quiet" `Quick test_d4_dls_key_quiet;
          Alcotest.test_case "out of scope quiet" `Quick
            test_d4_out_of_scope_quiet;
          Alcotest.test_case "suppressed" `Quick test_d4_suppressed;
        ] );
      ( "p1",
        [
          Alcotest.test_case "positive" `Quick test_p1_positive;
          Alcotest.test_case "explicit quiet" `Quick test_p1_explicit_quiet;
          Alcotest.test_case "outside owning dir quiet" `Quick
            test_p1_outside_owning_dir_quiet;
        ] );
      ( "p2",
        [
          Alcotest.test_case "positive" `Quick test_p2_positive;
          Alcotest.test_case "cold dir quiet" `Quick test_p2_cold_dir_quiet;
          Alcotest.test_case "suppressed" `Quick test_p2_suppressed;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "cross-module edge" `Quick
            test_cg_cross_module_edge;
          Alcotest.test_case "locally-opened module" `Quick
            test_cg_locally_opened_module;
          Alcotest.test_case "shadowed name" `Quick test_cg_shadowed_name;
          Alcotest.test_case "unresolved external" `Quick
            test_cg_unresolved_external;
          Alcotest.test_case "reachability hop budget" `Quick
            test_cg_reachability_hops;
        ] );
      ( "h1",
        [
          Alcotest.test_case "positive: direct" `Quick test_h1_positive_direct;
          Alcotest.test_case "positive: within hops" `Quick
            test_h1_positive_within_hops;
          Alcotest.test_case "beyond hop budget quiet" `Quick
            test_h1_beyond_hop_budget_quiet;
          Alcotest.test_case "cold contexts quiet" `Quick
            test_h1_cold_contexts_quiet;
          Alcotest.test_case "non-function def quiet" `Quick
            test_h1_non_function_def_quiet;
          Alcotest.test_case "constructor/match tuples quiet" `Quick
            test_h1_constructor_and_match_tuples_quiet;
          Alcotest.test_case "out of scope quiet" `Quick
            test_h1_out_of_scope_quiet;
          Alcotest.test_case "suppressed" `Quick test_h1_suppressed;
          Alcotest.test_case "message is line-stable" `Quick
            test_h1_message_is_line_stable;
        ] );
      ( "d5",
        [
          Alcotest.test_case "positive: direct" `Quick test_d5_positive_direct;
          Alcotest.test_case "positive: transitive" `Quick
            test_d5_positive_transitive;
          Alcotest.test_case "out of scope quiet" `Quick
            test_d5_out_of_scope_quiet;
          Alcotest.test_case "d2 suppression does not launder" `Quick
            test_d5_suppression_does_not_launder;
        ] );
      ( "p3",
        [
          Alcotest.test_case "partial stdlib in root file" `Quick
            test_p3_partial_stdlib_in_root_file;
          Alcotest.test_case "panic outside p2 dirs" `Quick
            test_p3_panic_outside_p2_dirs;
          Alcotest.test_case "no double report with p2" `Quick
            test_p3_no_double_report_with_p2;
          Alcotest.test_case "out of scope quiet" `Quick
            test_p3_out_of_scope_quiet;
          Alcotest.test_case "suppressed" `Quick test_p3_suppressed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "json roundtrips through Monitor.Json" `Quick
            test_json_roundtrips_through_monitor;
          Alcotest.test_case "baseline gates a seeded violation" `Quick
            test_baseline_gates_new_findings;
          Alcotest.test_case "jobs-equivalent reports" `Quick
            test_driver_jobs_equivalent;
          Alcotest.test_case "repo lints clean" `Quick
            test_zero_finding_repo_baseline;
        ] );
    ]
