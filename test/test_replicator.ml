(* Direct unit tests of the Replicator against a free-cost store: write
   batching and ordering, watermark discipline, trimming, ablation flags,
   and resume bookkeeping — without a full deployment around it. *)

open Sim
open Netsim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type rig = {
  eng : Engine.t;
  server : Store.Server.t;
  repl : Tensor.Replicator.t;
  cid : Tensor.Keys.conn_id;
}

let make_rig ?(replicate = true) ?(ack_hold = true) () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let app = Network.add_node net "app" in
  let db = Network.add_node net "db" in
  let _, _, db_addr = Network.connect net ~delay:(Time.us 100) app db in
  let server = Store.Server.create ~cost:Store.free_cost_model db in
  let client = Store.Client.create app ~server:db_addr in
  let cid = Tensor.Keys.conn_id ~service:"rig" ~vrf:"v0" in
  let repl =
    Tensor.Replicator.create ~replicate ~ack_hold ~engine:eng ~client
      ~conn_id:cid ~service:"rig" ()
  in
  { eng; server; repl; cid }

let keepalive = Bgp.Msg.Keepalive

let update n =
  Bgp.Msg.Update
    {
      withdrawn = [];
      attrs =
        Some
          (Bgp.Attrs.make
             ~as_path:[ Bgp.Attrs.Seq [ 65010 ] ]
             ~next_hop:(Addr.of_string "10.0.0.2") ());
      nlri = [ Netsim.Addr.prefix (Netsim.Addr.of_octets 100 0 n 0) 24 ];
    }

let test_rx_message_becomes_durable () =
  let r = make_rig () in
  Tensor.Replicator.session_established r.repl ~irs:1000;
  Tensor.Replicator.on_rx_message r.repl (update 1) ~inferred_ack:1100;
  Engine.run r.eng;
  checkb "in record present" true
    (Store.Server.peek r.server (Tensor.Keys.in_key r.cid 0) <> None);
  Alcotest.(check (option string))
    "watermark written" (Some "1100")
    (Store.Server.peek r.server (Tensor.Keys.ack_key r.cid));
  checkb "watermark confirmed locally" true
    (Tensor.Replicator.watermark r.repl = Some 1100)

let test_keepalive_trimmed_immediately () =
  let r = make_rig () in
  Tensor.Replicator.session_established r.repl ~irs:1000;
  Tensor.Replicator.on_rx_message r.repl keepalive ~inferred_ack:1020;
  Engine.run r.eng;
  checkb "keepalive record trimmed" true
    (Store.Server.peek r.server (Tensor.Keys.in_key r.cid 0) = None);
  Alcotest.(check (option string))
    "but watermark advanced" (Some "1020")
    (Store.Server.peek r.server (Tensor.Keys.ack_key r.cid))

let test_update_trimmed_only_after_applied () =
  let r = make_rig () in
  Tensor.Replicator.session_established r.repl ~irs:1000;
  Tensor.Replicator.on_rx_message r.repl (update 1) ~inferred_ack:1100;
  Engine.run r.eng;
  checkb "retained while unapplied" true
    (Store.Server.peek r.server (Tensor.Keys.in_key r.cid 0) <> None);
  checki "pending count" 1 (Tensor.Replicator.pending_unapplied r.repl);
  Tensor.Replicator.on_rx_applied r.repl;
  Engine.run r.eng;
  checkb "trimmed after apply" true
    (Store.Server.peek r.server (Tensor.Keys.in_key r.cid 0) = None);
  checki "pending drained" 0 (Tensor.Replicator.pending_unapplied r.repl)

let test_tx_release_waits_for_durability () =
  let r = make_rig () in
  let released = ref false in
  Tensor.Replicator.on_tx_message r.repl ~raw:"0123456789" ~release:(fun () ->
      released := true);
  checkb "not released synchronously" false !released;
  Engine.run r.eng;
  checkb "released after write" true !released;
  checkb "out record stored" true
    (Store.Server.peek r.server (Tensor.Keys.out_key r.cid 0) <> None);
  checki "bytes accounted" 10 (Tensor.Replicator.bytes_written r.repl)

let test_tx_offsets_are_cumulative () =
  let r = make_rig () in
  Tensor.Replicator.on_tx_message r.repl ~raw:(String.make 19 'a')
    ~release:(fun () -> ());
  Tensor.Replicator.on_tx_message r.repl ~raw:(String.make 23 'b')
    ~release:(fun () -> ());
  Engine.run r.eng;
  checkb "second record at offset 19" true
    (Store.Server.peek r.server (Tensor.Keys.out_key r.cid 19) <> None);
  checki "total" 42 (Tensor.Replicator.bytes_written r.repl)

let test_note_snd_una_trims_out_records () =
  let r = make_rig () in
  let iss = 5000 in
  Tensor.Replicator.on_tx_message r.repl ~raw:(String.make 100 'a')
    ~release:(fun () -> ());
  Tensor.Replicator.on_tx_message r.repl ~raw:(String.make 100 'b')
    ~release:(fun () -> ());
  Engine.run r.eng;
  (* Peer acked the first message only. *)
  Tensor.Replicator.note_snd_una r.repl ~iss ~snd_una:(iss + 1 + 100);
  Engine.run r.eng;
  checkb "first trimmed" true
    (Store.Server.peek r.server (Tensor.Keys.out_key r.cid 0) = None);
  checkb "second retained" true
    (Store.Server.peek r.server (Tensor.Keys.out_key r.cid 100) <> None);
  Alcotest.(check (option string))
    "outtrim recorded" (Some "100")
    (Store.Server.peek r.server (Tensor.Keys.outtrim_key r.cid))

let test_rib_checkpoint_roundtrip () =
  let r = make_rig () in
  let src =
    {
      Bgp.Rib.key = "v0/10.0.0.2";
      peer_asn = 65010;
      peer_addr = Addr.of_string "10.0.0.2";
      router_id = Addr.of_string "9.9.9.9";
      ebgp = true;
    }
  in
  let prefix = Netsim.Addr.prefix_of_string "100.1.0.0/24" in
  let attrs = Bgp.Attrs.make ~next_hop:(Addr.of_string "10.0.0.2") () in
  Tensor.Replicator.on_rib_change r.repl ~vrf:"v0"
    (Bgp.Rib.Best_changed (prefix, { Bgp.Rib.source = src; attrs; stale = false }));
  Engine.run r.eng;
  let key = Tensor.Keys.rib_key ~service:"rig" ~vrf:"v0" prefix in
  (match Store.Server.peek r.server key with
  | Some v -> (
      match Tensor.Keys.decode_rib_entry v with
      | Ok (src', p', attrs') ->
          checkb "entry roundtrips" true
            (src' = src
            && Netsim.Addr.equal_prefix p' prefix
            && Bgp.Attrs.equal attrs' attrs)
      | Error e -> Alcotest.failf "decode: %s" e)
  | None -> Alcotest.fail "checkpoint missing");
  (* Withdraw deletes it. *)
  Tensor.Replicator.on_rib_change r.repl ~vrf:"v0" (Bgp.Rib.Best_withdrawn prefix);
  Engine.run r.eng;
  checkb "withdrawn entry deleted" true (Store.Server.peek r.server key = None)

let test_replicate_false_is_inert () =
  let r = make_rig ~replicate:false () in
  let released = ref false in
  Tensor.Replicator.on_rx_message r.repl (update 1) ~inferred_ack:1100;
  Tensor.Replicator.on_tx_message r.repl ~raw:"xyz" ~release:(fun () ->
      released := true);
  checkb "tx released synchronously" true !released;
  Engine.run r.eng;
  checki "store untouched" 0 (Store.Server.records r.server)

let test_resume_continues_counters () =
  let r = make_rig () in
  Tensor.Replicator.resume_at r.repl ~epoch:0 ~watermark:2000 ~bytes_written:500
    ~in_seq:7 ~outtrim:300
    ~out_records:[ (300, 100); (400, 100) ];
  checkb "watermark restored" true
    (Tensor.Replicator.watermark r.repl = Some 2000);
  checki "bytes continue" 500 (Tensor.Replicator.bytes_written r.repl);
  (* Next rx message uses the continued sequence counter. *)
  Tensor.Replicator.on_rx_message r.repl (update 1) ~inferred_ack:2100;
  Engine.run r.eng;
  checkb "in record at seq 7" true
    (Store.Server.peek r.server (Tensor.Keys.in_key r.cid 7) <> None);
  (* Next tx continues at offset 500. *)
  Tensor.Replicator.on_tx_message r.repl ~raw:"abc" ~release:(fun () -> ());
  Engine.run r.eng;
  checkb "out record at offset 500" true
    (Store.Server.peek r.server (Tensor.Keys.out_key r.cid 500) <> None)

let test_drain_fires_when_quiet () =
  let r = make_rig () in
  Tensor.Replicator.session_established r.repl ~irs:1000;
  for i = 1 to 50 do
    Tensor.Replicator.on_rx_message r.repl (update i)
      ~inferred_ack:(1000 + (i * 50))
  done;
  let drained = ref false in
  Tensor.Replicator.drain r.repl (fun () -> drained := true);
  checkb "not drained yet" false !drained;
  Engine.run r.eng;
  checkb "drained" true !drained

let test_stop_releases_held () =
  (* A held reinjection must not be wedged by stop. *)
  let r = make_rig () in
  let chain = Netfilter.create () in
  Tensor.Replicator.attach_output_chain r.repl chain
    ~local:(Addr.of_string "1.1.1.1") ~remote:(Addr.of_string "2.2.2.2");
  Tensor.Replicator.session_established r.repl ~irs:1000;
  (* A segment acking beyond the watermark gets held. *)
  let seg =
    {
      Tcp.Segment.src_port = 179;
      dst_port = 179;
      seq = 0;
      ack = 99_999;
      window = 1000;
      payload = "";
      flags = Tcp.Segment.flag_ack;
    }
  in
  let emitted = ref 0 in
  Netfilter.traverse chain
    (Packet.make ~src:(Addr.of_string "1.1.1.1") ~dst:(Addr.of_string "2.2.2.2")
       ~size:40 (Tcp.Segment.Tcp seg))
    ~emit:(fun _ -> incr emitted);
  checki "held" 1 (Tensor.Replicator.held_segments r.repl);
  Tensor.Replicator.stop r.repl;
  checki "released on stop" 0 (Tensor.Replicator.held_segments r.repl);
  checki "emitted" 1 !emitted

let () =
  Alcotest.run "replicator"
    [
      ( "receive",
        [
          Alcotest.test_case "rx becomes durable" `Quick
            test_rx_message_becomes_durable;
          Alcotest.test_case "keepalive trimmed" `Quick
            test_keepalive_trimmed_immediately;
          Alcotest.test_case "update trimmed after apply" `Quick
            test_update_trimmed_only_after_applied;
        ] );
      ( "send",
        [
          Alcotest.test_case "release waits for durability" `Quick
            test_tx_release_waits_for_durability;
          Alcotest.test_case "offsets cumulative" `Quick
            test_tx_offsets_are_cumulative;
          Alcotest.test_case "snd_una trims" `Quick
            test_note_snd_una_trims_out_records;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "rib roundtrip" `Quick test_rib_checkpoint_roundtrip;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "replicate=false inert" `Quick
            test_replicate_false_is_inert;
          Alcotest.test_case "resume continues counters" `Quick
            test_resume_continues_counters;
          Alcotest.test_case "drain" `Quick test_drain_fires_when_quiet;
          Alcotest.test_case "stop releases held" `Quick test_stop_releases_held;
        ] );
    ]
