(* The structured telemetry layer: event bus ordering, span trees and
   orphan handling, histogram bucket boundaries, the legacy Trace
   mirror, and the disabled-mode no-op guarantees. *)

open Sim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Every test starts from a clean, enabled slate and leaves telemetry
   disabled for whoever runs next. *)
let with_telemetry ?(enabled = true) f =
  Telemetry.Control.reset ();
  Telemetry.Control.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Control.set_enabled false;
      Telemetry.Control.reset ())
    f

let ev_generic cat name detail = Telemetry.Event.Generic { cat; name; detail }

(* --- Event bus ------------------------------------------------------------ *)

let test_simultaneous_ordering () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      (* Several events at the same simulated instant, across different
         categories: the global sequence number must preserve emission
         order exactly. *)
      ignore
        (Engine.schedule_after eng (Time.ms 5) (fun () ->
             Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Tcp "a" "1");
             Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Bgp "b" "2");
             Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Tcp "c" "3");
             Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Orch "d" "4")));
      Engine.run_for eng (Time.ms 10);
      let entries = Telemetry.Bus.events () in
      checki "four events" 4 (List.length entries);
      let names =
        List.map (fun e -> Telemetry.Event.name e.Telemetry.Bus.event) entries
      in
      checks "emission order preserved" "a,b,c,d" (String.concat "," names);
      let seqs = List.map (fun e -> e.Telemetry.Bus.seq) entries in
      checkb "sequence strictly increasing" true
        (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
      checkb "all at the same instant" true
        (List.for_all
           (fun e -> e.Telemetry.Bus.at = Time.ms 5)
           entries))

let test_category_filter_and_overflow () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      Telemetry.Bus.set_capacity 4;
      for i = 1 to 10 do
        Telemetry.Bus.emit eng
          (ev_generic Telemetry.Event.Tcp "tick" (string_of_int i))
      done;
      Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Bgp "other" "x");
      let tcp = Telemetry.Bus.events ~category:Telemetry.Event.Tcp () in
      checki "ring keeps the newest 4" 4 (List.length tcp);
      checki "total counts everything" 10 (Telemetry.Bus.total Telemetry.Event.Tcp);
      checki "dropped = overwritten" 6 (Telemetry.Bus.dropped Telemetry.Event.Tcp);
      (match tcp with
      | first :: _ -> (
          match Telemetry.Event.fields first.Telemetry.Bus.event with
          | [ (_, Telemetry.Event.Str d) ] -> checks "oldest survivor" "7" d
          | _ -> Alcotest.fail "unexpected fields")
      | [] -> Alcotest.fail "empty ring");
      checki "bgp unaffected" 1
        (List.length (Telemetry.Bus.events ~category:Telemetry.Event.Bgp ()));
      Telemetry.Bus.set_capacity 8192)

(* Hostile strings (quotes, backslashes, control bytes, DEL) must
   survive JSONL export as parseable JSON and round-trip byte-for-byte
   through the bundled reader. *)
let test_jsonl_escaping_roundtrip () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      let nasty = "q\"uote\\back\nnew\tline\r\x01ctl\x7f" in
      Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Tcp "na\"me\\" nasty);
      Telemetry.Bus.emit eng
        (Telemetry.Event.Failure_detected
           { id = "svc\\1"; kind = "host\"machine" });
      let buf = Buffer.create 256 in
      Telemetry.Bus.to_jsonl buf;
      let lines =
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> String.trim l <> "")
      in
      checki "two lines" 2 (List.length lines);
      let parsed =
        List.map
          (fun line ->
            match Monitor.Json.parse line with
            | Ok j -> j
            | Error e -> Alcotest.failf "line does not parse: %s in %s" e line)
          lines
      in
      (match parsed with
      | [ generic; failure ] ->
          checks "detail round-trips" nasty
            (Option.get
               (Option.bind
                  (Monitor.Json.path [ "f"; "detail" ] generic)
                  Monitor.Json.to_str));
          checks "event name round-trips" "na\"me\\"
            (Option.get
               (Option.bind (Monitor.Json.member "ev" generic)
                  Monitor.Json.to_str));
          checks "id round-trips" "svc\\1"
            (Option.get
               (Option.bind
                  (Monitor.Json.path [ "f"; "id" ] failure)
                  Monitor.Json.to_str))
      | _ -> Alcotest.fail "expected two parsed lines"))

let test_legacy_mirror () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      let tr = Trace.create () in
      Telemetry.Bus.emit ~legacy:tr eng
        (Telemetry.Event.Failure_detected { id = "svc1"; kind = "host-machine" });
      match Trace.first tr ~category:"detect" with
      | Some e -> checks "legacy string" "svc1 host-machine" e.Trace.message
      | None -> Alcotest.fail "legacy trace entry missing")

(* --- Spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      let root = Telemetry.Span.start eng "failover" in
      Telemetry.Span.set_ambient (Some root);
      ignore
        (Engine.schedule_after eng (Time.ms 30) (fun () ->
             (* No explicit parent: attaches to the ambient root, as BFD
                detection and replica catch-up do. *)
             ignore
               (Telemetry.Span.add eng "bfd_detect" ~start_at:(Time.ms 10)
                  ~stop_at:(Time.ms 30))));
      ignore
        (Engine.schedule_after eng (Time.ms 40) (fun () ->
             let c = Telemetry.Span.start eng "tcp_replay" in
             ignore
               (Engine.schedule_after eng (Time.ms 25) (fun () ->
                    Telemetry.Span.finish eng c;
                    Telemetry.Span.finish eng root;
                    Telemetry.Span.set_ambient None))));
      Engine.run_for eng (Time.ms 100);
      let kids = Telemetry.Span.children root in
      checki "two children under the root" 2 (List.length kids);
      (match Telemetry.Span.find ~name:"bfd_detect" with
      | [ s ] ->
          checkb "retroactive start honoured" true (s.Telemetry.Span.start_at = Time.ms 10);
          checkb "stops inside the root" true
            (s.Telemetry.Span.stop_at = Some (Time.ms 30))
      | l -> Alcotest.failf "bfd_detect spans: %d" (List.length l));
      (match Telemetry.Span.find ~name:"failover" with
      | [ s ] ->
          checkb "root closed at child completion" true
            (s.Telemetry.Span.stop_at = Some (Time.ms 65))
      | _ -> Alcotest.fail "no failover span");
      checki "one root" 1 (List.length (Telemetry.Span.roots ())))

let test_span_orphans () =
  with_telemetry (fun () ->
      let eng = Engine.create () in
      (* Finishing unknown / already-finished / none ids never raises. *)
      Telemetry.Span.finish eng 12345;
      Telemetry.Span.finish eng Telemetry.Span.none;
      let s = Telemetry.Span.start eng "once" in
      Telemetry.Span.finish eng s;
      Telemetry.Span.finish eng s;
      (* A span whose parent was never recorded is still a root. *)
      let orphan = Telemetry.Span.start ~parent:777 eng "orphan" in
      ignore orphan;
      checki "both spans recorded" 2 (List.length (Telemetry.Span.spans ()));
      checki "orphan counts as a root" 2 (List.length (Telemetry.Span.roots ()));
      (* Never-finished spans export with a null stop rather than
         disappearing. *)
      let buf = Buffer.create 256 in
      Telemetry.Span.to_jsonl buf;
      checkb "unfinished span exports null stop" true
        (let s = Buffer.contents buf in
         let rec contains i =
           i + 12 <= String.length s
           && (String.sub s i 12 = "\"stop_ns\":nu" || contains (i + 1))
         in
         contains 0))

(* --- Histograms ----------------------------------------------------------- *)

let test_histogram_buckets () =
  with_telemetry (fun () ->
      let h = Telemetry.Registry.histogram "test.hist" in
      (* Power-of-two buckets with exclusive upper bounds: 1.0 lies in
         [1,2) (bound 2.0), 0.999... in [0.5,1) (bound 1.0), exactly 2.0
         rolls over to [2,4) (bound 4.0). Non-positive and NaN land in
         the underflow bucket (bound 0.0). *)
      Telemetry.Registry.observe h 1.0;
      Telemetry.Registry.observe h 0.75;
      Telemetry.Registry.observe h 2.0;
      Telemetry.Registry.observe h 0.0;
      Telemetry.Registry.observe h (-3.0);
      Telemetry.Registry.observe h nan;
      checki "count" 6 (Telemetry.Registry.hist_count h);
      let bucket_of v =
        Telemetry.Registry.buckets h
        |> List.filter (fun (ub, _) -> ub = v)
        |> List.map snd
      in
      checkb "1.0 -> bound 2.0" true (bucket_of 2.0 = [ 1 ]);
      checkb "0.75 -> bound 1.0" true (bucket_of 1.0 = [ 1 ]);
      checkb "2.0 -> bound 4.0" true (bucket_of 4.0 = [ 1 ]);
      checkb "non-positive and nan -> underflow" true (bucket_of 0.0 = [ 3 ]))

(* The edge quantiles must report the observed extremes — real values,
   not the power-of-two bucket bounds they fall into. *)
let test_quantile_extremes () =
  with_telemetry (fun () ->
      let checkf = Alcotest.(check (float 1e-9)) in
      let h = Telemetry.Registry.histogram "test.quant" in
      List.iter (Telemetry.Registry.observe h) [ 0.37; 5.25; 1.9; 0.62 ];
      checkf "q=0 is the observed minimum" 0.37
        (Telemetry.Registry.quantile h 0.0);
      checkf "q=1 is the observed maximum" 5.25
        (Telemetry.Registry.quantile h 1.0);
      (* Interior estimates are clamped into the observed range, so a
         high quantile can never exceed the true maximum even though its
         bucket's upper bound (8.0) does. *)
      checkb "q=0.99 clamped to the maximum" true
        (Telemetry.Registry.quantile h 0.99 <= 5.25);
      checkb "nan argument is nan" true
        (Float.is_nan (Telemetry.Registry.quantile h Float.nan));
      let e = Telemetry.Registry.histogram "test.quant.empty" in
      checkb "empty histogram q=0 is nan" true
        (Float.is_nan (Telemetry.Registry.quantile e 0.0)))

let test_registry_idempotent () =
  with_telemetry (fun () ->
      let c1 = Telemetry.Registry.counter "test.same" in
      let c2 = Telemetry.Registry.counter "test.same" in
      Telemetry.Registry.incr c1;
      checki "same underlying counter" 1 (Telemetry.Registry.value c2);
      checkb "kind clash rejected" true
        (try
           ignore (Telemetry.Registry.gauge "test.same");
           false
         with Invalid_argument _ -> true))

(* --- Disabled mode -------------------------------------------------------- *)

let test_disabled_noop () =
  with_telemetry ~enabled:false (fun () ->
      let eng = Engine.create () in
      let tr = Trace.create () in
      Telemetry.Bus.emit eng (ev_generic Telemetry.Event.Tcp "quiet" "x");
      Telemetry.Bus.emit ~legacy:tr eng
        (Telemetry.Event.Planned_migration { service = "svc9" });
      checki "no events buffered" 0 (List.length (Telemetry.Bus.events ()));
      (* The legacy mirror still fires: Trace consumers must behave
         identically with telemetry off. *)
      (match Trace.first tr ~category:"planned" with
      | Some e -> checks "legacy mirror not gated" "svc9" e.Trace.message
      | None -> Alcotest.fail "legacy mirror was gated off");
      let s = Telemetry.Span.start eng "ghost" in
      checkb "span id is none" true (s = Telemetry.Span.none);
      Telemetry.Span.finish eng s;
      checki "no spans recorded" 0 (List.length (Telemetry.Span.spans ())))

(* --- End-to-end: failover scenario produces the span tree ----------------- *)

let test_failover_span_tree () =
  with_telemetry (fun () ->
      match Tensor.Exp_table1.run ~kinds:[ Orch.Controller.Host_failure ] () with
      | [ row ] ->
          checkb "scenario converged" true (row.Tensor.Exp_table1.total_s > 0.0);
          let roots =
            Telemetry.Span.roots ()
            |> List.filter (fun s -> s.Telemetry.Span.name = "failover")
          in
          (match roots with
          | [ root ] ->
              checkb "root span closed" true
                (root.Telemetry.Span.stop_at <> None);
              let kid_names =
                Telemetry.Span.children root.Telemetry.Span.sid
                |> List.map (fun s -> s.Telemetry.Span.name)
              in
              checkb "bfd_detect child present" true
                (List.mem "bfd_detect" kid_names);
              checkb "replica_catchup child present" true
                (List.mem "replica_catchup" kid_names)
          | l -> Alcotest.failf "failover roots: %d" (List.length l));
          checkb "catch-up metrics recorded" true
            (Telemetry.Registry.hist_count
               (Telemetry.Registry.histogram "replicator.catchup_s")
            > 0)
      | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))

let () =
  Alcotest.run "telemetry"
    [
      ( "bus",
        [
          Alcotest.test_case "simultaneous-ordering" `Quick
            test_simultaneous_ordering;
          Alcotest.test_case "category-filter-overflow" `Quick
            test_category_filter_and_overflow;
          Alcotest.test_case "legacy-mirror" `Quick test_legacy_mirror;
          Alcotest.test_case "jsonl-escaping-roundtrip" `Quick
            test_jsonl_escaping_roundtrip;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "orphans" `Quick test_span_orphans;
        ] );
      ( "registry",
        [
          Alcotest.test_case "bucket-boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "quantile-extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "idempotent" `Quick test_registry_idempotent;
        ] );
      ( "modes",
        [ Alcotest.test_case "disabled-noop" `Quick test_disabled_noop ] );
      ( "end-to-end",
        [ Alcotest.test_case "failover-span-tree" `Quick test_failover_span_tree ]
      );
    ]
