(* Edge cases of the Sim.Metrics sample/quantile machinery: empty and
   single-observation collections, clamped and NaN quantile arguments,
   degenerate CDF requests, and span-recorder misuse. *)

open Sim

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_quantile_empty () =
  let s = Metrics.samples "empty" in
  checkb "quantile of empty is nan" true (Float.is_nan (Metrics.quantile s 0.5));
  checkb "median of empty is nan" true (Float.is_nan (Metrics.median s));
  checkb "mean of empty is nan" true (Float.is_nan (Metrics.mean s));
  checkb "min of empty is nan" true (Float.is_nan (Metrics.min_value s));
  checkb "max of empty is nan" true (Float.is_nan (Metrics.max_value s))

let test_quantile_single () =
  let s = Metrics.samples "one" in
  Metrics.record s 42.0;
  checkf "q=0" 42.0 (Metrics.quantile s 0.0);
  checkf "q=0.5" 42.0 (Metrics.quantile s 0.5);
  checkf "q=1" 42.0 (Metrics.quantile s 1.0)

let test_quantile_bounds () =
  let s = Metrics.samples "bounds" in
  List.iter (Metrics.record s) [ 3.0; 1.0; 2.0; 4.0 ];
  checkf "q=0 is the minimum" 1.0 (Metrics.quantile s 0.0);
  checkf "q=1 is the maximum" 4.0 (Metrics.quantile s 1.0);
  (* Out-of-range arguments clamp rather than raise or index out of
     bounds. *)
  checkf "q<0 clamps to 0" 1.0 (Metrics.quantile s (-0.3));
  checkf "q>1 clamps to 1" 4.0 (Metrics.quantile s 1.7);
  checkf "interpolates" 2.5 (Metrics.quantile s 0.5)

let test_quantile_nan () =
  let s = Metrics.samples "nanq" in
  List.iter (Metrics.record s) [ 1.0; 2.0 ];
  checkb "nan q yields nan" true (Float.is_nan (Metrics.quantile s nan))

let test_cdf_degenerate () =
  let s = Metrics.samples "cdf" in
  checki "empty samples: no points" 0 (List.length (Metrics.cdf s 10));
  Metrics.record s 5.0;
  checki "points = 0" 0 (List.length (Metrics.cdf s 0));
  checki "points < 0" 0 (List.length (Metrics.cdf s (-3)));
  match Metrics.cdf s 1 with
  | [ (v, p) ] ->
      checkf "single point value" 5.0 v;
      checkf "single point probability" 1.0 p
  | l -> Alcotest.failf "expected 1 cdf point, got %d" (List.length l)

let test_cdf_monotone () =
  let s = Metrics.samples "mono" in
  List.iter (Metrics.record s) [ 9.0; 1.0; 5.0; 3.0; 7.0 ];
  let pts = Metrics.cdf s 20 in
  checki "requested points" 20 (List.length pts);
  let rec monotone = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        v1 <= v2 && p1 <= p2 && monotone rest
    | _ -> true
  in
  checkb "values and probabilities nondecreasing" true (monotone pts);
  checkf "last point is the maximum" 9.0 (fst (List.nth pts 19))

let test_span_stop_unknown () =
  let eng = Engine.create () in
  let r = Metrics.span_recorder "spans" in
  (* Stopping an id that was never started must be a silent no-op. *)
  Metrics.span_stop r eng 99;
  checki "nothing recorded" 0 (Metrics.n (Metrics.span_samples r));
  Metrics.span_start r eng 1;
  ignore (Engine.schedule_after eng (Time.ms 10) (fun () -> ()));
  Engine.run_for eng (Time.ms 10);
  Metrics.span_stop r eng 1;
  (* A second stop of the same id is also a no-op. *)
  Metrics.span_stop r eng 1;
  checki "one span recorded" 1 (Metrics.n (Metrics.span_samples r));
  checkf "span duration" 0.010
    (Metrics.quantile (Metrics.span_samples r) 0.5)

let () =
  Alcotest.run "metrics"
    [
      ( "quantile",
        [
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "single" `Quick test_quantile_single;
          Alcotest.test_case "bounds" `Quick test_quantile_bounds;
          Alcotest.test_case "nan-q" `Quick test_quantile_nan;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "degenerate" `Quick test_cdf_degenerate;
          Alcotest.test_case "monotone" `Quick test_cdf_monotone;
        ] );
      ( "spans",
        [ Alcotest.test_case "stop-unknown" `Quick test_span_stop_unknown ] );
    ]
