(* Tests for the orchestration substrate: container lifecycle, failure
   detection timings per Table 1, the 3-second confirmation timer, host
   self-fencing (split-brain defence) and quarantine. *)

open Sim
open Netsim
open Orch

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type cluster = {
  eng : Engine.t;
  net : Network.t;
  fabric : Node.t;
  h1 : Host.t;
  h2 : Host.t;
  agent : Agent.t;
  ctrl : Controller.t;
}

let cluster () =
  let eng = Engine.create () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let h1 = Host.create net ~fabric "h1" in
  let h2 = Host.create net ~fabric "h2" in
  let agent = Agent.create net ~fabric "agent" in
  let ctrl = Controller.create net ~fabric "controller" in
  Controller.register_host ctrl h1;
  Controller.register_host ctrl h2;
  Controller.register_agent ctrl agent;
  { eng; net; fabric; h1; h2; agent; ctrl }

let test_container_lifecycle () =
  let c = cluster () in
  let cont = Host.create_container c.h1 "c1" in
  checkb "created" true (Container.state cont = Container.Created);
  Container.boot cont;
  checkb "booting" true (Container.state cont = Container.Booting);
  Engine.run_for c.eng (Time.ms 500);
  checkb "not yet running" true (Container.state cont = Container.Booting);
  Engine.run_for c.eng (Time.ms 600);
  checkb "running after 1s" true (Container.state cont = Container.Running);
  Container.fail cont;
  checkb "failed" true (Container.state cont = Container.Failed);
  Container.boot cont;
  Engine.run_for c.eng (Time.sec 2);
  checkb "rebooted" true (Container.state cont = Container.Running)

let test_on_running_hook () =
  let c = cluster () in
  let cont = Host.create_container c.h1 "c1" in
  let hits = ref 0 in
  Container.on_running cont (fun _ -> incr hits);
  Container.boot cont;
  Engine.run_for c.eng (Time.sec 2);
  checki "hook ran" 1 !hits;
  Container.fail cont;
  Container.boot cont;
  Engine.run_for c.eng (Time.sec 2);
  checki "hook ran again on reboot" 2 !hits

let test_resource_accounting () =
  let c = cluster () in
  let conts = List.init 10 (fun i -> Host.create_container c.h1 (Printf.sprintf "c%d" i)) in
  List.iter Container.boot conts;
  Engine.run_for c.eng (Time.sec 2);
  let mem = Host.memory_used_mb c.h1 in
  checkb "10 containers ~2.5GB" true (mem > 2000.0 && mem < 3000.0);
  Container.fail (List.hd conts);
  let mem9 = Host.memory_used_mb c.h1 in
  checkb "failed container not counted" true (mem9 < mem)

let test_service_addr_routing () =
  let c = cluster () in
  let cont = Host.create_container c.h1 "c1" in
  Container.boot cont;
  Engine.run_for c.eng (Time.sec 2);
  let vip = Addr.of_string "203.0.113.99" in
  Container.assign_service_addr cont vip;
  Node.add_route c.fabric (Addr.prefix vip 32) (Host.addr c.h1);
  (* The agent can reach the VIP end-to-end. *)
  Rpc.serve_ping (Rpc.endpoint (Container.node cont)) ~service:"ipsla";
  let ok = ref None in
  Rpc.ping (Rpc.endpoint (Agent.node c.agent)) ~dst:vip ~service:"ipsla"
    (fun r -> ok := Some r);
  Engine.run_for c.eng (Time.sec 1);
  Alcotest.(check (option bool)) "vip reachable" (Some true) !ok

let boot_managed c id =
  let cont = Host.create_container c.h1 id in
  Container.boot cont;
  Engine.run_for c.eng (Time.sec 2);
  Controller.manage c.ctrl ~id cont;
  Engine.run_for c.eng (Time.sec 1);
  cont

let test_container_failure_detection_time () =
  let c = cluster () in
  let cont = boot_managed c "c1" in
  let detected = ref None in
  Controller.set_migrator c.ctrl (fun ~reason ~id:_ ~failed:_ ~done_:_ ->
      if !detected = None then detected := Some (reason, Engine.now c.eng));
  let t0 = Engine.now c.eng in
  Container.fail cont;
  Engine.run_for c.eng (Time.sec 5);
  match !detected with
  | Some (Controller.Container_failure, t) ->
      let d = Time.to_sec_f (Time.diff t t0) in
      checkb (Printf.sprintf "detected+initiated in %.2fs" d) true
        (d > 0.05 && d < 1.0)
  | Some (k, _) ->
      Alcotest.failf "wrong kind %a" Controller.pp_failure_kind k
  | None -> Alcotest.fail "not detected"

let test_app_failure_report_fast_path () =
  let c = cluster () in
  let cont = boot_managed c "c1" in
  let detected = ref None in
  Controller.set_migrator c.ctrl (fun ~reason ~id:_ ~failed:_ ~done_:_ ->
      if !detected = None then detected := Some (reason, Engine.now c.eng));
  (* The in-container monitor reports the crashed BGP process. *)
  let t0 = Engine.now c.eng in
  Rpc.call
    (Rpc.endpoint (Container.node cont))
    ~dst:(Controller.addr c.ctrl) ~service:Controller.report_endpoint_service
    (Controller.Report_app_failure "c1")
    (fun _ -> ());
  Engine.run_for c.eng (Time.sec 2);
  match !detected with
  | Some (Controller.App_failure, t) ->
      checkb "sub-200ms detect+initiate" true (Time.diff t t0 < Time.ms 200)
  | _ -> Alcotest.fail "app failure not detected"

let test_host_failure_detection_time () =
  let c = cluster () in
  ignore (boot_managed c "c1");
  let detected = ref None in
  Controller.set_migrator c.ctrl (fun ~reason ~id:_ ~failed:_ ~done_:_ ->
      if !detected = None then detected := Some (reason, Engine.now c.eng));
  let t0 = Engine.now c.eng in
  Host.fail c.h1;
  Engine.run_for c.eng (Time.sec 10);
  match !detected with
  | Some (Controller.Host_failure, t) ->
      let d = Time.to_sec_f (Time.diff t t0) in
      (* miss (~0.3) + verification + 3s confirm + initiate 0.2 ~ 3.5-4.5 *)
      checkb (Printf.sprintf "host failure confirmed in %.2fs" d) true
        (d > 3.0 && d < 5.0)
  | Some (k, _) -> Alcotest.failf "wrong kind %a" Controller.pp_failure_kind k
  | None -> Alcotest.fail "host failure not detected"

let test_transient_jitter_no_migration () =
  let c = cluster () in
  ignore (boot_managed c "c1");
  let migrations = ref 0 in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ ->
      incr migrations);
  (* 1.5 s network jitter: shorter than the 3 s confirmation timer. *)
  Host.network_fail c.h1;
  ignore
    (Engine.schedule_after c.eng (Time.of_ms_f 1500.) (fun () ->
         Host.network_recover c.h1));
  Engine.run_for c.eng (Time.sec 15);
  checki "no migration for transient jitter" 0 !migrations;
  checkb "host not quarantined" true (Controller.quarantined c.ctrl = []);
  checkb "host not fenced (lease survived)" false (Host.is_fenced c.h1)

let test_permanent_network_failure_migrates () =
  let c = cluster () in
  ignore (boot_managed c "c1");
  let migrated = ref false in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ ->
      migrated := true);
  Host.network_fail c.h1;
  Engine.run_for c.eng (Time.sec 10);
  checkb "migration triggered" true !migrated;
  checkb "host quarantined" true
    (List.mem "h1" (Controller.quarantined c.ctrl));
  (* The partitioned host fenced itself via the lease before the
     controller's migration decision. *)
  checkb "host self-fenced" true (Host.is_fenced c.h1)

let test_lease_fences_before_migration () =
  (* The self-fence instant must precede the controller's host-failed
     declaration: no split-brain window. *)
  let c = cluster () in
  let cont = boot_managed c "c1" in
  let declared_at = ref None in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ ->
      if !declared_at = None then declared_at := Some (Engine.now c.eng));
  Host.network_fail c.h1;
  (* Find the instant the container's networking dies (fence). *)
  let fenced_at = ref None in
  let rec poll () =
    if Host.is_fenced c.h1 && !fenced_at = None then
      fenced_at := Some (Engine.now c.eng)
    else if !fenced_at = None then
      ignore (Engine.schedule_after c.eng (Time.ms 50) poll)
  in
  poll ();
  Engine.run_for c.eng (Time.sec 10);
  ignore cont;
  match (!fenced_at, !declared_at) with
  | Some f, Some d -> checkb "fence before migration" true (f <= d)
  | _ -> Alcotest.fail "missing fence or migration"

let test_quarantine_release () =
  let c = cluster () in
  ignore (boot_managed c "c1");
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ -> ());
  Host.fail c.h1;
  Engine.run_for c.eng (Time.sec 10);
  checkb "quarantined" true (List.mem "h1" (Controller.quarantined c.ctrl));
  Host.recover c.h1;
  Engine.run_for c.eng (Time.sec 5);
  checkb "still quarantined after coming back" true
    (List.mem "h1" (Controller.quarantined c.ctrl));
  checkb "still fenced" true (Host.is_fenced c.h1);
  Controller.release_quarantine c.ctrl c.h1;
  checkb "released" true (Controller.quarantined c.ctrl = []);
  checkb "fence cleared" false (Host.is_fenced c.h1)

let test_migrator_replacement_monitored () =
  (* After migration the controller monitors the replacement and detects
     its failure too. *)
  let c = cluster () in
  let cont = boot_managed c "c1" in
  let detections = ref 0 in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_ ->
      incr detections;
      let replacement = Host.create_container c.h2 (Printf.sprintf "c1-r%d" !detections) in
      Container.boot replacement;
      ignore
        (Engine.schedule_after c.eng (Time.sec 2) (fun () ->
             done_ replacement)));
  Container.fail cont;
  Engine.run_for c.eng (Time.sec 10);
  checki "first migration" 1 !detections;
  (match Controller.managed_container c.ctrl ~id:"c1" with
  | Some r -> checkb "replacement installed" true (Container.id r = "c1-r1")
  | None -> Alcotest.fail "lost management");
  (* Kill the replacement. *)
  (match Controller.managed_container c.ctrl ~id:"c1" with
  | Some r -> Container.fail r
  | None -> ());
  Engine.run_for c.eng (Time.sec 10);
  checki "second migration" 2 !detections

(* --- Store-gated migration deferral (fleet graceful degradation) --------- *)

let cluster_with_store () =
  (* Bus emission (Migration_deferred et al.) is behind the global
     telemetry gate. *)
  Telemetry.Gate.set true;
  let c = cluster () in
  let snode = Network.add_node c.net "store" in
  let _, fabric_side, _ = Network.connect c.net c.fabric snode in
  Node.add_route snode (Addr.prefix_of_string "0.0.0.0/0") fabric_side;
  let store = Store.Server.create snode in
  Controller.register_store c.ctrl ~addr:(Store.Server.addr store);
  (* Let the probe establish the store as reachable. *)
  Engine.run_for c.eng (Time.sec 1);
  (c, snode)

let count_deferred ~id hits =
  Telemetry.Bus.subscribe (fun e ->
      match e.Telemetry.Bus.event with
      | Telemetry.Event.Migration_deferred d when d.id = id -> incr hits
      | _ -> ())

let test_store_outage_defers_single_migration () =
  (* Regression: a failure detected while the store is unreachable must
     defer (Migration_deferred) and, once the store heals, fire the
     migrator EXACTLY once — the deferral retry loop and the probe
     verdicts that keep arriving for the same dead container must not
     each schedule their own migration. *)
  let c, snode = cluster_with_store () in
  let cont = boot_managed c "c1" in
  let migrations = ref 0 in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_ ->
      incr migrations;
      let r = Host.create_container c.h2 (Printf.sprintf "c1-r%d" !migrations) in
      Container.boot r;
      ignore
        (Engine.schedule_after c.eng (Time.sec 2) (fun () -> done_ r)));
  let deferred = ref 0 in
  let sub = count_deferred ~id:"c1" deferred in
  (* Store node down: the kv_health probe times out, sok flips. *)
  Node.set_up snode false;
  Engine.run_for c.eng (Time.sec 2);
  Container.fail cont;
  (* Many probe intervals pass with the container dead and the store
     unreachable: plenty of chances for a double-schedule. *)
  Engine.run_for c.eng (Time.sec 8);
  checki "deferred exactly once" 1 !deferred;
  checki "migrator held back while store down" 0 !migrations;
  checki "one failure migration in flight" 1
    (Controller.failure_migrations_active c.ctrl);
  Node.set_up snode true;
  Engine.run_for c.eng (Time.sec 10);
  checki "single migration after heal" 1 !migrations;
  checki "in-flight count drained" 0
    (Controller.failure_migrations_active c.ctrl);
  (match Controller.managed_container c.ctrl ~id:"c1" with
  | Some r -> checkb "replacement installed" true (Container.id r = "c1-r1")
  | None -> Alcotest.fail "lost management");
  Telemetry.Bus.unsubscribe sub

let test_planned_migration_supersedes_deferred () =
  (* A planned migration taking over the instance while a failure
     migration sits parked on the store outage must orphan the deferred
     chain: when the store heals, the stale epoch must NOT migrate the
     (now healthy, already moved) instance a second time. *)
  let c, snode = cluster_with_store () in
  let cont = boot_managed c "c1" in
  let migrations = ref 0 in
  Controller.set_migrator c.ctrl (fun ~reason:_ ~id:_ ~failed:_ ~done_:_ ->
      incr migrations);
  Node.set_up snode false;
  Engine.run_for c.eng (Time.sec 2);
  Container.fail cont;
  Engine.run_for c.eng (Time.sec 3);
  checki "parked on the outage" 1 (Controller.failure_migrations_active c.ctrl);
  (* Operator-driven move lands while the failure path is parked. *)
  Controller.begin_planned c.ctrl ~id:"c1";
  let replacement = Host.create_container c.h2 "c1-planned" in
  Container.boot replacement;
  Engine.run_for c.eng (Time.sec 2);
  Controller.end_planned c.ctrl ~id:"c1" replacement;
  checki "supersede balanced the in-flight count" 0
    (Controller.failure_migrations_active c.ctrl);
  Node.set_up snode true;
  Engine.run_for c.eng (Time.sec 10);
  checki "stale deferred chain never fired" 0 !migrations;
  match Controller.managed_container c.ctrl ~id:"c1" with
  | Some r -> checkb "planned replacement kept" true (Container.id r = "c1-planned")
  | None -> Alcotest.fail "lost management"

let test_agent_relay_registry () =
  let c = cluster () in
  Agent.start_relay c.agent ~id:"c1" ~src:(Addr.of_string "1.1.1.1")
    ~dst:(Addr.of_string "2.2.2.2") ~vrf:"v0" ~my_disc:1 ~your_disc:2;
  Agent.start_relay c.agent ~id:"c1" ~src:(Addr.of_string "1.1.1.1")
    ~dst:(Addr.of_string "2.2.2.2") ~vrf:"v1" ~my_disc:3 ~your_disc:4;
  checki "two relays" 2 (Agent.relay_count c.agent);
  Agent.stop_relay c.agent ~id:"c1" ~vrf:"v0";
  checki "one left" 1 (Agent.relay_count c.agent)

let () =
  Alcotest.run "orch"
    [
      ( "container",
        [
          Alcotest.test_case "lifecycle" `Quick test_container_lifecycle;
          Alcotest.test_case "on_running hook" `Quick test_on_running_hook;
          Alcotest.test_case "resource accounting" `Quick
            test_resource_accounting;
          Alcotest.test_case "service addr routing" `Quick
            test_service_addr_routing;
        ] );
      ( "detection",
        [
          Alcotest.test_case "container failure ~0.3s" `Quick
            test_container_failure_detection_time;
          Alcotest.test_case "app failure fast path" `Quick
            test_app_failure_report_fast_path;
          Alcotest.test_case "host failure ~3.3s" `Quick
            test_host_failure_detection_time;
          Alcotest.test_case "transient jitter tolerated" `Quick
            test_transient_jitter_no_migration;
          Alcotest.test_case "permanent network failure" `Quick
            test_permanent_network_failure_migrates;
        ] );
      ( "split-brain",
        [
          Alcotest.test_case "lease fences before migration" `Quick
            test_lease_fences_before_migration;
          Alcotest.test_case "quarantine and release" `Quick
            test_quarantine_release;
        ] );
      ( "migration",
        [
          Alcotest.test_case "replacement monitored" `Quick
            test_migrator_replacement_monitored;
          Alcotest.test_case "store outage defers, single schedule" `Quick
            test_store_outage_defers_single_migration;
          Alcotest.test_case "planned supersedes deferred failure" `Quick
            test_planned_migration_supersedes_deferred;
          Alcotest.test_case "agent relay registry" `Quick
            test_agent_relay_registry;
        ] );
    ]
