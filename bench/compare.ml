(* Diff two --emit-bench snapshots and flag wall-clock regressions.

     dune exec bench/compare.exe -- BENCH_old.json BENCH_new.json
     dune exec bench/compare.exe -- --threshold 1.3 old.json new.json

   An experiment regresses when new_wall / old_wall exceeds the
   threshold (default 1.5x) AND the absolute slowdown is over 50 ms —
   sub-millisecond experiments are pure noise. Exit 1 on any
   regression, 2 on unreadable/incomparable snapshots. *)

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Monitor.Json.parse (read_file path) with
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: malformed snapshot: %s\n" path msg;
      exit 2

let experiments j =
  match Option.bind (Monitor.Json.member "experiments" j) Monitor.Json.to_list with
  | Some l ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Monitor.Json.member "id" e) Monitor.Json.to_str,
              Option.bind (Monitor.Json.member "wall_s" e) Monitor.Json.to_float,
              Option.bind (Monitor.Json.member "sim_events_per_s" e)
                Monitor.Json.to_float )
          with
          | Some id, Some wall, eps -> Some (id, (wall, eps))
          | _ -> None)
        l
  | None ->
      prerr_endline "snapshot has no \"experiments\" array";
      exit 2

let () =
  let threshold = ref 1.5 in
  let min_delta_s = 0.05 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 1.0 -> threshold := f
        | _ ->
            prerr_endline "--threshold expects a float > 1.0";
            exit 2);
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ ->
        prerr_endline "usage: compare [--threshold R] OLD.json NEW.json";
        exit 2
  in
  let old_j = parse old_file and new_j = parse new_file in
  let quick j =
    Option.bind (Monitor.Json.member "quick" j) Monitor.Json.to_bool
  in
  if quick old_j <> quick new_j then
    Printf.eprintf
      "warning: snapshots mix quick and full runs — ratios are not \
       meaningful\n";
  let old_e = experiments old_j and new_e = experiments new_j in
  let regressions = ref 0 and compared = ref 0 in
  Printf.printf "%-12s %12s %12s %8s\n" "experiment" "old wall" "new wall"
    "ratio";
  List.iter
    (fun (id, (old_wall, _)) ->
      match List.assoc_opt id new_e with
      | None -> Printf.printf "%-12s %12.3f %12s %8s\n" id old_wall "-" "gone"
      | Some (new_wall, _) ->
          incr compared;
          let ratio =
            if old_wall > 1e-9 then new_wall /. old_wall else Float.infinity
          in
          let slow =
            ratio > !threshold && new_wall -. old_wall > min_delta_s
          in
          if slow then incr regressions;
          Printf.printf "%-12s %12.3f %12.3f %7.2fx%s\n" id old_wall new_wall
            ratio
            (if slow then "  << REGRESSION" else ""))
    old_e;
  List.iter
    (fun (id, (new_wall, _)) ->
      if not (List.mem_assoc id old_e) then
        Printf.printf "%-12s %12s %12.3f %8s\n" id "-" new_wall "new")
    new_e;
  if !compared = 0 then begin
    prerr_endline "no common experiments between the two snapshots";
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf "\n%d regression(s) beyond %.2fx.\n" !regressions !threshold;
    exit 1
  end
  else Printf.printf "\nNo regressions beyond %.2fx.\n" !threshold
