(* Diff two --emit-bench snapshots and flag wall-clock regressions.

     dune exec bench/compare.exe -- BENCH_old.json BENCH_new.json
     dune exec bench/compare.exe -- --threshold 1.3 old.json new.json

   An experiment regresses when new_wall / old_wall exceeds the
   threshold (default 1.5x) AND the absolute slowdown is over the noise
   floor. The floor is 50 ms for experiments that take at least 50 ms;
   below that it scales with the experiment itself (the old wall time,
   but never under 10 ms) so fast experiments — which a fixed 50 ms
   floor made invisible — still gate on a genuine doubling while
   millisecond jitter stays ignored. Parses both schema v1 and v2
   snapshots; v2's allocs_per_event drift is reported informationally.
   Exit 1 on any regression, 2 on unreadable/incomparable snapshots. *)

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Monitor.Json.parse (read_file path) with
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: malformed snapshot: %s\n" path msg;
      exit 2

(* 50 ms absolute for slow experiments; for sub-50 ms ones the old wall
   itself (>= 10 ms), i.e. the run must at least double. *)
let noise_floor old_wall =
  if old_wall >= 0.05 then 0.05 else Float.max 0.01 old_wall

type exp = { wall : float; allocs_per_event : float option }

let experiments j =
  match Option.bind (Monitor.Json.member "experiments" j) Monitor.Json.to_list with
  | Some l ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Monitor.Json.member "id" e) Monitor.Json.to_str,
              Option.bind (Monitor.Json.member "wall_s" e) Monitor.Json.to_float )
          with
          | Some id, Some wall ->
              let allocs_per_event =
                Option.bind
                  (Monitor.Json.member "allocs_per_event" e)
                  Monitor.Json.to_float
              in
              Some (id, { wall; allocs_per_event })
          | _ -> None)
        l
  | None ->
      prerr_endline "snapshot has no \"experiments\" array";
      exit 2

let () =
  let threshold = ref 1.5 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 1.0 -> threshold := f
        | _ ->
            prerr_endline "--threshold expects a float > 1.0";
            exit 2);
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !files with
    | [ a; b ] -> (a, b)
    | _ ->
        prerr_endline "usage: compare [--threshold R] OLD.json NEW.json";
        exit 2
  in
  let old_j = parse old_file and new_j = parse new_file in
  let quick j =
    Option.bind (Monitor.Json.member "quick" j) Monitor.Json.to_bool
  in
  if quick old_j <> quick new_j then
    Printf.eprintf
      "warning: snapshots mix quick and full runs — ratios are not \
       meaningful\n";
  let old_e = experiments old_j and new_e = experiments new_j in
  let regressions = ref 0 and compared = ref 0 in
  Printf.printf "%-12s %12s %12s %8s %14s\n" "experiment" "old wall" "new wall"
    "ratio" "allocs/event";
  List.iter
    (fun (id, o) ->
      match List.assoc_opt id new_e with
      | None -> Printf.printf "%-12s %12.3f %12s %8s\n" id o.wall "-" "gone"
      | Some n ->
          incr compared;
          let ratio =
            if o.wall > 1e-9 then n.wall /. o.wall else Float.infinity
          in
          let slow =
            ratio > !threshold && n.wall -. o.wall > noise_floor o.wall
          in
          if slow then incr regressions;
          let allocs =
            match (o.allocs_per_event, n.allocs_per_event) with
            | Some a0, Some a1 when a0 > 1e-9 ->
                Printf.sprintf "%+.0f%%" ((a1 /. a0 -. 1.0) *. 100.0)
            | None, Some _ | Some _, Some _ -> "new"
            | _ -> "-"
          in
          Printf.printf "%-12s %12.3f %12.3f %7.2fx %14s%s\n" id o.wall n.wall
            ratio allocs
            (if slow then "  << REGRESSION" else ""))
    old_e;
  List.iter
    (fun (id, n) ->
      if not (List.mem_assoc id old_e) then
        Printf.printf "%-12s %12s %12.3f %8s\n" id "-" n.wall "new")
    new_e;
  if !compared = 0 then begin
    prerr_endline "no common experiments between the two snapshots";
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf "\n%d regression(s) beyond %.2fx.\n" !regressions !threshold;
    exit 1
  end
  else Printf.printf "\nNo regressions beyond %.2fx.\n" !threshold
