(* The pure core of trend.exe: best-so-far trajectory analysis over a
   series of --emit-bench snapshots, separated from file IO / printing
   so it can be unit-tested. *)

(* Same noise floor as compare.exe: 50 ms absolute, relative below it.
   A regression must clear both the ratio threshold and this floor, so
   microsecond-scale experiments gate on real doublings, not jitter. *)
let noise_floor best = if best >= 0.05 then 0.05 else Float.max 0.01 best

(* (id, wall_s) rows of one snapshot. Reads only fields common to
   schema v1 and v2, so mixed series parse uniformly. *)
let experiments j =
  match
    Option.bind (Monitor.Json.member "experiments" j) Monitor.Json.to_list
  with
  | None -> Error "snapshot has no \"experiments\" array"
  | Some l ->
      Ok
        (List.filter_map
           (fun e ->
             match
               ( Option.bind (Monitor.Json.member "id" e) Monitor.Json.to_str,
                 Option.bind
                   (Monitor.Json.member "wall_s" e)
                   Monitor.Json.to_float )
             with
             | Some id, Some wall -> Some (id, wall)
             | _ -> None)
           l)

(* Union of experiment ids across snapshots, in first-seen order. *)
let ids_union series =
  List.fold_left
    (fun acc exps ->
      List.fold_left
        (fun acc (id, _) -> if List.mem id acc then acc else acc @ [ id ])
        acc exps)
    [] series

type comparison = { best : float; now : float; ratio : float; regression : bool }

type verdict =
  | New of float (* first appearance: newest has it, history doesn't *)
  | Gone (* history has it, newest doesn't *)
  | Vs_best of comparison

type row = {
  id : string;
  points : float option list; (* one per snapshot, oldest first *)
  verdict : verdict;
}

(* [series] is oldest..newest; the last snapshot is gated against the
   minimum wall time any earlier snapshot achieved. Requires >= 2
   snapshots. *)
let analyze ?(threshold = 1.5) series =
  if List.length series < 2 then
    invalid_arg "Trend_core.analyze: need at least two snapshots";
  let newest = List.nth series (List.length series - 1) in
  let history = List.filteri (fun i _ -> i < List.length series - 1) series in
  List.map
    (fun id ->
      let points = List.map (List.assoc_opt id) series in
      let best =
        List.fold_left
          (fun acc exps ->
            match List.assoc_opt id exps with
            | Some w -> (
                match acc with
                | None -> Some w
                | Some b -> Some (Float.min b w))
            | None -> acc)
          None history
      in
      let verdict =
        match (best, List.assoc_opt id newest) with
        | Some best, Some now ->
            let ratio = if best > 1e-9 then now /. best else Float.infinity in
            let regression =
              ratio > threshold && now -. best > noise_floor best
            in
            Vs_best { best; now; ratio; regression }
        | None, Some now -> New now
        | _, None -> Gone
      in
      { id; points; verdict })
    (ids_union series)

let regressions rows =
  List.filter
    (fun r ->
      match r.verdict with Vs_best { regression; _ } -> regression | _ -> false)
    rows

(* "quick" flags across snapshots disagree: ratios compare different
   workloads and are not meaningful. *)
let mixed_quick flags =
  match List.filter_map Fun.id flags with
  | [] -> false
  | q0 :: rest -> List.exists (fun q -> q <> q0) rest
