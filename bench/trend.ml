(* Per-experiment performance trajectory over a series of --emit-bench
   snapshots, gated against best-so-far.

     dune exec bench/trend.exe -- BENCH_seed.json BENCH_pr4.json BENCH_pr.json
     dune exec bench/trend.exe -- --gate --threshold 1.5 BENCH_*.json NEW.json

   Files are taken in the order given (oldest first, newest last). For
   every experiment the full wall-time trajectory is printed, then the
   newest snapshot is compared against the *best* (minimum) wall time
   any earlier snapshot achieved — a creeping regression that stays
   under a pairwise threshold between adjacent PRs still trips the gate
   once it drifts past threshold x best-so-far. The same noise floor as
   compare.exe applies (50 ms absolute, relative below that), so fast
   experiments gate on real doublings, not jitter.

   Exit 0 unless --gate is given and a regression is found (exit 1);
   exit 2 on unreadable snapshots or fewer than two files. *)

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Monitor.Json.parse (read_file path) with
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: malformed snapshot: %s\n" path msg;
      exit 2

let noise_floor best = if best >= 0.05 then 0.05 else Float.max 0.01 best

let experiments j =
  match
    Option.bind (Monitor.Json.member "experiments" j) Monitor.Json.to_list
  with
  | Some l ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Monitor.Json.member "id" e) Monitor.Json.to_str,
              Option.bind (Monitor.Json.member "wall_s" e) Monitor.Json.to_float
            )
          with
          | Some id, Some wall -> Some (id, wall)
          | _ -> None)
        l
  | None ->
      prerr_endline "snapshot has no \"experiments\" array";
      exit 2

let () =
  let threshold = ref 1.5 in
  let gate = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--gate" :: rest ->
        gate := true;
        parse_args rest
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 1.0 -> threshold := f
        | _ ->
            prerr_endline "--threshold expects a float > 1.0";
            exit 2);
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if List.length files < 2 then begin
    prerr_endline "usage: trend [--gate] [--threshold R] OLDEST.json ... NEWEST.json";
    exit 2
  end;
  let snaps = List.map (fun f -> (Filename.basename f, parse f)) files in
  let mixed =
    let quicks =
      List.filter_map
        (fun (_, j) ->
          Option.bind (Monitor.Json.member "quick" j) Monitor.Json.to_bool)
        snaps
    in
    List.exists (fun q -> q <> List.hd quicks) quicks
  in
  if mixed then
    prerr_endline
      "warning: series mixes quick and full runs — ratios are not meaningful";
  let series = List.map (fun (name, j) -> (name, experiments j)) snaps in
  let newest_name, newest = List.nth series (List.length series - 1) in
  let history = List.filteri (fun i _ -> i < List.length series - 1) series in
  (* Union of ids, in first-seen order. *)
  let ids =
    List.fold_left
      (fun acc (_, exps) ->
        List.fold_left
          (fun acc (id, _) -> if List.mem id acc then acc else acc @ [ id ])
          acc exps)
      [] series
  in
  Printf.printf "Trajectory over %d snapshot(s); gate: newest (%s) vs best-so-far\n\n"
    (List.length series) newest_name;
  Printf.printf "%-12s" "experiment";
  List.iter (fun (name, _) -> Printf.printf " %14s" name) series;
  Printf.printf " %10s\n" "vs best";
  let regressions = ref 0 in
  List.iter
    (fun id ->
      Printf.printf "%-12s" id;
      List.iter
        (fun (_, exps) ->
          match List.assoc_opt id exps with
          | Some w -> Printf.printf " %13.3fs" w
          | None -> Printf.printf " %14s" "-")
        series;
      let best =
        List.fold_left
          (fun acc (_, exps) ->
            match List.assoc_opt id exps with
            | Some w -> ( match acc with None -> Some w | Some b -> Some (Float.min b w))
            | None -> acc)
          None history
      in
      (match (best, List.assoc_opt id newest) with
      | Some best, Some now ->
          let ratio = if best > 1e-9 then now /. best else Float.infinity in
          let slow = ratio > !threshold && now -. best > noise_floor best in
          if slow then incr regressions;
          Printf.printf " %8.2fx%s" ratio (if slow then " << REGRESSION" else "")
      | None, Some _ -> Printf.printf " %10s" "new"
      | _, None -> Printf.printf " %10s" "gone");
      print_newline ())
    ids;
  if !regressions > 0 then begin
    Printf.printf
      "\n%d experiment(s) beyond %.2fx of their best-so-far.\n"
      !regressions !threshold;
    if !gate then exit 1
    else print_endline "(warn-only: run with --gate to fail)"
  end
  else Printf.printf "\nNo experiment beyond %.2fx of its best-so-far.\n" !threshold
