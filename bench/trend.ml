(* Per-experiment performance trajectory over a series of --emit-bench
   snapshots, gated against best-so-far.

     dune exec bench/trend.exe -- BENCH_seed.json BENCH_pr4.json BENCH_pr.json
     dune exec bench/trend.exe -- --gate --threshold 1.5 BENCH_*.json NEW.json

   Files are taken in the order given (oldest first, newest last). For
   every experiment the full wall-time trajectory is printed, then the
   newest snapshot is compared against the *best* (minimum) wall time
   any earlier snapshot achieved — a creeping regression that stays
   under a pairwise threshold between adjacent PRs still trips the gate
   once it drifts past threshold x best-so-far. The same noise floor as
   compare.exe applies (50 ms absolute, relative below that), so fast
   experiments gate on real doublings, not jitter. The analysis itself
   lives in [Trend_core] (unit-tested); this file is IO and rendering.

   Exit 0 unless --gate is given and a regression is found (exit 1);
   exit 2 on unreadable snapshots or fewer than two files. *)

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> prerr_endline e; exit 2 in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match Monitor.Json.parse (read_file path) with
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: malformed snapshot: %s\n" path msg;
      exit 2

let () =
  let threshold = ref 1.5 in
  let gate = ref false in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--gate" :: rest ->
        gate := true;
        parse_args rest
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 1.0 -> threshold := f
        | _ ->
            prerr_endline "--threshold expects a float > 1.0";
            exit 2);
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if List.length files < 2 then begin
    prerr_endline "usage: trend [--gate] [--threshold R] OLDEST.json ... NEWEST.json";
    exit 2
  end;
  let snaps = List.map (fun f -> (Filename.basename f, parse f)) files in
  if
    Trend_core.mixed_quick
      (List.map
         (fun (_, j) ->
           Option.bind (Monitor.Json.member "quick" j) Monitor.Json.to_bool)
         snaps)
  then
    prerr_endline
      "warning: series mixes quick and full runs — ratios are not meaningful";
  let series =
    List.map
      (fun (name, j) ->
        match Trend_core.experiments j with
        | Ok exps -> exps
        | Error msg ->
            Printf.eprintf "%s: %s\n" name msg;
            exit 2)
      snaps
  in
  let newest_name = fst (List.nth snaps (List.length snaps - 1)) in
  let rows = Trend_core.analyze ~threshold:!threshold series in
  Printf.printf "Trajectory over %d snapshot(s); gate: newest (%s) vs best-so-far\n\n"
    (List.length series) newest_name;
  Printf.printf "%-12s" "experiment";
  List.iter (fun (name, _) -> Printf.printf " %14s" name) snaps;
  Printf.printf " %10s\n" "vs best";
  List.iter
    (fun (r : Trend_core.row) ->
      Printf.printf "%-12s" r.id;
      List.iter
        (function
          | Some w -> Printf.printf " %13.3fs" w
          | None -> Printf.printf " %14s" "-")
        r.points;
      (match r.verdict with
      | Trend_core.Vs_best { ratio; regression; _ } ->
          Printf.printf " %8.2fx%s" ratio
            (if regression then " << REGRESSION" else "")
      | Trend_core.New _ -> Printf.printf " %10s" "new"
      | Trend_core.Gone -> Printf.printf " %10s" "gone");
      print_newline ())
    rows;
  let regressions = List.length (Trend_core.regressions rows) in
  if regressions > 0 then begin
    Printf.printf
      "\n%d experiment(s) beyond %.2fx of their best-so-far.\n"
      regressions !threshold;
    if !gate then exit 1
    else print_endline "(warn-only: run with --gate to fail)"
  end
  else Printf.printf "\nNo experiment beyond %.2fx of its best-so-far.\n" !threshold
