(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4), plus Bechamel micro-benchmarks of the hot
   paths.

   Usage:
     dune exec bench/main.exe              # everything, full ranges
     dune exec bench/main.exe -- --quick   # everything, reduced ranges
     dune exec bench/main.exe -- fig6a table1 ...   # a subset
     dune exec bench/main.exe -- --csv-dir out fig6a  # also write CSVs
     dune exec bench/main.exe -- --telemetry-dir out fig6a  # + telemetry export
     dune exec bench/main.exe -- --timeseries ts.jsonl fig6a  # simulated-time
       metric series (one JSONL row per simulated second, see lib/trace)
     dune exec bench/main.exe -- --emit-bench BENCH_rev.json  # perf snapshot
       (diff two snapshots with: dune exec bench/compare.exe -- OLD NEW;
        gate a series with: dune exec bench/trend.exe -- --gate OLD... NEW)
     dune exec bench/main.exe -- --profile --emit-bench BENCH_rev.json
       # + per-subsystem engine cost breakdowns in the snapshot

     dune exec bench/main.exe -- --jobs 4 campaign  # multi-seed chaos
       campaign across 4 OCaml domains: checks --jobs 1 / --jobs N output
       equality and reports per-domain throughput + true speedup in the
       snapshot's "parallel" section

   Experiment ids: fig5a fig5b fig6a fig6b fig6c fig6d table1 fig7a fig7b
   table2 micro campaign fleet (campaign and fleet are opt-in: they are
   excluded from the default set so seed-vs-PR comparisons keep their
   experiment list; fleet sweeps the stock correlated campaign across
   controller placements).
   Simulated measurements are deterministic (fixed seeds); only `micro`
   and the campaign wall times measure host wall-clock. *)

let quick = ref false
let telemetry_dir = ref None
let emit_bench = ref None
let profile = ref false
let timeseries = ref None
let jobs = ref 1

(* Experiments that never touch the engine: pure analytic / workload-model
   code. Schema v2 marks them [non_sim] so the throughput fields are
   omitted instead of reported as a misleading zero. *)
let non_sim_ids = [ "fig7a"; "fig7b"; "table2" ]

(* Per-experiment measurements for the --emit-bench snapshot. *)
type bench_row = {
  br_id : string;
  br_wall : float;
  br_events : int;
  br_alloc_bytes : float;
  br_minor_gcs : int;
  br_major_gcs : int;
  br_subsystems : (string * int * float * float) list;
      (* (label, events, wall_s, alloc_bytes), only under --profile *)
}

let bench_rows : bench_row list ref = ref []

(* Filled by the [campaign] experiment: the jobs-equivalence result and
   the domain-pool accounting that lands in the snapshot's "parallel"
   section. *)
type par_report = {
  pr_runs : int;
  pr_seed : int;
  pr_elapsed_seq : float; (* --jobs 1 campaign wall time *)
  pr_elapsed_par : float; (* --jobs N campaign wall time *)
  pr_identical : bool; (* summaries + per-run digests byte-identical *)
  pr_stats : Par.Pool.stats; (* the --jobs N pool accounting *)
}

let par_report : par_report option ref = ref None

(* Snapshot schema v2. v1 carried only wall_s/sim_events/sim_events_per_s;
   v2 adds allocation + GC accounting, the non_sim marker (throughput
   fields omitted for those experiments), and optional per-subsystem
   breakdowns. compare.exe accepts both. *)
let write_bench_snapshot file ~total_wall =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\"schema_version\":2,\"quick\":%b,\"experiments\":["
    !quick;
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      let non_sim = List.mem r.br_id non_sim_ids in
      Printf.bprintf buf "{\"id\":\"%s\",\"wall_s\":%.6f,\"non_sim\":%b"
        (Telemetry.Event.json_escape r.br_id)
        r.br_wall non_sim;
      if not non_sim then
        Printf.bprintf buf
          ",\"sim_events\":%d,\"sim_events_per_s\":%.1f,\"allocs_per_event\":%.1f"
          r.br_events
          (if r.br_wall > 1e-9 then float_of_int r.br_events /. r.br_wall
           else 0.0)
          (if r.br_events > 0 then
             r.br_alloc_bytes /. float_of_int r.br_events
           else 0.0);
      Printf.bprintf buf
        ",\"alloc_bytes\":%.0f,\"minor_gcs\":%d,\"major_gcs\":%d"
        r.br_alloc_bytes r.br_minor_gcs r.br_major_gcs;
      (match r.br_subsystems with
      | [] -> ()
      | subs ->
          Printf.bprintf buf ",\"subsystems\":[%s]"
            (String.concat ","
               (List.map
                  (fun (l, ev, w, a) ->
                    Printf.sprintf
                      "{\"label\":\"%s\",\"events\":%d,\"wall_s\":%.6f,\"alloc_bytes\":%.0f}"
                      (Telemetry.Event.json_escape l) ev w a)
                  subs)));
      Buffer.add_char buf '}')
    (List.rev !bench_rows);
  Buffer.add_char buf ']';
  (* Optional v2 extension, present when the [campaign] experiment ran:
     jobs-equivalence verdict, true speedup (sequential wall / parallel
     wall of the same workload) and per-domain throughput. *)
  (match !par_report with
  | None -> ()
  | Some p ->
      let st = p.pr_stats in
      Printf.bprintf buf
        ",\"parallel\":{\"runs\":%d,\"seed\":%d,\"jobs\":%d,\"elapsed_seq_s\":%.3f,\"elapsed_par_s\":%.3f,\"speedup\":%.2f,\"pool_occupancy\":%.2f,\"digests_identical\":%b,\"domains\":[%s]}"
        p.pr_runs p.pr_seed st.Par.Pool.jobs p.pr_elapsed_seq p.pr_elapsed_par
        (if p.pr_elapsed_par > 1e-9 then p.pr_elapsed_seq /. p.pr_elapsed_par
         else 0.0)
        (Par.Pool.speedup st) p.pr_identical
        (String.concat ","
           (List.map
              (fun (d : Par.Pool.domain_stat) ->
                Printf.sprintf
                  "{\"domain\":%d,\"tasks\":%d,\"busy_s\":%.3f,\"sim_events\":%d,\"events_per_s\":%.0f}"
                  d.domain_index d.tasks d.busy_s d.sim_events
                  (if d.busy_s > 1e-9 then
                     float_of_int d.sim_events /. d.busy_s
                   else 0.0))
              st.Par.Pool.domains)));
  Printf.bprintf buf ",\"total_wall_s\":%.3f,\"metrics\":%s}" total_wall
    (Telemetry.Registry.to_json ());
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  output_char oc '\n';
  close_out oc

let fig5a () =
  let results =
    if !quick then
      Tensor.Exp_fig5a.run ~packet_sizes:[ 100; 500; 2000 ]
        ~delays_ms:[ 0.; 2.; 5.; 20.; 50. ]
        ~measure_span:(Sim.Time.ms 200) ()
    else Tensor.Exp_fig5a.run ()
  in
  Tensor.Exp_fig5a.print results

let fig5b () =
  let counts = if !quick then [ 1; 10; 70; 1_000; 10_000 ] else
      [ 1; 10; 70; 100; 500; 1_000; 5_000; 10_000 ] in
  Tensor.Exp_fig5b.print (Tensor.Exp_fig5b.run ~counts ())

let fig6a () =
  let counts =
    if !quick then [ 100; 10_000; 100_000 ]
    else [ 100; 1_000; 10_000; 100_000; 500_000 ]
  in
  Tensor.Exp_fig6.print_receive (Tensor.Exp_fig6.run_receive ~counts ())

let fig6b () =
  let counts =
    if !quick then [ 100; 10_000; 100_000 ]
    else [ 100; 1_000; 10_000; 100_000; 500_000 ]
  in
  Tensor.Exp_fig6.print_send (Tensor.Exp_fig6.run_send ~counts ())

let fig6c () =
  let peer_counts =
    if !quick then [ 50; 200; 700 ] else [ 50; 100; 200; 300; 400; 500; 600; 700 ]
  in
  Tensor.Exp_fig6.print_multi_peer
    (Tensor.Exp_fig6.run_multi_peer ~peer_counts ())

let fig6d () =
  Tensor.Exp_fig6.print_scale (Tensor.Exp_fig6.run_scale ())

let table1 () = Tensor.Exp_table1.print (Tensor.Exp_table1.run ())

let multias () =
  let ases = if !quick then 10 else 50 in
  Tensor.Exp_parallel.print (Tensor.Exp_parallel.run ~ases ())

let scale () =
  let r =
    if !quick then Tensor.Exp_scale.run ~hosts:5 ~services:20 ()
    else
      Tensor.Exp_scale.run ~hosts:40 ~services:400 ~routes_per_service:100 ()
  in
  Tensor.Exp_scale.print r

let ablations () =
  Tensor.Exp_ablations.print_preheat (Tensor.Exp_ablations.run_preheat ());
  Tensor.Exp_ablations.print_replication_modes
    (Tensor.Exp_ablations.run_replication_modes ());
  Tensor.Exp_ablations.print_hook_overhead
    (Tensor.Exp_ablations.run_hook_overhead ())
let fig7a () = Tensor.Exp_fig7.print_cdf (Tensor.Exp_fig7.run_cdf ())
let fig7b () = Tensor.Exp_fig7.print_timeline (Tensor.Exp_fig7.run_timeline ())
let table2 () = Tensor.Exp_table2.print ()

(* --- Parallel chaos campaign ------------------------------------------------ *)

(* The multi-seed experiment behind `--jobs N`: one fixed-seed campaign
   executed twice — sequentially, then across the domain pool — with
   every per-run digest and the campaign summary compared. Equality is
   the whole point (domain count must never affect any digest), so a
   mismatch fails the harness; the wall-time ratio is the true speedup
   recorded in the snapshot. *)
let campaign () =
  let runs = if !quick then 60 else 200 in
  let seed = 42 in
  let jobs = max 1 !jobs in
  Tensor.Report.section
    (Printf.sprintf "Parallel chaos campaign (%d runs, seed %d, --jobs %d)"
       runs seed jobs);
  let run_once ~jobs =
    let digests = Array.make runs "" in
    let t0 = Prof.Clock.now_s () in
    let c =
      Chaos.Fuzz.run
        ~progress:(fun i o -> digests.(i) <- o.Chaos.Runner.digest)
        ~jobs ~runs ~seed ()
    in
    (c, digests, Prof.Clock.now_s () -. t0)
  in
  let c1, d1, t1 = run_once ~jobs:1 in
  let cn, dn, tn = run_once ~jobs in
  let summary (c : Chaos.Fuzz.campaign) =
    ( c.runs,
      c.events_total,
      List.map (fun (f : Chaos.Fuzz.failure) -> f.index) c.failures )
  in
  let identical = summary c1 = summary cn && d1 = dn in
  par_report :=
    Some
      {
        pr_runs = runs;
        pr_seed = seed;
        pr_elapsed_seq = t1;
        pr_elapsed_par = tn;
        pr_identical = identical;
        pr_stats = cn.Chaos.Fuzz.pool;
      };
  Tensor.Report.kv "runs" "%d (campaign seed %d)" runs seed;
  Tensor.Report.kv "failures" "%d" (List.length cn.Chaos.Fuzz.failures);
  Tensor.Report.kv "events checked" "%d" cn.Chaos.Fuzz.events_total;
  Tensor.Report.kv "--jobs 1 wall" "%.2f s" t1;
  Tensor.Report.kv (Printf.sprintf "--jobs %d wall" jobs) "%.2f s" tn;
  Tensor.Report.kv "speedup" "%.2fx (occupancy %.2fx)"
    (if tn > 1e-9 then t1 /. tn else 0.0)
    (Par.Pool.speedup cn.Chaos.Fuzz.pool);
  Tensor.Report.kv "digests identical" "%s (all %d runs)"
    (if identical then "yes" else "NO")
    runs;
  Tensor.Report.table
    ~header:[ "domain"; "runs"; "busy s"; "sim events"; "events/s" ]
    (List.map
       (fun (d : Par.Pool.domain_stat) ->
         [
           string_of_int d.domain_index;
           string_of_int d.tasks;
           Printf.sprintf "%.2f" d.busy_s;
           string_of_int d.sim_events;
           Printf.sprintf "%.0f"
             (if d.busy_s > 1e-9 then float_of_int d.sim_events /. d.busy_s
              else 0.0);
         ])
       cn.Chaos.Fuzz.pool.Par.Pool.domains);
  if not identical then
    failwith
      "campaign: --jobs 1 and --jobs N diverged (summary or per-run digests)"

(* --- Fleet centralization sweep --------------------------------------------- *)

(* Opt-in like [campaign]: the stock correlated fleet campaign (one host
   kill + one regional store outage) swept across controller placements —
   per-host, regional, global — to measure what centralizing the control
   plane costs in failover latency. Every variant must pass all ten
   checkers; a violation fails the harness, since the sweep's numbers
   are meaningless over a broken run. *)
let fleet () =
  let instances = if !quick then 20 else 100 in
  let regions = if !quick then 2 else 4 in
  let hosts = if !quick then 8 else 16 in
  let faults =
    match Chaos.Descriptor.faults_of_string Fleet.Campaign.default_campaign with
    | Ok fs -> fs
    | Error e -> failwith ("fleet: bad stock campaign: " ^ e)
  in
  Tensor.Report.section
    (Printf.sprintf
       "Fleet centralization sweep (%d instances, %d regions, %s)" instances
       regions Fleet.Campaign.default_campaign);
  let variants = [ ("per-host", 50); ("regional", 500); ("global", 5_000) ] in
  let rows =
    List.map
      (fun (vname, ctrl_delay_us) ->
        let spec =
          {
            Fleet.Campaign.default_spec with
            Fleet.Campaign.hosts;
            regions;
            instances;
            faults;
            ctrl_delay_us;
          }
        in
        let t0 = Prof.Clock.now_s () in
        let o = Fleet.Campaign.run spec in
        let wall = Prof.Clock.now_s () -. t0 in
        if not (Fleet.Campaign.ok o) then
          failwith
            (Printf.sprintf "fleet: %s variant failed:\n%s" vname
               (Fleet.Campaign.summary o));
        let r = o.Fleet.Campaign.slo in
        [
          vname;
          Printf.sprintf "%d" ctrl_delay_us;
          Printf.sprintf "%.2f" o.Fleet.Campaign.convergence_s;
          Printf.sprintf "%.3f"
            (Fleet.Slo.percentile r.Fleet.Slo.failover_s 0.95);
          Printf.sprintf "%.3f"
            (Fleet.Slo.percentile r.Fleet.Slo.failover_s 1.0);
          Printf.sprintf "%d" o.Fleet.Campaign.events;
          Printf.sprintf "%.2f" wall;
        ])
      variants
  in
  Tensor.Report.table
    ~header:
      [
        "controller";
        "uplink us";
        "converge s";
        "failover p95 s";
        "failover max s";
        "events";
        "wall s";
      ]
    rows

(* --- Bechamel micro-benchmarks of hot paths -------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  Tensor.Report.section "Micro-benchmarks (host wall-clock, Bechamel)";
  let update =
    Bgp.Msg.Update
      {
        withdrawn = [];
        attrs =
          Some
            (Bgp.Attrs.make
               ~as_path:[ Bgp.Attrs.Seq [ 64900; 65010; 7018 ] ]
               ~med:10
               ~next_hop:(Netsim.Addr.of_string "10.0.0.1")
               ());
        nlri =
          List.init 100 (fun i ->
              Netsim.Addr.prefix (Netsim.Addr.of_octets 100 0 i 0) 24);
      }
  in
  let encoded = Bgp.Msg.encode update in
  let rib = Bgp.Rib.create () in
  let source =
    {
      Bgp.Rib.key = "bench";
      peer_asn = 65010;
      peer_addr = Netsim.Addr.of_string "10.0.0.2";
      router_id = Netsim.Addr.of_string "9.9.9.9";
      ebgp = true;
    }
  in
  let attrs = Bgp.Attrs.make ~next_hop:(Netsim.Addr.of_string "10.0.0.2") () in
  let counter = ref 0 in
  let tests =
    [
      Test.make ~name:"bgp_update_encode_100nlri"
        (Staged.stage (fun () -> ignore (Bgp.Msg.encode update)));
      Test.make ~name:"bgp_update_decode_100nlri"
        (Staged.stage (fun () -> ignore (Bgp.Msg.decode encoded)));
      Test.make ~name:"rib_update_insert"
        (Staged.stage (fun () ->
             incr counter;
             let p =
               Netsim.Addr.prefix
                 (Netsim.Addr.of_int ((!counter * 2557) land 0xFFFFFF00))
                 24
             in
             ignore (Bgp.Rib.update rib source p (Some attrs))));
      Test.make ~name:"event_heap_schedule_cancel"
        (let eng = Sim.Engine.create () in
         Staged.stage (fun () ->
             let h = Sim.Engine.schedule_after eng 1_000_000 (fun () -> ()) in
             Sim.Engine.cancel h));
      Test.make ~name:"sim_tcp_1000seg_transfer"
        (Staged.stage (fun () ->
             let eng = Sim.Engine.create () in
             let net = Netsim.Network.create eng in
             let a = Netsim.Network.add_node net "a" in
             let b = Netsim.Network.add_node net "b" in
             let _, _, dst = Netsim.Network.connect net a b in
             let sa = Tcp.create_stack a and sb = Tcp.create_stack b in
             Tcp.listen sb ~port:80 (fun c -> Tcp.on_data c (fun _ -> ()));
             let c = Tcp.connect sa ~dst ~dst_port:80 () in
             Tcp.on_established c (fun () ->
                 Tcp.write c (String.make 1_460_000 'x'));
             Sim.Engine.run_for eng (Sim.Time.sec 30)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let stats = Analyze.all ols instance results in
        Sim.Det.fold_sorted ~compare:String.compare
          (fun name ols acc ->
            let ns =
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.sprintf "%.0f ns" est
              | _ -> "-"
            in
            [ name; ns ] :: acc)
          stats [])
      tests
    |> List.concat
    |> List.sort compare
  in
  Tensor.Report.table ~header:[ "operation"; "time/run" ] rows

(* --- Dispatch ----------------------------------------------------------------- *)

let all_ids =
  [
    ("fig5a", fig5a);
    ("fig5b", fig5b);
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("fig6c", fig6c);
    ("fig6d", fig6d);
    ("table1", table1);
    ("multias", multias);
    ("scale", scale);
    ("ablations", ablations);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("table2", table2);
    ("micro", micro);
  ]

(* Opt-in experiments: runnable by id but excluded from the default
   set, so seed-vs-PR snapshot comparisons keep a stable experiment
   list (and the default bench run stays single-domain). *)
let optin_ids = [ ("campaign", campaign); ("fleet", fleet) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_flags acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        strip_flags acc rest
    | "--csv-dir" :: dir :: rest ->
        Tensor.Report.set_csv_dir (Some dir);
        strip_flags acc rest
    | "--telemetry-dir" :: dir :: rest ->
        telemetry_dir := Some dir;
        Telemetry.Control.set_enabled true;
        strip_flags acc rest
    | "--emit-bench" :: file :: rest ->
        emit_bench := Some file;
        strip_flags acc rest
    | "--timeseries" :: file :: rest ->
        timeseries := Some file;
        (* The sampler is a bus subscriber: it only observes while
           telemetry is enabled, so enable it like --telemetry-dir. *)
        Telemetry.Control.set_enabled true;
        strip_flags acc rest
    | "--profile" :: rest ->
        profile := true;
        strip_flags acc rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 2);
        strip_flags acc rest
    | a :: rest -> strip_flags (a :: acc) rest
  in
  let args = strip_flags [] args in
  let selected =
    match args with
    | [] -> all_ids
    | ids ->
        List.map
          (fun id ->
            match
              List.assoc_opt id (all_ids @ optin_ids)
            with
            | Some f -> (id, f)
            | None ->
                Printf.eprintf "unknown experiment %S; known: %s\n" id
                  (String.concat " "
                     (List.map fst (all_ids @ optin_ids)));
                exit 2)
          ids
  in
  Format.printf
    "TENSOR reproduction — benchmark harness (%s mode)@."
    (if !quick then "quick" else "full");
  let t0 = Prof.Clock.now_s () in
  let sampler = Option.map (fun _ -> Causal.Series.attach ()) !timeseries in
  List.iter
    (fun (id, f) ->
      if !profile then Prof.Profiler.attach ();
      let t = Prof.Clock.now_s () in
      let e0 = Sim.Engine.global_processed_events () in
      let a0 = Gc.allocated_bytes () in
      let g0 = Gc.quick_stat () in
      f ();
      let wall = Prof.Clock.now_s () -. t in
      let g1 = Gc.quick_stat () in
      let subsystems =
        if !profile then begin
          let rows =
            List.map
              (fun (st : Prof.Profiler.stat) ->
                (st.label, st.events, st.wall_s, st.alloc_bytes))
              (Prof.Profiler.top ~by:Prof.Profiler.By_wall 8)
          in
          Prof.Profiler.detach ();
          rows
        end
        else []
      in
      bench_rows :=
        {
          br_id = id;
          br_wall = wall;
          br_events = Sim.Engine.global_processed_events () - e0;
          br_alloc_bytes = Gc.allocated_bytes () -. a0;
          br_minor_gcs = g1.Gc.minor_collections - g0.Gc.minor_collections;
          br_major_gcs = g1.Gc.major_collections - g0.Gc.major_collections;
          br_subsystems = subsystems;
        }
        :: !bench_rows;
      Format.printf "@.[%s done in %.1fs wall]@." id wall)
    selected;
  let total_wall = Prof.Clock.now_s () -. t0 in
  Format.printf "@.All selected experiments done in %.1fs wall.@." total_wall;
  (match (sampler, !timeseries) with
  | Some s, Some file ->
      Causal.Series.detach s;
      Causal.Series.write s file;
      Format.printf "Metric series written to %s (%d samples, %d quiet windows skipped)@."
        file (Causal.Series.sample_count s) (Causal.Series.skipped_windows s)
  | _ -> ());
  (match !emit_bench with
  | Some file ->
      write_bench_snapshot file ~total_wall;
      Format.printf "Bench snapshot written to %s@." file
  | None -> ());
  match !telemetry_dir with
  | Some dir ->
      Telemetry.Control.export_dir dir;
      Format.printf "Telemetry written to %s/@." dir
  | None -> ()
