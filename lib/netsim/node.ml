open Sim

type iface = {
  link : Link.t;
  side : Link.side;
  local : Addr.t;
  remote : Addr.t;
}

type t = {
  nname : string;
  eng : Engine.t;
  mutable addrs : Addr.t list;
  mutable handlers : (Packet.t -> bool) list;
  mutable ifs : iface list;
  mutable routes : (Addr.prefix * Addr.t) list;
  mutable up : bool;
  forwarding : bool;
  mutable unrouted : int;
  mutable unclaimed : int;
}

let create eng ?(forwarding = false) nname =
  {
    nname;
    eng;
    addrs = [];
    handlers = [];
    ifs = [];
    routes = [];
    up = true;
    forwarding;
    unrouted = 0;
    unclaimed = 0;
  }

let name t = t.nname
let engine t = t.eng
let add_address t a = if not (List.mem a t.addrs) then t.addrs <- a :: t.addrs

let remove_address t a =
  t.addrs <- List.filter (fun x -> not (Addr.equal x a)) t.addrs
let addresses t = t.addrs
let ifaces t = t.ifs
(* Hand-rolled and top-level: [List.exists (Addr.equal a)] builds a
   closure per call, and this runs once per packet on both the emit and
   rx paths (h1 hot-path allocation budget). *)
let rec addr_mem a = function
  | [] -> false
  | x :: rest -> Addr.equal a x || addr_mem a rest

let has_address t a = addr_mem a t.addrs

let add_route t prefix gateway =
  (* Keep routes sorted by decreasing length: lookup is then first-match. *)
  t.routes <-
    List.sort
      (fun (p, _) (q, _) -> Int.compare q.Addr.len p.Addr.len)
      ((prefix, gateway) :: t.routes)

let add_handler t f = t.handlers <- t.handlers @ [ f ]

let rec offer t pkt = function
  | [] -> t.unclaimed <- t.unclaimed + 1
  | h :: rest -> if not (h pkt) then offer t pkt rest

let deliver_local t pkt = offer t pkt t.handlers

(* Same closure-free treatment as [addr_mem]: these three lookups ran
   one [find_opt] closure each per forwarded packet. *)
let rec iface_to a = function
  | [] -> None
  | i :: rest -> if Addr.equal i.remote a then Some i else iface_to a rest

let rec route_gw dst = function
  | [] -> None
  | (p, gw) :: rest ->
      if Addr.contains p dst then Some gw else route_gw dst rest

let iface_for t dst =
  match iface_to dst t.ifs with
  | Some _ as found -> found
  | None -> (
      (* Longest prefix first thanks to the sorted insert. *)
      match route_gw dst t.routes with
      | None -> None
      | Some gw -> iface_to gw t.ifs)

let rec emit t pkt =
  if not t.up then ()
  else if has_address t pkt.Packet.dst then
    (* Loopback: deliver via a fresh event so senders never observe
       reentrant receive callbacks. *)
    ignore (Engine.schedule_after t.eng ~label:"net.loopback" 0 (fun () -> rx t pkt))
  else
    match iface_for t pkt.Packet.dst with
    | None -> t.unrouted <- t.unrouted + 1
    | Some i -> Link.transmit i.link ~from:i.side pkt

and rx t pkt =
  if not t.up then ()
  else if has_address t pkt.Packet.dst then deliver_local t pkt
  else if t.forwarding then
    match Packet.decrement_ttl pkt with
    | None -> ()
    | Some pkt -> emit t pkt
  else t.unrouted <- t.unrouted + 1

let send = emit

let attach t link side ~local ~remote =
  add_address t local;
  t.ifs <- { link; side; local; remote } :: t.ifs;
  Link.set_receiver link side (fun pkt -> rx t pkt)

let is_up t = t.up
let set_up t flag = t.up <- flag
let unrouted_packets t = t.unrouted
let unclaimed_packets t = t.unclaimed
