(** Topology builder and registry.

    Thin convenience layer over {!Node} and {!Link}: it names nodes,
    allocates point-to-point subnets (from 10.0.0.0/8) for links, and
    keeps a registry so experiments can look components up by name. *)

type t

val create : Sim.Engine.t -> t
val engine : t -> Sim.Engine.t

val add_node : t -> ?forwarding:bool -> string -> Node.t
(** Creates and registers a node. Raises [Invalid_argument] if the name
    is taken. *)

val node : t -> string -> Node.t
(** Looks a node up. Raises [Not_found]. *)

val nodes : t -> Node.t list

val connect :
  t ->
  ?delay:Sim.Time.span ->
  ?bandwidth_bps:int ->
  ?loss:float ->
  Node.t ->
  Node.t ->
  Link.t * Addr.t * Addr.t
(** [connect t a b] creates a link between [a] and [b], allocating a fresh
    /30-style address pair; returns the link and the two addresses
    ([a]'s first). Defaults match {!Link.create}. *)

val fresh_private_subnet : t -> int
(** Allocates the next index from a per-network counter for private
    (non-fabric) subnets — vEth pairs and similar. Keeping the counter
    per network, not process-global, makes addresses reproducible when
    several networks are built in one process (chaos replay). *)

val links : t -> Link.t list

val link_between : t -> Node.t -> Node.t -> Link.t option
(** The first link directly joining the two nodes, if any. *)
