open Sim

type body = ..
type body += Ping | Pong

type error = [ `Timeout | `Exhausted of int ]

type retry = {
  attempts : int;
  base_backoff : Time.span;
  max_backoff : Time.span;
  jitter : float;
}

let retry_policy ?(attempts = 3) ?(base_backoff = Time.ms 50)
    ?(max_backoff = Time.sec 2) ?(jitter = 0.2) () =
  if attempts < 1 then invalid_arg "Rpc.retry_policy: attempts must be >= 1";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Rpc.retry_policy: jitter must be in [0, 1)";
  { attempts; base_backoff; max_backoff; jitter }

type Packet.payload +=
  | Request of { call_id : int; service : string; body : body }
  | Response of { call_id : int; body : body }

type pending = {
  k : (body, error) result -> unit;
  timeout_handle : Engine.handle;
}

type endpoint = {
  ep_node : Node.t;
  services : (string, src:Addr.t -> body -> reply:(?size:int -> body -> unit) -> unit) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  unknown_hits : (string, int) Hashtbl.t;
  mutable next_client : int;
  (* Backoff-jitter stream, split from the engine RNG lazily at the
     first actual backoff computation: endpoints that never retry (the
     default) leave the engine's stream untouched, so existing replay
     digests are unaffected. *)
  mutable retry_rng : Rng.t option;
}

(* One endpoint per node, keyed physically: nodes are unique mutable
   records so physical identity is the right notion. Domain-local, like
   the nodes themselves: a simulation never spans domains, and call ids
   restart per domain so they stay replay-stable under --jobs N. *)
let registry_key : (string, endpoint) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key
let next_call_id = Domain.DLS.new_key (fun () -> ref 0)

let source_addr node =
  match Node.addresses node with
  | a :: _ -> a
  | [] -> invalid_arg "Rpc: node has no address"

let node ep = ep.ep_node

let handle_packet ep (pkt : Packet.t) =
  match pkt.payload with
  | Request { call_id; service; body } -> (
      (match Hashtbl.find_opt ep.services service with
      | None ->
          (* Unknown service: the caller still times out (no NAK on the
             wire), but the drop is now counted and visible. *)
          let count =
            1 + Option.value ~default:0 (Hashtbl.find_opt ep.unknown_hits service)
          in
          Hashtbl.replace ep.unknown_hits service count;
          Telemetry.Bus.emit (Node.engine ep.ep_node)
            (Telemetry.Event.Rpc_unknown_service
               { node = Node.name ep.ep_node; service; count })
      | Some handler ->
          let replied = ref false in
          let reply ?(size = 128) rbody =
            if not !replied then begin
              replied := true;
              let resp =
                Packet.make ~src:pkt.dst ~dst:pkt.src ~size
                  (Response { call_id; body = rbody })
              in
              Node.send ep.ep_node resp
            end
          in
          handler ~src:pkt.src body ~reply);
      true)
  | Response { call_id; body } -> (
      (match Hashtbl.find_opt ep.pending call_id with
      | None -> () (* late response after timeout: discarded *)
      | Some p ->
          Hashtbl.remove ep.pending call_id;
          Engine.cancel p.timeout_handle;
          p.k (Ok body));
      true)
  | _ -> false

let endpoint node =
  let key = Node.name node in
  match Hashtbl.find_opt (registry ()) key with
  | Some ep when ep.ep_node == node -> ep
  | Some _ | None ->
      let ep =
        {
          ep_node = node;
          services = Hashtbl.create 8;
          pending = Hashtbl.create 16;
          unknown_hits = Hashtbl.create 4;
          next_client = 0;
          retry_rng = None;
        }
      in
      Node.add_handler node (handle_packet ep);
      Hashtbl.replace (registry ()) key ep;
      ep

let fresh_client_id ep =
  ep.next_client <- ep.next_client + 1;
  ep.next_client

let serve ep ~service handler = Hashtbl.replace ep.services service handler
let unserve ep ~service = Hashtbl.remove ep.services service

let unknown_service_counts ep =
  Det.bindings ~compare:String.compare ep.unknown_hits

let retry_rng ep =
  match ep.retry_rng with
  | Some rng -> rng
  | None ->
      let rng = Rng.split (Engine.rng (Node.engine ep.ep_node)) in
      ep.retry_rng <- Some rng;
      rng

(* Backoff before attempt [failed + 1]: exponential in the number of
   failures, capped, then perturbed by ±jitter so synchronized callers
   spread out. The draw comes from the endpoint's split of the seeded
   engine RNG, never from ambient randomness. *)
let backoff_span ep (r : retry) ~failed =
  let base = Time.to_sec_f r.base_backoff in
  let capped =
    Float.min
      (base *. Float.of_int (1 lsl (failed - 1)))
      (Time.to_sec_f r.max_backoff)
  in
  let factor =
    if r.jitter <= 0. then 1.0
    else 1.0 +. (r.jitter *. ((2.0 *. Rng.float (retry_rng ep) 1.0) -. 1.0))
  in
  Time.of_sec_f (capped *. factor)

let send_attempt ep ~timeout ~size ~dst ~service body k =
  let next_call_id = Domain.DLS.get next_call_id in
  incr next_call_id;
  let call_id = !next_call_id in
  let eng = Node.engine ep.ep_node in
  let timeout_handle =
    Engine.schedule_after eng ~label:"rpc.timeout" timeout (fun () ->
        if Hashtbl.mem ep.pending call_id then begin
          Hashtbl.remove ep.pending call_id;
          k (Error `Timeout)
        end)
  in
  Hashtbl.replace ep.pending call_id { k; timeout_handle };
  let pkt =
    Packet.make ~src:(source_addr ep.ep_node) ~dst ~size
      (Request { call_id; service; body })
  in
  Node.send ep.ep_node pkt

let call ep ?(timeout = Time.sec 1) ?(size = 128) ?retry ~dst ~service body k =
  match retry with
  | None ->
      (* Default: single attempt, one timeout = one detected failure —
         exactly the pre-retry semantics liveness probes rely on. *)
      send_attempt ep ~timeout ~size ~dst ~service body k
  | Some r ->
      let eng = Node.engine ep.ep_node in
      let rec attempt n =
        send_attempt ep ~timeout ~size ~dst ~service body (function
          | Ok body -> k (Ok body)
          | Error _ when n < r.attempts ->
              let span = backoff_span ep r ~failed:n in
              ignore
                (Engine.schedule_after eng ~label:"rpc.retry" span (fun () ->
                     attempt (n + 1)))
          | Error _ -> k (Error (`Exhausted r.attempts)))
      in
      attempt 1

let ping ep ?timeout ~dst ~service k =
  call ep ?timeout ~dst ~service Ping (function
    | Ok _ -> k true
    | Error (`Timeout | `Exhausted _) -> k false)

let serve_ping ep ~service =
  serve ep ~service (fun ~src:_ body ~reply ->
      match body with Ping -> reply Pong | _ -> reply Pong)
