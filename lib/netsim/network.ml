open Sim

type registered_link = { link : Link.t; ends : Node.t * Node.t }

type t = {
  eng : Engine.t;
  node_tbl : (string, Node.t) Hashtbl.t;
  mutable node_list : Node.t list;
  mutable link_list : registered_link list;
  mutable next_subnet : int;
  mutable next_private_subnet : int;
}

let create eng =
  { eng; node_tbl = Hashtbl.create 64; node_list = []; link_list = [];
    next_subnet = 0; next_private_subnet = 0 }

let fresh_private_subnet t =
  let n = t.next_private_subnet in
  t.next_private_subnet <- n + 1;
  n

let engine t = t.eng

let add_node t ?forwarding name =
  if Hashtbl.mem t.node_tbl name then
    invalid_arg (Printf.sprintf "Network.add_node: duplicate name %S" name);
  let node = Node.create t.eng ?forwarding name in
  Hashtbl.replace t.node_tbl name node;
  t.node_list <- node :: t.node_list;
  node

let node t name = Hashtbl.find t.node_tbl name
let nodes t = List.rev t.node_list

let connect t ?delay ?bandwidth_bps ?loss a b =
  let subnet = t.next_subnet in
  t.next_subnet <- subnet + 1;
  (* 10.s.s.{1,2} with the subnet index spread over two octets: room for
     65536 point-to-point links. *)
  let hi = (subnet lsr 8) land 0xFF and lo = subnet land 0xFF in
  let addr_a = Addr.of_octets 10 hi lo 1 in
  let addr_b = Addr.of_octets 10 hi lo 2 in
  let name = Printf.sprintf "%s--%s.%d" (Node.name a) (Node.name b) subnet in
  let link = Link.create t.eng ?delay ?bandwidth_bps ?loss ~name () in
  Node.attach a link Link.A ~local:addr_a ~remote:addr_b;
  Node.attach b link Link.B ~local:addr_b ~remote:addr_a;
  t.link_list <- { link; ends = (a, b) } :: t.link_list;
  (link, addr_a, addr_b)

let links t = List.rev_map (fun r -> r.link) t.link_list

let link_between t a b =
  let same (x, y) =
    (x == a && y == b) || (x == b && y == a)
  in
  match List.find_opt (fun r -> same r.ends) t.link_list with
  | Some r -> Some r.link
  | None -> None
