type payload = ..
type payload += Raw of string

type t = {
  id : int;
  src : Addr.t;
  dst : Addr.t;
  size : int;
  ttl : int;
  payload : payload;
}

(* Packet ids are domain-local: ids only need to be unique within the
   simulation that minted them, and a per-domain stream keeps them
   replay-stable no matter what other domains are running. *)
let next_id = Domain.DLS.new_key (fun () -> ref 0)

let make ?(ttl = 64) ~src ~dst ~size payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  let next_id = Domain.DLS.get next_id in
  incr next_id;
  { id = !next_id; src; dst; size; ttl; payload }

let decrement_ttl p = if p.ttl <= 1 then None else Some { p with ttl = p.ttl - 1 }

let pp fmt p =
  Format.fprintf fmt "#%d %a->%a (%dB)" p.id Addr.pp p.src Addr.pp p.dst p.size
