(** Request/response messaging over the simulated network.

    Used for every control-plane channel in the reproduction: the
    Redis-like store protocol, the controller's gRPC-style health checks,
    and IP SLA probes. Bodies are an extensible variant so each service
    defines its own request and response constructors without [netsim]
    depending on them.

    Calls carry a timeout; the absence of a reply within it produces
    [Error `Timeout], which is exactly the failure signal the TENSOR
    controller's liveness probes consume. By default there is no
    retransmission: the control channels in the modelled deployment are
    engineered loss-free, and a lost or unanswerable request is precisely
    a detected failure. Callers that must survive a transiently dead or
    partitioned server (the store path) opt into a per-call {!retry}
    policy: a bounded attempt budget with exponential backoff whose
    jitter is drawn from a split of the seeded engine RNG, so replays
    stay deterministic. *)

type body = ..

type body += Ping | Pong
(** Built-in bodies for liveness probes (gRPC heartbeat, IP SLA). *)

type endpoint

type error =
  [ `Timeout  (** No reply within the (single) attempt's timeout. *)
  | `Exhausted of int
    (** Every attempt of a {!retry} policy timed out; carries the
        attempt count. Only produced when a policy was supplied. *) ]

type retry = private {
  attempts : int;  (** Total attempts including the first ([>= 1]). *)
  base_backoff : Sim.Time.span;  (** Backoff before the second attempt. *)
  max_backoff : Sim.Time.span;  (** Cap on the exponential growth. *)
  jitter : float;  (** Fractional perturbation in [\[0, 1)]. *)
}

val retry_policy :
  ?attempts:int ->
  ?base_backoff:Sim.Time.span ->
  ?max_backoff:Sim.Time.span ->
  ?jitter:float ->
  unit ->
  retry
(** Defaults: 3 attempts, 50 ms base backoff doubling per failure,
    capped at 2 s, ±20% jitter. *)

val endpoint : Node.t -> endpoint
(** The node's RPC endpoint, created on first use (idempotent per node). *)

val node : endpoint -> Node.t

val serve :
  endpoint ->
  service:string ->
  (src:Addr.t -> body -> reply:(?size:int -> body -> unit) -> unit) ->
  unit
(** [serve ep ~service handler] registers the handler for requests naming
    [service]. The handler may call [reply] immediately or from a later
    event (e.g. after a modelled processing delay); [size] is the response
    wire size (default 128 B). Re-registering replaces the handler. *)

val unserve : endpoint -> service:string -> unit

val call :
  endpoint ->
  ?timeout:Sim.Time.span ->
  ?size:int ->
  ?retry:retry ->
  dst:Addr.t ->
  service:string ->
  body ->
  ((body, error) result -> unit) ->
  unit
(** [call ep ~dst ~service body k] sends a request ([size] wire bytes,
    default 128) and invokes [k] exactly once: with the response, or with
    [Error `Timeout] after [timeout] (default 1 s). Responses arriving
    after the timeout are discarded.

    With [?retry], each attempt gets its own [timeout]; a timed-out
    attempt is retransmitted (as a fresh call id — handlers must be
    idempotent or deduplicate) after an exponential jittered backoff,
    and only when the budget is spent does [k] get
    [Error (`Exhausted attempts)]. A late response to an abandoned
    attempt is discarded, never double-delivered. *)

val unknown_service_counts : endpoint -> (string * int) list
(** Requests received for services nobody registered, counted per
    service name and sorted by it. Each such drop also emits a
    [Rpc_unknown_service] telemetry event. *)

val fresh_client_id : endpoint -> int
(** Monotonically increasing per-endpoint id (1, 2, ...) for callers
    that need a name unique on this node — e.g. store-client idempotency
    ids. Endpoint state is re-created with its node, so the stream
    restarts per run and replays stay byte-identical (a process-global
    counter would leak across runs). *)

val ping :
  endpoint ->
  ?timeout:Sim.Time.span ->
  dst:Addr.t ->
  service:string ->
  (bool -> unit) ->
  unit
(** Convenience probe: sends {!Ping}, yields [true] on any reply. The
    destination must serve [service] (conventionally ["health"] for gRPC
    heartbeats and ["ipsla"] for IP SLA probes). *)

val serve_ping : endpoint -> service:string -> unit
(** Installs a trivial responder answering {!Ping} with {!Pong}. *)
