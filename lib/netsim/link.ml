open Sim

type side = A | B

let other = function A -> B | B -> A

type endpoint = {
  mutable deliver : (Packet.t -> unit) option;
  mutable busy_until : Time.t; (* when this direction's transmitter frees *)
}

type t = {
  lname : string;
  eng : Engine.t;
  a : endpoint;
  b : endpoint;
  mutable prop_delay : Time.span;
  mutable bandwidth_bps : int;
  mutable loss : float;
  mutable up : bool;
  mutable epoch : int; (* bumped on failure: invalidates in-flight packets *)
  mutable taps : (side -> Packet.t -> unit) list;
  rng : Rng.t;
  mutable tx : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  (* Split flag + instant rather than [Time.t option]: the delivery
     event fires once per packet and a [Some] store there allocated on
     every delivery (h1 hot-path allocation budget). *)
  mutable has_delivered : bool;
  mutable last_delivery_at : Time.t;
}

(* Default-name counter, domain-local so two domains creating unnamed
   links concurrently don't race — and each domain numbers its links
   from 1 like a fresh process, keeping names replay-stable. *)
let link_count = Domain.DLS.new_key (fun () -> ref 0)

let create eng ?(delay = Time.us 50) ?(bandwidth_bps = 100_000_000_000)
    ?(loss = 0.0) ?name () =
  let link_count = Domain.DLS.get link_count in
  incr link_count;
  let lname =
    match name with Some n -> n | None -> Printf.sprintf "link%d" !link_count
  in
  {
    lname;
    eng;
    a = { deliver = None; busy_until = Time.zero };
    b = { deliver = None; busy_until = Time.zero };
    prop_delay = delay;
    bandwidth_bps;
    loss;
    up = true;
    epoch = 0;
    taps = [];
    rng = Rng.split (Engine.rng eng);
    tx = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    has_delivered = false;
    last_delivery_at = Time.zero;
  }

let name t = t.lname
let engine t = t.eng
let endpoint t = function A -> t.a | B -> t.b

let set_receiver t side f = (endpoint t side).deliver <- Some f

let serialization_delay t size =
  if t.bandwidth_bps <= 0 then 0
  else
    (* size bytes * 8 bits * 1e9 ns / bandwidth. Order the arithmetic to
       avoid overflow for realistic sizes (< 1 GB). *)
    size * 8 * 1_000_000_000 / t.bandwidth_bps

let transmit t ~from pkt =
  if (not t.up) || Rng.bernoulli t.rng t.loss then t.dropped <- t.dropped + 1
  else begin
    t.tx <- t.tx + 1;
    let sender = endpoint t from in
    let now = Engine.now t.eng in
    let start = max now sender.busy_until in
    let finish = Time.add start (serialization_delay t pkt.Packet.size) in
    sender.busy_until <- finish;
    let arrival = Time.add finish t.prop_delay in
    let epoch = t.epoch in
    let dst_side = other from in
    ignore
      (Engine.schedule_at t.eng ~label:"net.deliver" arrival (fun () ->
           if t.up && t.epoch = epoch then begin
             t.delivered <- t.delivered + 1;
             t.bytes <- t.bytes + pkt.Packet.size;
             t.has_delivered <- true;
             t.last_delivery_at <- Engine.now t.eng;
             (match (endpoint t dst_side).deliver with
             | Some f -> f pkt
             | None -> ());
             (* Taps are a debug feature and almost always absent; the
                empty-list guard keeps the per-delivery path from
                building an iteration closure for nobody. *)
             (match t.taps with
             | [] -> ()
             | taps -> List.iter (fun tap -> tap dst_side pkt) taps)
           end
           else t.dropped <- t.dropped + 1))
  end

let is_up t = t.up

let set_up t flag =
  if t.up && not flag then begin
    (* Going down invalidates everything in flight or queued. *)
    t.epoch <- t.epoch + 1;
    t.a.busy_until <- Engine.now t.eng;
    t.b.busy_until <- Engine.now t.eng
  end;
  t.up <- flag

let fail_for t span =
  set_up t false;
  ignore
    (Engine.schedule_after t.eng ~label:"net.link_heal" span (fun () ->
         set_up t true))

let set_delay t d = t.prop_delay <- d
let delay t = t.prop_delay
let set_loss t l = t.loss <- l
let tap t f = t.taps <- f :: t.taps
let tx_packets t = t.tx
let delivered_packets t = t.delivered
let dropped_packets t = t.dropped
let delivered_bytes t = t.bytes
let last_delivery t = if t.has_delivered then Some t.last_delivery_at else None
