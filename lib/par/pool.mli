(** A deterministic domain pool for embarrassingly parallel runs.

    [run n f] evaluates [f 0 .. f (n-1)] — each call self-contained and
    deterministic, like one chaos run — across OCaml 5 domains, and
    merges the results in index order. The contract that makes
    [--jobs N] safe everywhere it is surfaced:

    {ul
    {- {b Results are in index order}, never completion order: the
       returned array is indistinguishable from the sequential one.}
    {- {b Progress is in index order}: the [progress] callback fires on
       the calling domain, for index 0, then 1, then 2 … as the
       contiguous prefix of completed tasks extends. Anything printed
       from it is byte-identical no matter how many domains ran or how
       they were scheduled.}
    {- {b Tasks never share mutable state}: every library the runs
       touch keeps its per-run state domain-local (enforced statically
       by the [d4] lint pass), so a task executes on a worker domain
       exactly as it would alone on a fresh process.}
    {- {b Exceptions hold the merge order}: if tasks failed, the
       exception of the lowest failed index is re-raised (with its
       backtrace) after all workers drain — the same exception a
       sequential loop would have surfaced first.}}

    With [jobs <= 1] (the default) no domain is spawned: [f] runs in
    the calling domain, so single-job behaviour is trivially identical
    to the pre-pool sequential code. *)

type domain_stat = {
  domain_index : int;  (** 0-based worker index *)
  tasks : int;  (** tasks this worker completed *)
  busy_s : float;  (** wall time spent inside [f] *)
  sim_events : int;  (** engine events executed on this domain *)
}

type stats = {
  jobs : int;  (** worker domains actually used (>= 1) *)
  elapsed_s : float;  (** wall time of the whole [run] call *)
  domains : domain_stat list;  (** per-worker accounting, by index *)
}

val speedup : stats -> float
(** [busy_total / elapsed]: pool occupancy. ~1.0 when sequential,
    approaches [jobs] under perfect scaling. Busy time is wall time
    spent inside tasks, so when domains outnumber cores preemption
    inflates it — for a true speedup, compare [elapsed_s] against a
    [jobs:1] run of the same workload (the bench campaign experiment
    does exactly that). *)

val run :
  ?jobs:int ->
  ?progress:(int -> 'a -> unit) ->
  int ->
  (int -> 'a) ->
  'a array * stats
(** [run ?jobs ?progress n f] evaluates [f i] for [0 <= i < n] on
    [min jobs n] worker domains (claiming indices dynamically, so a
    slow task never stalls the pool) and returns the results in index
    order. Raises [Invalid_argument] when [n < 0]. *)
