(* See pool.mli for the contract. The implementation keeps every bit of
   pool state local to [run] — the pool that exists to isolate
   domain-shared mutable state had better not introduce any (the d4
   lint pass checks this file like any other domain-shared library).

   Scheduling is dynamic self-claiming: workers race a shared atomic
   cursor for the next index, so a slow task (a chaos run that shrinks,
   a heavyweight seed) never stalls the others — the work-stealing
   behaviour the campaign needs, without per-worker deques, because
   tasks are claimed one index at a time from a single queue.

   Ordered delivery: completed slots are published under a mutex and
   the calling domain drains the *contiguous* prefix, firing [progress]
   for index i only once 0..i-1 have fired. Completion order never
   leaks, so anything the callback prints is byte-identical from
   [--jobs 1] to [--jobs N]. *)

type domain_stat = {
  domain_index : int;
  tasks : int;
  busy_s : float;
  sim_events : int;
}

type stats = {
  jobs : int;
  elapsed_s : float;
  domains : domain_stat list;
}

let speedup st =
  let busy = List.fold_left (fun acc d -> acc +. d.busy_s) 0.0 st.domains in
  if st.elapsed_s > 0.0 then busy /. st.elapsed_s else 1.0

type 'a slot =
  | Empty
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let run_sequential ?progress n f =
  let t0 = Prof.Clock.now_s () in
  let ev0 = Sim.Engine.global_processed_events () in
  let results =
    Array.init n (fun i ->
        let r = f i in
        (match progress with Some p -> p i r | None -> ());
        r)
  in
  let busy = Prof.Clock.now_s () -. t0 in
  let stat =
    {
      domain_index = 0;
      tasks = n;
      busy_s = busy;
      sim_events = Sim.Engine.global_processed_events () - ev0;
    }
  in
  (results, { jobs = 1; elapsed_s = busy; domains = [ stat ] })

let run_parallel ?progress ~jobs n f =
  let t_start = Prof.Clock.now_s () in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let m = Mutex.create () in
  let c = Condition.create () in
  (* All fields below are written under [m] only. *)
  let slots = Array.make n Empty in
  let active = ref jobs in
  let worker widx () =
    let ev0 = Sim.Engine.global_processed_events () in
    let tasks = ref 0 in
    let busy = ref 0.0 in
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let t0 = Prof.Clock.now_s () in
          let outcome =
            match f i with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ())
          in
          busy := !busy +. (Prof.Clock.now_s () -. t0);
          incr tasks;
          Mutex.lock m;
          slots.(i) <- outcome;
          (match outcome with
          | Failed _ -> Atomic.set stop true
          | Done _ | Empty -> ());
          Condition.broadcast c;
          Mutex.unlock m;
          loop ()
        end
      end
    in
    loop ();
    Mutex.lock m;
    decr active;
    Condition.broadcast c;
    Mutex.unlock m;
    {
      domain_index = widx;
      tasks = !tasks;
      busy_s = !busy;
      sim_events = Sim.Engine.global_processed_events () - ev0;
    }
  in
  let domains = Array.init jobs (fun w -> Domain.spawn (worker w)) in
  (* Drain the contiguous completed prefix on the calling domain,
     delivering [progress] strictly in index order. The callback runs
     with [m] released so a slow printer never blocks publication. *)
  let delivered = ref 0 in
  let deliver () =
    let continue = ref true in
    while !continue do
      if !delivered < n then
        match slots.(!delivered) with
        | Empty -> continue := false
        | Failed _ ->
            (* Errors stop ordered delivery: later progress lines must
               not print for a campaign that is about to re-raise. *)
            delivered := n;
            continue := false
        | Done v ->
            let i = !delivered in
            incr delivered;
            (match progress with
            | Some p ->
                Mutex.unlock m;
                p i v;
                Mutex.lock m
            | None -> ())
      else continue := false
    done
  in
  let joined = ref [||] in
  Fun.protect
    ~finally:(fun () ->
      (* Reached with a pending exception only if [progress] raised:
         stop the claim race, then join unconditionally so no domain
         outlives the call. *)
      Atomic.set stop true;
      joined := Array.map Domain.join domains)
    (fun () ->
      Mutex.lock m;
      deliver ();
      while !active > 0 do
        Condition.wait c m;
        deliver ()
      done;
      Mutex.unlock m);
  let per_domain = Array.to_list !joined in
  (* Re-raise the lowest-index failure — the exception the sequential
     loop would have hit first. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Empty -> ())
    slots;
  let results =
    Array.map
      (function
        | Done v -> v
        | Empty | Failed _ -> assert false (* no failure, all claimed *))
      slots
  in
  ( results,
    {
      jobs;
      elapsed_s = Prof.Clock.now_s () -. t_start;
      domains = per_domain;
    } )

let run ?(jobs = 1) ?progress n f =
  if n < 0 then invalid_arg "Pool.run: negative task count";
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then run_sequential ?progress n f
  else run_parallel ?progress ~jobs n f
