(** The discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Callbacks scheduled
    at future instants run in nondecreasing time order; events at the same
    instant run in scheduling order (FIFO), which makes runs fully
    deterministic. All simulated subsystems (links, TCP, BGP timers, the
    orchestrator) are driven by one engine.

    The engine is single-threaded by design: concurrency in the modelled
    system (threads of a BGP process, containers on many hosts) is
    expressed as interleaved events, never as OS threads. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh engine with the clock at {!Time.zero} and
    a deterministic RNG seeded with [seed] (default 42). *)

val now : t -> Time.t
(** The current simulated instant. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} it. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t span f] runs [f] [span] after the current instant.
    Raises [Invalid_argument] on a negative span. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t instant f] runs [f] at [instant]. An instant in the
    past is an [Invalid_argument]. *)

val cancel : handle -> unit
(** Cancels a scheduled event. Cancelling an already-fired or cancelled
    event is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is [true] until the event fires or is cancelled. *)

val run : t -> unit
(** Runs events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** [run_until t limit] runs all events with time [<= limit], then
    advances the clock to exactly [limit]. Events scheduled beyond [limit]
    remain queued. *)

val run_for : t -> Time.span -> unit
(** [run_for t span] is [run_until t (now t + span)]. *)

val pending_events : t -> int
(** Number of live (non-cancelled) queued events. *)

val processed_events : t -> int
(** Total number of events executed so far. *)

val global_processed_events : unit -> int
(** Events executed by every engine created in this process, ever — a
    monotonic throughput meter for harnesses whose experiments build
    engines internally. *)

(** {2 Periodic timers} *)

type timer
(** A repeating timer. *)

val every : t -> ?jitter:float -> Time.span -> (unit -> unit) -> timer
(** [every t ~jitter period f] runs [f] every [period], starting one
    period from now. [jitter], if nonzero, uniformly perturbs each firing
    by [±jitter*period] (default 0). *)

val stop_timer : timer -> unit
(** Stops the periodic timer; the pending firing is cancelled. *)
