(** The discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Callbacks scheduled
    at future instants run in nondecreasing time order; events at the same
    instant run in scheduling order (FIFO), which makes runs fully
    deterministic. All simulated subsystems (links, TCP, BGP timers, the
    orchestrator) are driven by one engine.

    The engine is single-threaded by design: concurrency in the modelled
    system (threads of a BGP process, containers on many hosts) is
    expressed as interleaved events, never as OS threads. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh engine with the clock at {!Time.zero} and
    a deterministic RNG seeded with [seed] (default 42). *)

val now : t -> Time.t
(** The current simulated instant. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} it. *)

val schedule_after : t -> ?label:string -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t ?label span f] runs [f] [span] after the current
    instant. Raises [Invalid_argument] on a negative span.

    [label] attributes the event's cost to a subsystem ("tcp.rto",
    "net.link", …) for the profiler. Omitted, the event inherits
    {!current_label} — the label of the event being executed right now —
    so labelling a subsystem's entry points attributes its whole event
    cascade. Labels never influence execution, only attribution. *)

val schedule_at : t -> ?label:string -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t ?label instant f] runs [f] at [instant]. An instant
    in the past is an [Invalid_argument]. [label] as in
    {!schedule_after}. *)

val current_label : t -> string
(** The attribution label of the event currently (or most recently)
    executed by this engine; ["main"] before any labelled event ran. *)

val current_event_id : t -> int
(** The id of the event this engine is executing right now, or [-1]
    outside event dispatch (before the first event, between [run]
    segments, and after the queue drains). Event ids are the engine's
    scheduling sequence numbers: unique per engine, assigned in
    scheduling order. *)

val cancel : handle -> unit
(** Cancels a scheduled event. Cancelling an already-fired or cancelled
    event is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is [true] until the event fires or is cancelled. *)

val run : t -> unit
(** Runs events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** [run_until t limit] runs all events with time [<= limit], then
    advances the clock to exactly [limit]. Events scheduled beyond [limit]
    remain queued. *)

val run_for : t -> Time.span -> unit
(** [run_for t span] is [run_until t (now t + span)]. *)

val pending_events : t -> int
(** Number of live (non-cancelled) queued events. *)

val processed_events : t -> int
(** Total number of events executed so far. *)

val global_processed_events : unit -> int
(** Events executed by every engine created on the calling domain, ever
    — a monotonic throughput meter for harnesses whose experiments build
    engines internally. Domain-local: each worker of a parallel campaign
    meters (and resets with) its own engines. *)

(** {2 Profiling hook}

    One dispatch hook per domain, installed by [Prof.Profiler]. When
    set, every event of every engine is dispatched through it with the
    event's attribution label and queue dwell (simulated time between
    enqueue and execution). The hook wraps the action and must be
    transparent: no simulation state, telemetry, or RNG access — replay
    digests are byte-identical with the hook installed or not. *)

type profile_hook = label:string -> dwell:Time.span -> (unit -> unit) -> unit

val set_profile_hook : profile_hook option -> unit
(** Installs (or clears, with [None]) the calling domain's dispatch
    hook. It applies to every engine created on this domain. *)

val profiling : unit -> bool
(** [true] while a dispatch hook is installed. *)

(** {2 Causal-trace hook}

    One observation hook per domain, installed by [Causal.Recorder].
    When set, every event dispatch of every engine is reported — its id,
    the id of the event that scheduled it ([-1] when scheduled from
    outside dispatch, e.g. harness setup code), its attribution label,
    and its enqueue/execution instants — immediately before the action
    runs. Causal parentage mirrors label inheritance: the parent is the
    event executing at scheduling time. The hook must be transparent:
    no simulation state, telemetry, or RNG access — replay digests are
    byte-identical with the hook installed or not. *)

type trace_hook =
  eng:t ->
  id:int ->
  parent:int ->
  label:string ->
  sched_at:Time.t ->
  exec_at:Time.t ->
  unit

val set_trace_hook : trace_hook option -> unit
(** Installs (or clears, with [None]) the calling domain's trace hook.
    It applies to every engine created on this domain. *)

val tracing : unit -> bool
(** [true] while a trace hook is installed. *)

(** {2 Periodic timers} *)

type timer
(** A repeating timer. *)

val every : t -> ?label:string -> ?jitter:float -> Time.span -> (unit -> unit) -> timer
(** [every t ~jitter period f] runs [f] every [period], starting one
    period from now. [jitter], if nonzero, uniformly perturbs each firing
    by [±jitter*period] (default 0). [label] attributes every firing, as
    in {!schedule_after}. *)

val stop_timer : timer -> unit
(** Stops the periodic timer; the pending firing is cancelled. *)
