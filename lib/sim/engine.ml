type profile_hook = label:string -> dwell:Time.span -> (unit -> unit) -> unit

type event = {
  time : Time.t;
  seq : int; (* tie-breaker: FIFO among same-instant events; doubles as
                the event's unique id within its engine *)
  action : unit -> unit;
  mutable cancelled : bool;
  owner : t;
  label : string; (* cost-attribution label, see [schedule_at] *)
  sched_at : Time.t; (* enqueue instant: dwell = time - sched_at *)
  caused_by : int; (* seq of the event executing when this one was
                      scheduled; -1 when scheduled from outside dispatch *)
}

and heap = { mutable arr : event array; mutable size : int }

and t = {
  mutable clock : Time.t;
  mutable heap : heap option; (* created with the first event *)
  mutable next_seq : int;
  mutable live : int; (* queued and not cancelled *)
  mutable processed : int;
  mutable current_label : string; (* label of the executing event *)
  mutable current_id : int; (* seq of the executing event; -1 outside *)
  root_rng : Rng.t;
  dls : dls_state; (* the creating domain's shared meter/hook cell *)
}

and trace_hook =
  eng:t ->
  id:int ->
  parent:int ->
  label:string ->
  sched_at:Time.t ->
  exec_at:Time.t ->
  unit

(* Domain-local engine state: the cross-engine throughput meter and the
   dispatch hooks. One record per domain, captured into [t] at [create]
   so the per-event hot path pays a field read, not a DLS lookup. Hooks
   and meter cover every engine *this domain* creates — exactly the old
   process-global behaviour when single-domain, and per-campaign-worker
   isolation under [--jobs N] (a profiler attached on one domain never
   observes, or races with, another domain's runs). *)
and dls_state = {
  mutable dls_processed : int;
  mutable dls_profile_hook : profile_hook option;
  mutable dls_trace_hook : trace_hook option;
}

type handle = event

let dls_key =
  Domain.DLS.new_key (fun () ->
      { dls_processed = 0; dls_profile_hook = None; dls_trace_hook = None })

let dls () = Domain.DLS.get dls_key

(* A classic array-backed binary min-heap ordered by (time, seq). The
   [dummy] slot filler is the first event ever pushed; it is never read as
   a live element because [size] bounds all accesses. *)
module Heap = struct
  let create_with e = { arr = Array.make 256 e; size = 0 }
  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let grow h =
    let arr = Array.make (2 * Array.length h.arr) h.arr.(0) in
    Array.blit h.arr 0 arr 0 h.size;
    h.arr <- arr

  let push h e =
    if h.size = Array.length h.arr then grow h;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.arr.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if lt h.arr.(!i) h.arr.(parent) then begin
        let tmp = h.arr.(parent) in
        h.arr.(parent) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  (* Precondition: [h.size > 0] — callers branch on [size] themselves
     so the dispatch loop never allocates a [Some] per event. *)
  let pop h =
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    h.arr.(0) <- h.arr.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.size && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

let create ?(seed = 42) () =
  {
    clock = Time.zero;
    heap = None;
    next_seq = 0;
    live = 0;
    processed = 0;
    current_label = "main";
    current_id = -1;
    root_rng = Rng.create seed;
    dls = dls ();
  }

let now t = t.clock
let rng t = t.root_rng
let current_label t = t.current_label
let current_event_id t = t.current_id

let schedule_at t ?label instant action =
  if instant < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %s is in the past (now %s)"
         (Time.to_string instant) (Time.to_string t.clock));
  let label = match label with Some l -> l | None -> t.current_label in
  let e =
    {
      time = instant;
      seq = t.next_seq;
      action;
      cancelled = false;
      owner = t;
      label;
      sched_at = t.clock;
      caused_by = t.current_id;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  let h =
    match t.heap with
    | Some h -> h
    | None ->
        let h = Heap.create_with e in
        t.heap <- Some h;
        h
  in
  Heap.push h e;
  e

let schedule_after t ?label span action =
  if span < 0 then invalid_arg "Engine.schedule_after: negative span";
  schedule_at t ?label (Time.add t.clock span) action

let cancel (e : handle) =
  if not e.cancelled then begin
    e.cancelled <- true;
    e.owner.live <- e.owner.live - 1
  end

let is_pending (e : handle) = not e.cancelled

(* The attribution hook (Prof.Profiler installs itself here). When set,
   every event dispatch is routed through it with the event's label and
   its queue dwell (simulated time spent enqueued). The hook wraps the
   action but must never touch simulation state, telemetry, or the
   engine RNG — replay digests must be byte-identical with the hook on
   or off. Domain-wide, like the throughput meter: experiments build
   engines internally and the profiler must see all of them. *)
let set_profile_hook h = (dls ()).dls_profile_hook <- h
let profiling () = (dls ()).dls_profile_hook <> None

(* The causal-trace hook (Causal.Recorder installs itself here). Unlike
   the profile hook it does not wrap the action: it observes the
   dispatch — id, causal parent, label, enqueue and execution instants —
   before the action runs. Same transparency contract: no simulation
   state, telemetry, or RNG access; replay digests must be
   byte-identical with the hook installed or not. *)
let set_trace_hook h = (dls ()).dls_trace_hook <- h
let tracing () = (dls ()).dls_trace_hook <> None

let exec t e =
  e.cancelled <- true;
  t.live <- t.live - 1;
  t.clock <- e.time;
  t.processed <- t.processed + 1;
  t.dls.dls_processed <- t.dls.dls_processed + 1;
  t.current_label <- e.label;
  t.current_id <- e.seq;
  (match t.dls.dls_trace_hook with
  | None -> ()
  | Some hook ->
      hook ~eng:t ~id:e.seq ~parent:e.caused_by ~label:e.label
        ~sched_at:e.sched_at ~exec_at:e.time);
  (match t.dls.dls_profile_hook with
  | None -> e.action ()
  | Some hook ->
      hook ~label:e.label ~dwell:(Time.diff e.time e.sched_at) e.action);
  t.current_id <- -1

let step t =
  match t.heap with
  | None -> false
  | Some h ->
      if h.size = 0 then false
      else begin
        let e = Heap.pop h in
        if not e.cancelled then exec t e;
        true
      end

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match t.heap with
    | None -> continue := false
    | Some h ->
        (* Peek inline: an option-returning peek would allocate a [Some]
           per loop iteration, once per event under [run_until]. *)
        if h.size > 0 && h.arr.(0).time <= limit then ignore (step t)
        else continue := false
  done;
  if limit > t.clock then t.clock <- limit

let run_for t span = run_until t (Time.add t.clock span)
let pending_events t = t.live
let processed_events t = t.processed
let global_processed_events () = (dls ()).dls_processed

type timer = { mutable pending : handle option; mutable stopped : bool }

let every t ?label ?(jitter = 0.0) period f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let timer = { pending = None; stopped = false } in
  (* Jitter draws come from a private stream split off at creation, not
     from the shared root generator: a timer's firing pattern must not
     shift when an unrelated subsystem (created mid-run, e.g. by a fault
     injector) starts drawing from the engine RNG. *)
  let rng = if jitter <= 0.0 then None else Some (Rng.split t.root_rng) in
  let next_delay () =
    match rng with
    | None -> period
    | Some rng ->
        let j = Rng.float rng (2.0 *. jitter) -. jitter in
        let d = float_of_int period *. (1.0 +. j) in
        max 1 (int_of_float d)
  in
  let rec arm () =
    if not timer.stopped then
      timer.pending <-
        Some
          (schedule_after t ?label (next_delay ()) (fun () ->
               timer.pending <- None;
               if not timer.stopped then begin
                 f ();
                 arm ()
               end))
  in
  arm ();
  timer

let stop_timer timer =
  timer.stopped <- true;
  match timer.pending with
  | Some h ->
      cancel h;
      timer.pending <- None
  | None -> ()
