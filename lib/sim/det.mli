(** Deterministic, sorted traversal of hash tables.

    [Hashtbl] iteration order depends on hash values and insertion
    history, so any fold that feeds a digest, a snapshot, telemetry, or
    printed output must go through these helpers instead (lint pass
    [d1]: this module is the only place allowed to traverse a [Hashtbl]
    directly). All traversals visit keys in ascending [compare] order.

    Tables populated with [Hashtbl.add] (shadowed bindings) expose every
    binding, like [Hashtbl.fold] does; the repo's tables use [replace]
    throughout, so each key appears once. *)

val bindings : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key. *)

val keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** Keys in ascending order. *)

val iter_sorted :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

val fold_sorted :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** Left fold in ascending key order. *)
