(** Measurement primitives for experiments.

    Counters, gauges and sample collections used by every experiment to
    report the quantities the paper's figures plot. A {!samples} value is
    an append-only collection supporting means, quantiles and CDF export;
    it is the backing type for latency and throughput distributions. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] is a fresh counter starting at zero. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int
val counter_name : counter -> string
val reset : counter -> unit

(** {1 Samples} *)

type samples

val samples : string -> samples
(** [samples name] is an empty sample collection. *)

val record : samples -> float -> unit
(** Appends one observation. *)

val n : samples -> int
(** Number of observations. *)

val mean : samples -> float
(** Arithmetic mean; [nan] when empty. *)

val stddev : samples -> float
(** Population standard deviation; [nan] when empty. *)

val min_value : samples -> float
val max_value : samples -> float

val quantile : samples -> float -> float
(** [quantile s q] with [q] in [\[0,1\]] (clamped); linear interpolation
    between order statistics. [nan] when empty or when [q] is [nan]. *)

val median : samples -> float

val cdf : samples -> int -> (float * float) list
(** [cdf s points] is the empirical CDF sampled at [points] evenly spaced
    cumulative probabilities, as [(value, probability)] pairs. *)

val values : samples -> float array
(** A copy of all observations in insertion order. *)

val samples_name : samples -> string

val clear : samples -> unit

(** {1 Stopwatch over simulated time} *)

type span_recorder

val span_recorder : string -> span_recorder
(** Records durations between matching [start]/[stop] marks, keyed by an
    integer id so that overlapping intervals can be timed. *)

val span_start : span_recorder -> Engine.t -> int -> unit
val span_stop : span_recorder -> Engine.t -> int -> unit
(** [span_stop] records the elapsed simulated time since the matching
    [span_start] into the recorder's samples (in seconds) and forgets the
    id. Stopping an unknown id is a no-op. *)

val span_samples : span_recorder -> samples
