type counter = { cname : string; mutable value : int }

let counter cname = { cname; value = 0 }
let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let count c = c.value
let counter_name c = c.cname
let reset c = c.value <- 0

type samples = {
  sname : string;
  mutable data : float array;
  mutable len : int;
  mutable sorted : float array option; (* cache invalidated on record *)
}

let samples sname = { sname; data = Array.make 64 0.0; len = 0; sorted = None }

let record s v =
  if s.len = Array.length s.data then begin
    let arr = Array.make (2 * Array.length s.data) 0.0 in
    Array.blit s.data 0 arr 0 s.len;
    s.data <- arr
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1;
  s.sorted <- None

let n s = s.len

let mean s =
  if s.len = 0 then nan
  else begin
    let sum = ref 0.0 in
    for i = 0 to s.len - 1 do
      sum := !sum +. s.data.(i)
    done;
    !sum /. float_of_int s.len
  end

let stddev s =
  if s.len = 0 then nan
  else begin
    let m = mean s in
    let sum = ref 0.0 in
    for i = 0 to s.len - 1 do
      let d = s.data.(i) -. m in
      sum := !sum +. (d *. d)
    done;
    sqrt (!sum /. float_of_int s.len)
  end

let sorted s =
  match s.sorted with
  | Some arr -> arr
  | None ->
      let arr = Array.sub s.data 0 s.len in
      Array.sort compare arr;
      s.sorted <- Some arr;
      arr

let min_value s = if s.len = 0 then nan else (sorted s).(0)
let max_value s = if s.len = 0 then nan else (sorted s).(s.len - 1)

let quantile s q =
  if s.len = 0 || Float.is_nan q then nan
  else begin
    let arr = sorted s in
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let pos = q *. float_of_int (s.len - 1) in
    let lo = int_of_float pos in
    let hi = Stdlib.min (lo + 1) (s.len - 1) in
    let frac = pos -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let median s = quantile s 0.5

let cdf s points =
  if s.len = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let p = float_of_int (i + 1) /. float_of_int points in
        (quantile s p, p))

let values s = Array.sub s.data 0 s.len
let samples_name s = s.sname

let clear s =
  s.len <- 0;
  s.sorted <- None

type span_recorder = {
  marks : (int, Time.t) Hashtbl.t;
  spans : samples;
}

let span_recorder name = { marks = Hashtbl.create 16; spans = samples name }

let span_start r engine id = Hashtbl.replace r.marks id (Engine.now engine)

let span_stop r engine id =
  match Hashtbl.find_opt r.marks id with
  | None -> ()
  | Some start ->
      Hashtbl.remove r.marks id;
      record r.spans (Time.to_sec_f (Time.diff (Engine.now engine) start))

let span_samples r = r.spans
