(* The one blessed collect-then-sort point for hash tables: everything
   else goes through [bindings], so iteration order can never leak into
   digests, snapshots, or telemetry. *)

let bindings ~compare:cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let keys ~compare tbl = List.map fst (bindings ~compare tbl)

let iter_sorted ~compare f tbl =
  List.iter (fun (k, v) -> f k v) (bindings ~compare tbl)

let fold_sorted ~compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ~compare tbl)
