type verdict = Accept | Drop | Queue of int

let m_accepted = Telemetry.Registry.counter "netfilter.accepted"
let m_dropped = Telemetry.Registry.counter "netfilter.dropped"
let m_queued = Telemetry.Registry.counter "netfilter.queued"
let m_depth = Telemetry.Registry.gauge "netfilter.queue_depth"
let m_depth_peak = Telemetry.Registry.gauge "netfilter.queue_depth_peak"

type rule = {
  priority : int;
  order : int;
  judge : Netsim.Packet.t -> verdict;
}

type queue = {
  mutable consumer :
    (Netsim.Packet.t -> reinject:(verdict -> unit) -> unit) option;
  mutable pending : int;
}

type t = {
  mutable rules : rule list; (* sorted by (priority, order) *)
  queues : (int, queue) Hashtbl.t;
  mutable next_order : int;
  mutable next_qnum : int;
  mutable n_accepted : int;
  mutable n_dropped : int;
  mutable n_queued : int;
  eng : Sim.Engine.t option; (* for timestamping queue-drop events *)
}

let create ?eng () =
  {
    rules = [];
    queues = Hashtbl.create 4;
    next_order = 0;
    next_qnum = 0;
    n_accepted = 0;
    n_dropped = 0;
    n_queued = 0;
    eng;
  }

let fresh_queue_num t =
  t.next_qnum <- t.next_qnum + 1;
  t.next_qnum

let add_rule t ?(priority = 0) judge =
  let rule = { priority; order = t.next_order; judge } in
  t.next_order <- t.next_order + 1;
  t.rules <-
    List.sort
      (fun a b ->
        match Int.compare a.priority b.priority with
        | 0 -> Int.compare a.order b.order
        | c -> c)
      (rule :: t.rules);
  rule

let remove_rule t rule = t.rules <- List.filter (fun r -> r != rule) t.rules

let queue t n =
  match Hashtbl.find_opt t.queues n with
  | Some q -> q
  | None ->
      let q = { consumer = None; pending = 0 } in
      Hashtbl.replace t.queues n q;
      q

let set_consumer q f = q.consumer <- Some f
let clear_consumer q = q.consumer <- None
let backlog q = q.pending

let rec apply t rules pkt ~emit =
  match rules with
  | [] ->
      t.n_accepted <- t.n_accepted + 1;
      Telemetry.Registry.incr m_accepted;
      emit pkt
  | rule :: rest -> (
      match rule.judge pkt with
      | Accept -> apply t rest pkt ~emit
      | Drop ->
          t.n_dropped <- t.n_dropped + 1;
          Telemetry.Registry.incr m_dropped
      | Queue n -> (
          let q = queue t n in
          match q.consumer with
          | None ->
              (* Real NFQUEUE semantics: no userspace reader, packet is
                 dropped. *)
              t.n_dropped <- t.n_dropped + 1;
              Telemetry.Registry.incr m_dropped;
              (match t.eng with
              | Some eng when Telemetry.Gate.on () ->
                  Telemetry.Bus.emit eng
                    (Telemetry.Event.Queue_dropped
                       { qnum = n; depth = q.pending })
              | _ -> ())
          | Some consumer ->
              t.n_queued <- t.n_queued + 1;
              Telemetry.Registry.incr m_queued;
              q.pending <- q.pending + 1;
              Telemetry.Registry.set_int m_depth q.pending;
              Telemetry.Registry.set_max_int m_depth_peak q.pending;
              let decided = ref false in
              let reinject verdict =
                if not !decided then begin
                  decided := true;
                  q.pending <- q.pending - 1;
                  Telemetry.Registry.set_int m_depth q.pending;
                  match verdict with
                  | Accept | Queue _ ->
                      t.n_accepted <- t.n_accepted + 1;
                      Telemetry.Registry.incr m_accepted;
                      emit pkt
                  | Drop ->
                      t.n_dropped <- t.n_dropped + 1;
                      Telemetry.Registry.incr m_dropped
                end
              in
              consumer pkt ~reinject))

let traverse t pkt ~emit = apply t t.rules pkt ~emit

let accepted t = t.n_accepted
let dropped t = t.n_dropped
let queued t = t.n_queued
