(** Netfilter-style packet hooks.

    This is the simulator's rendition of the Linux facility TENSOR builds
    on (§3.1.2): a per-host OUTPUT chain that every locally generated
    egress packet traverses, with rules returning verdicts. A [Queue n]
    verdict diverts the packet to an NFQUEUE-like target whose userspace
    consumer later reinjects it with a final verdict — exactly the
    mechanism TENSOR's [tcp_queue] thread uses to hold TCP ACKs until the
    corresponding BGP message is known to be replicated.

    No kernel semantics beyond rule traversal and queue/reinject are
    modelled, because the paper uses nothing else. *)

type verdict =
  | Accept  (** Let the packet out. *)
  | Drop  (** Silently discard. *)
  | Queue of int  (** Divert to the numbered queue. *)

type t
(** A hook chain (one per protocol stack attachment). *)

type rule
(** Handle for removing an installed rule. *)

val create : ?eng:Sim.Engine.t -> unit -> t
(** An empty chain: every packet is accepted. With [eng], packets
    dropped at a reader-less queue are reported to the telemetry bus
    as [Queue_dropped] events. *)

val add_rule : t -> ?priority:int -> (Netsim.Packet.t -> verdict) -> rule
(** Installs a rule. Lower [priority] runs earlier (default 0); equal
    priorities run in installation order. *)

val remove_rule : t -> rule -> unit

type queue
(** An NFQUEUE target. *)

val fresh_queue_num : t -> int
(** A queue number not yet handed out by this allocator (a per-chain
    counter from 1). Queue numbers are chain-local, so allocating them
    per chain — rather than from process-global state — keeps
    [Queue_dropped] telemetry byte-identical across repeated runs in one
    process. *)

val queue : t -> int -> queue
(** [queue t n] is the chain's queue number [n], created on first use. *)

val set_consumer :
  queue ->
  (Netsim.Packet.t -> reinject:(verdict -> unit) -> unit) ->
  unit
(** Registers the userspace consumer. For each queued packet the consumer
    receives a [reinject] continuation to be called exactly once, now or
    from a later event. Packets queued while no consumer is attached are
    {e dropped} — real NFQUEUE semantics, and load-bearing for TENSOR:
    when the BGP process (and its tcp_queue thread) crashes, the kernel's
    dying FIN/RST is queued to a reader-less queue and silently dropped,
    so the remote peer observes silence rather than a connection reset. *)

val clear_consumer : queue -> unit

val backlog : queue -> int
(** Packets handed to the consumer whose reinject is still pending. *)

val traverse : t -> Netsim.Packet.t -> emit:(Netsim.Packet.t -> unit) -> unit
(** Runs the packet through the rules. [emit] is called (possibly later,
    for queued packets) for packets whose final verdict is [Accept]. *)

val accepted : t -> int
val dropped : t -> int
val queued : t -> int
(** Counters over the chain's lifetime. *)
