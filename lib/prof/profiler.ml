(* Deterministic engine profiler: per-label cost accounting hooked into
   [Sim.Engine] dispatch.

   Attribution is by event label (see [Engine.schedule_after ?label]):
   each dispatched event adds its wall time, allocation delta
   ([Gc.allocated_bytes]), minor/major collection deltas and simulated
   queue dwell to its label's row. All of it is host-side observation —
   nothing here reads or writes simulation state, telemetry, or the
   engine RNG, so replay digests are byte-identical with the profiler
   attached or not (a property the test suite pins against the chaos
   corpus). *)

type stat = {
  label : string;
  mutable events : int;
  mutable wall_s : float;
  mutable alloc_bytes : float;
  mutable minor_gcs : int;
  mutable major_gcs : int;
  mutable dwell_s : float; (* simulated enqueue→dispatch time, total *)
  mutable dwell_max_s : float;
}

(* Profiler state is domain-local, matching the engine dispatch hook it
   feeds on: attaching on one domain profiles the engines that domain
   creates and nothing else, so parallel campaign workers never share a
   stats table. *)
type state = { table : (string, stat) Hashtbl.t; mutable active : bool }

let key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 64; active = false })

let state () = Domain.DLS.get key

let get label =
  let table = (state ()).table in
  match Hashtbl.find_opt table label with
  | Some st -> st
  | None ->
      let st =
        {
          label;
          events = 0;
          wall_s = 0.0;
          alloc_bytes = 0.0;
          minor_gcs = 0;
          major_gcs = 0;
          dwell_s = 0.0;
          dwell_max_s = 0.0;
        }
      in
      Hashtbl.replace table label st;
      st

(* The hook: measure around the action. Costs of the measurement itself
   (two Gc reads, two clock reads, a closure) land inside the sample —
   a known, constant per-event overhead, stated in the docs. The action
   is executed under [Fun.protect] so an escaping exception (the chaos
   runner converts those into run errors) still books the sample. *)
let on_event ~label ~dwell action =
  let st = get label in
  let d = Sim.Time.to_sec_f dwell in
  st.dwell_s <- st.dwell_s +. d;
  if d > st.dwell_max_s then st.dwell_max_s <- d;
  let q0 = Gc.quick_stat () in
  let a0 = Gc.allocated_bytes () in
  let t0 = Clock.now_s () in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Clock.now_s () in
      let a1 = Gc.allocated_bytes () in
      let q1 = Gc.quick_stat () in
      st.events <- st.events + 1;
      st.wall_s <- st.wall_s +. (t1 -. t0);
      st.alloc_bytes <- st.alloc_bytes +. (a1 -. a0);
      st.minor_gcs <-
        st.minor_gcs + q1.Gc.minor_collections - q0.Gc.minor_collections;
      st.major_gcs <-
        st.major_gcs + q1.Gc.major_collections - q0.Gc.major_collections)
    action

let reset () = Hashtbl.reset (state ()).table

let attach () =
  reset ();
  (state ()).active <- true;
  Sim.Engine.set_profile_hook (Some on_event)

let detach () =
  (state ()).active <- false;
  Sim.Engine.set_profile_hook None

let enabled () = (state ()).active

let stats () =
  List.rev
    (Sim.Det.fold_sorted ~compare:String.compare
       (fun _ st acc -> st :: acc)
       (state ()).table [])

type order = By_wall | By_alloc | By_events | By_dwell

let key_of = function
  | By_wall -> fun st -> st.wall_s
  | By_alloc -> fun st -> st.alloc_bytes
  | By_events -> fun st -> float_of_int st.events
  | By_dwell -> fun st -> st.dwell_s

let top ?(by = By_wall) k =
  let key = key_of by in
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare (key b) (key a) with
        | 0 -> String.compare a.label b.label
        | c -> c)
      (stats ())
  in
  List.filteri (fun i _ -> i < k) sorted

let sum f = List.fold_left (fun acc st -> acc +. f st) 0.0 (stats ())
let sumi f = List.fold_left (fun acc st -> acc + f st) 0 (stats ())
let total_events () = sumi (fun st -> st.events)
let total_wall_s () = sum (fun st -> st.wall_s)
let total_alloc_bytes () = sum (fun st -> st.alloc_bytes)
let total_minor_gcs () = sumi (fun st -> st.minor_gcs)
let total_major_gcs () = sumi (fun st -> st.major_gcs)
