(** Per-event-kind cost accounting hooked into [Sim.Engine] dispatch.

    While attached, every event of every engine in the process books its
    wall time, allocation delta, minor/major GC deltas and simulated
    queue dwell against its attribution label. The profiler is
    observation-only: it never reads or writes simulation state,
    telemetry, or the engine RNG, so replay digests are byte-identical
    whether it is attached or not. The measurement overhead (two [Gc]
    reads and two clock reads per event) is included in each sample. *)

type stat = {
  label : string;
  mutable events : int;
  mutable wall_s : float;
  mutable alloc_bytes : float;
  mutable minor_gcs : int;
  mutable major_gcs : int;
  mutable dwell_s : float;
      (** Total simulated time events of this label spent enqueued
          before dispatch — the event-queue scheduling latency. *)
  mutable dwell_max_s : float;
}

val attach : unit -> unit
(** Clears accumulated samples and installs the engine dispatch hook. *)

val detach : unit -> unit
(** Removes the hook; accumulated samples remain readable. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clears accumulated samples without touching the hook. *)

val stats : unit -> stat list
(** All rows, sorted by label (deterministic output order). *)

type order = By_wall | By_alloc | By_events | By_dwell

val top : ?by:order -> int -> stat list
(** [top ~by k] is the [k] costliest rows, descending (ties by label). *)

val total_events : unit -> int
val total_wall_s : unit -> float
val total_alloc_bytes : unit -> float
val total_minor_gcs : unit -> int
val total_major_gcs : unit -> int
