(** The single blessed wall-clock read in [lib/].

    Simulation state lives entirely in simulated time; host wall time is
    observability-only (profiler samples, bench rows) and must never
    reach telemetry events or replay digests. Every other wall-clock
    read under [lib/] is a lint [d2] error — the test suite asserts this
    module carries the only suppression. *)

val now_s : unit -> float
(** Host wall clock, seconds since the epoch. *)
