(* Flamegraph-ready views of a profiled run.

   Two sources fold into stacks:
   - profiler rows (host cost per engine-event label), rooted at
     "engine" — one folded set weighted by wall microseconds, one by
     allocated bytes;
   - the run's [Telemetry.Span] trees (causal spans over simulated
     time), weighted by *self* time in simulated microseconds (a span's
     duration minus its closed children's durations).

   Output formats: folded stacks ("a;b;c <weight>" lines, the input
   flamegraph.pl expects) and a single speedscope JSON file carrying all
   profiles. Lines are sorted by stack for deterministic output. *)

type folded = (string * int) list

let folded_of_profiler ~weight () =
  List.filter_map
    (fun (st : Profiler.stat) ->
      let w = weight st in
      if w > 0 then Some ("engine;" ^ st.label, w) else None)
    (Profiler.stats ())

let folded_wall () =
  folded_of_profiler
    ~weight:(fun st -> int_of_float (st.Profiler.wall_s *. 1e6))
    ()

let folded_alloc () =
  folded_of_profiler
    ~weight:(fun st -> int_of_float st.Profiler.alloc_bytes)
    ()

let folded_spans () =
  let spans = Telemetry.Span.spans () in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Telemetry.Span.sid s) spans;
  let dur s =
    match s.Telemetry.Span.stop_at with
    | Some stop -> Sim.Time.diff stop s.Telemetry.Span.start_at
    | None -> 0
  in
  (* Self time: duration minus the closed children's durations. *)
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.Telemetry.Span.parent with
      | Some p ->
          let prev =
            Option.value (Hashtbl.find_opt child_time p) ~default:0
          in
          Hashtbl.replace child_time p (prev + dur s)
      | None -> ())
    spans;
  let rec path s =
    let name = s.Telemetry.Span.name in
    match s.Telemetry.Span.parent with
    | Some p -> (
        match Hashtbl.find_opt by_id p with
        | Some parent -> path parent ^ ";" ^ name
        | None -> name)
    | None -> name
  in
  let acc = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let children =
        Option.value (Hashtbl.find_opt child_time s.Telemetry.Span.sid)
          ~default:0
      in
      let self_us = (dur s - children) / 1_000 in
      if self_us > 0 then begin
        let key = path s in
        let prev = Option.value (Hashtbl.find_opt acc key) ~default:0 in
        Hashtbl.replace acc key (prev + self_us)
      end)
    spans;
  Sim.Det.fold_sorted ~compare:String.compare
    (fun k v acc -> (k, v) :: acc)
    acc []
  |> List.rev

let folded_to_string entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (stack, w) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" stack w))
    (List.sort compare entries);
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_folded path entries = write_file path (folded_to_string entries)

(* --- speedscope ----------------------------------------------------------- *)

(* One "sampled" profile per source, sharing a frame table. Each folded
   entry becomes one sample (its stack) with its weight. *)
let speedscope ~name profiles =
  let frames = Hashtbl.create 64 in
  let frame_order = ref [] in
  let frame_index f =
    match Hashtbl.find_opt frames f with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frames in
        Hashtbl.replace frames f i;
        frame_order := f :: !frame_order;
        i
  in
  let esc = Telemetry.Event.json_escape in
  let profile_json (pname, unit_name, entries) =
    let entries = List.sort compare entries in
    let samples =
      List.map
        (fun (stack, _) ->
          String.split_on_char ';' stack
          |> List.map (fun f -> string_of_int (frame_index f))
          |> String.concat ",")
        entries
    in
    let weights = List.map (fun (_, w) -> string_of_int w) entries in
    let total = List.fold_left (fun acc (_, w) -> acc + w) 0 entries in
    Printf.sprintf
      "{\"type\":\"sampled\",\"name\":\"%s\",\"unit\":\"%s\",\"startValue\":0,\"endValue\":%d,\"samples\":[%s],\"weights\":[%s]}"
      (esc pname) (esc unit_name) total
      (String.concat "," (List.map (fun s -> "[" ^ s ^ "]") samples))
      (String.concat "," weights)
  in
  let profiles_json = List.map profile_json profiles in
  let frames_json =
    List.rev_map
      (fun f -> Printf.sprintf "{\"name\":\"%s\"}" (esc f))
      !frame_order
  in
  Printf.sprintf
    "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\"name\":\"%s\",\"shared\":{\"frames\":[%s]},\"profiles\":[%s]}"
    (esc name)
    (String.concat "," frames_json)
    (String.concat "," profiles_json)

let standard_profiles () =
  [
    ("engine wall time", "microseconds", folded_wall ());
    ("engine allocations", "bytes", folded_alloc ());
    ("causal spans (simulated)", "microseconds", folded_spans ());
  ]

let write_speedscope ~name path =
  write_file path (speedscope ~name (standard_profiles ()))
