(** Flamegraph-ready exports of a profiled run.

    Folded stacks ("a;b;c <weight>" — the input [flamegraph.pl] takes)
    and speedscope JSON, built from the profiler's per-label rows (wall
    microseconds and allocated bytes, rooted at ["engine"]) and from the
    run's {!Telemetry.Span} trees (self time in simulated microseconds).
    All outputs are sorted by stack, so identical runs export
    byte-identical span profiles. *)

type folded = (string * int) list
(** [(stack, weight)] where [stack] is [";"]-joined frame names. *)

val folded_wall : unit -> folded
(** Profiler rows weighted by wall microseconds. *)

val folded_alloc : unit -> folded
(** Profiler rows weighted by allocated bytes. *)

val folded_spans : unit -> folded
(** Closed telemetry spans, weighted by self simulated-microseconds
    (duration minus closed children). *)

val folded_to_string : folded -> string

val write_folded : string -> folded -> unit
(** [write_folded path entries] writes one folded-stack line per entry. *)

val speedscope :
  name:string -> (string * string * folded) list -> string
(** [speedscope ~name profiles] renders [(profile_name, unit, entries)]
    lists as one speedscope JSON document with a shared frame table. *)

val standard_profiles : unit -> (string * string * folded) list
(** The three standard views: engine wall, engine allocations, spans. *)

val write_speedscope : name:string -> string -> unit
(** Writes {!standard_profiles} as a speedscope file. *)
