(* The one blessed wall-clock read point in lib/.

   Everything the simulation computes is in simulated time; wall time
   exists only to attribute host cost (profiler samples, bench rows) and
   is never allowed to feed telemetry events, digests, or any state a
   replay could observe. Keeping the single suppressed read here — and
   testing that it stays the only d2 suppression under lib/ — is what
   makes that boundary auditable. *)

let now_s () =
  (* lint: allow d2 — profiler wall clock, never feeds digests *)
  Unix.gettimeofday ()
