open Sim
module Deploy = Tensor.Deploy
module Descriptor = Chaos.Descriptor

(* Fleet fault campaigns: the chaos grammar's fleet tokens executed with
   their correlated semantics — a [host_kill] takes out every instance
   co-located on the busiest host at once, a [region_store_outage]
   sheds a whole region together, a [rolling_upgrade] drains the fleet
   through the wave planner. Single-instance tokens (kills, planned)
   target the first instance, so mixed descriptors stay meaningful. *)

type spec = {
  hosts : int;
  regions : int;
  instances : int;
  seed : int;
  faults : Descriptor.fault list;
  window_ms : int;  (** Fault window after convergence + route seeding. *)
  settle_ms : int;
  ctrl_delay_us : int;
      (** Controller uplink one-way delay: the centralization knob
          (per-host ~50 µs, regional ~500 µs, global ~5000 µs). *)
}

let default_campaign = "host_kill@5000,region_store_outage@20000+8000"

let default_spec =
  {
    hosts = 8;
    regions = 2;
    instances = 20;
    seed = 42;
    faults = [];
    window_ms = 60_000;
    settle_ms = 10_000;
    ctrl_delay_us = 500;
  }

(* Auto-size the window so the schedule fits: the wave needs roughly
   [instances/bound] batches of ~2.5 s each, everything else just its
   own offset, plus slack for failovers and re-arms. *)
let auto_window spec =
  let n = Topology.normalize_instances spec.instances in
  let need =
    List.fold_left
      (fun acc f ->
        let e =
          match f with
          | Descriptor.Rolling_upgrade { at_ms; bound } ->
              at_ms + (n * 2_500 / max 1 (min n bound)) + 10_000
          | Descriptor.Region_store_outage { at_ms; dur_ms } ->
              at_ms + dur_ms + 10_000
          | f -> Descriptor.fault_at f + 15_000
        in
        max acc e)
      spec.window_ms spec.faults
  in
  { spec with window_ms = need }

let check_faults faults =
  List.fold_left
    (fun acc f ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match f with
          | Descriptor.Host_kill _ | Descriptor.Region_store_outage _
          | Descriptor.Rolling_upgrade _ | Descriptor.Kill _
          | Descriptor.Planned _ ->
              Ok ()
          | f ->
              Error
                (Printf.sprintf
                   "fault %S has no fleet-scale semantics (supported: \
                    host_kill, region_store_outage, rolling_upgrade, kill.*, \
                    planned)"
                   (Descriptor.fault_kind_name f))))
    (Ok ()) faults

type outcome = {
  spec : spec;
  checkers : (string * Monitor.Checker.result) list;
  violations : Monitor.Checker.violation list;
  errors : string list;
  slo : Slo.report;
  digest : string;
  events : int;
  convergence_s : float;  (** Boot → every session Established. *)
}

let ok o = o.violations = [] && o.errors = []

let has_store_outage spec =
  List.exists
    (function Descriptor.Region_store_outage _ -> true | _ -> false)
    spec.faults

(* The busiest host right now (most fleet primaries; ties to the
   lexicographically smallest name): the correlated-kill target. *)
let busiest_host topo =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun inst ->
      let h = Topology.instance_host inst in
      Hashtbl.replace counts h
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts h)))
    topo.Topology.instances;
  Det.fold_sorted ~compare:String.compare
    (fun name n best ->
      match best with
      | Some (bn, _) when bn >= n -> best
      | _ -> Some (n, name))
    counts None
  |> Option.map snd

(* The region holding the most instances (ties to the lowest index):
   the regional-outage target. *)
let busiest_region topo =
  let counts = Array.make (Array.length topo.Topology.regions) 0 in
  Array.iter
    (fun inst ->
      counts.(inst.Topology.region) <- counts.(inst.Topology.region) + 1)
    topo.Topology.instances;
  let best = ref 0 in
  Array.iteri (fun r n -> if n > counts.(!best) then best := r) counts;
  !best

let schedule_fault topo (f : Descriptor.fault) =
  let dep = topo.Topology.dep in
  let eng = dep.Deploy.eng in
  let note name detail =
    Telemetry.Bus.emit eng
      (Telemetry.Event.Generic { cat = Telemetry.Event.Fleet; name; detail })
  in
  let apply () =
    match f with
    | Descriptor.Host_kill _ -> (
        match busiest_host topo with
        | None -> ()
        | Some name ->
            note "host_kill" name;
            Array.iter
              (fun h ->
                if String.equal (Orch.Host.name h) name then Orch.Host.fail h)
              dep.Deploy.hosts)
    | Descriptor.Region_store_outage { dur_ms; _ } ->
        let r = busiest_region topo in
        let reg = topo.Topology.regions.(r) in
        note "region_store_outage" reg.Topology.rname;
        let node = Store.Server.node reg.Topology.rstore in
        Netsim.Node.set_up node false;
        ignore
          (Engine.schedule_after eng ~label:"fleet.store_heal"
             (Time.ms dur_ms) (fun () ->
               note "region_store_heal" reg.Topology.rname;
               Netsim.Node.set_up node true))
    | Descriptor.Rolling_upgrade { bound; _ } ->
        note "rolling_upgrade" (string_of_int bound);
        ignore (Waves.start topo ~bound)
    | Descriptor.Kill { kind; _ } -> (
        let inst = topo.Topology.instances.(0) in
        match kind with
        | Descriptor.Kill_app -> Deploy.inject_app_failure dep inst.Topology.svc
        | Descriptor.Kill_container ->
            Deploy.inject_container_failure dep inst.Topology.svc
        | Descriptor.Kill_host -> Deploy.inject_host_failure dep inst.Topology.svc
        | Descriptor.Kill_host_network ->
            Deploy.inject_host_network_failure dep inst.Topology.svc)
    | Descriptor.Planned _ ->
        Deploy.planned_migration dep topo.Topology.instances.(0).Topology.svc
    | _ -> ()
  in
  ignore
    (Engine.schedule_after eng ~label:"fleet.fault"
       (Time.ms (Descriptor.fault_at f))
       apply)

let run spec =
  let spec = auto_window spec in
  let n = Topology.normalize_instances spec.instances in
  Telemetry.Control.reset ();
  Telemetry.Span.set_ambient None;
  Telemetry.Control.set_enabled true;
  let peer_names = List.init n Topology.peer_name in
  let mon =
    Monitor.Checker.install
      ~cfg:
        {
          Monitor.Checker.default_config with
          peers = peer_names;
          ack_deadline_s =
            (if has_store_outage spec then Topology.ack_deadline_s else 0.);
        }
      ()
  in
  let slo = Slo.install () in
  let errors = ref [] in
  let convergence_s = ref 0. in
  (match check_faults spec.faults with
  | Error e -> errors := [ e ]
  | Ok () -> (
      try
        let topo =
          Topology.build ~seed:spec.seed ~hosts:spec.hosts
            ~regions:spec.regions ~instances:n ()
        in
        let dep = topo.Topology.dep in
        let eng = dep.Deploy.eng in
        (* The centralization knob: how far away the controller sits. *)
        (match
           Netsim.Network.link_between dep.Deploy.net dep.Deploy.fabric
             (Orch.Controller.node dep.Deploy.ctrl)
         with
        | Some l -> Netsim.Link.set_delay l (Time.us spec.ctrl_delay_us)
        | None -> ());
        Array.iter
          (fun inst ->
            Monitor.Checker.note_primary mon ~service:inst.Topology.id
              ~container:
                (Orch.Container.id (Deploy.service_container inst.Topology.svc)))
          topo.Topology.instances;
        Topology.arm_store_probers topo;
        if not (Topology.wait_all_established topo) then
          errors := [ "fleet sessions did not establish within 120 s" ]
        else begin
          convergence_s := Time.to_sec_f (Engine.now eng);
          Topology.seed_routes topo;
          Engine.run_for eng (Time.sec 5);
          List.iter (schedule_fault topo) spec.faults;
          Engine.run_for eng (Time.ms (spec.window_ms + spec.settle_ms));
          (* Graceful-degradation end state: every instance either runs
             or is deferred with its region genuinely out of capacity —
             a silent dead instance is an error even when no checker
             names it. *)
          Array.iter
            (fun inst ->
              if
                Orch.Container.state (Deploy.service_container inst.Topology.svc)
                <> Orch.Container.Running
                && Option.is_some
                     (Orch.Controller.pick_host dep.Deploy.ctrl
                        ~region:(Topology.region_name inst.Topology.region)
                        ())
              then
                errors :=
                  Printf.sprintf
                    "instance %s ended the run not Running with healthy \
                     in-region capacity available"
                    inst.Topology.id
                  :: !errors)
            topo.Topology.instances
        end
      with e ->
        errors :=
          Printf.sprintf "exception: %s" (Printexc.to_string e) :: !errors));
  let checkers = Monitor.Checker.finalize mon in
  let violations = Monitor.Checker.violations mon in
  let slo_report = Slo.finish slo in
  let buf = Buffer.create 262_144 in
  Telemetry.Bus.to_jsonl buf;
  let digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  let events = Monitor.Checker.events_seen mon in
  Telemetry.Control.set_enabled false;
  {
    spec;
    checkers;
    violations;
    errors = List.rev !errors;
    slo = slo_report;
    digest;
    events;
    convergence_s = !convergence_s;
  }

let summary o =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "fleet: %d instances, %d regions, %d hosts, seed %d, ctrl %dus\n"
       (Topology.normalize_instances o.spec.instances)
       o.spec.regions o.spec.hosts o.spec.seed o.spec.ctrl_delay_us);
  Buffer.add_string b
    (Printf.sprintf "campaign: %s\n"
       (match o.spec.faults with
       | [] -> "-"
       | fs -> String.concat "," (List.map Descriptor.fault_to_string fs)));
  Buffer.add_string b
    (Printf.sprintf "convergence=%.2fs events=%d digest=%s\n" o.convergence_s
       o.events o.digest);
  Buffer.add_string b (Slo.to_text o.slo);
  if ok o then Buffer.add_string b "result: PASS\n"
  else begin
    List.iter
      (fun (v : Monitor.Checker.violation) ->
        Buffer.add_string b
          (Printf.sprintf "violation: %s at %.3fs: %s\n" v.checker
             (Time.to_sec_f v.at) v.detail))
      o.violations;
    List.iter (fun e -> Buffer.add_string b ("error: " ^ e ^ "\n")) o.errors;
    Buffer.add_string b "result: FAIL\n"
  end;
  Buffer.contents b
