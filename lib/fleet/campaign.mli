(** Fleet fault campaigns: the chaos grammar's fleet tokens with their
    correlated semantics.

    [host_kill] fails the busiest host outright (every co-located
    instance dies at once), [region_store_outage] takes the busiest
    region's store off the network so the whole region sheds and
    re-arms together, [rolling_upgrade] drains the fleet through
    {!Waves}. Single-instance tokens ([kill.*], [planned]) target the
    first instance, so mixed schedules stay meaningful; everything else
    is rejected up front. Runs are deterministic functions of the spec:
    equal specs give byte-identical telemetry digests on any [--jobs]
    setting. *)

type spec = {
  hosts : int;
  regions : int;
  instances : int;  (** Rounded up to a multiple of {!Topology.replicas}. *)
  seed : int;
  faults : Chaos.Descriptor.fault list;
  window_ms : int;
      (** Minimum fault window; {!run} widens it automatically so every
          scheduled fault (and a full rolling upgrade) fits. *)
  settle_ms : int;
  ctrl_delay_us : int;
      (** Controller uplink one-way delay — the centralization knob
          (per-host ~50 µs, regional ~500 µs, global ~5000 µs). *)
}

val default_spec : spec
(** 20 instances, 2 regions, 8 hosts, no faults, regional controller. *)

val default_campaign : string
(** The stock correlated campaign for CLI/CI:
    ["host_kill@5000,region_store_outage@20000+8000"]. *)

val check_faults : Chaos.Descriptor.fault list -> (unit, string) result
(** Rejects tokens without fleet-scale semantics. *)

type outcome = {
  spec : spec;  (** With the widened window. *)
  checkers : (string * Monitor.Checker.result) list;
  violations : Monitor.Checker.violation list;
  errors : string list;
  slo : Slo.report;
  digest : string;  (** MD5 of the telemetry JSONL — the replay digest. *)
  events : int;
  convergence_s : float;  (** Boot → every session Established. *)
}

val ok : outcome -> bool

val run : spec -> outcome
(** Builds the topology, converges every session, seeds routes, executes
    the fault schedule under all ten checkers plus the SLO aggregator,
    and closes with a graceful-degradation end-state check: an instance
    that ends the run not Running while healthy in-region capacity
    exists is an error even when no checker names it. *)

val summary : outcome -> string
