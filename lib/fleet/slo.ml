open Sim

(* Fleet-wide SLO aggregation over the telemetry bus: per-region
   availability (instance-up seconds over the observation horizon),
   the failover-time distribution (Failure_detected → Migration_done),
   degraded-instance accounting, upgrade progress, and deferred
   migrations. A live subscriber, like the invariant checkers — no
   polling, no second pass over the event log. *)

type region_stat = {
  mutable r_instances : int;
  mutable r_up_s : float;  (* closed instance-up intervals *)
  mutable r_degraded : int;
  mutable r_degraded_peak : int;
  mutable r_degraded_total : int;
}

type t = {
  sub : Telemetry.Bus.sub;
  regions : (string, region_stat) Hashtbl.t;
  region_of : (string, string) Hashtbl.t;  (* instance -> region *)
  container_of : (string, string) Hashtbl.t;  (* container -> instance *)
  up_since : (string, Time.t) Hashtbl.t;
  detect_at : (string, Time.t) Hashtbl.t;
  mutable failovers_s : float list;
  mutable upgrades_started : int;
  mutable upgrades_done : int;
  mutable upgrade_inflight : int;
  mutable upgrade_inflight_peak : int;
  mutable deferred : int;
  mutable t0 : Time.t option;
  mutable t_end : Time.t;
}

let region t inst =
  match Hashtbl.find_opt t.region_of inst with
  | Some r -> Hashtbl.find_opt t.regions r
  | None -> None

let mark_up t inst at =
  if not (Hashtbl.mem t.up_since inst) then Hashtbl.replace t.up_since inst at

let mark_down t inst at =
  match Hashtbl.find_opt t.up_since inst with
  | None -> ()
  | Some since -> (
      Hashtbl.remove t.up_since inst;
      match region t inst with
      | Some rs -> rs.r_up_s <- rs.r_up_s +. Time.to_sec_f (Time.diff at since)
      | None -> ())

let on_entry t (e : Telemetry.Bus.entry) =
  let at = e.Telemetry.Bus.at in
  if t.t0 = None then t.t0 <- Some at;
  t.t_end <- at;
  match e.Telemetry.Bus.event with
  | Telemetry.Event.Fleet_placed { instance; region; container; _ } ->
      let rs =
        match Hashtbl.find_opt t.regions region with
        | Some rs -> rs
        | None ->
            let rs =
              {
                r_instances = 0;
                r_up_s = 0.;
                r_degraded = 0;
                r_degraded_peak = 0;
                r_degraded_total = 0;
              }
            in
            Hashtbl.replace t.regions region rs;
            rs
      in
      rs.r_instances <- rs.r_instances + 1;
      Hashtbl.replace t.region_of instance region;
      Hashtbl.replace t.container_of container instance;
      mark_up t instance at
  | Telemetry.Event.Container_state { id; state; _ } -> (
      match Hashtbl.find_opt t.container_of id with
      | None -> ()
      | Some inst ->
          if String.equal state "running" then mark_up t inst at
          else mark_down t inst at)
  | Telemetry.Event.Failure_detected { id; _ } ->
      if Hashtbl.mem t.region_of id then Hashtbl.replace t.detect_at id at
  | Telemetry.Event.Migration_done { id; container; _ } ->
      if Hashtbl.mem t.region_of id then begin
        Hashtbl.replace t.container_of container id;
        mark_up t id at;
        match Hashtbl.find_opt t.detect_at id with
        | Some d ->
            Hashtbl.remove t.detect_at id;
            t.failovers_s <- Time.to_sec_f (Time.diff at d) :: t.failovers_s
        | None -> ()
      end
  | Telemetry.Event.Migration_deferred _ -> t.deferred <- t.deferred + 1
  | Telemetry.Event.Upgrade_started _ ->
      t.upgrades_started <- t.upgrades_started + 1;
      t.upgrade_inflight <- t.upgrade_inflight + 1;
      if t.upgrade_inflight > t.upgrade_inflight_peak then
        t.upgrade_inflight_peak <- t.upgrade_inflight
  | Telemetry.Event.Upgrade_done { instance; container; _ } ->
      t.upgrade_inflight <- max 0 (t.upgrade_inflight - 1);
      t.upgrades_done <- t.upgrades_done + 1;
      Hashtbl.replace t.container_of container instance;
      mark_up t instance at
  | Telemetry.Event.Fleet_degraded { instance; _ } -> (
      match region t instance with
      | Some rs ->
          rs.r_degraded <- rs.r_degraded + 1;
          rs.r_degraded_total <- rs.r_degraded_total + 1;
          if rs.r_degraded > rs.r_degraded_peak then
            rs.r_degraded_peak <- rs.r_degraded
      | None -> ())
  | Telemetry.Event.Fleet_rearmed { instance; _ } -> (
      match region t instance with
      | Some rs -> rs.r_degraded <- max 0 (rs.r_degraded - 1)
      | None -> ())
  | _ -> ()

let install () =
  let rec t =
    lazy
      {
        sub = Telemetry.Bus.subscribe (fun e -> on_entry (Lazy.force t) e);
        regions = Hashtbl.create 8;
        region_of = Hashtbl.create 64;
        container_of = Hashtbl.create 64;
        up_since = Hashtbl.create 64;
        detect_at = Hashtbl.create 16;
        failovers_s = [];
        upgrades_started = 0;
        upgrades_done = 0;
        upgrade_inflight = 0;
        upgrade_inflight_peak = 0;
        deferred = 0;
        t0 = None;
        t_end = Time.zero;
      }
  in
  Lazy.force t

(* --- Report ---------------------------------------------------------------- *)

type region_report = {
  rr_name : string;
  rr_instances : int;
  rr_availability : float;
  rr_degraded_now : int;
  rr_degraded_peak : int;
  rr_degraded_total : int;
}

type report = {
  horizon_s : float;
  region_rows : region_report list;  (* sorted by region name *)
  failover_s : float list;  (* ascending *)
  upgrades_started : int;
  upgrades_done : int;
  upgrade_inflight_peak : int;
  deferred : int;
}

let percentile sorted p =
  match sorted with
  | [] -> 0.
  | l ->
      let n = List.length l in
      let idx = min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1) in
      List.nth l (max 0 idx)

let finish t =
  Telemetry.Bus.unsubscribe t.sub;
  let t_end = t.t_end in
  (* Close every open up-interval at the horizon. *)
  Det.iter_sorted ~compare:String.compare
    (fun inst (_ : Time.t) -> mark_down t inst t_end)
    t.up_since;
  let horizon_s =
    match t.t0 with
    | Some t0 -> Time.to_sec_f (Time.diff t_end t0)
    | None -> 0.
  in
  let region_rows =
    Det.fold_sorted ~compare:String.compare
      (fun name rs acc ->
        let denom = float_of_int rs.r_instances *. horizon_s in
        {
          rr_name = name;
          rr_instances = rs.r_instances;
          rr_availability = (if denom > 0. then rs.r_up_s /. denom else 1.);
          rr_degraded_now = rs.r_degraded;
          rr_degraded_peak = rs.r_degraded_peak;
          rr_degraded_total = rs.r_degraded_total;
        }
        :: acc)
      t.regions []
    |> List.rev
  in
  {
    horizon_s;
    region_rows;
    failover_s = List.sort compare t.failovers_s;
    upgrades_started = t.upgrades_started;
    upgrades_done = t.upgrades_done;
    upgrade_inflight_peak = t.upgrade_inflight_peak;
    deferred = t.deferred;
  }

let to_text r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "fleet SLO over %.1fs:\n" r.horizon_s);
  List.iter
    (fun rr ->
      Buffer.add_string b
        (Printf.sprintf
           "  region %s: %d instances, availability %.5f, degraded \
            now=%d peak=%d total=%d\n"
           rr.rr_name rr.rr_instances rr.rr_availability rr.rr_degraded_now
           rr.rr_degraded_peak rr.rr_degraded_total))
    r.region_rows;
  let fo = r.failover_s in
  Buffer.add_string b
    (Printf.sprintf
       "  failovers: %d (p50 %.3fs, p95 %.3fs, max %.3fs)\n"
       (List.length fo) (percentile fo 0.5) (percentile fo 0.95)
       (percentile fo 1.0));
  Buffer.add_string b
    (Printf.sprintf
       "  upgrades: %d started, %d done, peak in-flight %d\n"
       r.upgrades_started r.upgrades_done r.upgrade_inflight_peak);
  Buffer.add_string b (Printf.sprintf "  deferred migrations: %d\n" r.deferred);
  Buffer.contents b

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "{\"horizon_s\":%.3f" r.horizon_s);
  Buffer.add_string b ",\"regions\":[";
  List.iteri
    (fun i rr ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"region\":%S,\"instances\":%d,\"availability\":%.6f,\
            \"degraded_now\":%d,\"degraded_peak\":%d,\"degraded_total\":%d}"
           rr.rr_name rr.rr_instances rr.rr_availability rr.rr_degraded_now
           rr.rr_degraded_peak rr.rr_degraded_total))
    r.region_rows;
  Buffer.add_string b "],\"failover_s\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%.4f" f))
    r.failover_s;
  Buffer.add_string b
    (Printf.sprintf
       "],\"upgrades_started\":%d,\"upgrades_done\":%d,\
        \"upgrade_inflight_peak\":%d,\"deferred\":%d}"
       r.upgrades_started r.upgrades_done r.upgrade_inflight_peak r.deferred);
  Buffer.contents b
