(** Fleet assembly: regions, per-region stores, replicated services.

    A fleet topology is an ordinary {!Tensor.Deploy} deployment scaled
    out: [hosts] host machines split across [regions] regions (each with
    its own store server on the fabric), and [instances] TENSOR
    instances grouped into services of {!replicas} replicas — both
    replicas in the same region, always on distinct hosts. Every
    instance peers with its own external AS over one VRF, so the whole
    single-instance NSR machinery (BFD relay, hold-ACK replication,
    migration) runs unchanged at fleet scale.

    Placement for every subsequent migration goes through
    {!Tensor.Deploy.set_service_picker} →
    {!Orch.Controller.pick_host}: region-affine, replica-anti-affine,
    deferring gracefully when no in-region host is healthy. *)

val replicas : int
(** Instances per service (2). *)

val vrf : string
val local_asn : int

val region_name : int -> string
(** ["r0"], ["r1"], … *)

val peer_name : int -> string
(** Node name of instance [i]'s external AS — the peer-visible surface
    the checkers watch. *)

val normalize_instances : int -> int
(** Rounds up to a multiple of {!replicas} (minimum one full service):
    a single-replica service would turn any host kill into a spurious
    [fleet_slo] "region lost all replicas" violation. *)

val ack_deadline_s : float
(** The shed deadline fleet instances run with (fraction
    {!degrade_frac} of the 90 s hold time) — feed it to
    {!Monitor.Checker.config.ack_deadline_s} when a campaign includes a
    regional store outage. *)

val degrade_frac : float
val hold_time_s : float

type instance = {
  id : string;  (** ["s007.1"] — also the Deploy/controller service id. *)
  service : string;  (** Replica group, ["s007"]. *)
  region : int;
  svc : Tensor.Deploy.service;
  peer : Tensor.Deploy.peer_as;
  mutable shed_at : Sim.Time.t option;
      (** Set while the region's store outage has this instance in
          degraded pass-through (maintained by the store probers). *)
}

type region = {
  rname : string;
  rhosts : int array;  (** Indices into [dep.hosts]. *)
  rstore : Store.Server.t;
  rstore_addr : Netsim.Addr.t;
}

type t = {
  dep : Tensor.Deploy.t;
  regions : region array;
  instances : instance array;
}

val build :
  ?seed:int ->
  ?ctrl_config:Orch.Controller.config ->
  hosts:int ->
  regions:int ->
  instances:int ->
  unit ->
  t
(** Builds the deployment, regions, per-region stores and all instances
    (emitting one [Fleet_placed] per instance), and installs the
    region-aware placement hook. Raises [Invalid_argument] when a region
    would get fewer than {!replicas} hosts. *)

val instance_host : instance -> string
(** Host name of the instance's current primary container. *)

val seed_routes : ?peer_prefixes:int -> ?svc_prefixes:int -> t -> unit
(** Originates disjoint prefixes at every peer AS and every instance
    (defaults: 2 each). *)

val wait_all_established : ?timeout:Sim.Time.span -> t -> bool
(** Runs the engine until every instance's session is Established
    (default timeout 120 s of simulated time). *)

val probe_period : Sim.Time.span

val arm_store_probers : t -> unit
(** One prober per region: on a store down-edge every Running instance
    of the region emits [Fleet_degraded]; on the up-edge each sheds
    instance emits [Fleet_rearmed] with its degraded dwell. *)
