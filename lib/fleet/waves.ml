open Sim
module Deploy = Tensor.Deploy

(* The rolling-upgrade wave planner: drain→upgrade→resume every
   instance of the fleet, at most [bound] concurrently, never both
   replicas of a service at once, and pausing launches while the
   controller has failure migrations in flight ("never upgrade into an
   incident"). Each drain is an ordinary planned NSR migration, so the
   remote ASes observe nothing. *)

type t = {
  topo : Topology.t;
  bound : int;
  mutable queue : int list;  (* instance indices not yet launched *)
  draining : (string, unit) Hashtbl.t;  (* services with a drain in flight *)
  mutable inflight : int;
  mutable launched : int;
  mutable completed : int;
  mutable cheated : bool;  (* exceed_wave_bound fired already *)
  mutable retry_armed : bool;
  on_complete : unit -> unit;
}

let inflight t = t.inflight
let completed t = t.completed
let finished t = t.completed = Array.length t.topo.Topology.instances

let retry_period = Time.ms 500

(* First queued instance whose service has no drain in flight; removes
   it from the queue (preserving order for the skipped prefix). *)
let take_launchable t =
  let rec go acc = function
    | [] -> None
    | i :: rest ->
        let inst = t.topo.Topology.instances.(i) in
        if Hashtbl.mem t.draining inst.Topology.service then
          go (i :: acc) rest
        else begin
          t.queue <- List.rev_append acc rest;
          Some inst
        end
  in
  go [] t.queue

let rec pump t =
  let dep = t.topo.Topology.dep in
  let eng = dep.Deploy.eng in
  if Orch.Controller.failure_migrations_active dep.Deploy.ctrl > 0 then
    (* Failure-aware pause: an incident owns the fleet's change budget;
       in-flight drains finish, no new one launches. *)
    arm_retry t eng
  else begin
    (* The seeded planner bug for the fleet_slo mutation test: launch
       exactly one drain past the bound, once. *)
    let allowed =
      if !Monitor.Faults.exceed_wave_bound && not t.cheated then t.bound + 1
      else t.bound
    in
    if t.inflight < allowed then begin
      match take_launchable t with
      | None -> if t.queue <> [] then arm_retry t eng
      | Some inst ->
          if t.inflight >= t.bound then t.cheated <- true;
          t.inflight <- t.inflight + 1;
          t.launched <- t.launched + 1;
          let wave = ((t.launched - 1) / t.bound) + 1 in
          Hashtbl.replace t.draining inst.Topology.service ();
          Telemetry.Bus.emit eng
            (Telemetry.Event.Upgrade_started
               {
                 instance = inst.Topology.id;
                 wave;
                 inflight = t.inflight;
                 bound = t.bound;
               });
          Deploy.planned_migration dep
            ~done_:(fun cont ->
              t.inflight <- t.inflight - 1;
              t.completed <- t.completed + 1;
              Hashtbl.remove t.draining inst.Topology.service;
              Telemetry.Bus.emit eng
                (Telemetry.Event.Upgrade_done
                   {
                     instance = inst.Topology.id;
                     wave;
                     container = Orch.Container.id cont;
                   });
              if finished t then t.on_complete () else pump t)
            inst.Topology.svc;
          pump t
    end
  end

and arm_retry t eng =
  if (not t.retry_armed) && t.queue <> [] then begin
    t.retry_armed <- true;
    ignore
      (Engine.schedule_after eng ~label:"fleet.wave_retry" retry_period
         (fun () ->
           t.retry_armed <- false;
           pump t))
  end

let start ?(on_complete = fun () -> ()) topo ~bound =
  let bound = max 1 bound in
  let t =
    {
      topo;
      bound;
      queue = List.init (Array.length topo.Topology.instances) Fun.id;
      draining = Hashtbl.create 16;
      inflight = 0;
      launched = 0;
      completed = 0;
      cheated = false;
      retry_armed = false;
      on_complete;
    }
  in
  pump t;
  t
