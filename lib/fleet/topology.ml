open Sim
module Deploy = Tensor.Deploy
module App = Tensor.App

(* Replication factor of every fleet service: two instances per replica
   group, always on distinct hosts of the same region, so a correlated
   single-host kill can never take a whole service down (the first
   fleet_slo invariant is checkable, not vacuous). *)
let replicas = 2

let vrf = "v0"
let local_asn = 64_900
let region_name r = Printf.sprintf "r%d" r
let peer_name i = Printf.sprintf "fpeer%03d" i
let instance_asn i = 65_100 + i

let instance_vip i =
  Netsim.Addr.of_string (Printf.sprintf "10.20%d.%d.%d" (i / 20_000) (i / 200 mod 100) (10 + (i mod 200)))

(* Unreachable-store shed deadline as a fraction of the negotiated 90 s
   hold time: 4.5 s, small enough that a multi-second regional store
   outage demonstrably sheds and re-arms within one campaign. *)
let degrade_frac = 0.05
let hold_time_s = 90.
let ack_deadline_s = degrade_frac *. hold_time_s

let normalize_instances n = if n <= 0 then replicas else (n + 1) / 2 * 2

type instance = {
  id : string;
  service : string;
  region : int;
  svc : Deploy.service;
  peer : Deploy.peer_as;
  mutable shed_at : Time.t option;
}

type region = {
  rname : string;
  rhosts : int array;
  rstore : Store.Server.t;
  rstore_addr : Netsim.Addr.t;
}

type t = {
  dep : Deploy.t;
  regions : region array;
  instances : instance array;
}

let instance_host inst =
  Orch.Container.host_name (Deploy.service_container inst.svc)

let build ?(seed = 42) ?ctrl_config ~hosts ~regions:nr ~instances:n () =
  if nr < 1 then invalid_arg "Fleet.Topology.build: regions < 1";
  if hosts < replicas * nr then
    invalid_arg "Fleet.Topology.build: need at least 2 hosts per region";
  let n = normalize_instances n in
  let dep = Deploy.build ~seed ~hosts ?ctrl_config () in
  let eng = dep.Deploy.eng in
  let base = hosts / nr and rem = hosts mod nr in
  let regions =
    Array.init nr (fun r ->
        let start = (r * base) + min r rem in
        let count = base + if r < rem then 1 else 0 in
        let rhosts = Array.init count (fun k -> start + k) in
        Array.iter
          (fun hi ->
            Orch.Controller.set_host_region dep.Deploy.ctrl
              ~host:(Orch.Host.name dep.Deploy.hosts.(hi))
              ~region:(region_name r))
          rhosts;
        (* Every region runs its own store server on the fabric: a
           regional store outage is one [Node.set_up], and only that
           region's instances shed. *)
        let node =
          Netsim.Network.add_node dep.Deploy.net
            (Printf.sprintf "store-%s" (region_name r))
        in
        let _, fabric_side, _ =
          Netsim.Network.connect dep.Deploy.net ~delay:(Time.us 100)
            dep.Deploy.fabric node
        in
        Netsim.Node.add_route node
          (Netsim.Addr.prefix_of_string "0.0.0.0/0")
          fabric_side;
        let rstore = Store.Server.create node in
        {
          rname = region_name r;
          rhosts;
          rstore;
          rstore_addr = Store.Server.addr rstore;
        })
  in
  let instances =
    Array.init n (fun i ->
        let s = i / replicas in
        let k = i mod replicas in
        let r = s mod nr in
        let reg = regions.(r) in
        let service = Printf.sprintf "s%03d" s in
        let id = Printf.sprintf "%s.%d" service k in
        (* Round-robin the region's hosts in replica pairs: the two
           replicas of a service always land on distinct hosts. *)
        let slot = s / nr in
        let hn = Array.length reg.rhosts in
        let host_idx = reg.rhosts.(((replicas * slot) + k) mod hn) in
        let pa = Deploy.add_peer_as dep ~asn:(instance_asn i) (peer_name i) in
        ignore
          (Deploy.peer_expects pa ~vrf ~vip:(instance_vip i) ~local_asn);
        let spec =
          App.vrf_spec ~vrf ~vip:(instance_vip i)
            ~peer_addr:pa.Deploy.pa_addr ~peer_asn:(instance_asn i) ()
        in
        let svc =
          Deploy.deploy_service dep ~primary_host:host_idx
            ~backup_host:((host_idx + 1) mod hosts)
            ~store_resilient:true ~degrade_frac
            ~store_addr:reg.rstore_addr ~id ~local_asn [ spec ]
        in
        Telemetry.Bus.emit eng
          (Telemetry.Event.Fleet_placed
             {
               service;
               instance = id;
               region = reg.rname;
               host = Orch.Host.name dep.Deploy.hosts.(host_idx);
               container = Orch.Container.id (Deploy.service_container svc);
             });
        { id; service; region = r; svc; peer = pa; shed_at = None })
  in
  let t = { dep; regions; instances } in
  let by_id = Hashtbl.create (2 * n) in
  Array.iteri (fun i inst -> Hashtbl.replace by_id inst.id i) instances;
  (* Region-affine, replica-anti-affine placement for every migration:
     the controller's pick_host does the health/load arithmetic; the
     fleet adds "stay in your region" and "never share a host with your
     sibling replica". *)
  Deploy.set_service_picker dep (fun ~service_id ~avoid ->
      match Hashtbl.find_opt by_id service_id with
      | None -> Orch.Controller.pick_host dep.Deploy.ctrl ~avoid ()
      | Some i ->
          let inst = instances.(i) in
          let siblings =
            Array.fold_left
              (fun acc sib ->
                if
                  String.equal sib.service inst.service
                  && not (String.equal sib.id inst.id)
                then instance_host sib :: acc
                else acc)
              [] instances
          in
          Orch.Controller.pick_host dep.Deploy.ctrl
            ~region:(region_name inst.region)
            ~avoid:(List.rev_append siblings avoid)
            ());
  t

let seed_routes ?(peer_prefixes = 2) ?(svc_prefixes = 2) t =
  Array.iteri
    (fun i inst ->
      Bgp.Speaker.originate inst.peer.Deploy.pa_speaker ~vrf
        (Workload.Prefixes.distinct_from
           ~base:(1_000_000 + (1_000 * i))
           peer_prefixes);
      match App.speaker (Deploy.service_app inst.svc) with
      | Some spk ->
          Bgp.Speaker.originate spk ~vrf
            (Workload.Prefixes.distinct_from
             ~base:(5_000_000 + (1_000 * i))
             svc_prefixes)
      | None -> ())
    t.instances

let wait_all_established ?(timeout = Time.sec 120) t =
  let eng = t.dep.Deploy.eng in
  let deadline = Time.add (Engine.now eng) timeout in
  let ok () =
    Array.for_all
      (fun inst -> App.session_established (Deploy.service_app inst.svc) ~vrf)
      t.instances
  in
  let rec loop () =
    if ok () then true
    else if Engine.now eng >= deadline then false
    else begin
      Engine.run_until eng
        (min deadline (Time.add (Engine.now eng) (Time.ms 250)));
      loop ()
    end
  in
  loop ()

(* One store prober per region, on the fleet telemetry cadence: on the
   down edge every Running instance of the region sheds
   ([Fleet_degraded]); on the up edge each sheds instance re-arms
   ([Fleet_rearmed]) with its degraded dwell. The per-event body is
   allocation-light (registered in the lint hot-path manifest). *)
let probe_period = Time.ms 500

let arm_store_probers t =
  let eng = t.dep.Deploy.eng in
  Array.iteri
    (fun r reg ->
      let was_down = ref false in
      ignore
        (Engine.every eng ~label:"fleet.store_probe" probe_period (fun () ->
             let down = not (Netsim.Node.is_up (Store.Server.node reg.rstore)) in
             if down <> !was_down then begin
               was_down := down;
               Array.iter
                 (fun inst ->
                   if inst.region = r then
                     if down then begin
                       if
                         inst.shed_at = None
                         && Orch.Container.state
                              (Deploy.service_container inst.svc)
                            = Orch.Container.Running
                       then begin
                         inst.shed_at <- Some (Engine.now eng);
                         Telemetry.Bus.emit eng
                           (Telemetry.Event.Fleet_degraded
                              { instance = inst.id; region = reg.rname })
                       end
                     end
                     else
                       match inst.shed_at with
                       | Some since ->
                           inst.shed_at <- None;
                           Telemetry.Bus.emit eng
                             (Telemetry.Event.Fleet_rearmed
                                {
                                  instance = inst.id;
                                  region = reg.rname;
                                  degraded_s =
                                    Time.to_sec_f
                                      (Time.diff (Engine.now eng) since);
                                })
                       | None -> ())
                 t.instances
             end)))
    t.regions
