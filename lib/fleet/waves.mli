(** The rolling-upgrade wave planner.

    Drains every fleet instance through an ordinary planned NSR
    migration ({!Tensor.Deploy.planned_migration}), at most [bound]
    concurrently, never both replicas of one service at once, and
    pausing new launches while the controller reports failure
    migrations in flight ({!Orch.Controller.failure_migrations_active})
    — an incident always preempts the upgrade. Each drain emits
    [Upgrade_started] (with the planner's in-flight count and the
    bound) and [Upgrade_done]; the [fleet_slo] checker recomputes the
    in-flight count independently and flags any excursion past the
    bound. *)

type t

val start : ?on_complete:(unit -> unit) -> Topology.t -> bound:int -> t
(** Starts the wave over every instance, in instance order ([bound] is
    clamped to at least 1). [on_complete] fires when the last drain's
    replacement is back under controller monitoring. *)

val inflight : t -> int
val completed : t -> int
val finished : t -> bool
