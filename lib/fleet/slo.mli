(** Fleet-wide SLO aggregation over the telemetry bus.

    A live {!Telemetry.Bus} subscriber (like the invariant checkers)
    that folds fleet events into: per-region availability (instance-up
    seconds over the observation horizon), the failover-time
    distribution ([Failure_detected] → [Migration_done] per instance),
    degraded-instance accounting ([Fleet_degraded]/[Fleet_rearmed]),
    rolling-upgrade progress, and deferred-migration counts. Purely
    observational: installing it changes no replay digest. *)

type t

val install : unit -> t
(** Subscribes to the firehose; only entries emitted afterwards (and
    while {!Telemetry.Gate} is on) are aggregated. *)

type region_report = {
  rr_name : string;
  rr_instances : int;
  rr_availability : float;  (** Mean instance uptime over the horizon. *)
  rr_degraded_now : int;
  rr_degraded_peak : int;
  rr_degraded_total : int;
}

type report = {
  horizon_s : float;
  region_rows : region_report list;  (** Sorted by region name. *)
  failover_s : float list;  (** Ascending. *)
  upgrades_started : int;
  upgrades_done : int;
  upgrade_inflight_peak : int;
  deferred : int;
}

val finish : t -> report
(** Unsubscribes, closes open uptime intervals at the last observed
    instant, and renders the aggregate. Call once per run. *)

val percentile : float list -> float -> float
(** [percentile sorted p] with [p] in [0, 1]; 0. on the empty list. *)

val to_text : report -> string
val to_json : report -> string
