type result = {
  minimal : Descriptor.t;
  outcome : Runner.outcome;
  runs_used : int;
  removed_faults : int;
}

let clamp_vrfs peers faults =
  List.map
    (fun (f : Descriptor.fault) ->
      let cl v = min v (peers - 1) in
      match f with
      | Descriptor.Flap r -> Descriptor.Flap { r with vrf = cl r.vrf }
      | Descriptor.Loss r -> Descriptor.Loss { r with vrf = cl r.vrf }
      | Descriptor.Bfd_perturb r ->
          Descriptor.Bfd_perturb { r with vrf = cl r.vrf }
      | Descriptor.Peer_rst r -> Descriptor.Peer_rst { r with vrf = cl r.vrf }
      | Descriptor.Peer_cease r ->
          Descriptor.Peer_cease { r with vrf = cl r.vrf }
      | Descriptor.Kill _ | Descriptor.Planned _ | Descriptor.Heal _
      | Descriptor.Store_crash _ | Descriptor.Store_partition _
      | Descriptor.Store_slow _ | Descriptor.Host_kill _
      | Descriptor.Region_store_outage _ | Descriptor.Rolling_upgrade _ -> f)
    faults

(* Topology/workload reductions, tried in order once the fault list is
   minimal. Each returns [None] when it would not change the
   descriptor. *)
let reductions : (Descriptor.t -> Descriptor.t option) list =
  [
    (fun d ->
      if d.Descriptor.peers > 1 then
        Some
          {
            d with
            Descriptor.peers = 1;
            faults = clamp_vrfs 1 d.Descriptor.faults;
          }
      else None);
    (fun d ->
      if d.Descriptor.hosts > 3 then Some { d with Descriptor.hosts = 3 }
      else None);
    (fun d ->
      if d.Descriptor.churn > 0 then Some { d with Descriptor.churn = 0 }
      else None);
    (fun d ->
      if d.Descriptor.peer_prefixes > 20 then
        Some { d with Descriptor.peer_prefixes = 20 }
      else None);
    (fun d ->
      if d.Descriptor.svc_prefixes > 10 then
        Some { d with Descriptor.svc_prefixes = 10 }
      else None);
    (fun d ->
      let last =
        List.fold_left
          (fun acc f -> max acc (Descriptor.fault_at f))
          0 d.Descriptor.faults
      in
      let w = max 1_000 (last + 1_000) in
      if w < d.Descriptor.window_ms then Some { d with Descriptor.window_ms = w }
      else None);
  ]

let minimize ?(max_runs = 48) ?(failing = fun o -> not (Runner.ok o)) d0 =
  let runs = ref 0 in
  let attempt d =
    if !runs >= max_runs then None
    else begin
      incr runs;
      let o = Runner.run d in
      if failing o then Some o else None
    end
  in
  match attempt d0 with
  | None -> None (* the original passes (or max_runs = 0): nothing to do *)
  | Some o0 ->
      let best = ref (d0, o0) in
      let try_candidate d =
        match attempt d with
        | Some o ->
            best := (d, o);
            true
        | None -> false
      in
      (* ddmin-lite over the fault list: remove windows of shrinking
         size; on success rescan at the same size. *)
      let rec pass size =
        if size >= 1 then begin
          let changed = ref true in
          while !changed && !runs < max_runs do
            changed := false;
            let faults = (fst !best).Descriptor.faults in
            let n = List.length faults in
            let i = ref 0 in
            while (not !changed) && !i + size <= n do
              let keep =
                List.filteri
                  (fun j _ -> j < !i || j >= !i + size)
                  faults
              in
              if
                keep <> faults
                && try_candidate { (fst !best) with Descriptor.faults = keep }
              then changed := true
              else incr i
            done
          done;
          pass (size / 2)
        end
      in
      pass (max 1 (List.length d0.Descriptor.faults / 2));
      (* Topology/workload reduction. *)
      List.iter
        (fun reduce ->
          match reduce (fst !best) with
          | Some d -> ignore (try_candidate d)
          | None -> ())
        reductions;
      let minimal, outcome = !best in
      Some
        {
          minimal;
          outcome;
          runs_used = !runs;
          removed_faults =
            List.length d0.Descriptor.faults
            - List.length minimal.Descriptor.faults;
        }
