(** The committed regression corpus.

    Each corpus entry is one file holding one descriptor line (see
    {!Descriptor.to_string}) plus optional [#] comment lines. Entries
    are shrunk repros of bugs that have since been fixed: replaying the
    corpus must be all-green, and replaying any entry twice must yield
    identical telemetry digests. CI replays the corpus on every PR and
    the nightly fuzz job appends new shrunk repros as artifacts. *)

val entry_extension : string
(** [".chaos"] *)

val load_file : string -> (Descriptor.t, string) result
(** Parses the first non-comment, non-blank line. *)

val load_dir : string -> (string * (Descriptor.t, string) result) list
(** Every [*.chaos] file in the directory, sorted by name. Missing
    directory is an empty corpus. *)

val save : dir:string -> ?comment:string -> Descriptor.t -> string
(** Writes [<dir>/seed<seed>-<fingerprint>.chaos] (creating [dir] if
    needed) and returns the path. [comment] lines are prefixed with
    [# ]. *)

type replay = {
  name : string;
  outcome : Runner.outcome option;  (** [None] on a parse error. *)
  parse_error : string option;
  deterministic : bool;  (** Two runs produced identical digests. *)
}

val replay_ok : replay -> bool

val replay_file : string -> replay
(** Runs the entry twice: green means no violations/errors on either
    run {e and} digest equality across the two. *)

val replay_dir : string -> replay list
