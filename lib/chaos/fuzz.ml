type failure = {
  index : int;
  outcome : Runner.outcome;
  shrunk : Shrink.result option;
  saved : string option;
}

type campaign = {
  runs : int;
  seed : int;
  failures : failure list;
  events_total : int;
  pool : Par.Pool.stats;
}

let campaign_ok c = c.failures = []

(* Each run is self-contained (generate → run → shrink all derive from
   [(seed, i)] alone and every library keeps its mutable state
   domain-local), so the campaign fans runs out across domains and
   merges in index order. Only corpus writes stay on the calling
   domain, ordered by index, so the saved-file set and the campaign
   record are byte-identical from --jobs 1 to --jobs N. *)
let run ?progress ?(shrink = false) ?corpus_dir ?(jobs = 1) ~runs ~seed () =
  let task i =
    let d = Descriptor.generate ~seed:(Descriptor.sub_seed ~seed i) in
    let o = Runner.run d in
    let shrunk =
      if shrink && not (Runner.ok o) then Shrink.minimize d else None
    in
    (o, shrunk)
  in
  let progress =
    match progress with
    | Some f -> Some (fun i (o, _) -> f i o)
    | None -> None
  in
  let results, pool = Par.Pool.run ~jobs ?progress runs task in
  let failures = ref [] in
  let events_total = ref 0 in
  Array.iteri
    (fun i (o, shrunk) ->
      events_total := !events_total + o.Runner.events;
      if not (Runner.ok o) then begin
        let saved =
          match (shrunk, corpus_dir) with
          | Some r, Some dir ->
              let comment =
                Printf.sprintf
                  "shrunk repro: campaign seed %d run %d (%d faults removed)"
                  seed i r.Shrink.removed_faults
              in
              Some (Corpus.save ~dir ~comment r.Shrink.minimal)
          | _ -> None
        in
        failures := { index = i; outcome = o; shrunk; saved } :: !failures
      end)
    results;
  {
    runs;
    seed;
    failures = List.rev !failures;
    events_total = !events_total;
    pool;
  }
