type failure = {
  index : int;
  outcome : Runner.outcome;
  shrunk : Shrink.result option;
  saved : string option;
}

type campaign = {
  runs : int;
  seed : int;
  failures : failure list;
  events_total : int;
}

let campaign_ok c = c.failures = []

let run ?progress ?(shrink = false) ?corpus_dir ~runs ~seed () =
  let failures = ref [] in
  let events_total = ref 0 in
  for i = 0 to runs - 1 do
    let d = Descriptor.generate ~seed:(Descriptor.sub_seed ~seed i) in
    let o = Runner.run d in
    events_total := !events_total + o.Runner.events;
    (match progress with Some f -> f i o | None -> ());
    if not (Runner.ok o) then begin
      let shrunk = if shrink then Shrink.minimize d else None in
      let saved =
        match (shrunk, corpus_dir) with
        | Some r, Some dir ->
            let comment =
              Printf.sprintf
                "shrunk repro: campaign seed %d run %d (%d faults removed)"
                seed i r.Shrink.removed_faults
            in
            Some (Corpus.save ~dir ~comment r.Shrink.minimal)
        | _ -> None
      in
      failures := { index = i; outcome = o; shrunk; saved } :: !failures
    end
  done;
  { runs; seed; failures = List.rev !failures; events_total = !events_total }
