(** Fuzz campaigns: generate → run → (on failure) shrink → save.

    Run [i] of a campaign seeded with [S] executes the descriptor
    [Descriptor.generate ~seed:(Descriptor.sub_seed ~seed:S i)], so any
    individual failure is reproducible from [(S, i)] alone — and the
    shrunk one-line descriptor makes even that indirection unnecessary. *)

type failure = {
  index : int;  (** Campaign run index. *)
  outcome : Runner.outcome;
  shrunk : Shrink.result option;  (** Present when shrinking was on. *)
  saved : string option;  (** Corpus path the repro was written to. *)
}

type campaign = {
  runs : int;
  seed : int;
  failures : failure list;
  events_total : int;
  pool : Par.Pool.stats;  (** Domain-pool accounting for the campaign. *)
}

val campaign_ok : campaign -> bool

val run :
  ?progress:(int -> Runner.outcome -> unit) ->
  ?shrink:bool ->
  ?corpus_dir:string ->
  ?jobs:int ->
  runs:int ->
  seed:int ->
  unit ->
  campaign
(** [shrink] (default false) minimizes each failure; [corpus_dir], when
    set together with [shrink], writes each minimal repro as a corpus
    entry. [progress] is called after every run, in run order.

    [jobs] (default 1) spreads runs across that many OCaml domains via
    {!Par.Pool}. The campaign record, every per-run digest, the
    [progress] call order and any corpus files written are
    byte-identical whatever [jobs] is — parallelism buys wall time
    only. *)
