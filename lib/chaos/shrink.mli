(** Greedy minimization of failing descriptors.

    Given a descriptor whose run fails (violations, errors, or a
    caller-supplied predicate), [minimize] searches for a smaller
    descriptor that still fails: first ddmin-style removal of fault
    chunks and single faults, then topology/workload reduction (fewer
    peers, fewer prefixes, no churn). Every candidate is re-executed, so
    the result is a verified minimal repro, ready to be committed to the
    corpus as one line. *)

type result = {
  minimal : Descriptor.t;
  outcome : Runner.outcome;  (** The failing outcome of [minimal]. *)
  runs_used : int;
  removed_faults : int;  (** Faults dropped relative to the input. *)
}

val minimize :
  ?max_runs:int ->
  ?failing:(Runner.outcome -> bool) ->
  Descriptor.t ->
  result option
(** [minimize d] re-runs [d] first; returns [None] if it does not fail
    (nothing to shrink). [failing] defaults to [fun o -> not (Runner.ok
    o)]; [max_runs] (default 48) bounds the total number of candidate
    executions, original check included. *)
