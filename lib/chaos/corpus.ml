let entry_extension = ".chaos"

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec next () =
        match input_line ic with
        | line ->
            let line = String.trim line in
            if line = "" || String.length line > 0 && line.[0] = '#' then
              next ()
            else Descriptor.of_string line
        | exception End_of_file ->
            Error (Printf.sprintf "%s: no descriptor line" path)
      in
      next ())

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f entry_extension)
    |> List.sort String.compare
    |> List.map (fun f -> (f, load_file (Filename.concat dir f)))

let save ~dir ?comment d =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let line = Descriptor.to_string d in
  let fingerprint =
    String.sub (Digest.to_hex (Digest.string line)) 0 8
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "seed%d-%s%s" d.Descriptor.seed fingerprint
         entry_extension)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      (match comment with
      | Some c ->
          String.split_on_char '\n' c
          |> List.iter (fun l -> output_string oc ("# " ^ l ^ "\n"))
      | None -> ());
      output_string oc (line ^ "\n"));
  path

type replay = {
  name : string;
  outcome : Runner.outcome option;
  parse_error : string option;
  deterministic : bool;
}

let replay_ok r =
  match (r.outcome, r.parse_error) with
  | Some o, None -> Runner.ok o && r.deterministic
  | _ -> false

let replay_file path =
  let name = Filename.basename path in
  match load_file path with
  | Error e ->
      { name; outcome = None; parse_error = Some e; deterministic = false }
  | Ok d ->
      let o1 = Runner.run d in
      let o2 = Runner.run d in
      {
        name;
        outcome = Some o2;
        parse_error = None;
        deterministic = String.equal o1.Runner.digest o2.Runner.digest;
      }

let replay_dir dir =
  load_dir dir
  |> List.map (fun (name, _) -> replay_file (Filename.concat dir name))
