(** Chaos scenario descriptors.

    A descriptor is the complete, replayable identity of one fuzz run:
    the engine seed, the randomized topology/workload parameters, and
    the fault schedule. Everything the runner does is a deterministic
    function of the descriptor, so a one-line serialization (see
    {!to_string}) is a full repro — that is what the committed [corpus/]
    stores and what CI replays.

    All quantities are integers (times in milliseconds, probabilities
    and factors in percent) so that [of_string (to_string d) = Ok d]
    holds exactly, with no float round-tripping. *)

type kill_kind = Kill_app | Kill_container | Kill_host | Kill_host_network

type fault =
  | Kill of { at_ms : int; kind : kill_kind }
      (** Inject the corresponding failure on the service's current
          primary (app crash / container kill / host kill / host network
          partition). *)
  | Planned of { at_ms : int }  (** Planned switchover (§4.4). *)
  | Heal of { at_ms : int }
      (** [Orch.Host.network_recover] every host partitioned by an
          earlier [Kill Kill_host_network] (the split-brain probe). *)
  | Flap of { at_ms : int; vrf : int; dur_ms : int }
      (** Peer link down for [dur_ms] (drops in-flight packets). *)
  | Loss of { at_ms : int; vrf : int; dur_ms : int; loss_pct : int }
      (** Random loss burst on the peer link. *)
  | Bfd_perturb of { at_ms : int; vrf : int; factor_pct : int }
      (** Rescale the service-side BFD transmit interval to
          [factor_pct]% of its current value. *)
  | Peer_rst of { at_ms : int; vrf : int }
      (** The remote AS aborts the TCP connection (middlebox RST). *)
  | Peer_cease of { at_ms : int; vrf : int }
      (** The remote AS administratively stops the session (Cease
          NOTIFICATION), then re-enables it 1 s later. *)
  | Store_crash of { at_ms : int; dur_ms : int }
      (** The primary store server dies losing all RAM (no-persistence
          Redis). [dur_ms = 0] is a permanent crash — the deployment gets
          a synchronous replica and clients fail over to it; otherwise
          the primary restarts {e empty} after [dur_ms] and the service
          re-arms replication under a fresh epoch (degraded pass-through
          first, when the outage outlives the held-ACK deadline).
          Token: [store_crash@T] or [store_crash@T+DUR]. *)
  | Store_partition of { at_ms : int; dur_ms : int }
      (** The store server's network goes down for [dur_ms] (RAM
          preserved). Token: [store_partition@T+DUR]. *)
  | Store_slow of { at_ms : int; dur_ms : int; factor_pct : int }
      (** Store operation costs scaled to [factor_pct]% (in
          [\[101, 10000\]]) for [dur_ms] — held-ACK latency stress
          without unreachability. Token: [store_slow@T+DUR:FACTOR]. *)
  | Host_kill of { at_ms : int }
      (** Correlated whole-host kill. At fleet scale every co-located
          container (and its BFD sessions) dies at once; the
          single-instance runner maps it to a host failure of the
          service's primary. Token: [host_kill@T]. *)
  | Region_store_outage of { at_ms : int; dur_ms : int }
      (** A region's store becomes unreachable for [dur_ms]: every
          instance in the region sheds and re-arms together. The
          single-instance runner maps it to a store partition.
          Token: [region_store_outage@T+DUR]. *)
  | Rolling_upgrade of { at_ms : int; bound : int }
      (** Fleet-wide rolling upgrade starting at [at_ms] with at most
          [bound] concurrent drain→upgrade→resume moves (bound in
          [\[1, 64\]]). The single-instance runner maps it to a planned
          switchover. Token: [rolling_upgrade@T:BOUND]. *)

type t = {
  seed : int;  (** Engine seed for the deployment. *)
  peers : int;  (** Peering ASes = VRFs of the service. *)
  hosts : int;
  peer_prefixes : int;  (** Routes each peer originates. *)
  svc_prefixes : int;  (** Routes the service originates per VRF. *)
  churn : int;  (** Announce/withdraw cycles per peer during the window. *)
  delay_us : int;  (** Peer link one-way delay. *)
  window_ms : int;  (** Active fault window after convergence. *)
  settle_ms : int;  (** Quiescence before end-state checks. *)
  faults : fault list;  (** Sorted by time. *)
}

val fault_at : fault -> int
(** Injection time, ms from the start of the fault window. *)

val fault_kind_name : fault -> string
(** Stable class name: [kill.app], [flap], [rst], ... *)

val fault_to_string : fault -> string
(** The fault's serialized token, e.g. [host_kill@5000]. *)

val generate : seed:int -> t
(** The seeded generator: parameters and fault schedule are drawn from a
    {!Sim.Rng} stream derived from [seed] (which also becomes the engine
    seed). Generated schedules stay inside the envelope where every
    armed checker is a valid oracle — e.g. link flaps are bounded below
    the BFD detection window, and heavy faults (kills, planned
    switchovers) are spaced far enough apart that migrations do not
    overlap except for the deliberate planned+kill overlap case. *)

val sub_seed : seed:int -> int -> int
(** [sub_seed ~seed i] derives the descriptor seed of run [i] of a fuzz
    campaign seeded with [seed] (SplitMix64 finalizer). *)

val to_string : t -> string
(** One line, no newline: ["chaos1 seed=.. peers=.. ... faults=.."]. *)

val of_string : string -> (t, string) result

val faults_of_string : ?window_ms:int -> string -> (fault list, string) result
(** Parses a bare comma-separated fault-token list (the [faults=]
    payload alone — what [tensor-cli fleet --campaign] takes) and
    validates it under the same structural rules as a full descriptor.
    [window_ms] bounds fault times; when omitted it is sized to admit
    every parsed token. [""] and ["-"] are the empty schedule. *)

val equal : t -> t -> bool

val validate : t -> (unit, string) result
(** Structural sanity: positive counts, fault vrf indices in range,
    times within the window, and no kill/planned fault inside a store
    outage window (the store is the recovery substrate — such a
    migration can never complete). The fleet tokens obey the same
    rules: [host_kill] and [rolling_upgrade] are rejected inside any
    store outage window (including [region_store_outage]), and two
    [rolling_upgrade] waves in one schedule are always overlapping —
    a wave owns the fleet until its schedule-dependent completion — so
    they are rejected too. [of_string] applies it; [generate] always
    satisfies it. *)
