(** Execute one chaos descriptor under the full invariant-oracle set.

    A run builds the Figure 3 deployment from the descriptor's seed and
    topology, installs every {!Monitor.Checker} invariant plus end-state
    RIB-digest cross-checks, replays the fault schedule, and returns the
    surviving violations together with an MD5 digest of the telemetry
    event stream. The digest is the replay-determinism oracle: running
    the same descriptor twice in one process must produce byte-identical
    telemetry JSONL.

    Fault classes that deliberately produce peer-visible behaviour
    disable exactly the checkers they invalidate (see
    {!disabled_checkers}); everything else stays armed. *)

type outcome = {
  desc : Descriptor.t;
  violations : Monitor.Checker.violation list;
      (** After the applicability filter. *)
  errors : string list;
      (** Setup failures, mid-run exceptions, direct RIB-digest
          mismatches. Any entry means the run failed. *)
  disabled : string list;  (** Checkers excluded for this fault mix. *)
  digest : string;  (** MD5 (hex) of the telemetry JSONL at end of run. *)
  events : int;  (** Entries observed by the checker set. *)
}

val ok : outcome -> bool
(** No violations and no errors. *)

val disabled_checkers : Descriptor.t -> string list
(** The applicability matrix: [rst]/[cease] faults disable
    [no_peer_visible_reset] (the remote AS resets the session on
    purpose); [cease] additionally disables [route_flap_absence] (an
    administrative Cease is not GR-eligible, so the peer legitimately
    drops the learned routes until re-establishment). *)

val run : Descriptor.t -> outcome
(** Never raises: exceptions escaping the simulation are reported as
    [errors]. Resets global telemetry state on entry and disables the
    gate on exit. *)

val summary : outcome -> string
(** One-paragraph human-readable failure/success description. *)
