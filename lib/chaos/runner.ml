open Sim
module Deploy = Tensor.Deploy
module App = Tensor.App

type outcome = {
  desc : Descriptor.t;
  violations : Monitor.Checker.violation list;
  errors : string list;
  disabled : string list;
  digest : string;
  events : int;
}

let ok o = o.violations = [] && o.errors = []

let service_id = "chaos"
let local_asn = 64_900
let vrf_name i = Printf.sprintf "v%d" i
let peer_name i = Printf.sprintf "peerAS%d" i
let peer_asn i = 65_010 + i
let vip i = Netsim.Addr.of_string (Printf.sprintf "203.0.113.%d" (10 + i))

(* Store faults deploy the survival machinery (retrying clients, a
   replica for the permanent crash, the held-ACK deadline) and arm the
   degraded_mode_exclusion oracle; they disable nothing. *)
let has_store_fault (d : Descriptor.t) =
  List.exists
    (function
      | Descriptor.Store_crash _ | Descriptor.Store_partition _
      | Descriptor.Store_slow _ | Descriptor.Region_store_outage _ -> true
      | _ -> false)
    d.Descriptor.faults

let has_permanent_store_crash (d : Descriptor.t) =
  List.exists
    (function Descriptor.Store_crash { dur_ms = 0; _ } -> true | _ -> false)
    d.Descriptor.faults

(* Fraction of the negotiated hold time (90 s in every chaos deployment)
   after which unachievable durability flips to degraded pass-through:
   13.5 s — orders of magnitude past any healthy-store hold time, well
   inside the peer's 90 s hold timer even when the blocked write is a
   keepalive at the 30 s mark (30 + 13.5 < 90). *)
let degrade_frac = 0.15
let hold_time_s = 90.

let disabled_checkers (d : Descriptor.t) =
  let has p = List.exists p d.Descriptor.faults in
  let rst = has (function Descriptor.Peer_rst _ -> true | _ -> false) in
  let cease = has (function Descriptor.Peer_cease _ -> true | _ -> false) in
  (* A peer-initiated reset is a legal session drop even while degraded:
     the exclusion oracle only polices resets the *store outage* caused. *)
  (if rst || cease then [ "no_peer_visible_reset"; "degraded_mode_exclusion" ]
   else [])
  @ if cease then [ "route_flap_absence" ] else []

(* --- Scenario assembly ---------------------------------------------------- *)

type ctx = {
  dep : Deploy.t;
  svc : Deploy.service;
  peers : (Deploy.peer_as * Bgp.Speaker.peer) array;
}

let build (d : Descriptor.t) =
  let store = has_store_fault d in
  let dep =
    Deploy.build ~seed:d.Descriptor.seed ~hosts:d.Descriptor.hosts
      ~store_replica:(has_permanent_store_crash d) ()
  in
  let peers =
    Array.init d.Descriptor.peers (fun i ->
        let pa =
          Deploy.add_peer_as dep
            ~link_delay:(Time.us d.Descriptor.delay_us)
            ~asn:(peer_asn i) (peer_name i)
        in
        let ph =
          Deploy.peer_expects pa ~vrf:(vrf_name i) ~vip:(vip i) ~local_asn
        in
        (pa, ph))
  in
  let specs =
    Array.to_list
      (Array.mapi
         (fun i ((pa : Deploy.peer_as), _) ->
           App.vrf_spec ~vrf:(vrf_name i) ~vip:(vip i)
             ~peer_addr:pa.Deploy.pa_addr ~peer_asn:(peer_asn i) ())
         peers)
  in
  let svc =
    Deploy.deploy_service dep ~id:service_id ~local_asn
      ~store_resilient:store
      ~degrade_frac:(if store then degrade_frac else 0.)
      specs
  in
  (* Only store-fault runs probe the store: the probe draws jittered
     heartbeat timers from the engine RNG, so arming it unconditionally
     would perturb every pinned replay digest. *)
  if store then
    Orch.Controller.register_store dep.Deploy.ctrl ~addr:dep.Deploy.store_addr;
  { dep; svc; peers }

let seed_routes (d : Descriptor.t) ctx =
  Array.iteri
    (fun i ((pa : Deploy.peer_as), _) ->
      Bgp.Speaker.originate pa.Deploy.pa_speaker ~vrf:(vrf_name i)
        (Workload.Prefixes.distinct_from
           ~base:(100_000 * (i + 1))
           d.Descriptor.peer_prefixes))
    ctx.peers;
  match App.speaker (Deploy.service_app ctx.svc) with
  | Some spk ->
      Array.iteri
        (fun i _ ->
          Bgp.Speaker.originate spk ~vrf:(vrf_name i)
            (Workload.Prefixes.distinct_from
               ~base:(500_000 + (10_000 * i))
               d.Descriptor.svc_prefixes))
        ctx.peers
  | None -> ()

(* Announce/withdraw cycles from the peers during the fault window. Only
   the peers churn: withdrawals are observed at the receiving node, so
   peer-originated churn never counts against [route_flap_absence]
   (which watches the remote AS surface). *)
let schedule_churn (d : Descriptor.t) ctx =
  let eng = ctx.dep.Deploy.eng in
  if d.Descriptor.churn > 0 then
    Array.iteri
      (fun i ((pa : Deploy.peer_as), _) ->
        for j = 0 to d.Descriptor.churn - 1 do
          let at = d.Descriptor.window_ms * (j + 1) / (d.Descriptor.churn + 1) in
          let prefixes =
            Workload.Prefixes.distinct_from
              ~base:(800_000 + (10_000 * i) + (100 * j))
              20
          in
          ignore
            (Engine.schedule_after eng (Time.ms at) (fun () ->
                 Bgp.Speaker.originate pa.Deploy.pa_speaker ~vrf:(vrf_name i)
                   prefixes));
          ignore
            (Engine.schedule_after eng
               (Time.ms (at + 2_000))
               (fun () ->
                 Bgp.Speaker.withdraw_origin pa.Deploy.pa_speaker
                   ~vrf:(vrf_name i) prefixes))
        done)
      ctx.peers

let schedule_fault ctx partitioned (f : Descriptor.fault) =
  let dep = ctx.dep in
  let eng = dep.Deploy.eng in
  let peer_link i =
    let (pa : Deploy.peer_as), _ = ctx.peers.(i) in
    Netsim.Network.link_between dep.Deploy.net dep.Deploy.fabric
      pa.Deploy.pa_node
  in
  let apply () =
    match f with
    | Descriptor.Kill { kind; _ } -> (
        match kind with
        | Descriptor.Kill_app -> Deploy.inject_app_failure dep ctx.svc
        | Descriptor.Kill_container ->
            Deploy.inject_container_failure dep ctx.svc
        | Descriptor.Kill_host -> Deploy.inject_host_failure dep ctx.svc
        | Descriptor.Kill_host_network ->
            let name =
              Orch.Container.host_name (Deploy.service_container ctx.svc)
            in
            Array.iter
              (fun h ->
                if String.equal (Orch.Host.name h) name then
                  partitioned := h :: !partitioned)
              dep.Deploy.hosts;
            Deploy.inject_host_network_failure dep ctx.svc)
    | Descriptor.Planned _ -> Deploy.planned_migration dep ctx.svc
    | Descriptor.Heal _ ->
        List.iter Orch.Host.network_recover !partitioned;
        partitioned := []
    | Descriptor.Flap { vrf; dur_ms; _ } -> (
        match peer_link vrf with
        | Some l -> Netsim.Link.fail_for l (Time.ms dur_ms)
        | None -> ())
    | Descriptor.Loss { vrf; dur_ms; loss_pct; _ } -> (
        match peer_link vrf with
        | Some l ->
            Netsim.Link.set_loss l (float_of_int loss_pct /. 100.);
            ignore
              (Engine.schedule_after eng (Time.ms dur_ms) (fun () ->
                   Netsim.Link.set_loss l 0.))
        | None -> ())
    | Descriptor.Bfd_perturb { vrf; factor_pct; _ } -> (
        match
          App.bfd_session (Deploy.service_app ctx.svc) ~vrf:(vrf_name vrf)
        with
        | Some s ->
            let next =
              max (Time.ms 10) (Bfd.tx_interval s * factor_pct / 100)
            in
            Bfd.set_tx_interval s next
        | None -> ())
    | Descriptor.Peer_rst { vrf; _ } -> (
        let _, ph = ctx.peers.(vrf) in
        match Bgp.Speaker.peer_session ph with
        | Some s -> (
            match Bgp.Session.conn s with
            | Some c -> Tcp.abort c
            | None -> ())
        | None -> ())
    | Descriptor.Peer_cease { vrf; _ } ->
        let (pa : Deploy.peer_as), ph = ctx.peers.(vrf) in
        Bgp.Speaker.stop_peer pa.Deploy.pa_speaker ph;
        ignore
          (Engine.schedule_after eng (Time.sec 1) (fun () ->
               Bgp.Speaker.start_peer pa.Deploy.pa_speaker ph))
    | Descriptor.Store_crash { dur_ms; _ } -> (
        Store.Server.crash dep.Deploy.store_server;
        if dur_ms = 0 then
          (* Permanent: the store cluster's own failover promotes the
             replica; clients find it on retry exhaustion. *)
          match dep.Deploy.store_replica_server with
          | Some rep ->
              ignore
                (Engine.schedule_after eng (Time.ms 300) (fun () ->
                     Store.Server.promote rep))
          | None -> ()
        else
          ignore
            (Engine.schedule_after eng (Time.ms dur_ms) (fun () ->
                 Store.Server.restart dep.Deploy.store_server)))
    | Descriptor.Store_partition { dur_ms; _ } ->
        let n = Store.Server.node dep.Deploy.store_server in
        Netsim.Node.set_up n false;
        ignore
          (Engine.schedule_after eng (Time.ms dur_ms) (fun () ->
               Netsim.Node.set_up n true))
    | Descriptor.Store_slow { dur_ms; factor_pct; _ } ->
        Store.Server.set_cost_factor dep.Deploy.store_server
          (float_of_int factor_pct /. 100.);
        ignore
          (Engine.schedule_after eng (Time.ms dur_ms) (fun () ->
               Store.Server.set_cost_factor dep.Deploy.store_server 1.))
    (* Fleet tokens at single-instance scale: each maps to its closest
       one-service equivalent, so any fleet campaign line also runs (and
       shrinks) under the ordinary chaos runner. Their correlated
       semantics live in [Fleet.Campaign]. *)
    | Descriptor.Host_kill _ -> Deploy.inject_host_failure dep ctx.svc
    | Descriptor.Region_store_outage { dur_ms; _ } ->
        let n = Store.Server.node dep.Deploy.store_server in
        Netsim.Node.set_up n false;
        ignore
          (Engine.schedule_after eng (Time.ms dur_ms) (fun () ->
               Netsim.Node.set_up n true))
    | Descriptor.Rolling_upgrade _ -> Deploy.planned_migration dep ctx.svc
  in
  ignore (Engine.schedule_after eng (Time.ms (Descriptor.fault_at f)) apply)

(* End-state digests, both directions per VRF, as in Check: the events
   feed the [rib_convergence] checker; the returned mismatch strings are
   the direct cross-check (belt and braces — they also catch the case
   where the service died and no snapshot could be emitted). *)
let end_state_check ctx =
  let dep = ctx.dep in
  let eng = dep.Deploy.eng in
  let errors = ref [] in
  (match App.speaker (Deploy.service_app ctx.svc) with
  | None ->
      errors := [ "end state: service speaker unavailable (instance dead?)" ]
  | Some spk ->
      Array.iteri
        (fun i ((pa : Deploy.peer_as), _) ->
          let vrf = vrf_name i in
          let (d_adv, d_svc), (d_out, d_peer) =
            Tensor.Check.snapshot_session eng ~vrf ~peer_name:(peer_name i)
              ~peer_speaker:pa.Deploy.pa_speaker ~peer_addr:pa.Deploy.pa_addr
              ~vip:(vip i) spk
          in
          if not (String.equal d_adv d_svc) then
            errors :=
              Printf.sprintf
                "%s: service RIB diverged from peer advertisement (%s vs %s)"
                vrf d_adv d_svc
              :: !errors;
          if not (String.equal d_out d_peer) then
            errors :=
              Printf.sprintf
                "%s: peer RIB diverged from service advertisement (%s vs %s)"
                vrf d_out d_peer
              :: !errors)
        ctx.peers);
  List.rev !errors

(* --- The run -------------------------------------------------------------- *)

let run (d : Descriptor.t) =
  let disabled = disabled_checkers d in
  Telemetry.Control.reset ();
  Telemetry.Span.set_ambient None;
  Telemetry.Control.set_enabled true;
  let peer_names = List.init d.Descriptor.peers peer_name in
  let mon =
    Monitor.Checker.install
      ~cfg:
        {
          Monitor.Checker.default_config with
          peers = peer_names;
          ack_deadline_s =
            (if has_store_fault d then degrade_frac *. hold_time_s else 0.);
        }
      ()
  in
  let errors = ref [] in
  let violations = ref [] in
  let finalized = ref false in
  (try
     let ctx = build d in
     Monitor.Checker.note_primary mon ~service:service_id
       ~container:(Orch.Container.id (Deploy.service_container ctx.svc));
     if not (Deploy.wait_established ctx.dep ctx.svc ()) then
       errors := [ "sessions did not establish within 30 s" ]
     else begin
       let eng = ctx.dep.Deploy.eng in
       seed_routes d ctx;
       Engine.run_for eng (Time.sec 10);
       schedule_churn d ctx;
       let partitioned = ref [] in
       List.iter (schedule_fault ctx partitioned) d.Descriptor.faults;
       Engine.run_for eng
         (Time.ms (d.Descriptor.window_ms + d.Descriptor.settle_ms));
       errors := end_state_check ctx
     end;
     let report =
       Monitor.Health.make ~budgets:[]
         ~scenario:("chaos:" ^ string_of_int d.Descriptor.seed)
         mon
     in
     finalized := true;
     violations :=
       List.filter
         (fun (v : Monitor.Checker.violation) ->
           not (List.mem v.Monitor.Checker.checker disabled))
         (Monitor.Health.violations report)
   with e ->
     errors :=
       Printf.sprintf "exception: %s" (Printexc.to_string e) :: !errors);
  if not !finalized then ignore (Monitor.Checker.finalize mon);
  let buf = Buffer.create 65_536 in
  Telemetry.Bus.to_jsonl buf;
  let digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  let events = Monitor.Checker.events_seen mon in
  Telemetry.Control.set_enabled false;
  {
    desc = d;
    violations = !violations;
    errors = List.rev !errors;
    disabled;
    digest;
    events;
  }

let summary o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "descriptor: %s\n" (Descriptor.to_string o.desc));
  Buffer.add_string b
    (Printf.sprintf "events=%d digest=%s disabled=[%s]\n" o.events o.digest
       (String.concat ", " o.disabled));
  if ok o then Buffer.add_string b "result: PASS\n"
  else begin
    List.iter
      (fun (v : Monitor.Checker.violation) ->
        Buffer.add_string b
          (Printf.sprintf "violation: %s at %.3fs: %s\n" v.checker
             (Time.to_sec_f v.at) v.detail))
      o.violations;
    List.iter (fun e -> Buffer.add_string b ("error: " ^ e ^ "\n")) o.errors;
    Buffer.add_string b "result: FAIL\n"
  end;
  Buffer.contents b
