type kill_kind = Kill_app | Kill_container | Kill_host | Kill_host_network

type fault =
  | Kill of { at_ms : int; kind : kill_kind }
  | Planned of { at_ms : int }
  | Heal of { at_ms : int }
  | Flap of { at_ms : int; vrf : int; dur_ms : int }
  | Loss of { at_ms : int; vrf : int; dur_ms : int; loss_pct : int }
  | Bfd_perturb of { at_ms : int; vrf : int; factor_pct : int }
  | Peer_rst of { at_ms : int; vrf : int }
  | Peer_cease of { at_ms : int; vrf : int }
  | Store_crash of { at_ms : int; dur_ms : int }
  | Store_partition of { at_ms : int; dur_ms : int }
  | Store_slow of { at_ms : int; dur_ms : int; factor_pct : int }
  (* Fleet campaign tokens (ISSUE 10). Tokens only at the single
     instance scale: the runner maps them onto their closest
     single-instance equivalent so any descriptor stays runnable, while
     [Fleet.Campaign] gives them their correlated fleet meaning. The
     generator never emits them, so old corpus descriptors parse (and
     replay) unchanged. *)
  | Host_kill of { at_ms : int }
  | Region_store_outage of { at_ms : int; dur_ms : int }
  | Rolling_upgrade of { at_ms : int; bound : int }

type t = {
  seed : int;
  peers : int;
  hosts : int;
  peer_prefixes : int;
  svc_prefixes : int;
  churn : int;
  delay_us : int;
  window_ms : int;
  settle_ms : int;
  faults : fault list;
}

let fault_at = function
  | Kill { at_ms; _ }
  | Planned { at_ms }
  | Heal { at_ms }
  | Flap { at_ms; _ }
  | Loss { at_ms; _ }
  | Bfd_perturb { at_ms; _ }
  | Peer_rst { at_ms; _ }
  | Peer_cease { at_ms; _ }
  | Store_crash { at_ms; _ }
  | Store_partition { at_ms; _ }
  | Store_slow { at_ms; _ }
  | Host_kill { at_ms }
  | Region_store_outage { at_ms; _ }
  | Rolling_upgrade { at_ms; _ } ->
      at_ms

let kill_kind_name = function
  | Kill_app -> "app"
  | Kill_container -> "container"
  | Kill_host -> "host"
  | Kill_host_network -> "hostnet"

let fault_kind_name = function
  | Kill { kind; _ } -> "kill." ^ kill_kind_name kind
  | Planned _ -> "planned"
  | Heal _ -> "heal"
  | Flap _ -> "flap"
  | Loss _ -> "loss"
  | Bfd_perturb _ -> "bfd"
  | Peer_rst _ -> "rst"
  | Peer_cease _ -> "cease"
  | Store_crash _ -> "store_crash"
  | Store_partition _ -> "store_partition"
  | Store_slow _ -> "store_slow"
  | Host_kill _ -> "host_kill"
  | Region_store_outage _ -> "region_store_outage"
  | Rolling_upgrade _ -> "rolling_upgrade"

let equal (a : t) (b : t) = a = b

(* --- Validation ----------------------------------------------------------- *)

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_fault f =
    let within_window name at =
      if at < 0 || at > t.window_ms then
        err "%s at %d ms outside the fault window [0, %d]" name at t.window_ms
      else Ok ()
    in
    let vrf_in_range name vrf =
      if vrf < 0 || vrf >= t.peers then
        err "%s references vrf %d but the run has %d peers" name vrf t.peers
      else Ok ()
    in
    let ( let* ) = Result.bind in
    let name = fault_kind_name f in
    let* () = within_window name (fault_at f) in
    match f with
    | Kill _ | Planned _ | Heal _ -> Ok ()
    | Flap { vrf; dur_ms; _ } ->
        let* () = vrf_in_range name vrf in
        if dur_ms <= 0 then err "flap duration must be positive" else Ok ()
    | Loss { vrf; dur_ms; loss_pct; _ } ->
        let* () = vrf_in_range name vrf in
        if dur_ms <= 0 then err "loss duration must be positive"
        else if loss_pct < 1 || loss_pct > 95 then
          err "loss percentage %d outside [1, 95]" loss_pct
        else Ok ()
    | Bfd_perturb { vrf; factor_pct; _ } ->
        let* () = vrf_in_range name vrf in
        if factor_pct < 10 || factor_pct > 500 then
          err "bfd factor %d%% outside [10, 500]" factor_pct
        else Ok ()
    | Peer_rst { vrf; _ } | Peer_cease { vrf; _ } -> vrf_in_range name vrf
    | Store_crash { dur_ms; _ } ->
        if dur_ms < 0 then err "store_crash duration must be >= 0" else Ok ()
    | Store_partition { dur_ms; _ } ->
        if dur_ms <= 0 then err "store_partition duration must be positive"
        else Ok ()
    | Store_slow { dur_ms; factor_pct; _ } ->
        if dur_ms <= 0 then err "store_slow duration must be positive"
        else if factor_pct < 101 || factor_pct > 10_000 then
          err "store_slow factor %d%% outside [101, 10000]" factor_pct
        else Ok ()
    | Host_kill _ -> Ok ()
    | Region_store_outage { dur_ms; _ } ->
        if dur_ms <= 0 then err "region_store_outage duration must be positive"
        else Ok ()
    | Rolling_upgrade { bound; _ } ->
        if bound < 1 || bound > 64 then
          err "rolling_upgrade concurrency bound %d outside [1, 64]" bound
        else Ok ()
  in
  (* The store is the recovery substrate: a migration scheduled while the
     store is down (or gone for good — a permanent [store_crash] lasts
     until the end of the run) would hand the replacement an empty state.
     The controller defers such migrations, so a kill inside an outage
     window never completes within the run — reject the combination
     outright instead of producing schedules that cannot settle. *)
  let outage_conflict () =
    let outage_end at dur = if dur = 0 then max_int else at + dur in
    let outages =
      List.filter_map
        (function
          | Store_crash { at_ms; dur_ms }
          | Store_partition { at_ms; dur_ms }
          | Region_store_outage { at_ms; dur_ms } ->
              Some (at_ms, outage_end at_ms dur_ms)
          | _ -> None)
        t.faults
    in
    List.fold_left
      (fun acc f ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match f with
            | ( Kill { at_ms; _ }
              | Planned { at_ms }
              | Host_kill { at_ms }
              | Rolling_upgrade { at_ms; _ } )
              when List.exists (fun (s, e) -> at_ms >= s && at_ms <= e) outages
              ->
                err "%s at %d ms falls inside a store outage window"
                  (fault_kind_name f) at_ms
            | _ -> Ok ()))
      (Ok ()) t.faults
  in
  (* A rolling-upgrade wave owns the fleet until its last drain
     completes, and completion time is schedule-dependent — so any two
     waves in one descriptor are considered overlapping and rejected,
     same spirit as the store-outage exclusivity above. *)
  let wave_conflict () =
    let waves =
      List.filter_map
        (function Rolling_upgrade { at_ms; _ } -> Some at_ms | _ -> None)
        t.faults
    in
    match waves with
    | a :: b :: _ ->
        err "rolling_upgrade at %d ms overlaps the wave at %d ms" (max a b)
          (min a b)
    | _ -> Ok ()
  in
  if t.seed < 0 then err "negative seed"
  else if t.peers < 1 || t.peers > 8 then err "peers %d outside [1, 8]" t.peers
  else if t.hosts < 2 || t.hosts > 8 then err "hosts %d outside [2, 8]" t.hosts
  else if t.peer_prefixes < 1 || t.peer_prefixes > 5000 then
    err "peer prefixes %d outside [1, 5000]" t.peer_prefixes
  else if t.svc_prefixes < 1 || t.svc_prefixes > 5000 then
    err "service prefixes %d outside [1, 5000]" t.svc_prefixes
  else if t.churn < 0 || t.churn > 10 then err "churn %d outside [0, 10]" t.churn
  else if t.delay_us < 1 || t.delay_us > 100_000 then
    err "link delay %d us outside [1, 100000]" t.delay_us
  else if t.window_ms < 1000 then err "window shorter than 1 s"
  else if t.settle_ms < 0 then err "negative settle"
  else
    let per_fault =
      List.fold_left
        (fun acc f -> match acc with Error _ -> acc | Ok () -> check_fault f)
        (Ok ()) t.faults
    in
    match per_fault with
    | Error _ -> per_fault
    | Ok () -> (
        match outage_conflict () with
        | Error _ as e -> e
        | Ok () -> wave_conflict ())

(* --- Serialization -------------------------------------------------------- *)

let magic = "chaos1"

let fault_to_string = function
  | Kill { at_ms; kind } ->
      Printf.sprintf "kill.%s@%d" (kill_kind_name kind) at_ms
  | Planned { at_ms } -> Printf.sprintf "planned@%d" at_ms
  | Heal { at_ms } -> Printf.sprintf "heal@%d" at_ms
  | Flap { at_ms; vrf; dur_ms } ->
      Printf.sprintf "flap.%d@%d+%d" vrf at_ms dur_ms
  | Loss { at_ms; vrf; dur_ms; loss_pct } ->
      Printf.sprintf "loss.%d@%d+%d:%d" vrf at_ms dur_ms loss_pct
  | Bfd_perturb { at_ms; vrf; factor_pct } ->
      Printf.sprintf "bfd.%d@%dx%d" vrf at_ms factor_pct
  | Peer_rst { at_ms; vrf } -> Printf.sprintf "rst.%d@%d" vrf at_ms
  | Peer_cease { at_ms; vrf } -> Printf.sprintf "cease.%d@%d" vrf at_ms
  | Store_crash { at_ms; dur_ms } ->
      if dur_ms = 0 then Printf.sprintf "store_crash@%d" at_ms
      else Printf.sprintf "store_crash@%d+%d" at_ms dur_ms
  | Store_partition { at_ms; dur_ms } ->
      Printf.sprintf "store_partition@%d+%d" at_ms dur_ms
  | Store_slow { at_ms; dur_ms; factor_pct } ->
      Printf.sprintf "store_slow@%d+%d:%d" at_ms dur_ms factor_pct
  | Host_kill { at_ms } -> Printf.sprintf "host_kill@%d" at_ms
  | Region_store_outage { at_ms; dur_ms } ->
      Printf.sprintf "region_store_outage@%d+%d" at_ms dur_ms
  | Rolling_upgrade { at_ms; bound } ->
      Printf.sprintf "rolling_upgrade@%d:%d" at_ms bound

let to_string t =
  let faults =
    match t.faults with
    | [] -> "-"
    | fs -> String.concat "," (List.map fault_to_string fs)
  in
  Printf.sprintf
    "%s seed=%d peers=%d hosts=%d ppfx=%d spfx=%d churn=%d delay=%d \
     window=%d settle=%d faults=%s"
    magic t.seed t.peers t.hosts t.peer_prefixes t.svc_prefixes t.churn
    t.delay_us t.window_ms t.settle_ms faults

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: not an integer: %S" what s)

let split1 ~on s =
  match String.index_opt s on with
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let fault_of_string tok =
  let ( let* ) = Result.bind in
  match split1 ~on:'@' tok with
  | None -> Error (Printf.sprintf "fault %S: missing '@'" tok)
  | Some (head, tail) -> (
      let kind, arg =
        match split1 ~on:'.' head with
        | Some (k, a) -> (k, Some a)
        | None -> (head, None)
      in
      let vrf () =
        match arg with
        | Some a -> parse_int (tok ^ ": vrf") a
        | None -> Error (Printf.sprintf "fault %S: missing vrf index" tok)
      in
      let at () = parse_int (tok ^ ": time") tail in
      match kind with
      | "kill" ->
          let* k =
            match arg with
            | Some "app" -> Ok Kill_app
            | Some "container" -> Ok Kill_container
            | Some "host" -> Ok Kill_host
            | Some "hostnet" -> Ok Kill_host_network
            | _ -> Error (Printf.sprintf "fault %S: unknown kill kind" tok)
          in
          let* at_ms = at () in
          Ok (Kill { at_ms; kind = k })
      | "planned" ->
          let* at_ms = at () in
          Ok (Planned { at_ms })
      | "heal" ->
          let* at_ms = at () in
          Ok (Heal { at_ms })
      | "flap" -> (
          let* vrf = vrf () in
          match split1 ~on:'+' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T+DUR" tok)
          | Some (t, d) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* dur_ms = parse_int (tok ^ ": duration") d in
              Ok (Flap { at_ms; vrf; dur_ms }))
      | "loss" -> (
          let* vrf = vrf () in
          match split1 ~on:'+' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T+DUR:PCT" tok)
          | Some (t, rest) -> (
              match split1 ~on:':' rest with
              | None -> Error (Printf.sprintf "fault %S: expected T+DUR:PCT" tok)
              | Some (d, p) ->
                  let* at_ms = parse_int (tok ^ ": time") t in
                  let* dur_ms = parse_int (tok ^ ": duration") d in
                  let* loss_pct = parse_int (tok ^ ": loss pct") p in
                  Ok (Loss { at_ms; vrf; dur_ms; loss_pct })))
      | "bfd" -> (
          let* vrf = vrf () in
          match split1 ~on:'x' tail with
          | None -> Error (Printf.sprintf "fault %S: expected TxFACTOR" tok)
          | Some (t, f) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* factor_pct = parse_int (tok ^ ": factor") f in
              Ok (Bfd_perturb { at_ms; vrf; factor_pct }))
      | "rst" ->
          let* vrf = vrf () in
          let* at_ms = at () in
          Ok (Peer_rst { at_ms; vrf })
      | "cease" ->
          let* vrf = vrf () in
          let* at_ms = at () in
          Ok (Peer_cease { at_ms; vrf })
      | "store_crash" -> (
          match split1 ~on:'+' tail with
          | None ->
              let* at_ms = at () in
              Ok (Store_crash { at_ms; dur_ms = 0 })
          | Some (t, d) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* dur_ms = parse_int (tok ^ ": duration") d in
              Ok (Store_crash { at_ms; dur_ms }))
      | "store_partition" -> (
          match split1 ~on:'+' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T+DUR" tok)
          | Some (t, d) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* dur_ms = parse_int (tok ^ ": duration") d in
              Ok (Store_partition { at_ms; dur_ms }))
      | "store_slow" -> (
          match split1 ~on:'+' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T+DUR:FACTOR" tok)
          | Some (t, rest) -> (
              match split1 ~on:':' rest with
              | None ->
                  Error (Printf.sprintf "fault %S: expected T+DUR:FACTOR" tok)
              | Some (d, f) ->
                  let* at_ms = parse_int (tok ^ ": time") t in
                  let* dur_ms = parse_int (tok ^ ": duration") d in
                  let* factor_pct = parse_int (tok ^ ": factor") f in
                  Ok (Store_slow { at_ms; dur_ms; factor_pct })))
      | "host_kill" ->
          let* at_ms = at () in
          Ok (Host_kill { at_ms })
      | "region_store_outage" -> (
          match split1 ~on:'+' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T+DUR" tok)
          | Some (t, d) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* dur_ms = parse_int (tok ^ ": duration") d in
              Ok (Region_store_outage { at_ms; dur_ms }))
      | "rolling_upgrade" -> (
          match split1 ~on:':' tail with
          | None -> Error (Printf.sprintf "fault %S: expected T:BOUND" tok)
          | Some (t, k) ->
              let* at_ms = parse_int (tok ^ ": time") t in
              let* bound = parse_int (tok ^ ": bound") k in
              Ok (Rolling_upgrade { at_ms; bound }))
      | other -> Error (Printf.sprintf "unknown fault kind %S" other))

let of_string line =
  let ( let* ) = Result.bind in
  let line = String.trim line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | m :: fields when m = magic ->
      let* kvs =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            match split1 ~on:'=' field with
            | Some (k, v) -> Ok ((k, v) :: acc)
            | None -> Error (Printf.sprintf "malformed field %S" field))
          (Ok []) fields
      in
      let get k =
        match List.assoc_opt k kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let int_field k =
        let* v = get k in
        parse_int k v
      in
      let* seed = int_field "seed" in
      let* peers = int_field "peers" in
      let* hosts = int_field "hosts" in
      let* peer_prefixes = int_field "ppfx" in
      let* svc_prefixes = int_field "spfx" in
      let* churn = int_field "churn" in
      let* delay_us = int_field "delay" in
      let* window_ms = int_field "window" in
      let* settle_ms = int_field "settle" in
      let* faults_s = get "faults" in
      let* faults =
        if faults_s = "-" then Ok []
        else
          String.split_on_char ',' faults_s
          |> List.fold_left
               (fun acc tok ->
                 let* acc = acc in
                 let* f = fault_of_string tok in
                 Ok (f :: acc))
               (Ok [])
          |> Result.map List.rev
      in
      let t =
        {
          seed;
          peers;
          hosts;
          peer_prefixes;
          svc_prefixes;
          churn;
          delay_us;
          window_ms;
          settle_ms;
          faults;
        }
      in
      let* () = validate t in
      Ok t
  | _ -> Error (Printf.sprintf "expected a %S line" magic)

(* A bare fault-token list (the [faults=] payload alone), validated
   under the same rules as a full descriptor — the fleet CLI's
   [--campaign] argument. *)
let faults_of_string ?window_ms s =
  let ( let* ) = Result.bind in
  let* faults =
    match String.trim s with
    | "" | "-" -> Ok []
    | s ->
        String.split_on_char ',' s
        |> List.fold_left
             (fun acc tok ->
               let* acc = acc in
               let* f = fault_of_string (String.trim tok) in
               Ok (f :: acc))
             (Ok [])
        |> Result.map List.rev
  in
  let window_ms =
    match window_ms with
    | Some w -> w
    | None ->
        (* Wide enough for every token: outage windows count their end. *)
        List.fold_left
          (fun acc f ->
            let e =
              match f with
              | Store_crash { at_ms; dur_ms }
              | Store_partition { at_ms; dur_ms }
              | Region_store_outage { at_ms; dur_ms }
              | Flap { at_ms; dur_ms; _ }
              | Loss { at_ms; dur_ms; _ } ->
                  at_ms + dur_ms
              | f -> fault_at f
            in
            max acc e)
          1000 faults
  in
  let probe =
    {
      seed = 0;
      peers = 1;
      hosts = 2;
      peer_prefixes = 1;
      svc_prefixes = 1;
      churn = 0;
      delay_us = 200;
      window_ms;
      settle_ms = 0;
      faults;
    }
  in
  let* () = validate probe in
  Ok faults

(* --- Generation ----------------------------------------------------------- *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let sub_seed ~seed i =
  let open Int64 in
  let z =
    mix64 (add (of_int seed) (mul 0x9e3779b97f4a7c15L (of_int (i + 1))))
  in
  to_int z land 0x3FFFFFFFFFFFFFFF

(* The generated envelope keeps every armed checker a valid oracle:

   - Flaps are capped at 150 ms: with the 100 ms x3 BFD window the peer
     never even reaches Down, let alone past the detection bound.
   - BFD perturbation stays in [60%, 150%] of the nominal 100 ms: the
     agent relay still transmits at 100 ms, so the peer's re-armed
     detection window is always fed in time.
   - Heavy faults (kills, planned switchovers) are spaced >= 12 s apart
     so one migration completes before the next failure hits, except for
     the deliberate planned+kill overlap which targets the old primary
     while the controller has detection suspended.
   - Loss bursts and RST/Cease recover within the settle period
     (GR 120 s is advertised on both sides; active reconnect is 5 s).
   - Store faults are exclusive with every instance-level fault (kills,
     planned switchovers, RST/Cease): the store is the recovery
     substrate, so a migration during an outage cannot complete, and a
     peer-initiated reset while degraded is exactly what the
     degraded_mode_exclusion oracle flags. Outages end early enough
     (at + dur bounded well inside window + settle) for the heal probe,
     re-arm and RIB re-checkpoint to finish before end-state checks. *)
let generate ~seed =
  let rng = Sim.Rng.create (sub_seed ~seed:seed 0x5eed) in
  let peers = Sim.Rng.int_in rng 1 3 in
  let hosts = Sim.Rng.int_in rng 3 4 in
  let peer_prefixes = Sim.Rng.int_in rng 50 300 in
  let svc_prefixes = Sim.Rng.int_in rng 20 120 in
  let churn = Sim.Rng.int_in rng 0 3 in
  let delay_us = Sim.Rng.int_in rng 100 800 in
  let window_ms = Sim.Rng.int_in rng 15_000 25_000 in
  let settle_ms = 30_000 in
  let clamp at = min at window_ms in
  let any_vrf () = Sim.Rng.int_in rng 0 (peers - 1) in
  let heavy at =
    match Sim.Rng.int_in rng 0 4 with
    | 0 -> [ Planned { at_ms = at } ]
    | 1 -> [ Kill { at_ms = at; kind = Kill_app } ]
    | 2 -> [ Kill { at_ms = at; kind = Kill_container } ]
    | 3 -> [ Kill { at_ms = at; kind = Kill_host } ]
    | _ ->
        let heal = clamp (at + Sim.Rng.int_in rng 6_000 10_000) in
        [ Kill { at_ms = at; kind = Kill_host_network }; Heal { at_ms = heal } ]
  in
  let n_heavy = Sim.Rng.int_in rng 0 2 in
  let heavies = ref [] in
  let heavy_at = ref (Sim.Rng.int_in rng 2_000 6_000) in
  for _ = 1 to n_heavy do
    if !heavy_at <= window_ms - 500 then
      heavies := heavy !heavy_at @ !heavies;
    heavy_at := !heavy_at + Sim.Rng.int_in rng 12_000 16_000
  done;
  (* Double host-level faults would exhaust the host pool; keep at most
     one of each host-scoped kind per schedule. A Heal with no matching
     partition is a harmless no-op, so heals are always kept. *)
  let seen_host = ref false and seen_hostnet = ref false in
  let heavies =
    List.filter
      (function
        | Kill { kind = Kill_host; _ } ->
            if !seen_host then false else (seen_host := true; true)
        | Kill { kind = Kill_host_network; _ } ->
            if !seen_hostnet then false else (seen_hostnet := true; true)
        | _ -> true)
      (List.rev !heavies)
  in
  (* The overlap case: a container dies while the controller is mid
     planned-switchover (detection suspended, old primary frozen). *)
  let overlap =
    match
      List.find_opt (function Planned _ -> true | _ -> false) heavies
    with
    | Some (Planned { at_ms }) when Sim.Rng.bernoulli rng 0.3 ->
        [
          Kill
            {
              at_ms = clamp (at_ms + Sim.Rng.int_in rng 200 1_500);
              kind = Kill_container;
            };
        ]
    | _ -> []
  in
  let light () =
    let at = Sim.Rng.int_in rng 1_000 window_ms in
    let vrf = any_vrf () in
    match Sim.Rng.int_in rng 0 2 with
    | 0 -> Flap { at_ms = at; vrf; dur_ms = Sim.Rng.int_in rng 30 150 }
    | 1 ->
        Loss
          {
            at_ms = at;
            vrf;
            dur_ms = Sim.Rng.int_in rng 500 2_500;
            loss_pct = Sim.Rng.int_in rng 5 30;
          }
    | _ ->
        Bfd_perturb { at_ms = at; vrf; factor_pct = Sim.Rng.int_in rng 60 150 }
  in
  let lights = List.init (Sim.Rng.int_in rng 0 3) (fun _ -> light ()) in
  let first_kill =
    List.find_opt (function Kill _ -> true | _ -> false) heavies
  in
  let transport () =
    (* Aim transport faults into the replay window of a kill when one
       exists: RST/Cease racing the resumed session is the hard case. *)
    let at =
      match first_kill with
      | Some (Kill { at_ms; _ }) -> clamp (at_ms + Sim.Rng.int_in rng 1_500 3_500)
      | _ -> Sim.Rng.int_in rng 3_000 window_ms
    in
    (at, any_vrf ())
  in
  let rst =
    if Sim.Rng.bernoulli rng 0.3 then
      let at_ms, vrf = transport () in
      [ Peer_rst { at_ms; vrf } ]
    else []
  in
  let cease =
    if Sim.Rng.bernoulli rng 0.3 then
      let at_ms, vrf = transport () in
      [ Peer_cease { at_ms; vrf } ]
    else []
  in
  (* Degraded-store survival scenarios. The crash/partition durations
     straddle the runner's held-ACK deadline (0.15 x 90 s hold =
     13.5 s): short outages exercise retry/failover alone, long ones
     force the degrade → re-arm path. A duration of 0 is the permanent
     crash: the replica takes over and the primary never returns. *)
  let store =
    if Sim.Rng.bernoulli rng 0.35 then
      let at = Sim.Rng.int_in rng 2_000 8_000 in
      match Sim.Rng.int_in rng 0 3 with
      | 0 -> [ Store_crash { at_ms = at; dur_ms = 0 } ]
      | 1 ->
          [ Store_crash { at_ms = at; dur_ms = Sim.Rng.int_in rng 6_000 34_000 } ]
      | 2 ->
          [
            Store_partition
              { at_ms = at; dur_ms = Sim.Rng.int_in rng 6_000 34_000 };
          ]
      | _ ->
          [
            Store_slow
              {
                at_ms = at;
                dur_ms = Sim.Rng.int_in rng 2_000 10_000;
                factor_pct = Sim.Rng.int_in rng 200 2_000;
              };
          ]
    else []
  in
  let faults =
    if store <> [] then lights @ store
    else heavies @ overlap @ lights @ rst @ cease
  in
  let faults =
    if faults = [] then heavy (Sim.Rng.int_in rng 2_000 6_000) else faults
  in
  let faults =
    List.stable_sort (fun a b -> compare (fault_at a) (fault_at b)) faults
  in
  {
    seed;
    peers;
    hosts;
    peer_prefixes;
    svc_prefixes;
    churn;
    delay_us;
    window_ms;
    settle_ms;
    faults;
  }
