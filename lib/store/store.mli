(** A Redis-like in-memory key-value store over the simulated network.

    This is the "highly-available distributed database" of TENSOR §3.1.1:
    BGP messages, inferred ACK numbers, TCP repair state and routing-table
    checkpoints are all replicated here synchronously before the
    corresponding TCP ACKs are released or messages sent.

    The server keeps everything in RAM (the paper configures Redis without
    disk persistence, §4.1) and models request latency with explicit cost
    components — a per-request network round trip, a per-chunk pipelining
    cost, and a per-record CPU cost — calibrated so that batched GET/SET
    totals reproduce the curves of Figure 5(b): a single ~4 KB-record read
    costs under 0.5 ms, a single write about 1 ms (≈2.5× the read), 10 000
    reads about 200 ms and 10 000 writes about 500 ms.

    Requests from one client are answered in order (the transport is a
    FIFO link), which provides the per-connection message ordering that
    §3.1.2 requires; ordering across connections is deliberately not
    promised, matching the paper. An optional synchronous replica models
    the store's own fault tolerance. *)

(** {1 Server} *)

type cost_model = {
  chunk : int;  (** Records per pipelining chunk. *)
  read_chunk_cost : Sim.Time.span;
  read_record_cost : Sim.Time.span;  (** Fixed part, per record. *)
  read_byte_ns : float;  (** Plus this much per value byte. *)
  write_chunk_cost : Sim.Time.span;
  write_record_cost : Sim.Time.span;
  write_byte_ns : float;
}

val default_cost_model : cost_model
(** The Figure 5(b) calibration described above. *)

val free_cost_model : cost_model
(** Zero processing cost — for unit tests that exercise semantics only. *)

module Server : sig
  type t

  val create : ?cost:cost_model -> Netsim.Node.t -> t
  (** [create node] serves the ["kv"] RPC service on [node]. *)

  val attach_replica : t -> t -> unit
  (** [attach_replica primary replica] makes [replica] a synchronous
      replica of [primary]: the primary acknowledges a write or delete
      only after the replica has applied it. The replica must have been
      created on a different node (it does not itself serve clients in
      this role, though nothing prevents reads against it). A replica
      found dead at apply time is detached and the primary acknowledges
      alone — degraded redundancy rather than a wedged write path. *)

  val crash : t -> unit
  (** The store process dies: every record (and the idempotency cache)
      is lost — the paper's no-persistence Redis — and requests are
      dropped unanswered until {!restart}. The node itself stays up;
      use [Netsim.Node.set_up] for a partition that preserves RAM.
      Emits [Store_crashed]. Idempotent. *)

  val restart : t -> unit
  (** Brings a crashed process back, empty. Emits [Store_restarted]. *)

  val alive : t -> bool

  val promote : t -> unit
  (** Declares this (replica) server the authoritative primary: any
      replica pointer of its own is cleared and [Store_promoted] is
      emitted. Clients switch to it via their failover path. *)

  val set_cost_factor : t -> float -> unit
  (** Multiplies every modelled processing cost by [factor >= 1] — a
      slow store (GC pause, overload). [1.0] restores the calibrated
      model. *)

  val node : t -> Netsim.Node.t
  val addr : t -> Netsim.Addr.t

  val records : t -> int
  val stored_bytes : t -> int
  (** Total size of keys plus values — the quantity §3.1.2's
      storage-trimming argument bounds per connection. *)

  val peek : t -> string -> string option
  (** Direct local read, no latency model (tests and invariant checks). *)

  val keys_with_prefix : t -> string -> string list
  (** Direct local prefix scan, no latency model. *)
end

(** {1 Client} *)

module Client : sig
  type t

  val create :
    ?replica:Netsim.Addr.t ->
    ?retry:Netsim.Rpc.retry ->
    Netsim.Node.t ->
    server:Netsim.Addr.t ->
    t
  (** [create node ~server] is the plain client: one attempt per op,
      [`Timeout] on silence — unchanged semantics.

      Passing [?retry] and/or [?replica] makes the client {e resilient}:
      ops are serialized (one outstanding at a time, preserving
      per-client FIFO order across retransmissions), tagged with an
      idempotency id the server deduplicates on, retried through the
      policy ([Rpc.retry_policy ()] if only [?replica] was given), and —
      once the budget is exhausted on the primary — failed over to
      [replica] permanently (emitting [Store_failover]). Ops that fail
      on both targets yield [`Timeout]; later ops re-try the promoted
      replica, so a healed store resumes service. *)

  val failed_over : t -> bool
  (** Whether the client has switched to its replica. *)

  val set :
    t -> ?timeout:Sim.Time.span -> (string * string) list ->
    ((unit, [ `Timeout ]) result -> unit) -> unit
  (** Batched write; the callback fires when every record is durable on
      the server (and its replica, if any). *)

  val get :
    t -> ?timeout:Sim.Time.span -> string list ->
    (((string * string option) list, [ `Timeout ]) result -> unit) -> unit
  (** Batched read; preserves request order in the reply. *)

  val del :
    t -> ?timeout:Sim.Time.span -> string list ->
    ((int, [ `Timeout ]) result -> unit) -> unit
  (** Deletes keys; yields how many existed. *)

  val scan :
    t -> ?timeout:Sim.Time.span -> prefix:string ->
    (((string * string) list, [ `Timeout ]) result -> unit) -> unit
  (** All (key, value) pairs whose key starts with [prefix], sorted by
      key — how a backup container downloads a connection's state. *)

  val server_addr : t -> Netsim.Addr.t
end
