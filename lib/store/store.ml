open Sim
open Netsim

type cost_model = {
  chunk : int;
  read_chunk_cost : Time.span;
  read_record_cost : Time.span;
  read_byte_ns : float;
  write_chunk_cost : Time.span;
  write_record_cost : Time.span;
  write_byte_ns : float;
}

(* Calibrated against Figure 5(b) with its 90 B keys and 4 KB values:
   one write ~1 ms, one read <0.5 ms, 10K writes ~500 ms, 10K reads
   ~200 ms. The per-byte components make small records (routing-table
   checkpoint entries) proportionally cheap, as they are on real Redis. *)
let default_cost_model =
  {
    chunk = 128;
    read_chunk_cost = Time.us 240;
    read_record_cost = Time.us 2;
    read_byte_ns = 3.8;
    write_chunk_cost = Time.us 600;
    write_record_cost = Time.us 3;
    write_byte_ns = 10.0;
  }

let free_cost_model =
  {
    chunk = 128;
    read_chunk_cost = 0;
    read_record_cost = 0;
    read_byte_ns = 0.0;
    write_chunk_cost = 0;
    write_record_cost = 0;
    write_byte_ns = 0.0;
  }

type Rpc.body +=
  | Req_set of (string * string) list
  | Req_get of string list
  | Req_del of string list
  | Req_scan of string
  | Resp_set_ok
  | Resp_values of (string * string option) list
  | Resp_del_count of int
  | Resp_pairs of (string * string) list

module Server = struct
  type t = {
    snode : Node.t;
    eng : Engine.t;
    cost : cost_model;
    table : (string, string) Hashtbl.t;
    mutable bytes : int;
    mutable busy_until : Time.t;
    mutable replica : t option;
  }

  let node t = t.snode

  let addr t =
    match Node.addresses t.snode with
    | a :: _ -> a
    | [] -> invalid_arg "Store.Server: node has no address"

  let records t = Hashtbl.length t.table
  let stored_bytes t = t.bytes
  let peek t key = Hashtbl.find_opt t.table key

  let keys_with_prefix t prefix =
    Det.keys ~compare:String.compare t.table
    |> List.filter (fun k ->
           String.length k >= String.length prefix
           && String.sub k 0 (String.length prefix) = prefix)

  (* Serialize request processing through the server's modelled CPU, like
     the TCP stack does. *)
  let processing_finish t cost =
    let now = Engine.now t.eng in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = Time.add start cost in
    t.busy_until <- finish;
    finish

  let op_cost t ~writes ~bytes n =
    if n = 0 then 0
    else
      let chunks = (n + t.cost.chunk - 1) / t.cost.chunk in
      let byte_ns = if writes then t.cost.write_byte_ns else t.cost.read_byte_ns in
      let byte_cost = int_of_float (float_of_int bytes *. byte_ns) in
      if writes then
        (chunks * t.cost.write_chunk_cost)
        + (n * t.cost.write_record_cost)
        + byte_cost
      else
        (chunks * t.cost.read_chunk_cost)
        + (n * t.cost.read_record_cost)
        + byte_cost

  let apply_set t pairs =
    List.iter
      (fun (k, v) ->
        (match Hashtbl.find_opt t.table k with
        | Some old -> t.bytes <- t.bytes - String.length k - String.length old
        | None -> ());
        Hashtbl.replace t.table k v;
        t.bytes <- t.bytes + String.length k + String.length v)
      pairs

  let apply_del t keys =
    List.fold_left
      (fun acc k ->
        match Hashtbl.find_opt t.table k with
        | Some v ->
            Hashtbl.remove t.table k;
            t.bytes <- t.bytes - String.length k - String.length v;
            acc + 1
        | None -> acc)
      0 keys

  let payload_bytes_of_pairs pairs =
    List.fold_left
      (fun acc (k, v) -> acc + String.length k + String.length v)
      0 pairs

  (* Writes go to the replica synchronously: the reply is withheld until
     the replica has confirmed (same processing-cost model there). *)
  let replicate t op k =
    match (t.replica, op) with
    | None, _ -> k ()
    | Some r, `Set pairs ->
        let finish =
          processing_finish r
            (op_cost r ~writes:true
               ~bytes:(payload_bytes_of_pairs pairs)
               (List.length pairs))
        in
        ignore
          (Engine.schedule_at r.eng finish (fun () ->
               if Node.is_up r.snode then begin
                 apply_set r pairs;
                 k ()
               end))
    | Some r, `Del keys ->
        let finish =
          processing_finish r (op_cost r ~writes:true ~bytes:0 (List.length keys))
        in
        ignore
          (Engine.schedule_at r.eng finish (fun () ->
               if Node.is_up r.snode then begin
                 ignore (apply_del r keys);
                 k ()
               end))

  let handle t ~src:_ body ~reply:(reply : ?size:int -> Rpc.body -> unit) =
    match body with
    | Req_set pairs ->
        let finish =
          processing_finish t
            (op_cost t ~writes:true
               ~bytes:(payload_bytes_of_pairs pairs)
               (List.length pairs))
        in
        ignore
          (Engine.schedule_at t.eng finish (fun () ->
               if Node.is_up t.snode then begin
                 apply_set t pairs;
                 replicate t (`Set pairs) (fun () -> reply ~size:64 Resp_set_ok)
               end))
    | Req_get keys ->
        let bytes =
          List.fold_left
            (fun acc k ->
              acc
              + match Hashtbl.find_opt t.table k with
                | Some v -> String.length v
                | None -> 0)
            0 keys
        in
        let finish =
          processing_finish t (op_cost t ~writes:false ~bytes (List.length keys))
        in
        ignore
          (Engine.schedule_at t.eng finish (fun () ->
               if Node.is_up t.snode then begin
                 let values =
                   List.map (fun k -> (k, Hashtbl.find_opt t.table k)) keys
                 in
                 let size =
                   64
                   + List.fold_left
                       (fun acc (k, v) ->
                         acc + String.length k
                         + match v with Some v -> String.length v | None -> 0)
                       0 values
                 in
                 reply ~size (Resp_values values)
               end))
    | Req_del keys ->
        let finish =
          processing_finish t (op_cost t ~writes:true ~bytes:0 (List.length keys))
        in
        ignore
          (Engine.schedule_at t.eng finish (fun () ->
               if Node.is_up t.snode then begin
                 let n = apply_del t keys in
                 replicate t (`Del keys) (fun () ->
                     reply ~size:64 (Resp_del_count n))
               end))
    | Req_scan prefix ->
        let keys = keys_with_prefix t prefix in
        let bytes =
          List.fold_left
            (fun acc k ->
              acc
              + match Hashtbl.find_opt t.table k with
                | Some v -> String.length v
                | None -> 0)
            0 keys
        in
        let finish =
          processing_finish t
            (op_cost t ~writes:false ~bytes (max 1 (List.length keys)))
        in
        ignore
          (Engine.schedule_at t.eng finish (fun () ->
               if Node.is_up t.snode then begin
                 let pairs =
                   List.filter_map
                     (fun k ->
                       match Hashtbl.find_opt t.table k with
                       | Some v -> Some (k, v)
                       | None -> None)
                     keys
                 in
                 reply ~size:(64 + payload_bytes_of_pairs pairs) (Resp_pairs pairs)
               end))
    | _ -> ()

  let create ?(cost = default_cost_model) node =
    let t =
      {
        snode = node;
        eng = Node.engine node;
        cost;
        table = Hashtbl.create 1024;
        bytes = 0;
        busy_until = Time.zero;
        replica = None;
      }
    in
    Rpc.serve (Rpc.endpoint node) ~service:"kv" (handle t);
    t

  let attach_replica primary replica =
    if primary.snode == replica.snode then
      invalid_arg "Store.Server.attach_replica: replica on the same node";
    primary.replica <- Some replica
end

module Client = struct
  type t = { ep : Rpc.endpoint; server : Addr.t }

  let create node ~server = { ep = Rpc.endpoint node; server }
  let server_addr t = t.server

  let request_size_of_pairs pairs =
    64
    + List.fold_left
        (fun acc (k, v) -> acc + String.length k + String.length v)
        0 pairs

  let set t ?(timeout = Time.sec 5) pairs k =
    Rpc.call t.ep ~timeout ~size:(request_size_of_pairs pairs) ~dst:t.server
      ~service:"kv" (Req_set pairs) (function
      | Ok Resp_set_ok -> k (Ok ())
      | Ok _ -> k (Error `Timeout)
      | Error `Timeout -> k (Error `Timeout))

  let get t ?(timeout = Time.sec 5) keys k =
    let size = 64 + List.fold_left (fun a s -> a + String.length s) 0 keys in
    Rpc.call t.ep ~timeout ~size ~dst:t.server ~service:"kv" (Req_get keys)
      (function
      | Ok (Resp_values vs) -> k (Ok vs)
      | Ok _ -> k (Error `Timeout)
      | Error `Timeout -> k (Error `Timeout))

  let del t ?(timeout = Time.sec 5) keys k =
    let size = 64 + List.fold_left (fun a s -> a + String.length s) 0 keys in
    Rpc.call t.ep ~timeout ~size ~dst:t.server ~service:"kv" (Req_del keys)
      (function
      | Ok (Resp_del_count n) -> k (Ok n)
      | Ok _ -> k (Error `Timeout)
      | Error `Timeout -> k (Error `Timeout))

  let scan t ?(timeout = Time.sec 30) ~prefix k =
    Rpc.call t.ep ~timeout ~size:(64 + String.length prefix) ~dst:t.server
      ~service:"kv" (Req_scan prefix) (function
      | Ok (Resp_pairs ps) -> k (Ok ps)
      | Ok _ -> k (Error `Timeout)
      | Error `Timeout -> k (Error `Timeout))
end
