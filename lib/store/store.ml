open Sim
open Netsim

type cost_model = {
  chunk : int;
  read_chunk_cost : Time.span;
  read_record_cost : Time.span;
  read_byte_ns : float;
  write_chunk_cost : Time.span;
  write_record_cost : Time.span;
  write_byte_ns : float;
}

(* Calibrated against Figure 5(b) with its 90 B keys and 4 KB values:
   one write ~1 ms, one read <0.5 ms, 10K writes ~500 ms, 10K reads
   ~200 ms. The per-byte components make small records (routing-table
   checkpoint entries) proportionally cheap, as they are on real Redis. *)
let default_cost_model =
  {
    chunk = 128;
    read_chunk_cost = Time.us 240;
    read_record_cost = Time.us 2;
    read_byte_ns = 3.8;
    write_chunk_cost = Time.us 600;
    write_record_cost = Time.us 3;
    write_byte_ns = 10.0;
  }

let free_cost_model =
  {
    chunk = 128;
    read_chunk_cost = 0;
    read_record_cost = 0;
    read_byte_ns = 0.0;
    write_chunk_cost = 0;
    write_record_cost = 0;
    write_byte_ns = 0.0;
  }

type Rpc.body +=
  | Req_set of (string * string) list
  | Req_get of string list
  | Req_del of string list
  | Req_scan of string
  | Req_idem of { client : string; seq : int; inner : Rpc.body }
  | Resp_set_ok
  | Resp_values of (string * string option) list
  | Resp_del_count of int
  | Resp_pairs of (string * string) list

module Server = struct
  type t = {
    snode : Node.t;
    eng : Engine.t;
    cost : cost_model;
    table : (string, string) Hashtbl.t;
    mutable bytes : int;
    mutable busy_until : Time.t;
    mutable replica : t option;
    mutable alive : bool;
    mutable cost_factor : float;
    (* Per-client idempotency window: last seq seen and, once the
       handler replied, the cached response a retransmission replays.
       [None] marks the op as still in flight so a duplicate arriving
       mid-processing is dropped rather than applied twice. One slot
       per client suffices: resilient clients keep at most one request
       outstanding. *)
    idem : (string, int * (Rpc.body * int) option) Hashtbl.t;
  }

  let node t = t.snode
  let alive t = t.alive

  (* Serving requires both the process (RAM) and the node (network) up:
     [Node.set_up false] models a partition — contents survive — while
     [crash] models the process dying with its no-persistence RAM. *)
  let up t = t.alive && Node.is_up t.snode

  let addr t =
    match Node.addresses t.snode with
    | a :: _ -> a
    | [] -> invalid_arg "Store.Server: node has no address"

  let records t = Hashtbl.length t.table
  let stored_bytes t = t.bytes
  let peek t key = Hashtbl.find_opt t.table key

  let keys_with_prefix t prefix =
    Det.keys ~compare:String.compare t.table
    |> List.filter (fun k ->
           String.length k >= String.length prefix
           && String.sub k 0 (String.length prefix) = prefix)

  (* Serialize request processing through the server's modelled CPU, like
     the TCP stack does. *)
  let processing_finish t cost =
    let now = Engine.now t.eng in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = Time.add start cost in
    t.busy_until <- finish;
    finish

  let op_cost t ~writes ~bytes n =
    if n = 0 then 0
    else
      let chunks = (n + t.cost.chunk - 1) / t.cost.chunk in
      let byte_ns = if writes then t.cost.write_byte_ns else t.cost.read_byte_ns in
      let byte_cost = int_of_float (float_of_int bytes *. byte_ns) in
      let raw =
        if writes then
          (chunks * t.cost.write_chunk_cost)
          + (n * t.cost.write_record_cost)
          + byte_cost
        else
          (chunks * t.cost.read_chunk_cost)
          + (n * t.cost.read_record_cost)
          + byte_cost
      in
      (* Exact for factor 1.0: every span fits a float mantissa. *)
      int_of_float (float_of_int raw *. t.cost_factor)

  let apply_set t pairs =
    List.iter
      (fun (k, v) ->
        (match Hashtbl.find_opt t.table k with
        | Some old -> t.bytes <- t.bytes - String.length k - String.length old
        | None -> ());
        Hashtbl.replace t.table k v;
        t.bytes <- t.bytes + String.length k + String.length v)
      pairs

  let apply_del t keys =
    List.fold_left
      (fun acc k ->
        match Hashtbl.find_opt t.table k with
        | Some v ->
            Hashtbl.remove t.table k;
            t.bytes <- t.bytes - String.length k - String.length v;
            acc + 1
        | None -> acc)
      0 keys

  let payload_bytes_of_pairs pairs =
    List.fold_left
      (fun acc (k, v) -> acc + String.length k + String.length v)
      0 pairs

  (* Writes go to the replica synchronously: the reply is withheld until
     the replica has confirmed (same processing-cost model there). A
     replica found dead — crashed or partitioned — is detached and the
     primary acknowledges alone (degraded redundancy, like Redis dropping
     a sync replica), so a replica failure cannot wedge the write path. *)
  let replicate t op k =
    match t.replica with
    | None -> k ()
    | Some r when not (up r) ->
        t.replica <- None;
        k ()
    | Some r ->
        let cost, apply =
          match op with
          | `Set pairs ->
              ( op_cost r ~writes:true
                  ~bytes:(payload_bytes_of_pairs pairs)
                  (List.length pairs),
                fun () -> apply_set r pairs )
          | `Del keys ->
              ( op_cost r ~writes:true ~bytes:0 (List.length keys),
                fun () -> ignore (apply_del r keys) )
        in
        let finish = processing_finish r cost in
        ignore
          (Engine.schedule_at r.eng ~label:"store.replicate" finish (fun () ->
               if up r then begin
                 apply ();
                 k ()
               end
               else begin
                 t.replica <- None;
                 k ()
               end))

  let rec handle t ~src body ~reply:(reply : ?size:int -> Rpc.body -> unit) =
    match body with
    | Req_idem { client; seq; inner } -> (
        match Hashtbl.find_opt t.idem client with
        | Some (s, _) when seq < s -> () (* stale retransmission *)
        | Some (s, Some (rbody, rsize)) when seq = s ->
            (* Duplicate of an already-answered request: replay the
               cached response without re-applying. *)
            reply ~size:rsize rbody
        | Some (s, None) when seq = s ->
            () (* duplicate while the original is still processing *)
        | _ ->
            Hashtbl.replace t.idem client (seq, None);
            handle t ~src inner
              ~reply:(fun ?(size = 128) rbody ->
                Hashtbl.replace t.idem client (seq, Some (rbody, size));
                reply ~size rbody))
    | Req_set pairs ->
        let finish =
          processing_finish t
            (op_cost t ~writes:true
               ~bytes:(payload_bytes_of_pairs pairs)
               (List.length pairs))
        in
        ignore
          (Engine.schedule_at t.eng ~label:"store.op" finish (fun () ->
               if up t then begin
                 apply_set t pairs;
                 replicate t (`Set pairs) (fun () -> reply ~size:64 Resp_set_ok)
               end))
    | Req_get keys ->
        let bytes =
          List.fold_left
            (fun acc k ->
              acc
              + match Hashtbl.find_opt t.table k with
                | Some v -> String.length v
                | None -> 0)
            0 keys
        in
        let finish =
          processing_finish t (op_cost t ~writes:false ~bytes (List.length keys))
        in
        ignore
          (Engine.schedule_at t.eng ~label:"store.op" finish (fun () ->
               if up t then begin
                 let values =
                   List.map (fun k -> (k, Hashtbl.find_opt t.table k)) keys
                 in
                 let size =
                   64
                   + List.fold_left
                       (fun acc (k, v) ->
                         acc + String.length k
                         + match v with Some v -> String.length v | None -> 0)
                       0 values
                 in
                 reply ~size (Resp_values values)
               end))
    | Req_del keys ->
        let finish =
          processing_finish t (op_cost t ~writes:true ~bytes:0 (List.length keys))
        in
        ignore
          (Engine.schedule_at t.eng ~label:"store.op" finish (fun () ->
               if up t then begin
                 let n = apply_del t keys in
                 replicate t (`Del keys) (fun () ->
                     reply ~size:64 (Resp_del_count n))
               end))
    | Req_scan prefix ->
        let keys = keys_with_prefix t prefix in
        let bytes =
          List.fold_left
            (fun acc k ->
              acc
              + match Hashtbl.find_opt t.table k with
                | Some v -> String.length v
                | None -> 0)
            0 keys
        in
        let finish =
          processing_finish t
            (op_cost t ~writes:false ~bytes (max 1 (List.length keys)))
        in
        ignore
          (Engine.schedule_at t.eng ~label:"store.op" finish (fun () ->
               if up t then begin
                 let pairs =
                   List.filter_map
                     (fun k ->
                       match Hashtbl.find_opt t.table k with
                       | Some v -> Some (k, v)
                       | None -> None)
                     keys
                 in
                 reply ~size:(64 + payload_bytes_of_pairs pairs) (Resp_pairs pairs)
               end))
    | _ -> ()

  let create ?(cost = default_cost_model) node =
    let t =
      {
        snode = node;
        eng = Node.engine node;
        cost;
        table = Hashtbl.create 1024;
        bytes = 0;
        busy_until = Time.zero;
        replica = None;
        alive = true;
        cost_factor = 1.0;
        idem = Hashtbl.create 16;
      }
    in
    Rpc.serve (Rpc.endpoint node) ~service:"kv" (handle t);
    (* Process-liveness probe: answered only while alive, so a crashed
       store reads as unreachable even though its node still forwards. *)
    Rpc.serve (Rpc.endpoint node) ~service:"kv_health"
      (fun ~src:_ _body ~reply -> if t.alive then reply Rpc.Pong);
    t

  let attach_replica primary replica =
    if primary.snode == replica.snode then
      invalid_arg "Store.Server.attach_replica: replica on the same node";
    primary.replica <- Some replica

  (* The paper's Redis runs without persistence (§4.1): a process crash
     loses every record. The node stays up — only the store process
     died — so requests still arrive and are silently dropped until
     [restart], exactly like a connection-refused backend behind an
     engineered-loss-free channel. *)
  let crash t =
    if t.alive then begin
      t.alive <- false;
      Hashtbl.reset t.table;
      t.bytes <- 0;
      Hashtbl.reset t.idem;
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Store_crashed { node = Node.name t.snode })
    end

  let restart t =
    if not t.alive then begin
      t.alive <- true;
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Store_restarted { node = Node.name t.snode })
    end

  let promote t =
    t.replica <- None;
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Store_promoted { node = Node.name t.snode })

  let set_cost_factor t f =
    if f < 1.0 then invalid_arg "Store.Server.set_cost_factor: factor < 1";
    t.cost_factor <- f
end

module Client = struct
  (* Resilient state, present only when the client opted into retry or
     failover. Ops run strictly one at a time through [queue]: an op's
     retransmissions and failover all complete (or fail) before the next
     op is sent, which preserves per-client FIFO ordering even though a
     retransmission is a fresh RPC. Each op carries an idempotency id
     [(name, seq)] the server deduplicates on. *)
  type resilient = {
    name : string;
    retry : Rpc.retry;
    mutable replica : Addr.t option; (* failover target, consumed once *)
    mutable failed : bool; (* true once failover has happened *)
    mutable seq : int;
    mutable queue : (unit -> unit) list; (* pending ops, FIFO order *)
    mutable inflight : bool;
  }

  type t = {
    ep : Rpc.endpoint;
    mutable server : Addr.t;
    resilient : resilient option;
  }

  let create ?replica ?retry node ~server =
    let ep = Rpc.endpoint node in
    match (replica, retry) with
    | None, None -> { ep; server; resilient = None }
    | _ ->
        let retry =
          match retry with Some r -> r | None -> Rpc.retry_policy ()
        in
        (* The idempotency-id namespace: unique per node within a run,
           deterministic across replays (the endpoint's counter dies
           with its node). *)
        let name =
          Printf.sprintf "%s#%d" (Node.name node) (Rpc.fresh_client_id ep)
        in
        {
          ep;
          server;
          resilient =
            Some
              {
                name;
                retry;
                replica;
                failed = false;
                seq = 0;
                queue = [];
                inflight = false;
              };
        }

  let server_addr t = t.server
  let failed_over t =
    match t.resilient with Some r -> r.failed | None -> false

  let request_size_of_pairs pairs =
    64
    + List.fold_left
        (fun acc (k, v) -> acc + String.length k + String.length v)
        0 pairs

  let start_next r =
    match r.queue with
    | [] -> ()
    | job :: rest ->
        r.queue <- rest;
        r.inflight <- true;
        job ()

  let run_op t r ~size ~timeout inner k_done =
    r.seq <- r.seq + 1;
    let seq = r.seq in
    let body = Req_idem { client = r.name; seq; inner } in
    let rec attempt_target () =
      Rpc.call t.ep ~timeout ~size ~retry:r.retry ~dst:t.server ~service:"kv"
        body (function
        | Ok resp -> k_done (Ok resp)
        | Error _ -> (
            match r.replica with
            | Some addr ->
                (* Primary declared dead after a full retry budget: fail
                   over. The same idempotency id is reused, so a write
                   the primary applied but never acknowledged is not
                   double-applied if it raced the failover. *)
                r.replica <- None;
                r.failed <- true;
                t.server <- addr;
                Telemetry.Bus.emit
                  (Node.engine (Rpc.node t.ep))
                  (Telemetry.Event.Store_failover
                     { client = r.name; attempts = r.retry.attempts });
                attempt_target ()
            | None -> k_done (Error `Timeout)))
    in
    attempt_target ()

  let exec t ~size ~timeout inner parse =
    match t.resilient with
    | None ->
        Rpc.call t.ep ~timeout ~size ~dst:t.server ~service:"kv" inner parse
    | Some r ->
        let job () =
          run_op t r ~size ~timeout inner (fun res ->
              r.inflight <- false;
              parse res;
              start_next r)
        in
        r.queue <- r.queue @ [ job ];
        if not r.inflight then start_next r

  let set t ?(timeout = Time.sec 5) pairs k =
    exec t ~size:(request_size_of_pairs pairs) ~timeout (Req_set pairs)
      (function
      | Ok Resp_set_ok -> k (Ok ())
      | Ok _ -> k (Error `Timeout)
      | Error _ -> k (Error `Timeout))

  let get t ?(timeout = Time.sec 5) keys k =
    let size = 64 + List.fold_left (fun a s -> a + String.length s) 0 keys in
    exec t ~size ~timeout (Req_get keys) (function
      | Ok (Resp_values vs) -> k (Ok vs)
      | Ok _ -> k (Error `Timeout)
      | Error _ -> k (Error `Timeout))

  let del t ?(timeout = Time.sec 5) keys k =
    let size = 64 + List.fold_left (fun a s -> a + String.length s) 0 keys in
    exec t ~size ~timeout (Req_del keys) (function
      | Ok (Resp_del_count n) -> k (Ok n)
      | Ok _ -> k (Error `Timeout)
      | Error _ -> k (Error `Timeout))

  let scan t ?(timeout = Time.sec 30) ~prefix k =
    exec t ~size:(64 + String.length prefix) ~timeout (Req_scan prefix)
      (function
      | Ok (Resp_pairs ps) -> k (Ok ps)
      | Ok _ -> k (Error `Timeout)
      | Error _ -> k (Error `Timeout))
end
