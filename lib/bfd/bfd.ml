open Sim
open Netsim

type state = Admin_down | Down | Init | Up

let m_pkts_in = Telemetry.Registry.counter "bfd.packets_in"
let m_pkts_out = Telemetry.Registry.counter "bfd.packets_out"
let m_detections = Telemetry.Registry.counter "bfd.detections"
let m_sessions = Telemetry.Registry.counter "bfd.sessions"

let pp_state fmt s =
  Format.pp_print_string fmt
    (match s with
    | Admin_down -> "AdminDown"
    | Down -> "Down"
    | Init -> "Init"
    | Up -> "Up")

type control = {
  vrf : string;
  my_disc : int;
  your_disc : int;
  state : state;
  detect_mult : int;
  tx_interval : Time.span;
}

type Packet.payload += Bfd of control

let control_wire_size = 66 (* IP + UDP + 24-byte BFD control *)

type session = {
  ep : endpoint;
  svrf : string;
  slocal : Addr.t;
  sremote : Addr.t;
  disc : int;
  mutable peer_disc : int;
  mutable tx_interval : Time.span;
  detect_mult : int;
  mutable st : state;
  mutable tx_timer : Engine.timer option;
  mutable detect_handle : Engine.handle option;
  mutable change_cb : old:state -> state -> unit;
  mutable n_in : int;
  mutable n_out : int;
  mutable last_rx_at : Time.t option;
}

and endpoint = {
  node : Node.t;
  eng : Engine.t;
  sessions : (string, session) Hashtbl.t; (* key: remote|vrf *)
  mutable next_disc : int;
}

(* One endpoint per node, domain-local like the RPC registry: a BFD
   endpoint belongs to one simulation and a simulation never spans
   domains, so each campaign worker keeps a private table. *)
let registry_key : (string, endpoint) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let registry () = Domain.DLS.get registry_key
let session_key remote vrf = Addr.to_string remote ^ "|" ^ vrf

let session_state s = s.st
let on_state_change s f = s.change_cb <- f
let my_disc s = s.disc
let your_disc s = s.peer_disc
let vrf s = s.svrf
let remote s = s.sremote
let local s = s.slocal
let packets_in s = s.n_in
let packets_out s = s.n_out
let last_rx s = s.last_rx_at

let transition s new_state =
  if s.st <> new_state then begin
    let old = s.st in
    s.st <- new_state;
    s.change_cb ~old new_state
  end

let send_control ep s =
  if Node.is_up ep.node then begin
    s.n_out <- s.n_out + 1;
    Telemetry.Registry.incr m_pkts_out;
    let ctl =
      {
        vrf = s.svrf;
        my_disc = s.disc;
        your_disc = s.peer_disc;
        state = s.st;
        detect_mult = s.detect_mult;
        tx_interval = s.tx_interval;
      }
    in
    Node.send ep.node
      (Packet.make ~src:s.slocal ~dst:s.sremote ~size:control_wire_size
         (Bfd ctl))
  end

let cancel_detect s =
  match s.detect_handle with
  | Some h ->
      Engine.cancel h;
      s.detect_handle <- None
  | None -> ()

let arm_detect ep s ~remote_interval =
  cancel_detect s;
  let interval = max remote_interval (Time.ms 1) in
  let window = s.detect_mult * interval in
  (* Seeded fault: detect twice as late as the advertised
     interval × multiplier bound promises. *)
  let window = if !Monitor.Faults.bfd_slow_detect then 2 * window else window in
  s.detect_handle <-
    Some
      (Engine.schedule_after ep.eng ~label:"bfd.detect" window (fun () ->
           s.detect_handle <- None;
           if s.st = Up || s.st = Init then begin
             s.peer_disc <- 0;
             Telemetry.Registry.incr m_detections;
             if Telemetry.Gate.on () then begin
               let now = Engine.now ep.eng in
               (match s.last_rx_at with
               | Some last_rx ->
                   ignore
                     (Telemetry.Span.add ep.eng "bfd_detect" ~start_at:last_rx
                        ~stop_at:now)
               | None -> ());
               let silent_s =
                 match s.last_rx_at with
                 | Some last_rx -> Time.to_sec_f (Time.diff now last_rx)
                 | None -> 0.0
               in
               Telemetry.Bus.emit ep.eng
                 (Telemetry.Event.Bfd_down
                    {
                      node = Node.name ep.node;
                      peer = Addr.to_string s.sremote;
                      vrf = s.svrf;
                      silent_s;
                      interval_s = Time.to_sec_f interval;
                      mult = s.detect_mult;
                    })
             end;
             transition s Down
           end))

let handle_control ep s (ctl : control) =
  if s.st <> Admin_down then begin
    s.n_in <- s.n_in + 1;
    Telemetry.Registry.incr m_pkts_in;
    s.last_rx_at <- Some (Engine.now ep.eng);
    if ctl.my_disc <> 0 then s.peer_disc <- ctl.my_disc;
    arm_detect ep s ~remote_interval:ctl.tx_interval;
    let to_up () =
      if s.st <> Up && Telemetry.Gate.on () then
        Telemetry.Bus.emit ep.eng
          (Telemetry.Event.Bfd_up
             {
               node = Node.name ep.node;
               peer = Addr.to_string s.sremote;
               vrf = s.svrf;
             });
      transition s Up
    in
    match (s.st, ctl.state) with
    (* RFC 5880 §6.8.6: a session held in AdminDown discards whatever the
       peer reports; only a local command re-enables it. The former
       [_, Admin_down] wildcard matched first and knocked an
       administratively-down session back to Down on a peer AdminDown. *)
    | Admin_down, (Admin_down | Down | Init | Up) -> ()
    | Down, Down -> transition s Init
    | Down, Init -> to_up ()
    | Down, Up -> (* illegal from Down; wait for the peer's Init *) ()
    | Init, (Init | Up) -> to_up ()
    | Init, Down -> ()
    | Up, Down ->
        (* Peer restarted its session. *)
        transition s Down
    | Up, (Init | Up) -> ()
    | (Down | Init | Up), Admin_down -> transition s Down
  end

let handle_packet ep (pkt : Packet.t) =
  match pkt.payload with
  | Bfd ctl -> (
      let key = session_key pkt.src ctl.vrf in
      match Hashtbl.find_opt ep.sessions key with
      | Some s -> (
          handle_control ep s ctl;
          true)
      | None -> true (* unknown session: absorbed, as a UDP port would *))
  | _ -> false

let endpoint node =
  let key = Node.name node in
  match Hashtbl.find_opt (registry ()) key with
  | Some ep when ep.node == node -> ep
  | Some _ | None ->
      let ep =
        {
          node;
          eng = Node.engine node;
          sessions = Hashtbl.create 8;
          next_disc = 0;
        }
      in
      Node.add_handler node (handle_packet ep);
      Hashtbl.replace (registry ()) key ep;
      ep

let stop_session s =
  (match s.tx_timer with
  | Some t ->
      Engine.stop_timer t;
      s.tx_timer <- None
  | None -> ());
  cancel_detect s;
  transition s Admin_down;
  Hashtbl.remove s.ep.sessions (session_key s.sremote s.svrf)

let create_session ep ?(tx_interval = Time.ms 100) ?(detect_mult = 3) ?local
    ?resume ~vrf ~remote () =
  let slocal =
    match local with
    | Some a -> a
    | None -> (
        match Node.addresses ep.node with
        | a :: _ -> a
        | [] -> invalid_arg "Bfd.create_session: node has no address")
  in
  (* Discriminators only need to be unique per local system; allocating
     them per endpoint (not from process-global state) keeps replicated
     records — and the store costs derived from their encoded size —
     byte-identical across repeated runs in one process. *)
  ep.next_disc <- ep.next_disc + 1;
  let disc, peer_disc, st =
    match resume with
    | Some (my_disc, your_disc) -> (my_disc, your_disc, Up)
    | None -> (ep.next_disc, 0, Down)
  in
  let s =
    {
      ep;
      svrf = vrf;
      slocal;
      sremote = remote;
      disc;
      peer_disc;
      tx_interval;
      detect_mult;
      st;
      tx_timer = None;
      detect_handle = None;
      change_cb = (fun ~old:_ _ -> ());
      n_in = 0;
      n_out = 0;
      last_rx_at = None;
    }
  in
  Hashtbl.replace ep.sessions (session_key remote vrf) s;
  Telemetry.Registry.incr m_sessions;
  send_control ep s;
  s.tx_timer <-
    Some
      (Engine.every ep.eng ~label:"bfd.tx" ~jitter:0.1 tx_interval (fun () ->
           if s.st <> Admin_down then send_control ep s));
  (* A resumed (Up) session must still detect a dead peer. *)
  if resume <> None then arm_detect ep s ~remote_interval:tx_interval;
  s

(* Live timer perturbation (chaos fault injection): change the transmit
   interval of a running session. The new interval rides in the next
   control packet's [tx_interval] field, so the remote end re-arms its
   detection window accordingly — exactly how a real BFD speaker
   renegotiates timers mid-session. *)
let set_tx_interval s interval =
  if interval <= 0 then invalid_arg "Bfd.set_tx_interval: non-positive";
  s.tx_interval <- interval;
  match s.tx_timer with
  | None -> ()
  | Some t ->
      Engine.stop_timer t;
      s.tx_timer <-
        Some
          (Engine.every s.ep.eng ~label:"bfd.tx" ~jitter:0.1 interval (fun () ->
               if s.st <> Admin_down then send_control s.ep s))

let tx_interval s = s.tx_interval

module Relay = struct
  type t = {
    rnode : Node.t;
    mutable timer : Engine.timer option;
    mutable sent : int;
  }

  let start node ?(tx_interval = Time.ms 100) ~src ~dst ~vrf ~my_disc
      ~your_disc () =
    let t = { rnode = node; timer = None; sent = 0 } in
    let ctl =
      {
        vrf;
        my_disc;
        your_disc;
        state = Up;
        detect_mult = 3;
        tx_interval;
      }
    in
    let send () =
      if Node.is_up node then begin
        t.sent <- t.sent + 1;
        Node.send node
          (Packet.make ~src ~dst ~size:control_wire_size (Bfd ctl))
      end
    in
    send ();
    t.timer <-
      Some
        (Engine.every (Node.engine node) ~label:"bfd.echo" ~jitter:0.05
           tx_interval send);
    t

  let stop t =
    match t.timer with
    | Some timer ->
        Engine.stop_timer timer;
        t.timer <- None
    | None -> ()

  let packets_sent t = t.sent
end
