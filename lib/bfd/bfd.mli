(** Bidirectional Forwarding Detection (RFC 5880, asynchronous mode).

    Each TENSOR container runs one BFD process whose VRFs map one-to-one
    to the VRFs of its BGP process (§3.3.2). Sessions transmit control
    packets every [tx_interval] and declare the path down when no packet
    arrives for [detect_mult × remote interval] — the paper's deployment
    uses 100 ms × 3.

    Two extra facilities support TENSOR:

    - {!on_state_change} is the IPC channel by which BFD reports VRF link
      failures to the BGP process and the container supervisor.
    - {!Relay} is the agent server's "duplicate BFD process": a
      transmitter that keeps emitting Up-state packets with the
      container's source address and discriminators, so the remote AS
      never detects the primary's failure while a backup boots. *)

type state = Admin_down | Down | Init | Up

val pp_state : Format.formatter -> state -> unit

type control = {
  vrf : string;
  my_disc : int;
  your_disc : int;
  state : state;
  detect_mult : int;
  tx_interval : Sim.Time.span;  (** Sender's desired min TX. *)
}

type Netsim.Packet.payload += Bfd of control

(** {1 Endpoint and sessions} *)

type endpoint
(** Per-node BFD process demultiplexing sessions by (peer, vrf). *)

type session

val endpoint : Netsim.Node.t -> endpoint

val create_session :
  endpoint ->
  ?tx_interval:Sim.Time.span ->
  ?detect_mult:int ->
  ?local:Netsim.Addr.t ->
  ?resume:int * int ->
  vrf:string ->
  remote:Netsim.Addr.t ->
  unit ->
  session
(** Defaults: 100 ms interval, multiplier 3, local = node's first
    address. The session starts transmitting immediately (state Down,
    initiating the three-way bring-up).

    [resume (my_disc, your_disc)] is the NSR migration path: the session
    starts directly in Up with the given discriminators (replicated from
    the failed primary), so the remote peer — kept alive by the agent's
    relay meanwhile — never observes a state change. *)

val stop_session : session -> unit
(** Stops transmitting and detection (administrative down). *)

val session_state : session -> state

val on_state_change : session -> (old:state -> state -> unit) -> unit
(** Fires on every transition, including the Up→Down detection that
    TENSOR treats as a VRF link-failure report. *)

val my_disc : session -> int
val your_disc : session -> int
(** Discriminators — what the agent needs to impersonate the session. *)

val vrf : session -> string
val remote : session -> Netsim.Addr.t
val local : session -> Netsim.Addr.t

val packets_in : session -> int
val packets_out : session -> int

val last_rx : session -> Sim.Time.t option
(** When the most recent control packet arrived — the peer-side liveness
    evidence. *)

(** {1 The agent's relay transmitter} *)

module Relay : sig
  type t

  val start :
    Netsim.Node.t ->
    ?tx_interval:Sim.Time.span ->
    src:Netsim.Addr.t ->
    dst:Netsim.Addr.t ->
    vrf:string ->
    my_disc:int ->
    your_disc:int ->
    unit ->
    t
  (** Transmits Up-state control packets from [src] (the container's
      address, not the agent's) every [tx_interval] (default 100 ms)
      until {!stop}. Purely transmit-side: the relay never receives. *)

  val stop : t -> unit
  val packets_sent : t -> int
end

(** {1 Timer perturbation} *)

val set_tx_interval : session -> Sim.Time.span -> unit
(** Changes the transmit interval of a live session (the chaos engine's
    BFD timer-perturbation fault). The remote end learns the new
    interval from the next control packet and re-arms its detection
    window with it. Raises [Invalid_argument] on a non-positive span. *)

val tx_interval : session -> Sim.Time.span
