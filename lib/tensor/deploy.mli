(** Cluster assembly: the production topology of Figure 3, in one call.

    A deployment builds the forwarding fabric, host machines, the agent
    server, the controller, and the replicated store, then lets callers
    attach external peering ASes and deploy TENSOR services (primary
    containers with designated backup hosts). It installs the NSR
    migrator on the controller:

    on failure → (controller localizes per §3.3.3) → kill/fence the old
    instance → create the backup container (warm boot for
    application/container failures, cold boot for host-level failures) →
    recover TCP/BGP/BFD state from the store → re-route the service
    addresses → resume — all while the agent's BFD relay keeps the remote
    AS convinced nothing happened. *)

type t = {
  eng : Sim.Engine.t;
  net : Netsim.Network.t;
  fabric : Netsim.Node.t;
  hosts : Orch.Host.t array;
  agent : Orch.Agent.t;
  ctrl : Orch.Controller.t;
  store_server : Store.Server.t;
  store_addr : Netsim.Addr.t;
  store_replica_server : Store.Server.t option;
      (** Present when [build ~store_replica:true]: the synchronous
          replica, exposed so chaos scenarios can crash/promote it. *)
  trace : Sim.Trace.t;
  warm_boot : Sim.Time.span;
      (** Backup container boot for app/container failures (1 s). *)
  cold_boot : Sim.Time.span;
      (** Cold start for host-level failures: image distribution +
          scheduling on a non-preheated host (4.4 s). *)
  mutable picker :
    (service_id:string -> avoid:string list -> Orch.Host.t option) option;
      (** Placement hook; install via {!set_service_picker}. *)
}

val build :
  ?seed:int ->
  ?hosts:int ->
  ?warm_boot:Sim.Time.span ->
  ?cold_boot:Sim.Time.span ->
  ?store_cost:Store.cost_model ->
  ?store_delay:Sim.Time.span ->
  ?store_replica:bool ->
  ?ctrl_config:Orch.Controller.config ->
  unit ->
  t
(** Defaults: 3 hosts, warm boot 1 s, cold boot 4.4 s, the calibrated
    store cost model, and a local store (100 µs away). [store_delay]
    moves the store further (the §5 remote-replication discussion);
    [store_replica] (default false) attaches a synchronous replica on a
    second store server — the paper's "Redis set up on multiple local
    servers". [ctrl_config] overrides the controller's timers (fleet
    sweeps vary probe cadence with controller placement). The trace
    records every migration milestone. *)

val set_service_picker :
  t -> (service_id:string -> avoid:string list -> Orch.Host.t option) -> unit
(** Installs a placement hook consulted whenever a migration (failure or
    planned) or standby provisioning needs a host for the next instance;
    [avoid] always contains the outgoing instance's host. Returning
    [None] makes the migrator defer gracefully: it emits
    [Migration_deferred] with reason ["no-healthy-host"] and re-asks
    every second — no container is created, nothing thrashes — until the
    hook yields a host or a newer migration supersedes the attempt. The
    fleet layer installs {!Orch.Controller.pick_host} here with
    region-affinity and replica anti-affinity baked in. Without a hook,
    placement falls back to the service's round-robin backup index. *)

(** {1 External peering ASes} *)

type peer_as = {
  pa_name : string;
  pa_node : Netsim.Node.t;
  pa_addr : Netsim.Addr.t;
  pa_speaker : Bgp.Speaker.t;
  pa_asn : int;
}

val add_peer_as :
  t ->
  ?profile:Bgp.Speaker.profile ->
  ?link_delay:Sim.Time.span ->
  asn:int ->
  string ->
  peer_as
(** A remote AS border router on the fabric (FRRouting profile by
    default), ready to accept sessions from TENSOR services. *)

val peer_expects :
  peer_as -> vrf:string -> vip:Netsim.Addr.t -> local_asn:int -> Bgp.Speaker.peer
(** Configures the peer side of a session: a passive peer entry for the
    given service address, plus the peer's own BFD responder. Returns the
    peer handle for inspection. *)

(** {1 TENSOR services} *)

type service

val deploy_service :
  t ->
  ?primary_host:int ->
  ?backup_host:int ->
  ?backup_mode:[ `Cold | `Preheat ] ->
  ?replicate:bool ->
  ?ack_hold:bool ->
  ?store_resilient:bool ->
  ?degrade_frac:float ->
  ?store_addr:Netsim.Addr.t ->
  id:string ->
  local_asn:int ->
  App.vrf_spec list ->
  service
(** Creates the primary container on [primary_host] (default 0), routes
    the VIPs, installs the app, registers the service with the controller
    and the BFD relays with the agent. [backup_host] (default 1) receives
    migrations.

    [store_resilient] (default false) gives the app a retrying store
    client, failing over to the deployment's replica when one was built
    ({!build}'s [store_replica]). [degrade_frac] (default 0., disabled)
    is forwarded to {!App.config}: the fraction of the negotiated hold
    time after which an unreachable store flips replication into degraded
    pass-through instead of letting the peer's hold timer fire.

    [backup_mode] (default [`Cold]) selects §3.3.2's energy/latency
    trade-off: [`Cold] creates and boots the backup container at
    migration time; [`Preheat] keeps an idle standby container booted on
    the backup host, so migration skips the boot and only downloads state
    from the store. A consumed standby is replaced automatically.

    [store_addr] points this service at a different store than the
    deployment's default — fleet topologies give every region its own
    store server so a regional outage only sheds that region. *)

val service_app : service -> App.t
(** The app of the current primary instance. *)

val service_container : service -> Orch.Container.t
val service_id : service -> string

val wait_established : t -> service -> ?timeout:Sim.Time.span -> unit -> bool
(** Runs the engine until every VRF session of the service is
    Established (true) or the timeout elapses (false). *)

val planned_migration :
  t -> ?done_:(Orch.Container.t -> unit) -> service -> unit
(** Proactive maintenance (§4.4): freeze the healthy primary, flush its
    replication pipeline, then run the ordinary NSR migration. The remote
    AS observes nothing — no graceful-restart window, no frozen routing
    policies, no downtime — which is the operational property that lets
    the paper's deployment upgrade software at any hour. [done_] fires
    with the replacement container once the controller has resumed
    monitoring on it (the fleet upgrade-wave planner chains drains on
    it). *)

(** {1 Failure injection (Table 1 scenarios)} *)

val inject_app_failure : t -> service -> unit
val inject_container_failure : t -> service -> unit
val inject_host_failure : t -> service -> unit
val inject_host_network_failure : t -> service -> unit

(** {1 Observability} *)

val migration_trace : t -> Sim.Trace.t
(** Alias of [trace]: categories ["detect"], ["initiate"], ["migrate"],
    ["tcp-synced"] (per VRF), plus the controller's own entries. *)

val service_routes : service -> vrf:string -> int
