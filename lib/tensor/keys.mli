(** Store key schema and record codecs (§3.1.2).

    Every replicated datum lives under a key whose leading component
    selects the record kind and whose connection id scopes it to one BGP
    session (one container VRF = one peering AS):

    - [meta|<conn>] — session metadata: addresses, ports, negotiated
      parameters, the peer's OPEN, initial sequence numbers (the
      TCP_REPAIR bootstrap of "Matching ACK numbers");
    - [ack|<conn>] — the replicated-ACK watermark: the highest inferred
      ACK whose message is durable;
    - [in|<conn>|<seq>] — a received message awaiting application
      (deleted once applied and checkpointed — the ≤ 64 KB storage-bound
      argument);
    - [out|<conn>|<offset>] — a sent message, keyed by its byte offset in
      the TCP send stream (rebuilds the sender buffer on takeover);
    - [outtrim|<conn>] — send-stream offset acknowledged by the peer
      (records below it are deleted);
    - [bfd|<conn>] — the BFD discriminator pair (the agent relay's and
      the resumed session's identity);
    - [rib|<service>|<vrf>|<prefix>] — routing-table checkpoint entries.

    Values with binary content (BGP frames) are hex-encoded inside
    line-oriented records, so the store holds plain strings. *)

type conn_id = string
(** ["<service>|<vrf>"]. *)

val conn_id : service:string -> vrf:string -> conn_id

val epoch_cid : conn_id -> int -> conn_id
(** Epoch-qualified connection id naming one TCP connection's stream
    key space. Stream-scoped records (ack/in/out/outtrim/part) are
    written under [epoch_cid cid epoch]; the meta record carries the
    epoch, so recovery reads exactly the key space of the connection it
    resumes and a straggler write from a torn-down predecessor stream
    can never corrupt the successor's cursors. [epoch_cid cid 0 = cid]. *)

val meta_key : conn_id -> string
val ack_key : conn_id -> string
val in_key : conn_id -> int -> string
val in_prefix : conn_id -> string
val out_key : conn_id -> int -> string
val out_prefix : conn_id -> string
val outtrim_key : conn_id -> string
val bfd_key : conn_id -> string
val part_key : conn_id -> string
(** Key of the replicated partial-frame tail: written when a stalled
    sender has delivered only a fragment of a message, so the fragment's
    ACK can be released without breaking recoverability. *)

val rib_key : service:string -> vrf:string -> Netsim.Addr.prefix -> string
val rib_prefix : service:string -> string

val seq_of_in_key : conn_id -> string -> int option
val offset_of_out_key : conn_id -> string -> int option
val vrf_prefix_of_rib_key : service:string -> string -> (string * Netsim.Addr.prefix) option

(** {1 Record codecs} *)

type meta = {
  epoch : int;  (** Connection epoch naming the stream-scoped key space. *)
  vrf : string;
  local_addr : Netsim.Addr.t;
  local_port : int;
  peer_addr : Netsim.Addr.t;
  peer_port : int;
  local_asn : int;
  hold_time : int;  (** Negotiated. *)
  as4 : bool;
  iss : int;
  irs : int;
  mss : int;
  rcv_wnd : int;
  peer_open_raw : string;  (** Encoded OPEN frame. *)
  peer_supports_gr : bool;
  peer_gr_restart_time : int;
}

val encode_meta : meta -> string
val decode_meta : string -> (meta, string) result

val encode_in_record : ack:int -> raw:string -> string
val decode_in_record : string -> (int * string, string) result
(** [(inferred_ack, raw_frame)]. *)

val encode_rib_entry : Bgp.Rib.source -> Netsim.Addr.prefix -> Bgp.Attrs.t -> string
val decode_rib_entry :
  string -> (Bgp.Rib.source * Netsim.Addr.prefix * Bgp.Attrs.t, string) result

val encode_bfd : my_disc:int -> your_disc:int -> string
val decode_bfd : string -> (int * int, string) result

val encode_part : offset:int -> bytes:string -> string
(** [offset] is the count of parsed stream bytes the fragment follows. *)

val decode_part : string -> (int * string, string) result

val hex : string -> string
val unhex : string -> (string, string) result
