type conn_id = string

let conn_id ~service ~vrf = service ^ "|" ^ vrf

(* Stream-scoped records (out/in/ack/outtrim/part) are keyed by the
   connection *epoch*: each successor TCP connection of the same peer
   gets a fresh key space, so a half-dead write from a torn-down stream
   can never be grafted onto the next connection's sequence numbers at
   recovery time. Epoch 0 maps to the bare conn id, which keeps fresh
   bring-up keys (and every pre-epoch store dump) unchanged. *)
let epoch_cid cid epoch =
  if epoch = 0 then cid else Printf.sprintf "%s@%d" cid epoch

let meta_key cid = "meta|" ^ cid
let ack_key cid = "ack|" ^ cid
let in_key cid seq = Printf.sprintf "in|%s|%012d" cid seq
let in_prefix cid = "in|" ^ cid ^ "|"
let out_key cid off = Printf.sprintf "out|%s|%012d" cid off
let out_prefix cid = "out|" ^ cid ^ "|"
let outtrim_key cid = "outtrim|" ^ cid
let bfd_key cid = "bfd|" ^ cid
let part_key cid = "part|" ^ cid

let rib_key ~service ~vrf prefix =
  Printf.sprintf "rib|%s|%s|%s" service vrf (Netsim.Addr.prefix_to_string prefix)

let rib_prefix ~service = "rib|" ^ service ^ "|"

let tail_int ~prefix key =
  let plen = String.length prefix in
  if String.length key > plen && String.sub key 0 plen = prefix then
    int_of_string_opt (String.sub key plen (String.length key - plen))
  else None

let seq_of_in_key cid key = tail_int ~prefix:(in_prefix cid) key
let offset_of_out_key cid key = tail_int ~prefix:(out_prefix cid) key

let vrf_prefix_of_rib_key ~service key =
  let pfx = rib_prefix ~service in
  let plen = String.length pfx in
  if String.length key > plen && String.sub key 0 plen = pfx then
    let rest = String.sub key plen (String.length key - plen) in
    match String.index_opt rest '|' with
    | Some i -> (
        let vrf = String.sub rest 0 i in
        let pstr = String.sub rest (i + 1) (String.length rest - i - 1) in
        match Netsim.Addr.prefix_of_string pstr with
        | p -> Some (vrf, p)
        | exception Invalid_argument _ -> None)
    | None -> None
  else None

(* --- Hex ----------------------------------------------------------------- *)

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd hex length"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "bad hex"

(* --- Meta ---------------------------------------------------------------- *)

type meta = {
  epoch : int; (* connection epoch naming the stream-scoped key space *)
  vrf : string;
  local_addr : Netsim.Addr.t;
  local_port : int;
  peer_addr : Netsim.Addr.t;
  peer_port : int;
  local_asn : int;
  hold_time : int;
  as4 : bool;
  iss : int;
  irs : int;
  mss : int;
  rcv_wnd : int;
  peer_open_raw : string;
  peer_supports_gr : bool;
  peer_gr_restart_time : int;
}

let encode_meta m =
  String.concat ";"
    [
      "ep=" ^ string_of_int m.epoch;
      "vrf=" ^ m.vrf;
      "la=" ^ Netsim.Addr.to_string m.local_addr;
      "lp=" ^ string_of_int m.local_port;
      "pa=" ^ Netsim.Addr.to_string m.peer_addr;
      "pp=" ^ string_of_int m.peer_port;
      "asn=" ^ string_of_int m.local_asn;
      "hold=" ^ string_of_int m.hold_time;
      "as4=" ^ (if m.as4 then "1" else "0");
      "iss=" ^ string_of_int m.iss;
      "irs=" ^ string_of_int m.irs;
      "mss=" ^ string_of_int m.mss;
      "rwnd=" ^ string_of_int m.rcv_wnd;
      "gr=" ^ (if m.peer_supports_gr then "1" else "0");
      "grt=" ^ string_of_int m.peer_gr_restart_time;
      "open=" ^ hex m.peer_open_raw;
    ]

let fields s =
  String.split_on_char ';' s
  |> List.filter_map (fun kv ->
         match String.index_opt kv '=' with
         | Some i ->
             Some
               ( String.sub kv 0 i,
                 String.sub kv (i + 1) (String.length kv - i - 1) )
         | None -> None)

let decode_meta s =
  let f = fields s in
  let get k = List.assoc_opt k f in
  let geti k = Option.bind (get k) int_of_string_opt in
  match
    ( get "vrf", get "la", geti "lp", get "pa", geti "pp", geti "asn",
      geti "hold", get "as4", geti "iss", geti "irs", geti "mss",
      geti "rwnd", get "gr", geti "grt", get "open" )
  with
  | ( Some vrf, Some la, Some local_port, Some pa, Some peer_port,
      Some local_asn, Some hold_time, Some as4, Some iss, Some irs, Some mss,
      Some rcv_wnd, Some gr, Some peer_gr_restart_time, Some open_hex ) -> (
      match unhex open_hex with
      | Error e -> Error e
      | Ok peer_open_raw -> (
          try
            Ok
              {
                epoch = (match geti "ep" with Some e -> e | None -> 0);
                vrf;
                local_addr = Netsim.Addr.of_string la;
                local_port;
                peer_addr = Netsim.Addr.of_string pa;
                peer_port;
                local_asn;
                hold_time;
                as4 = as4 = "1";
                iss;
                irs;
                mss;
                rcv_wnd;
                peer_open_raw;
                peer_supports_gr = gr = "1";
                peer_gr_restart_time;
              }
          with Invalid_argument e -> Error e))
  | _ -> Error "missing meta field"

(* --- In records ------------------------------------------------------------ *)

let encode_in_record ~ack ~raw = string_of_int ack ^ ":" ^ raw

let decode_in_record s =
  match String.index_opt s ':' with
  | None -> Error "no ack separator"
  | Some i -> (
      match int_of_string_opt (String.sub s 0 i) with
      | None -> Error "bad ack"
      | Some ack -> Ok (ack, String.sub s (i + 1) (String.length s - i - 1)))

(* --- RIB entries ------------------------------------------------------------ *)

let encode_rib_entry (src : Bgp.Rib.source) prefix attrs =
  let update =
    Bgp.Msg.Update { withdrawn = []; attrs = Some attrs; nlri = [ prefix ] }
  in
  String.concat ";"
    [
      "sk=" ^ src.Bgp.Rib.key;
      "pasn=" ^ string_of_int src.Bgp.Rib.peer_asn;
      "paddr=" ^ Netsim.Addr.to_string src.Bgp.Rib.peer_addr;
      "rid=" ^ Netsim.Addr.to_string src.Bgp.Rib.router_id;
      "ebgp=" ^ (if src.Bgp.Rib.ebgp then "1" else "0");
      "u=" ^ hex (Bgp.Msg.encode update);
    ]

let decode_rib_entry s =
  let f = fields s in
  let get k = List.assoc_opt k f in
  match (get "sk", get "pasn", get "paddr", get "rid", get "ebgp", get "u") with
  | Some key, Some pasn, Some paddr, Some rid, Some ebgp, Some u_hex -> (
      match (int_of_string_opt pasn, unhex u_hex) with
      | Some peer_asn, Ok raw -> (
          match Bgp.Msg.decode raw with
          | Ok (Bgp.Msg.Update { attrs = Some attrs; nlri = [ prefix ]; _ }) -> (
              try
                Ok
                  ( {
                      Bgp.Rib.key;
                      peer_asn;
                      peer_addr = Netsim.Addr.of_string paddr;
                      router_id = Netsim.Addr.of_string rid;
                      ebgp = ebgp = "1";
                    },
                    prefix,
                    attrs )
              with Invalid_argument e -> Error e)
          | Ok _ -> Error "unexpected rib payload"
          | Error e -> Error (Format.asprintf "%a" Bgp.Msg.pp_error e))
      | _ -> Error "bad rib fields")
  | _ -> Error "missing rib field"

(* --- BFD ------------------------------------------------------------------- *)

let encode_bfd ~my_disc ~your_disc =
  string_of_int my_disc ^ "|" ^ string_of_int your_disc

let encode_part ~offset ~bytes = string_of_int offset ^ ":" ^ hex bytes

let decode_part s =
  match String.index_opt s ':' with
  | None -> Error "no part separator"
  | Some i -> (
      match
        ( int_of_string_opt (String.sub s 0 i),
          unhex (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some offset, Ok bytes -> Ok (offset, bytes)
      | _ -> Error "bad part record")

let decode_bfd s =
  match String.split_on_char '|' s with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some my_disc, Some your_disc -> Ok (my_disc, your_disc)
      | _ -> Error "bad bfd discs")
  | _ -> Error "bad bfd record"
