open Sim
open Netsim

(* --- 1. Cold vs preheated backups ------------------------------------------ *)

type preheat_result = { cold_total_s : float; preheat_total_s : float }

let one_migration ~backup_mode =
  let dep = Deploy.build () in
  let eng = dep.Deploy.eng in
  let peer = Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Deploy.deploy_service dep ~backup_mode ~id:"ablate" ~local_asn:64900
      [
        App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
          ~peer_asn:65010 ();
      ]
  in
  if not (Deploy.wait_established dep svc ()) then nan
  else begin
    Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf:"v0"
      (Workload.Prefixes.distinct 300);
    Engine.run_for eng (Time.sec 10);
    let t0 = Engine.now eng in
    Deploy.inject_container_failure dep svc;
    Engine.run_for eng (Time.sec 30);
    match Trace.first dep.Deploy.trace ~category:"tcp-synced" with
    | Some e -> Time.to_sec_f (Time.diff e.Trace.at t0)
    | None -> nan
  end

let run_preheat () =
  {
    cold_total_s = one_migration ~backup_mode:`Cold;
    preheat_total_s = one_migration ~backup_mode:`Preheat;
  }

let print_preheat r =
  Report.section "Ablation: cold vs preheated backup containers (§3.3.2)";
  Report.kv "container failure, cold backup" "%s total"
    (Report.fseconds r.cold_total_s);
  Report.kv "container failure, preheated standby" "%s total"
    (Report.fseconds r.preheat_total_s);
  Report.kv "boot time saved" "%s"
    (Report.fseconds (r.cold_total_s -. r.preheat_total_s));
  Report.note
    "preheat skips the backup container boot at the cost of idle standby";
  Report.note "resources (the paper's energy/latency trade-off)."

(* --- 2./3. Replication modes -------------------------------------------------- *)

type sync_result = {
  mode : string;
  store_rtt_ms : float;
  learn_s : float;
  mean_ack_hold_ms : float;
  violations : int;
  nsr_held : bool;
}

let flood_updates = 100_000

let one_mode ~mode ~store_delay ~ack_hold =
  let dep = Deploy.build ~store_delay () in
  let eng = dep.Deploy.eng in
  let peer = Deploy.add_peer_as dep ~asn:65010 "peer" in
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Deploy.deploy_service dep ~ack_hold ~id:"mode" ~local_asn:64900
      [
        App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
          ~peer_asn:65010 ();
      ]
  in
  let peer_drops = ref 0 in
  (* Wire monitor for the NSR safety invariant. *)
  let violations = ref 0 in
  let cid = Keys.conn_id ~service:"mode" ~vrf:"v0" in
  (match
     Network.link_between dep.Deploy.net dep.Deploy.fabric peer.Deploy.pa_node
   with
  | Some link ->
      Link.tap link (fun _ pkt ->
          match pkt.Packet.payload with
          | Tcp.Segment.Tcp seg
            when Addr.equal pkt.Packet.src vip
                 && seg.Tcp.Segment.flags.Tcp.Segment.ack ->
              let durable =
                match
                  Store.Server.peek dep.Deploy.store_server (Keys.ack_key cid)
                with
                | Some v -> (
                    match int_of_string_opt v with Some a -> a | None -> 0)
                | None -> max_int
              in
              if seg.Tcp.Segment.ack > durable then incr violations
          | _ -> ())
  | None -> ());
  if not (Deploy.wait_established dep svc ()) then
    {
      mode;
      store_rtt_ms = 2.0 *. Time.to_ms_f store_delay;
      learn_s = nan;
      mean_ack_hold_ms = nan;
      violations = 0;
      nsr_held = false;
    }
  else begin
    List.iter
      (fun p -> Bgp.Speaker.on_peer_down p (fun _ -> incr peer_drops))
      (Bgp.Speaker.peers peer.Deploy.pa_speaker);
    Engine.run_for eng (Time.sec 2);
    (* Flood. *)
    let spk = Option.get (App.speaker (Deploy.service_app svc)) in
    let t0 = Engine.now eng in
    let rng = Rng.create 7 in
    let routes =
      Workload.Prefixes.attr_groups rng ~groups:(flood_updates / 500)
        ~next_hop:peer.Deploy.pa_addr flood_updates
    in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (pfx, attrs) ->
        let key = Bgp.Attrs.hash attrs in
        let cur = try Hashtbl.find tbl key with Not_found -> [] in
        Hashtbl.replace tbl key ((pfx, attrs) :: cur))
      routes;
    Det.iter_sorted ~compare:Int.compare
      (fun _ l ->
        match l with
        | (_, attrs) :: _ ->
            Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf:"v0" ~attrs
              (List.map fst l)
        | [] -> ())
      tbl;
    let learn_s =
      let deadline = Time.add t0 (Time.minutes 10) in
      let rec loop () =
        if Bgp.Speaker.updates_learned spk >= flood_updates then
          Time.to_sec_f (Time.diff (Bgp.Speaker.last_rx_applied spk) t0)
        else if Engine.now eng >= deadline then nan
        else begin
          Engine.run_until eng
            (min deadline (Time.add (Engine.now eng) (Time.ms 100)));
          loop ()
        end
      in
      loop ()
    in
    let mean_ack_hold_ms =
      match App.replicator (Deploy.service_app svc) ~vrf:"v0" with
      | Some repl ->
          let s = Replicator.hold_samples repl in
          if Metrics.n s = 0 then 0.0 else Metrics.mean s *. 1e3
      | None -> nan
    in
    (* A second flood with a crash in the middle of the stream. With
       synchronous replication the held ACKs guarantee the peer still has
       everything the backup lacks; the resumed connection
       re-synchronizes and the peer never notices (NSR). Without the
       hold, ACKs run ahead of the replication pipeline: the peer has
       discarded data whose store writes never left the dying node, the
       resumed stream has a permanent gap, the connection stalls, and
       the peer session eventually dies - the NSR guarantee is broken. *)
    Engine.run_for eng (Time.sec 5);
    let durable () =
      match Store.Server.peek dep.Deploy.store_server (Keys.ack_key cid) with
      | Some v -> ( match int_of_string_opt v with Some a -> a | None -> 0)
      | None -> 0
    in
    let peer_acked () =
      List.fold_left
        (fun acc p ->
          match Bgp.Speaker.peer_session p with
          | Some s -> (
              match Bgp.Session.conn s with
              | Some c -> max acc (Tcp.snd_una c)
              | None -> acc)
          | None -> acc)
        0
        (Bgp.Speaker.peers peer.Deploy.pa_speaker)
    in
    let durable0 = durable () in
    Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf:"v0"
      (Workload.Prefixes.distinct_from ~base:900_000 50_000);
    (* Fire the crash exactly when the mode's vulnerability (or lack of
       it) is observable: for asynchronous replication, when the peer has
       acknowledged data whose replication is not yet durable (the
       consistency window of 3.1.1); for synchronous replication that
       state never exists, so crash mid-flood once replication is clearly
       in progress. *)
    let deadline = Time.add (Engine.now eng) (Time.sec 10) in
    let rec wait_window () =
      let gap = peer_acked () - durable () in
      if gap > 20_000 || durable () - durable0 > 150_000 then ()
      else if Engine.now eng < deadline then begin
        Engine.run_for eng (Time.ms 2);
        wait_window ()
      end
    in
    wait_window ();
    Deploy.inject_container_failure dep svc;
    (* The broken (asynchronous) case surfaces when the peer next sends
       data: its first keepalive after the resume lands beyond the
       backup's receive point, can never be acknowledged, and the
       connection dies after its retries exhaust (~30 s keepalive +
       ~50 s of backoff). Run long enough to observe it. *)
    Engine.run_for eng (Time.sec 150);
    {
      mode;
      store_rtt_ms = 2.0 *. Time.to_ms_f store_delay;
      learn_s;
      mean_ack_hold_ms;
      violations = !violations;
      nsr_held = !peer_drops = 0;
    }
  end

let run_replication_modes () =
  [
    one_mode ~mode:"local, synchronous" ~store_delay:(Time.us 100)
      ~ack_hold:true;
    one_mode ~mode:"remote (30ms RTT), synchronous"
      ~store_delay:(Time.ms 15) ~ack_hold:true;
    one_mode ~mode:"remote (30ms RTT), asynchronous"
      ~store_delay:(Time.ms 15) ~ack_hold:false;
  ]

let print_replication_modes rows =
  Report.section
    "Ablation: replication placement and synchrony (§3.1.1, §5)";
  Report.table
    ~header:
      [ "mode"; "store RTT"; "learn 100K"; "mean ACK hold"; "violations";
        "NSR held" ]
    (List.map
       (fun r ->
         [
           r.mode;
           Printf.sprintf "%.1f ms" r.store_rtt_ms;
           Report.fseconds r.learn_s;
           Printf.sprintf "%.2f ms" r.mean_ack_hold_ms;
           string_of_int r.violations;
           (if r.nsr_held then "YES" else "NO (session died)");
         ])
       rows);
  Report.note
    "synchronous local replication: zero violations, small ACK delay (within";
  Report.note
    "Fig. 5(a)'s harmless region). Remote synchronous replication inflates the";
  Report.note
    "ACK delay past the threshold (the paper's reason to leave disaster";
  Report.note
    "recovery asynchronous); asynchronous replication reopens the";
  Report.note
    "acknowledged-but-unreplicated window: after a crash the resumed stream";
  Report.note "has a gap the peer cannot fill, and the session dies."


(* --- 4. Interception technology (Netfilter vs eBPF, §5) -------------------- *)

type hook_result = { hook : string; cost_ns : int; throughput_bps : float }

let hook_throughput ~cost_ns ~with_chain =
  let eng = Engine.create () in
  let net = Network.create eng in
  let sender = Network.add_node net "sender" in
  let receiver = Network.add_node net "receiver" in
  let _, _, dst = Network.connect net ~delay:(Time.us 50) sender receiver in
  let proc_cost = Time.of_us_f 2.5 in
  let s_tx = Tcp.create_stack ~proc_cost ~hook_cost:(Time.ns cost_ns) sender in
  let s_rx = Tcp.create_stack ~proc_cost ~hook_cost:(Time.ns cost_ns) receiver in
  if with_chain then begin
    (* Both endpoints intercept egress (data on one side, ACKs on the
       other), as a TENSOR gateway and its tcp_queue do. *)
    Tcp.set_output_chain s_tx (Some (Netfilter.create ()));
    Tcp.set_output_chain s_rx (Some (Netfilter.create ()))
  end;
  let received = ref 0 in
  Tcp.listen s_rx ~port:5001 (fun c ->
      Tcp.on_data c (fun d -> received := !received + String.length d));
  let conn = Tcp.connect s_tx ~mss:100 ~rcv_wnd:400_000 ~dst ~dst_port:5001 () in
  let written = ref 0 in
  let chunk = String.make 65_536 'h' in
  let refill () =
    if Tcp.state conn = Tcp.Established then
      while !written - (Tcp.snd_una conn - Tcp.iss conn) < 1_200_000 do
        Tcp.write conn chunk;
        written := !written + String.length chunk
      done
  in
  Tcp.on_established conn (fun () -> refill ());
  let t = Engine.every eng (Time.ms 5) refill in
  Engine.run_until eng (Time.ms 300);
  let base = !received in
  Engine.run_until eng (Time.ms 700);
  Engine.stop_timer t;
  float_of_int ((!received - base) * 8) /. 0.4

let run_hook_overhead () =
  [
    {
      hook = "no interception";
      cost_ns = 0;
      throughput_bps = hook_throughput ~cost_ns:0 ~with_chain:false;
    };
    {
      hook = "eBPF hook";
      cost_ns = 150;
      throughput_bps = hook_throughput ~cost_ns:150 ~with_chain:true;
    };
    {
      hook = "Netfilter NFQUEUE";
      cost_ns = 500;
      throughput_bps = hook_throughput ~cost_ns:500 ~with_chain:true;
    };
  ]

let print_hook_overhead rows =
  Report.section
    "Ablation: interception technology (Netfilter vs eBPF, §5)";
  Report.table
    ~header:[ "egress hook"; "per-segment cost"; "100B-packet throughput" ]
    (List.map
       (fun r ->
         [
           r.hook;
           Printf.sprintf "%d ns" r.cost_ns;
           Report.fbps r.throughput_bps;
         ])
       rows);
  Report.note
    "the paper keeps Netfilter (mature at development time) and cites eBPF as";
  Report.note
    "the faster future alternative; the modelled per-segment costs quantify the";
  Report.note "packet-rate headroom the switch would recover."
