open Sim
open Netsim

let m_rx_repl = Telemetry.Registry.counter "replicator.rx_replicated"
let m_tx_repl = Telemetry.Registry.counter "replicator.tx_replicated"
let m_acks_held = Telemetry.Registry.counter "replicator.acks_held"
let m_acks_released = Telemetry.Registry.counter "replicator.acks_released"
let m_store_retries = Telemetry.Registry.counter "replicator.store_retries"
let m_hold_s = Telemetry.Registry.histogram "replicator.ack_hold_s"
let m_acks_shed = Telemetry.Registry.counter "replicator.acks_shed"
let m_degrades = Telemetry.Registry.counter "replicator.degrades"
let m_degraded_s = Telemetry.Registry.histogram "replicator.degraded_s"

(* A strictly ordered, depth-one-pipelined stream of store operations.
   Consecutive sets (and consecutive deletes) coalesce into batches, which
   is what keeps the per-message replication cost on the cheap side of the
   Figure 5(b) batching curve under update floods. *)
type op =
  | Set of (string * string) list * (unit -> unit) list
  | Del of string list

type lane = {
  mutable queue : op list; (* reversed *)
  mutable inflight : bool;
  mutable current : op option; (* the op the pump holds, for shedding *)
  mutable blocked_since : Time.t option; (* first unanswered store attempt *)
}

(* An inbound replica may be trimmed only once it is BOTH durable (its
   control-lane write completed) and applied to the routing table. The
   two events race across lanes, so track both. *)
type in_state = { in_key : string; mutable durable : bool; mutable applied : bool }

type t = {
  replicate : bool;
  ack_hold : bool;
  max_batch : int;
  eng : Engine.t;
  client : Store.Client.t;
  cid : Keys.conn_id;
  service : string;
  mutable stopped : bool;
  (* Two write pumps, like two pipelined connections to Redis: the
     control lane carries everything the ACK watermark and message
     release wait on; the bulk lane carries routing-table checkpoints and
     trims, which must not delay ACK release. The only cross-record
     ordering the design needs — a received message's replica may be
     deleted only after its checkpoint entries are durable — is within
     the bulk lane, which is FIFO. *)
  ctl : lane;
  bulk : lane;
  (* Receive side. *)
  mutable wm : int option;
  mutable wm_target : int; (* highest durable ack, pending confirmation *)
  mutable confirm_inflight : bool;
  held : (int * Time.t * (Netfilter.verdict -> unit)) Queue.t;
  holds : Metrics.samples;
  mutable in_seq : int;
  unapplied : in_state Queue.t; (* in| records awaiting apply + durability *)
  (* Send side. *)
  mutable written : int; (* stream bytes handed to replication *)
  mutable outtrim : int; (* stream offset known acked *)
  mutable out_records : (int * int) list; (* (offset, len), oldest first *)
  mutable tail_source : (unit -> (int * int * string) option) option;
  mutable watchdog : Engine.timer option;
  mutable part_written : bool;
  (* Connection epoch: rolls forward each time the replicated session's
     transport dies, so every successor connection writes its
     stream-scoped records (ack/in/out/outtrim/part) under a fresh key
     space. Recovery follows the epoch recorded in the meta record. *)
  mutable epoch : int;
  (* Degraded pass-through (store-outage survival). When durability
     cannot be achieved within [degrade_after] of the oldest obligation
     — a held ACK aging past the deadline, or the control lane unable to
     land a write for that long — NSR protection is suspended rather
     than letting the peer's hold timer fire: held ACKs are shed,
     pending message releases fire without durability cover, and
     everything passes through until the store answers again. [gen]
     fences the stale store callbacks each transition orphans. *)
  mutable degrade_after : Time.span option;
  mutable degraded : bool;
  mutable degraded_since : Time.t option;
  mutable gen : int;
  mutable heal_probe : Engine.timer option;
  mutable heal_inflight : bool;
  mutable on_store_healed : unit -> unit;
}

let create ?(replicate = true) ?(ack_hold = true) ?(max_batch = 128) ~engine
    ~client ~conn_id ~service () =
  {
    replicate;
    ack_hold = replicate && ack_hold;
    max_batch;
    eng = engine;
    client;
    cid = conn_id;
    service;
    stopped = false;
    ctl = { queue = []; inflight = false; current = None; blocked_since = None };
    bulk = { queue = []; inflight = false; current = None; blocked_since = None };
    wm = None;
    wm_target = 0;
    confirm_inflight = false;
    held = Queue.create ();
    holds = Metrics.samples "ack-hold";
    in_seq = 0;
    unapplied = Queue.create ();
    written = 0;
    outtrim = 0;
    out_records = [];
    tail_source = None;
    watchdog = None;
    part_written = false;
    epoch = 0;
    degrade_after = None;
    degraded = false;
    degraded_since = None;
    gen = 0;
    heal_probe = None;
    heal_inflight = false;
    on_store_healed = (fun () -> ());
  }

let ecid t = Keys.epoch_cid t.cid t.epoch
let epoch t = t.epoch
let watermark t = t.wm
let held_segments t = Queue.length t.held
let hold_samples t = t.holds
let bytes_written t = t.written
let pending_unapplied t = Queue.length t.unapplied
let degraded t = t.degraded
let set_on_store_healed t f = t.on_store_healed <- f

(* --- Write pump ------------------------------------------------------------ *)

let enqueue_op t lane op =
  (* Coalesce with the most recent queued op of the same kind, bounded so
     the accumulated batch never makes coalescing quadratic (a mass
     withdrawal can queue 100K+ checkpoint deletions at once). Deletions
     are unordered within a batch, so new keys go in front. *)
  match (op, lane.queue) with
  | Set (pairs, ks), Set (pairs0, ks0) :: rest
    when List.length pairs0 < t.max_batch ->
      lane.queue <- Set (pairs0 @ pairs, ks0 @ ks) :: rest
  | Del keys, Del keys0 :: rest
    when List.length keys < 64 && List.length keys0 < 8 * t.max_batch ->
      lane.queue <- Del (List.rev_append keys keys0) :: rest
  | _ -> lane.queue <- op :: lane.queue

(* Each operation is retried until the store acknowledges it: a request
   lost to transient network trouble must neither block the lane for a
   long client timeout (stalled keepalive releases would let the peer's
   hold timer fire) nor — worse — release messages whose replication
   never actually happened. *)
let rec pump t lane =
  if (not lane.inflight) && (not t.stopped) && not t.degraded then
    match List.rev lane.queue with
    | [] -> ()
    | op :: rest ->
        lane.queue <- List.rev rest;
        lane.inflight <- true;
        lane.current <- Some op;
        (* A degrade entry (or re-arm) orphans this op: its store
           callbacks must then do nothing — the shed already fired the
           release callbacks, and touching lane state would corrupt the
           fresh generation's pipeline. *)
        let gen0 = t.gen in
        let live () = t.gen = gen0 in
        let finish () =
          lane.current <- None;
          lane.inflight <- false;
          lane.blocked_since <- None;
          pump t lane
        in
        let miss attempt =
          if live () then begin
            if lane.blocked_since = None then
              lane.blocked_since <- Some (Engine.now t.eng);
            Telemetry.Registry.incr m_store_retries;
            ignore
              (Engine.schedule_after t.eng ~label:"repl.retry" (Time.ms 100)
                 attempt)
          end
        in
        let rec attempt () =
          if t.stopped || not (live ()) then ()
          else
            match op with
            | Set (pairs, ks) ->
                Store.Client.set t.client ~timeout:(Time.sec 1) pairs
                  (function
                  | Ok () ->
                      if live () then begin
                        List.iter (fun k -> k ()) ks;
                        finish ()
                      end
                  | Error `Timeout -> miss attempt)
            | Del keys ->
                Store.Client.del t.client ~timeout:(Time.sec 1) keys
                  (function
                  | Ok _ -> if live () then finish ()
                  | Error `Timeout -> miss attempt)
        in
        attempt ()

(* While degraded the lanes are gone: a Set's callbacks (message
   releases, durability notifications — the latter inert against the
   cleared watermark) fire immediately, deletes are dropped; the re-arm
   rewrites every cursor the skipped writes would have maintained. *)
let submit_ctl t op =
  if t.degraded then
    match op with
    | Set (_, ks) -> List.iter (fun k -> k ()) ks
    | Del _ -> ()
  else begin
    enqueue_op t t.ctl op;
    pump t t.ctl
  end

let submit_bulk t op =
  if t.degraded then
    match op with
    | Set (_, ks) -> List.iter (fun k -> k ()) ks
    | Del _ -> ()
  else begin
    enqueue_op t t.bulk op;
    pump t t.bulk
  end

(* --- tcp_queue: the held-ACK discipline ------------------------------------ *)

let release_one t =
  let ack, since, reinject = Queue.pop t.held in
  let held_s = Time.to_sec_f (Time.diff (Engine.now t.eng) since) in
  Metrics.record t.holds held_s;
  Telemetry.Registry.incr m_acks_released;
  Telemetry.Registry.observe m_hold_s held_s;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Ack_released { conn = t.cid; ack; held_s });
  reinject Netfilter.Accept

let release_ready t =
  match t.wm with
  | None -> ()
  | Some wm ->
      (* Seeded fault: silently swallow one ready-to-release ACK — the
         peer's cumulative ACKs make this behaviorally invisible, but
         the end-of-run held/released balance no longer closes. *)
      if
        !Monitor.Faults.leak_held_acks
        && (not (Queue.is_empty t.held))
        && (let ack, _, _ = Queue.peek t.held in
            ack <= wm)
      then begin
        Monitor.Faults.leak_held_acks := false;
        ignore (Queue.pop t.held)
      end;
      let continue = ref true in
      while !continue && not (Queue.is_empty t.held) do
        let ack, _, _ = Queue.peek t.held in
        if ack <= wm then release_one t else continue := false
      done;
      (* Seeded fault: release one held ACK beyond the durable
         watermark — exactly one message early. The in-flight store
         write completes moments later, so in a quiescent scenario only
         the safety invariant observes the early release. *)
      if !Monitor.Faults.early_ack_release && not (Queue.is_empty t.held)
      then begin
        Monitor.Faults.early_ack_release := false;
        release_one t
      end

(* The confirmation read of §3.1.2: tcp_queue trusts the watermark only
   after reading it back from the database. *)
let rec confirm_watermark t =
  if (not t.confirm_inflight) && not t.stopped then begin
    match t.wm with
    | Some wm when t.wm_target > wm ->
        t.confirm_inflight <- true;
        Store.Client.get t.client ~timeout:(Time.sec 1)
          [ Keys.ack_key (ecid t) ] (fun result ->
            t.confirm_inflight <- false;
            (match result with
            | Ok [ (_, Some v) ] -> (
                match int_of_string_opt v with
                | Some confirmed ->
                    (match t.wm with
                    | Some old when confirmed > old ->
                        t.wm <- Some confirmed;
                        if Telemetry.Gate.on () then
                          Telemetry.Bus.emit t.eng
                            (Telemetry.Event.Wm_durable
                               { conn = t.cid; ack = confirmed })
                    | _ -> ());
                    release_ready t
                | None -> ())
            | Ok _ | Error `Timeout -> ());
            (* The target may have advanced again meanwhile. *)
            confirm_watermark t)
    | _ -> ()
  end

(* --- Degraded pass-through (store-outage survival) ----------------------------

   Holding ACKs (and messages) against a store that stays unreachable
   eventually trades an invisible recovery property for a very visible
   failure: the peer's hold timer. Past the configured deadline the
   replicator sheds its obligations, suspends NSR, and keeps the session
   alive; once the store answers again the app re-arms it under a fresh
   epoch and re-audits Adj-RIB-Out. *)

let stop_heal_probe t =
  match t.heal_probe with
  | Some p ->
      Engine.stop_timer p;
      t.heal_probe <- None
  | None -> ()

let degraded_seconds t =
  match t.degraded_since with
  | Some since -> Time.to_sec_f (Time.diff (Engine.now t.eng) since)
  | None -> 0.

(* Leaving degraded mode without a re-arm (the transport died instead):
   successor-session bookkeeping starts from whatever path runs next. *)
let clear_degraded t =
  if t.degraded then begin
    let degraded_s = degraded_seconds t in
    t.degraded <- false;
    t.degraded_since <- None;
    t.gen <- t.gen + 1;
    t.heal_inflight <- false;
    stop_heal_probe t;
    Telemetry.Registry.observe m_degraded_s degraded_s;
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Degraded_exit
           { conn = t.cid; degraded_s; epoch = t.epoch })
  end

let shed_lane lane =
  let fire = function
    | Set (_, ks) -> List.iter (fun k -> k ()) ks
    | Del _ -> ()
  in
  (match lane.current with Some op -> fire op | None -> ());
  List.iter fire (List.rev lane.queue);
  lane.current <- None;
  lane.queue <- [];
  lane.inflight <- false;
  lane.blocked_since <- None

let heal_probe_tick t =
  if t.degraded && (not t.stopped) && not t.heal_inflight then begin
    t.heal_inflight <- true;
    let gen0 = t.gen in
    (* Any answered read proves reachability; the meta key exists for
       every established session. *)
    Store.Client.get t.client ~timeout:(Time.sec 1) [ Keys.meta_key t.cid ]
      (fun result ->
        if t.gen = gen0 then begin
          t.heal_inflight <- false;
          if t.degraded && not t.stopped then
            match result with
            | Ok _ ->
                stop_heal_probe t;
                t.on_store_healed ()
            | Error `Timeout -> ()
        end)
  end

let enter_degraded t =
  if (not t.degraded) && not t.stopped then begin
    let now = Engine.now t.eng in
    let oldest_held_s =
      if Queue.is_empty t.held then 0.
      else
        let _, since, _ = Queue.peek t.held in
        Time.to_sec_f (Time.diff now since)
    in
    t.degraded <- true;
    t.degraded_since <- Some now;
    t.gen <- t.gen + 1;
    Telemetry.Registry.incr m_degrades;
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Degraded_enter
           { conn = t.cid; held = Queue.length t.held; oldest_held_s });
    (* Shed every held ACK — released to the peer without durability
       cover, which is exactly the suspension being declared. *)
    while not (Queue.is_empty t.held) do
      let ack, since, reinject = Queue.pop t.held in
      let held_s = Time.to_sec_f (Time.diff now since) in
      Telemetry.Registry.incr m_acks_shed;
      if Telemetry.Gate.on () then
        Telemetry.Bus.emit t.eng
          (Telemetry.Event.Ack_shed { conn = t.cid; ack; held_s });
      reinject Netfilter.Accept
    done;
    t.wm <- None; (* pass-through: nothing is held while degraded *)
    t.wm_target <- 0;
    shed_lane t.ctl;
    shed_lane t.bulk;
    Queue.clear t.unapplied;
    if t.heal_probe = None then
      t.heal_probe <-
        Some
          (Engine.every t.eng ~label:"repl.heal_probe" (Time.sec 1) (fun () ->
               heal_probe_tick t))
  end

let prepare_rearm t =
  if not t.degraded then invalid_arg "Replicator.prepare_rearm: not degraded";
  t.epoch <- t.epoch + 1;
  t.epoch

let complete_rearm t ~watermark ~stream_offset ~part_written =
  if t.degraded then begin
    let degraded_s = degraded_seconds t in
    t.degraded <- false;
    t.degraded_since <- None;
    t.gen <- t.gen + 1;
    t.heal_inflight <- false;
    stop_heal_probe t;
    t.ctl.blocked_since <- None;
    t.bulk.blocked_since <- None;
    t.wm <- Some watermark;
    t.wm_target <- watermark;
    t.in_seq <- 0;
    t.written <- stream_offset;
    t.outtrim <- stream_offset;
    t.out_records <- [];
    t.part_written <- part_written;
    Queue.clear t.unapplied;
    Telemetry.Registry.observe m_degraded_s degraded_s;
    if Telemetry.Gate.on () then begin
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Degraded_exit
           { conn = t.cid; degraded_s; epoch = t.epoch });
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Wm_durable { conn = t.cid; ack = watermark })
    end;
    release_ready t
  end

let session_established t ~irs =
  t.wm <- Some (irs + 1);
  t.wm_target <- irs + 1;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Wm_durable { conn = t.cid; ack = irs + 1 });
  release_ready t

let session_down t =
  (* A transport death ends any degraded window: the successor session
     starts with NSR armed (and will re-degrade if the store is still
     out). *)
  clear_degraded t;
  (* The connection is gone; its sequence space dies with it. Drop back
     to pass-through so the successor's handshake is not judged against
     a stale watermark, and flush anything still held (the dead
     connection cannot ACK it out). *)
  t.wm <- None;
  while not (Queue.is_empty t.held) do
    let ack, _, reinject = Queue.pop t.held in
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Ack_dropped { conn = t.cid; ack });
    reinject Netfilter.Accept
  done;
  (* Retire the dead stream's send-side accounting and roll the epoch
     BEFORE a successor connection sends its first byte. Without this, a
     re-established session's tx offsets would continue where the dead
     stream stopped, and the next takeover would graft old-stream
     offsets onto the new connection's initial sequence number — a
     resumed sender permanently ahead of (or behind) the peer, whose
     ACKs then never advance snd_una (found by chaos fuzzing:
     kill.hostnet + cease during the partition + a second kill moments
     after the reconnect). The old epoch's records are deleted as
     hygiene only; recovery never reads them once the meta record names
     the new epoch. *)
  let old = ecid t in
  let stale =
    List.map (fun (off, _) -> Keys.out_key old off) t.out_records
  in
  let stale = if t.part_written then Keys.part_key old :: stale else stale in
  let stale =
    Queue.fold (fun acc st -> st.in_key :: acc) stale t.unapplied
  in
  let stale = Keys.ack_key old :: Keys.outtrim_key old :: stale in
  Queue.clear t.unapplied;
  t.in_seq <- 0;
  t.written <- 0;
  t.outtrim <- 0;
  t.out_records <- [];
  t.part_written <- false;
  t.epoch <- t.epoch + 1;
  if t.replicate && not t.stopped then submit_bulk t (Del stale)

let resume_at t ~epoch ~watermark ~bytes_written ~in_seq ~outtrim ~out_records =
  t.epoch <- epoch;
  t.wm <- Some watermark;
  t.wm_target <- watermark;
  if Telemetry.Gate.on () then
    Telemetry.Bus.emit t.eng
      (Telemetry.Event.Wm_durable { conn = t.cid; ack = watermark });
  t.written <- bytes_written;
  t.in_seq <- in_seq;
  t.outtrim <- outtrim;
  t.out_records <- out_records

let attach_output_chain t chain ~local ~remote =
  if t.ack_hold then begin
    let qnum = Netfilter.fresh_queue_num chain in
    ignore
      (Netfilter.add_rule chain (fun pkt ->
           match pkt.Packet.payload with
           | Tcp.Segment.Tcp _
             when Addr.equal pkt.Packet.src local
                  && Addr.equal pkt.Packet.dst remote ->
               Netfilter.Queue qnum
           | _ -> Netfilter.Accept));
    let q = Netfilter.queue chain qnum in
    Netfilter.set_consumer q (fun pkt ~reinject ->
        match pkt.Packet.payload with
        | Tcp.Segment.Tcp seg -> (
            if t.stopped then reinject Netfilter.Accept
            else
              match t.wm with
              | None -> reinject Netfilter.Accept (* handshake *)
              | Some wm ->
                  if seg.Tcp.Segment.flags.Tcp.Segment.ack
                     && seg.Tcp.Segment.ack > wm
                  then begin
                    Queue.push
                      (seg.Tcp.Segment.ack, Engine.now t.eng, reinject)
                      t.held;
                    Telemetry.Registry.incr m_acks_held;
                    if Telemetry.Gate.on () then
                      Telemetry.Bus.emit t.eng
                        (Telemetry.Event.Ack_held
                           {
                             conn = t.cid;
                             ack = seg.Tcp.Segment.ack;
                             depth = Queue.length t.held;
                           })
                  end
                  else reinject Netfilter.Accept)
        | _ -> reinject Netfilter.Accept)
  end

(* --- Partial-frame tail replication --------------------------------------------

   A sender stalled in RTO backoff can deliver a message fragment whose
   ACK would otherwise wait forever (the rest of the message cannot
   arrive until the ACK opens the window). When a held segment ages past
   the stall threshold, replicate the fragment itself and release. *)

let stall_threshold = Time.ms 30

let check_stall t =
  if (not t.stopped) && not (Queue.is_empty t.held) then begin
    let _, since, _ = Queue.peek t.held in
    if Time.diff (Engine.now t.eng) since > stall_threshold then
      match t.tail_source with
      | Some source -> (
          match source () with
          | Some (offset, inferred_ack, bytes)
            when inferred_ack > t.wm_target && String.length bytes > 0 ->
              t.part_written <- true;
              submit_ctl t
                (Set
                   ( [
                       (Keys.part_key (ecid t), Keys.encode_part ~offset ~bytes);
                       (Keys.ack_key (ecid t), string_of_int inferred_ack);
                     ],
                     [
                       (fun () ->
                         if inferred_ack > t.wm_target then begin
                           t.wm_target <- inferred_ack;
                           confirm_watermark t
                         end);
                     ] ))
          | Some _ | None -> ())
      | None -> ()
  end

(* Deadline watch: the oldest held ACK, or a control-lane write unable
   to land, aging past [degrade_after] is the signal that durability is
   not coming in time — the deadline is chosen well inside the peer's
   hold timer, so shedding here is what keeps the session alive. *)
let check_degrade t =
  match t.degrade_after with
  | None -> ()
  | Some d ->
      (* Seeded fault: watch at twice the configured deadline, so
         obligations age past the bound before being shed — tripping
         [degraded_mode_exclusion] and nothing else. *)
      let d = if !Monitor.Faults.late_degrade then 2 * d else d in
      if (not t.degraded) && (not t.stopped) && t.wm <> None then begin
        let now = Engine.now t.eng in
        let held_over =
          (not (Queue.is_empty t.held))
          &&
          let _, since, _ = Queue.peek t.held in
          Time.diff now since >= d
        in
        let ctl_over =
          match t.ctl.blocked_since with
          | Some since -> Time.diff now since >= d
          | None -> false
        in
        if held_over || ctl_over then enter_degraded t
      end

let ensure_watchdog t =
  if t.watchdog = None then
    t.watchdog <-
      Some
        (Engine.every t.eng ~label:"repl.watchdog" (Time.ms 25) (fun () ->
             check_stall t;
             check_degrade t))

let set_tail_source t source =
  t.tail_source <- Some source;
  ensure_watchdog t

let set_degrade_after t span =
  t.degrade_after <- span;
  (* The deadline must be watched even before a tail source exists. *)
  match span with Some _ -> ensure_watchdog t | None -> ()

(* --- Receive replication ----------------------------------------------------- *)

let on_rx_message t msg ~inferred_ack =
  if t.replicate && (not t.stopped) && not t.degraded then begin
    Telemetry.Registry.incr m_rx_repl;
    let raw = Bgp.Msg.encode msg in
    let seq = t.in_seq in
    t.in_seq <- seq + 1;
    let key = Keys.in_key (ecid t) seq in
    let is_update = match msg with Bgp.Msg.Update _ -> true | _ -> false in
    let st = { in_key = key; durable = false; applied = false } in
    if is_update then Queue.push st t.unapplied;
    (* A completed message supersedes any replicated fragment. *)
    if t.part_written then begin
      t.part_written <- false;
      submit_ctl t (Del [ Keys.part_key (ecid t) ])
    end;
    let on_durable () =
      if inferred_ack > t.wm_target then begin
        t.wm_target <- inferred_ack;
        confirm_watermark t
      end;
      st.durable <- true;
      (* Non-update messages carry no table state: trim immediately;
         update replicas wait until they are also applied. *)
      if (not is_update) || st.applied then submit_bulk t (Del [ key ])
    in
    submit_ctl t
      (Set
         ( [
             (key, Keys.encode_in_record ~ack:inferred_ack ~raw);
             (Keys.ack_key (ecid t), string_of_int inferred_ack);
           ],
           [ on_durable ] ))
  end

let on_rx_applied t =
  if t.replicate && not (Queue.is_empty t.unapplied) then begin
    let st = Queue.pop t.unapplied in
    st.applied <- true;
    (* Ordered behind the routing-table checkpoint writes already queued
       by the apply step (same bulk lane, FIFO) — the paper's "remove
       only after applied". If the replica write is still in flight, the
       durability callback issues the delete instead. *)
    if st.durable then submit_bulk t (Del [ st.in_key ])
  end

(* --- Delayed sending ---------------------------------------------------------- *)

let on_tx_message t ~raw ~release =
  if (not t.replicate) || t.stopped || t.degraded then release ()
  else begin
    Telemetry.Registry.incr m_tx_repl;
    let offset = t.written in
    let len = String.length raw in
    t.written <- offset + len;
    t.out_records <- t.out_records @ [ (offset, len) ];
    submit_ctl t
      (Set ([ (Keys.out_key (ecid t) offset, Keys.hex raw) ], [ release ]))
  end

(* --- Routing-table checkpoints ------------------------------------------------ *)

let on_rib_change t ~vrf change =
  if t.replicate && (not t.stopped) && not t.degraded then
    match change with
    | Bgp.Rib.Best_changed (prefix, path) ->
        submit_bulk t
          (Set
             ( [
                 ( Keys.rib_key ~service:t.service ~vrf prefix,
                   Keys.encode_rib_entry path.Bgp.Rib.source prefix
                     path.Bgp.Rib.attrs );
               ],
               [] ))
    | Bgp.Rib.Best_withdrawn prefix ->
        submit_bulk t (Del [ Keys.rib_key ~service:t.service ~vrf prefix ])

(* --- Outbound trimming ---------------------------------------------------------- *)

let note_snd_una t ~iss ~snd_una =
  if t.replicate && (not t.stopped) && not t.degraded then begin
    let acked = snd_una - (iss + 1) in
    if acked > t.outtrim then begin
      t.outtrim <- acked;
      let trimmed, kept =
        List.partition (fun (off, len) -> off + len <= acked) t.out_records
      in
      t.out_records <- kept;
      if trimmed <> [] then begin
        submit_bulk t
          (Set ([ (Keys.outtrim_key (ecid t), string_of_int acked) ], []));
        submit_bulk t
          (Del (List.map (fun (off, _) -> Keys.out_key (ecid t) off) trimmed))
      end
    end
  end

let drain t k =
  let rec poll () =
    if
      t.ctl.queue = [] && t.bulk.queue = []
      && (not t.ctl.inflight)
      && not t.bulk.inflight
    then k ()
    else
      ignore (Engine.schedule_after t.eng ~label:"repl.flush" (Time.ms 5) poll)
  in
  poll ()

let stop t =
  t.stopped <- true;
  stop_heal_probe t;
  (match t.watchdog with
  | Some w ->
      Engine.stop_timer w;
      t.watchdog <- None
  | None -> ());
  while not (Queue.is_empty t.held) do
    let ack, _, reinject = Queue.pop t.held in
    (* Flushed at detach without watermark cover: report so the
       end-of-run queue balance (held = released + dropped) closes. *)
    if Telemetry.Gate.on () then
      Telemetry.Bus.emit t.eng
        (Telemetry.Event.Ack_dropped { conn = t.cid; ack });
    reinject Netfilter.Accept
  done
