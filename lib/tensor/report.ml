(* Report output settings are domain-local: the CSV sink and section
   slugs belong to whichever domain is printing an experiment, so a
   campaign worker can never redirect (or renumber) the main domain's
   report files. *)
type state = {
  mutable csv_dir : string option;
  mutable current_slug : string;
  mutable slug_counter : int;
}

let key =
  Domain.DLS.new_key (fun () ->
      { csv_dir = None; current_slug = "output"; slug_counter = 0 })

let state () = Domain.DLS.get key

let set_csv_dir d =
  (state ()).csv_dir <- d;
  match d with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | None -> ()

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    title

let section title =
  let st = state () in
  st.current_slug <- slugify title;
  st.slug_counter <- 0;
  let line = String.make (String.length title + 4) '=' in
  Format.printf "@.%s@.= %s =@.%s@." line title line

let subsection title = Format.printf "@.-- %s --@." title

let kv label fmt =
  Format.printf "  %-34s: " label;
  Format.kfprintf (fun f -> Format.pp_print_newline f ()) Format.std_formatter fmt

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~header rows =
  let st = state () in
  match st.csv_dir with
  | None -> ()
  | Some dir ->
      st.slug_counter <- st.slug_counter + 1;
      let name =
        if st.slug_counter = 1 then st.current_slug
        else Printf.sprintf "%s_%d" st.current_slug st.slug_counter
      in
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map csv_escape row));
          output_char oc '\n')
        (header :: rows);
      close_out oc

let table ~header rows =
  write_csv ~header rows;
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    Format.printf "  ";
    List.iteri
      (fun c w ->
        let cell = match List.nth_opt row c with Some s -> s | None -> "" in
        Format.printf "%-*s  " w cell)
      widths;
    Format.printf "@."
  in
  print_row header;
  Format.printf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let note fmt =
  Format.printf "  > ";
  Format.kfprintf (fun f -> Format.pp_print_newline f ()) Format.std_formatter fmt

let fseconds s =
  if Float.is_nan s then "-"
  else if s >= 1.0 then Printf.sprintf "%.2f s" s
  else if s >= 0.001 then Printf.sprintf "%.1f ms" (s *. 1e3)
  else Printf.sprintf "%.0f us" (s *. 1e6)

let fbps v =
  if v >= 1e9 then Printf.sprintf "%.2f Gbps" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.1f Mbps" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1f Kbps" (v /. 1e3)
  else Printf.sprintf "%.0f bps" v
