(** Kernel-free packet replication for one BGP connection (§3.1).

    One replicator per session. It implements, faithfully to the paper's
    mechanism:

    - {b receive replication}: every inbound BGP message (keepalives
      included) is written to the store together with its inferred ACK
      number. Processing proceeds concurrently; only the TCP ACK waits.
    - {b the tcp_queue thread}: an NFQUEUE consumer on the host's OUTPUT
      chain holds every egress segment whose ACK number exceeds the
      replicated-ACK watermark, and releases it (FIFO) once the covering
      write is durable {e and} a confirmation read of the watermark key
      has completed — the write-then-read sequence whose latency Figure
      5(b) characterizes.
    - {b delayed sending}: outgoing messages (main and keepalive thread
      alike) are written to the store, keyed by their send-stream byte
      offset, before release to TCP. No read-back is needed (§3.1.2).
    - {b storage trimming}: applied inbound messages are deleted after
      the corresponding routing-table checkpoint write is issued;
      outbound records below the peer-acknowledged offset are deleted
      periodically. Steady-state store usage per connection stays within
      the paper's ~64 KB bound.
    - {b routing-table checkpointing}: Loc-RIB changes are written as
      [rib|…] entries (and deletions) so a backup never replays history.

    Writes are batched with a depth-one pipeline: a batch accumulates
    while the previous one is in flight, which is what makes the ACK
    delay stay inside Figure 5(a)'s harmless region under update floods.

    Ablation switches: [~replicate:false] disables everything (baseline
    behaviour); [~ack_hold:false] keeps replication but releases ACKs
    immediately, opening exactly the inconsistency window §3.1.1 warns
    about (demonstrated in the test suite). *)

type t

val create :
  ?replicate:bool ->
  ?ack_hold:bool ->
  ?max_batch:int ->
  engine:Sim.Engine.t ->
  client:Store.Client.t ->
  conn_id:Keys.conn_id ->
  service:string ->
  unit ->
  t

val attach_output_chain :
  t -> Netfilter.t -> local:Netsim.Addr.t -> remote:Netsim.Addr.t -> unit
(** Installs the OUTPUT rule diverting this connection's egress segments
    to the replicator's queue, and registers the tcp_queue consumer. *)

val session_established : t -> irs:int -> unit
(** Initializes the watermark to [irs + 1]. Until this call, handshake
    segments pass unheld (there is nothing application-level to protect
    yet). *)

val session_down : t -> unit
(** The session's transport died without a handover: clears the
    watermark (back to pass-through, so a successor connection's
    handshake is not held against the dead stream's sequence space),
    flushes held segments (reported as [Ack_dropped]), retires the dead
    stream's send/receive accounting, and rolls the connection {!epoch}
    so a successor connection writes its stream records under a fresh
    key space. A later {!session_established} re-arms holding for the
    new stream. *)

val epoch : t -> int
(** The current connection epoch (0 for the first connection). The meta
    record written at establishment must carry this value: recovery
    reads only the epoch the meta record names, which is what makes a
    straggler write from a dead stream harmless. *)

val resume_at :
  t ->
  epoch:int ->
  watermark:int ->
  bytes_written:int ->
  in_seq:int ->
  outtrim:int ->
  out_records:(int * int) list ->
  unit
(** Recovery path: continue a predecessor's counters under its recorded
    epoch. [out_records] are the retained (offset, length) outbound
    replicas, re-tracked for future trimming. *)

val set_tail_source : t -> (unit -> (int * int * string) option) -> unit
(** Installs the partial-frame tail source — [(parsed_offset,
    inferred_ack, bytes)] for the fragment currently buffered in the
    framer — and starts the stall watchdog. When the tcp_queue has held a
    segment for longer than ~30 ms (a stalled sender, e.g. in RTO backoff
    with one MSS in flight, cannot complete the message that would
    normally advance the watermark), the watchdog replicates the fragment
    itself as a [part|…] record and releases the ACK. Recovery seeds the
    backup's framer with the fragment, so the invariant — every
    acknowledged byte is replicated — holds at byte granularity. *)

val on_rx_message : t -> Bgp.Msg.t -> inferred_ack:int -> unit
(** The receive-replication tap: stores the message's wire frame (all
    five types; UPDATE frames are what the backup replays) keyed by a
    receive counter, together with the inferred ACK. *)

val on_rx_applied : t -> unit
(** The oldest outstanding UPDATE was applied to the routing table: emit
    its checkpoint-ordered deletion. *)

val on_tx_message : t -> raw:string -> release:(unit -> unit) -> unit
(** Delayed sending: [release] fires once the record is durable. *)

val on_rib_change : t -> vrf:string -> Bgp.Rib.change -> unit
(** Routing-table checkpointing. *)

val note_snd_una : t -> iss:int -> snd_una:int -> unit
(** Feeds the outbound trimmer (call periodically with the live
    connection's state). *)

val watermark : t -> int option
(** The replicated-ACK watermark (None before establishment). *)

val held_segments : t -> int
(** Segments currently held by the tcp_queue. *)

val hold_samples : t -> Sim.Metrics.samples
(** How long each held segment waited before release, in seconds — the
    effective acknowledgment delay TENSOR introduces (compare with the
    Figure 5(a) thresholds). *)

val bytes_written : t -> int
val pending_unapplied : t -> int

(** {2 Degraded pass-through (store-outage survival)}

    Holding ACKs (and delaying sends) against a store that stays
    unreachable eventually turns an invisible recovery property into a
    very visible failure: the peer's hold timer fires and the session
    resets. Past a configurable deadline — a fraction of the negotiated
    hold time, chosen well inside both the keepalive interval and the
    peer's hold timer — the replicator instead {e sheds} its
    obligations: held ACKs are released without durability cover
    (reported as [Ack_shed]), pending message releases fire, and the
    session runs unprotected ([Degraded_enter]) until the store answers
    a probe again, at which point the application re-arms replication
    under a fresh epoch ({!prepare_rearm} / {!complete_rearm},
    [Degraded_exit]) and re-audits Adj-RIB-Out. *)

val set_degrade_after : t -> Sim.Time.span option -> unit
(** Arms (or disarms, with [None]) the held-ACK deadline and starts the
    watchdog that enforces it. Never armed by default: without a
    deadline the replicator blocks indefinitely, the pre-existing
    behaviour. *)

val degraded : t -> bool

val set_on_store_healed : t -> (unit -> unit) -> unit
(** Called (once per degraded episode) when the store answers the heal
    probe again. The application is expected to quiesce the stream,
    write the fresh epoch's baseline records, and call
    {!complete_rearm}. *)

val prepare_rearm : t -> int
(** Rolls the epoch for re-arming and returns it — the caller writes the
    new meta/cursor records under this epoch {e before} calling
    {!complete_rearm}, so a crash mid-re-arm recovers the old (stale but
    consistent) epoch. Raises [Invalid_argument] if not degraded. *)

val complete_rearm :
  t -> watermark:int -> stream_offset:int -> part_written:bool -> unit
(** Ends the degraded episode: the watermark and send-stream accounting
    restart from the freshly written baselines ([stream_offset] for both
    written and trimmed — the stream was quiesced), and held-ACK
    discipline resumes. *)

val drain : t -> (unit -> unit) -> unit
(** Invokes the callback once every queued store operation (both lanes)
    has completed — the quiesce step of a planned migration. *)

val stop : t -> unit
(** Ceases all activity (connection gone); held segments are released. *)
