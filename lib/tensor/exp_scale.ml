open Sim
open Netsim

type result = {
  hosts : int;
  services : int;
  established_s : float;
  routes_total : int;
  host_failure_migrated : int;
  peer_drops : int;
  sim_events : int;
  wall_s : float;
}

let run ?(hosts = 10) ?(services = 60) ?(routes_per_service = 200) () =
  let wall0 = Prof.Clock.now_s () in
  let dep = Deploy.build ~hosts () in
  let eng = dep.Deploy.eng in
  let rigs =
    List.init services (fun i ->
        let asn = 65100 + i in
        let peer = Deploy.add_peer_as dep ~asn (Printf.sprintf "as%d" asn) in
        let vip = Addr.of_octets 203 1 (i / 250) (i mod 250) in
        let handle = Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900 in
        let svc =
          Deploy.deploy_service dep
            ~primary_host:(i mod (hosts - 1))
            ~backup_host:((i + 1) mod (hosts - 1))
            ~id:(Printf.sprintf "scale%d" i) ~local_asn:64900
            [
              App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
                ~peer_asn:asn ();
            ]
        in
        (peer, handle, svc))
  in
  let t0 = Engine.now eng in
  List.iter (fun (_, _, svc) -> assert (Deploy.wait_established dep svc ())) rigs;
  let established_s = Time.to_sec_f (Time.diff (Engine.now eng) t0) in
  let drops = ref 0 in
  List.iter
    (fun (_, handle, _) -> Bgp.Speaker.on_peer_down handle (fun _ -> incr drops))
    rigs;
  (* Routes in from every AS, routes out from every service. *)
  List.iteri
    (fun i (peer, _, _) ->
      Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf:"v0"
        (Workload.Prefixes.distinct_from ~base:(i * 10_000) routes_per_service))
    rigs;
  Engine.run_for eng (Time.sec 30);
  (* Kill one populated host: a batch NSR migration. *)
  let victim_host = "host0" in
  let on_victim =
    List.filter
      (fun (_, _, svc) ->
        Orch.Container.host_name (Deploy.service_container svc) = victim_host)
      rigs
  in
  (match on_victim with
  | (_, _, svc) :: _ -> Deploy.inject_host_failure dep svc
  | [] -> ());
  Engine.run_for eng (Time.sec 40);
  let migrated =
    List.length
      (List.filter
         (fun (_, _, svc) ->
           Orch.Container.host_name (Deploy.service_container svc)
           <> victim_host)
         on_victim)
  in
  let routes_total =
    List.fold_left
      (fun acc (_, _, svc) -> acc + Deploy.service_routes svc ~vrf:"v0")
      0 rigs
  in
  {
    hosts;
    services;
    established_s;
    routes_total;
    host_failure_migrated = migrated;
    peer_drops = !drops;
    sim_events = Engine.processed_events eng;
    wall_s = Prof.Clock.now_s () -. wall0;
  }

let print r =
  Report.section
    "Deployment scale (§4.4): fleet-wide zero downtime through a host loss";
  Report.kv "hosts / services / sessions" "%d / %d / %d" r.hosts r.services
    r.services;
  Report.kv "parallel bring-up (simulated)" "%s"
    (Report.fseconds r.established_s);
  Report.kv "routes across the fleet" "%d" r.routes_total;
  Report.kv "services batch-migrated by the host failure" "%d"
    r.host_failure_migrated;
  Report.kv "peering-AS session drops" "%d (zero = fleet-wide NSR)"
    r.peer_drops;
  Report.kv "simulator" "%d events in %.1f s wall" r.sim_events r.wall_s;
  Report.note
    "the paper's fleet: 400 servers and 31,000 connections with two years of";
  Report.note
    "zero link downtime; this run exercises the same architecture end to end";
  Report.note "(controller, agent relays, store, per-service containers)."
