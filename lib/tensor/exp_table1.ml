open Sim
open Netsim

type timeline = {
  kind : Orch.Controller.failure_kind;
  frequency_pct : int;
  detect_s : float;
  initiate_s : float;
  migrate_s : float;
  tcp_s : float;
  total_s : float;
  peer_session_drops : int;
  peer_routes_lost : int;
  baseline_total_s : float;
}

let frequency_of = function
  | Orch.Controller.App_failure -> 3
  | Orch.Controller.Container_failure -> 13
  | Orch.Controller.Host_failure -> 19
  | Orch.Controller.Host_network_failure -> 65

let scenario kind =
  let dep = Deploy.build () in
  let eng = dep.Deploy.eng in
  let peer = Deploy.add_peer_as dep ~asn:65010 "peerAS" in
  let vip = Addr.of_string "203.0.113.10" in
  let peer_handle = Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900 in
  let svc =
    Deploy.deploy_service dep ~id:"t1" ~local_asn:64900
      [
        App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
          ~peer_asn:65010 ();
      ]
  in
  if not (Deploy.wait_established dep svc ()) then
    (* lint: allow p2 — harness precondition: abort the experiment loudly before any measurement; not a product path *)
    failwith "table1: session did not establish";
  (* Average workload: a few hundred routes each way. *)
  Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf:"v0"
    (Workload.Prefixes.distinct 300);
  (match App.speaker (Deploy.service_app svc) with
  | Some spk ->
      Bgp.Speaker.originate spk ~vrf:"v0"
        (Workload.Prefixes.distinct_from ~base:500_000 100)
  | None -> ());
  Engine.run_for eng (Time.sec 10);
  let peer_rib = Bgp.Speaker.rib peer.Deploy.pa_speaker ~vrf:"v0" in
  let routes_before = Bgp.Rib.size peer_rib in
  let drops = ref 0 in
  Bgp.Speaker.on_peer_down peer_handle (fun _ -> incr drops);
  let t0 = Engine.now eng in
  (match kind with
  | Orch.Controller.App_failure -> Deploy.inject_app_failure dep svc
  | Orch.Controller.Container_failure -> Deploy.inject_container_failure dep svc
  | Orch.Controller.Host_failure -> Deploy.inject_host_failure dep svc
  | Orch.Controller.Host_network_failure ->
      Deploy.inject_host_network_failure dep svc);
  Engine.run_for eng (Time.sec 40);
  let ctl_trace = Orch.Controller.trace dep.Deploy.ctrl in
  let at category trace =
    match Trace.first trace ~category with
    | Some e -> Time.to_sec_f (Time.diff e.Trace.at t0)
    | None -> nan
  in
  let detect = at "detect" ctl_trace in
  let initiate = at "initiate" ctl_trace in
  let migrate_done = at "migrate" ctl_trace in
  let tcp_synced = at "tcp-synced" dep.Deploy.trace in
  let baseline = Baseline.recovery_for kind in
  {
    kind;
    frequency_pct = frequency_of kind;
    detect_s = detect;
    initiate_s = initiate -. detect;
    migrate_s = migrate_done -. initiate;
    tcp_s = Float.max 0.0 (tcp_synced -. migrate_done);
    total_s = tcp_synced;
    peer_session_drops = !drops;
    peer_routes_lost = routes_before - Bgp.Rib.size peer_rib;
    baseline_total_s = Time.to_sec_f (Baseline.total baseline);
  }

let all_kinds =
  [
    Orch.Controller.App_failure;
    Orch.Controller.Container_failure;
    Orch.Controller.Host_failure;
    Orch.Controller.Host_network_failure;
  ]

let run ?(kinds = all_kinds) () = List.map scenario kinds

let paper_row = function
  | Orch.Controller.App_failure -> ("0.01", "0.10", "1.09", "1.06", "2.26", "~30")
  | Orch.Controller.Container_failure -> ("0.31", "0.10", "1.19", "1.01", "2.61", "N/A")
  | Orch.Controller.Host_failure -> ("3.30", "0.20", "4.50", "1.05", "9.05", "~240")
  | Orch.Controller.Host_network_failure -> ("3.30", "0.21", "4.45", "1.21", "9.17", "~25")

let print rows =
  Report.section
    "Table 1: failure recovery — TENSOR (measured) vs open-source baselines";
  Report.table
    ~header:
      [
        "failure (freq)"; "detect"; "init"; "migrate"; "TCP"; "total";
        "downtime"; "baseline";
      ]
    (List.map
       (fun r ->
         let k fmt = Printf.sprintf "%.2f" fmt in
         [
           Format.asprintf "%a (%d%%)" Orch.Controller.pp_failure_kind r.kind
             r.frequency_pct;
           k r.detect_s;
           k r.initiate_s;
           k r.migrate_s;
           k r.tcp_s;
           k r.total_s;
           (if r.peer_session_drops = 0 && r.peer_routes_lost = 0 then "ZERO"
            else
              Printf.sprintf "BROKEN(%d drops,%d lost)" r.peer_session_drops
                r.peer_routes_lost);
           Printf.sprintf "~%.0f s" r.baseline_total_s;
         ])
       rows);
  Report.subsection "paper reference (seconds)";
  Report.table
    ~header:[ "failure"; "detect"; "init"; "migrate"; "TCP"; "total"; "baseline" ]
    (List.map
       (fun r ->
         let d, i, m, t, tot, b = paper_row r.kind in
         [
           Format.asprintf "%a" Orch.Controller.pp_failure_kind r.kind;
           d; i; m; t; tot; b;
         ])
       rows);
  Report.note
    "TENSOR columns are internal phases with zero link downtime (asserted);";
  Report.note
    "the baseline column is the peers-visible downtime of FRR/GoBGP/BIRD."
