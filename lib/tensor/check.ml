(* Checked scenarios: run a standard NSR episode with the runtime
   verifier attached and return its health report.

   Each scenario builds the Figure 3 deployment with telemetry on and a
   [Monitor.Checker] subscribed *before* any container boots, runs the
   episode, then emits paired [Rib_snapshot] events (what one side
   advertised vs what the other side holds) so the convergence checker
   can compare digests. Faults seeded through [Monitor.Faults] are left
   untouched, which is how the mutation tests drive these scenarios. *)

open Sim

let peer_name = "peerAS"
let vrf = "v0"
let scenarios = [ "failover"; "planned"; "split-brain"; "degraded" ]

(* The degraded scenario's deadline: fraction of the negotiated 90 s
   hold time after which an unreachable store suspends NSR. Shared with
   the checker config so [degraded_mode_exclusion] verifies the same
   bound the replicator promised. *)
let degrade_frac = 0.1
let hold_time_s = 90.

let kind_name k = Format.asprintf "%a" Orch.Controller.pp_failure_kind k

(* Digest both directions of the session: routes the peer advertised vs
   what the service's (possibly restored) RIB holds, and routes the
   service originated vs what the peer holds. Group keys ride in the
   event's [vrf] field; the checker requires equal digests per group.
   The per-direction digest pairs are also returned, so callers (the
   chaos runner) can cross-check directly without re-walking the RIBs. *)
let snapshot_session eng ~vrf ~peer_name ~peer_speaker ~peer_addr ~vip spk =
  let snap ~group ~node rib ~source_key =
    Telemetry.Bus.emit eng
      (Telemetry.Event.Rib_snapshot
         {
           node;
           vrf = group;
           size = List.length (Bgp.Rib.best_prefixes ~source_key rib);
           digest = Bgp.Rib.digest ~source_key rib;
         })
  in
  let peer_rib = Bgp.Speaker.rib peer_speaker ~vrf in
  let svc_rib = Bgp.Speaker.rib spk ~vrf in
  let local_key = "local/" ^ vrf in
  let svc_learned = vrf ^ "/" ^ Netsim.Addr.to_string peer_addr in
  let peer_learned = vrf ^ "/" ^ Netsim.Addr.to_string vip in
  let g_in = vrf ^ ":peer->service" and g_out = vrf ^ ":service->peer" in
  snap ~group:g_in ~node:(peer_name ^ ":advertised") peer_rib
    ~source_key:local_key;
  snap ~group:g_in ~node:"service:learned" svc_rib ~source_key:svc_learned;
  snap ~group:g_out ~node:"service:advertised" svc_rib ~source_key:local_key;
  snap ~group:g_out ~node:(peer_name ^ ":learned") peer_rib
    ~source_key:peer_learned;
  ( ( Bgp.Rib.digest ~source_key:local_key peer_rib,
      Bgp.Rib.digest ~source_key:svc_learned svc_rib ),
    ( Bgp.Rib.digest ~source_key:local_key svc_rib,
      Bgp.Rib.digest ~source_key:peer_learned peer_rib ) )

let emit_rib_snapshots (dep : Deploy.t) (peer : Deploy.peer_as) svc ~vip =
  match App.speaker (Deploy.service_app svc) with
  | None -> ()
  | Some spk ->
      ignore
        (snapshot_session dep.Deploy.eng ~vrf ~peer_name
           ~peer_speaker:peer.Deploy.pa_speaker ~peer_addr:peer.Deploy.pa_addr
           ~vip spk)

(* Shared episode skeleton: deployment, one peer AS, one service with a
   monitored primary, routes flowing both ways. *)
let setup ?(store_resilient = false) ?(degrade_frac = 0.) mon =
  let dep = Deploy.build () in
  let eng = dep.Deploy.eng in
  let peer = Deploy.add_peer_as dep ~asn:65010 peer_name in
  let vip = Netsim.Addr.of_string "203.0.113.10" in
  ignore (Deploy.peer_expects peer ~vrf ~vip ~local_asn:64900);
  let svc =
    Deploy.deploy_service dep ~id:"chk" ~local_asn:64900 ~store_resilient
      ~degrade_frac
      [ App.vrf_spec ~vrf ~vip ~peer_addr:peer.Deploy.pa_addr ~peer_asn:65010 () ]
  in
  Monitor.Checker.note_primary mon ~service:"chk"
    ~container:(Orch.Container.id (Deploy.service_container svc));
  if not (Deploy.wait_established dep svc ()) then
    (* lint: allow p2 — harness precondition: abort the scenario loudly before any measurement; not a product path *)
    failwith "check scenario: session did not establish";
  Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf
    (Workload.Prefixes.distinct 300);
  (match App.speaker (Deploy.service_app svc) with
  | Some spk ->
      Bgp.Speaker.originate spk ~vrf
        (Workload.Prefixes.distinct_from ~base:500_000 100)
  | None -> ());
  Engine.run_for eng (Time.sec 10);
  (dep, peer, vip, svc)

let with_monitor ?(ack_deadline_s = 0.) ~scenario body =
  Telemetry.Control.reset ();
  Telemetry.Control.set_enabled true;
  let mon =
    Monitor.Checker.install
      ~cfg:
        {
          Monitor.Checker.default_config with
          peers = [ peer_name ];
          ack_deadline_s;
        }
      ()
  in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Control.set_enabled false;
      if not !finished then
        (* The scenario died mid-run; drop the live subscription. *)
        ignore (Monitor.Checker.finalize mon))
    (fun () ->
      let ev0 = Engine.global_processed_events () in
      body mon;
      finished := true;
      (* Engine-cost section: how many events the scenario dispatched,
         plus per-label rows when the profiler happens to be attached
         (e.g. under [tensor-cli profile]). *)
      let engine =
        {
          Monitor.Health.ev_processed = Engine.global_processed_events () - ev0;
          profiled =
            (if Prof.Profiler.enabled () then
               List.map
                 (fun (st : Prof.Profiler.stat) ->
                   {
                     Monitor.Health.er_label = st.label;
                     er_events = st.events;
                     er_wall_s = st.wall_s;
                     er_alloc_bytes = st.alloc_bytes;
                   })
                 (Prof.Profiler.top ~by:Prof.Profiler.By_wall 8)
             else []);
        }
      in
      (* [Health.make] finalizes the checker while telemetry is still
         on, so end-of-run snapshot events are observed. *)
      let report = Monitor.Health.make ~engine ~scenario mon in
      Telemetry.Control.set_enabled false;
      report)

let failover ?(kind = Orch.Controller.Container_failure) () =
  with_monitor ~scenario:("failover/" ^ kind_name kind) @@ fun mon ->
  let dep, peer, vip, svc = setup mon in
  (match kind with
  | Orch.Controller.App_failure -> Deploy.inject_app_failure dep svc
  | Orch.Controller.Container_failure -> Deploy.inject_container_failure dep svc
  | Orch.Controller.Host_failure -> Deploy.inject_host_failure dep svc
  | Orch.Controller.Host_network_failure ->
      Deploy.inject_host_network_failure dep svc);
  Engine.run_for dep.Deploy.eng (Time.sec 40);
  emit_rib_snapshots dep peer svc ~vip

let planned () =
  with_monitor ~scenario:"planned" @@ fun mon ->
  let dep, peer, vip, svc = setup mon in
  Deploy.planned_migration dep svc;
  Engine.run_for dep.Deploy.eng (Time.sec 30);
  emit_rib_snapshots dep peer svc ~vip

let split_brain () =
  with_monitor ~scenario:"split-brain" @@ fun mon ->
  let dep, peer, vip, svc = setup mon in
  let eng = dep.Deploy.eng in
  let h0 = dep.Deploy.hosts.(0) in
  Deploy.inject_host_network_failure dep svc;
  Engine.run_for eng (Time.sec 20);
  (* Heal the partition: the old host returns with its container state
     intact — the checker watches that no second promotion or peer-visible
     flap follows. *)
  Orch.Host.network_recover h0;
  Engine.run_for eng (Time.sec 20);
  emit_rib_snapshots dep peer svc ~vip

let degraded () =
  with_monitor
    ~ack_deadline_s:(degrade_frac *. hold_time_s)
    ~scenario:"degraded"
  @@ fun mon ->
  let dep, peer, vip, svc = setup ~store_resilient:true ~degrade_frac mon in
  let eng = dep.Deploy.eng in
  let store_node = Store.Server.node dep.Deploy.store_server in
  (* Partition the store (RAM intact), then keep routes arriving so the
     replicator accumulates held ACKs it cannot make durable. The
     deadline (9 s here) fires mid-outage: ACKs are shed, NSR drops to
     pass-through, the session stays up. Heal at 20 s; the probe finds
     the store, the app re-arms under a fresh epoch and re-audits
     Adj-RIB-Out, and the end-state snapshots must converge. *)
  Netsim.Node.set_up store_node false;
  Bgp.Speaker.originate peer.Deploy.pa_speaker ~vrf
    (Workload.Prefixes.distinct_from ~base:700_000 50);
  ignore
    (Engine.schedule_after eng (Time.sec 20) (fun () ->
         Netsim.Node.set_up store_node true));
  Engine.run_for eng (Time.sec 60);
  emit_rib_snapshots dep peer svc ~vip

(* The recovery root span each scenario records, for critical-path
   queries: failover-shaped scenarios (including split-brain, whose
   migration is a failover) close a "failover" span, planned migration
   its own; degraded deliberately never migrates, so it has no recovery
   root. *)
let root_span = function
  | "failover" | "split-brain" | "split_brain" -> Some "failover"
  | "planned" -> Some "planned_migration"
  | _ -> None

let run ?kind name =
  match name with
  | "failover" -> Ok (failover ?kind ())
  | "planned" -> Ok (planned ())
  | "split-brain" | "split_brain" -> Ok (split_brain ())
  | "degraded" -> Ok (degraded ())
  | other ->
      Error
        (Printf.sprintf "unknown scenario %S (expected: %s)" other
           (String.concat " | " scenarios))
