open Sim
open Netsim

type impl_point = { impl : string; seconds : float }
type sweep_row = { x : int; values : impl_point list }
type scale_row = { containers : int; memory_gb : float; cpu_pct : float }

let impls =
  [
    ("FRRouting", `Baseline Baseline.frr);
    ("GoBGP", `Baseline Baseline.gobgp);
    ("BIRD", `Baseline Baseline.bird);
    ("TENSOR", `Tensor);
  ]

let groups_for n = max 1 (n / 500)

(* Run the engine in slices until [cond] holds or the deadline passes. *)
let run_until_cond eng ?(slice = Time.ms 50) ~deadline cond =
  let rec loop () =
    if cond () then true
    else if Engine.now eng >= deadline then false
    else begin
      Engine.run_until eng (min deadline (Time.add (Engine.now eng) slice));
      loop ()
    end
  in
  loop ()

(* Originate [n] routes spread over [groups] attribute sets, one
   originate call per group (so packing has material to work with). *)
let originate_grouped spk ~vrf ~next_hop ~groups n =
  let rng = Rng.create 7 in
  let routes = Workload.Prefixes.attr_groups rng ~groups ~next_hop n in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (pfx, attrs) ->
      let key = Bgp.Attrs.hash attrs in
      let cur = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key ((pfx, attrs) :: cur))
    routes;
  Det.iter_sorted ~compare:Int.compare
    (fun _ l ->
      match l with
      | (_, attrs) :: _ -> Bgp.Speaker.originate spk ~vrf ~attrs (List.map fst l)
      | [] -> ())
    tbl

(* --- Panel (a): receive and learn --------------------------------------- *)

(* A plain speaker pair: FRR-profile announcer -> DUT with [profile]. *)
let baseline_receive ~profile n =
  let eng = Engine.create () in
  let net = Network.create eng in
  let peer = Network.add_node net "peer" in
  let dut = Network.add_node net "dut" in
  let _, peer_addr, dut_addr = Network.connect net ~delay:(Time.us 200) peer dut in
  let s_peer = Tcp.create_stack peer and s_dut = Tcp.create_stack dut in
  let spk_peer =
    Bgp.Speaker.create ~profile:Baseline.frr ~stack:s_peer ~local_asn:65010
      ~router_id:peer_addr ()
  in
  let spk_dut =
    Bgp.Speaker.create ~profile ~stack:s_dut ~local_asn:64900
      ~router_id:dut_addr ()
  in
  ignore
    (Bgp.Speaker.add_peer spk_peer
       { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:dut_addr ()) with
         Bgp.Speaker.remote_asn = Some 64900 });
  ignore
    (Bgp.Speaker.add_peer spk_dut
       {
         (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:peer_addr ()) with
         Bgp.Speaker.remote_asn = Some 65010;
         passive = true;
       });
  Bgp.Speaker.start spk_peer;
  Bgp.Speaker.start spk_dut;
  Engine.run_for eng (Time.sec 3);
  let t0 = Engine.now eng in
  originate_grouped spk_peer ~vrf:"v0" ~next_hop:peer_addr
    ~groups:(groups_for n) n;
  let deadline = Time.add t0 (Time.minutes 10) in
  let ok =
    run_until_cond eng ~deadline (fun () ->
        Bgp.Speaker.updates_learned spk_dut >= n)
  in
  if not ok then nan
  else Time.to_sec_f (Time.diff (Bgp.Speaker.last_rx_applied spk_dut) t0)

let tensor_receive n =
  let dep = Deploy.build () in
  let peer = Deploy.add_peer_as dep ~asn:65010 "peerAS" in
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Deploy.deploy_service dep ~id:"fig6a" ~local_asn:64900
      [
        App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
          ~peer_asn:65010 ~run_bfd:false ();
      ]
  in
  if not (Deploy.wait_established dep svc ()) then nan
  else begin
    let eng = dep.Deploy.eng in
    Engine.run_for eng (Time.sec 2);
    let spk_dut =
      match App.speaker (Deploy.service_app svc) with
      | Some s -> s
      (* lint: allow p2 — harness precondition: the deployed service must expose a speaker; abort loudly, not a product path *)
      | None -> failwith "no speaker"
    in
    let t0 = Engine.now eng in
    originate_grouped peer.Deploy.pa_speaker ~vrf:"v0"
      ~next_hop:peer.Deploy.pa_addr ~groups:(groups_for n) n;
    let deadline = Time.add t0 (Time.minutes 10) in
    let ok =
      run_until_cond eng ~deadline (fun () ->
          Bgp.Speaker.updates_learned spk_dut >= n)
    in
    if not ok then nan
    else Time.to_sec_f (Time.diff (Bgp.Speaker.last_rx_applied spk_dut) t0)
  end

let run_receive ?(counts = [ 100; 1_000; 10_000; 100_000; 500_000 ]) () =
  List.map
    (fun n ->
      {
        x = n;
        values =
          List.map
            (fun (name, kind) ->
              let seconds =
                match kind with
                | `Baseline profile -> baseline_receive ~profile n
                | `Tensor -> tensor_receive n
              in
              { impl = name; seconds })
            impls;
      })
    counts

(* --- Panel (b): generate and send ----------------------------------------- *)

let baseline_send ~profile n =
  let eng = Engine.create () in
  let net = Network.create eng in
  let dut = Network.add_node net "dut" in
  let peer = Network.add_node net "peer" in
  let _, dut_addr, peer_addr = Network.connect net ~delay:(Time.us 200) dut peer in
  let s_dut = Tcp.create_stack dut and s_peer = Tcp.create_stack peer in
  let spk_dut =
    Bgp.Speaker.create ~profile ~stack:s_dut ~local_asn:64900
      ~router_id:dut_addr ()
  in
  let spk_peer =
    Bgp.Speaker.create ~profile:Baseline.frr ~stack:s_peer ~local_asn:65010
      ~router_id:peer_addr ()
  in
  ignore
    (Bgp.Speaker.add_peer spk_dut
       { (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:peer_addr ()) with
         Bgp.Speaker.remote_asn = Some 65010 });
  ignore
    (Bgp.Speaker.add_peer spk_peer
       {
         (Bgp.Speaker.default_peer_config ~vrf:"v0" ~remote_addr:dut_addr ()) with
         Bgp.Speaker.remote_asn = Some 64900;
         passive = true;
       });
  Bgp.Speaker.start spk_dut;
  Bgp.Speaker.start spk_peer;
  Engine.run_for eng (Time.sec 3);
  let t0 = Engine.now eng in
  originate_grouped spk_dut ~vrf:"v0" ~next_hop:dut_addr
    ~groups:(groups_for n) n;
  let deadline = Time.add t0 (Time.minutes 10) in
  let ok =
    run_until_cond eng ~deadline (fun () ->
        Bgp.Speaker.updates_sent spk_dut >= n)
  in
  if not ok then nan
  else Time.to_sec_f (Time.diff (Bgp.Speaker.last_tx_handoff spk_dut) t0)

let tensor_send n =
  let dep = Deploy.build () in
  let peer = Deploy.add_peer_as dep ~asn:65010 "peerAS" in
  let vip = Addr.of_string "203.0.113.10" in
  ignore (Deploy.peer_expects peer ~vrf:"v0" ~vip ~local_asn:64900);
  let svc =
    Deploy.deploy_service dep ~id:"fig6b" ~local_asn:64900
      [
        App.vrf_spec ~vrf:"v0" ~vip ~peer_addr:peer.Deploy.pa_addr
          ~peer_asn:65010 ~run_bfd:false ();
      ]
  in
  if not (Deploy.wait_established dep svc ()) then nan
  else begin
    let eng = dep.Deploy.eng in
    Engine.run_for eng (Time.sec 2);
    let spk_dut =
      match App.speaker (Deploy.service_app svc) with
      | Some s -> s
      (* lint: allow p2 — harness precondition: the deployed service must expose a speaker; abort loudly, not a product path *)
      | None -> failwith "no speaker"
    in
    let t0 = Engine.now eng in
    originate_grouped spk_dut ~vrf:"v0" ~next_hop:vip ~groups:(groups_for n) n;
    let deadline = Time.add t0 (Time.minutes 10) in
    let ok =
      run_until_cond eng ~deadline (fun () ->
          Bgp.Speaker.updates_sent spk_dut >= n)
    in
    if not ok then nan
    else Time.to_sec_f (Time.diff (Bgp.Speaker.last_tx_handoff spk_dut) t0)
  end

let run_send ?(counts = [ 100; 1_000; 10_000; 100_000; 500_000 ]) () =
  List.map
    (fun n ->
      {
        x = n;
        values =
          List.map
            (fun (name, kind) ->
              let seconds =
                match kind with
                | `Baseline profile -> baseline_send ~profile n
                | `Tensor -> tensor_send n
              in
              { impl = name; seconds })
            impls;
      })
    counts

(* --- Panel (c): sending to many peers --------------------------------------- *)

let multi_peer_run ~profile ~with_replication peers updates =
  let eng = Engine.create () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let dut = Network.add_node net "dut" in
  let _, _, dut_addr = Network.connect net ~delay:(Time.us 50) fabric dut in
  Node.add_route dut (Addr.prefix_of_string "0.0.0.0/0")
    (List.nth (Node.ifaces dut) 0).Node.remote;
  let s_dut = Tcp.create_stack dut in
  (* Optional live replication (TENSOR): a store node plus per-peer
     replicators wired through the speaker hooks. *)
  let replicators = Hashtbl.create 64 in
  let hooks =
    if not with_replication then Bgp.Speaker.no_hooks
    else begin
      let store_node = Network.add_node net "store" in
      let _, fabric_side, _ =
        Network.connect net ~delay:(Time.us 100) fabric store_node
      in
      ignore fabric_side;
      Node.add_route store_node (Addr.prefix_of_string "0.0.0.0/0")
        (List.nth (Node.ifaces store_node) 0).Node.remote;
      let server = Store.Server.create store_node in
      let client =
        Store.Client.create dut ~server:(Store.Server.addr server)
      in
      let repl_for peer =
        let key = Bgp.Speaker.peer_source_key peer in
        match Hashtbl.find_opt replicators key with
        | Some r -> r
        | None ->
            let r =
              Replicator.create ~ack_hold:false ~engine:eng ~client
                ~conn_id:(Keys.conn_id ~service:"fig6c" ~vrf:key)
                ~service:"fig6c" ()
            in
            Hashtbl.replace replicators key r;
            r
      in
      {
        Bgp.Speaker.no_hooks with
        Bgp.Speaker.on_tx_replicate =
          (fun peer _msg raw k ->
            Replicator.on_tx_message (repl_for peer) ~raw ~release:k);
        on_rx_replicate =
          (fun peer msg ~size:_ ~inferred_ack ->
            Replicator.on_rx_message (repl_for peer) msg ~inferred_ack);
      }
    end
  in
  let spk_dut =
    Bgp.Speaker.create ~profile ~hooks ~stack:s_dut ~local_asn:64900
      ~router_id:dut_addr ()
  in
  let peer_speakers =
    List.init peers (fun i ->
        let node = Network.add_node net (Printf.sprintf "peer%d" i) in
        let _, _, peer_addr =
          Network.connect net ~delay:(Time.us 200) fabric node
        in
        Node.add_route node (Addr.prefix_of_string "0.0.0.0/0")
          (List.nth (Node.ifaces node) 0).Node.remote;
        let stack = Tcp.create_stack node in
        let spk =
          Bgp.Speaker.create ~profile:Baseline.frr ~stack
            ~local_asn:(65000 + i) ~router_id:peer_addr ()
        in
        ignore
          (Bgp.Speaker.add_peer spk
             {
               (Bgp.Speaker.default_peer_config ~vrf:"v0"
                  ~remote_addr:dut_addr ())
               with
               Bgp.Speaker.remote_asn = Some 64900;
               passive = true;
             });
        Bgp.Speaker.start spk;
        ignore
          (Bgp.Speaker.add_peer spk_dut
             {
               (Bgp.Speaker.default_peer_config ~vrf:"v0"
                  ~remote_addr:peer_addr ())
               with
               Bgp.Speaker.remote_asn = Some (65000 + i);
             });
        spk)
  in
  ignore peer_speakers;
  Bgp.Speaker.start spk_dut;
  (* Let all sessions establish. *)
  let deadline = Time.add (Engine.now eng) (Time.sec 60) in
  let all_up () =
    List.for_all
      (fun p -> Bgp.Speaker.peer_state p = Bgp.Session.Established)
      (Bgp.Speaker.peers spk_dut)
  in
  if not (run_until_cond eng ~slice:(Time.ms 200) ~deadline all_up) then nan
  else begin
    Engine.run_for eng (Time.sec 1);
    let target = peers * updates in
    let t0 = Engine.now eng in
    originate_grouped spk_dut ~vrf:"v0" ~next_hop:dut_addr ~groups:4 updates;
    let deadline = Time.add t0 (Time.minutes 10) in
    let ok =
      run_until_cond eng ~deadline (fun () ->
          Bgp.Speaker.updates_sent spk_dut >= target)
    in
    if not ok then nan
    else Time.to_sec_f (Time.diff (Bgp.Speaker.last_tx_handoff spk_dut) t0)
  end

let run_multi_peer ?(peer_counts = [ 50; 100; 200; 300; 400; 500; 600; 700 ])
    ?(updates_per_peer = 100) () =
  List.map
    (fun peers ->
      {
        x = peers;
        values =
          List.map
            (fun (name, kind) ->
              let seconds =
                match kind with
                | `Baseline profile ->
                    multi_peer_run ~profile ~with_replication:false peers
                      updates_per_peer
                | `Tensor ->
                    multi_peer_run ~profile:Baseline.tensor
                      ~with_replication:true peers updates_per_peer
              in
              { impl = name; seconds })
            impls;
      })
    peer_counts

(* --- Panel (d): containers per host ------------------------------------------- *)

let run_scale ?(container_counts = [ 10; 25; 50; 75; 100 ]) () =
  List.map
    (fun containers ->
      let eng = Engine.create () in
      let net = Network.create eng in
      let fabric = Network.add_node net ~forwarding:true "fabric" in
      let host = Orch.Host.create net ~fabric "host0" in
      let dummy_store = Addr.of_string "10.255.255.1" in
      let dummy_peer = Addr.of_string "10.255.255.2" in
      for i = 0 to containers - 1 do
        let cont = Orch.Host.create_container host (Printf.sprintf "c%d" i) in
        let cfg =
          App.config ~service_id:(Printf.sprintf "c%d" i)
            ~store_addr:dummy_store ~local_asn:64900
            [
              App.vrf_spec ~vrf:"v0"
                ~vip:(Addr.of_octets 203 0 (i / 250) (i mod 250))
                ~peer_addr:dummy_peer ~run_bfd:false ();
            ]
        in
        ignore (App.install cont cfg);
        Orch.Container.boot cont
      done;
      Engine.run_for eng (Time.sec 3);
      {
        containers;
        memory_gb = Orch.Host.memory_used_mb host /. 1024.0;
        cpu_pct = Orch.Host.cpu_used_pct host;
      })
    container_counts

(* --- Printing -------------------------------------------------------------------- *)

let print_sweep ~title ~xlabel ~paper_notes rows =
  Report.section title;
  let impl_names = List.map fst impls in
  Report.table
    ~header:(xlabel :: impl_names)
    (List.map
       (fun r ->
         string_of_int r.x
         :: List.map
              (fun name ->
                match List.find_opt (fun v -> v.impl = name) r.values with
                | Some v -> Report.fseconds v.seconds
                | None -> "-")
              impl_names)
       rows);
  List.iter (fun n -> Report.note "%s" n) paper_notes

let print_receive rows =
  print_sweep
    ~title:"Figure 6(a): time to receive and learn N routing updates"
    ~xlabel:"updates"
    ~paper_notes:
      [
        "paper: ~40 ms at 100 updates for all; <100 ms below ~10K; linear beyond;";
        "ordering FRR < GoBGP ~ BIRD < TENSOR; TENSOR overhead < 1 s for tens of";
        "thousands of updates.";
      ]
    rows

let print_send rows =
  print_sweep
    ~title:"Figure 6(b): time to generate and send N routing updates"
    ~xlabel:"updates"
    ~paper_notes:
      [
        "paper: flat below ~5K then linear; TENSOR ~ the other implementations";
        "(less delay on the send path than the receive path).";
      ]
    rows

let print_multi_peer rows =
  print_sweep
    ~title:
      "Figure 6(c): time to send 100 updates each to N peering ASes"
    ~xlabel:"peers"
    ~paper_notes:
      [
        "paper: GoBGP >= 5x the others (no update packing); TENSOR ~ FRR ~ BIRD,";
        "with TENSOR overtaking BIRD beyond ~600 peers.";
      ]
    rows

let print_scale rows =
  Report.section "Figure 6(d): memory and CPU vs containers on one host";
  Report.table
    ~header:[ "containers"; "memory (GB)"; "CPU (%)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.containers;
           Printf.sprintf "%.1f" r.memory_gb;
           Printf.sprintf "%.2f" r.cpu_pct;
         ])
       rows);
  Report.note "paper: linear growth; 100 containers ~ 25 GB and 5.6%% CPU."
