open Sim
open Netsim

type t = {
  eng : Engine.t;
  net : Network.t;
  fabric : Node.t;
  hosts : Orch.Host.t array;
  agent : Orch.Agent.t;
  ctrl : Orch.Controller.t;
  store_server : Store.Server.t;
  store_addr : Addr.t;
  store_replica_server : Store.Server.t option;
  trace : Trace.t;
  warm_boot : Time.span;
  cold_boot : Time.span;
  mutable picker :
    (service_id:string -> avoid:string list -> Orch.Host.t option) option;
}

type peer_as = {
  pa_name : string;
  pa_node : Node.t;
  pa_addr : Addr.t;
  pa_speaker : Bgp.Speaker.t;
  pa_asn : int;
}

type service = {
  dep : t;
  sid : string;
  scfg : App.config;
  warm_boot : Time.span;
  cold_boot : Time.span;
  backup_mode : [ `Cold | `Preheat ];
  mutable backup_host : int;
  mutable primary : Orch.Container.t;
  mutable app : App.t;
  mutable standby : Orch.Container.t option;
  mutable generation : int;
}

(* Service lookup is domain-local: a deployment lives entirely inside
   one simulation, so each campaign worker resolves ids against its own
   table instead of racing on a shared one. *)
let services_key : (string, service) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let services () = Domain.DLS.get services_key

let migration_trace t = t.trace
let set_service_picker t pick = t.picker <- Some pick

(* --- Migrator ---------------------------------------------------------------- *)

let pick_backup_host t svc =
  let quarantined = Orch.Controller.quarantined t.ctrl in
  let failed_host = Orch.Container.host_name svc.primary in
  let n = Array.length t.hosts in
  let rec find i =
    if i >= n then svc.backup_host (* fall back, nothing better *)
    else
      let idx = (svc.backup_host + i) mod n in
      let h = t.hosts.(idx) in
      if
        Orch.Host.is_up h
        && (not (Orch.Host.is_fenced h))
        && (not (List.mem (Orch.Host.name h) quarantined))
        && not (String.equal (Orch.Host.name h) failed_host)
      then idx
      else find (i + 1)
  in
  find 0

let reroute_vips t svc host =
  List.iter
    (fun (spec : App.vrf_spec) ->
      Node.add_route t.fabric (Addr.prefix spec.App.vip 32)
        (Orch.Host.addr host))
    svc.scfg.App.vrfs

(* A preheated standby is usable when it is alive on a healthy host that
   is not the one that just failed. *)
let usable_standby t svc =
  match svc.standby with
  | Some cont
    when Orch.Container.state cont = Orch.Container.Running
         && Orch.Container.host_name cont
            <> Orch.Container.host_name svc.primary -> (
      let hname = Orch.Container.host_name cont in
      match
        Array.to_list t.hosts
        |> List.find_opt (fun h -> String.equal (Orch.Host.name h) hname)
      with
      | Some h when Orch.Host.is_up h && not (Orch.Host.is_fenced h) ->
          Some cont
      | _ -> None)
  | _ -> None

(* Where the next instance goes: the deployment's picker hook when one
   is installed (fleet region-aware placement), the round-robin backup
   index otherwise. [None] means no healthy host qualifies right now. *)
let choose_host t svc ~avoid =
  match t.picker with
  | Some pick -> pick ~service_id:svc.sid ~avoid
  | None -> Some t.hosts.(pick_backup_host t svc)

let provision_standby t svc =
  match
    choose_host t svc ~avoid:[ Orch.Container.host_name svc.primary ]
  with
  | None -> () (* no healthy host: skip preheating, migrate defers later *)
  | Some host ->
      let cont =
        Orch.Host.create_container host ~boot_span:svc.warm_boot
          (Printf.sprintf "%s-standby%d" svc.sid svc.generation)
      in
      Orch.Container.boot cont;
      svc.standby <- Some cont

let migrate t svc ~(reason : Orch.Controller.failure_kind) ~done_ =
  svc.generation <- svc.generation + 1;
  let boot_span =
    match reason with
    | Orch.Controller.Host_failure | Orch.Controller.Host_network_failure ->
        svc.cold_boot
    | Orch.Controller.App_failure | Orch.Controller.Container_failure ->
        svc.warm_boot
  in
  (* Fence the old instance (TKE kill): for app failures the container is
     alive but its process is dead; make sure it cannot speak again.
     Seeded fault: skip the fence and promote over a live primary. *)
  if not !Monitor.Faults.no_fence then begin
    Orch.Container.stop svc.primary;
    (* The kill takes the old process too: halt its app so no zombie
       timer keeps attempting store writes through the dead node (a
       blocked control lane would otherwise age past the degrade
       deadline and declare degraded pass-through under the conn id the
       promoted instance is using). *)
    App.halt svc.app
  end;
  let gen = svc.generation in
  let continue_with cont =
  let app = App.install cont ~mode:App.Recover svc.scfg in
  App.on_bfd_up app (fun ~vrf session ->
      match
        List.find_opt
          (fun (s : App.vrf_spec) -> String.equal s.App.vrf vrf)
          svc.scfg.App.vrfs
      with
      | Some spec ->
          Orch.Agent.start_relay t.agent ~id:svc.sid ~src:spec.App.vip
            ~dst:spec.App.peer_addr ~vrf ~my_disc:(Bfd.my_disc session)
            ~your_disc:(Bfd.your_disc session)
      | None -> ());
  App.on_tcp_synced app (fun ~vrf ->
      Telemetry.Bus.emit ~legacy:t.trace t.eng
        (Telemetry.Event.Tcp_synced { service = svc.sid; vrf });
      match Telemetry.Span.ambient () with
      | Some root ->
          Telemetry.Span.finish t.eng root;
          Telemetry.Span.set_ambient None
      | None -> ());
  App.on_recovered app (fun () ->
      if Telemetry.Gate.on () then
        Telemetry.Bus.emit t.eng
          (Telemetry.Event.Replica_promoted
             { service = svc.sid; container = Orch.Container.id cont });
      svc.primary <- cont;
      svc.app <- app;
      (* Keep a standby warm for the next failure. *)
      if svc.backup_mode = `Preheat then provision_standby t svc;
      done_ cont);
  (* Inbound traffic must land on the new instance once it answers. *)
  (match
     Array.to_list t.hosts
     |> List.find_opt (fun h ->
            String.equal (Orch.Host.name h) (Orch.Container.host_name cont))
   with
  | Some host -> reroute_vips t svc host
  | None -> ());
  Orch.Container.boot cont
  in
  match usable_standby t svc with
  | Some cont ->
      svc.standby <- None;
      continue_with cont
  | None ->
      (* Graceful degradation: when no healthy host can take the
         instance, defer and retry instead of thrashing — no container
         is created until a host qualifies. A newer migration
         (generation bump) abandons a still-pending retry loop. *)
      let failed_host = Orch.Container.host_name svc.primary in
      let rec acquire () =
        if svc.generation = gen then
          match choose_host t svc ~avoid:[ failed_host ] with
          | Some host ->
              continue_with
                (Orch.Host.create_container host ~boot_span
                   (Printf.sprintf "%s-g%d" svc.sid svc.generation))
          | None ->
              Telemetry.Bus.emit ~legacy:t.trace t.eng
                (Telemetry.Event.Migration_deferred
                   { id = svc.sid; reason = "no-healthy-host" });
              ignore
                (Engine.schedule_after t.eng ~label:"deploy.defer_placement"
                   (Time.sec 1) acquire)
      in
      acquire ()

(* --- Build --------------------------------------------------------------------- *)

let build ?(seed = 42) ?(hosts = 3) ?(warm_boot = Time.sec 1)
    ?(cold_boot = Time.of_ms_f 4400.) ?store_cost
    ?(store_delay = Time.us 100) ?(store_replica = false) ?ctrl_config () =
  let eng = Engine.create ~seed () in
  let net = Network.create eng in
  let fabric = Network.add_node net ~forwarding:true "fabric" in
  let host_arr =
    Array.init hosts (fun i ->
        Orch.Host.create net ~fabric ~boot_span:warm_boot
          (Printf.sprintf "host%d" i))
  in
  let agent = Orch.Agent.create net ~fabric "agent" in
  let ctrl =
    Orch.Controller.create net ~fabric ?config:ctrl_config "controller"
  in
  Array.iter (fun h -> Orch.Controller.register_host ctrl h) host_arr;
  Orch.Controller.register_agent ctrl agent;
  (* The store lives on its own server joined to the fabric (Redis on a
     separate machine, §4.1). *)
  let store_node = Network.add_node net "store" in
  let _, fabric_side, _store_side =
    Network.connect net ~delay:store_delay fabric store_node
  in
  Node.add_route store_node (Addr.prefix_of_string "0.0.0.0/0") fabric_side;
  let store_server = Store.Server.create ?cost:store_cost store_node in
  (* The store's own fault tolerance: a synchronous replica on a second
     server (the paper treats store+primary double failures as out of
     scope, §4.1). *)
  let store_replica_server =
    if store_replica then begin
      let replica_node = Network.add_node net "store-replica" in
      let _, rep_fabric_side, _ =
        Network.connect net ~delay:store_delay fabric replica_node
      in
      Node.add_route replica_node (Addr.prefix_of_string "0.0.0.0/0")
        rep_fabric_side;
      let replica = Store.Server.create ?cost:store_cost replica_node in
      Store.Server.attach_replica store_server replica;
      Some replica
    end
    else None
  in
  let t =
    {
      eng;
      net;
      fabric;
      hosts = host_arr;
      agent;
      ctrl;
      store_server;
      store_addr = Store.Server.addr store_server;
      store_replica_server;
      trace = Trace.create ();
      warm_boot;
      cold_boot;
      picker = None;
    }
  in
  Orch.Controller.set_migrator ctrl (fun ~reason ~id ~failed:_ ~done_ ->
      match Hashtbl.find_opt (services ()) id with
      | Some svc -> migrate t svc ~reason ~done_
      | None -> ());
  (* Mirror the controller's trace into the deployment trace lazily: the
     controller already timestamps detect/initiate/migrate; experiments
     read both. *)
  t

(* --- Peers ----------------------------------------------------------------------- *)

let add_peer_as t ?(profile = Baseline.frr) ?(link_delay = Time.us 200) ~asn
    name =
  let node = Network.add_node t.net name in
  let _, fabric_side, peer_side =
    Network.connect t.net ~delay:link_delay t.fabric node
  in
  Node.add_route node (Addr.prefix_of_string "0.0.0.0/0") fabric_side;
  let stack = Tcp.create_stack node in
  let speaker =
    Bgp.Speaker.create ~profile ~stack ~local_asn:asn ~router_id:peer_side ()
  in
  { pa_name = name; pa_node = node; pa_addr = peer_side; pa_speaker = speaker;
    pa_asn = asn }

let peer_expects pa ~vrf ~vip ~local_asn =
  let pc =
    {
      (Bgp.Speaker.default_peer_config ~vrf ~remote_addr:vip ()) with
      Bgp.Speaker.remote_asn = Some local_asn;
      passive = true;
    }
  in
  let peer = Bgp.Speaker.add_peer pa.pa_speaker pc in
  (* The peer runs its own BFD towards the service address. *)
  ignore
    (Bfd.create_session (Bfd.endpoint pa.pa_node) ~local:pa.pa_addr ~vrf
       ~remote:vip ());
  peer

(* --- Services ----------------------------------------------------------------------- *)

let deploy_service t ?(primary_host = 0) ?(backup_host = 1)
    ?(backup_mode = `Cold) ?(replicate = true) ?(ack_hold = true)
    ?(store_resilient = false) ?(degrade_frac = 0.) ?store_addr ~id
    ~local_asn vrfs =
  let store_addr = Option.value store_addr ~default:t.store_addr in
  let cfg =
    App.config ~service_id:id ~store_addr
      ?store_replica:
        (if store_resilient then
           Option.map Store.Server.addr t.store_replica_server
         else None)
      ~store_retry:store_resilient
      ~controller_addr:(Orch.Controller.addr t.ctrl) ~local_asn ~degrade_frac
      ~replicate ~ack_hold vrfs
  in
  let host = t.hosts.(primary_host) in
  let cont = Orch.Host.create_container host id in
  let app = App.install cont cfg in
  let svc =
    {
      dep = t;
      sid = id;
      scfg = cfg;
      warm_boot = t.warm_boot;
      cold_boot = t.cold_boot;
      backup_mode;
      backup_host;
      primary = cont;
      app;
      standby = None;
      generation = 0;
    }
  in
  Hashtbl.replace (services ()) id svc;
  if backup_mode = `Preheat then provision_standby t svc;
  App.on_bfd_up app (fun ~vrf session ->
      match
        List.find_opt (fun (s : App.vrf_spec) -> String.equal s.App.vrf vrf) vrfs
      with
      | Some spec ->
          Orch.Agent.start_relay t.agent ~id ~src:spec.App.vip
            ~dst:spec.App.peer_addr ~vrf ~my_disc:(Bfd.my_disc session)
            ~your_disc:(Bfd.your_disc session)
      | None -> ());
  reroute_vips t svc host;
  Orch.Container.boot cont;
  (* Register with the controller once the container answers health
     checks. *)
  ignore
    (Engine.schedule_after t.eng ~label:"orch.boot"
       (Orch.Container.boot_span cont) (fun () ->
         Orch.Controller.manage t.ctrl ~id cont));
  svc

let service_app svc = svc.app
let service_container svc = svc.primary
let service_id svc = svc.sid

let wait_established t svc ?(timeout = Time.sec 30) () =
  let deadline = Time.add (Engine.now t.eng) timeout in
  let ok () =
    List.for_all
      (fun (spec : App.vrf_spec) ->
        App.session_established svc.app ~vrf:spec.App.vrf)
      svc.scfg.App.vrfs
  in
  let rec loop () =
    if ok () then true
    else if Engine.now t.eng >= deadline then false
    else begin
      Engine.run_until t.eng
        (min deadline (Time.add (Engine.now t.eng) (Time.ms 100)));
      loop ()
    end
  in
  loop ()

let service_routes svc ~vrf = App.routes svc.app ~vrf

let planned_migration t ?done_ svc =
  if Telemetry.Gate.on () then begin
    Telemetry.Span.set_ambient None;
    let sp = Telemetry.Span.start t.eng "planned_migration" in
    Telemetry.Span.set_ambient (Some sp)
  end;
  Telemetry.Bus.emit ~legacy:t.trace t.eng
    (Telemetry.Event.Planned_migration { service = svc.sid });
  Orch.Controller.begin_planned t.ctrl ~id:svc.sid;
  App.freeze_for_migration svc.app (fun () ->
      migrate t svc ~reason:Orch.Controller.App_failure
        ~done_:(fun replacement ->
          Orch.Controller.end_planned t.ctrl ~id:svc.sid replacement;
          match done_ with Some f -> f replacement | None -> ()))

(* --- Failure injection ----------------------------------------------------------------- *)

let start_failover_span t =
  if Telemetry.Gate.on () then begin
    Telemetry.Span.set_ambient None;
    let sp = Telemetry.Span.start t.eng "failover" in
    Telemetry.Span.set_ambient (Some sp)
  end

let inject_app_failure t svc =
  start_failover_span t;
  Telemetry.Bus.emit ~legacy:t.trace t.eng
    (Telemetry.Event.Failure_injected { service = svc.sid; kind = "app" });
  App.crash_bgp svc.app

let inject_container_failure t svc =
  start_failover_span t;
  Telemetry.Bus.emit ~legacy:t.trace t.eng
    (Telemetry.Event.Failure_injected { service = svc.sid; kind = "container" });
  Orch.Container.fail svc.primary

let inject_host_failure t svc =
  start_failover_span t;
  Telemetry.Bus.emit ~legacy:t.trace t.eng
    (Telemetry.Event.Failure_injected { service = svc.sid; kind = "host" });
  let name = Orch.Container.host_name svc.primary in
  Array.iter
    (fun h -> if String.equal (Orch.Host.name h) name then Orch.Host.fail h)
    t.hosts

let inject_host_network_failure t svc =
  start_failover_span t;
  Telemetry.Bus.emit ~legacy:t.trace t.eng
    (Telemetry.Event.Failure_injected
       { service = svc.sid; kind = "host-network" });
  let name = Orch.Container.host_name svc.primary in
  Array.iter
    (fun h ->
      if String.equal (Orch.Host.name h) name then Orch.Host.network_fail h)
    t.hosts
