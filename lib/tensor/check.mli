(** Checked scenarios: NSR episodes run under the runtime verifier.

    Each scenario builds the standard one-service / one-peer deployment
    with telemetry enabled and a {!Monitor.Checker} subscribed before
    the first container boots, runs the episode, emits end-of-run
    [Rib_snapshot] pairs for the convergence checker, and returns the
    {!Monitor.Health} report. Seeded {!Monitor.Faults} are honoured,
    which is how the mutation tests exercise each checker. *)

val scenarios : string list
(** ["failover"; "planned"; "split-brain"; "degraded"]. *)

val snapshot_session :
  Sim.Engine.t ->
  vrf:string ->
  peer_name:string ->
  peer_speaker:Bgp.Speaker.t ->
  peer_addr:Netsim.Addr.t ->
  vip:Netsim.Addr.t ->
  Bgp.Speaker.t ->
  (string * string) * (string * string)
(** Emits the four end-state [Rib_snapshot] events of one session — per
    direction, what one side advertised vs what the other holds — which
    is what the [rib_convergence] checker groups and compares. Returns
    the digest pairs, [((peer_advertised, service_learned),
    (service_advertised, peer_learned))], so callers can also
    cross-check directly. Shared by the checked scenarios and the chaos
    runner's end-state verdict. *)

val failover :
  ?kind:Orch.Controller.failure_kind -> unit -> Monitor.Health.report
(** Table 1 episode: inject [kind] (default container failure), let the
    controller migrate, verify. *)

val planned : unit -> Monitor.Health.report
(** §4.4 planned migration of a healthy primary. *)

val split_brain : unit -> Monitor.Health.report
(** Host-network partition, migration, then partition heal: the old
    primary must stay fenced (no dual speaker). *)

val degraded : unit -> Monitor.Health.report
(** Store partitioned past the degrade deadline while routes keep
    arriving: held ACKs must be shed within the configured bound
    (NSR suspended, session alive), and after the store heals the
    re-armed session must converge. The [degraded_mode_exclusion]
    checker runs armed with the scenario's deadline. *)

val run :
  ?kind:Orch.Controller.failure_kind ->
  string ->
  (Monitor.Health.report, string) result
(** Dispatch by scenario name ([?kind] applies to ["failover"]). *)

val root_span : string -> string option
(** The recovery root span a scenario records, for critical-path
    queries: ["failover"] and ["split-brain"] close a ["failover"]
    span, ["planned"] a ["planned_migration"]; ["degraded"] (which
    never migrates) has none. *)
